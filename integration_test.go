package pastix

// End-to-end integration: every generated test problem through the full
// pipeline (ordering → symbolic → schedule → parallel factorization →
// solve), asserting accuracy and internal consistency. This is the
// "downstream user" path exercised wholesale.

import (
	"math"
	"testing"

	"github.com/pastix-go/pastix/internal/gen"
)

func TestIntegrationFullSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("integration suite")
	}
	for _, name := range gen.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			prob, err := gen.Generate(name, 0.05)
			if err != nil {
				t.Fatal(err)
			}
			a := prob.A
			an, err := Analyze(a, Options{Processors: 4, BlockSize: 24, Ratio2D: 2})
			if err != nil {
				t.Fatal(err)
			}
			st := an.Stats()
			if st.N != a.N || st.ScalarNNZL < int64(a.NNZOffDiag()) {
				t.Fatalf("stats inconsistent: %+v", st)
			}
			f, err := an.Factorize()
			if err != nil {
				t.Fatal(err)
			}
			xref, b := gen.RHSForSolution(a)
			// Sequential solve.
			x, err := an.Solve(f, b)
			if err != nil {
				t.Fatal(err)
			}
			for i := range x {
				if math.Abs(x[i]-xref[i]) > 1e-8 {
					t.Fatalf("solve error at %d: %g vs %g", i, x[i], xref[i])
				}
			}
			// Parallel solve agrees.
			xp, err := an.SolveParallel(f, b)
			if err != nil {
				t.Fatal(err)
			}
			for i := range x {
				if math.Abs(xp[i]-x[i]) > 1e-10*(1+math.Abs(x[i])) {
					t.Fatalf("parallel solve differs at %d", i)
				}
			}
			// Refinement cannot hurt: the adaptive loop must hand back a
			// monotonically non-increasing backward-error trajectory and a
			// residual no worse than the plain solve's.
			xr, rs, err := an.SolveRefinedStats(f, b)
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i < len(rs.Trajectory); i++ {
				if rs.Trajectory[i] > rs.Trajectory[i-1] {
					t.Fatalf("refinement trajectory not monotone: %v", rs.Trajectory)
				}
			}
			if Residual(a, xr, b) > Residual(a, x, b)*1.001 {
				t.Fatal("refinement worsened residual")
			}
			if !rs.Converged {
				t.Fatalf("refinement did not converge on an SPD problem: %+v", rs)
			}
			// Block solve with 3 right-hand sides.
			n := a.N
			panel := make([]float64, n*3)
			copy(panel, b)
			copy(panel[n:], b)
			copy(panel[2*n:], b)
			xs, err := an.SolveMany(f, panel, 3)
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < 3; r++ {
				for i := 0; i < n; i++ {
					if math.Abs(xs[i+r*n]-x[i]) > 1e-10*(1+math.Abs(x[i])) {
						t.Fatalf("rhs %d differs at %d", r, i)
					}
				}
			}
		})
	}
}

func TestIntegrationOrderingMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("integration suite")
	}
	// All four orderings × a couple of processor counts on one problem.
	prob, err := gen.Generate("OILPAN", 0.04)
	if err != nil {
		t.Fatal(err)
	}
	_, b := gen.RHSForSolution(prob.A)
	for _, m := range []OrderingMethod{OrderScotchLike, OrderMetisLike, OrderAMD} {
		for _, p := range []int{1, 4} {
			an, err := Analyze(prob.A, Options{Processors: p, Ordering: m, CompressGraph: m == OrderScotchLike})
			if err != nil {
				t.Fatalf("m=%d p=%d: %v", m, p, err)
			}
			f, err := an.Factorize()
			if err != nil {
				t.Fatalf("m=%d p=%d: %v", m, p, err)
			}
			x, err := an.Solve(f, b)
			if err != nil {
				t.Fatal(err)
			}
			if r := Residual(prob.A, x, b); r > 1e-12 {
				t.Fatalf("m=%d p=%d: residual %g", m, p, r)
			}
		}
	}
}
