package pastix_test

import (
	"fmt"

	"github.com/pastix-go/pastix"
)

// Assemble a tiny SPD system, factor it on two virtual processors and solve.
func Example() {
	b := pastix.NewBuilder(4)
	for i := 0; i < 4; i++ {
		b.Add(i, i, 2)
		if i+1 < 4 {
			b.Add(i+1, i, -1)
		}
	}
	a := b.Build()

	an, _ := pastix.Analyze(a, pastix.Options{Processors: 2})
	f, _ := an.Factorize()
	x, _ := an.Solve(f, []float64{1, 0, 0, 1})
	fmt.Printf("%.1f\n", x)
	// Output: [1.0 1.0 1.0 1.0]
}

// Finite-element style assembly: chain two bar elements and inspect the
// assembled entries.
func ExampleElementBuilder() {
	eb := pastix.NewElementBuilder(3)
	ke := []float64{1, -1, -1, 1}
	eb.AddElement([]int{0, 1}, ke)
	eb.AddElement([]int{1, 2}, ke)
	a := eb.Build()
	fmt.Println(a.At(1, 1), a.At(1, 0))
	// Output: 2 -1
}

// Complex symmetric systems (the paper's motivating class) use the Z API.
func ExampleAnalyzeComplex() {
	zb := pastix.NewZBuilder(2)
	zb.Add(0, 0, 3+1i)
	zb.Add(1, 1, 3-1i)
	zb.Add(1, 0, -1)
	az := zb.Build()

	an, _ := pastix.AnalyzeComplex(az, pastix.Options{})
	zf, _ := an.FactorizeComplex(az)
	// Solve A·x = b with b = A·[1, 1i].
	b := make([]complex128, 2)
	az.MatVec([]complex128{1, 1i}, b)
	x, _ := an.SolveComplex(zf, b)
	// Round away the −0.0 that floating point can produce.
	fmt.Printf("%.0f %.0f\n", real(x[0]), imag(x[1]))
	// Output: 1 1
}
