module github.com/pastix-go/pastix

go 1.22
