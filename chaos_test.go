package pastix

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"github.com/pastix-go/pastix/internal/gen"
)

// Fault injection through the public surface: Analyze with a FaultPlan, then
// Factorize and SolveParallel must recover from drops, duplicates, delays and
// a scheduled worker crash, and still produce a correct solution.
func TestPublicChaosRoundTrip(t *testing.T) {
	a := gen.Laplacian2D(12, 12)
	an, err := Analyze(a, Options{Processors: 4, BlockSize: 16, Ratio2D: 2,
		Faults: &FaultPlan{
			Seed:        11,
			Drop:        0.1,
			Dup:         0.1,
			Delay:       0.15,
			MaxDelay:    200 * time.Microsecond,
			CrashAtStep: map[int]int{1: 1},
		}})
	if err != nil {
		t.Fatal(err)
	}
	f, err := an.Factorize()
	if err != nil {
		t.Fatal(err)
	}
	x, b := gen.RHSForSolution(a)
	got, err := an.SolveParallel(f, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(got[i]-x[i]) > 1e-9 {
			t.Fatalf("x[%d]=%g want %g", i, got[i], x[i])
		}
	}
}

func TestPublicChaosOptionErrors(t *testing.T) {
	a := gen.Laplacian2D(8, 8)
	if _, err := Analyze(a, Options{Processors: 2, Faults: &FaultPlan{Drop: 1.5}}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("invalid plan not rejected as ErrBadOptions: %v", err)
	}
	if _, err := Analyze(a, Options{Processors: 2, SharedMemory: true, Faults: &FaultPlan{Drop: 0.1}}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("SharedMemory+Faults not rejected as ErrBadOptions: %v", err)
	}
	// An inactive plan is fine alongside SharedMemory.
	if _, err := Analyze(a, Options{Processors: 2, SharedMemory: true, Faults: &FaultPlan{}}); err != nil {
		t.Fatal(err)
	}
	// Chaos interplay with the work-stealing runtime: faults are a
	// message-passing concept, so an active plan combined with
	// RuntimeDynamic (or RuntimeShared/RuntimeSequential) must be rejected
	// as ErrBadOptions at validation, not silently ignored.
	for _, rt := range []Runtime{RuntimeDynamic, RuntimeShared, RuntimeSequential} {
		_, err := Analyze(a, Options{Processors: 2, Runtime: rt, Faults: &FaultPlan{Drop: 0.1}})
		if !errors.Is(err, ErrBadOptions) {
			t.Fatalf("Runtime %v + active Faults not rejected as ErrBadOptions: %v", rt, err)
		}
	}
	// An inactive plan alongside the dynamic runtime is fine.
	if _, err := Analyze(a, Options{Processors: 2, Runtime: RuntimeDynamic, Faults: &FaultPlan{}}); err != nil {
		t.Fatal(err)
	}
}

// A hopeless wire with a tiny retry budget must surface the typed budget
// error with per-processor progress through the public API.
func TestPublicChaosBudgetError(t *testing.T) {
	a := gen.Laplacian2D(12, 12)
	plan := &FaultPlan{Seed: 2, Drop: 0.999}
	plan.Reliability.RTO = 100 * time.Microsecond
	plan.Reliability.MaxRTO = 200 * time.Microsecond
	plan.Reliability.RetryLimit = 2
	plan.Reliability.Tick = 50 * time.Microsecond
	an, err := Analyze(a, Options{Processors: 4, BlockSize: 16, Ratio2D: 2, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	_, err = an.Factorize()
	if !errors.Is(err, ErrFaultBudget) {
		t.Fatalf("want ErrFaultBudget, got %v", err)
	}
	var fbe *FaultBudgetError
	if !errors.As(err, &fbe) || len(fbe.Progress) != 4 {
		t.Fatalf("budget detail wrong: %v", err)
	}
}

// Chaos runs must show up in the trace: fault events recorded, restarts and
// resends tallied in the summary.
func TestPublicChaosTrace(t *testing.T) {
	a := gen.Laplacian2D(12, 12)
	an, err := Analyze(a, Options{Processors: 4, BlockSize: 16,
		Faults: &FaultPlan{Seed: 4, Drop: 0.15, CrashAtStep: map[int]int{2: 0}}})
	if err != nil {
		t.Fatal(err)
	}
	_, tr, err := an.FactorizeTraced(context.Background(), TraceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts, err := tr.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if ts.FaultEvents == 0 {
		t.Fatal("no fault events recorded")
	}
	if ts.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", ts.Restarts)
	}
	if ts.Resends == 0 {
		t.Fatal("no resends recorded despite drops")
	}
}
