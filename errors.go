package pastix

import (
	"errors"

	"github.com/pastix-go/pastix/internal/solver"
)

// Sentinel errors of the public API. Match with errors.Is; where a concrete
// error type carries more detail (e.g. ZeroPivotError), extract it with
// errors.As.
var (
	// ErrNotSPD reports a factorization breakdown: the unpivoted LDLᵀ hit a
	// zero (or NaN) pivot, so the matrix is neither symmetric positive
	// definite nor strongly diagonally dominant. The concrete error is a
	// *ZeroPivotError carrying the offending column.
	ErrNotSPD = solver.ErrNotSPD
	// ErrShape reports a dimension mismatch between arguments: a right-hand
	// side whose length differs from the matrix order, or a panel of the
	// wrong shape.
	ErrShape = solver.ErrShape
	// ErrFactorMismatch reports a Factor passed to an Analysis it was not
	// produced by. Factors are bound to the analysis whose permutation and
	// symbolic structure they were computed under.
	ErrFactorMismatch = errors.New("pastix: factor does not belong to this analysis")
	// ErrBadOptions reports invalid Options (negative Processors, BlockSize,
	// Ratio2D or LeafSize, an unknown ordering method, or an inconsistent
	// FaultPlan). The wrapping error names the offending field.
	ErrBadOptions = errors.New("pastix: invalid options")
	// ErrPatternMismatch reports a matrix handed to FactorizeValues whose
	// sparsity pattern differs from the pattern the Analysis was built for.
	// Analyses are keyed by PatternFingerprint; only the numerical values may
	// change between factorizations sharing one analysis.
	ErrPatternMismatch = errors.New("pastix: matrix pattern does not match the analysed pattern")
	// ErrFaultBudget reports that a fault-injected run (Options.Faults)
	// degraded past recovery: the reliability layer exhausted a message's
	// resend budget or a worker's restart budget. The concrete error is a
	// *FaultBudgetError carrying per-processor progress.
	ErrFaultBudget = solver.ErrFaultBudget
	// ErrPivotExhausted reports that FactorizeRobust ran out of static-pivot
	// escalation attempts: even the largest ε_piv tried either failed to
	// factorize or left a backward error refinement could not pull under
	// Options.RefineTol. The concrete error is a *PivotExhaustedError.
	ErrPivotExhausted = solver.ErrPivotExhausted
)

// ZeroPivotError is the concrete error behind ErrNotSPD: the factorization
// of column block Cell broke down at global column Column (in the permuted
// ordering the analysis produced). errors.Is(err, ErrNotSPD) is true for it.
type ZeroPivotError = solver.ZeroPivotError

// FaultBudgetError is the concrete error behind ErrFaultBudget: how far each
// virtual processor got through its task vector before recovery was
// abandoned. errors.Is(err, ErrFaultBudget) is true for it.
type FaultBudgetError = solver.FaultBudgetError

// TaskProgress is one processor's entry in FaultBudgetError.Progress.
type TaskProgress = solver.TaskProgress

// PivotExhaustedError is the concrete error behind ErrPivotExhausted: the
// attempts made, the last ε_piv tried, and — when a factorization did
// complete — the probe backward error and perturbed columns it ended with.
// errors.Is(err, ErrPivotExhausted) is true for it.
type PivotExhaustedError = solver.PivotExhaustedError
