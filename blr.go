package pastix

import (
	"fmt"

	"github.com/pastix-go/pastix/internal/lowrank"
	"github.com/pastix-go/pastix/internal/solver"
)

// BLROptions configures block low-rank factor compression
// (Options.BLR, Factor.Compress): Tol is the per-block relative Frobenius
// tolerance ‖B − U·Vᵀ‖_F ≤ Tol·‖B‖_F (0 disables compression), MinBlockSize
// is the smallest block dimension offered to the compressor (0 selects the
// default 24). Compression is lossy: solves on a compressed factor carry a
// ~Tol-level error that adaptive refinement (SolveOptions.Refine) pulls back
// below the refinement target.
type BLROptions = lowrank.Options

// DefaultBLRMinBlockSize is the admission threshold used when
// BLROptions.MinBlockSize is 0.
const DefaultBLRMinBlockSize = lowrank.DefaultMinBlockSize

// DefaultRefineTol is the componentwise backward-error target of adaptive
// refinement when Options.RefineTol (or RefineOptions.Tol) is unset.
const DefaultRefineTol = solver.DefaultRefineTol

// CompressionStats is the byte accounting of one compression pass:
// factor-value bytes before and after, their ratio, and how many
// off-diagonal blocks went low-rank.
type CompressionStats = solver.CompressionStats

// ErrCompressed reports that an operation requiring dense factor storage
// (the message-passing solve runtime) was given a BLR-compressed factor.
var ErrCompressed = solver.ErrCompressed

// Compressed reports whether the factor is stored in block low-rank form.
func (f *Factor) Compressed() bool {
	return f != nil && f.inner != nil && f.inner.Compressed()
}

// CompressionStats returns the accounting of the compression pass that
// produced this factor's storage, or nil for a dense factor.
func (f *Factor) CompressionStats() *CompressionStats {
	if f == nil || f.inner == nil {
		return nil
	}
	return f.inner.Compression()
}

// MemoryBytes reports the resident factor-value bytes in the factor's
// current form (dense or compressed).
func (f *Factor) MemoryBytes() int64 {
	if f == nil || f.inner == nil {
		return 0
	}
	return f.inner.MemoryBytes()
}

// Compress converts the factor to block low-rank form in place and returns
// the byte accounting — the explicit variant of Options.BLR for callers
// (like a serving layer reusing one Analysis) that decide per factor. A
// zero-Tol opts fails validation rather than silently doing nothing;
// compressing an already-compressed factor returns the existing stats.
// Compression must not race solves on the same factor, and a compressed
// factor no longer solves on the message-passing runtime (analyses pinned
// to RuntimeMPSim or running fault injection are rejected here).
func (f *Factor) Compress(opts BLROptions) (CompressionStats, error) {
	if f == nil || f.inner == nil {
		return CompressionStats{}, ErrFactorMismatch
	}
	if err := opts.Validate(); err != nil {
		return CompressionStats{}, fmt.Errorf("%w: %v", ErrBadOptions, err)
	}
	if !opts.Enabled() {
		return CompressionStats{}, fmt.Errorf("%w: BLR.Tol 0 disables compression", ErrBadOptions)
	}
	if f.blrConflict != "" {
		return CompressionStats{}, fmt.Errorf("%w: %s", ErrBadOptions, f.blrConflict)
	}
	return f.inner.Compress(opts), nil
}
