package pastix

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"github.com/pastix-go/pastix/internal/gen"
)

func solveOptsFixture(t *testing.T, opts Options) (*Analysis, *Factor, []float64) {
	t.Helper()
	a := gen.Laplacian2D(16, 16)
	an, err := Analyze(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	f, err := an.Factorize()
	if err != nil {
		t.Fatal(err)
	}
	_, b := gen.RHSForSolution(a)
	return an, f, b
}

func bitwiseSame(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: x[%d] = %x, want %x (not bit-identical)", name, i, got[i], want[i])
		}
	}
}

// TestSolveOptsWrapperEquivalence is the API-consolidation contract: every
// deprecated Solve* wrapper returns outputs bit-identical to the SolveOpts
// call it now delegates to, on analyses configured for each runtime.
func TestSolveOptsWrapperEquivalence(t *testing.T) {
	const nrhs = 4
	ctx := context.Background()
	for _, cfg := range []struct {
		name string
		opts Options
	}{
		{"auto-p3", Options{Processors: 3}},
		{"shared-p4", Options{Processors: 4, Runtime: RuntimeShared}},
		{"dynamic-p4", Options{Processors: 4, Runtime: RuntimeDynamic}},
		{"mpsim-p2", Options{Processors: 2, Runtime: RuntimeMPSim}},
		{"seq-p1", Options{Processors: 1, Runtime: RuntimeSequential}},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			an, f, b := solveOptsFixture(t, cfg.opts)
			n := len(b)
			panel := make([]float64, n*nrhs)
			for r := 0; r < nrhs; r++ {
				for i := 0; i < n; i++ {
					panel[i+r*n] = b[i] * float64(r+1)
				}
			}

			x1, err := an.Solve(f, b)
			if err != nil {
				t.Fatal(err)
			}
			r1, err := an.SolveOpts(ctx, f, b, SolveOptions{Runtime: RuntimeSequential})
			if err != nil {
				t.Fatal(err)
			}
			bitwiseSame(t, "Solve", x1, r1.X)

			x2, err := an.SolveMany(f, panel, nrhs)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := an.SolveOpts(ctx, f, panel, SolveOptions{NRHS: nrhs, Runtime: RuntimeSequential})
			if err != nil {
				t.Fatal(err)
			}
			bitwiseSame(t, "SolveMany", x2, r2.X)

			x3, err := an.SolveParallel(f, b)
			if err != nil {
				t.Fatal(err)
			}
			r3, err := an.SolveOpts(ctx, f, b, SolveOptions{})
			if err != nil {
				t.Fatal(err)
			}
			bitwiseSame(t, "SolveParallel", x3, r3.X)

			x4, err := an.SolveParallelMany(f, panel, nrhs)
			if err != nil {
				t.Fatal(err)
			}
			r4, err := an.SolveOpts(ctx, f, panel, SolveOptions{NRHS: nrhs})
			if err != nil {
				t.Fatal(err)
			}
			bitwiseSame(t, "SolveParallelMany", x4, r4.X)

			x5, st5, err := an.SolveRefinedStats(f, b)
			if err != nil {
				t.Fatal(err)
			}
			r5, err := an.SolveOpts(ctx, f, b, SolveOptions{Runtime: RuntimeSequential, Refine: &RefineOptions{}})
			if err != nil {
				t.Fatal(err)
			}
			bitwiseSame(t, "SolveRefinedStats", x5, r5.X)
			if r5.Refine == nil || r5.Refine.Iterations != st5.Iterations ||
				r5.Refine.BackwardError != st5.BackwardError || r5.Refine.Converged != st5.Converged {
				t.Fatalf("refine stats diverge: wrapper %+v, SolveOpts %+v", st5, r5.Refine)
			}

			x6, err := an.SolveRefined(f, b, 2)
			if err != nil {
				t.Fatal(err)
			}
			r6, err := an.SolveOpts(ctx, f, b, SolveOptions{Runtime: RuntimeSequential, Refine: &RefineOptions{MaxIter: 2}})
			if err != nil {
				t.Fatal(err)
			}
			bitwiseSame(t, "SolveRefined", x6, r6.X)
		})
	}
}

// TestSolveOptsEngineDeterminism checks the headline guarantee of the
// redesign at the public surface: the level-set engine (both dispatch modes)
// returns solutions bit-identical to the sequential Solve, and each column of
// a level-set panel solve is bit-identical to the single-RHS Solve of it.
func TestSolveOptsEngineDeterminism(t *testing.T) {
	an, f, b := solveOptsFixture(t, Options{Processors: 4})
	ctx := context.Background()
	ref, err := an.Solve(f, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, rt := range []Runtime{RuntimeShared, RuntimeDynamic} {
		res, err := an.SolveOpts(ctx, f, b, SolveOptions{Runtime: rt})
		if err != nil {
			t.Fatal(err)
		}
		bitwiseSame(t, "level engine", res.X, ref)
		if res.Plan.Cells == 0 || res.Plan.Levels == 0 || res.Plan.Workers != 4 {
			t.Fatalf("level engine reported no plan: %+v", res.Plan)
		}
	}
	const nrhs = 3
	n := len(b)
	panel := make([]float64, n*nrhs)
	for r := 0; r < nrhs; r++ {
		for i := 0; i < n; i++ {
			panel[i+r*n] = b[i] / float64(r+1)
		}
	}
	res, err := an.SolveOpts(ctx, f, panel, SolveOptions{NRHS: nrhs})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < nrhs; r++ {
		col, err := an.Solve(f, panel[r*n:(r+1)*n])
		if err != nil {
			t.Fatal(err)
		}
		bitwiseSame(t, "panel column", res.X[r*n:(r+1)*n], col)
	}
	// Sequential engines report no level-set plan.
	rs, err := an.SolveOpts(ctx, f, b, SolveOptions{Runtime: RuntimeSequential})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Plan != (PlanStats{}) {
		t.Fatalf("sequential solve reported a plan: %+v", rs.Plan)
	}
}

// TestSolveOptsRefinePanel refines every column of a panel solve and checks
// the aggregated stats plus the actual residuals.
func TestSolveOptsRefinePanel(t *testing.T) {
	a := gen.Laplacian2D(16, 16)
	an, err := Analyze(a, Options{Processors: 4})
	if err != nil {
		t.Fatal(err)
	}
	f, err := an.Factorize()
	if err != nil {
		t.Fatal(err)
	}
	_, b := gen.RHSForSolution(a)
	const nrhs = 3
	n := len(b)
	panel := make([]float64, n*nrhs)
	for r := 0; r < nrhs; r++ {
		for i := 0; i < n; i++ {
			panel[i+r*n] = b[i] * float64(r+1)
		}
	}
	res, err := an.SolveOpts(context.Background(), f, panel, SolveOptions{NRHS: nrhs, Refine: &RefineOptions{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Refine == nil || !res.Refine.Converged {
		t.Fatalf("panel refinement did not converge: %+v", res.Refine)
	}
	if len(res.Refine.Trajectory) != 0 {
		t.Fatal("trajectory reported for a panel refine (single-RHS only)")
	}
	for r := 0; r < nrhs; r++ {
		if rr := Residual(a, res.X[r*n:(r+1)*n], panel[r*n:(r+1)*n]); rr > 1e-10 {
			t.Fatalf("column %d residual %g after refinement", r, rr)
		}
	}
}

// TestSolveOptsTraced runs a traced level-set solve and checks the returned
// trace renders (standalone solve traces support the Chrome export, not the
// schedule-divergence report).
func TestSolveOptsTraced(t *testing.T) {
	an, f, b := solveOptsFixture(t, Options{Processors: 3})
	res, err := an.SolveOpts(context.Background(), f, b, SolveOptions{Trace: &TraceOptions{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("no trace returned")
	}
	var buf bytes.Buffer
	if err := res.Trace.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty chrome trace")
	}
}

// TestSolveOptsValidation pins the error surface of the unified entry point.
func TestSolveOptsValidation(t *testing.T) {
	an, f, b := solveOptsFixture(t, Options{Processors: 2})
	ctx := context.Background()
	cases := []struct {
		name string
		call func() error
		want error
	}{
		{"short rhs", func() error {
			_, err := an.SolveOpts(ctx, f, b[:3], SolveOptions{})
			return err
		}, ErrShape},
		{"short panel", func() error {
			_, err := an.SolveOpts(ctx, f, b, SolveOptions{NRHS: 2})
			return err
		}, ErrShape},
		{"negative nrhs", func() error {
			_, err := an.SolveOpts(ctx, f, b, SolveOptions{NRHS: -1})
			return err
		}, ErrShape},
		{"bad runtime", func() error {
			_, err := an.SolveOpts(ctx, f, b, SolveOptions{Runtime: Runtime(99)})
			return err
		}, ErrBadOptions},
		{"negative refine tol", func() error {
			_, err := an.SolveOpts(ctx, f, b, SolveOptions{Refine: &RefineOptions{Tol: -1}})
			return err
		}, ErrBadOptions},
		{"negative refine iters", func() error {
			_, err := an.SolveOpts(ctx, f, b, SolveOptions{Refine: &RefineOptions{MaxIter: -1}})
			return err
		}, ErrBadOptions},
		{"traced sequential", func() error {
			_, err := an.SolveOpts(ctx, f, b, SolveOptions{Runtime: RuntimeSequential, Trace: &TraceOptions{}})
			return err
		}, ErrBadOptions},
	}
	for _, tc := range cases {
		if err := tc.call(); !errors.Is(err, tc.want) {
			t.Fatalf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	if _, err := an.SolveOpts(ctx, nil, b, SolveOptions{}); err != ErrFactorMismatch {
		t.Fatalf("nil factor: err = %v", err)
	}
	other, err := Analyze(gen.Laplacian2D(8, 8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.SolveOpts(ctx, f, b, SolveOptions{}); err != ErrFactorMismatch {
		t.Fatalf("foreign factor: err = %v", err)
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := an.SolveOpts(cctx, f, b, SolveOptions{}); err != context.Canceled {
		t.Fatalf("cancelled: err = %v", err)
	}
}

// TestPrepareSolvePublic warms the solve path and checks the stats match the
// plan a later solve reports.
func TestPrepareSolvePublic(t *testing.T) {
	an, f, b := solveOptsFixture(t, Options{Processors: 4})
	st, err := an.PrepareSolve(f)
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 4 || st.Cells == 0 {
		t.Fatalf("PrepareSolve stats: %+v", st)
	}
	res, err := an.SolveOpts(context.Background(), f, b, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan != st {
		t.Fatalf("solve plan %+v differs from prepared %+v", res.Plan, st)
	}
	if _, err := an.PrepareSolve(nil); err != ErrFactorMismatch {
		t.Fatalf("nil factor: err = %v", err)
	}
}
