package pastix

import (
	"github.com/pastix-go/pastix/internal/faults"
	"github.com/pastix-go/pastix/internal/mpsim"
)

// FaultPlan configures deterministic fault injection for the message-passing
// runtime (Options.Faults): seeded per-message drop/duplicate/delay
// probabilities, worker crash-at-task and stall schedules, and the
// reliability-layer tuning. The zero value injects nothing. The same seed
// and workload reproduce the same faults, so any chaos failure can be
// replayed from its seed.
//
// Under an active plan the runtime switches to a reliable protocol (sequence
// numbers, dedup, ack+resend, heartbeat supervision, crash restart with
// replay from the completion log) and still produces a factor and solution
// bit-for-bit identical to the fault-free run; past-recovery degradation
// surfaces as ErrFaultBudget.
type FaultPlan = faults.Plan

// FaultStall schedules one worker stall window in a FaultPlan.
type FaultStall = faults.Stall

// FaultReliability tunes the reliability layer of a FaultPlan (resend
// timeouts, retry and restart budgets, stall detection). The zero value
// selects the documented defaults.
type FaultReliability = mpsim.Reliability
