package pastix_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"testing"
	"time"

	"github.com/pastix-go/pastix"
	"github.com/pastix-go/pastix/internal/gen"
)

// TestFactorizeTracedEndToEnd is the acceptance path: a traced P=4 3D
// Poisson factorization must produce well-formed Chrome trace JSON with one
// complete task event per schedule task, and a consistent divergence
// summary — under both runtimes.
func TestFactorizeTracedEndToEnd(t *testing.T) {
	a := gen.Laplacian3D(8, 8, 8)
	for _, shared := range []bool{false, true} {
		name := "mpsim"
		if shared {
			name = "shared"
		}
		t.Run(name, func(t *testing.T) {
			an, err := pastix.Analyze(a, pastix.Options{Processors: 4, SharedMemory: shared})
			if err != nil {
				t.Fatal(err)
			}
			f, tr, err := an.FactorizeTraced(context.Background(), pastix.TraceOptions{})
			if err != nil {
				t.Fatal(err)
			}
			st := an.Stats()

			sum, err := tr.Summary()
			if err != nil {
				t.Fatal(err)
			}
			if sum.Tasks != st.Tasks {
				t.Fatalf("summary covers %d tasks, schedule has %d", sum.Tasks, st.Tasks)
			}
			if sum.Processors != 4 || sum.MeasuredMakespan <= 0 || sum.TimeScale <= 0 {
				t.Fatalf("implausible summary: %+v", sum)
			}
			if shared && sum.Messages != 0 {
				t.Fatalf("shared runtime reported %d messages", sum.Messages)
			}

			var buf bytes.Buffer
			if err := tr.WriteChromeTrace(&buf); err != nil {
				t.Fatal(err)
			}
			var doc struct {
				TraceEvents []struct {
					Name string   `json:"name"`
					Cat  string   `json:"cat"`
					Ph   string   `json:"ph"`
					Ts   *float64 `json:"ts"`
					Pid  *int     `json:"pid"`
					Tid  *int     `json:"tid"`
				} `json:"traceEvents"`
				DisplayTimeUnit string `json:"displayTimeUnit"`
			}
			if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
				t.Fatalf("invalid Chrome trace JSON: %v", err)
			}
			taskEvents := 0
			for _, e := range doc.TraceEvents {
				if e.Ts == nil || e.Pid == nil || e.Tid == nil || e.Name == "" {
					t.Fatalf("event missing required field: %+v", e)
				}
				if e.Ph == "X" && e.Cat == "task" {
					taskEvents++
				}
			}
			if taskEvents != st.Tasks {
				t.Fatalf("Chrome trace holds %d task events, schedule has %d", taskEvents, st.Tasks)
			}

			var rep bytes.Buffer
			if err := tr.WriteReport(&rep); err != nil {
				t.Fatal(err)
			}
			if rep.Len() == 0 {
				t.Fatal("empty divergence report")
			}

			// The traced factor must still solve, and a traced solve appends
			// its events to the same trace.
			b := make([]float64, a.N)
			for i := range b {
				b[i] = 1
			}
			x, err := an.SolveParallelTraced(context.Background(), f, b, tr)
			if err != nil {
				t.Fatal(err)
			}
			if r := pastix.Residual(a, x, b); r > 1e-10 {
				t.Fatalf("residual %g after traced solve", r)
			}
		})
	}
}

// TestFactorizeContextCancelled: the public context entry points abort on a
// cancelled context without leaking worker goroutines.
func TestFactorizeContextCancelled(t *testing.T) {
	a := gen.Laplacian3D(8, 8, 8)
	for _, shared := range []bool{false, true} {
		an, err := pastix.Analyze(a, pastix.Options{Processors: 4, SharedMemory: shared})
		if err != nil {
			t.Fatal(err)
		}
		base := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := an.FactorizeContext(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("shared=%v: got %v, want context.Canceled", shared, err)
		}
		f, err := an.Factorize()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := an.SolveParallelContext(ctx, f, make([]float64, a.N)); !errors.Is(err, context.Canceled) {
			t.Fatalf("shared=%v solve: got %v, want context.Canceled", shared, err)
		}
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > base {
			if time.Now().After(deadline) {
				t.Fatalf("goroutines leaked: %d now, %d before", runtime.NumGoroutine(), base)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// TestAnalyzeContextCancelled: analysis observes cancellation at phase
// boundaries.
func TestAnalyzeContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pastix.AnalyzeContext(ctx, gen.Laplacian3D(6, 6, 6), pastix.Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
