package pastix

// Benchmarks regenerating the paper's evaluation. One benchmark family per
// table/figure:
//
//	BenchmarkTable1         — per-problem ordering/fill metrics (Table 1)
//	BenchmarkTable2         — modelled factorization time and Gflop/s on the
//	                          SP2 profile, PaStiX vs PSPASES (Table 2)
//	BenchmarkDenseKernels   — dense LLᵀ vs LDLᵀ (the §3 ESSL comparison)
//	BenchmarkFactorization  — executed parallel factorization on this host
//	                          (goroutine processors; validates the protocol)
//	BenchmarkAblation       — mixed 1D/2D vs 1D-only, greedy vs naive mapping
//	BenchmarkSolve          — triangular solve throughput
//
// Modelled quantities are attached as custom metrics (model-sec, model-GF)
// so `go test -bench` prints the paper-comparable numbers next to the host
// wall-clock costs of producing them.

import (
	"fmt"
	"testing"

	"github.com/pastix-go/pastix/internal/bench"
	"github.com/pastix-go/pastix/internal/blas"
	"github.com/pastix-go/pastix/internal/cost"
	"github.com/pastix-go/pastix/internal/gen"
	"github.com/pastix-go/pastix/internal/multifrontal"
	"github.com/pastix-go/pastix/internal/part"
	"github.com/pastix-go/pastix/internal/solver"
	"github.com/pastix-go/pastix/internal/sparse"
)

// benchScale keeps full `go test -bench=.` runs in CI territory; use
// cmd/pastix-bench -scale for larger reproductions.
const benchScale = 0.1

// skipIfShort keeps `go test -bench=. -short` to the light kernel
// benchmarks: the full-matrix families re-run the analysis pipeline every
// iteration and dominate the suite's wall-clock.
func skipIfShort(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("heavy benchmark; run without -short")
	}
}

func BenchmarkTable1(b *testing.B) {
	skipIfShort(b)
	for _, name := range gen.Names() {
		b.Run(name, func(b *testing.B) {
			var an *solver.Analysis
			for i := 0; i < b.N; i++ {
				var err error
				an, err = bench.PastixAnalysis(name, benchScale, 1)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(an.A.N), "columns")
			b.ReportMetric(float64(an.ScalarNNZL), "NNZL")
			b.ReportMetric(an.ScalarOPC, "OPC")
		})
	}
}

func BenchmarkTable2(b *testing.B) {
	skipIfShort(b)
	mach := cost.SP2()
	for _, name := range gen.Names() {
		for _, p := range []int{1, 4, 16, 64} {
			b.Run(fmt.Sprintf("%s/P%d", name, p), func(b *testing.B) {
				var pastixT, pspasesT float64
				var opc float64
				for i := 0; i < b.N; i++ {
					pa, err := bench.PastixAnalysis(name, benchScale, p)
					if err != nil {
						b.Fatal(err)
					}
					pastixT = pa.Sched.Replay()
					opc = pa.ScalarOPC
					ps, err := bench.PspasesAnalysis(name, benchScale, p)
					if err != nil {
						b.Fatal(err)
					}
					pspasesT = multifrontal.SimulateTime(ps, mach)
				}
				b.ReportMetric(pastixT, "pastix-model-sec")
				b.ReportMetric(opc/pastixT/1e9, "pastix-model-GF")
				b.ReportMetric(pspasesT, "pspases-model-sec")
			})
		}
	}
}

func BenchmarkDenseKernels(b *testing.B) {
	for _, n := range []int{256, 512} {
		src := make([]float64, n*n)
		for j := 0; j < n; j++ {
			src[j+j*n] = float64(n) + 1
			for i := j + 1; i < n; i++ {
				src[i+j*n] = -0.5 / float64(n)
			}
		}
		a := make([]float64, n*n)
		b.Run(fmt.Sprintf("LLT/n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(a, src)
				if err := blas.Cholesky(n, a, n); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(2*float64(n)*float64(n)*float64(n)/3, "flops/op")
		})
		b.Run(fmt.Sprintf("LDLT/n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(a, src)
				if err := blas.LDLT(n, a, n); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(2*float64(n)*float64(n)*float64(n)/3, "flops/op")
		})
	}
}

func BenchmarkFactorization(b *testing.B) {
	skipIfShort(b)
	for _, name := range []string{"THREAD", "QUER", "SHIP003"} {
		for _, p := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/P%d", name, p), func(b *testing.B) {
				an, err := bench.PastixAnalysis(name, benchScale, p)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := an.Factorize(); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(an.ScalarOPC, "OPC")
			})
		}
	}
}

func BenchmarkAblation(b *testing.B) {
	skipIfShort(b)
	for _, p := range []int{8, 32} {
		b.Run(fmt.Sprintf("BMWCRA1/P%d", p), func(b *testing.B) {
			var row bench.AblationRow
			for i := 0; i < b.N; i++ {
				var err error
				row, err = bench.Ablate("BMWCRA1", benchScale, p)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.Mixed1D2D, "mixed-model-sec")
			b.ReportMetric(row.Only1D, "only1D-model-sec")
			b.ReportMetric(row.FirstCand, "firstcand-model-sec")
		})
	}
}

func BenchmarkSolve(b *testing.B) {
	an, err := bench.PastixAnalysis("OILPAN", benchScale, 1)
	if err != nil {
		b.Fatal(err)
	}
	f, err := an.Factorize()
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, an.A.N)
	for i := range rhs {
		rhs[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Solve(rhs)
	}
}

func BenchmarkSolveVariants(b *testing.B) {
	skipIfShort(b)
	an, err := bench.PastixAnalysis("QUER", benchScale, 4)
	if err != nil {
		b.Fatal(err)
	}
	f, err := an.Factorize()
	if err != nil {
		b.Fatal(err)
	}
	n := an.A.N
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = 1
	}
	b.Run("Sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = f.Solve(rhs)
		}
	})
	b.Run("Parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := solver.SolvePar(an.Sched, f, rhs); err != nil {
				b.Fatal(err)
			}
		}
	})
	const nrhs = 8
	panel := make([]float64, n*nrhs)
	for i := range panel {
		panel[i] = 1
	}
	b.Run("Many8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = f.SolveMany(panel, nrhs)
		}
	})
}

func BenchmarkFanInVsFanOut(b *testing.B) {
	skipIfShort(b)
	prob, err := gen.Generate("BMWCRA1", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	an, err := solver.Analyze(prob.A, solver.Options{P: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("FanIn", func(b *testing.B) {
		var st solver.CommStats
		for i := 0; i < b.N; i++ {
			_, st, err = solver.FactorizeParStats(an.A, an.Sched, solver.ParOptions{})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(st.Messages), "msgs")
		b.ReportMetric(float64(st.Bytes), "bytes")
	})
	b.Run("FanOut", func(b *testing.B) {
		var st solver.CommStats
		for i := 0; i < b.N; i++ {
			_, st, err = solver.FactorizeFanOut(an.A, an.Sched)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(st.Messages), "msgs")
		b.ReportMetric(float64(st.Bytes), "bytes")
	})
}

func BenchmarkComplexFactorization(b *testing.B) {
	skipIfShort(b)
	// Complex symmetric LDLᵀ costs ≈4× the real flops per entry; compare.
	prob, err := gen.Generate("THREAD", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	an, err := solver.Analyze(prob.A, solver.Options{P: 1})
	if err != nil {
		b.Fatal(err)
	}
	zb := sparse.NewZBuilder(prob.A.N)
	for j := 0; j < prob.A.N; j++ {
		for p := prob.A.ColPtr[j]; p < prob.A.ColPtr[j+1]; p++ {
			i := prob.A.RowIdx[p]
			v := prob.A.Val[p]
			if i == j {
				zb.Add(i, j, complex(v, v/4))
			} else {
				zb.Add(i, j, complex(v, 0.1*v))
			}
		}
	}
	paz := zb.Build().Permute(an.Perm)
	b.Run("Real", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := solver.FactorizeSeq(an.A, an.Sym); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Complex", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := solver.FactorizeZSeq(paz, an.Sym); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSharedVsMpsim times the executed factorization of a 3D Poisson
// problem under the two runtimes at each processor count: the mpsim
// message-passing runtime pays for packing, copying and the final gather;
// the shared-memory runtime aggregates in place. Message volume is attached
// to the mpsim rows as custom metrics.
func BenchmarkSharedVsMpsim(b *testing.B) {
	a := gen.Laplacian3D(12, 12, 12)
	for _, p := range []int{1, 2, 4, 8} {
		an, err := solver.Analyze(a, solver.Options{
			P:    p,
			Part: part.Options{BlockSize: 16, Ratio2D: 2, MinWidth2D: 8},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("Mpsim/P%d", p), func(b *testing.B) {
			var st solver.CommStats
			for i := 0; i < b.N; i++ {
				if _, st, err = solver.FactorizeParStats(an.A, an.Sched, solver.ParOptions{}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(st.Messages), "msgs")
			b.ReportMetric(float64(st.Bytes), "bytes")
		})
		b.Run(fmt.Sprintf("Shared/P%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := solver.FactorizeShared(an.A, an.Sched); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
