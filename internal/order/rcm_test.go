package order

import (
	"math/rand"
	"testing"

	"github.com/pastix-go/pastix/internal/graph"
)

func TestRCMIsPermutation(t *testing.T) {
	g := graph.Grid2D(9, 7)
	o := RCM(g)
	if err := o.Validate(g.N); err != nil {
		t.Fatal(err)
	}
}

func TestRCMReducesBandwidthOnShuffledGrid(t *testing.T) {
	// Build a grid whose natural labels are shuffled; RCM must bring the
	// bandwidth down to near the grid's optimum (min(nx,ny)+1).
	nx, ny := 16, 12
	base := graph.Grid2D(nx, ny)
	rng := rand.New(rand.NewSource(61))
	shuffle := rng.Perm(base.N)
	adj := make([][]int, base.N)
	for v := 0; v < base.N; v++ {
		for _, u := range base.Neighbors(v) {
			adj[shuffle[v]] = append(adj[shuffle[v]], shuffle[u])
		}
	}
	g := graph.New(adj)
	ident := make([]int, g.N)
	for i := range ident {
		ident[i] = i
	}
	before := Bandwidth(g, ident)
	o := RCM(g)
	after := Bandwidth(g, o.IPerm)
	if after >= before {
		t.Fatalf("RCM did not reduce bandwidth: %d -> %d", before, after)
	}
	if after > 3*(min(nx, ny)+1) {
		t.Fatalf("RCM bandwidth %d far from grid optimum %d", after, min(nx, ny)+1)
	}
	if p := Profile(g, o.IPerm); p <= 0 {
		t.Fatal("profile must be positive")
	}
}

func TestRCMDisconnected(t *testing.T) {
	// Two components.
	adj := make([][]int, 7)
	adj[0] = []int{1}
	adj[1] = []int{2}
	adj[4] = []int{5}
	adj[5] = []int{6}
	g := graph.New(adj)
	o := RCM(g)
	if err := o.Validate(g.N); err != nil {
		t.Fatal(err)
	}
}

func TestBandwidthOfPath(t *testing.T) {
	g := graph.Grid2D(10, 1)
	ident := make([]int, 10)
	for i := range ident {
		ident[i] = i
	}
	if bw := Bandwidth(g, ident); bw != 1 {
		t.Fatalf("path bandwidth %d", bw)
	}
	if p := Profile(g, ident); p != 9 {
		t.Fatalf("path profile %d", p)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
