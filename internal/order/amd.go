// Package order computes fill-reducing orderings of symmetric sparse
// matrices. It provides an Approximate Minimum Degree (AMD) ordering on a
// quotient graph — including the Halo-AMD variant used on nested-dissection
// leaves — and a nested-dissection driver that tightly couples the two, in
// the manner of Scotch's ND/HAMD hybridization cited by the paper
// (Pellegrini, Roman & Amestoy).
package order

import (
	"container/heap"

	"github.com/pastix-go/pastix/internal/graph"
)

// amdState holds the quotient-graph data of one AMD run.
//
// A vertex id plays one of three roles over time: an alive supervariable, an
// absorbed supervariable (merged into another that carries its weight), or an
// element (an eliminated pivot whose clique is represented by the list of
// supervariables it reaches). Adjacency lists are purged lazily.
type amdState struct {
	n    int
	g    *graph.Graph
	halo []bool // halo[v]: v participates in degrees but is never eliminated

	role   []int8  // roleAlive, roleAbsorbed, roleElement
	w      []int   // supervariable weight (original vertex count), 0 once absorbed
	adjS   [][]int // supervariable-supervariable adjacency (may hold stale ids)
	adjE   [][]int // elements adjacent to a supervariable (may hold stale ids)
	elemL  [][]int // for an element, the supervariables it reaches (may be stale)
	dead   []bool  // element absorbed into a newer element
	deg    []int   // approximate external degree (weighted)
	merged [][]int // original vertices carried by a supervariable (incl. itself)

	mark  []int // generation marks
	stamp int

	h degHeap
}

const (
	roleAlive int8 = iota
	roleAbsorbed
	roleElement
)

type degItem struct {
	deg, v int
}

type degHeap []degItem

func (h degHeap) Len() int { return len(h) }
func (h degHeap) Less(i, j int) bool {
	if h[i].deg != h[j].deg {
		return h[i].deg < h[j].deg
	}
	return h[i].v < h[j].v // deterministic tie-break
}
func (h degHeap) Swap(i, j int)    { h[i], h[j] = h[j], h[i] }
func (h *degHeap) Push(x any)      { *h = append(*h, x.(degItem)) }
func (h *degHeap) Pop() any        { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
func (s *amdState) push(v int)     { heap.Push(&s.h, degItem{s.deg[v], v}) }
func (s *amdState) nextStamp() int { s.stamp++; return s.stamp }

// AMDResult reports an AMD ordering of the non-halo vertices of a graph.
type AMDResult struct {
	// Order lists the (local) interior vertex ids in elimination order.
	Order []int
	// Supernodes partitions Order into consecutive groups: Supernodes[k] is
	// the number of vertices emitted by the k-th pivot elimination. These are
	// the amalgamated supervariables that seed the supernode partition.
	Supernodes []int
}

// AMD orders all vertices of g by approximate minimum degree.
func AMD(g *graph.Graph) *AMDResult { return HaloAMD(g, g.N) }

// HaloAMD orders the interior vertices [0, nInner) of g by approximate
// minimum degree. Vertices [nInner, g.N) form the halo: they contribute to
// the degrees of interior vertices (so that boundary vertices are not
// mistaken for low-degree ones) but are never eliminated and do not appear
// in the result. With nInner == g.N this is plain AMD.
func HaloAMD(g *graph.Graph, nInner int) *AMDResult {
	n := g.N
	s := &amdState{
		n: n, g: g,
		halo:   make([]bool, n),
		role:   make([]int8, n),
		w:      make([]int, n),
		adjS:   make([][]int, n),
		adjE:   make([][]int, n),
		elemL:  make([][]int, n),
		dead:   make([]bool, n),
		deg:    make([]int, n),
		merged: make([][]int, n),
		mark:   make([]int, n),
	}
	for v := 0; v < n; v++ {
		s.halo[v] = v >= nInner
		s.w[v] = g.Weight(v)
		s.adjS[v] = append([]int(nil), g.Neighbors(v)...)
		s.merged[v] = []int{v}
		d := 0
		for _, u := range g.Neighbors(v) {
			d += g.Weight(u)
		}
		s.deg[v] = d
		if !s.halo[v] {
			s.push(v)
		}
	}

	res := &AMDResult{}
	remaining := nInner
	for remaining > 0 {
		p := s.popPivot()
		emitted := s.eliminate(p)
		res.Order = append(res.Order, emitted...)
		res.Supernodes = append(res.Supernodes, len(emitted))
		remaining -= len(emitted)
	}
	return res
}

// popPivot pops heap entries until one matches a live interior supervariable
// with an up-to-date degree.
func (s *amdState) popPivot() int {
	for {
		it := heap.Pop(&s.h).(degItem)
		v := it.v
		if s.role[v] == roleAlive && !s.halo[v] && s.deg[v] == it.deg {
			return v
		}
	}
}

// purgeS removes dead entries and entries marked with curStamp from adjS[v].
func (s *amdState) purgeS(v, curStamp int) {
	out := s.adjS[v][:0]
	for _, u := range s.adjS[v] {
		if s.role[u] == roleAlive && s.mark[u] != curStamp && u != v {
			out = append(out, u)
		}
	}
	s.adjS[v] = out
}

// eliminate turns pivot p into an element, updates degrees of its
// neighbourhood, merges indistinguishable supervariables, and returns the
// original interior vertices ordered by this step.
func (s *amdState) eliminate(p int) []int {
	// --- Build Lp = alive supervariables reachable from p. ---
	st := s.nextStamp()
	s.mark[p] = st
	var lp []int
	addLp := func(u int) {
		if s.role[u] == roleAlive && s.mark[u] != st {
			s.mark[u] = st
			lp = append(lp, u)
		}
	}
	for _, u := range s.adjS[p] {
		addLp(u)
	}
	for _, e := range s.adjE[p] {
		if s.role[e] != roleElement || s.dead[e] {
			continue
		}
		for _, u := range s.elemL[e] {
			addLp(u)
		}
		s.dead[e] = true // absorbed into the new element p
	}

	// --- p becomes element with list Lp. ---
	s.role[p] = roleElement
	s.elemL[p] = lp
	s.adjS[p] = nil
	s.adjE[p] = nil
	wp := 0
	for _, u := range lp {
		wp += s.w[u]
	}

	// --- Compute |L_e \ Lp| (weighted) for elements touching Lp. ---
	// est[e] starts at |L_e| and is decremented by w(v) for each v in Lp∩L_e.
	est := make(map[int]int)
	for _, v := range lp {
		for _, e := range s.adjE[v] {
			if s.role[e] != roleElement || s.dead[e] {
				continue
			}
			if _, ok := est[e]; !ok {
				t := 0
				for _, u := range s.elemL[e] {
					if s.role[u] == roleAlive {
						t += s.w[u]
					}
				}
				est[e] = t
			}
			est[e] -= s.w[v]
		}
	}

	// --- Update each v in Lp. ---
	type hashed struct{ v, hash int }
	var candidates []hashed
	for _, v := range lp {
		// Purge stale elements; keep live ones distinct from p.
		eout := s.adjE[v][:0]
		for _, e := range s.adjE[v] {
			if s.role[e] == roleElement && !s.dead[e] && e != p {
				eout = append(eout, e)
			}
		}
		s.adjE[v] = append(eout, p)

		// adjS[v] loses members of Lp (they are reachable through element p)
		// and dead ids.
		s.purgeS(v, st)

		// Approximate external degree.
		dS := 0
		for _, u := range s.adjS[v] {
			dS += s.w[u]
		}
		dE := wp - s.w[v]
		hash := p
		for _, e := range s.adjE[v] {
			if e != p {
				if x := est[e]; x > 0 {
					dE += x
				}
			}
			hash += e
		}
		nd := dS + dE
		if nd > s.deg[v]+wp-s.w[v] {
			nd = s.deg[v] + wp - s.w[v]
		}
		s.deg[v] = nd

		for _, u := range s.adjS[v] {
			hash += u
		}
		candidates = append(candidates, hashed{v, hash})
	}

	// --- Indistinguishable supervariable detection within Lp. ---
	byHash := make(map[int][]int)
	for _, c := range candidates {
		byHash[c.hash] = append(byHash[c.hash], c.v)
	}
	for _, bucket := range byHash {
		for i := 0; i < len(bucket); i++ {
			vi := bucket[i]
			if s.role[vi] != roleAlive {
				continue
			}
			for j := i + 1; j < len(bucket); j++ {
				vj := bucket[j]
				if s.role[vj] != roleAlive || s.halo[vi] != s.halo[vj] {
					continue
				}
				if s.indistinguishable(vi, vj) {
					// Absorb vj into vi: vj's weight moves from vi's external
					// degree (vj was reachable through element p) to vi itself.
					wj := s.w[vj]
					s.w[vi] += wj
					s.w[vj] = 0
					s.role[vj] = roleAbsorbed
					s.merged[vi] = append(s.merged[vi], s.merged[vj]...)
					s.merged[vj] = nil
					s.deg[vi] -= wj
				}
			}
		}
	}

	// Requeue updated interior supervariables.
	for _, v := range lp {
		if s.role[v] == roleAlive && !s.halo[v] {
			s.push(v)
		}
	}

	// --- Emit ordered original vertices of the pivot supervariable. ---
	out := s.merged[p]
	s.merged[p] = nil
	return out
}

// indistinguishable reports whether supervariables a and b have identical
// quotient-graph adjacency (elements and supervariables), ignoring each
// other.
func (s *amdState) indistinguishable(a, b int) bool {
	st := s.nextStamp()
	na := 0
	for _, e := range s.adjE[a] {
		if s.role[e] == roleElement && !s.dead[e] && s.mark[e] != st {
			s.mark[e] = st
			na++
		}
	}
	for _, u := range s.adjS[a] {
		if s.role[u] == roleAlive && u != b && s.mark[u] != st {
			s.mark[u] = st
			na++
		}
	}
	nb := 0
	for _, e := range s.adjE[b] {
		if s.role[e] == roleElement && !s.dead[e] {
			if s.mark[e] != st {
				return false
			}
			nb++
		}
	}
	for _, u := range s.adjS[b] {
		if s.role[u] == roleAlive && u != a {
			if s.mark[u] != st {
				return false
			}
			nb++
		}
	}
	return na == nb
}
