package order

import (
	"testing"

	"github.com/pastix-go/pastix/internal/graph"
)

// dofExpand mirrors the graph test helper.
func dofExpand(g *graph.Graph, dof int) *graph.Graph {
	adj := make([][]int, g.N*dof)
	for v := 0; v < g.N; v++ {
		for a := 0; a < dof; a++ {
			for b := a + 1; b < dof; b++ {
				adj[v*dof+a] = append(adj[v*dof+a], v*dof+b)
			}
			for _, u := range g.Neighbors(v) {
				for b := 0; b < dof; b++ {
					adj[v*dof+a] = append(adj[v*dof+a], u*dof+b)
				}
			}
		}
	}
	return graph.New(adj)
}

func TestCompressedOrderingValid(t *testing.T) {
	g := dofExpand(graph.Grid2D(10, 10), 3)
	for _, m := range []Method{ScotchLike, MetisLike, PureAMD} {
		o := Compute(g, Options{Method: m, LeafSize: 20, Compress: true})
		if err := o.Validate(g.N); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
	}
}

func TestCompressedOrderingKeepsGroupsTogether(t *testing.T) {
	const dof = 3
	g := dofExpand(graph.Grid2D(8, 8), dof)
	o := Compute(g, Options{Method: ScotchLike, LeafSize: 15, Compress: true})
	// All DOFs of one node must be consecutive in the permutation.
	for pos := 0; pos < len(o.Perm); pos += dof {
		node := o.Perm[pos] / dof
		for i := 1; i < dof; i++ {
			if o.Perm[pos+i]/dof != node {
				t.Fatalf("group split at position %d", pos)
			}
		}
	}
}

func TestCompressionDoesNotHurtFill(t *testing.T) {
	// Compressed and uncompressed orderings should give similar supernode
	// totals; we only check both are valid and compression keeps the
	// supernode count no larger (groups merge into nodes).
	g := dofExpand(graph.Grid2D(9, 9), 2)
	plain := Compute(g, Options{Method: ScotchLike, LeafSize: 20})
	comp := Compute(g, Options{Method: ScotchLike, LeafSize: 20, Compress: true})
	if err := plain.Validate(g.N); err != nil {
		t.Fatal(err)
	}
	if err := comp.Validate(g.N); err != nil {
		t.Fatal(err)
	}
	if len(comp.SupernodeSizes) > len(plain.SupernodeSizes) {
		t.Fatalf("compression increased supernode count: %d vs %d",
			len(comp.SupernodeSizes), len(plain.SupernodeSizes))
	}
}
