package order

import (
	"fmt"
	"sort"

	"github.com/pastix-go/pastix/internal/graph"
)

// Method selects the ordering algorithm / configuration.
type Method int

const (
	// ScotchLike is the paper's ordering: nested dissection with refined
	// level-set vertex separators, tightly coupled with Halo-AMD on the
	// leaf subgraphs (cf. Pellegrini-Roman-Amestoy hybridization).
	ScotchLike Method = iota
	// MetisLike is the alternative configuration used for the second pair of
	// columns in Table 1: nested dissection with vertex-cover separators
	// derived from the edge bisection, and plain AMD (no halo) on leaves.
	MetisLike
	// PureAMD orders the whole graph by approximate minimum degree.
	PureAMD
	// Natural keeps the input order (each column its own supernode); only
	// useful for tests and tiny problems.
	Natural
)

func (m Method) String() string {
	switch m {
	case ScotchLike:
		return "scotch"
	case MetisLike:
		return "metis"
	case PureAMD:
		return "amd"
	case Natural:
		return "natural"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Options configures Compute.
type Options struct {
	Method   Method
	LeafSize int // dissect until subgraphs have at most this many vertices (default 120)
	// RefinePasses bounds the FM-style separator refinement sweeps
	// (ScotchLike only; default 8).
	RefinePasses int
	// Compress groups vertices with identical closed neighbourhoods before
	// ordering (Scotch-style graph compression). Multi-DOF finite element
	// problems compress by the DOF factor, making ordering cost independent
	// of the per-node unknown count; the expanded ordering keeps grouped
	// vertices consecutive, so they fall into common supernodes.
	Compress bool
	// Multilevel computes ScotchLike separators by coarsening (heavy-edge
	// matching) with per-level refinement instead of a single level-set cut —
	// better separators on irregular graphs at some analysis cost.
	Multilevel bool
	// NoHalo orders ScotchLike leaves with plain AMD instead of Halo-AMD —
	// an ablation switch quantifying what the halo buys (boundary vertices
	// otherwise look artificially low-degree and get eliminated too early).
	NoHalo bool
}

func (o Options) withDefaults() Options {
	if o.LeafSize <= 0 {
		o.LeafSize = 120
	}
	if o.RefinePasses <= 0 {
		o.RefinePasses = 8
	}
	return o
}

// Ordering is the result of the ordering phase: a permutation and the
// supernode partition it induces (separators become supernodes; leaf
// subgraphs contribute their AMD supervariables).
type Ordering struct {
	Perm  []int // Perm[new] = old
	IPerm []int // IPerm[old] = new
	// SupernodeSizes partitions the new index range into consecutive
	// supernodes (sum == n). Further splitting/amalgamation happens later.
	SupernodeSizes []int
}

// Ranges expands SupernodeSizes into half-open column ranges.
func (o *Ordering) Ranges() [][2]int {
	r := make([][2]int, len(o.SupernodeSizes))
	pos := 0
	for i, s := range o.SupernodeSizes {
		r[i] = [2]int{pos, pos + s}
		pos += s
	}
	return r
}

// Validate checks that Perm is a permutation consistent with IPerm and that
// the supernode sizes cover exactly [0,n).
func (o *Ordering) Validate(n int) error {
	if len(o.Perm) != n || len(o.IPerm) != n {
		return fmt.Errorf("order: permutation length mismatch")
	}
	seen := make([]bool, n)
	for newI, old := range o.Perm {
		if old < 0 || old >= n || seen[old] {
			return fmt.Errorf("order: Perm is not a permutation at %d", newI)
		}
		seen[old] = true
		if o.IPerm[old] != newI {
			return fmt.Errorf("order: IPerm inconsistent at old=%d", old)
		}
	}
	tot := 0
	for _, s := range o.SupernodeSizes {
		if s <= 0 {
			return fmt.Errorf("order: non-positive supernode size")
		}
		tot += s
	}
	if tot != n {
		return fmt.Errorf("order: supernode sizes sum to %d, want %d", tot, n)
	}
	return nil
}

// Compute orders graph g with the given options.
func Compute(g *graph.Graph, opts Options) *Ordering {
	opts = opts.withDefaults()
	if opts.Compress && opts.Method != Natural {
		cg, groups := graph.CompressIndistinguishable(g)
		if cg.N < g.N {
			sub := opts
			sub.Compress = false
			return expandOrdering(Compute(cg, sub), groups, g.N)
		}
	}
	o := &Ordering{Perm: make([]int, 0, g.N), IPerm: make([]int, g.N)}
	switch opts.Method {
	case Natural:
		for v := 0; v < g.N; v++ {
			o.Perm = append(o.Perm, v)
			o.SupernodeSizes = append(o.SupernodeSizes, 1)
		}
	case PureAMD:
		res := AMD(g)
		o.Perm = append(o.Perm, res.Order...)
		o.SupernodeSizes = append(o.SupernodeSizes, res.Supernodes...)
	case ScotchLike, MetisLike:
		all := make([]int, g.N)
		for v := range all {
			all[v] = v
		}
		nd := &dissector{g: g, opts: opts, out: o}
		nd.dissect(all)
	default:
		panic("order: unknown method")
	}
	for newI, old := range o.Perm {
		o.IPerm[old] = newI
	}
	return o
}

// expandOrdering maps an ordering of the compressed graph back to the
// original vertices: each compressed vertex expands to its (sorted) members,
// and supernode sizes expand to the total member count.
func expandOrdering(c *Ordering, groups [][]int, n int) *Ordering {
	o := &Ordering{Perm: make([]int, 0, n), IPerm: make([]int, n)}
	pos := 0
	for _, s := range c.SupernodeSizes {
		cols := 0
		for i := 0; i < s; i++ {
			members := groups[c.Perm[pos+i]]
			o.Perm = append(o.Perm, members...)
			cols += len(members)
		}
		pos += s
		o.SupernodeSizes = append(o.SupernodeSizes, cols)
	}
	for newI, old := range o.Perm {
		o.IPerm[old] = newI
	}
	return o
}

type dissector struct {
	g    *graph.Graph
	opts Options
	out  *Ordering
}

// dissect orders the vertices `verts` (global ids) of the dissector's graph,
// appending to the output permutation and supernode list. Subparts come
// first, the separator last, so separators are eliminated after both halves.
func (d *dissector) dissect(verts []int) {
	if len(verts) == 0 {
		return
	}
	if len(verts) <= d.opts.LeafSize {
		d.leaf(verts)
		return
	}
	sub, l2g := d.g.Subgraph(verts)

	// Disconnected subgraphs dissect each component independently.
	comp, ncomp := sub.Components(nil, nil, 0)
	if ncomp > 1 {
		groups := make([][]int, ncomp)
		for lv, c := range comp {
			groups[c] = append(groups[c], l2g[lv])
		}
		for _, grp := range groups {
			d.dissect(grp)
		}
		return
	}

	var a, b, sep []int
	switch {
	case d.opts.Method == MetisLike:
		a, b, sep = vertexCoverSeparator(sub)
	case d.opts.Multilevel:
		a, b, sep = multilevelSeparator(sub, d.opts.RefinePasses)
	default:
		a, b, sep = levelSeparator(sub, d.opts.RefinePasses)
	}
	if len(a) == 0 || len(b) == 0 {
		// No useful split (e.g. near-clique): order the whole thing as a leaf.
		d.leaf(verts)
		return
	}
	toGlobal := func(ls []int) []int {
		out := make([]int, len(ls))
		for i, lv := range ls {
			out[i] = l2g[lv]
		}
		return out
	}
	d.dissect(toGlobal(a))
	d.dissect(toGlobal(b))
	if len(sep) > 0 {
		gsep := toGlobal(sep)
		sort.Ints(gsep) // deterministic intra-separator order
		d.out.Perm = append(d.out.Perm, gsep...)
		d.out.SupernodeSizes = append(d.out.SupernodeSizes, len(gsep))
	}
}

// leaf orders a small subgraph with (Halo-)AMD and emits its supervariables
// as supernodes.
func (d *dissector) leaf(verts []int) {
	var res *AMDResult
	var l2g []int
	if d.opts.Method == ScotchLike && !d.opts.NoHalo {
		var sub *graph.Graph
		var nInner int
		sub, l2g, nInner = d.g.HaloSubgraph(verts)
		res = HaloAMD(sub, nInner)
	} else {
		var sub *graph.Graph
		sub, l2g = d.g.Subgraph(verts)
		res = AMD(sub)
	}
	for _, lv := range res.Order {
		d.out.Perm = append(d.out.Perm, l2g[lv])
	}
	d.out.SupernodeSizes = append(d.out.SupernodeSizes, res.Supernodes...)
}

// levelSeparator bisects a connected graph with a level-set separator rooted
// at a pseudo-peripheral vertex, thins it, and applies bounded FM-style
// refinement. Returns (partA, partB, separator) as local vertex lists.
func levelSeparator(g *graph.Graph, refinePasses int) (a, b, sep []int) {
	root, _ := g.PseudoPeripheral(0, nil, 0)
	order, level := g.BFS(root, nil, 0)
	_ = order
	maxLevel := 0
	for _, l := range level {
		if l > maxLevel {
			maxLevel = l
		}
	}
	if maxLevel == 0 {
		return nil, nil, nil // complete graph: caller falls back to leaf
	}
	// Weight per level; pick the split level where the prefix is closest to
	// half the total.
	wLevel := make([]int, maxLevel+1)
	total := 0
	for v := 0; v < g.N; v++ {
		wLevel[level[v]] += g.Weight(v)
		total += g.Weight(v)
	}
	bestL, bestDiff := 1, total
	prefix := 0
	// Keep at least one level on each side so neither part is empty.
	lastSplit := maxLevel - 1
	if lastSplit < 1 {
		lastSplit = 1
	}
	for l := 0; l < lastSplit; l++ {
		prefix += wLevel[l]
		diff := prefix - (total - prefix)
		if diff < 0 {
			diff = -diff
		}
		if diff < bestDiff {
			bestDiff, bestL = diff, l+1
		}
	}
	// side: 0 = A (levels < bestL), 1 = B (levels > bestL), 2 = separator.
	side := make([]int, g.N)
	for v := 0; v < g.N; v++ {
		switch {
		case level[v] < bestL:
			side[v] = 0
		case level[v] > bestL:
			side[v] = 1
		default:
			side[v] = 2
		}
	}
	thinSeparator(g, side)
	refineSeparator(g, side, refinePasses)
	return collectSides(g, side)
}

// thinSeparator moves separator vertices that touch only one side into that
// side (or into the lighter side if isolated).
func thinSeparator(g *graph.Graph, side []int) {
	wA, wB := sideWeights(g, side)
	changed := true
	for changed {
		changed = false
		for v := 0; v < g.N; v++ {
			if side[v] != 2 {
				continue
			}
			hasA, hasB := false, false
			for _, u := range g.Neighbors(v) {
				if side[u] == 0 {
					hasA = true
				} else if side[u] == 1 {
					hasB = true
				}
			}
			switch {
			case hasA && hasB:
			case hasA:
				side[v] = 0
				wA += g.Weight(v)
				changed = true
			case hasB:
				side[v] = 1
				wB += g.Weight(v)
				changed = true
			default: // isolated within separator
				if wA <= wB {
					side[v], wA = 0, wA+g.Weight(v)
				} else {
					side[v], wB = 1, wB+g.Weight(v)
				}
				changed = true
			}
		}
	}
}

func sideWeights(g *graph.Graph, side []int) (wA, wB int) {
	for v := 0; v < g.N; v++ {
		switch side[v] {
		case 0:
			wA += g.Weight(v)
		case 1:
			wB += g.Weight(v)
		}
	}
	return
}

// refineSeparator performs bounded greedy passes moving a separator vertex
// into one side and pulling its opposite-side neighbours into the separator,
// accepting moves that shrink the separator (or keep it equal while
// improving balance).
func refineSeparator(g *graph.Graph, side []int, passes int) {
	for p := 0; p < passes; p++ {
		improved := false
		wA, wB := sideWeights(g, side)
		for v := 0; v < g.N; v++ {
			if side[v] != 2 {
				continue
			}
			// Cost of moving v to A: opposite-side (B) neighbours must join
			// the separator.
			intoB, intoA := 0, 0
			for _, u := range g.Neighbors(v) {
				switch side[u] {
				case 1:
					intoB += g.Weight(u)
				case 0:
					intoA += g.Weight(u)
				}
			}
			gainToA := g.Weight(v) - intoB // separator weight change * -1
			gainToB := g.Weight(v) - intoA
			doMove := func(target int) {
				for _, u := range g.Neighbors(v) {
					if target == 0 && side[u] == 1 {
						side[u] = 2
						wB -= g.Weight(u)
					} else if target == 1 && side[u] == 0 {
						side[u] = 2
						wA -= g.Weight(u)
					}
				}
				side[v] = target
				if target == 0 {
					wA += g.Weight(v)
				} else {
					wB += g.Weight(v)
				}
			}
			if gainToA > 0 || gainToB > 0 {
				if gainToA >= gainToB {
					doMove(0)
				} else {
					doMove(1)
				}
				improved = true
			} else if gainToA == 0 && wA < wB {
				doMove(0)
				improved = true
			} else if gainToB == 0 && wB < wA {
				doMove(1)
				improved = true
			}
		}
		if !improved {
			break
		}
	}
}

// vertexCoverSeparator (MetisLike) computes the level bisection and then
// covers the cut edges greedily by degree, taking cover vertices as the
// separator.
func vertexCoverSeparator(g *graph.Graph) (a, b, sep []int) {
	root, _ := g.PseudoPeripheral(0, nil, 0)
	_, level := g.BFS(root, nil, 0)
	maxLevel := 0
	for _, l := range level {
		if l > maxLevel {
			maxLevel = l
		}
	}
	if maxLevel == 0 {
		return nil, nil, nil
	}
	wLevel := make([]int, maxLevel+1)
	total := 0
	for v := 0; v < g.N; v++ {
		wLevel[level[v]] += g.Weight(v)
		total += g.Weight(v)
	}
	bestL, bestDiff := 1, total
	prefix := 0
	// Keep at least one level on each side so neither part is empty.
	lastSplit := maxLevel - 1
	if lastSplit < 1 {
		lastSplit = 1
	}
	for l := 0; l < lastSplit; l++ {
		prefix += wLevel[l]
		diff := prefix - (total - prefix)
		if diff < 0 {
			diff = -diff
		}
		if diff < bestDiff {
			bestDiff, bestL = diff, l+1
		}
	}
	side := make([]int, g.N) // 0=A,1=B
	for v := 0; v < g.N; v++ {
		if level[v] < bestL {
			side[v] = 0
		} else {
			side[v] = 1
		}
	}
	// Greedy vertex cover of the cut: repeatedly take the endpoint covering
	// the most uncovered cut edges.
	cutDeg := make([]int, g.N)
	for v := 0; v < g.N; v++ {
		for _, u := range g.Neighbors(v) {
			if side[u] != side[v] {
				cutDeg[v]++
			}
		}
	}
	inSep := make([]bool, g.N)
	for {
		best, bestD := -1, 0
		for v := 0; v < g.N; v++ {
			if !inSep[v] && cutDeg[v] > bestD {
				best, bestD = v, cutDeg[v]
			}
		}
		if best < 0 {
			break
		}
		inSep[best] = true
		for _, u := range g.Neighbors(best) {
			if !inSep[u] && side[u] != side[best] {
				cutDeg[u]--
			}
		}
		cutDeg[best] = 0
	}
	for v := 0; v < g.N; v++ {
		if inSep[v] {
			side[v] = 2
		}
	}
	return collectSides(g, side)
}

func collectSides(g *graph.Graph, side []int) (a, b, sep []int) {
	for v := 0; v < g.N; v++ {
		switch side[v] {
		case 0:
			a = append(a, v)
		case 1:
			b = append(b, v)
		default:
			sep = append(sep, v)
		}
	}
	return
}
