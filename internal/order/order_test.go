package order

import (
	"math/rand"
	"testing"

	"github.com/pastix-go/pastix/internal/graph"
)

func TestAMDPath(t *testing.T) {
	g := graph.Grid2D(10, 1) // path
	res := AMD(g)
	if len(res.Order) != 10 {
		t.Fatalf("order len %d", len(res.Order))
	}
	checkPermutation(t, res.Order, 10)
	sum := 0
	for _, s := range res.Supernodes {
		if s <= 0 {
			t.Fatal("non-positive supernode")
		}
		sum += s
	}
	if sum != 10 {
		t.Fatalf("supernode sizes sum %d", sum)
	}
}

func checkPermutation(t *testing.T, p []int, n int) {
	t.Helper()
	if len(p) != n {
		t.Fatalf("length %d want %d", len(p), n)
	}
	seen := make([]bool, n)
	for _, v := range p {
		if v < 0 || v >= n || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestAMDCompleteGraph(t *testing.T) {
	// K5: every vertex equivalent; AMD should mass-eliminate via
	// indistinguishability into few supernodes.
	adj := make([][]int, 5)
	for i := range adj {
		for j := 0; j < 5; j++ {
			if i != j {
				adj[i] = append(adj[i], j)
			}
		}
	}
	g := graph.New(adj)
	res := AMD(g)
	checkPermutation(t, res.Order, 5)
	if len(res.Supernodes) > 2 {
		t.Fatalf("K5 should collapse into at most 2 supernodes, got %v", res.Supernodes)
	}
}

func TestAMDStarGraph(t *testing.T) {
	// Star: center must be eliminated last.
	adj := make([][]int, 8)
	for i := 1; i < 8; i++ {
		adj[0] = append(adj[0], i)
	}
	g := graph.New(adj)
	res := AMD(g)
	checkPermutation(t, res.Order, 8)
	// The center has degree 7 and must not be eliminated while two or more
	// leaves remain (once one leaf is left, the center ties with it at
	// degree 1, so either may go first).
	pos := 0
	for i, v := range res.Order {
		if v == 0 {
			pos = i
		}
	}
	if pos < 6 {
		t.Fatalf("center eliminated too early (pos %d): %v", pos, res.Order)
	}
}

func TestHaloAMDOnlyInterior(t *testing.T) {
	g := graph.Grid2D(6, 6)
	verts := []int{0, 1, 2, 6, 7, 8, 12, 13, 14} // 3x3 corner block
	sub, l2g, nInner := g.HaloSubgraph(verts)
	res := HaloAMD(sub, nInner)
	if len(res.Order) != nInner {
		t.Fatalf("ordered %d interior, want %d", len(res.Order), nInner)
	}
	for _, lv := range res.Order {
		if lv >= nInner {
			t.Fatalf("halo vertex %d (global %d) in order", lv, l2g[lv])
		}
	}
	checkPermutation(t, res.Order, nInner)
}

func TestHaloAMDPrefersInteriorOfBlock(t *testing.T) {
	// On a path 0-1-2-3-4 with {0,1,2} interior and halo {3}: vertex 2 sees
	// its true degree 2 through the halo, so vertex 0 (true degree 1) must be
	// eliminated first.
	g := graph.Grid2D(5, 1)
	sub, _, nInner := g.HaloSubgraph([]int{0, 1, 2})
	res := HaloAMD(sub, nInner)
	if res.Order[0] != 0 {
		t.Fatalf("expected vertex 0 first, got %v", res.Order)
	}
}

func TestComputeMethods(t *testing.T) {
	g := graph.Grid3D(6, 6, 6)
	for _, m := range []Method{ScotchLike, MetisLike, PureAMD, Natural} {
		o := Compute(g, Options{Method: m, LeafSize: 30})
		if err := o.Validate(g.N); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
	}
}

func TestMethodString(t *testing.T) {
	if ScotchLike.String() != "scotch" || MetisLike.String() != "metis" ||
		PureAMD.String() != "amd" || Natural.String() != "natural" {
		t.Fatal("method names changed")
	}
	if Method(99).String() == "" {
		t.Fatal("unknown method should still print")
	}
}

func TestRangesCoverColumns(t *testing.T) {
	g := graph.Grid2D(15, 15)
	o := Compute(g, Options{Method: ScotchLike, LeafSize: 25})
	pos := 0
	for _, r := range o.Ranges() {
		if r[0] != pos || r[1] <= r[0] {
			t.Fatalf("bad range %v at pos %d", r, pos)
		}
		pos = r[1]
	}
	if pos != g.N {
		t.Fatalf("ranges cover %d of %d", pos, g.N)
	}
}

// separatorProperty checks that for every supernode S ordered at positions
// [lo,hi), no graph edge joins a vertex ordered before lo to a vertex ordered
// at/after hi *through* vertices all ordered earlier — a weak but useful
// proxy: here we simply verify each level-set separator really separates.
func TestLevelSeparatorSeparates(t *testing.T) {
	g := graph.Grid2D(12, 12)
	a, b, sep := levelSeparator(g, 8)
	if len(a) == 0 || len(b) == 0 || len(sep) == 0 {
		t.Fatalf("degenerate split %d/%d/%d", len(a), len(b), len(sep))
	}
	side := make(map[int]int)
	for _, v := range a {
		side[v] = 0
	}
	for _, v := range b {
		side[v] = 1
	}
	for _, v := range a {
		for _, u := range g.Neighbors(v) {
			if s, ok := side[u]; ok && s == 1 {
				t.Fatalf("edge (%d,%d) crosses the separator", v, u)
			}
		}
	}
	// On a 12x12 grid a separator should be around one grid line (≤ ~2 lines
	// after refinement).
	if len(sep) > 30 {
		t.Fatalf("separator too fat: %d", len(sep))
	}
}

func TestVertexCoverSeparatorSeparates(t *testing.T) {
	g := graph.Grid2D(12, 12)
	a, b, sep := vertexCoverSeparator(g)
	if len(a) == 0 || len(b) == 0 || len(sep) == 0 {
		t.Fatalf("degenerate split %d/%d/%d", len(a), len(b), len(sep))
	}
	side := make(map[int]int)
	for _, v := range a {
		side[v] = 0
	}
	for _, v := range b {
		side[v] = 1
	}
	for _, v := range a {
		for _, u := range g.Neighbors(v) {
			if s, ok := side[u]; ok && s == 1 {
				t.Fatalf("edge (%d,%d) crosses the separator", v, u)
			}
		}
	}
}

func TestDissectDisconnected(t *testing.T) {
	// Two disjoint 7x7 grids as one graph.
	g1 := graph.Grid2D(7, 7)
	n := g1.N
	adj := make([][]int, 2*n)
	for v := 0; v < n; v++ {
		for _, u := range g1.Neighbors(v) {
			adj[v] = append(adj[v], u)
			adj[v+n] = append(adj[v+n], u+n)
		}
	}
	g := graph.New(adj)
	o := Compute(g, Options{Method: ScotchLike, LeafSize: 10})
	if err := o.Validate(g.N); err != nil {
		t.Fatal(err)
	}
}

func TestSeparatorLastInOrdering(t *testing.T) {
	// The last supernode of an ND ordering of a connected grid is the top
	// separator; every vertex in it must have neighbours ordered earlier on
	// both "sides" — we at least check it is a genuine vertex separator:
	// removing it disconnects the graph (for a grid large enough).
	g := graph.Grid2D(20, 20)
	o := Compute(g, Options{Method: ScotchLike, LeafSize: 30})
	ranges := o.Ranges()
	top := ranges[len(ranges)-1]
	mask := make([]int, g.N)
	for newI := top[0]; newI < top[1]; newI++ {
		mask[o.Perm[newI]] = 1 // removed
	}
	_, ncomp := g.Components(nil, mask, 0)
	if ncomp < 2 {
		t.Fatalf("top separator does not disconnect the grid (ncomp=%d)", ncomp)
	}
}

func TestOrderDeterminism(t *testing.T) {
	g := graph.Grid3D(7, 7, 7)
	o1 := Compute(g, Options{Method: ScotchLike, LeafSize: 40})
	o2 := Compute(g, Options{Method: ScotchLike, LeafSize: 40})
	for i := range o1.Perm {
		if o1.Perm[i] != o2.Perm[i] {
			t.Fatalf("non-deterministic ordering at %d", i)
		}
	}
}

func TestAMDRandomGraphsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(60)
		adj := make([][]int, n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.15 {
					adj[i] = append(adj[i], j)
				}
			}
		}
		g := graph.New(adj)
		res := AMD(g)
		checkPermutation(t, res.Order, n)
	}
}
