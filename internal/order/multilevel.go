package order

import (
	"github.com/pastix-go/pastix/internal/graph"
)

// Multilevel vertex separators: heavy-edge-style matching coarsens the graph
// until it is small, a separator is computed there, and the partition is
// projected back level by level with thinning + FM refinement at each step —
// the scheme Scotch and MeTiS use, which beats single-shot level-set
// separators on irregular graphs.

// multilevelCoarseThreshold stops coarsening once the graph is this small.
const multilevelCoarseThreshold = 160

// matchVertices computes a maximal matching: match[v] is v's partner (or v
// itself when unmatched). Vertices are scanned by ascending weight so light
// vertices merge first, keeping coarse weights balanced; partners are the
// lightest unmatched neighbour (deterministic tie-break by id).
func matchVertices(g *graph.Graph) []int {
	n := g.N
	match := make([]int, n)
	for v := range match {
		match[v] = -1
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Counting-sortish by weight is overkill; weights are small ints — a
	// simple stable selection by (weight, id) via sort.
	sortByWeight(g, order)
	for _, v := range order {
		if match[v] >= 0 {
			continue
		}
		best := -1
		for _, u := range g.Neighbors(v) {
			if match[u] >= 0 {
				continue
			}
			if best == -1 || g.Weight(u) < g.Weight(best) || (g.Weight(u) == g.Weight(best) && u < best) {
				best = u
			}
		}
		if best == -1 {
			match[v] = v
		} else {
			match[v] = best
			match[best] = v
		}
	}
	return match
}

func sortByWeight(g *graph.Graph, order []int) {
	// insertion-style stable sort by (weight, id); graphs shrink geometrically
	// so the cost is acceptable, but use sort.Slice for large n.
	if len(order) > 64 {
		quickSortByWeight(g, order)
		return
	}
	for i := 1; i < len(order); i++ {
		v := order[i]
		j := i - 1
		for j >= 0 && less(g, v, order[j]) {
			order[j+1] = order[j]
			j--
		}
		order[j+1] = v
	}
}

func less(g *graph.Graph, a, b int) bool {
	if g.Weight(a) != g.Weight(b) {
		return g.Weight(a) < g.Weight(b)
	}
	return a < b
}

func quickSortByWeight(g *graph.Graph, order []int) {
	if len(order) < 2 {
		return
	}
	pivot := order[len(order)/2]
	lo, hi := 0, len(order)-1
	for lo <= hi {
		for less(g, order[lo], pivot) {
			lo++
		}
		for less(g, pivot, order[hi]) {
			hi--
		}
		if lo <= hi {
			order[lo], order[hi] = order[hi], order[lo]
			lo++
			hi--
		}
	}
	quickSortByWeight(g, order[:hi+1])
	quickSortByWeight(g, order[lo:])
}

// multilevelSeparator computes a vertex separator of the connected graph g
// by recursive coarsening. Returns (partA, partB, separator); empty parts
// signal the caller to fall back to a leaf ordering.
func multilevelSeparator(g *graph.Graph, refinePasses int) (a, b, sep []int) {
	if g.N <= multilevelCoarseThreshold {
		return levelSeparator(g, refinePasses)
	}
	match := matchVertices(g)
	// Build the coarse map: one coarse vertex per matched pair / singleton.
	cmap := make([]int, g.N)
	for i := range cmap {
		cmap[i] = -1
	}
	nc := 0
	for v := 0; v < g.N; v++ {
		if cmap[v] >= 0 {
			continue
		}
		cmap[v] = nc
		if m := match[v]; m != v && m >= 0 {
			cmap[m] = nc
		}
		nc++
	}
	if nc >= g.N {
		// Matching made no progress (e.g. edgeless graph); single-level cut.
		return levelSeparator(g, refinePasses)
	}
	cg := g.Compress(cmap, nc)
	ca, cb, csep := multilevelSeparator(cg, refinePasses)
	if len(ca) == 0 || len(cb) == 0 {
		return levelSeparator(g, refinePasses)
	}
	// Project the coarse partition back to the fine graph.
	side := make([]int, g.N)
	cside := make([]int, nc)
	for _, v := range ca {
		cside[v] = 0
	}
	for _, v := range cb {
		cside[v] = 1
	}
	for _, v := range csep {
		cside[v] = 2
	}
	for v := 0; v < g.N; v++ {
		side[v] = cside[cmap[v]]
	}
	// The projected separator is up to twice as thick; thin and refine at
	// this level.
	thinSeparator(g, side)
	refineSeparator(g, side, refinePasses)
	return collectSides(g, side)
}
