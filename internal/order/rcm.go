package order

import (
	"sort"

	"github.com/pastix-go/pastix/internal/graph"
)

// RCM computes the Reverse Cuthill-McKee ordering of g: a bandwidth/profile
// reducing permutation, provided as a classical baseline against the
// fill-reducing orderings (direct solvers on RCM orderings behave like band
// solvers; Table-1-style metrics quantify how much ND+HAMD gains over it).
// Each connected component is ordered from a pseudo-peripheral root by BFS
// with neighbours visited in increasing-degree order; the final ordering is
// reversed.
func RCM(g *graph.Graph) *Ordering {
	n := g.N
	o := &Ordering{Perm: make([]int, 0, n), IPerm: make([]int, n)}
	visited := make([]bool, n)
	queue := make([]int, 0, n)
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		root, _ := g.PseudoPeripheral(start, nil, 0)
		if visited[root] {
			root = start // pseudo-peripheral search is unrestricted; be safe
		}
		queue = append(queue[:0], root)
		visited[root] = true
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			o.Perm = append(o.Perm, v)
			nbrs := append([]int(nil), g.Neighbors(v)...)
			sort.Slice(nbrs, func(i, j int) bool {
				di, dj := g.Degree(nbrs[i]), g.Degree(nbrs[j])
				if di != dj {
					return di < dj
				}
				return nbrs[i] < nbrs[j]
			})
			for _, u := range nbrs {
				if !visited[u] {
					visited[u] = true
					queue = append(queue, u)
				}
			}
		}
	}
	// Reverse (the "R" of RCM).
	for i, j := 0, len(o.Perm)-1; i < j; i, j = i+1, j-1 {
		o.Perm[i], o.Perm[j] = o.Perm[j], o.Perm[i]
	}
	for newI, old := range o.Perm {
		o.IPerm[old] = newI
		o.SupernodeSizes = append(o.SupernodeSizes, 1)
	}
	return o
}

// Bandwidth returns the half-bandwidth of the graph's adjacency under the
// given ordering (max |iperm[u]−iperm[v]| over edges).
func Bandwidth(g *graph.Graph, iperm []int) int {
	bw := 0
	for v := 0; v < g.N; v++ {
		for _, u := range g.Neighbors(v) {
			if d := iperm[v] - iperm[u]; d > bw {
				bw = d
			}
		}
	}
	return bw
}

// Profile returns the envelope size Σ_i (i − min{j : A[perm] has (i,j)}),
// the storage of a variable-band solver under the ordering.
func Profile(g *graph.Graph, iperm []int) int64 {
	var p int64
	for v := 0; v < g.N; v++ {
		minJ := iperm[v]
		for _, u := range g.Neighbors(v) {
			if iperm[u] < minJ {
				minJ = iperm[u]
			}
		}
		p += int64(iperm[v] - minJ)
	}
	return p
}
