package order

import (
	"testing"

	"github.com/pastix-go/pastix/internal/etree"
	"github.com/pastix-go/pastix/internal/graph"
	"github.com/pastix-go/pastix/internal/sparse"
)

// fillOf computes the scalar NNZ(L) of the grid Laplacian under a
// permutation.
func fillOf(t *testing.T, g *graph.Graph, perm []int) int64 {
	t.Helper()
	b := sparse.NewBuilder(g.N)
	for v := 0; v < g.N; v++ {
		b.Add(v, v, float64(g.Degree(v))+1)
		for _, u := range g.Neighbors(v) {
			if u > v {
				b.Add(u, v, -1)
			}
		}
	}
	a := b.Build().Permute(perm)
	parent := etree.Build(a)
	return etree.NNZL(etree.ColCounts(a, parent))
}

// The ordering-quality ladder on a 2D grid: nested dissection beats pure
// AMD slightly or is comparable, both beat RCM, and all beat the natural
// order. This is the machinery behind the paper's Table 1.
func TestOrderingQualityLadder(t *testing.T) {
	g := graph.Grid2D(24, 24)
	natural := make([]int, g.N)
	for i := range natural {
		natural[i] = i
	}
	fills := map[string]int64{
		"natural": fillOf(t, g, natural),
		"rcm":     fillOf(t, g, RCM(g).Perm),
		"amd":     fillOf(t, g, Compute(g, Options{Method: PureAMD}).Perm),
		"nd":      fillOf(t, g, Compute(g, Options{Method: ScotchLike, LeafSize: 30}).Perm),
		"metis":   fillOf(t, g, Compute(g, Options{Method: MetisLike, LeafSize: 30}).Perm),
	}
	t.Logf("fills: %v", fills)
	if fills["nd"] >= fills["natural"] {
		t.Fatal("ND does not beat natural order")
	}
	if fills["amd"] >= fills["natural"] {
		t.Fatal("AMD does not beat natural order")
	}
	// Natural order of a 24×24 grid fills ≈ n·bw ≈ 13.3k; the O(n log n) ND
	// fill at this size is ≈6k, so demand at least a 2× gain (the asymptotic
	// gap is exercised by TestNDFillGrowth).
	if fills["natural"] < 2*fills["nd"] {
		t.Fatalf("ND gain too small: natural %d vs nd %d", fills["natural"], fills["nd"])
	}
	// RCM is a band ordering: it must not beat ND on a square grid.
	if fills["rcm"] < fills["nd"] {
		t.Fatalf("RCM (%d) unexpectedly beats ND (%d)", fills["rcm"], fills["nd"])
	}
	// The two ND configurations are in the same league (within 2x).
	if fills["metis"] > 2*fills["nd"] || fills["nd"] > 2*fills["metis"] {
		t.Fatalf("ND configurations diverge: %d vs %d", fills["nd"], fills["metis"])
	}
}

// Asymptotics: ND fill on an n×n grid grows ≈ O(n² log n), natural ≈ O(n³).
// Doubling the grid side must grow ND fill by clearly less than 8×.
func TestNDFillGrowth(t *testing.T) {
	small := graph.Grid2D(16, 16)
	big := graph.Grid2D(32, 32)
	fs := fillOf(t, small, Compute(small, Options{Method: ScotchLike, LeafSize: 25}).Perm)
	fb := fillOf(t, big, Compute(big, Options{Method: ScotchLike, LeafSize: 25}).Perm)
	ratio := float64(fb) / float64(fs)
	if ratio > 6.5 {
		t.Fatalf("ND fill growth ratio %.1f too close to the O(n³) regime", ratio)
	}
}

// The halo in Halo-AMD exists so leaf boundary vertices see their true
// degrees; without it they are eliminated too early and fill grows. Verify
// the ablation switch and the direction of the effect on a 3D problem
// (aggregate over the whole suite: halo must not lose on average).
func TestHaloAMDBeatsPlainAMDOnLeaves(t *testing.T) {
	var withHalo, without int64
	for _, g := range []*graph.Graph{
		graph.Grid3D(10, 10, 10),
		graph.Grid2D(40, 40),
		graph.Grid3D27(6, 6, 6),
	} {
		oH := Compute(g, Options{Method: ScotchLike, LeafSize: 60})
		oN := Compute(g, Options{Method: ScotchLike, LeafSize: 60, NoHalo: true})
		fH := fillOf(t, g, oH.Perm)
		fN := fillOf(t, g, oN.Perm)
		t.Logf("n=%d: halo fill %d, no-halo fill %d", g.N, fH, fN)
		withHalo += fH
		without += fN
	}
	if withHalo > without {
		t.Fatalf("halo-AMD (%d) worse than plain AMD on leaves (%d) in aggregate", withHalo, without)
	}
}
