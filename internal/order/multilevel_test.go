package order

import (
	"math/rand"
	"testing"

	"github.com/pastix-go/pastix/internal/graph"
)

func checkSeparates(t *testing.T, g *graph.Graph, a, b, sep []int) {
	t.Helper()
	if len(a) == 0 || len(b) == 0 {
		t.Fatalf("degenerate split %d/%d/%d", len(a), len(b), len(sep))
	}
	side := make(map[int]int, g.N)
	for _, v := range a {
		side[v] = 0
	}
	for _, v := range b {
		side[v] = 1
	}
	for _, v := range a {
		for _, u := range g.Neighbors(v) {
			if s, ok := side[u]; ok && s == 1 {
				t.Fatalf("edge (%d,%d) crosses separator", v, u)
			}
		}
	}
	if len(a)+len(b)+len(sep) != g.N {
		t.Fatal("split does not partition the graph")
	}
}

func TestMultilevelSeparatorGrid(t *testing.T) {
	g := graph.Grid2D(30, 30)
	a, b, sep := multilevelSeparator(g, 8)
	checkSeparates(t, g, a, b, sep)
	if len(sep) > 3*30 {
		t.Fatalf("separator too fat: %d", len(sep))
	}
	// Balance within 4:1.
	if len(a) > 4*len(b) || len(b) > 4*len(a) {
		t.Fatalf("unbalanced: %d vs %d", len(a), len(b))
	}
}

// irregularGraph builds a grid with random long-range chords — level-set
// separators degrade here; multilevel should stay competitive.
func irregularGraph(nx, ny int, extra int, seed int64) *graph.Graph {
	base := graph.Grid2D(nx, ny)
	rng := rand.New(rand.NewSource(seed))
	adj := make([][]int, base.N)
	for v := 0; v < base.N; v++ {
		adj[v] = append(adj[v], base.Neighbors(v)...)
	}
	for e := 0; e < extra; e++ {
		u, v := rng.Intn(base.N), rng.Intn(base.N)
		if u != v {
			adj[u] = append(adj[u], v)
		}
	}
	return graph.New(adj)
}

func TestMultilevelSeparatorIrregular(t *testing.T) {
	g := irregularGraph(24, 24, 60, 7)
	a, b, sep := multilevelSeparator(g, 8)
	checkSeparates(t, g, a, b, sep)
	// It must not be catastrophically worse than the single-level cut.
	_, _, sepL := levelSeparator(g, 8)
	if len(sepL) > 0 && len(sep) > 2*len(sepL)+10 {
		t.Fatalf("multilevel separator %d much worse than level-set %d", len(sep), len(sepL))
	}
	t.Logf("multilevel separator %d, level-set %d", len(sep), len(sepL))
}

func TestMultilevelOrderingEndToEnd(t *testing.T) {
	g := graph.Grid3D(9, 9, 9)
	o := Compute(g, Options{Method: ScotchLike, LeafSize: 40, Multilevel: true})
	if err := o.Validate(g.N); err != nil {
		t.Fatal(err)
	}
	// Fill quality within 1.5x of the single-level variant on a cube.
	fillML := fillOf(t, g, o.Perm)
	plain := Compute(g, Options{Method: ScotchLike, LeafSize: 40})
	fillSL := fillOf(t, g, plain.Perm)
	t.Logf("fill multilevel %d vs single-level %d", fillML, fillSL)
	if float64(fillML) > 1.5*float64(fillSL) {
		t.Fatalf("multilevel fill %d much worse than single-level %d", fillML, fillSL)
	}
}

func TestMatchVerticesIsMatching(t *testing.T) {
	g := graph.Grid2D(11, 7)
	match := matchVertices(g)
	for v, m := range match {
		if m < 0 || m >= g.N {
			t.Fatalf("vertex %d unmatched slot %d", v, m)
		}
		if m != v {
			if match[m] != v {
				t.Fatalf("asymmetric match %d-%d", v, m)
			}
			if !g.HasEdge(v, m) {
				t.Fatalf("matched non-adjacent %d-%d", v, m)
			}
		}
	}
}

func TestMultilevelDeterministic(t *testing.T) {
	g := irregularGraph(20, 20, 40, 9)
	o1 := Compute(g, Options{Method: ScotchLike, LeafSize: 30, Multilevel: true})
	o2 := Compute(g, Options{Method: ScotchLike, LeafSize: 30, Multilevel: true})
	for i := range o1.Perm {
		if o1.Perm[i] != o2.Perm[i] {
			t.Fatalf("non-deterministic at %d", i)
		}
	}
}
