package gen

import (
	"math"
	"testing"
)

func TestWeightDeterministicSymmetric(t *testing.T) {
	if weight(3, 7) != weight(7, 3) {
		t.Fatal("weight not symmetric")
	}
	if weight(3, 7) != weight(3, 7) {
		t.Fatal("weight not deterministic")
	}
	for i := 0; i < 100; i++ {
		w := weight(i, i+1)
		if w <= 0.25 || w > 1.0 {
			t.Fatalf("weight out of range: %g", w)
		}
	}
}

func TestFromGraphDiagonallyDominant(t *testing.T) {
	for _, name := range Names() {
		p, err := Generate(name, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		a := p.A
		if err := a.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Strict diagonal dominance of every row of the full matrix.
		rowAbs := make([]float64, a.N)
		diag := make([]float64, a.N)
		for j := 0; j < a.N; j++ {
			for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
				i := a.RowIdx[p]
				if i == j {
					diag[j] = a.Val[p]
				} else {
					rowAbs[i] += math.Abs(a.Val[p])
					rowAbs[j] += math.Abs(a.Val[p])
				}
			}
		}
		for i := 0; i < a.N; i++ {
			if diag[i] <= rowAbs[i] {
				t.Fatalf("%s: row %d not strictly dominant (%g <= %g)", name, i, diag[i], rowAbs[i])
			}
		}
	}
}

func TestGenerateUnknownName(t *testing.T) {
	if _, err := Generate("NOPE", 1); err == nil {
		t.Fatal("expected error for unknown problem")
	}
	if _, err := Generate("THREAD", -1); err == nil {
		t.Fatal("expected error for bad scale")
	}
}

func TestGenerateScaleChangesSize(t *testing.T) {
	small, err := Generate("QUER", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Generate("QUER", 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if big.A.N <= small.A.N {
		t.Fatalf("scale ineffective: %d vs %d", small.A.N, big.A.N)
	}
	// Shell with 3 dof: N must be divisible by dof.
	if small.A.N%3 != 0 {
		t.Fatalf("QUER n=%d not divisible by dof", small.A.N)
	}
}

func TestNamesStable(t *testing.T) {
	names := Names()
	if len(names) != 10 {
		t.Fatalf("want 10 problems, got %d", len(names))
	}
	want := []string{"B5TUER", "BMWCRA1", "MT1", "OILPAN", "QUER",
		"SHIP001", "SHIP003", "SHIPSEC8", "THREAD", "X104"}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("names[%d]=%s want %s", i, names[i], n)
		}
	}
}

func TestLaplacianGenerators(t *testing.T) {
	for _, a := range []interface {
		Validate() error
	}{
		Laplacian2D(5, 7), Laplacian3D(3, 4, 5), Shell(4, 5, 3),
		Solid(3, 3, 3, 2), ThickShell(4, 4, 2, 3),
	} {
		if err := a.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRHSForSolution(t *testing.T) {
	a := Laplacian2D(6, 6)
	x, b := RHSForSolution(a)
	y := make([]float64, a.N)
	a.MatVec(x, y)
	for i := range y {
		if math.Abs(y[i]-b[i]) > 1e-12 {
			t.Fatalf("b[%d] mismatch", i)
		}
	}
}

func TestProblemRelativeSizes(t *testing.T) {
	// The analogue suite must keep the paper's size ordering roughly:
	// SHIP001 and THREAD are the small problems; B5TUER the largest.
	sz := map[string]int{}
	for _, n := range Names() {
		p, err := Generate(n, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		sz[n] = p.A.N
	}
	if sz["SHIP001"] >= sz["SHIP003"] {
		t.Fatalf("SHIP001 (%d) should be smaller than SHIP003 (%d)", sz["SHIP001"], sz["SHIP003"])
	}
	if sz["THREAD"] >= sz["B5TUER"] {
		t.Fatalf("THREAD (%d) should be smaller than B5TUER (%d)", sz["THREAD"], sz["B5TUER"])
	}
}
