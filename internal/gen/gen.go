// Package gen generates synthetic symmetric positive definite test problems.
//
// The matrices evaluated in the paper (B5TUER, BMWCRA1, MT1, OILPAN, QUER,
// SHIP001, SHIP003, SHIPSEC8, THREAD, X104) come from the proprietary
// PARASOL collection of structural-mechanics problems. This package builds
// open synthetic analogues of the same structural classes — shell meshes
// (ship hulls, car body panels), 3D solid bricks (engine blocks), and densely
// coupled 3D parts (threaded connectors) — with several degrees of freedom
// per mesh node, sized so the problems sit in the same regime relative to one
// another as the paper's table. A scale factor shrinks or grows every problem
// uniformly.
//
// All matrices are strictly diagonally dominant with positive diagonal, hence
// SPD, so LDLᵀ without pivoting is stable, matching the paper's setting.
package gen

import (
	"fmt"
	"math"
	"sort"

	"github.com/pastix-go/pastix/internal/graph"
	"github.com/pastix-go/pastix/internal/sparse"
)

// Problem bundles a generated matrix with its provenance.
type Problem struct {
	Name        string
	Description string
	A           *sparse.SymMatrix
}

// splitmix64 provides deterministic pseudo-random element weights without
// importing math/rand, so generated matrices are identical across runs and
// platforms.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// weight returns a deterministic value in (0.25, 1.0] for edge (i,j).
func weight(i, j int) float64 {
	if i > j {
		i, j = j, i
	}
	h := splitmix64(uint64(i)*0x1000193 + uint64(j))
	return 0.25 + 0.75*float64(h>>11)/float64(1<<53)
}

// FromGraph assembles an SPD matrix on the DOF expansion of a node graph:
// each node carries dof unknowns; all DOFs of a node are mutually coupled and
// all DOF pairs of adjacent nodes are coupled. Off-diagonals get
// deterministic negative weights; diagonals dominate strictly.
func FromGraph(g *graph.Graph, dof int) *sparse.SymMatrix {
	n := g.N * dof
	// Count entries per column (strict lower) to size arrays exactly.
	b := sparse.NewBuilder(n)
	rowAbs := make([]float64, n)
	add := func(i, j int, v float64) {
		b.Add(i, j, v)
		rowAbs[i] += math.Abs(v)
		rowAbs[j] += math.Abs(v)
	}
	for u := 0; u < g.N; u++ {
		// Intra-node coupling.
		for a := 0; a < dof; a++ {
			for bb := a + 1; bb < dof; bb++ {
				add(u*dof+a, u*dof+bb, -weight(u*dof+a, u*dof+bb))
			}
		}
		// Inter-node coupling (visit each undirected edge once).
		for _, v := range g.Neighbors(u) {
			if v < u {
				continue
			}
			for a := 0; a < dof; a++ {
				for bb := 0; bb < dof; bb++ {
					add(u*dof+a, v*dof+bb, -weight(u*dof+a, v*dof+bb))
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		b.Add(i, i, rowAbs[i]+1.0)
	}
	return b.Build()
}

// Laplacian2D returns the 5-point Laplacian on an nx×ny grid with strictly
// dominant diagonal.
func Laplacian2D(nx, ny int) *sparse.SymMatrix {
	return FromGraph(graph.Grid2D(nx, ny), 1)
}

// Laplacian3D returns the 7-point Laplacian analogue on an nx×ny×nz grid.
func Laplacian3D(nx, ny, nz int) *sparse.SymMatrix {
	return FromGraph(graph.Grid3D(nx, ny, nz), 1)
}

// Shell builds a shell-structure analogue: a 2D surface mesh of quad shell
// elements (9-point node stencil) with dof unknowns per node.
func Shell(nx, ny, dof int) *sparse.SymMatrix {
	return FromGraph(grid2D9(nx, ny), dof)
}

// Solid builds a 3D solid analogue: hexahedral elements (27-point stencil)
// with dof unknowns per node.
func Solid(nx, ny, nz, dof int) *sparse.SymMatrix {
	return FromGraph(graph.Grid3D27(nx, ny, nz), dof)
}

// ThickShell builds a layered shell (sections of a hull): a 2D surface
// stencil extruded through `layers` fully coupled layers.
func ThickShell(nx, ny, layers, dof int) *sparse.SymMatrix {
	return FromGraph(graph.Grid3D27(nx, ny, layers), dof)
}

// grid2D9 is the 9-point (queen-move) stencil on an nx×ny grid, modelling
// quadrilateral shell elements.
func grid2D9(nx, ny int) *graph.Graph {
	n := nx * ny
	ptr := make([]int, n+1)
	adj := make([]int, 0, 8*n)
	idx := func(i, j int) int { return i + j*nx }
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			for dj := -1; dj <= 1; dj++ {
				jj := j + dj
				if jj < 0 || jj >= ny {
					continue
				}
				for di := -1; di <= 1; di++ {
					ii := i + di
					if ii < 0 || ii >= nx {
						continue
					}
					if di == 0 && dj == 0 {
						continue
					}
					adj = append(adj, idx(ii, jj))
				}
			}
			ptr[idx(i, j)+1] = len(adj)
		}
	}
	return graph.FromCSR(n, ptr, adj)
}

type spec struct {
	kind        string // "shell", "solid", "thick"
	nx, ny, nz  int    // base dimensions at scale 1
	dof         int
	description string
}

// specs sizes each analogue at roughly 1/8 of the paper problem's column
// count at scale 1; EXPERIMENTS.md records the correspondence.
var specs = map[string]spec{
	"B5TUER":   {kind: "shell", nx: 58, ny: 58, dof: 6, description: "car body panel analogue (shell, 6 dof/node)"},
	"BMWCRA1":  {kind: "solid", nx: 19, ny: 18, nz: 18, dof: 3, description: "crankshaft analogue (3D solid, 3 dof/node)"},
	"MT1":      {kind: "solid", nx: 16, ny: 16, nz: 16, dof: 3, description: "machine-tool part analogue (3D solid, 3 dof/node)"},
	"OILPAN":   {kind: "shell", nx: 39, ny: 39, dof: 6, description: "oil pan analogue (shell, 6 dof/node)"},
	"QUER":     {kind: "shell", nx: 50, ny: 50, dof: 3, description: "cross-member analogue (shell, 3 dof/node)"},
	"SHIP001":  {kind: "shell", nx: 27, ny: 27, dof: 6, description: "small ship structure analogue (shell, 6 dof/node)"},
	"SHIP003":  {kind: "shell", nx: 50, ny: 50, dof: 6, description: "full ship structure analogue (shell, 6 dof/node)"},
	"SHIPSEC8": {kind: "thick", nx: 40, ny: 40, nz: 3, dof: 3, description: "ship section analogue (3-layer shell, 3 dof/node)"},
	"THREAD":   {kind: "solid", nx: 9, ny: 9, nz: 8, dof: 6, description: "threaded connector analogue (dense 3D coupling, 6 dof/node)"},
	"X104":     {kind: "shell", nx: 48, ny: 48, dof: 6, description: "structural part analogue (shell, 6 dof/node)"},
}

// Names returns the paper's test-problem names in Table 1 order.
func Names() []string {
	names := make([]string, 0, len(specs))
	for n := range specs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Generate builds the named analogue. scale multiplies the DOF count
// (approximately): 2D problems scale linear dimensions by sqrt(scale), 3D by
// cbrt(scale). scale must be positive; scale 1 is the default size.
func Generate(name string, scale float64) (*Problem, error) {
	s, ok := specs[name]
	if !ok {
		return nil, fmt.Errorf("gen: unknown problem %q (known: %v)", name, Names())
	}
	if scale <= 0 {
		return nil, fmt.Errorf("gen: scale must be positive, got %g", scale)
	}
	dim := func(base int, f float64) int {
		d := int(math.Round(float64(base) * f))
		if d < 3 {
			d = 3
		}
		return d
	}
	var a *sparse.SymMatrix
	switch s.kind {
	case "shell":
		f := math.Sqrt(scale)
		a = Shell(dim(s.nx, f), dim(s.ny, f), s.dof)
	case "solid":
		f := math.Cbrt(scale)
		a = Solid(dim(s.nx, f), dim(s.ny, f), dim(s.nz, f), s.dof)
	case "thick":
		f := math.Sqrt(scale) // layers stay fixed
		a = ThickShell(dim(s.nx, f), dim(s.ny, f), s.nz, s.dof)
	default:
		panic("gen: bad spec kind " + s.kind)
	}
	return &Problem{Name: name, Description: s.description, A: a}, nil
}

// GradedPivot builds a block-diagonal SPD matrix with controllably tiny
// pivots: nb disconnected dense cliques of bs columns each, where clique
// column j carries diagonal decay^j — an unpivoted LDLᵀ therefore meets
// pivots graded down to ≈decay^(bs-1), driving them under any static-pivot
// threshold τ on demand. Off-diagonals are −couple·sqrt(d_i·d_j) scaled by a
// deterministic weight, so each clique stays SPD for couple·(bs−1) < 1.
//
// The blocks are deliberately disconnected cliques: each becomes exactly one
// supernode with no cross-supernode contributions, so the sequential,
// shared-memory and message-passing runtimes perform bit-identical
// arithmetic on it — the property the cross-runtime PerturbationReport
// equality tests rely on. Keep bs at or below the solver's block size (64)
// so partitioning never splits a clique.
//
// With singular=true a final 2×2 block [[1,1],[1,1]] is appended whose
// second pivot is exactly zero in IEEE arithmetic: the matrix then fails
// unpivoted factorization with a zero-pivot error, while static pivoting
// completes it with one recorded substitution.
func GradedPivot(nb, bs int, decay, couple float64, singular bool) *sparse.SymMatrix {
	n := nb * bs
	if singular {
		n += 2
	}
	b := sparse.NewBuilder(n)
	for blk := 0; blk < nb; blk++ {
		base := blk * bs
		d := make([]float64, bs)
		for j := 0; j < bs; j++ {
			d[j] = math.Pow(decay, float64(j))
			b.Add(base+j, base+j, d[j])
		}
		for j := 0; j < bs; j++ {
			for i := j + 1; i < bs; i++ {
				b.Add(base+i, base+j, -couple*math.Sqrt(d[i]*d[j])*weight(base+i, base+j))
			}
		}
	}
	if singular {
		b.Add(n-2, n-2, 1)
		b.Add(n-1, n-2, 1)
		b.Add(n-1, n-1, 1)
	}
	return b.Build()
}

// RandomSPD returns a random sparse strictly diagonally dominant (hence SPD)
// matrix of order n with about deg off-diagonal entries per row, seeded
// deterministically: the same (n, deg, seed) triple yields the same matrix
// on every platform (splitmix64, no math/rand). Unlike the structured
// generators its sparsity pattern has no geometry, which exercises the
// orderings and the 1D/2D switch on an irregular elimination tree.
func RandomSPD(n, deg int, seed uint64) *sparse.SymMatrix {
	s := seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	next := func() uint64 {
		s += 0x9e3779b97f4a7c15
		return splitmix64(s)
	}
	b := sparse.NewBuilder(n)
	rowAbs := make([]float64, n)
	for i := 0; i < n; i++ {
		for d := 0; d < deg; d++ {
			j := int(next() % uint64(n))
			if j == i {
				continue
			}
			v := -(0.25 + float64(next()>>11)/float64(1<<53))
			b.Add(i, j, v)
			rowAbs[i] -= v
			rowAbs[j] -= v
		}
	}
	for i := 0; i < n; i++ {
		b.Add(i, i, rowAbs[i]+1+float64(next()>>11)/float64(1<<53))
	}
	return b.Build()
}

// RHSForSolution returns b = A·x for the deterministic solution
// x[i] = 1 + (i mod 7)/7, handy for accuracy checks end to end.
func RHSForSolution(a *sparse.SymMatrix) (x, b []float64) {
	x = make([]float64, a.N)
	for i := range x {
		x[i] = 1 + float64(i%7)/7
	}
	b = make([]float64, a.N)
	a.MatVec(x, b)
	return x, b
}
