package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Harwell-Boeing (RSA) reader/writer. The paper's test problems are
// distributed "in the RSA format": real, symmetric, assembled, lower
// triangle stored column-wise with 1-based indices and fixed-width Fortran
// formats. We parse the three data formats declared on header line 3
// (pointers, indices, values) as fixed-width fields, which handles files
// with no separating blanks.

type fortranFormat struct {
	count int // repeat count per line
	width int // field width in characters
}

// parseFortranFormat understands the common forms "(13I6)", "(3E26.18)",
// "(1P,4E20.13)", "(10F8.3)", "(1P4D16.9)" etc. Only count and width matter
// for reading.
func parseFortranFormat(s string) (fortranFormat, error) {
	t := strings.ToUpper(strings.TrimSpace(s))
	t = strings.TrimPrefix(t, "(")
	t = strings.TrimSuffix(t, ")")
	// Drop scale factors like "1P," or leading "1P".
	if i := strings.Index(t, "P"); i >= 0 {
		t = strings.TrimPrefix(t[i+1:], ",")
	}
	// Now expect [count] LETTER width [. digits]
	i := 0
	for i < len(t) && t[i] >= '0' && t[i] <= '9' {
		i++
	}
	count := 1
	if i > 0 {
		c, err := strconv.Atoi(t[:i])
		if err != nil {
			return fortranFormat{}, err
		}
		count = c
	}
	if i >= len(t) {
		return fortranFormat{}, fmt.Errorf("sparse: bad Fortran format %q", s)
	}
	letter := t[i]
	switch letter {
	case 'I', 'E', 'D', 'F', 'G':
	default:
		return fortranFormat{}, fmt.Errorf("sparse: unsupported Fortran descriptor %q", s)
	}
	rest := t[i+1:]
	if j := strings.IndexByte(rest, '.'); j >= 0 {
		rest = rest[:j]
	}
	w, err := strconv.Atoi(rest)
	if err != nil {
		return fortranFormat{}, fmt.Errorf("sparse: bad width in format %q", s)
	}
	return fortranFormat{count: count, width: w}, nil
}

// readFixed reads exactly n fixed-width fields laid out f.count per line.
func readFixed(r *bufio.Reader, f fortranFormat, n int) ([]string, error) {
	out := make([]string, 0, n)
	for len(out) < n {
		line, err := r.ReadString('\n')
		if len(line) == 0 && err != nil {
			return nil, fmt.Errorf("sparse: unexpected EOF reading HB data: %w", err)
		}
		line = strings.TrimRight(line, "\r\n")
		for k := 0; k < f.count && len(out) < n; k++ {
			lo := k * f.width
			if lo >= len(line) {
				break
			}
			hi := lo + f.width
			if hi > len(line) {
				hi = len(line)
			}
			field := strings.TrimSpace(line[lo:hi])
			if field == "" {
				break
			}
			out = append(out, field)
		}
	}
	return out, nil
}

// ReadHB parses a Harwell-Boeing file. Only RSA (real symmetric assembled)
// and PSA (pattern symmetric) matrices are supported; PSA entries get value
// zero except unit diagonals.
func ReadHB(r io.Reader) (*SymMatrix, string, error) {
	br := bufio.NewReader(r)
	line1, err := br.ReadString('\n')
	if err != nil {
		return nil, "", fmt.Errorf("sparse: HB header: %w", err)
	}
	title := strings.TrimSpace(line1[:min(72, len(line1))])

	line2, err := br.ReadString('\n')
	if err != nil {
		return nil, "", fmt.Errorf("sparse: HB header line 2: %w", err)
	}
	f2 := strings.Fields(line2)
	if len(f2) < 4 {
		return nil, "", fmt.Errorf("sparse: HB header line 2 malformed: %q", line2)
	}
	// totcrd ptrcrd indcrd valcrd [rhscrd]
	valcrd, _ := strconv.Atoi(f2[3])

	line3, err := br.ReadString('\n')
	if err != nil {
		return nil, "", fmt.Errorf("sparse: HB header line 3: %w", err)
	}
	f3 := strings.Fields(line3)
	if len(f3) < 4 {
		return nil, "", fmt.Errorf("sparse: HB header line 3 malformed: %q", line3)
	}
	mxtype := strings.ToUpper(f3[0])
	if mxtype != "RSA" && mxtype != "PSA" {
		return nil, "", fmt.Errorf("sparse: unsupported HB matrix type %q", mxtype)
	}
	nrow, err1 := strconv.Atoi(f3[1])
	ncol, err2 := strconv.Atoi(f3[2])
	nnz, err3 := strconv.Atoi(f3[3])
	if err1 != nil || err2 != nil || err3 != nil || nrow != ncol {
		return nil, "", fmt.Errorf("sparse: bad HB dimensions: %q", line3)
	}

	line4, err := br.ReadString('\n')
	if err != nil {
		return nil, "", fmt.Errorf("sparse: HB header line 4: %w", err)
	}
	// Formats: ptrfmt indfmt valfmt [rhsfmt]; fixed columns 1-16,17-32,33-52.
	pad := line4 + strings.Repeat(" ", 80)
	ptrfmt, err := parseFortranFormat(pad[0:16])
	if err != nil {
		return nil, "", err
	}
	indfmt, err := parseFortranFormat(pad[16:32])
	if err != nil {
		return nil, "", err
	}
	var valfmt fortranFormat
	if mxtype == "RSA" {
		valfmt, err = parseFortranFormat(pad[32:52])
		if err != nil {
			return nil, "", err
		}
	}
	_ = valcrd

	ptrs, err := readFixed(br, ptrfmt, ncol+1)
	if err != nil {
		return nil, "", err
	}
	inds, err := readFixed(br, indfmt, nnz)
	if err != nil {
		return nil, "", err
	}
	var vals []string
	if mxtype == "RSA" {
		vals, err = readFixed(br, valfmt, nnz)
		if err != nil {
			return nil, "", err
		}
	}

	if ncol <= 0 || nnz < 0 {
		return nil, "", fmt.Errorf("sparse: bad HB sizes n=%d nnz=%d", ncol, nnz)
	}
	b := NewBuilder(ncol)
	colptr := make([]int, ncol+1)
	for j, s := range ptrs {
		v, err := strconv.Atoi(s)
		if err != nil {
			return nil, "", fmt.Errorf("sparse: bad HB pointer %q", s)
		}
		colptr[j] = v - 1
		if colptr[j] < 0 || colptr[j] > nnz || (j > 0 && colptr[j] < colptr[j-1]) {
			return nil, "", fmt.Errorf("sparse: HB pointer %d out of order or range", v)
		}
	}
	for j := 0; j < ncol; j++ {
		for p := colptr[j]; p < colptr[j+1]; p++ {
			i, err := strconv.Atoi(inds[p])
			if err != nil {
				return nil, "", fmt.Errorf("sparse: bad HB index %q", inds[p])
			}
			if i < 1 || i > ncol {
				return nil, "", fmt.Errorf("sparse: HB row index %d out of range", i)
			}
			var v float64
			if mxtype == "RSA" {
				s := strings.Replace(vals[p], "D", "E", 1)
				s = strings.Replace(s, "d", "E", 1)
				v, err = strconv.ParseFloat(s, 64)
				if err != nil {
					return nil, "", fmt.Errorf("sparse: bad HB value %q", vals[p])
				}
			} else if i-1 == j {
				v = 1
			}
			b.Add(i-1, j, v)
		}
	}
	return b.Build(), title, nil
}

// WriteHB writes the matrix in RSA Harwell-Boeing format with key "PASTIXGO".
func WriteHB(w io.Writer, a *SymMatrix, title string) error {
	bw := bufio.NewWriter(w)
	const (
		ptrPerLine = 10
		ptrWidth   = 8
		indPerLine = 10
		indWidth   = 8
		valPerLine = 3
		valWidth   = 26
	)
	nnz := a.NNZ()
	lines := func(n, per int) int { return (n + per - 1) / per }
	ptrcrd := lines(a.N+1, ptrPerLine)
	indcrd := lines(nnz, indPerLine)
	valcrd := lines(nnz, valPerLine)
	totcrd := ptrcrd + indcrd + valcrd

	if len(title) > 72 {
		title = title[:72]
	}
	fmt.Fprintf(bw, "%-72s%-8s\n", title, "PASTIXGO")
	fmt.Fprintf(bw, "%14d%14d%14d%14d%14d\n", totcrd, ptrcrd, indcrd, valcrd, 0)
	fmt.Fprintf(bw, "%-14s%14d%14d%14d%14d\n", "RSA", a.N, a.N, nnz, 0)
	fmt.Fprintf(bw, "%-16s%-16s%-20s%-20s\n",
		fmt.Sprintf("(%dI%d)", ptrPerLine, ptrWidth),
		fmt.Sprintf("(%dI%d)", indPerLine, indWidth),
		fmt.Sprintf("(%dE%d.16)", valPerLine, valWidth), "")

	writeInts := func(xs []int, per, width int) {
		for i, x := range xs {
			fmt.Fprintf(bw, "%*d", width, x+1) // 1-based
			if (i+1)%per == 0 || i == len(xs)-1 {
				fmt.Fprintln(bw)
			}
		}
	}
	writeInts(a.ColPtr, ptrPerLine, ptrWidth)
	writeInts(a.RowIdx, indPerLine, indWidth)
	for i, v := range a.Val {
		fmt.Fprintf(bw, "%*.16E", valWidth, v)
		if (i+1)%valPerLine == 0 || i == len(a.Val)-1 {
			fmt.Fprintln(bw)
		}
	}
	return bw.Flush()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
