// Package sparse provides symmetric sparse matrices in compressed sparse
// column (CSC) form, triplet assembly, permutation, basic linear-algebra
// operations, and Harwell-Boeing (RSA) file I/O.
//
// Symmetric matrices store the LOWER triangular part only, including the
// diagonal, with row indices sorted within each column. This matches the
// storage convention of the RSA format used by the paper's test problems.
package sparse

import (
	"fmt"
	"math"
	"sort"
)

// SymMatrix is a symmetric sparse matrix of order N holding its lower
// triangle (diagonal included) in CSC format: column j's entries are
// RowIdx[ColPtr[j]:ColPtr[j+1]] / Val[ColPtr[j]:ColPtr[j+1]], with row
// indices strictly increasing and RowIdx[ColPtr[j]] == j (an explicit
// diagonal entry is required).
type SymMatrix struct {
	N      int
	ColPtr []int
	RowIdx []int
	Val    []float64
}

// NNZ returns the number of stored entries (lower triangle incl. diagonal).
func (a *SymMatrix) NNZ() int { return len(a.RowIdx) }

// NNZOffDiag returns the number of stored strictly-lower entries, i.e. the
// NNZ_A metric of the paper (off-diagonal terms of the triangular part).
func (a *SymMatrix) NNZOffDiag() int { return len(a.RowIdx) - a.N }

// Validate checks the structural invariants.
func (a *SymMatrix) Validate() error {
	if len(a.ColPtr) != a.N+1 {
		return fmt.Errorf("sparse: colptr length %d != n+1", len(a.ColPtr))
	}
	if a.ColPtr[0] != 0 || a.ColPtr[a.N] != len(a.RowIdx) || len(a.RowIdx) != len(a.Val) {
		return fmt.Errorf("sparse: inconsistent array lengths")
	}
	for j := 0; j < a.N; j++ {
		lo, hi := a.ColPtr[j], a.ColPtr[j+1]
		if lo < 0 || hi > len(a.RowIdx) {
			return fmt.Errorf("sparse: column %d pointers [%d,%d) out of range", j, lo, hi)
		}
		if lo >= hi {
			return fmt.Errorf("sparse: column %d empty (diagonal required)", j)
		}
		if a.RowIdx[lo] != j {
			return fmt.Errorf("sparse: column %d missing diagonal entry", j)
		}
		for p := lo; p < hi; p++ {
			if a.RowIdx[p] < j || a.RowIdx[p] >= a.N {
				return fmt.Errorf("sparse: entry (%d,%d) outside lower triangle", a.RowIdx[p], j)
			}
			if p > lo && a.RowIdx[p-1] >= a.RowIdx[p] {
				return fmt.Errorf("sparse: column %d rows not strictly sorted", j)
			}
		}
	}
	return nil
}

// PatternFingerprint returns a 128-bit hex fingerprint of the sparsity
// pattern: the order n plus the compressed column pointers and row indices
// (values are ignored). Two matrices with the same pattern always produce
// the same fingerprint; distinct patterns collide with probability ~2⁻¹²⁸
// (two independent FNV-1a streams — strong enough to key an analysis cache,
// not cryptographic). The fingerprint is stable across runs and platforms.
func (a *SymMatrix) PatternFingerprint() string {
	const prime = 0x100000001b3
	h1 := uint64(0xcbf29ce484222325) // FNV-1a offset basis
	h2 := uint64(0x6c62272e07bb0142) // second independent stream
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			b := (v >> s) & 0xff
			h1 = (h1 ^ b) * prime
			h2 = (h2 ^ (b ^ 0xa5)) * prime
		}
	}
	mix(uint64(a.N))
	for _, p := range a.ColPtr {
		mix(uint64(p))
	}
	for _, r := range a.RowIdx {
		mix(uint64(r))
	}
	return fmt.Sprintf("%016x%016x", h1, h2)
}

// SamePattern reports whether b has exactly the sparsity pattern of a.
func (a *SymMatrix) SamePattern(b *SymMatrix) bool {
	if a.N != b.N || len(a.RowIdx) != len(b.RowIdx) {
		return false
	}
	for j, p := range a.ColPtr {
		if b.ColPtr[j] != p {
			return false
		}
	}
	for i, r := range a.RowIdx {
		if b.RowIdx[i] != r {
			return false
		}
	}
	return true
}

// Diag returns a copy of the diagonal.
func (a *SymMatrix) Diag() []float64 {
	d := make([]float64, a.N)
	for j := 0; j < a.N; j++ {
		d[j] = a.Val[a.ColPtr[j]]
	}
	return d
}

// At returns A[i][j] (either triangle).
func (a *SymMatrix) At(i, j int) float64 {
	if i < j {
		i, j = j, i
	}
	col := a.RowIdx[a.ColPtr[j]:a.ColPtr[j+1]]
	p := sort.SearchInts(col, i)
	if p < len(col) && col[p] == i {
		return a.Val[a.ColPtr[j]+p]
	}
	return 0
}

// MatVec computes y = A x, expanding symmetry.
func (a *SymMatrix) MatVec(x, y []float64) {
	if len(x) != a.N || len(y) != a.N {
		panic("sparse: dimension mismatch in MatVec")
	}
	for i := range y {
		y[i] = 0
	}
	for j := 0; j < a.N; j++ {
		xj := x[j]
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			i := a.RowIdx[p]
			v := a.Val[p]
			y[i] += v * xj
			if i != j {
				y[j] += v * x[i]
			}
		}
	}
}

// Norm1 returns the 1-norm (max column absolute sum) of the full matrix.
func (a *SymMatrix) Norm1() float64 {
	sums := make([]float64, a.N)
	for j := 0; j < a.N; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			i := a.RowIdx[p]
			v := math.Abs(a.Val[p])
			sums[j] += v
			if i != j {
				sums[i] += v
			}
		}
	}
	mx := 0.0
	for _, s := range sums {
		if s > mx {
			mx = s
		}
	}
	return mx
}

// NormMax returns the max-norm ‖A‖_max = max |a_ij| over the stored entries.
// It is invariant under symmetric permutation, which makes it the natural
// scale for the static-pivoting threshold τ = ε_piv·‖A‖_max: the same τ is
// obtained whether computed from the original or the permuted matrix.
func (a *SymMatrix) NormMax() float64 {
	mx := 0.0
	for _, v := range a.Val {
		if av := math.Abs(v); av > mx {
			mx = av
		}
	}
	return mx
}

// Dense expands the matrix to a dense row-major n×n array (testing helper).
func (a *SymMatrix) Dense() []float64 {
	d := make([]float64, a.N*a.N)
	for j := 0; j < a.N; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			i := a.RowIdx[p]
			d[i*a.N+j] = a.Val[p]
			d[j*a.N+i] = a.Val[p]
		}
	}
	return d
}

// AdjacencyCSR returns the adjacency structure of A (pattern of the full
// matrix minus the diagonal) as CSR arrays suitable for graph.FromCSR.
func (a *SymMatrix) AdjacencyCSR() (ptr, adj []int) {
	deg := make([]int, a.N)
	for j := 0; j < a.N; j++ {
		for p := a.ColPtr[j] + 1; p < a.ColPtr[j+1]; p++ {
			i := a.RowIdx[p]
			deg[i]++
			deg[j]++
		}
	}
	ptr = make([]int, a.N+1)
	for v := 0; v < a.N; v++ {
		ptr[v+1] = ptr[v] + deg[v]
	}
	adj = make([]int, ptr[a.N])
	next := append([]int(nil), ptr[:a.N]...)
	for j := 0; j < a.N; j++ {
		for p := a.ColPtr[j] + 1; p < a.ColPtr[j+1]; p++ {
			i := a.RowIdx[p]
			adj[next[i]] = j
			adj[next[j]] = i
			next[i]++
			next[j]++
		}
	}
	// Rows built in increasing column order of the source sweep are already
	// sorted for the j side, but the i side interleaves; sort each row.
	for v := 0; v < a.N; v++ {
		sort.Ints(adj[ptr[v]:ptr[v+1]])
	}
	return ptr, adj
}

// Permute returns P A Pᵀ where perm is the new ordering: perm[new] = old
// (i.e. row/column `old` of A becomes row/column `new` of the result).
func (a *SymMatrix) Permute(perm []int) *SymMatrix {
	n := a.N
	if len(perm) != n {
		panic("sparse: permutation length mismatch")
	}
	inv := make([]int, n) // inv[old] = new
	for newI, old := range perm {
		inv[old] = newI
	}
	type ent struct {
		row int
		val float64
	}
	cols := make([][]ent, n)
	for j := 0; j < n; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			i := a.RowIdx[p]
			ni, nj := inv[i], inv[j]
			if ni < nj {
				ni, nj = nj, ni
			}
			cols[nj] = append(cols[nj], ent{ni, a.Val[p]})
		}
	}
	b := &SymMatrix{N: n, ColPtr: make([]int, n+1)}
	for j := 0; j < n; j++ {
		sort.Slice(cols[j], func(x, y int) bool { return cols[j][x].row < cols[j][y].row })
		b.ColPtr[j+1] = b.ColPtr[j] + len(cols[j])
	}
	b.RowIdx = make([]int, b.ColPtr[n])
	b.Val = make([]float64, b.ColPtr[n])
	for j := 0; j < n; j++ {
		p := b.ColPtr[j]
		for _, e := range cols[j] {
			b.RowIdx[p] = e.row
			b.Val[p] = e.val
			p++
		}
	}
	return b
}

// Builder assembles a symmetric matrix from (i,j,v) triplets. Duplicate
// entries are summed; entries may be given in either triangle.
type Builder struct {
	n    int
	cols []map[int]float64
}

// NewBuilder creates a Builder for an n×n symmetric matrix.
func NewBuilder(n int) *Builder {
	b := &Builder{n: n, cols: make([]map[int]float64, n)}
	for j := range b.cols {
		b.cols[j] = make(map[int]float64)
	}
	return b
}

// Add accumulates v into A[i][j] (and by symmetry A[j][i]).
func (b *Builder) Add(i, j int, v float64) {
	if i < 0 || j < 0 || i >= b.n || j >= b.n {
		panic(fmt.Sprintf("sparse: triplet (%d,%d) out of range n=%d", i, j, b.n))
	}
	if i < j {
		i, j = j, i
	}
	b.cols[j][i] += v
}

// Build finalizes the matrix, inserting explicit zero diagonal entries where
// missing so the Validate invariant holds.
func (b *Builder) Build() *SymMatrix {
	a := &SymMatrix{N: b.n, ColPtr: make([]int, b.n+1)}
	for j := 0; j < b.n; j++ {
		if _, ok := b.cols[j][j]; !ok {
			b.cols[j][j] = 0
		}
		a.ColPtr[j+1] = a.ColPtr[j] + len(b.cols[j])
	}
	a.RowIdx = make([]int, a.ColPtr[b.n])
	a.Val = make([]float64, a.ColPtr[b.n])
	for j := 0; j < b.n; j++ {
		rows := make([]int, 0, len(b.cols[j]))
		for i := range b.cols[j] {
			rows = append(rows, i)
		}
		sort.Ints(rows)
		p := a.ColPtr[j]
		for _, i := range rows {
			a.RowIdx[p] = i
			a.Val[p] = b.cols[j][i]
			p++
		}
	}
	return a
}

// Residual returns ‖Ax − b‖∞ / (‖A‖₁‖x‖∞ + ‖b‖∞), the standard scaled
// backward-error style residual used by the solver tests.
func Residual(a *SymMatrix, x, b []float64) float64 {
	r := make([]float64, a.N)
	a.MatVec(x, r)
	num, xmax, bmax := 0.0, 0.0, 0.0
	for i := range r {
		if d := math.Abs(r[i] - b[i]); d > num {
			num = d
		}
		if v := math.Abs(x[i]); v > xmax {
			xmax = v
		}
		if v := math.Abs(b[i]); v > bmax {
			bmax = v
		}
	}
	den := a.Norm1()*xmax + bmax
	if den == 0 {
		return num
	}
	return num / den
}

// ElementBuilder assembles a symmetric matrix element by element, the way
// finite-element stiffness matrices are built: each element contributes a
// small dense symmetric matrix scattered onto its global degrees of freedom.
type ElementBuilder struct {
	b *Builder
}

// NewElementBuilder creates an ElementBuilder for an n×n system.
func NewElementBuilder(n int) *ElementBuilder {
	return &ElementBuilder{b: NewBuilder(n)}
}

// AddElement scatters the dense symmetric element matrix ke onto the global
// DOFs: ke must have len(dofs)² entries (row-major and column-major coincide
// by symmetry); only the lower triangle of ke is read.
func (eb *ElementBuilder) AddElement(dofs []int, ke []float64) {
	m := len(dofs)
	if len(ke) != m*m {
		panic(fmt.Sprintf("sparse: element matrix has %d entries for %d dofs", len(ke), m))
	}
	for i := 0; i < m; i++ {
		for j := 0; j <= i; j++ {
			if v := ke[i*m+j]; v != 0 {
				eb.b.Add(dofs[i], dofs[j], v)
			}
		}
	}
}

// Build finalizes the assembled matrix.
func (eb *ElementBuilder) Build() *SymMatrix { return eb.b.Build() }
