package sparse

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"
)

// ZSymMatrix is a COMPLEX SYMMETRIC (A = Aᵀ, generally A ≠ Aᴴ) sparse
// matrix in the same lower-CSC layout as SymMatrix. This is the paper's
// actual target class: "we use LDLᵀ factorization in order to solve sparse
// systems with complex coefficients".
type ZSymMatrix struct {
	N      int
	ColPtr []int
	RowIdx []int
	Val    []complex128
}

// NNZ returns the number of stored entries.
func (a *ZSymMatrix) NNZ() int { return len(a.RowIdx) }

// Validate checks the structural invariants (same rules as SymMatrix).
func (a *ZSymMatrix) Validate() error {
	if len(a.ColPtr) != a.N+1 || a.ColPtr[0] != 0 || a.ColPtr[a.N] != len(a.RowIdx) || len(a.RowIdx) != len(a.Val) {
		return fmt.Errorf("sparse: zsym inconsistent arrays")
	}
	for j := 0; j < a.N; j++ {
		lo, hi := a.ColPtr[j], a.ColPtr[j+1]
		if lo >= hi || a.RowIdx[lo] != j {
			return fmt.Errorf("sparse: zsym column %d missing diagonal", j)
		}
		for p := lo; p < hi; p++ {
			if a.RowIdx[p] < j || a.RowIdx[p] >= a.N || (p > lo && a.RowIdx[p-1] >= a.RowIdx[p]) {
				return fmt.Errorf("sparse: zsym column %d malformed", j)
			}
		}
	}
	return nil
}

// Pattern returns a real SPD-safe matrix with the same sparsity: 1 off the
// diagonal magnitudeless, strong diagonal. The ordering and symbolic phases
// run on this pattern; the complex numerics follow the resulting structure.
func (a *ZSymMatrix) Pattern() *SymMatrix {
	p := &SymMatrix{
		N:      a.N,
		ColPtr: append([]int(nil), a.ColPtr...),
		RowIdx: append([]int(nil), a.RowIdx...),
		Val:    make([]float64, len(a.Val)),
	}
	deg := make([]float64, a.N)
	for j := 0; j < a.N; j++ {
		for q := a.ColPtr[j] + 1; q < a.ColPtr[j+1]; q++ {
			deg[a.RowIdx[q]]++
			deg[j]++
		}
	}
	for j := 0; j < a.N; j++ {
		for q := a.ColPtr[j]; q < a.ColPtr[j+1]; q++ {
			if a.RowIdx[q] == j {
				p.Val[q] = deg[j] + 1
			} else {
				p.Val[q] = -1
			}
		}
	}
	return p
}

// At returns A[i][j].
func (a *ZSymMatrix) At(i, j int) complex128 {
	if i < j {
		i, j = j, i
	}
	col := a.RowIdx[a.ColPtr[j]:a.ColPtr[j+1]]
	p := sort.SearchInts(col, i)
	if p < len(col) && col[p] == i {
		return a.Val[a.ColPtr[j]+p]
	}
	return 0
}

// MatVec computes y = A·x with symmetric expansion (no conjugation).
func (a *ZSymMatrix) MatVec(x, y []complex128) {
	for i := range y {
		y[i] = 0
	}
	for j := 0; j < a.N; j++ {
		xj := x[j]
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			i := a.RowIdx[p]
			v := a.Val[p]
			y[i] += v * xj
			if i != j {
				y[j] += v * x[i]
			}
		}
	}
}

// Permute returns P·A·Pᵀ with perm[new] = old.
func (a *ZSymMatrix) Permute(perm []int) *ZSymMatrix {
	n := a.N
	inv := make([]int, n)
	for newI, old := range perm {
		inv[old] = newI
	}
	type ent struct {
		row int
		val complex128
	}
	cols := make([][]ent, n)
	for j := 0; j < n; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			ni, nj := inv[a.RowIdx[p]], inv[j]
			if ni < nj {
				ni, nj = nj, ni
			}
			cols[nj] = append(cols[nj], ent{ni, a.Val[p]})
		}
	}
	b := &ZSymMatrix{N: n, ColPtr: make([]int, n+1)}
	for j := 0; j < n; j++ {
		sort.Slice(cols[j], func(x, y int) bool { return cols[j][x].row < cols[j][y].row })
		b.ColPtr[j+1] = b.ColPtr[j] + len(cols[j])
	}
	b.RowIdx = make([]int, b.ColPtr[n])
	b.Val = make([]complex128, b.ColPtr[n])
	for j := 0; j < n; j++ {
		p := b.ColPtr[j]
		for _, e := range cols[j] {
			b.RowIdx[p] = e.row
			b.Val[p] = e.val
			p++
		}
	}
	return b
}

// ZBuilder assembles a ZSymMatrix from triplets.
type ZBuilder struct {
	n    int
	cols []map[int]complex128
}

// NewZBuilder creates a builder for an n×n complex symmetric matrix.
func NewZBuilder(n int) *ZBuilder {
	b := &ZBuilder{n: n, cols: make([]map[int]complex128, n)}
	for j := range b.cols {
		b.cols[j] = make(map[int]complex128)
	}
	return b
}

// Add accumulates v into A[i][j] (= A[j][i]).
func (b *ZBuilder) Add(i, j int, v complex128) {
	if i < 0 || j < 0 || i >= b.n || j >= b.n {
		panic(fmt.Sprintf("sparse: ztriplet (%d,%d) out of range", i, j))
	}
	if i < j {
		i, j = j, i
	}
	b.cols[j][i] += v
}

// Build finalizes the matrix (explicit zero diagonals inserted).
func (b *ZBuilder) Build() *ZSymMatrix {
	a := &ZSymMatrix{N: b.n, ColPtr: make([]int, b.n+1)}
	for j := 0; j < b.n; j++ {
		if _, ok := b.cols[j][j]; !ok {
			b.cols[j][j] = 0
		}
		a.ColPtr[j+1] = a.ColPtr[j] + len(b.cols[j])
	}
	a.RowIdx = make([]int, a.ColPtr[b.n])
	a.Val = make([]complex128, a.ColPtr[b.n])
	for j := 0; j < b.n; j++ {
		rows := make([]int, 0, len(b.cols[j]))
		for i := range b.cols[j] {
			rows = append(rows, i)
		}
		sort.Ints(rows)
		p := a.ColPtr[j]
		for _, i := range rows {
			a.RowIdx[p] = i
			a.Val[p] = b.cols[j][i]
			p++
		}
	}
	return a
}

// ZResidual returns ‖Ax−b‖∞ / (‖b‖∞ + ‖x‖∞·maxcolsum) for a complex system.
func ZResidual(a *ZSymMatrix, x, b []complex128) float64 {
	r := make([]complex128, a.N)
	a.MatVec(x, r)
	num, xmax, bmax := 0.0, 0.0, 0.0
	for i := range r {
		if d := cmplx.Abs(r[i] - b[i]); d > num {
			num = d
		}
		if v := cmplx.Abs(x[i]); v > xmax {
			xmax = v
		}
		if v := cmplx.Abs(b[i]); v > bmax {
			bmax = v
		}
	}
	colsum := make([]float64, a.N)
	for j := 0; j < a.N; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			v := cmplx.Abs(a.Val[p])
			colsum[j] += v
			if a.RowIdx[p] != j {
				colsum[a.RowIdx[p]] += v
			}
		}
	}
	mx := 0.0
	for _, s := range colsum {
		mx = math.Max(mx, s)
	}
	den := mx*xmax + bmax
	if den == 0 {
		return num
	}
	return num / den
}
