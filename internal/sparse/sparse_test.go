package sparse

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// laplacian2D builds the 5-point Laplacian on an nx×ny grid: 4 on the
// diagonal, -1 on grid-neighbour couples. It is SPD (after adding epsilon).
func laplacian2D(nx, ny int) *SymMatrix {
	n := nx * ny
	b := NewBuilder(n)
	idx := func(i, j int) int { return i + j*nx }
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			v := idx(i, j)
			b.Add(v, v, 4)
			if i+1 < nx {
				b.Add(v, idx(i+1, j), -1)
			}
			if j+1 < ny {
				b.Add(v, idx(i, j+1), -1)
			}
		}
	}
	return b.Build()
}

func randomSym(rng *rand.Rand, n int, density float64) *SymMatrix {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.Add(i, i, float64(n)) // diagonally dominant
		for j := 0; j < i; j++ {
			if rng.Float64() < density {
				b.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return b.Build()
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(3)
	b.Add(0, 0, 2)
	b.Add(1, 0, -1) // lower
	b.Add(0, 1, -1) // upper, same entry: duplicates sum
	b.Add(2, 2, 5)
	a := b.Build()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := a.At(1, 0); got != -2 {
		t.Fatalf("At(1,0)=%g want -2 (duplicate sum)", got)
	}
	if got := a.At(0, 1); got != -2 {
		t.Fatalf("At(0,1)=%g (symmetry)", got)
	}
	if a.At(1, 1) != 0 {
		t.Fatal("implicit zero diagonal should read 0")
	}
	if a.At(2, 1) != 0 {
		t.Fatal("missing entry should read 0")
	}
	if a.NNZOffDiag() != 1 {
		t.Fatalf("NNZOffDiag=%d", a.NNZOffDiag())
	}
}

func TestBuilderOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(2).Add(0, 5, 1)
}

func TestMatVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomSym(rng, 12, 0.3)
	d := a.Dense()
	x := make([]float64, a.N)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, a.N)
	a.MatVec(x, y)
	for i := 0; i < a.N; i++ {
		want := 0.0
		for j := 0; j < a.N; j++ {
			want += d[i*a.N+j] * x[j]
		}
		if math.Abs(y[i]-want) > 1e-12*(1+math.Abs(want)) {
			t.Fatalf("y[%d]=%g want %g", i, y[i], want)
		}
	}
}

func TestNorm1(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 0, 1)
	b.Add(1, 0, -3)
	b.Add(1, 1, 2)
	a := b.Build()
	// Full matrix: [1 -3; -3 2]; col sums 4 and 5.
	if got := a.Norm1(); got != 5 {
		t.Fatalf("Norm1=%g want 5", got)
	}
}

func TestPermuteRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomSym(rng, 15, 0.3)
	perm := rng.Perm(15)
	p := a.Permute(perm)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// P A Pᵀ entries: B[new_i][new_j] = A[old_i][old_j].
	for newI := 0; newI < 15; newI++ {
		for newJ := 0; newJ <= newI; newJ++ {
			if got, want := p.At(newI, newJ), a.At(perm[newI], perm[newJ]); got != want {
				t.Fatalf("permuted (%d,%d)=%g want %g", newI, newJ, got, want)
			}
		}
	}
	// Inverse permutation restores A.
	inv := make([]int, 15)
	for newI, old := range perm {
		inv[old] = newI
	}
	back := p.Permute(inv)
	for i := 0; i < 15; i++ {
		for j := 0; j <= i; j++ {
			if back.At(i, j) != a.At(i, j) {
				t.Fatalf("round trip failed at (%d,%d)", i, j)
			}
		}
	}
}

func TestPermutePreservesMatVec(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		a := randomSym(rng, n, 0.4)
		perm := rng.Perm(n)
		p := a.Permute(perm)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		// y = A x ; py = P A Pᵀ (P x). (Px)[new] = x[perm[new]].
		px := make([]float64, n)
		for newI := range px {
			px[newI] = x[perm[newI]]
		}
		y := make([]float64, n)
		py := make([]float64, n)
		a.MatVec(x, y)
		p.MatVec(px, py)
		for newI := range py {
			if math.Abs(py[newI]-y[perm[newI]]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAdjacencyCSR(t *testing.T) {
	a := laplacian2D(3, 3)
	ptr, adj := a.AdjacencyCSR()
	if len(ptr) != a.N+1 {
		t.Fatal("ptr length")
	}
	// Vertex 4 (center) has 4 neighbours.
	if ptr[5]-ptr[4] != 4 {
		t.Fatalf("center degree %d", ptr[5]-ptr[4])
	}
	// Symmetric: total adjacency = 2 * offdiag nnz.
	if len(adj) != 2*a.NNZOffDiag() {
		t.Fatalf("adjacency size %d want %d", len(adj), 2*a.NNZOffDiag())
	}
}

func TestHBRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomSym(rng, 17, 0.25)
	var buf bytes.Buffer
	if err := WriteHB(&buf, a, "random test matrix"); err != nil {
		t.Fatal(err)
	}
	got, title, err := ReadHB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if title != "random test matrix" {
		t.Fatalf("title %q", title)
	}
	if got.N != a.N || got.NNZ() != a.NNZ() {
		t.Fatalf("shape mismatch: n=%d nnz=%d", got.N, got.NNZ())
	}
	for j := 0; j < a.N; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			i := a.RowIdx[p]
			if math.Abs(got.At(i, j)-a.Val[p]) > 1e-14*(1+math.Abs(a.Val[p])) {
				t.Fatalf("value (%d,%d) %g want %g", i, j, got.At(i, j), a.Val[p])
			}
		}
	}
}

func TestHBFixedWidthNoBlanks(t *testing.T) {
	// A hand-written RSA file exercising tight fixed-width fields,
	// including negative values with no separating blanks.
	hb := "tiny matrix                                                             KEY     \n" +
		"             4             1             1             2             0\n" +
		"RSA                        2             2             3             0\n" +
		"(4I4)           (4I4)           (2E12.4)            \n" +
		"   1   3   4\n" +
		"   1   2   2\n" +
		"  4.0000E+00 -1.0000E+00\n" +
		"  3.0000E+00\n"
	a, _, err := ReadHB(bytes.NewBufferString(hb))
	if err != nil {
		t.Fatal(err)
	}
	if a.N != 2 {
		t.Fatalf("n=%d", a.N)
	}
	if a.At(0, 0) != 4 || a.At(1, 0) != -1 || a.At(1, 1) != 3 {
		t.Fatalf("values wrong: %v", a.Val)
	}
}

func TestParseFortranFormat(t *testing.T) {
	cases := []struct {
		in          string
		count, wdth int
	}{
		{"(13I6)", 13, 6},
		{"(3E26.18)", 3, 26},
		{"(1P,4E20.13)", 4, 20},
		{"(1P4D16.9)", 4, 16},
		{"(10F8.3)", 10, 8},
		{"(I8)", 1, 8},
	}
	for _, c := range cases {
		f, err := parseFortranFormat(c.in)
		if err != nil {
			t.Fatalf("%s: %v", c.in, err)
		}
		if f.count != c.count || f.width != c.wdth {
			t.Fatalf("%s: got %+v", c.in, f)
		}
	}
	if _, err := parseFortranFormat("(13X6)"); err == nil {
		t.Fatal("expected error for unsupported descriptor")
	}
}

func TestResidualZeroForExactSolution(t *testing.T) {
	a := laplacian2D(4, 4)
	x := make([]float64, a.N)
	for i := range x {
		x[i] = float64(i%5) - 2
	}
	b := make([]float64, a.N)
	a.MatVec(x, b)
	if r := Residual(a, x, b); r > 1e-15 {
		t.Fatalf("residual %g", r)
	}
}

func TestValidateCatchesMissingDiagonal(t *testing.T) {
	a := &SymMatrix{N: 2, ColPtr: []int{0, 1, 2}, RowIdx: []int{1, 1}, Val: []float64{1, 1}}
	if err := a.Validate(); err == nil {
		t.Fatal("expected validation failure for missing diagonal")
	}
}

func TestElementBuilderBarChain(t *testing.T) {
	// n-1 two-node bar elements k·[1 -1; -1 1] chained: the classic 1D
	// stiffness assembly; the result is tridiagonal with 2k inside.
	const n = 6
	const k = 3.0
	eb := NewElementBuilder(n)
	ke := []float64{k, -k, -k, k}
	for e := 0; e < n-1; e++ {
		eb.AddElement([]int{e, e + 1}, ke)
	}
	a := eb.Build()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := 2 * k
		if i == 0 || i == n-1 {
			want = k
		}
		if a.At(i, i) != want {
			t.Fatalf("diag %d = %g want %g", i, a.At(i, i), want)
		}
		if i+1 < n && a.At(i+1, i) != -k {
			t.Fatalf("offdiag %d = %g", i, a.At(i+1, i))
		}
	}
}

func TestElementBuilderShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong element size")
		}
	}()
	NewElementBuilder(4).AddElement([]int{0, 1}, []float64{1, 2, 3})
}

func TestElementBuilderQuadElements(t *testing.T) {
	// Two quad elements sharing an edge: shared DOFs accumulate.
	eb := NewElementBuilder(6)
	ke := make([]float64, 16)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i == j {
				ke[i*4+j] = 3
			} else {
				ke[i*4+j] = -1
			}
		}
	}
	eb.AddElement([]int{0, 1, 3, 4}, ke)
	eb.AddElement([]int{1, 2, 4, 5}, ke)
	a := eb.Build()
	if a.At(1, 1) != 6 || a.At(4, 4) != 6 { // shared corners sum
		t.Fatalf("shared dof accumulation wrong: %g %g", a.At(1, 1), a.At(4, 4))
	}
	if a.At(0, 0) != 3 {
		t.Fatalf("unshared dof %g", a.At(0, 0))
	}
	if a.At(4, 1) != -2 { // edge shared by both elements
		t.Fatalf("shared edge coupling %g", a.At(4, 1))
	}
}
