package sparse

import (
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func zRandomSym(rng *rand.Rand, n int, density float64) *ZSymMatrix {
	b := NewZBuilder(n)
	for i := 0; i < n; i++ {
		b.Add(i, i, complex(float64(n), float64(n)/3))
		for j := 0; j < i; j++ {
			if rng.Float64() < density {
				b.Add(i, j, complex(rng.NormFloat64(), rng.NormFloat64()))
			}
		}
	}
	return b.Build()
}

func TestZBuilderBasics(t *testing.T) {
	b := NewZBuilder(3)
	b.Add(0, 0, 2+1i)
	b.Add(1, 0, -1i)
	b.Add(0, 1, -1i) // symmetric duplicate sums
	a := b.Build()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.At(1, 0) != -2i || a.At(0, 1) != -2i {
		t.Fatalf("At: %v / %v", a.At(1, 0), a.At(0, 1))
	}
	if a.At(2, 2) != 0 {
		t.Fatal("implicit diagonal should be zero")
	}
	if a.NNZ() != 4 { // (0,0), (1,0), plus zero diagonals 1 and 2
		t.Fatalf("NNZ=%d", a.NNZ())
	}
}

func TestZBuilderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewZBuilder(2).Add(0, 7, 1)
}

func TestZMatVecAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	a := zRandomSym(rng, 14, 0.3)
	x := make([]complex128, a.N)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	y := make([]complex128, a.N)
	a.MatVec(x, y)
	for i := 0; i < a.N; i++ {
		var want complex128
		for j := 0; j < a.N; j++ {
			want += a.At(i, j) * x[j]
		}
		if cmplx.Abs(y[i]-want) > 1e-12*(1+cmplx.Abs(want)) {
			t.Fatalf("y[%d]=%v want %v", i, y[i], want)
		}
	}
}

func TestZPermuteRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		a := zRandomSym(rng, n, 0.4)
		perm := rng.Perm(n)
		p := a.Permute(perm)
		if err := p.Validate(); err != nil {
			return false
		}
		for newI := 0; newI < n; newI++ {
			for newJ := 0; newJ <= newI; newJ++ {
				if p.At(newI, newJ) != a.At(perm[newI], perm[newJ]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestZPatternIsSPDSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	a := zRandomSym(rng, 12, 0.3)
	p := a.Pattern()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.N != a.N || p.NNZ() != a.NNZ() {
		t.Fatal("pattern shape mismatch")
	}
	// Strict diagonal dominance of the pattern.
	rowAbs := make([]float64, p.N)
	for j := 0; j < p.N; j++ {
		for q := p.ColPtr[j] + 1; q < p.ColPtr[j+1]; q++ {
			rowAbs[p.RowIdx[q]]++
			rowAbs[j]++
		}
	}
	for j := 0; j < p.N; j++ {
		if p.Val[p.ColPtr[j]] <= rowAbs[j] {
			t.Fatalf("pattern diagonal %d not dominant", j)
		}
	}
}

func TestZResidualZeroForExact(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	a := zRandomSym(rng, 10, 0.4)
	x := make([]complex128, a.N)
	for i := range x {
		x[i] = complex(float64(i), 1)
	}
	b := make([]complex128, a.N)
	a.MatVec(x, b)
	if r := ZResidual(a, x, b); r > 1e-15 {
		t.Fatalf("residual %g", r)
	}
	// Perturbed solution has a visible residual.
	x[0] += 1
	if r := ZResidual(a, x, b); r <= 1e-15 {
		t.Fatalf("perturbation invisible: %g", r)
	}
}

func TestZValidateCatchesMalformed(t *testing.T) {
	bad := &ZSymMatrix{N: 2, ColPtr: []int{0, 1, 2}, RowIdx: []int{1, 1}, Val: []complex128{1, 1}}
	if err := bad.Validate(); err == nil {
		t.Fatal("missing diagonal accepted")
	}
	bad2 := &ZSymMatrix{N: 1, ColPtr: []int{0, 2}, RowIdx: []int{0}, Val: []complex128{1}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("inconsistent arrays accepted")
	}
}

func TestDiagCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	a := randomSym(rng, 6, 0.5)
	d := a.Diag()
	if len(d) != 6 {
		t.Fatal("diag length")
	}
	for j := 0; j < 6; j++ {
		if d[j] != a.At(j, j) {
			t.Fatalf("diag[%d]", j)
		}
	}
	d[0] = 12345
	if a.At(0, 0) == 12345 {
		t.Fatal("Diag must return a copy")
	}
}
