package sparse

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets for the two file parsers: arbitrary input must never panic,
// and anything that parses must satisfy the matrix invariants.

func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n2 2 3\n1 1 2.0\n2 2 2.0\n2 1 -1.0\n")
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n1 1 1\n1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 1.0\n")
	f.Add("garbage")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n-1 -1 -1\n")
	f.Fuzz(func(t *testing.T, in string) {
		a, err := ReadMatrixMarket(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("parsed matrix violates invariants: %v", err)
		}
	})
}

func FuzzReadHB(f *testing.F) {
	var buf bytes.Buffer
	b := NewBuilder(3)
	b.Add(0, 0, 2)
	b.Add(1, 0, -1)
	b.Add(1, 1, 2)
	b.Add(2, 2, 1)
	_ = WriteHB(&buf, b.Build(), "seed")
	f.Add(buf.String())
	f.Add("short")
	f.Add("title\n 1 1 1 1\nRSA 2 2 2 0\n(1I8) (1I8) (1E10.3)\n")
	f.Fuzz(func(t *testing.T, in string) {
		a, _, err := ReadHB(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("parsed HB matrix violates invariants: %v", err)
		}
	})
}
