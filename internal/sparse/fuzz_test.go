package sparse

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets for the two file parsers: arbitrary input must never panic,
// and anything that parses must satisfy the matrix invariants.

func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n2 2 3\n1 1 2.0\n2 2 2.0\n2 1 -1.0\n")
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n1 1 1\n1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 1.0\n")
	f.Add("garbage")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n-1 -1 -1\n")
	f.Fuzz(func(t *testing.T, in string) {
		a, err := ReadMatrixMarket(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("parsed matrix violates invariants: %v", err)
		}
	})
}

func FuzzReadHB(f *testing.F) {
	var buf bytes.Buffer
	b := NewBuilder(3)
	b.Add(0, 0, 2)
	b.Add(1, 0, -1)
	b.Add(1, 1, 2)
	b.Add(2, 2, 1)
	_ = WriteHB(&buf, b.Build(), "seed")
	f.Add(buf.String())
	f.Add("short")
	f.Add("title\n 1 1 1 1\nRSA 2 2 2 0\n(1I8) (1I8) (1E10.3)\n")
	f.Fuzz(func(t *testing.T, in string) {
		a, _, err := ReadHB(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("parsed HB matrix violates invariants: %v", err)
		}
	})
}

// FuzzCSR feeds raw bytes decoded as a CSC skeleton straight into the matrix
// invariants and the pattern-level helpers: Validate must reject (never
// panic on) arbitrary structure, and anything it accepts must survive
// fingerprinting, adjacency extraction, the norms and a mat-vec.
func FuzzCSR(f *testing.F) {
	f.Add([]byte{2, 0, 2, 3, 0, 1, 1, 10, 20, 30})
	f.Add([]byte{1, 0, 1, 0, 5})
	f.Add([]byte{3, 0, 2, 1, 9})
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := int(data[0] % 8)
		data = data[1:]
		next := func() int {
			if len(data) == 0 {
				return 0
			}
			v := int(int8(data[0]))
			data = data[1:]
			return v
		}
		a := &SymMatrix{N: n, ColPtr: make([]int, n+1)}
		for i := range a.ColPtr {
			a.ColPtr[i] = next()
		}
		nnz := 0
		if n > 0 && a.ColPtr[n] >= 0 && a.ColPtr[n] <= 64 {
			nnz = a.ColPtr[n]
		}
		a.RowIdx = make([]int, nnz)
		a.Val = make([]float64, nnz)
		for i := 0; i < nnz; i++ {
			a.RowIdx[i] = next()
			a.Val[i] = float64(next())
		}
		if err := a.Validate(); err != nil {
			return
		}
		if a.PatternFingerprint() == "" {
			t.Fatal("empty fingerprint for a valid matrix")
		}
		ptr, adj := a.AdjacencyCSR()
		if len(ptr) != n+1 || len(adj) != ptr[n] {
			t.Fatalf("adjacency inconsistent: %d ptrs, %d adj", len(ptr), len(adj))
		}
		if n1, mx := a.Norm1(), a.NormMax(); n1 < mx {
			t.Fatalf("‖A‖₁ = %g < ‖A‖_max = %g", n1, mx)
		}
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = 1
		}
		a.MatVec(x, y)
	})
}
