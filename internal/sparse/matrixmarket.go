package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Matrix Market exchange format (coordinate, real/integer/pattern,
// symmetric). This is the format most modern sparse collections (SuiteSparse)
// distribute, complementing the Harwell-Boeing RSA reader the paper's
// problems used.

// ReadMatrixMarket parses a symmetric coordinate Matrix Market stream.
// General (non-symmetric header) inputs are accepted only if they are
// numerically symmetric; pattern matrices get unit diagonals and -1/deg
// off-diagonals to stay SPD-friendly.
func ReadMatrixMarket(r io.Reader) (*SymMatrix, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("sparse: mm header: %w", err)
	}
	fields := strings.Fields(strings.ToLower(header))
	if len(fields) < 5 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
		return nil, fmt.Errorf("sparse: not a MatrixMarket file: %q", strings.TrimSpace(header))
	}
	format, valtype, symmetry := fields[2], fields[3], fields[4]
	if format != "coordinate" {
		return nil, fmt.Errorf("sparse: only coordinate format supported, got %q", format)
	}
	switch valtype {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("sparse: unsupported value type %q", valtype)
	}
	switch symmetry {
	case "symmetric", "general":
	default:
		return nil, fmt.Errorf("sparse: unsupported symmetry %q", symmetry)
	}

	// Skip comments, read the size line.
	var sizeLine string
	for {
		line, err := br.ReadString('\n')
		if err != nil && line == "" {
			return nil, fmt.Errorf("sparse: mm size line missing: %w", err)
		}
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "%") {
			continue
		}
		sizeLine = trimmed
		break
	}
	sf := strings.Fields(sizeLine)
	if len(sf) != 3 {
		return nil, fmt.Errorf("sparse: bad mm size line %q", sizeLine)
	}
	nrow, err1 := strconv.Atoi(sf[0])
	ncol, err2 := strconv.Atoi(sf[1])
	nnz, err3 := strconv.Atoi(sf[2])
	if err1 != nil || err2 != nil || err3 != nil || nrow != ncol || nrow <= 0 {
		return nil, fmt.Errorf("sparse: bad mm dimensions %q", sizeLine)
	}

	type entry struct {
		i, j int
		v    float64
	}
	entries := make([]entry, 0, nnz)
	for len(entries) < nnz {
		line, err := br.ReadString('\n')
		if err != nil && strings.TrimSpace(line) == "" {
			return nil, fmt.Errorf("sparse: mm data truncated after %d of %d entries", len(entries), nnz)
		}
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "%") {
			continue
		}
		f := strings.Fields(trimmed)
		if (valtype == "pattern" && len(f) < 2) || (valtype != "pattern" && len(f) < 3) {
			return nil, fmt.Errorf("sparse: bad mm entry %q", trimmed)
		}
		i, err1 := strconv.Atoi(f[0])
		j, err2 := strconv.Atoi(f[1])
		if err1 != nil || err2 != nil || i < 1 || j < 1 || i > nrow || j > nrow {
			return nil, fmt.Errorf("sparse: bad mm indices %q", trimmed)
		}
		v := 1.0
		if valtype != "pattern" {
			v, err = strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("sparse: bad mm value %q", trimmed)
			}
		}
		entries = append(entries, entry{i - 1, j - 1, v})
	}

	b := NewBuilder(nrow)
	if symmetry == "general" {
		// Must be numerically symmetric; verify pairs.
		vals := make(map[[2]int]float64, len(entries))
		for _, e := range entries {
			vals[[2]int{e.i, e.j}] = e.v
		}
		for _, e := range entries {
			if e.i == e.j {
				continue
			}
			if w, ok := vals[[2]int{e.j, e.i}]; !ok || w != e.v {
				return nil, fmt.Errorf("sparse: general mm matrix is not symmetric at (%d,%d)", e.i+1, e.j+1)
			}
		}
		for _, e := range entries {
			if e.i >= e.j { // keep lower triangle only (upper is the mirror)
				b.Add(e.i, e.j, e.v)
			}
		}
	} else {
		for _, e := range entries {
			b.Add(e.i, e.j, e.v)
		}
	}
	a := b.Build()
	if valtype == "pattern" {
		// Pattern-only: synthesize a diagonally dominant SPD matrix on the
		// given structure so the result is factorizable.
		deg := make([]float64, a.N)
		for j := 0; j < a.N; j++ {
			for p := a.ColPtr[j] + 1; p < a.ColPtr[j+1]; p++ {
				deg[a.RowIdx[p]]++
				deg[j]++
			}
		}
		for j := 0; j < a.N; j++ {
			for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
				if a.RowIdx[p] == j {
					a.Val[p] = deg[j] + 1
				} else {
					a.Val[p] = -1
				}
			}
		}
	}
	return a, nil
}

// WriteMatrixMarket writes the matrix in symmetric coordinate format.
func WriteMatrixMarket(w io.Writer, a *SymMatrix, comment string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "%%MatrixMarket matrix coordinate real symmetric")
	if comment != "" {
		for _, line := range strings.Split(comment, "\n") {
			fmt.Fprintf(bw, "%% %s\n", line)
		}
	}
	fmt.Fprintf(bw, "%d %d %d\n", a.N, a.N, a.NNZ())
	for j := 0; j < a.N; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			fmt.Fprintf(bw, "%d %d %.17g\n", a.RowIdx[p]+1, j+1, a.Val[p])
		}
	}
	return bw.Flush()
}

// ReadMatrixMarketComplex parses a complex symmetric coordinate Matrix
// Market stream (entries: i j re im).
func ReadMatrixMarketComplex(r io.Reader) (*ZSymMatrix, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("sparse: mm header: %w", err)
	}
	fields := strings.Fields(strings.ToLower(header))
	if len(fields) < 5 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" ||
		fields[2] != "coordinate" || fields[3] != "complex" || fields[4] != "symmetric" {
		return nil, fmt.Errorf("sparse: want complex symmetric coordinate MatrixMarket, got %q",
			strings.TrimSpace(header))
	}
	var sizeLine string
	for {
		line, err := br.ReadString('\n')
		if err != nil && line == "" {
			return nil, fmt.Errorf("sparse: mm size line missing: %w", err)
		}
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "%") {
			continue
		}
		sizeLine = trimmed
		break
	}
	sf := strings.Fields(sizeLine)
	if len(sf) != 3 {
		return nil, fmt.Errorf("sparse: bad mm size line %q", sizeLine)
	}
	nrow, err1 := strconv.Atoi(sf[0])
	ncol, err2 := strconv.Atoi(sf[1])
	nnz, err3 := strconv.Atoi(sf[2])
	if err1 != nil || err2 != nil || err3 != nil || nrow != ncol || nrow <= 0 || nnz < 0 {
		return nil, fmt.Errorf("sparse: bad mm dimensions %q", sizeLine)
	}
	b := NewZBuilder(nrow)
	read := 0
	for read < nnz {
		line, err := br.ReadString('\n')
		if err != nil && strings.TrimSpace(line) == "" {
			return nil, fmt.Errorf("sparse: mm data truncated after %d of %d entries", read, nnz)
		}
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "%") {
			continue
		}
		f := strings.Fields(trimmed)
		if len(f) < 4 {
			return nil, fmt.Errorf("sparse: bad complex mm entry %q", trimmed)
		}
		i, err1 := strconv.Atoi(f[0])
		j, err2 := strconv.Atoi(f[1])
		re, err3 := strconv.ParseFloat(f[2], 64)
		im, err4 := strconv.ParseFloat(f[3], 64)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil ||
			i < 1 || j < 1 || i > nrow || j > nrow {
			return nil, fmt.Errorf("sparse: bad complex mm entry %q", trimmed)
		}
		b.Add(i-1, j-1, complex(re, im))
		read++
	}
	return b.Build(), nil
}

// WriteMatrixMarketComplex writes the matrix in complex symmetric coordinate
// format.
func WriteMatrixMarketComplex(w io.Writer, a *ZSymMatrix, comment string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "%%MatrixMarket matrix coordinate complex symmetric")
	if comment != "" {
		for _, line := range strings.Split(comment, "\n") {
			fmt.Fprintf(bw, "%% %s\n", line)
		}
	}
	fmt.Fprintf(bw, "%d %d %d\n", a.N, a.N, a.NNZ())
	for j := 0; j < a.N; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			v := a.Val[p]
			fmt.Fprintf(bw, "%d %d %.17g %.17g\n", a.RowIdx[p]+1, j+1, real(v), imag(v))
		}
	}
	return bw.Flush()
}
