package sparse

import (
	"bytes"
	"math"
	"math/cmplx"
	"math/rand"
	"strings"
	"testing"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	a := randomSym(rng, 20, 0.25)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a, "test matrix\nsecond comment line"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != a.N || got.NNZ() != a.NNZ() {
		t.Fatalf("shape: n=%d nnz=%d", got.N, got.NNZ())
	}
	for j := 0; j < a.N; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			i := a.RowIdx[p]
			if math.Abs(got.At(i, j)-a.Val[p]) > 1e-15*(1+math.Abs(a.Val[p])) {
				t.Fatalf("(%d,%d): %g want %g", i, j, got.At(i, j), a.Val[p])
			}
		}
	}
}

func TestMatrixMarketGeneralSymmetric(t *testing.T) {
	// A general-header file that is numerically symmetric must parse.
	mm := `%%MatrixMarket matrix coordinate real general
% a symmetric matrix written as general
3 3 5
1 1 2.0
2 2 3.0
3 3 4.0
1 2 -1.0
2 1 -1.0
`
	a, err := ReadMatrixMarket(strings.NewReader(mm))
	if err != nil {
		t.Fatal(err)
	}
	if a.At(1, 0) != -1 || a.At(2, 2) != 4 {
		t.Fatalf("values wrong")
	}
}

func TestMatrixMarketGeneralAsymmetricRejected(t *testing.T) {
	mm := `%%MatrixMarket matrix coordinate real general
2 2 3
1 1 1.0
1 2 5.0
2 1 -5.0
`
	if _, err := ReadMatrixMarket(strings.NewReader(mm)); err == nil {
		t.Fatal("asymmetric general matrix must be rejected")
	}
}

func TestMatrixMarketPattern(t *testing.T) {
	mm := `%%MatrixMarket matrix coordinate pattern symmetric
4 4 6
1 1
2 2
3 3
4 4
2 1
4 3
`
	a, err := ReadMatrixMarket(strings.NewReader(mm))
	if err != nil {
		t.Fatal(err)
	}
	// Synthesized values: diagonally dominant.
	if a.At(0, 0) <= math.Abs(a.At(1, 0)) {
		t.Fatal("pattern synthesis not diagonally dominant")
	}
	if a.At(1, 0) != -1 {
		t.Fatalf("off-diagonal %g", a.At(1, 0))
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	cases := []string{
		"not a header\n",
		"%%MatrixMarket matrix array real symmetric\n3 3\n",
		"%%MatrixMarket matrix coordinate complex symmetric\n1 1 1\n1 1 1 0\n",
		"%%MatrixMarket matrix coordinate real skew-symmetric\n1 1 1\n1 1 1\n",
		"%%MatrixMarket matrix coordinate real symmetric\n2 3 1\n1 1 1.0\n",
		"%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n1 1 1.0\n",        // truncated
		"%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n5 5 1.0\n",        // bad index
		"%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n1 1 notanumber\n", // bad value
	}
	for i, c := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestComplexMatrixMarketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	a := zRandomSym(rng, 12, 0.3)
	var buf bytes.Buffer
	if err := WriteMatrixMarketComplex(&buf, a, "complex test"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrixMarketComplex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != a.N || got.NNZ() != a.NNZ() {
		t.Fatalf("shape n=%d nnz=%d", got.N, got.NNZ())
	}
	for j := 0; j < a.N; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			i := a.RowIdx[p]
			if cmplx.Abs(got.At(i, j)-a.Val[p]) > 1e-15*(1+cmplx.Abs(a.Val[p])) {
				t.Fatalf("(%d,%d)", i, j)
			}
		}
	}
}

func TestComplexMatrixMarketErrors(t *testing.T) {
	cases := []string{
		"%%MatrixMarket matrix coordinate real symmetric\n1 1 1\n1 1 1.0\n",    // wrong type
		"%%MatrixMarket matrix coordinate complex symmetric\n2 2 1\n1 1 1.0\n", // missing imag
		"%%MatrixMarket matrix coordinate complex symmetric\n2 2 1\n9 9 1 1\n", // bad index
		"%%MatrixMarket matrix coordinate complex symmetric\n2 2 5\n1 1 1 1\n", // truncated
	}
	for i, c := range cases {
		if _, err := ReadMatrixMarketComplex(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}
