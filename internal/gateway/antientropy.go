package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"time"

	"github.com/pastix-go/pastix/internal/gateway/client"
	"github.com/pastix-go/pastix/internal/trace"
)

// This file is the gateway's anti-entropy repair loop. Replication at
// factorize time establishes R copies of every factor; node deaths erode
// that. The repair loop restores it: every RepairInterval it walks the
// handle table, verifies which replicas still exist, and re-replicates
// under-replicated factors onto surviving nodes — preferring a direct
// backend-to-backend factor transfer (/v1/replicate), falling back to
// re-factorizing from the original request body when no survivor may export
// (deterministic factorization makes the rebuilt factor bitwise-identical).
//
// Verification is cheap by design: a replica records the backend process
// instance that created it. Same instance now → the handle necessarily
// still exists (processes never forget handles except by release) → no
// round trip. Changed instance → the process restarted → one /v1/stat
// decides whether the durable journal replayed the handle (keep, adopt the
// new instance) or it is gone (drop). Unroutable backends are left alone:
// a down node may come back with its durable store intact, and dropping
// its replicas would force needless rebuilds.

// wakeParked broadcasts to every factorize parked in awaitShard by closing
// the current park channel and installing a fresh one.
func (g *Gateway) wakeParked() {
	g.parkMu.Lock()
	ch := g.parkCh
	g.parkCh = make(chan struct{})
	g.parkMu.Unlock()
	close(ch)
}

// parkSignal returns the channel the next wakeParked will close.
func (g *Gateway) parkSignal() <-chan struct{} {
	g.parkMu.Lock()
	defer g.parkMu.Unlock()
	return g.parkCh
}

// repairLoop runs repairOnce every RepairInterval until ctx ends.
func (g *Gateway) repairLoop(ctx context.Context) {
	defer g.wg.Done()
	tick := time.NewTicker(g.cfg.RepairInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			g.repairOnce(ctx)
		}
	}
}

// repairOnce makes one pass over the handle table.
func (g *Gateway) repairOnce(ctx context.Context) {
	for _, e := range g.handles.entries() {
		if ctx.Err() != nil {
			return
		}
		g.repairHandle(ctx, e)
	}
}

// repairHandle verifies one handle's replica set and re-replicates if the
// count of live (routable, verified) replicas is below target. The target
// is min(R, routable backends): with fewer live nodes than R the handle is
// as replicated as the fleet allows, and repair resumes when nodes return.
func (g *Gateway) repairHandle(ctx context.Context, e handleEntry) {
	now := time.Now()
	routableBackends := 0
	for _, b := range g.backends {
		if b.routable(now) {
			routableBackends++
		}
	}

	kept := make([]replicaRef, 0, len(e.replicas))
	onBackend := make(map[int]bool, len(e.replicas))
	live := 0
	changed := false
	for _, rep := range e.replicas {
		b := g.backends[rep.Backend]
		if !b.routable(now) {
			// Down or draining: unverifiable, and possibly durable. Keep the
			// ref — it does not count as live, so repair still tops up from
			// the survivors.
			kept = append(kept, rep)
			onBackend[rep.Backend] = true
			continue
		}
		inst := b.instanceNow()
		if rep.Inst != "" && inst == rep.Inst {
			kept = append(kept, rep)
			onBackend[rep.Backend] = true
			live++
			continue
		}
		// The process restarted (or the instance was never recorded): ask it.
		switch g.statReplica(ctx, b, rep.Handle) {
		case statExists:
			rep.Inst = inst
			kept = append(kept, rep)
			onBackend[rep.Backend] = true
			live++
			changed = true
		case statGone:
			g.replicasDropped.Add(1)
			changed = true
		default: // statUnknown: transient — keep, don't count as live
			kept = append(kept, rep)
			onBackend[rep.Backend] = true
		}
	}

	target := g.cfg.Replicas
	if routableBackends < target {
		target = routableBackends
	}
	// Survivors that can source a transfer.
	var sources []replicaRef
	for _, rep := range kept {
		if g.backends[rep.Backend].routable(now) {
			sources = append(sources, rep)
		}
	}
	for live < target {
		dst := g.pickDestination(e.fingerprint, onBackend, now)
		if dst == nil {
			break
		}
		newRep, ok := g.replicateTo(ctx, e, sources, dst)
		if !ok {
			break
		}
		kept = append(kept, newRep)
		sources = append(sources, newRep)
		onBackend[dst.id] = true
		live++
		changed = true
		g.repairs.Add(1)
	}

	if changed {
		// rebind returns false if the handle was released mid-repair; the
		// replicas made above die with their nodes' stores, like any release
		// racing a dead replica.
		g.handles.rebind(e.handle, kept)
	}
}

// pickDestination walks the ring in the shard's preference order and returns
// the first routable backend not already holding a replica.
func (g *Gateway) pickDestination(fingerprint string, onBackend map[int]bool, now time.Time) *backendHealth {
	for _, id := range g.ring.order(fingerprint) {
		if onBackend[id] {
			continue
		}
		if b := g.backends[id]; b.routable(now) {
			return b
		}
	}
	return nil
}

type statVerdict int

const (
	statUnknown statVerdict = iota // transient: recovering, transport error
	statExists
	statGone
)

// statReplica asks one backend whether it still holds handle.
func (g *Gateway) statReplica(ctx context.Context, b *backendHealth, handle string) statVerdict {
	body, _ := json.Marshal(struct {
		Handle string `json:"handle"`
	}{handle})
	res := g.attemptOnce(ctx, b, "/v1/stat", body)
	switch {
	case res.err != nil:
		return statUnknown
	case res.status == http.StatusOK:
		return statExists
	case res.status == http.StatusNotFound:
		return statGone
	default:
		return statUnknown
	}
}

// replicateTo establishes one new replica of e on dst. It first tries a
// factor transfer: export the serialized factor from a surviving replica
// (POST /v1/replicate, JSON) and import the bytes on dst (POST
// /v1/replicate, octet-stream). If every survivor refuses or fails to
// export — NoFactorExport policy, or the survivors died under us — it
// re-factorizes on dst from the original request body, whose idempotency
// key makes the retry safe and whose deterministic factorization makes the
// result bitwise-identical to the lost replica.
func (g *Gateway) replicateTo(ctx context.Context, e handleEntry, sources []replicaRef, dst *backendHealth) (replicaRef, bool) {
	for _, src := range sources {
		blob, ok := g.exportFrom(ctx, g.backends[src.Backend], src.Handle)
		if !ok {
			continue
		}
		if handle, ok := g.importTo(ctx, dst, blob); ok {
			return replicaRef{Backend: dst.id, Handle: handle, Inst: dst.instanceNow()}, true
		}
		// The blob moved but dst refused it: dst is the problem, not the
		// source — re-factorizing on the same dst is unlikely to fare better,
		// but it is the only remaining path.
		break
	}
	if len(e.body) == 0 {
		return replicaRef{}, false
	}
	res := g.attemptOnce(ctx, dst, "/v1/factorize", e.body)
	if res.err != nil || res.status != http.StatusOK {
		return replicaRef{}, false
	}
	var fr struct {
		Handle string `json:"handle"`
	}
	if json.Unmarshal(res.body, &fr) != nil || fr.Handle == "" {
		return replicaRef{}, false
	}
	g.refactorizes.Add(1)
	return replicaRef{Backend: dst.id, Handle: fr.Handle, Inst: dst.instanceNow()}, true
}

// exportFrom pulls the serialized factor record for handle from src.
func (g *Gateway) exportFrom(ctx context.Context, src *backendHealth, handle string) ([]byte, bool) {
	body, _ := json.Marshal(struct {
		Handle string `json:"handle"`
	}{handle})
	res := g.attemptOnce(ctx, src, "/v1/replicate", body)
	if res.err != nil || res.status != http.StatusOK || len(res.body) == 0 {
		return nil, false
	}
	return res.body, true
}

// importTo pushes an exported factor blob to dst and returns dst's new
// local handle.
func (g *Gateway) importTo(ctx context.Context, dst *backendHealth, blob []byte) (string, bool) {
	actx, cancel := context.WithTimeout(ctx, g.cfg.AttemptTimeout)
	defer cancel()
	dst.inflight.Add(1)
	defer dst.inflight.Add(-1)
	one := &client.Client{HTTP: g.hc.HTTP, Policy: client.Policy{MaxAttempts: 1, Seed: g.cfg.Retry.Seed}}
	resp, err := one.Do(actx, dst.url+"/v1/replicate", "application/octet-stream", blob)
	now := time.Now()
	if err != nil {
		dst.onFailure(err.Error(), g.cfg.BreakerThreshold, g.cfg.BreakerCooldown, now)
		return "", false
	}
	rb, rerr := client.ReadBody(resp, g.cfg.MaxBodyBytes)
	if rerr != nil || resp.StatusCode != http.StatusOK {
		return "", false
	}
	dst.onSuccess(0)
	var fr struct {
		Handle string `json:"handle"`
	}
	if json.Unmarshal(rb, &fr) != nil || fr.Handle == "" {
		return "", false
	}
	return fr.Handle, true
}

// handleMetrics exposes the gateway's counters and the fleet replication
// state in Prometheus text format.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	routable := make([]bool, len(g.backends))
	for i, b := range g.backends {
		routable[i] = b.routable(now)
	}
	minRepl := g.cfg.Replicas
	entries := g.handles.entries()
	for _, e := range entries {
		live := 0
		for _, rep := range e.replicas {
			if routable[rep.Backend] {
				live++
			}
		}
		if live < minRepl {
			minRepl = live
		}
	}
	st := g.Stats()
	var buf bytes.Buffer
	for _, c := range []struct {
		name, help string
		v          int64
	}{
		{"pastix_gateway_requests_total", "Requests routed by the gateway.", st.Requests},
		{"pastix_gateway_retries_total", "Extra attempts after a failed one.", st.Retries},
		{"pastix_gateway_failovers_total", "Requests served by a non-primary replica.", st.Failovers},
		{"pastix_gateway_repairs_total", "Handles re-replicated by anti-entropy.", st.Repairs},
		{"pastix_gateway_replicas_dropped_total", "Replica refs dropped as verifiably lost.", st.ReplicasDropped},
		{"pastix_gateway_refactorizes_total", "Repairs that fell back to re-factorizing.", st.Refactorizes},
	} {
		trace.PromHeader(&buf, c.name, "counter", c.help)
		trace.PromValue(&buf, c.name, c.v)
	}
	trace.PromHeader(&buf, "pastix_gateway_handles", "gauge", "Live gateway factor handles.")
	trace.PromValue(&buf, "pastix_gateway_handles", int64(len(entries)))
	trace.PromHeader(&buf, "pastix_gateway_shard_replicas", "gauge",
		"Worst-case live replica count over all handles (target: replicas).")
	trace.PromValue(&buf, "pastix_gateway_shard_replicas", int64(minRepl))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = w.Write(buf.Bytes())
}
