package gateway

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/pastix-go/pastix/internal/gen"
	"github.com/pastix-go/pastix/internal/service"
)

// postRawJSON is postJSON without the testing.T, for goroutines.
func postRawJSON(url string, body any) (int, map[string]json.RawMessage, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, out, nil
}

// Full round trip through the gateway: analyze, replicated factorize, a solve
// that is bit-identical to a fault-free single-node run, release fanned out
// to every replica.
func TestGatewayEndToEnd(t *testing.T) {
	nodes := []*node{startNode(t, svcConfig()), startNode(t, svcConfig())}
	g, ts := startGateway(t, nodes, nil)
	waitRoutable(t, g, 2)

	a, mm := testMatrix(t)
	_, b := gen.RHSForSolution(a)
	want := referenceSolve(t, a, b)

	st, ar := postJSON(t, ts.URL+"/v1/analyze", map[string]any{"matrix_market": mm})
	if st != http.StatusOK {
		t.Fatalf("analyze status %d: %v", st, ar)
	}
	if fp := field[string](t, ar, "fingerprint"); fp == "" {
		t.Fatal("analyze returned an empty fingerprint")
	}

	st, fr := postJSON(t, ts.URL+"/v1/factorize", map[string]any{"matrix_market": mm})
	if st != http.StatusOK {
		t.Fatalf("factorize status %d: %v", st, fr)
	}
	handle := field[string](t, fr, "handle")
	if len(handle) < 2 || handle[:2] != "g-" {
		t.Fatalf("handle %q is not a gateway handle", handle)
	}
	if r := field[int](t, fr, "replicas"); r != 2 {
		t.Fatalf("replicas %d, want 2", r)
	}
	if pb := field[int](t, fr, "primary_backend"); pb != 0 && pb != 1 {
		t.Fatalf("primary_backend %d out of range", pb)
	}
	if k := field[string](t, fr, "idempotency_key"); k == "" {
		t.Fatal("gateway did not inject an idempotency key")
	}
	if nodes[0].liveFactors() != 1 || nodes[1].liveFactors() != 1 {
		t.Fatalf("replication did not reach both nodes: %d and %d live factors",
			nodes[0].liveFactors(), nodes[1].liveFactors())
	}

	st, sr := postJSON(t, ts.URL+"/v1/solve", map[string]any{"handle": handle, "b": b})
	if st != http.StatusOK {
		t.Fatalf("solve status %d: %v", st, sr)
	}
	bitIdentical(t, field[[]float64](t, sr, "x"), want, "gateway solve")
	if sb := field[int](t, sr, "served_by"); sb != 0 && sb != 1 {
		t.Fatalf("served_by %d out of range", sb)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Status   string `json:"status"`
		Handles  int    `json:"handles"`
		Backends []BackendStatus
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz.Status != "ok" || hz.Handles != 1 {
		t.Fatalf("gateway healthz: status %q handles %d, want ok/1", hz.Status, hz.Handles)
	}

	st, rr := postJSON(t, ts.URL+"/v1/release", map[string]any{"handle": handle})
	if st != http.StatusOK {
		t.Fatalf("release status %d: %v", st, rr)
	}
	if r := field[int](t, rr, "replicas"); r != 2 {
		t.Fatalf("release reached %d replicas, want 2", r)
	}
	if nodes[0].liveFactors() != 0 || nodes[1].liveFactors() != 0 {
		t.Fatal("release left factors live on a replica")
	}
	if st, er := postJSON(t, ts.URL+"/v1/solve", map[string]any{"handle": handle, "b": b}); st != http.StatusNotFound {
		t.Fatalf("solve on a released handle: status %d %v, want 404", st, er)
	}
}

// Killing the primary mid-session must not lose the factor: the solve fails
// over to the replica and returns the same bits.
func TestGatewayFailoverKilledPrimary(t *testing.T) {
	nodes := []*node{startNode(t, svcConfig()), startNode(t, svcConfig())}
	// A huge probe interval: only the initial sweep runs, so the gateway
	// cannot learn about the kill from probes — the solve itself must
	// discover it and fail over.
	g, ts := startGateway(t, nodes, func(c *Config) { c.ProbeInterval = time.Hour })
	waitRoutable(t, g, 2)

	a, mm := testMatrix(t)
	_, b := gen.RHSForSolution(a)
	want := referenceSolve(t, a, b)

	st, fr := postJSON(t, ts.URL+"/v1/factorize", map[string]any{"matrix_market": mm})
	if st != http.StatusOK {
		t.Fatalf("factorize status %d: %v", st, fr)
	}
	handle := field[string](t, fr, "handle")
	pb := field[int](t, fr, "primary_backend")

	nodes[pb].down.Store(true)

	st, sr := postJSON(t, ts.URL+"/v1/solve", map[string]any{"handle": handle, "b": b})
	if st != http.StatusOK {
		t.Fatalf("solve after primary kill: status %d %v", st, sr)
	}
	bitIdentical(t, field[[]float64](t, sr, "x"), want, "failover solve")
	if sb := field[int](t, sr, "served_by"); sb != 1-pb {
		t.Fatalf("served_by %d, want replica %d", sb, 1-pb)
	}
	if g.Stats().Failovers < 1 {
		t.Fatalf("failover not counted: %+v", g.Stats())
	}
}

// A restarted primary answers requests but has lost its stores; its stale
// 404 must route the solve to the replica, not surface to the client.
func TestGatewayStaleHandleFailover(t *testing.T) {
	nodes := []*node{startNode(t, svcConfig()), startNode(t, svcConfig())}
	g, ts := startGateway(t, nodes, nil)
	waitRoutable(t, g, 2)

	a, mm := testMatrix(t)
	_, b := gen.RHSForSolution(a)
	want := referenceSolve(t, a, b)

	st, fr := postJSON(t, ts.URL+"/v1/factorize", map[string]any{"matrix_market": mm})
	if st != http.StatusOK {
		t.Fatalf("factorize status %d: %v", st, fr)
	}
	handle := field[string](t, fr, "handle")
	pb := field[int](t, fr, "primary_backend")

	nodes[pb].restart()
	waitRoutable(t, g, 2)
	if nodes[pb].liveFactors() != 0 {
		t.Fatal("restart did not clear the primary's store")
	}

	st, sr := postJSON(t, ts.URL+"/v1/solve", map[string]any{"handle": handle, "b": b})
	if st != http.StatusOK {
		t.Fatalf("solve after primary restart: status %d %v", st, sr)
	}
	bitIdentical(t, field[[]float64](t, sr, "x"), want, "stale-handle solve")
	if sb := field[int](t, sr, "served_by"); sb != 1-pb {
		t.Fatalf("served_by %d, want replica %d", sb, 1-pb)
	}
	if g.Stats().StaleRoutes < 1 {
		t.Fatalf("stale route not counted: %+v", g.Stats())
	}
}

// The idempotency key makes factorize retries exactly-once: a node that
// committed but whose response was lost replays instead of factoring again.
func TestGatewayIdempotentFactorizeRetry(t *testing.T) {
	nodes := []*node{startNode(t, svcConfig()), startNode(t, svcConfig())}
	g, ts := startGateway(t, nodes, nil)
	waitRoutable(t, g, 2)

	a, mm := testMatrix(t)
	_, b := gen.RHSForSolution(a)
	want := referenceSolve(t, a, b)

	// The first factorize to arrive anywhere is committed for real, but its
	// response is swallowed into an injected 502 — the classic lost-ack.
	var dropOnce atomic.Bool
	intercept := func(w http.ResponseWriter, r *http.Request, h http.Handler) bool {
		if r.URL.Path == "/v1/factorize" && dropOnce.CompareAndSwap(false, true) {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, r)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusBadGateway)
			_, _ = w.Write([]byte(`{"error":"injected: response lost after commit"}`))
			return true
		}
		return false
	}
	for _, n := range nodes {
		n.intercept.Store(intercept)
	}

	body := map[string]any{"matrix_market": mm, "idempotency_key": "idem-test-1"}
	st, fr := postJSON(t, ts.URL+"/v1/factorize", body)
	if st != http.StatusOK {
		t.Fatalf("factorize status %d: %v", st, fr)
	}
	// One replica answered 502 (after committing), so only one is recorded.
	if r := field[int](t, fr, "replicas"); r != 1 {
		t.Fatalf("first factorize recorded %d replicas, want 1 (one ack lost)", r)
	}
	if nodes[0].liveFactors() != 1 || nodes[1].liveFactors() != 1 {
		t.Fatalf("after lost ack: %d and %d live factors, want 1 and 1",
			nodes[0].liveFactors(), nodes[1].liveFactors())
	}

	// The retry with the same key must not double-apply anywhere: both nodes
	// replay their committed response.
	st, fr2 := postJSON(t, ts.URL+"/v1/factorize", body)
	if st != http.StatusOK {
		t.Fatalf("retry factorize status %d: %v", st, fr2)
	}
	if r := field[int](t, fr2, "replicas"); r != 2 {
		t.Fatalf("retry recorded %d replicas, want 2", r)
	}
	if !field[bool](t, fr2, "idempotent_replay") {
		t.Fatal("retry's primary response was not an idempotent replay")
	}
	if nodes[0].liveFactors() != 1 || nodes[1].liveFactors() != 1 {
		t.Fatalf("retry double-applied: %d and %d live factors, want 1 and 1",
			nodes[0].liveFactors(), nodes[1].liveFactors())
	}

	st, sr := postJSON(t, ts.URL+"/v1/solve", map[string]any{"handle": field[string](t, fr2, "handle"), "b": b})
	if st != http.StatusOK {
		t.Fatalf("solve status %d: %v", st, sr)
	}
	bitIdentical(t, field[[]float64](t, sr, "x"), want, "post-retry solve")
}

// With every replica of a shard down, factorize degrades gracefully: a
// bounded queue parks it, overflow and expiry get structured 503s, and a
// recovered node picks the parked request up.
func TestGatewayDegradedQueue(t *testing.T) {
	n0 := startNode(t, svcConfig())
	g, ts := startGateway(t, []*node{n0}, func(c *Config) {
		c.Replicas = 1
		c.QueueDepth = 1
		c.QueueWait = 700 * time.Millisecond
		c.RetryAfter = 50 * time.Millisecond
	})
	waitRoutable(t, g, 1)
	_, mm := testMatrix(t)

	n0.down.Store(true)
	waitFor(t, 5*time.Second, "backend marked down", func() bool {
		return !g.backends[0].routable(time.Now())
	})

	// Expiry: the park times out and reports a retry hint.
	t0 := time.Now()
	st, er := postJSON(t, ts.URL+"/v1/factorize", map[string]any{"matrix_market": mm})
	if st != http.StatusServiceUnavailable {
		t.Fatalf("degraded factorize status %d: %v", st, er)
	}
	if code := field[string](t, er, "code"); code != "shard_unavailable" {
		t.Fatalf("degraded code %q, want shard_unavailable", code)
	}
	if ra := field[int64](t, er, "retry_after_ms"); ra <= 0 {
		t.Fatalf("retry_after_ms %d, want positive", ra)
	}
	if e := time.Since(t0); e < 200*time.Millisecond {
		t.Fatalf("expiry came back in %v — did not wait in the queue", e)
	}

	// Overflow: one parked request holds the only slot; the next is rejected
	// immediately rather than parked behind it.
	type result struct {
		st  int
		out map[string]json.RawMessage
		err error
	}
	parked := make(chan result, 1)
	go func() {
		st, out, err := postRawJSON(ts.URL+"/v1/factorize", map[string]any{"matrix_market": mm})
		parked <- result{st, out, err}
	}()
	time.Sleep(100 * time.Millisecond) // let it take the slot
	t0 = time.Now()
	st, er = postJSON(t, ts.URL+"/v1/factorize", map[string]any{"matrix_market": mm})
	if st != http.StatusServiceUnavailable || time.Since(t0) > 200*time.Millisecond {
		t.Fatalf("queue overflow: status %d after %v, want an immediate 503", st, time.Since(t0))
	}

	// Recovery: the node comes back while the parked request waits.
	n0.down.Store(false)
	res := <-parked
	if res.err != nil {
		t.Fatalf("parked factorize failed: %v", res.err)
	}
	if res.st != http.StatusOK {
		t.Fatalf("parked factorize status %d after recovery: %v", res.st, res.out)
	}
	if g.Stats().Queued < 2 {
		t.Fatalf("queue admissions not counted: %+v", g.Stats())
	}
}

// A hedged solve escapes a stalled primary: the duplicate fired after
// HedgeDelay wins long before the primary's stall clears.
func TestGatewayHedgedSolve(t *testing.T) {
	nodes := []*node{startNode(t, svcConfig()), startNode(t, svcConfig())}
	g, ts := startGateway(t, nodes, func(c *Config) {
		c.HedgeDelay = 40 * time.Millisecond
	})
	waitRoutable(t, g, 2)

	a, mm := testMatrix(t)
	_, b := gen.RHSForSolution(a)
	want := referenceSolve(t, a, b)

	st, fr := postJSON(t, ts.URL+"/v1/factorize", map[string]any{"matrix_market": mm})
	if st != http.StatusOK {
		t.Fatalf("factorize status %d: %v", st, fr)
	}
	handle := field[string](t, fr, "handle")
	pb := field[int](t, fr, "primary_backend")

	nodes[pb].stallNS.Store(int64(800 * time.Millisecond))
	t0 := time.Now()
	st, sr := postJSON(t, ts.URL+"/v1/solve", map[string]any{"handle": handle, "b": b})
	elapsed := time.Since(t0)
	if st != http.StatusOK {
		t.Fatalf("hedged solve status %d: %v", st, sr)
	}
	if sb := field[int](t, sr, "served_by"); sb != 1-pb {
		t.Fatalf("served_by %d, want the hedged replica %d", sb, 1-pb)
	}
	if elapsed > 600*time.Millisecond {
		t.Fatalf("hedged solve took %v — the hedge did not escape the %v stall", elapsed, 800*time.Millisecond)
	}
	bitIdentical(t, field[[]float64](t, sr, "x"), want, "hedged solve")
	if g.Stats().Hedges < 1 {
		t.Fatalf("hedge not counted: %+v", g.Stats())
	}
}

// Satellite: draining the primary mid-batch must not lose or duplicate the
// parked riders, and new traffic re-routes to the replica.
func TestGatewayDrainVsBatchTwoNodes(t *testing.T) {
	cfg := svcConfig()
	cfg.BatchWindow = 250 * time.Millisecond
	cfg.MaxBatch = 8
	nodes := []*node{startNode(t, cfg), startNode(t, cfg)}
	g, ts := startGateway(t, nodes, nil)
	waitRoutable(t, g, 2)

	a, mm := testMatrix(t)
	st, fr := postJSON(t, ts.URL+"/v1/factorize", map[string]any{"matrix_market": mm})
	if st != http.StatusOK {
		t.Fatalf("factorize status %d: %v", st, fr)
	}
	handle := field[string](t, fr, "handle")
	pb := field[int](t, fr, "primary_backend")

	// k riders enter the primary's batch window...
	const k = 4
	bs := make([][]float64, k)
	wants := make([][]float64, k)
	for i := range bs {
		bs[i] = make([]float64, a.N)
		for j := range bs[i] {
			bs[i][j] = float64(1+j%7) + float64(i)*0.5
		}
		wants[i] = referenceSolve(t, a, bs[i])
	}
	type result struct {
		st  int
		out map[string]json.RawMessage
		err error
	}
	results := make(chan result, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, out, err := postRawJSON(ts.URL+"/v1/solve", map[string]any{"handle": handle, "b": bs[i]})
			results <- result{st, out, err}
		}(i)
	}
	// ...and the primary starts draining mid-window.
	time.Sleep(80 * time.Millisecond)
	nodes[pb].svc.Load().(*service.Server).BeginDrain()
	wg.Wait()
	close(results)

	// Every rider finishes exactly once — either on the draining primary
	// (admitted before the drain) or failed over to the replica — with the
	// reference bits.
	got := 0
	for res := range results {
		if res.err != nil || res.st != http.StatusOK {
			t.Fatalf("rider lost to the drain: status %d err %v out %v", res.st, res.err, res.out)
		}
		var x []float64
		if err := json.Unmarshal(res.out["x"], &x); err != nil {
			t.Fatal(err)
		}
		matched := -1
		for i := range wants {
			if len(x) == len(wants[i]) && x[0] == wants[i][0] && x[len(x)-1] == wants[i][len(x)-1] {
				same := true
				for j := range x {
					if x[j] != wants[i][j] {
						same = false
						break
					}
				}
				if same {
					matched = i
					break
				}
			}
		}
		if matched < 0 {
			t.Fatal("a rider's solution matches no reference bit-for-bit")
		}
		wants[matched] = nil // each reference consumed exactly once
		got++
	}
	if got != k {
		t.Fatalf("%d riders finished, want %d", got, k)
	}

	// The drain becomes visible to the prober; new solves route to the
	// replica.
	waitFor(t, 5*time.Second, "primary marked draining", func() bool {
		return !g.backends[pb].routable(time.Now())
	})
	_, b := gen.RHSForSolution(a)
	st, sr := postJSON(t, ts.URL+"/v1/solve", map[string]any{"handle": handle, "b": b})
	if st != http.StatusOK {
		t.Fatalf("post-drain solve status %d: %v", st, sr)
	}
	if sb := field[int](t, sr, "served_by"); sb != 1-pb {
		t.Fatalf("post-drain solve served by %d, want replica %d", sb, 1-pb)
	}
}

// Structured error shapes: bad bodies, oversized bodies, unknown handles,
// and a fully-dead fleet.
func TestGatewayErrorShapes(t *testing.T) {
	n0 := startNode(t, svcConfig())
	g, ts := startGateway(t, []*node{n0}, func(c *Config) {
		c.Replicas = 1
		c.QueueWait = 100 * time.Millisecond
		c.MaxBodyBytes = 16 << 10
	})
	waitRoutable(t, g, 1)

	st, er := postJSON(t, ts.URL+"/v1/analyze", map[string]any{"matrix_market": "not a matrix"})
	if st != http.StatusBadRequest || field[string](t, er, "code") != "bad_request" {
		t.Fatalf("junk matrix: status %d code %v", st, er)
	}

	big := map[string]any{"matrix_market": string(bytes.Repeat([]byte("x"), 32<<10))}
	st, er = postJSON(t, ts.URL+"/v1/analyze", big)
	if st != http.StatusRequestEntityTooLarge || field[string](t, er, "code") != "body_too_large" {
		t.Fatalf("oversized body: status %d %v", st, er)
	}

	st, er = postJSON(t, ts.URL+"/v1/solve", map[string]any{"handle": "g-999999-nope", "b": []float64{1}})
	if st != http.StatusNotFound || field[string](t, er, "code") != "unknown_handle" {
		t.Fatalf("unknown handle: status %d %v", st, er)
	}

	n0.down.Store(true)
	waitFor(t, 5*time.Second, "backend marked down", func() bool {
		return !g.backends[0].routable(time.Now())
	})
	_, mm := testMatrix(t)
	st, er = postJSON(t, ts.URL+"/v1/analyze", map[string]any{"matrix_market": mm})
	if st != http.StatusServiceUnavailable {
		t.Fatalf("dead fleet analyze: status %d %v", st, er)
	}
	if ra := field[int64](t, er, "retry_after_ms"); ra <= 0 {
		t.Fatalf("dead fleet 503 lacks retry_after_ms: %v", er)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("gateway healthz with dead fleet: %d, want 503", resp.StatusCode)
	}
}
