// Package client is a retrying HTTP client for the gateway tier: capped
// exponential backoff with full jitter, Retry-After honoring, and replayable
// request bodies. The jitter is drawn from a seeded splitmix64 counter hash —
// the same discipline internal/faults uses — so a backoff schedule is a pure
// function of (Seed, request key, attempt) and unit tests can assert it
// deterministically.
package client

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Policy configures retries. The zero value selects the defaults.
type Policy struct {
	// MaxAttempts is the total number of tries, first included (default 3).
	MaxAttempts int
	// BaseDelay is the backoff ceiling after the first failure; the ceiling
	// doubles each further failure (default 25ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff ceiling — and any server-sent Retry-After —
	// so one slow shard cannot park a request forever (default 1s).
	MaxDelay time.Duration
	// Seed feeds the jitter hash. Same seed + same request key → same
	// schedule, replayable like a fault plan.
	Seed int64
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = 25 * time.Millisecond
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = time.Second
	}
	return p
}

// Validate rejects nonsensical policies.
func (p Policy) Validate() error {
	if p.MaxAttempts < 0 {
		return fmt.Errorf("client: MaxAttempts %d is negative", p.MaxAttempts)
	}
	if p.BaseDelay < 0 || p.MaxDelay < 0 {
		return fmt.Errorf("client: negative delay (base %v, max %v)", p.BaseDelay, p.MaxDelay)
	}
	return nil
}

// mix64 is the splitmix64 finalizer (see internal/faults): a bijective
// avalanche mixer used as a counter-based PRNG over decision coordinates.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Key hashes an arbitrary string (typically the request URL) into a jitter
// key.
func Key(s string) uint64 {
	// FNV-1a, then mixed: cheap, stable, and well-spread after mix64.
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return mix64(h)
}

// Delay returns the full-jitter backoff before retry number attempt
// (attempt 1 = after the first failure): uniform in [0, min(MaxDelay,
// BaseDelay·2^(attempt-1))), deterministic in (Seed, key, attempt).
func (p Policy) Delay(key uint64, attempt int) time.Duration {
	p = p.withDefaults()
	if attempt < 1 {
		attempt = 1
	}
	ceil := p.BaseDelay
	for i := 1; i < attempt && ceil < p.MaxDelay; i++ {
		ceil *= 2
	}
	if ceil > p.MaxDelay {
		ceil = p.MaxDelay
	}
	h := mix64(uint64(p.Seed))
	h = mix64(h ^ key)
	h = mix64(h ^ uint64(attempt))
	u := float64(h>>11) / (1 << 53)
	return time.Duration(u * float64(ceil))
}

// Client retries POSTs against transient failures: transport errors and
// 429/502/503/504 responses. Other statuses — including request-level 4xx and
// numerical 422s — are returned to the caller untouched after the first try.
type Client struct {
	// HTTP is the underlying client (default http.DefaultClient). Per-attempt
	// deadlines come from the caller's context.
	HTTP *http.Client
	// Policy is the retry schedule.
	Policy Policy
}

// retryable reports whether a response status is worth another attempt.
func retryable(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// retryAfter extracts a server-sent Retry-After delay (seconds form) from a
// response, if any.
func retryAfter(resp *http.Response) (time.Duration, bool) {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d, true
		}
		return 0, true
	}
	return 0, false
}

// Do POSTs body to url, replaying it on each retry, and returns the final
// response with its body open (the caller closes it). A response the policy
// exhausted retries on is still returned — the caller sees the last status.
// Server-sent Retry-After delays are honored, capped at the policy's
// MaxDelay.
func (c *Client) Do(ctx context.Context, url, contentType string, body []byte) (*http.Response, error) {
	pol := c.Policy.withDefaults()
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	key := Key(url)
	var lastErr error
	for attempt := 1; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", contentType)
		resp, err := hc.Do(req)
		if err == nil && !retryable(resp.StatusCode) {
			return resp, nil
		}
		wait := pol.Delay(key, attempt)
		if err != nil {
			lastErr = err
		} else {
			if ra, ok := retryAfter(resp); ok {
				wait = ra
				if wait > pol.MaxDelay {
					wait = pol.MaxDelay
				}
			}
			if attempt >= pol.MaxAttempts {
				return resp, nil // last word: the retryable status itself
			}
			// Drain so the connection can be reused, then retry.
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			lastErr = fmt.Errorf("client: %s returned %d", url, resp.StatusCode)
		}
		if err != nil && attempt >= pol.MaxAttempts {
			return nil, fmt.Errorf("client: %d attempts exhausted: %w", attempt, lastErr)
		}
		t := time.NewTimer(wait)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		}
	}
}

// Get issues a plain GET with no retries (probes bring their own cadence).
func (c *Client) Get(ctx context.Context, url string) (*http.Response, error) {
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return hc.Do(req)
}

// ReadBody fully reads and closes a response body, capped at limit bytes.
func ReadBody(resp *http.Response, limit int64) ([]byte, error) {
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, limit))
	if err != nil && !errors.Is(err, io.EOF) {
		return nil, err
	}
	return b, nil
}
