package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// The backoff schedule is a pure function of (Seed, key, attempt): full
// jitter inside a doubling, capped ceiling.
func TestPolicyDelayDeterministic(t *testing.T) {
	p := Policy{MaxAttempts: 5, BaseDelay: 100 * time.Millisecond, MaxDelay: 400 * time.Millisecond, Seed: 42}
	key := Key("http://node-0/v1/solve")

	var first []time.Duration
	for attempt := 1; attempt <= 5; attempt++ {
		first = append(first, p.Delay(key, attempt))
	}
	for attempt := 1; attempt <= 5; attempt++ {
		if d := p.Delay(key, attempt); d != first[attempt-1] {
			t.Fatalf("attempt %d: delay %v then %v — schedule not deterministic", attempt, first[attempt-1], d)
		}
	}
	// Bounds: attempt k draws from [0, min(MaxDelay, Base·2^(k-1))).
	ceil := []time.Duration{100, 200, 400, 400, 400}
	for i, d := range first {
		if d < 0 || d >= ceil[i]*time.Millisecond {
			t.Fatalf("attempt %d delay %v outside [0, %v)", i+1, d, ceil[i]*time.Millisecond)
		}
	}
	// A different seed or key gives a different schedule (full jitter, not a
	// fixed ladder).
	p2 := p
	p2.Seed = 43
	same := 0
	for attempt := 1; attempt <= 5; attempt++ {
		if p2.Delay(key, attempt) == first[attempt-1] {
			same++
		}
	}
	if same == 5 {
		t.Fatal("changing the seed left the whole schedule unchanged")
	}
}

// Transient statuses are retried until success; the handler's Retry-After is
// honored.
func TestClientRetriesTransient(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()

	c := &Client{Policy: Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Seed: 7}}
	resp, err := c.Do(context.Background(), ts.URL, "application/json", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d after retries, want 200", resp.StatusCode)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("%d calls, want 3 (two 503s then success)", got)
	}
}

// Non-retryable statuses come back on the first try; exhausted retryable
// statuses come back as the final response.
func TestClientTerminalStatuses(t *testing.T) {
	var calls atomic.Int64
	status := atomic.Int64{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(int(status.Load()))
	}))
	defer ts.Close()
	c := &Client{Policy: Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}}

	status.Store(http.StatusUnprocessableEntity)
	resp, err := c.Do(context.Background(), ts.URL, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity || calls.Load() != 1 {
		t.Fatalf("422: status %d after %d calls, want 422 after 1", resp.StatusCode, calls.Load())
	}

	calls.Store(0)
	status.Store(http.StatusServiceUnavailable)
	resp, err = c.Do(context.Background(), ts.URL, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("exhausted retries returned status %d, want the last 503", resp.StatusCode)
	}
	if calls.Load() != 3 {
		t.Fatalf("%d calls, want MaxAttempts=3", calls.Load())
	}
}

// A cancelled context aborts the backoff sleep promptly.
func TestClientContextCancel(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c := &Client{Policy: Policy{MaxAttempts: 10, BaseDelay: time.Hour, MaxDelay: time.Hour}}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err := c.Do(ctx, ts.URL, "application/json", nil)
	if err == nil {
		t.Fatal("expected context error")
	}
	if time.Since(t0) > 5*time.Second {
		t.Fatalf("cancellation took %v", time.Since(t0))
	}
}
