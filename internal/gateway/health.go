package gateway

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pastix-go/pastix/internal/service"
)

// breakerState is the three-state circuit breaker per backend.
type breakerState int32

const (
	// breakerClosed: traffic flows; consecutive failures are counted.
	breakerClosed breakerState = iota
	// breakerOpen: the backend is presumed down; no traffic until the
	// cooldown expires.
	breakerOpen
	// breakerHalfOpen: the cooldown expired; one trial request probes the
	// backend. Success closes the breaker, failure re-opens it.
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// backendHealth is the gateway's model of one pastix-serve node, fed by two
// signal paths: active /readyz probes on a timer, and passive per-request
// outcomes (transport errors, 5xx, latency). Both drive the same breaker.
type backendHealth struct {
	id       int
	url      string
	inflight atomic.Int64 // gateway-side requests outstanding (bounded-load signal)

	mu          sync.Mutex
	state       breakerState
	fails       int       // consecutive failures while closed
	openedUntil time.Time // when an open breaker may try half-open
	trial       bool      // a half-open trial request is outstanding
	probeOK     bool      // last active probe reached the node
	draining    bool      // node reported draining on /readyz
	recovering  bool      // node reported journal replay in progress on /readyz
	instance    string    // node-reported process instance (restart detector)
	queueDepth  int       // node-reported admission queue depth
	lastErr     string
	ewmaMS      float64 // request latency EWMA (alpha 0.3), observability only
}

// instanceNow returns the last probed process instance ("" before the first
// successful probe).
func (b *backendHealth) instanceNow() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.instance
}

// allow reports whether the breaker admits a request now. In half-open only
// one trial request is admitted at a time; its outcome decides the state.
func (b *backendHealth) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Before(b.openedUntil) {
			return false
		}
		b.state = breakerHalfOpen
		b.trial = true
		return true
	default: // half-open
		if b.trial {
			return false
		}
		b.trial = true
		return true
	}
}

// onSuccess records a request (or probe) that reached the node: resets the
// failure streak and closes a half-open breaker.
func (b *backendHealth) onSuccess(latency time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.trial = false
	b.state = breakerClosed
	b.lastErr = ""
	if latency > 0 {
		ms := float64(latency) / float64(time.Millisecond)
		if b.ewmaMS == 0 {
			b.ewmaMS = ms
		} else {
			b.ewmaMS = 0.7*b.ewmaMS + 0.3*ms
		}
	}
}

// onFailure records a transport-level or 5xx outcome. threshold consecutive
// failures open the breaker for cooldown; a failed half-open trial re-opens
// immediately.
func (b *backendHealth) onFailure(errMsg string, threshold int, cooldown time.Duration, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lastErr = errMsg
	if b.state == breakerHalfOpen {
		b.trial = false
		b.state = breakerOpen
		b.openedUntil = now.Add(cooldown)
		return
	}
	b.fails++
	if b.fails >= threshold {
		b.state = breakerOpen
		b.openedUntil = now.Add(cooldown)
	}
}

// routable reports whether the health model would send ordinary traffic
// here: breaker not open (without consuming a half-open trial slot), last
// probe fine, not draining.
func (b *backendHealth) routable(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if now.Before(b.openedUntil) {
			return false
		}
	case breakerHalfOpen:
		if b.trial {
			return false
		}
	}
	return b.probeOK && !b.draining && !b.recovering
}

// BackendStatus is the externally visible health snapshot of one backend
// (gateway /healthz).
type BackendStatus struct {
	ID         int     `json:"id"`
	URL        string  `json:"url"`
	Breaker    string  `json:"breaker"`
	ProbeOK    bool    `json:"probe_ok"`
	Draining   bool    `json:"draining"`
	Recovering bool    `json:"recovering,omitempty"`
	Instance   string  `json:"instance,omitempty"`
	Routable   bool    `json:"routable"`
	InFlight   int64   `json:"in_flight"`
	QueueDepth int     `json:"queue_depth"`
	LatencyMS  float64 `json:"latency_ewma_ms"`
	LastError  string  `json:"last_error,omitempty"`
}

func (b *backendHealth) status(now time.Time) BackendStatus {
	routable := b.routable(now)
	b.mu.Lock()
	defer b.mu.Unlock()
	return BackendStatus{
		ID: b.id, URL: b.url,
		Breaker: b.state.String(), ProbeOK: b.probeOK, Draining: b.draining,
		Recovering: b.recovering, Instance: b.instance,
		Routable: routable, InFlight: b.inflight.Load(), QueueDepth: b.queueDepth,
		LatencyMS: b.ewmaMS, LastError: b.lastErr,
	}
}

// probe runs one active /readyz round against b and folds the result into
// the model: 200 → healthy; 503/"draining" → alive but unroutable (no
// breaker penalty — draining is deliberate); transport error → breaker
// failure, exactly like a failed request.
func (g *Gateway) probe(ctx context.Context, b *backendHealth) {
	pctx, cancel := context.WithTimeout(ctx, g.cfg.ProbeTimeout)
	defer cancel()
	resp, err := g.hc.Get(pctx, b.url+"/readyz")
	now := time.Now()
	if err != nil {
		b.mu.Lock()
		b.probeOK = false
		b.mu.Unlock()
		b.onFailure("probe: "+err.Error(), g.cfg.BreakerThreshold, g.cfg.BreakerCooldown, now)
		return
	}
	defer resp.Body.Close()
	var st service.ReadyState
	decodeErr := json.NewDecoder(resp.Body).Decode(&st)
	switch {
	case resp.StatusCode == http.StatusOK && decodeErr == nil:
		b.mu.Lock()
		b.probeOK = true
		b.draining = false
		b.recovering = false
		if st.Instance != "" {
			b.instance = st.Instance
		}
		b.queueDepth = st.QueueDepth
		b.mu.Unlock()
		b.onSuccess(0)
	case resp.StatusCode == http.StatusServiceUnavailable && decodeErr == nil && st.Recovering:
		// The process is up but replaying its journal: alive, not routable.
		// Not a fault — recovery ends on its own.
		b.mu.Lock()
		b.probeOK = true
		b.draining = false
		b.recovering = true
		if st.Instance != "" {
			b.instance = st.Instance
		}
		b.queueDepth = st.QueueDepth
		b.mu.Unlock()
		b.onSuccess(0)
	case resp.StatusCode == http.StatusServiceUnavailable && decodeErr == nil && st.Draining:
		b.mu.Lock()
		b.probeOK = true
		b.draining = true
		b.recovering = false
		if st.Instance != "" {
			b.instance = st.Instance
		}
		b.queueDepth = st.QueueDepth
		b.mu.Unlock()
		b.onSuccess(0) // the process answered; draining is not a fault
	default:
		b.mu.Lock()
		b.probeOK = false
		b.mu.Unlock()
		b.onFailure("probe: unexpected readyz response", g.cfg.BreakerThreshold, g.cfg.BreakerCooldown, now)
	}
}

// prober loops active probes over all backends until ctx ends. After each
// round it wakes requests parked in awaitShard if any backend flipped from
// unroutable to routable — the only event that can unblock them.
func (g *Gateway) prober(ctx context.Context) {
	defer g.wg.Done()
	tick := time.NewTicker(g.cfg.ProbeInterval)
	defer tick.Stop()
	probeRound := func() {
		now := time.Now()
		woke := false
		for _, b := range g.backends {
			before := b.routable(now)
			g.probe(ctx, b)
			if !before && b.routable(time.Now()) {
				woke = true
			}
		}
		if woke {
			g.wakeParked()
		}
	}
	probeRound()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			probeRound()
		}
	}
}
