package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"github.com/pastix-go/pastix/internal/gen"
)

// repairConfig speeds the probe and repair cadences up for tests.
func repairConfig(cfg *Config) {
	cfg.RepairInterval = 20 * time.Millisecond
}

func gatewayHealthz(t *testing.T, url string) (minRepl, under int) {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz struct {
		MinReplication  int `json:"min_replication"`
		UnderReplicated int `json:"under_replicated"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	return hz.MinReplication, hz.UnderReplicated
}

// liveReplicas counts the handle's replicas sitting on currently routable
// backends.
func liveReplicas(g *Gateway, handle string) int {
	e, ok := g.handles.get(handle)
	if !ok {
		return -1
	}
	now := time.Now()
	live := 0
	for _, rep := range e.replicas {
		if g.backends[rep.Backend].routable(now) {
			live++
		}
	}
	return live
}

// A restarted (store-losing) replica node erodes replication; the repair
// loop must detect the lost copy via the instance change, drop it, and
// re-replicate onto a surviving node by factor transfer — after which a
// solve succeeds bitwise even with the other original replica dead.
func TestAntiEntropyRestoresReplication(t *testing.T) {
	nodes := []*node{startNode(t, svcConfig()), startNode(t, svcConfig()), startNode(t, svcConfig())}
	g, ts := startGateway(t, nodes, repairConfig)
	waitRoutable(t, g, 3)

	a, mm := testMatrix(t)
	_, b := gen.RHSForSolution(a)
	want := referenceSolve(t, a, b)

	st, fr := postJSON(t, ts.URL+"/v1/factorize", map[string]any{"matrix_market": mm})
	if st != http.StatusOK {
		t.Fatalf("factorize status %d: %v", st, fr)
	}
	handle := field[string](t, fr, "handle")
	e, ok := g.handles.get(handle)
	if !ok || len(e.replicas) != 2 {
		t.Fatalf("gateway handle %q has %d replicas, want 2", handle, len(e.replicas))
	}
	victim := e.replicas[0].Backend
	survivor := e.replicas[1].Backend

	// The victim restarts without a data dir: new instance, empty store.
	nodes[victim].restart()

	waitFor(t, 10*time.Second, "replication repaired to 2", func() bool {
		return liveReplicas(g, handle) >= 2 && g.Stats().Repairs >= 1
	})
	if g.Stats().ReplicasDropped == 0 {
		t.Fatal("repair never dropped the verifiably lost replica")
	}
	if minRepl, under := gatewayHealthz(t, ts.URL); minRepl != 2 || under != 0 {
		t.Fatalf("healthz reports min_replication %d under_replicated %d after repair, want 2/0", minRepl, under)
	}

	// The repaired copy must carry the same bits: kill the surviving original
	// replica so only the repaired one can serve.
	nodes[survivor].down.Store(true)
	waitRoutable(t, g, 2)
	st, sr := postJSON(t, ts.URL+"/v1/solve", map[string]any{"handle": handle, "b": b})
	if st != http.StatusOK {
		t.Fatalf("solve after repair status %d: %v", st, sr)
	}
	bitIdentical(t, field[[]float64](t, sr, "x"), want, "solve served by repaired replica")
}

// With factor export disabled fleet-wide, the repair loop falls back to
// re-factorizing from the original request body — deterministic
// factorization makes the rebuilt replica bitwise-identical.
func TestAntiEntropyRefactorizeFallback(t *testing.T) {
	var nodes []*node
	for i := 0; i < 3; i++ {
		cfg := svcConfig()
		cfg.NoFactorExport = true
		nodes = append(nodes, startNode(t, cfg))
	}
	g, ts := startGateway(t, nodes, repairConfig)
	waitRoutable(t, g, 3)

	a, mm := testMatrix(t)
	_, b := gen.RHSForSolution(a)
	want := referenceSolve(t, a, b)

	st, fr := postJSON(t, ts.URL+"/v1/factorize", map[string]any{"matrix_market": mm})
	if st != http.StatusOK {
		t.Fatalf("factorize status %d: %v", st, fr)
	}
	handle := field[string](t, fr, "handle")
	e, _ := g.handles.get(handle)
	victim := e.replicas[0].Backend
	survivor := e.replicas[1].Backend
	nodes[victim].restart()

	waitFor(t, 10*time.Second, "refactorize repair", func() bool {
		return liveReplicas(g, handle) >= 2 && g.Stats().Refactorizes >= 1
	})

	nodes[survivor].down.Store(true)
	waitRoutable(t, g, 2)
	st, sr := postJSON(t, ts.URL+"/v1/solve", map[string]any{"handle": handle, "b": b})
	if st != http.StatusOK {
		t.Fatalf("solve after refactorize repair status %d: %v", st, sr)
	}
	bitIdentical(t, field[[]float64](t, sr, "x"), want, "solve served by re-factorized replica")
}

// A durable node that restarts replays its journal: the repair loop's stat
// check finds the handle intact and adopts the new instance instead of
// dropping and rebuilding the replica.
func TestAntiEntropyDurableRestartKeepsReplica(t *testing.T) {
	var nodes []*node
	for i := 0; i < 2; i++ {
		cfg := svcConfig()
		cfg.DataDir = t.TempDir()
		nodes = append(nodes, startNode(t, cfg))
	}
	g, ts := startGateway(t, nodes, repairConfig)
	waitRoutable(t, g, 2)

	a, mm := testMatrix(t)
	_, b := gen.RHSForSolution(a)
	want := referenceSolve(t, a, b)

	st, fr := postJSON(t, ts.URL+"/v1/factorize", map[string]any{"matrix_market": mm})
	if st != http.StatusOK {
		t.Fatalf("factorize status %d: %v", st, fr)
	}
	handle := field[string](t, fr, "handle")
	e, _ := g.handles.get(handle)
	victim := e.replicas[0].Backend
	oldInst := e.replicas[0].Inst
	if oldInst == "" {
		t.Fatal("replica recorded no process instance")
	}
	nodes[victim].restart()

	// Wait for the probe to see the new instance and a repair pass to verify.
	waitFor(t, 10*time.Second, "instance re-verified after durable restart", func() bool {
		e, ok := g.handles.get(handle)
		if !ok {
			return false
		}
		for _, rep := range e.replicas {
			if rep.Backend == victim && rep.Inst != "" && rep.Inst != oldInst {
				return true
			}
		}
		return false
	})
	if s := g.Stats(); s.ReplicasDropped != 0 || s.Refactorizes != 0 {
		t.Fatalf("durable restart triggered repair work: %+v", s)
	}

	// The replayed replica serves: kill the other node.
	other := e.replicas[1].Backend
	nodes[other].down.Store(true)
	waitRoutable(t, g, 1)
	st, sr := postJSON(t, ts.URL+"/v1/solve", map[string]any{"handle": handle, "b": b})
	if st != http.StatusOK {
		t.Fatalf("solve after durable restart status %d: %v", st, sr)
	}
	bitIdentical(t, field[[]float64](t, sr, "x"), want, "solve served by replayed replica")
}

// A factorize parked for a dead shard wakes promptly when a backend flips
// back to routable — the prober's wakeup broadcast, not a poll, unparks it.
func TestAwaitShardWakeup(t *testing.T) {
	n := startNode(t, svcConfig())
	g, ts := startGateway(t, []*node{n}, func(cfg *Config) {
		repairConfig(cfg)
		cfg.QueueWait = 20 * time.Second
	})
	waitRoutable(t, g, 1)
	n.down.Store(true)
	waitRoutable(t, g, 0)

	_, mm := testMatrix(t)
	type result struct {
		st  int
		fr  map[string]json.RawMessage
		err error
		dur time.Duration
	}
	done := make(chan result, 1)
	t0 := time.Now()
	go func() {
		st, fr, err := postRawJSON(ts.URL+"/v1/factorize", map[string]any{"matrix_market": mm})
		done <- result{st, fr, err, time.Since(t0)}
	}()
	waitFor(t, 5*time.Second, "factorize parked", func() bool {
		return g.Stats().Queued >= 1
	})
	n.down.Store(false)

	select {
	case res := <-done:
		if res.err != nil {
			t.Fatalf("parked factorize: %v", res.err)
		}
		if res.st != http.StatusOK {
			t.Fatalf("parked factorize status %d: %v", res.st, res.fr)
		}
		if res.dur >= g.cfg.QueueWait {
			t.Fatalf("parked factorize took %v, at or beyond the %v queue wait", res.dur, g.cfg.QueueWait)
		}
	case <-time.After(15 * time.Second):
		t.Fatal(fmt.Sprintf("parked factorize still blocked 15s after the backend returned (queue wait %v)", g.cfg.QueueWait))
	}
}
