// Package gateway is the sharded HA front door for a fleet of pastix-serve
// nodes. It routes /v1/* traffic by consistent-hashing the matrix pattern
// fingerprint — routing is a pure function of the request, the way the
// paper's static block mapping is a pure function of the analysis — with a
// bounded-load escape hatch so one hot pattern cannot melt its shard,
// factor-handle affinity (a solve routes to the node that made the factor),
// R-way replication of factorize requests so a replica can serve solves
// after the primary dies, and a per-backend health model (active /readyz
// probes plus passive request outcomes) driving a closed/open/half-open
// circuit breaker.
//
// Failed or timed-out requests retry against the next replica with capped
// exponential backoff and full jitter (internal/gateway/client); an
// idempotency key makes factorize retries safe on the nodes; an optional
// hedging delay duplicates a slow solve onto the next replica for tail
// latency. When every replica of a shard is down the gateway degrades
// gracefully: factorize requests wait in a bounded queue for the shard to
// come back, everything else gets a structured 503 with a retry_after hint.
package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pastix-go/pastix"
	"github.com/pastix-go/pastix/internal/gateway/client"
)

// ErrBadGatewayConfig reports an invalid Config; match with errors.Is.
var ErrBadGatewayConfig = errors.New("gateway: invalid config")

// Config configures a Gateway. Zero fields take the documented defaults.
type Config struct {
	// Backends are the pastix-serve base URLs (e.g. "http://10.0.0.1:8416").
	Backends []string
	// Replicas is R: how many backends receive each factorize (default 2,
	// capped at len(Backends)). R-1 node deaths leave every factor solvable.
	Replicas int
	// VNodes is the virtual nodes per backend on the hash ring (default 64).
	VNodes int
	// LoadFactor is the bounded-load expansion factor c ≥ 1 (default 1.5):
	// no backend is chosen as primary while it carries more than
	// ceil(c·(m+1)/n) of the m in-flight requests.
	LoadFactor float64
	// ProbeInterval is the active /readyz probe cadence (default 250ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round trip (default 1s).
	ProbeTimeout time.Duration
	// AttemptTimeout bounds one forwarded attempt against one backend
	// (default 15s). The request's own deadline still applies on top.
	AttemptTimeout time.Duration
	// HedgeDelay, when positive, duplicates a solve onto the next replica if
	// the primary has not answered within it; the first answer wins
	// (default 0 = disabled).
	HedgeDelay time.Duration
	// Retry is the backoff policy for per-backend retries and the
	// cross-replica failover delays.
	Retry client.Policy
	// BreakerThreshold consecutive failures open a backend's breaker
	// (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects before probing
	// half-open (default 500ms).
	BreakerCooldown time.Duration
	// QueueDepth bounds the factorize requests parked while their shard has
	// no live replica (default 16); beyond it they 503 immediately.
	QueueDepth int
	// QueueWait bounds how long a parked factorize waits for the shard to
	// come back (default 2s).
	QueueWait time.Duration
	// RetryAfter is the hint sent with degraded 503s (default 1s).
	RetryAfter time.Duration
	// RepairInterval is the anti-entropy repair cadence (default 250ms):
	// every interval the gateway checks each handle's replica set against the
	// backend health model and re-replicates under-replicated factors onto
	// surviving nodes. Negative disables the repair loop.
	RepairInterval time.Duration
	// MaxBodyBytes caps request bodies at the gateway (default 64 MiB).
	MaxBodyBytes int64
	// Seed feeds the ring placement and the retry jitter.
	Seed int64
}

// Validate checks the configuration; errors match ErrBadGatewayConfig.
func (c Config) Validate() error {
	if len(c.Backends) == 0 {
		return fmt.Errorf("%w: no backends", ErrBadGatewayConfig)
	}
	for _, u := range c.Backends {
		if u == "" {
			return fmt.Errorf("%w: empty backend URL", ErrBadGatewayConfig)
		}
	}
	if c.Replicas < 0 || c.VNodes < 0 || c.QueueDepth < 0 {
		return fmt.Errorf("%w: negative size (replicas %d, vnodes %d, queue %d)",
			ErrBadGatewayConfig, c.Replicas, c.VNodes, c.QueueDepth)
	}
	if c.LoadFactor != 0 && c.LoadFactor < 1 {
		return fmt.Errorf("%w: LoadFactor %v below 1", ErrBadGatewayConfig, c.LoadFactor)
	}
	for _, d := range []time.Duration{c.ProbeInterval, c.ProbeTimeout, c.AttemptTimeout,
		c.HedgeDelay, c.BreakerCooldown, c.QueueWait, c.RetryAfter} {
		if d < 0 {
			return fmt.Errorf("%w: negative duration", ErrBadGatewayConfig)
		}
	}
	if c.BreakerThreshold < 0 || c.MaxBodyBytes < 0 {
		return fmt.Errorf("%w: negative threshold or body cap", ErrBadGatewayConfig)
	}
	if err := c.Retry.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadGatewayConfig, err)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.Replicas == 0 {
		c.Replicas = 2
	}
	if c.Replicas > len(c.Backends) {
		c.Replicas = len(c.Backends)
	}
	if c.VNodes == 0 {
		c.VNodes = 64
	}
	if c.LoadFactor == 0 {
		c.LoadFactor = 1.5
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.ProbeTimeout == 0 {
		c.ProbeTimeout = time.Second
	}
	if c.AttemptTimeout == 0 {
		c.AttemptTimeout = 15 * time.Second
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = 500 * time.Millisecond
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 16
	}
	if c.QueueWait == 0 {
		c.QueueWait = 2 * time.Second
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = time.Second
	}
	if c.RepairInterval == 0 {
		c.RepairInterval = 250 * time.Millisecond
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.Retry.Seed == 0 {
		c.Retry.Seed = c.Seed
	}
	return c
}

// Stats are the gateway's cumulative routing counters.
type Stats struct {
	Requests    int64 `json:"requests"`
	Retries     int64 `json:"retries"`   // extra attempts launched after a failed one
	Failovers   int64 `json:"failovers"` // requests ultimately served by a non-primary replica
	Hedges      int64 `json:"hedges"`    // hedged duplicates launched by the tail-latency timer
	Queued      int64 `json:"queued"`    // factorizes parked for a dead shard
	Unavailable int64 `json:"unavailable"`
	StaleRoutes int64 `json:"stale_routes"` // 404s from restarted nodes, failed over

	Repairs         int64 `json:"repairs"`          // handles re-replicated by anti-entropy
	ReplicasDropped int64 `json:"replicas_dropped"` // replica refs dropped as verifiably lost
	Refactorizes    int64 `json:"refactorizes"`     // repairs that fell back to re-factorizing
}

// Gateway is the HTTP front door. Create with New, mount Handler, Close when
// done.
type Gateway struct {
	cfg      Config
	ring     *ring
	backends []*backendHealth
	hc       *client.Client
	handles  *handleTable

	queueSlots chan struct{}
	cancel     context.CancelFunc
	wg         sync.WaitGroup
	start      time.Time
	idemSeq    atomic.Uint64

	// parkCh is the wakeup broadcast for factorizes parked in awaitShard:
	// closed and replaced whenever a backend flips back to routable.
	parkMu sync.Mutex
	parkCh chan struct{}

	requests, retries, failovers, hedges   atomic.Int64
	queued, unavailable, staleRoutes       atomic.Int64
	repairs, replicasDropped, refactorizes atomic.Int64
}

// New validates cfg, starts the active prober and returns a ready Gateway.
func New(cfg Config) (*Gateway, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	g := &Gateway{
		cfg:        cfg,
		ring:       newRing(len(cfg.Backends), cfg.VNodes, cfg.Seed),
		hc:         &client.Client{Policy: cfg.Retry},
		handles:    newHandleTable(),
		queueSlots: make(chan struct{}, cfg.QueueDepth),
		start:      time.Now(),
		parkCh:     make(chan struct{}),
	}
	for i, u := range cfg.Backends {
		g.backends = append(g.backends, &backendHealth{id: i, url: strings.TrimRight(u, "/")})
	}
	ctx, cancel := context.WithCancel(context.Background())
	g.cancel = cancel
	g.wg.Add(1)
	go g.prober(ctx)
	if cfg.RepairInterval > 0 {
		g.wg.Add(1)
		go g.repairLoop(ctx)
	}
	return g, nil
}

// Close stops the prober.
func (g *Gateway) Close() {
	g.cancel()
	g.wg.Wait()
}

// Stats returns the routing counters.
func (g *Gateway) Stats() Stats {
	return Stats{
		Requests: g.requests.Load(), Retries: g.retries.Load(),
		Failovers: g.failovers.Load(), Hedges: g.hedges.Load(),
		Queued: g.queued.Load(), Unavailable: g.unavailable.Load(),
		StaleRoutes: g.staleRoutes.Load(),
		Repairs:     g.repairs.Load(), ReplicasDropped: g.replicasDropped.Load(),
		Refactorizes: g.refactorizes.Load(),
	}
}

// Handler returns the HTTP surface: the /v1/* verbs of pastix-serve, routed,
// plus the gateway's own /healthz.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", g.handleAnalyze)
	mux.HandleFunc("POST /v1/factorize", g.handleFactorize)
	mux.HandleFunc("POST /v1/solve", g.handleSolve)
	mux.HandleFunc("POST /v1/release", g.handleRelease)
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	return mux
}

// --- error shape ---

// gwError is the gateway's structured error body (PROTOCOL.md addendum).
type gwError struct {
	Error string `json:"error"`
	// Code: "no_backend" (shard has no live replica), "shard_unavailable"
	// (degraded queue full or wait expired), "unknown_handle", "bad_request",
	// "body_too_large".
	Code string `json:"code,omitempty"`
	// RetryAfterMS hints when to retry a 503.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

func (g *Gateway) writeErr(w http.ResponseWriter, status int, code, msg string) {
	e := gwError{Error: msg, Code: code}
	if status == http.StatusServiceUnavailable {
		e.RetryAfterMS = g.cfg.RetryAfter.Milliseconds()
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(g.cfg.RetryAfter.Seconds()+0.999)))
		g.unavailable.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(e)
}

// relay copies a backend response through verbatim.
func relay(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// readBody reads a capped request body.
func (g *Gateway) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			g.writeErr(w, http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Sprintf("request body exceeds %d bytes", mbe.Limit))
		} else {
			g.writeErr(w, http.StatusBadRequest, "bad_request", "read body: "+err.Error())
		}
		return nil, false
	}
	return body, true
}

// --- attempts ---

// attemptResult is one forwarded try against one backend.
type attemptResult struct {
	backend *backendHealth
	status  int
	body    []byte
	err     error // transport-level failure
}

// failover reports whether the attempt should move on to another replica:
// transport errors, node-level 5xx/429, and stale-handle 404s (a restarted
// node lost its stores; the gateway knows the handle is real).
func (a *attemptResult) failover() bool {
	if a.err != nil {
		return true
	}
	switch a.status {
	case http.StatusNotFound, http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout, http.StatusInternalServerError:
		return true
	}
	return false
}

// attemptOnce forwards body to one backend with a single try (no client-level
// retries) and folds the outcome into the health model.
func (g *Gateway) attemptOnce(ctx context.Context, b *backendHealth, path string, body []byte) *attemptResult {
	actx, cancel := context.WithTimeout(ctx, g.cfg.AttemptTimeout)
	defer cancel()
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	t0 := time.Now()
	one := &client.Client{HTTP: g.hc.HTTP, Policy: client.Policy{MaxAttempts: 1, Seed: g.cfg.Retry.Seed}}
	resp, err := one.Do(actx, b.url+path, "application/json", body)
	now := time.Now()
	if err != nil {
		b.onFailure(err.Error(), g.cfg.BreakerThreshold, g.cfg.BreakerCooldown, now)
		return &attemptResult{backend: b, err: err}
	}
	rb, rerr := client.ReadBody(resp, g.cfg.MaxBodyBytes)
	if rerr != nil {
		b.onFailure(rerr.Error(), g.cfg.BreakerThreshold, g.cfg.BreakerCooldown, now)
		return &attemptResult{backend: b, err: rerr}
	}
	res := &attemptResult{backend: b, status: resp.StatusCode, body: rb}
	switch {
	case resp.StatusCode >= 500:
		b.onFailure(fmt.Sprintf("status %d", resp.StatusCode), g.cfg.BreakerThreshold, g.cfg.BreakerCooldown, now)
	case resp.StatusCode == http.StatusTooManyRequests:
		// Load shedding is not a node fault; don't open the breaker.
	default:
		b.onSuccess(now.Sub(t0))
	}
	return res
}

// candidates returns the backends that would take traffic for key right now,
// in ring preference order, with the bounded-load rule applied to the
// primary slot: if the ring-preferred head is over capacity and some other
// routable candidate is under it, that one leads instead.
func (g *Gateway) candidates(key string) []*backendHealth {
	now := time.Now()
	var out []*backendHealth
	for _, id := range g.ring.order(key) {
		if b := g.backends[id]; b.routable(now) {
			out = append(out, b)
		}
	}
	if len(out) < 2 {
		return out
	}
	var total int64
	for _, b := range g.backends {
		total += b.inflight.Load()
	}
	cap := capacity(g.cfg.LoadFactor, total, len(g.backends))
	if out[0].inflight.Load() < cap {
		return out
	}
	for i := 1; i < len(out); i++ {
		if out[i].inflight.Load() < cap {
			// Spill the hot head: promote the first under-capacity candidate.
			lead := out[i]
			copy(out[1:i+1], out[0:i])
			out[0] = lead
			return out
		}
	}
	return out
}

// anyAllowed returns breaker-admitted backends in ring order for key,
// ignoring probe state — the last resort when nothing is routable, so a
// half-open breaker can discover a recovered node via real traffic.
func (g *Gateway) anyAllowed(key string) []*backendHealth {
	now := time.Now()
	var out []*backendHealth
	for _, id := range g.ring.order(key) {
		if b := g.backends[id]; b.allow(now) {
			out = append(out, b)
		}
	}
	return out
}

// forwardFailover tries cands in order with jittered backoff between
// attempts, returning the first non-failover result (or the last result).
func (g *Gateway) forwardFailover(ctx context.Context, cands []*backendHealth, path string, body []byte) *attemptResult {
	key := client.Key(path)
	var last *attemptResult
	for i, b := range cands {
		if i > 0 {
			g.retries.Add(1)
			t := time.NewTimer(g.cfg.Retry.Delay(key, i))
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return &attemptResult{err: ctx.Err()}
			}
		}
		last = g.attemptOnce(ctx, b, path, body)
		if !last.failover() {
			if i > 0 {
				g.failovers.Add(1)
			}
			return last
		}
		if last.status == http.StatusNotFound {
			g.staleRoutes.Add(1)
		}
	}
	return last
}

// --- handlers ---

// fingerprintOf parses the embedded Matrix Market text and fingerprints its
// pattern — the shard key.
func fingerprintOf(raw map[string]json.RawMessage) (string, error) {
	var mm string
	if err := json.Unmarshal(raw["matrix_market"], &mm); err != nil {
		return "", fmt.Errorf("matrix_market: %w", err)
	}
	a, err := pastix.ReadMatrixMarket(strings.NewReader(mm))
	if err != nil {
		return "", fmt.Errorf("matrix_market: %w", err)
	}
	return pastix.PatternFingerprint(a), nil
}

func (g *Gateway) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	g.requests.Add(1)
	body, ok := g.readBody(w, r)
	if !ok {
		return
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(body, &raw); err != nil {
		g.writeErr(w, http.StatusBadRequest, "bad_request", "bad request body: "+err.Error())
		return
	}
	fp, err := fingerprintOf(raw)
	if err != nil {
		g.writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	cands := g.candidates(fp)
	if len(cands) == 0 {
		cands = g.anyAllowed(fp)
	}
	if len(cands) == 0 {
		g.writeErr(w, http.StatusServiceUnavailable, "no_backend", "no live backend for shard "+fp[:8])
		return
	}
	res := g.forwardFailover(r.Context(), cands, "/v1/analyze", body)
	if res.err != nil || res.failover() {
		g.writeErr(w, http.StatusServiceUnavailable, "shard_unavailable",
			fmt.Sprintf("analyze failed on all %d candidates for shard %s", len(cands), fp[:8]))
		return
	}
	relay(w, res.status, res.body)
}

func (g *Gateway) handleFactorize(w http.ResponseWriter, r *http.Request) {
	g.requests.Add(1)
	body, ok := g.readBody(w, r)
	if !ok {
		return
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(body, &raw); err != nil {
		g.writeErr(w, http.StatusBadRequest, "bad_request", "bad request body: "+err.Error())
		return
	}
	fp, err := fingerprintOf(raw)
	if err != nil {
		g.writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	// The idempotency key rides to every replica and every retry: a node
	// that already committed this factorize replays its response instead of
	// factoring twice.
	var idemKey string
	if k, ok := raw["idempotency_key"]; ok {
		_ = json.Unmarshal(k, &idemKey)
	}
	if idemKey == "" {
		idemKey = fmt.Sprintf("gw-%.8s-%d-%d", fp, time.Now().UnixNano(), g.idemSeq.Add(1))
		kb, _ := json.Marshal(idemKey)
		raw["idempotency_key"] = kb
		if body, err = json.Marshal(raw); err != nil {
			g.writeErr(w, http.StatusInternalServerError, "", err.Error())
			return
		}
	}

	cands := g.candidates(fp)
	if len(cands) == 0 {
		// Degraded mode: the shard has no live replica. Park in the bounded
		// queue and wait for one to come back rather than failing opaquely.
		var parked bool
		cands, parked = g.awaitShard(r.Context(), w, fp)
		if !parked {
			return // awaitShard wrote the 503
		}
	}

	// Replicate: walk the candidates until R have committed the factor (the
	// first success is the primary whose response the client sees). Failed
	// candidates are skipped — failover and replication are one walk.
	var (
		reps    []replicaRef
		primary *attemptResult
	)
	for _, b := range cands {
		if len(reps) >= g.cfg.Replicas {
			break
		}
		res := g.attemptOnce(r.Context(), b, "/v1/factorize", body)
		if res.failover() {
			g.retries.Add(1)
			if len(reps) == 0 && len(cands) > 1 {
				g.failovers.Add(1)
			}
			continue
		}
		if res.status != http.StatusOK {
			// Request-level verdict (422 not_spd, 400, 413): the matrix, not
			// the node, is at fault on every replica alike — relay it. If a
			// replica already committed, keep what we have instead.
			if len(reps) == 0 {
				relay(w, res.status, res.body)
				return
			}
			break
		}
		var fr struct {
			Handle string `json:"handle"`
		}
		if err := json.Unmarshal(res.body, &fr); err != nil || fr.Handle == "" {
			continue
		}
		reps = append(reps, replicaRef{Backend: b.id, Handle: fr.Handle, Inst: b.instanceNow()})
		if primary == nil {
			primary = res
		}
	}
	if primary == nil {
		g.writeErr(w, http.StatusServiceUnavailable, "shard_unavailable",
			fmt.Sprintf("factorize failed on all %d candidates for shard %s", len(cands), fp[:8]))
		return
	}
	gh := g.handles.put(fp, reps, body)

	// The client sees the gateway handle plus the replication achieved; the
	// rest of the primary's response (timings, solve plan, degraded-success
	// fields) passes through.
	var out map[string]json.RawMessage
	if err := json.Unmarshal(primary.body, &out); err != nil {
		g.writeErr(w, http.StatusInternalServerError, "", "bad backend response: "+err.Error())
		return
	}
	hb, _ := json.Marshal(gh)
	out["handle"] = hb
	rb, _ := json.Marshal(len(reps))
	out["replicas"] = rb
	pb, _ := json.Marshal(reps[0].Backend)
	out["primary_backend"] = pb
	kb, _ := json.Marshal(idemKey)
	out["idempotency_key"] = kb
	merged, _ := json.Marshal(out)
	relay(w, http.StatusOK, merged)
}

// awaitShard parks a factorize whose shard has no live replica in the
// bounded degraded queue until a candidate appears, the wait expires or the
// request dies. On failure it writes the 503 and returns parked=false.
func (g *Gateway) awaitShard(ctx context.Context, w http.ResponseWriter, fp string) ([]*backendHealth, bool) {
	select {
	case g.queueSlots <- struct{}{}:
	default:
		g.writeErr(w, http.StatusServiceUnavailable, "shard_unavailable",
			fmt.Sprintf("no live backend for shard %s and the wait queue is full", fp[:8]))
		return nil, false
	}
	defer func() { <-g.queueSlots }()
	g.queued.Add(1)
	deadline := time.NewTimer(g.cfg.QueueWait)
	defer deadline.Stop()
	for {
		// Grab the wakeup signal BEFORE re-checking candidates: a backend
		// recovering between the check and the wait closes this very channel,
		// so the wakeup cannot be missed. The prober broadcasts on every
		// unroutable→routable edge — no polling between edges.
		wake := g.parkSignal()
		if cands := g.candidates(fp); len(cands) > 0 {
			return cands, true
		}
		select {
		case <-wake:
		case <-deadline.C:
			g.writeErr(w, http.StatusServiceUnavailable, "shard_unavailable",
				fmt.Sprintf("no live backend for shard %s after waiting %v", fp[:8], g.cfg.QueueWait))
			return nil, false
		case <-ctx.Done():
			g.writeErr(w, http.StatusServiceUnavailable, "shard_unavailable", ctx.Err().Error())
			return nil, false
		}
	}
}

func (g *Gateway) handleSolve(w http.ResponseWriter, r *http.Request) {
	g.requests.Add(1)
	body, ok := g.readBody(w, r)
	if !ok {
		return
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(body, &raw); err != nil {
		g.writeErr(w, http.StatusBadRequest, "bad_request", "bad request body: "+err.Error())
		return
	}
	var handle string
	if err := json.Unmarshal(raw["handle"], &handle); err != nil {
		g.writeErr(w, http.StatusBadRequest, "bad_request", "handle: missing or not a string")
		return
	}
	gh, ok := g.handles.get(handle)
	if !ok {
		g.writeErr(w, http.StatusNotFound, "unknown_handle", fmt.Sprintf("unknown gateway handle %q", handle))
		return
	}

	// Factor-handle affinity: the replica set, primary first, skipping
	// unroutable nodes; when nothing is routable fall back to breaker-admitted
	// nodes so real traffic can rediscover a recovered backend.
	now := time.Now()
	mkBody := func(rep replicaRef) []byte {
		hb, _ := json.Marshal(rep.Handle)
		raw["handle"] = hb
		tb, _ := json.Marshal(raw)
		return tb
	}
	var targets []solveTarget
	for pass := 0; pass < 2 && len(targets) == 0; pass++ {
		for _, rep := range gh.replicas {
			b := g.backends[rep.Backend]
			if (pass == 0 && b.routable(now)) || (pass == 1 && b.allow(now)) {
				targets = append(targets, solveTarget{b: b, body: mkBody(rep)})
			}
		}
	}
	if len(targets) == 0 {
		g.writeErr(w, http.StatusServiceUnavailable, "no_backend",
			fmt.Sprintf("all %d replicas of %s are down", len(gh.replicas), handle))
		return
	}

	res := g.solveAcross(r.Context(), targets)
	if res == nil || res.err != nil || res.failover() {
		status, code := http.StatusServiceUnavailable, "shard_unavailable"
		msg := fmt.Sprintf("solve failed on all %d replicas of %s", len(targets), handle)
		if res != nil && res.err == nil && res.status == http.StatusNotFound {
			// Every replica disowned the handle (all restarted): it is gone.
			status, code, msg = http.StatusNotFound, "unknown_handle",
				fmt.Sprintf("handle %s lost by all replicas", handle)
		}
		g.writeErr(w, status, code, msg)
		return
	}
	// Stamp which backend served, for observability and the failover tests.
	var out map[string]json.RawMessage
	if err := json.Unmarshal(res.body, &out); err == nil {
		sb, _ := json.Marshal(res.backend.id)
		out["served_by"] = sb
		if merged, err := json.Marshal(out); err == nil {
			relay(w, res.status, merged)
			return
		}
	}
	relay(w, res.status, res.body)
}

// solveTarget pairs a replica's backend with the request body carrying that
// replica's own factor handle.
type solveTarget struct {
	b    *backendHealth
	body []byte
}

// solveAcross runs the failover walk for a solve, with optional hedging: if
// the leading attempt has not answered within HedgeDelay, the next replica
// gets a duplicate and the first acceptable answer wins. Solves are
// idempotent reads of an immutable factor, so duplicates are harmless.
func (g *Gateway) solveAcross(ctx context.Context, targets []solveTarget) *attemptResult {
	if g.cfg.HedgeDelay <= 0 || len(targets) < 2 {
		var last *attemptResult
		key := client.Key("/v1/solve")
		for i, tg := range targets {
			if i > 0 {
				g.retries.Add(1)
				t := time.NewTimer(g.cfg.Retry.Delay(key, i))
				select {
				case <-t.C:
				case <-ctx.Done():
					t.Stop()
					return &attemptResult{err: ctx.Err()}
				}
			}
			last = g.attemptOnce(ctx, tg.b, "/v1/solve", tg.body)
			if !last.failover() {
				if i > 0 {
					g.failovers.Add(1)
				}
				return last
			}
			if last.status == http.StatusNotFound {
				g.staleRoutes.Add(1)
			}
		}
		return last
	}

	// Hedged: launch sequentially on a delay, first acceptable result wins.
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan *attemptResult, len(targets))
	launched := 0
	launch := func(i int) {
		launched++
		tg := targets[i]
		go func() { results <- g.attemptOnce(hctx, tg.b, "/v1/solve", tg.body) }()
	}
	launch(0)
	hedge := time.NewTimer(g.cfg.HedgeDelay)
	defer hedge.Stop()
	var last *attemptResult
	done := 0
	for done < launched || launched < len(targets) {
		select {
		case res := <-results:
			done++
			last = res
			if !res.failover() {
				if res.backend != targets[0].b {
					g.failovers.Add(1)
				}
				return res
			}
			if res.status == http.StatusNotFound {
				g.staleRoutes.Add(1)
			}
			if launched < len(targets) {
				// A definite failure promotes the next replica immediately.
				g.retries.Add(1)
				launch(launched)
			}
		case <-hedge.C:
			if launched < len(targets) {
				g.hedges.Add(1)
				launch(launched)
			}
		case <-hctx.Done():
			return &attemptResult{err: hctx.Err()}
		}
	}
	return last
}

func (g *Gateway) handleRelease(w http.ResponseWriter, r *http.Request) {
	g.requests.Add(1)
	body, ok := g.readBody(w, r)
	if !ok {
		return
	}
	var req struct {
		Handle string `json:"handle"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		g.writeErr(w, http.StatusBadRequest, "bad_request", "bad request body: "+err.Error())
		return
	}
	gh, ok := g.handles.del(req.Handle)
	if !ok {
		g.writeErr(w, http.StatusNotFound, "unknown_handle", fmt.Sprintf("unknown gateway handle %q", req.Handle))
		return
	}
	// Best-effort fan-out: a dead replica cannot release, but its store dies
	// with it; the gateway mapping is already gone either way.
	released := 0
	for _, rep := range gh.replicas {
		rb, _ := json.Marshal(struct {
			Handle string `json:"handle"`
		}{rep.Handle})
		res := g.attemptOnce(r.Context(), g.backends[rep.Backend], "/v1/release", rb)
		if res.err == nil && res.status == http.StatusOK {
			released++
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(struct {
		Released string `json:"released"`
		Replicas int    `json:"replicas"`
	}{req.Handle, released})
}

// handleHealthz reports the gateway's own health plus its model of every
// backend.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	sts := make([]BackendStatus, len(g.backends))
	routable := 0
	for i, b := range g.backends {
		sts[i] = b.status(now)
		if sts[i].Routable {
			routable++
		}
	}
	status, code := "ok", http.StatusOK
	if routable == 0 {
		status, code = "degraded", http.StatusServiceUnavailable
	}
	// Per-shard replication: the worst-case live replica count over all
	// handles. MinReplication == cfg.Replicas means anti-entropy has nothing
	// left to repair; with no handles there is trivially nothing at risk.
	minRepl := g.cfg.Replicas
	under := 0
	for _, e := range g.handles.entries() {
		live := 0
		for _, rep := range e.replicas {
			if sts[rep.Backend].Routable {
				live++
			}
		}
		if live < minRepl {
			minRepl = live
		}
		if live < g.cfg.Replicas {
			under++
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(struct {
		Status          string          `json:"status"`
		UptimeSeconds   float64         `json:"uptime_seconds"`
		Handles         int             `json:"handles"`
		Replicas        int             `json:"replicas"`
		MinReplication  int             `json:"min_replication"`
		UnderReplicated int             `json:"under_replicated"`
		Stats           Stats           `json:"stats"`
		Backends        []BackendStatus `json:"backends"`
	}{status, time.Since(g.start).Seconds(), g.handles.len(), g.cfg.Replicas, minRepl, under, g.Stats(), sts})
}
