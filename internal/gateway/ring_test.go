package gateway

import (
	"fmt"
	"testing"
	"time"
)

// The ring walk is deterministic, yields every backend exactly once, and is
// a pure function of (seed, n, key).
func TestRingOrderDeterministicAndComplete(t *testing.T) {
	const n = 5
	r := newRing(n, 64, 42)
	for k := 0; k < 50; k++ {
		key := fmt.Sprintf("fingerprint-%d", k)
		o1 := r.order(key)
		o2 := r.order(key)
		if len(o1) != n {
			t.Fatalf("order(%q) has %d entries, want %d", key, len(o1), n)
		}
		seen := make(map[int]bool)
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("order(%q) not deterministic: %v vs %v", key, o1, o2)
			}
			if seen[o1[i]] {
				t.Fatalf("order(%q) repeats backend %d: %v", key, o1[i], o1)
			}
			seen[o1[i]] = true
		}
	}
	// An independently built ring with the same config agrees — routing needs
	// no coordination between gateway instances.
	r2 := newRing(n, 64, 42)
	for k := 0; k < 20; k++ {
		key := fmt.Sprintf("fingerprint-%d", k)
		a, b := r.order(key), r2.order(key)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("two rings with identical config disagree on %q: %v vs %v", key, a, b)
			}
		}
	}
}

// Virtual nodes spread primaries across backends, and the seed moves them.
func TestRingDistributionAndSeed(t *testing.T) {
	const n, keys = 4, 2000
	r := newRing(n, 64, 1)
	counts := make([]int, n)
	for k := 0; k < keys; k++ {
		counts[r.order(fmt.Sprintf("key-%d", k))[0]]++
	}
	for b, c := range counts {
		if c < keys/n/4 {
			t.Fatalf("backend %d owns only %d/%d primaries: %v", b, c, keys, counts)
		}
	}
	r2 := newRing(n, 64, 2)
	moved := 0
	for k := 0; k < 200; k++ {
		key := fmt.Sprintf("key-%d", k)
		if r.order(key)[0] != r2.order(key)[0] {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("changing the seed moved no primaries at all")
	}
}

// capacity implements ceil(c·(m+1)/n) with a floor of 1.
func TestBoundedLoadCapacity(t *testing.T) {
	cases := []struct {
		c    float64
		m    int64
		n    int
		want int64
	}{
		{1.5, 0, 3, 1},  // ceil(1.5/3) = 1
		{1.5, 8, 3, 5},  // ceil(13.5/3) = 5
		{1.0, 5, 2, 3},  // ceil(6/2) = 3
		{2.0, 3, 4, 2},  // ceil(8/4) = 2
		{1.0, 0, 10, 1}, // floor of 1
	}
	for _, tc := range cases {
		if got := capacity(tc.c, tc.m, tc.n); got != tc.want {
			t.Errorf("capacity(%v, %d, %d) = %d, want %d", tc.c, tc.m, tc.n, got, tc.want)
		}
	}
}

// The breaker walks closed → open → half-open → closed (on trial success) or
// back to open (on trial failure), admitting exactly one trial at a time.
func TestBreakerTransitions(t *testing.T) {
	const threshold = 3
	cooldown := 100 * time.Millisecond
	now := time.Now()
	b := &backendHealth{id: 0, url: "http://x"}

	for i := 0; i < threshold-1; i++ {
		b.onFailure("boom", threshold, cooldown, now)
		if !b.allow(now) {
			t.Fatalf("breaker opened after %d failures, threshold is %d", i+1, threshold)
		}
	}
	b.onFailure("boom", threshold, cooldown, now)
	if b.allow(now) {
		t.Fatal("breaker still admits after reaching the failure threshold")
	}

	// Cooldown expiry: exactly one half-open trial is admitted.
	later := now.Add(cooldown + time.Millisecond)
	if !b.allow(later) {
		t.Fatal("breaker does not admit a trial after the cooldown")
	}
	if b.allow(later) {
		t.Fatal("breaker admits a second concurrent half-open trial")
	}

	// Failed trial re-opens immediately for another cooldown.
	b.onFailure("still down", threshold, cooldown, later)
	if b.allow(later.Add(time.Millisecond)) {
		t.Fatal("breaker admits right after a failed half-open trial")
	}

	// Next trial succeeds: breaker closes and traffic flows freely.
	again := later.Add(cooldown + 2*time.Millisecond)
	if !b.allow(again) {
		t.Fatal("breaker does not re-trial after the second cooldown")
	}
	b.onSuccess(5 * time.Millisecond)
	if !b.allow(again) || !b.allow(again) {
		t.Fatal("closed breaker throttles traffic")
	}

	// routable additionally requires a passing probe and no drain.
	if b.routable(again) {
		t.Fatal("routable without a successful probe")
	}
	b.mu.Lock()
	b.probeOK = true
	b.mu.Unlock()
	if !b.routable(again) {
		t.Fatal("healthy closed backend not routable")
	}
	b.mu.Lock()
	b.draining = true
	b.mu.Unlock()
	if b.routable(again) {
		t.Fatal("draining backend still routable")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err == nil {
		t.Fatal("empty backend list accepted")
	}
	if err := (Config{Backends: []string{"http://a"}, LoadFactor: 0.5}).Validate(); err == nil {
		t.Fatal("LoadFactor below 1 accepted")
	}
	if err := (Config{Backends: []string{"http://a"}, Replicas: -1}).Validate(); err == nil {
		t.Fatal("negative replicas accepted")
	}
	if err := (Config{Backends: []string{"http://a", "http://b"}}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cfg := Config{Backends: []string{"http://a"}, Replicas: 7}.withDefaults()
	if cfg.Replicas != 1 {
		t.Fatalf("Replicas not capped at backend count: %d", cfg.Replicas)
	}
}
