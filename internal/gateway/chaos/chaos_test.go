package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/pastix-go/pastix"
	"github.com/pastix-go/pastix/internal/gateway"
	"github.com/pastix-go/pastix/internal/gateway/client"
	"github.com/pastix-go/pastix/internal/gen"
	"github.com/pastix-go/pastix/internal/service"
)

func svcConfig() service.Config {
	return service.Config{
		Solver:      pastix.Options{Processors: 2},
		BatchWindow: 2 * time.Millisecond,
		Workers:     4,
		QueueDepth:  32,
	}
}

// A plan is a pure function of its seed: same seed, same schedule; different
// seed, different schedule. Every kill has a later restart of the same node.
func TestChaosPlanDeterministic(t *testing.T) {
	p1 := NewPlan(5, 3, 2, time.Second, true)
	p2 := NewPlan(5, 3, 2, time.Second, true)
	if !reflect.DeepEqual(p1, p2) {
		t.Fatalf("same seed produced different plans:\n%+v\n%+v", p1, p2)
	}
	diff := false
	for s := int64(6); s < 16 && !diff; s++ {
		if !reflect.DeepEqual(p1.Events, NewPlan(s, 3, 2, time.Second, true).Events) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("ten different seeds all produced the seed-5 plan")
	}
	for i := 1; i < len(p1.Events); i++ {
		if p1.Events[i].At < p1.Events[i-1].At {
			t.Fatalf("plan not sorted by time: %+v", p1.Events)
		}
	}
	for _, ev := range p1.Events {
		if ev.Kind != Kill {
			continue
		}
		restarted := false
		for _, ev2 := range p1.Events {
			if ev2.Kind == Restart && ev2.Node == ev.Node && ev2.At > ev.At {
				restarted = true
			}
		}
		if !restarted {
			t.Fatalf("kill of node %d at %v has no later restart: %+v", ev.Node, ev.At, p1.Events)
		}
	}
}

func postJSON(url string, body any) (int, map[string]json.RawMessage, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, out, nil
}

func jsonField[T any](t *testing.T, m map[string]json.RawMessage, key string) T {
	t.Helper()
	var v T
	raw, ok := m[key]
	if !ok {
		t.Fatalf("response missing %q", key)
	}
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("field %q: %v", key, err)
	}
	return v
}

// The acceptance soak: 3 nodes, R=2 replication, a seeded plan that kills a
// node mid-load (the factorize primary on even seeds) and restarts it empty.
// Every accepted solve must be bit-identical to a fault-free single-node
// run; the duplicate factorize with the original idempotency key must not
// double-apply on any node.
func TestChaosNodeKillSoak(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if testing.Short() {
		seeds = seeds[:3]
	}

	a := gen.Laplacian3D(5, 5, 5)
	var sb strings.Builder
	if err := pastix.WriteMatrixMarket(&sb, a, "chaos soak"); err != nil {
		t.Fatal(err)
	}
	mm := sb.String()

	// Fault-free reference, computed once: the bits every replica must
	// reproduce no matter which one serves.
	an, err := pastix.Analyze(a, pastix.Options{Processors: 2})
	if err != nil {
		t.Fatal(err)
	}
	fFree, err := an.FactorizeValues(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	const clients, perClient = 4, 8
	bs := make([][]float64, clients*perClient)
	refs := make([][]float64, len(bs))
	for i := range bs {
		bs[i] = make([]float64, a.N)
		for j := range bs[i] {
			bs[i][j] = float64(1+(i*31+j*7)%13) - 6.0
		}
		if refs[i], err = an.SolveParallel(fFree, bs[i]); err != nil {
			t.Fatal(err)
		}
	}

	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cl, err := NewCluster(3, svcConfig())
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			g, err := gateway.New(gateway.Config{
				Backends:      cl.URLs(),
				Replicas:      2,
				ProbeInterval: 15 * time.Millisecond,
				Retry:         client.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Seed: seed},
				Seed:          seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer g.Close()
			gts := httptest.NewServer(g.Handler())
			defer gts.Close()

			idemKey := fmt.Sprintf("soak-%d", seed)
			st, fr, err := postJSON(gts.URL+"/v1/factorize",
				map[string]any{"matrix_market": mm, "idempotency_key": idemKey})
			if err != nil || st != http.StatusOK {
				t.Fatalf("factorize: status %d err %v: %v", st, err, fr)
			}
			handle := jsonField[string](t, fr, "handle")
			pb := jsonField[int](t, fr, "primary_backend")
			if r := jsonField[int](t, fr, "replicas"); r != 2 {
				t.Fatalf("replication degree %d, want 2", r)
			}

			// Seeded plan, one kill mid-load. Even seeds override the hashed
			// victim with the factorize primary so the kill provably lands on
			// a replica-bearing node.
			plan := NewPlan(seed, 3, 1, 500*time.Millisecond, true)
			if seed%2 == 0 {
				victim := -1
				for i, ev := range plan.Events {
					if ev.Kind == Kill {
						victim = ev.Node
					}
					_ = i
				}
				for i := range plan.Events {
					if plan.Events[i].Node == victim && plan.Events[i].Kind != StallEvent {
						plan.Events[i].Node = pb
					}
				}
			}

			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			planDone := make(chan error, 1)
			go func() {
				_, err := cl.Apply(ctx, plan)
				planDone <- err
			}()

			// The load: clients solving through the whole chaos window.
			type result struct {
				idx int
				st  int
				out map[string]json.RawMessage
				err error
			}
			results := make(chan result, len(bs))
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for k := 0; k < perClient; k++ {
						i := c*perClient + k
						st, out, err := postJSON(gts.URL+"/v1/solve",
							map[string]any{"handle": handle, "b": bs[i]})
						results <- result{i, st, out, err}
						time.Sleep(time.Duration(50+10*c) * time.Millisecond / time.Duration(perClient))
					}
				}(c)
			}
			wg.Wait()
			close(results)
			if err := <-planDone; err != nil {
				t.Fatalf("chaos plan failed: %v", err)
			}

			// No request lost: with one kill and R=2 every solve has a live
			// replica, so every one must be accepted — and bit-identical.
			for res := range results {
				if res.err != nil {
					t.Fatalf("solve %d lost: %v", res.idx, res.err)
				}
				if res.st != http.StatusOK {
					t.Fatalf("solve %d rejected with status %d: %v", res.idx, res.st, res.out)
				}
				x := jsonField[[]float64](t, res.out, "x")
				want := refs[res.idx]
				if len(x) != len(want) {
					t.Fatalf("solve %d: %d values, want %d", res.idx, len(x), len(want))
				}
				for j := range x {
					if x[j] != want[j] {
						t.Fatalf("seed %d solve %d: x[%d] = %x, want %x — not bit-identical to the fault-free run",
							seed, res.idx, j, x[j], want[j])
					}
				}
			}

			// Not double-applied: replaying the factorize with the original
			// idempotency key must leave every node with at most one factor —
			// survivors replay, only the wiped restarted node recommits.
			st, _, err = postJSON(gts.URL+"/v1/factorize",
				map[string]any{"matrix_market": mm, "idempotency_key": idemKey})
			if err != nil || st != http.StatusOK {
				t.Fatalf("duplicate factorize: status %d err %v", st, err)
			}
			for i, n := range cl.Nodes {
				lf, err := n.LiveFactors()
				if err != nil {
					t.Fatalf("node %d readyz: %v", i, err)
				}
				if lf > 1 {
					t.Fatalf("node %d holds %d factors for one idempotency key — double-applied", i, lf)
				}
			}
		})
	}
}

// The durable acceptance soak: 3 durable nodes (per-node data dirs), R=2, a
// seeded mid-load kill followed by a restart that REPLAYS the journal
// instead of coming back empty. Three guarantees, per seed:
//
//  1. Zero lost accepted handles: every solve issued through the window is
//     accepted and bit-identical to the fault-free single-node run, and the
//     handle still solves after the dust settles.
//  2. Replication is restored to R=2 before the soak ends — by the durable
//     replay, the anti-entropy repair, or both.
//  3. The duplicate factorize with the original idempotency key does not
//     double-apply anywhere: the restarted node's journaled idempotency
//     record replays the original response.
func TestChaosDurableNodeKillSoak(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if testing.Short() {
		seeds = seeds[:3]
	}

	a := gen.Laplacian3D(5, 5, 5)
	var sb strings.Builder
	if err := pastix.WriteMatrixMarket(&sb, a, "durable chaos soak"); err != nil {
		t.Fatal(err)
	}
	mm := sb.String()

	an, err := pastix.Analyze(a, pastix.Options{Processors: 2})
	if err != nil {
		t.Fatal(err)
	}
	fFree, err := an.FactorizeValues(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	const clients, perClient = 4, 6
	bs := make([][]float64, clients*perClient)
	refs := make([][]float64, len(bs))
	for i := range bs {
		bs[i] = make([]float64, a.N)
		for j := range bs[i] {
			bs[i][j] = float64(1+(i*17+j*5)%11) - 5.0
		}
		if refs[i], err = an.SolveParallel(fFree, bs[i]); err != nil {
			t.Fatal(err)
		}
	}

	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := svcConfig()
			cfg.DataDir = t.TempDir()
			cl, err := NewCluster(3, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			g, err := gateway.New(gateway.Config{
				Backends:       cl.URLs(),
				Replicas:       2,
				ProbeInterval:  15 * time.Millisecond,
				RepairInterval: 20 * time.Millisecond,
				Retry:          client.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Seed: seed},
				Seed:           seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer g.Close()
			gts := httptest.NewServer(g.Handler())
			defer gts.Close()

			idemKey := fmt.Sprintf("durable-soak-%d", seed)
			st, fr, err := postJSON(gts.URL+"/v1/factorize",
				map[string]any{"matrix_market": mm, "idempotency_key": idemKey})
			if err != nil || st != http.StatusOK {
				t.Fatalf("factorize: status %d err %v: %v", st, err, fr)
			}
			handle := jsonField[string](t, fr, "handle")
			pb := jsonField[int](t, fr, "primary_backend")
			if !jsonField[bool](t, fr, "durable") {
				t.Fatal("factorize against a durable node did not ack durable")
			}

			// Kill the factorize primary mid-load on even seeds; the hashed
			// victim otherwise.
			plan := NewPlan(seed, 3, 1, 500*time.Millisecond, true)
			if seed%2 == 0 {
				victim := -1
				for _, ev := range plan.Events {
					if ev.Kind == Kill {
						victim = ev.Node
					}
				}
				for i := range plan.Events {
					if plan.Events[i].Node == victim && plan.Events[i].Kind != StallEvent {
						plan.Events[i].Node = pb
					}
				}
			}

			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			planDone := make(chan error, 1)
			go func() {
				_, err := cl.Apply(ctx, plan)
				planDone <- err
			}()

			type result struct {
				idx int
				st  int
				out map[string]json.RawMessage
				err error
			}
			results := make(chan result, len(bs))
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for k := 0; k < perClient; k++ {
						i := c*perClient + k
						st, out, err := postJSON(gts.URL+"/v1/solve",
							map[string]any{"handle": handle, "b": bs[i]})
						results <- result{i, st, out, err}
						time.Sleep(time.Duration(50+10*c) * time.Millisecond / time.Duration(perClient))
					}
				}(c)
			}
			wg.Wait()
			close(results)
			if err := <-planDone; err != nil {
				t.Fatalf("chaos plan failed: %v", err)
			}

			for res := range results {
				if res.err != nil {
					t.Fatalf("solve %d lost: %v", res.idx, res.err)
				}
				if res.st != http.StatusOK {
					t.Fatalf("solve %d rejected with status %d: %v", res.idx, res.st, res.out)
				}
				x := jsonField[[]float64](t, res.out, "x")
				want := refs[res.idx]
				if len(x) != len(want) {
					t.Fatalf("solve %d: %d values, want %d", res.idx, len(x), len(want))
				}
				for j := range x {
					if x[j] != want[j] {
						t.Fatalf("seed %d solve %d: x[%d] = %x, want %x — not bit-identical to the fault-free run",
							seed, res.idx, j, x[j], want[j])
					}
				}
			}

			// Replication restored to R=2 before the soak ends: the restarted
			// node replayed its journal and/or the repair loop re-replicated.
			deadline := time.Now().Add(15 * time.Second)
			for {
				resp, err := http.Get(gts.URL + "/healthz")
				if err != nil {
					t.Fatal(err)
				}
				var hz struct {
					MinReplication  int `json:"min_replication"`
					UnderReplicated int `json:"under_replicated"`
				}
				err = json.NewDecoder(resp.Body).Decode(&hz)
				resp.Body.Close()
				if err != nil {
					t.Fatal(err)
				}
				if hz.MinReplication >= 2 && hz.UnderReplicated == 0 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("seed %d: replication not restored to 2 (min %d, under-replicated %d)",
						seed, hz.MinReplication, hz.UnderReplicated)
				}
				time.Sleep(20 * time.Millisecond)
			}

			// The handle still solves after kill, restart and repair.
			st, out, err := postJSON(gts.URL+"/v1/solve", map[string]any{"handle": handle, "b": bs[0]})
			if err != nil || st != http.StatusOK {
				t.Fatalf("post-recovery solve: status %d err %v: %v", st, err, out)
			}
			x := jsonField[[]float64](t, out, "x")
			for j := range x {
				if x[j] != refs[0][j] {
					t.Fatalf("post-recovery solve: x[%d] = %x, want %x", j, x[j], refs[0][j])
				}
			}

			// Not double-applied, even through the durable restart.
			st, _, err = postJSON(gts.URL+"/v1/factorize",
				map[string]any{"matrix_market": mm, "idempotency_key": idemKey})
			if err != nil || st != http.StatusOK {
				t.Fatalf("duplicate factorize: status %d err %v", st, err)
			}
			total := 0
			for i, n := range cl.Nodes {
				lf, err := n.LiveFactors()
				if err != nil {
					t.Fatalf("node %d readyz: %v", i, err)
				}
				if lf > 1 {
					t.Fatalf("node %d holds %d factors for one idempotency key — double-applied", i, lf)
				}
				total += lf
			}
			if total < 2 {
				t.Fatalf("only %d live factors across the fleet after recovery, want >= 2", total)
			}
		})
	}
}
