// Package chaos kills, stalls and restarts pastix-serve nodes behind the HA
// gateway on a seeded, replayable schedule. It follows the internal/faults
// discipline: every chaotic decision — which node dies, when, for how long —
// is a pure function of (seed, event index) through the splitmix64 counter
// hash, so a failing soak replays exactly from its seed.
//
// Nodes are real service.Servers behind in-process HTTP listeners. A kill is
// a connection abort (the TCP-level death a client of a SIGKILLed process
// sees), not a clean 5xx. A restart swaps in a fresh server: without a data
// dir its stores come back empty and the gateway must discover stale handles
// via 404 failover; with one (Config.DataDir set, split per node by
// NewCluster) the new process replays its journal and accepted handles
// survive the kill.
package chaos

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"github.com/pastix-go/pastix/internal/gateway/client"
	"github.com/pastix-go/pastix/internal/service"
)

// EventKind is what happens to a node at a plan point.
type EventKind int

const (
	// Kill aborts every connection to the node until it restarts.
	Kill EventKind = iota
	// Restart brings a killed node back with a FRESH service — empty factor
	// store, empty caches — as a real process restart would.
	Restart
	// StallEvent delays the node's request handling, simulating overload.
	StallEvent
)

func (k EventKind) String() string {
	switch k {
	case Kill:
		return "kill"
	case Restart:
		return "restart"
	default:
		return "stall"
	}
}

// Event is one scheduled fault.
type Event struct {
	At    time.Duration // offset from Apply start
	Node  int
	Kind  EventKind
	Stall time.Duration // StallEvent only
}

// Plan is a seeded, replayable fault schedule, sorted by At.
type Plan struct {
	Seed   int64
	Events []Event
}

// rnd draws a deterministic uniform in [0,1) for (seed, label): the
// counter-based PRNG discipline, with no shared stream state.
func rnd(seed int64, label string) float64 {
	h := client.Key(fmt.Sprintf("chaos/%d/%s", seed, label))
	return float64(h>>11) / (1 << 53)
}

// pick draws a deterministic integer in [0, n).
func pick(seed int64, label string, n int) int {
	return int(rnd(seed, label) * float64(n))
}

// NewPlan derives a kill/restart schedule: kills node-kill events spread
// across span, each victim chosen by hash, each down for a hashed fraction
// of the remaining span before its restart. Optional stalls jitter other
// nodes while a victim is down.
func NewPlan(seed int64, nodes, kills int, span time.Duration, stalls bool) Plan {
	p := Plan{Seed: seed}
	for k := 0; k < kills; k++ {
		victim := pick(seed, fmt.Sprintf("victim/%d", k), nodes)
		// Kill somewhere in the middle half of this kill's slice of the span,
		// so load exists both before and after.
		slice := span / time.Duration(kills)
		at := time.Duration(float64(slice) * (float64(k) + 0.25 + 0.5*rnd(seed, fmt.Sprintf("at/%d", k))))
		downFor := time.Duration(float64(slice) * (0.2 + 0.3*rnd(seed, fmt.Sprintf("down/%d", k))))
		p.Events = append(p.Events,
			Event{At: at, Node: victim, Kind: Kill},
			Event{At: at + downFor, Node: victim, Kind: Restart},
		)
		if stalls && nodes > 1 {
			other := (victim + 1 + pick(seed, fmt.Sprintf("stall-node/%d", k), nodes-1)) % nodes
			p.Events = append(p.Events, Event{
				At:    at + downFor/2,
				Node:  other,
				Kind:  StallEvent,
				Stall: time.Duration(float64(20*time.Millisecond) * rnd(seed, fmt.Sprintf("stall-len/%d", k))),
			})
		}
	}
	sort.SliceStable(p.Events, func(i, j int) bool { return p.Events[i].At < p.Events[j].At })
	return p
}

// Node is one backend under chaos: a live service.Server whose front door
// can abort, stall, or come back empty.
type Node struct {
	idx     int
	cfg     service.Config
	ts      *httptest.Server
	svc     atomic.Value // *service.Server
	handler atomic.Value // http.Handler
	down    atomic.Bool
	stallNS atomic.Int64
}

// URL is the node's base URL for the gateway's backend list.
func (n *Node) URL() string { return n.ts.URL }

// Kill makes every connection abort, as to a dead process.
func (n *Node) Kill() { n.down.Store(true) }

// Down reports whether the node is currently killed.
func (n *Node) Down() bool { return n.down.Load() }

// Stall sets a handling delay (0 clears it).
func (n *Node) Stall(d time.Duration) { n.stallNS.Store(int64(d)) }

// Restart replaces the service with a fresh one at the same URL and clears
// the kill — a new process instance. Without a data dir all prior state —
// factors, caches, idempotency records — is gone; with one, the journal
// replays it. The old service closes before the new one opens so the
// journal file hands over cleanly, as between a dying and a starting
// process sharing a disk.
func (n *Node) Restart() error {
	old := n.svc.Load().(*service.Server)
	old.Close()
	svc, err := service.New(n.cfg)
	if err != nil {
		return err
	}
	n.svc.Store(svc)
	n.handler.Store(svc.Handler())
	n.down.Store(false)
	return nil
}

// LiveFactors asks the node's /readyz how many factors it holds.
func (n *Node) LiveFactors() (int, error) {
	resp, err := http.Get(n.ts.URL + "/readyz")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var st service.ReadyState
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, err
	}
	return st.LiveFactors, nil
}

func (n *Node) close() {
	n.ts.Close()
	n.svc.Load().(*service.Server).Close()
}

// Cluster is a set of chaos nodes plus the plan runner.
type Cluster struct {
	Nodes []*Node
}

// NewCluster starts n nodes, each its own service.Server. When cfg.DataDir
// is set, each node gets its own subdirectory of it — nodes are separate
// processes with separate disks, and a restart must replay only that node's
// journal.
func NewCluster(n int, cfg service.Config) (*Cluster, error) {
	c := &Cluster{}
	for i := 0; i < n; i++ {
		ncfg := cfg
		if cfg.DataDir != "" {
			ncfg.DataDir = filepath.Join(cfg.DataDir, fmt.Sprintf("node-%d", i))
			if err := os.MkdirAll(ncfg.DataDir, 0o755); err != nil {
				c.Close()
				return nil, err
			}
		}
		svc, err := service.New(ncfg)
		if err != nil {
			c.Close()
			return nil, err
		}
		nd := &Node{idx: i, cfg: ncfg}
		nd.svc.Store(svc)
		nd.handler.Store(svc.Handler())
		nd.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if nd.down.Load() {
				panic(http.ErrAbortHandler)
			}
			if d := nd.stallNS.Load(); d > 0 {
				time.Sleep(time.Duration(d))
			}
			nd.handler.Load().(http.Handler).ServeHTTP(w, r)
		}))
		c.Nodes = append(c.Nodes, nd)
	}
	return c, nil
}

// URLs returns the backend list for gateway.Config.
func (c *Cluster) URLs() []string {
	urls := make([]string, len(c.Nodes))
	for i, n := range c.Nodes {
		urls[i] = n.URL()
	}
	return urls
}

// Close stops every node.
func (c *Cluster) Close() {
	for _, n := range c.Nodes {
		n.close()
	}
}

// Apply replays the plan against the cluster in real time, blocking until
// the last event fired or ctx ended. It returns the events applied.
func (c *Cluster) Apply(ctx context.Context, plan Plan) ([]Event, error) {
	start := time.Now()
	var applied []Event
	for _, ev := range plan.Events {
		if ev.Node < 0 || ev.Node >= len(c.Nodes) {
			return applied, fmt.Errorf("chaos: event node %d out of range", ev.Node)
		}
		wait := ev.At - time.Since(start)
		if wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return applied, ctx.Err()
			}
		}
		n := c.Nodes[ev.Node]
		switch ev.Kind {
		case Kill:
			n.Kill()
		case Restart:
			if err := n.Restart(); err != nil {
				return applied, err
			}
		case StallEvent:
			n.Stall(ev.Stall)
		}
		applied = append(applied, ev)
	}
	return applied, nil
}
