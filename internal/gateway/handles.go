package gateway

import (
	"fmt"
	"sync"
)

// replicaRef is one backend's copy of a replicated factorization.
type replicaRef struct {
	Backend int    // backend index
	Handle  string // that backend's own factor handle
}

// gwHandle maps one gateway-issued factor handle to the replica set that
// holds the factor. Order matters: replicas[0] is the primary (solve
// affinity routes there first), the rest are failover targets.
type gwHandle struct {
	fingerprint string
	replicas    []replicaRef
}

// handleTable issues and resolves gateway factor handles. A gateway handle
// is the unit of factor-handle affinity: a solve against it routes to the
// node that made the factor, falling back through the replicas.
type handleTable struct {
	mu  sync.Mutex
	seq uint64
	m   map[string]*gwHandle
}

func newHandleTable() *handleTable {
	return &handleTable{m: make(map[string]*gwHandle)}
}

func (t *handleTable) put(fingerprint string, replicas []replicaRef) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	h := fmt.Sprintf("g-%06d-%.8s", t.seq, fingerprint)
	t.m[h] = &gwHandle{fingerprint: fingerprint, replicas: replicas}
	return h
}

func (t *handleTable) get(handle string) (*gwHandle, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	h, ok := t.m[handle]
	return h, ok
}

func (t *handleTable) del(handle string) (*gwHandle, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	h, ok := t.m[handle]
	if ok {
		delete(t.m, handle)
	}
	return h, ok
}

func (t *handleTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}
