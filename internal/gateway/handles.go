package gateway

import (
	"fmt"
	"sync"
)

// replicaRef is one backend's copy of a replicated factorization.
type replicaRef struct {
	Backend int    // backend index
	Handle  string // that backend's own factor handle
	// Inst is the backend's process instance at replication time. The
	// anti-entropy repair compares it against the backend's current instance:
	// same instance means the handle is necessarily still there (a process
	// never drops handles except by release), so no verification round trip
	// is needed; a changed instance means the process restarted and the
	// handle must be re-verified (durable nodes replay it, in-memory nodes
	// lost it).
	Inst string
}

// gwHandle maps one gateway-issued factor handle to the replica set that
// holds the factor. Order matters: replicas[0] is the primary (solve
// affinity routes there first), the rest are failover targets.
type gwHandle struct {
	fingerprint string
	replicas    []replicaRef
	// body is the original factorize request body, idempotency key included.
	// It is the repair loop's last resort: when no surviving replica can
	// export the factor (NoFactorExport, or all exporters died), the gateway
	// re-factorizes from it on a fresh backend — deterministic
	// factorization makes the result bitwise-identical to the lost copy.
	body []byte
}

// handleEntry is a consistent copy of one handle's state, safe to use
// without the table lock (the repair loop iterates these while request
// handlers mutate the table).
type handleEntry struct {
	handle      string
	fingerprint string
	replicas    []replicaRef
	body        []byte
}

// handleTable issues and resolves gateway factor handles. A gateway handle
// is the unit of factor-handle affinity: a solve against it routes to the
// node that made the factor, falling back through the replicas.
type handleTable struct {
	mu  sync.Mutex
	seq uint64
	m   map[string]*gwHandle
}

func newHandleTable() *handleTable {
	return &handleTable{m: make(map[string]*gwHandle)}
}

func (t *handleTable) put(fingerprint string, replicas []replicaRef, body []byte) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	h := fmt.Sprintf("g-%06d-%.8s", t.seq, fingerprint)
	t.m[h] = &gwHandle{fingerprint: fingerprint, replicas: replicas, body: body}
	return h
}

// get returns a copy of the handle's state: the caller iterates replicas
// outside the lock while the repair loop may rebind them.
func (t *handleTable) get(handle string) (handleEntry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	h, ok := t.m[handle]
	if !ok {
		return handleEntry{}, false
	}
	return handleEntry{
		handle:      handle,
		fingerprint: h.fingerprint,
		replicas:    append([]replicaRef(nil), h.replicas...),
		body:        h.body,
	}, true
}

func (t *handleTable) del(handle string) (handleEntry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	h, ok := t.m[handle]
	if !ok {
		return handleEntry{}, false
	}
	delete(t.m, handle)
	return handleEntry{handle: handle, fingerprint: h.fingerprint, replicas: h.replicas, body: h.body}, true
}

func (t *handleTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

// entries snapshots the table for the repair loop.
func (t *handleTable) entries() []handleEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]handleEntry, 0, len(t.m))
	for handle, h := range t.m {
		out = append(out, handleEntry{
			handle:      handle,
			fingerprint: h.fingerprint,
			replicas:    append([]replicaRef(nil), h.replicas...),
			body:        h.body,
		})
	}
	return out
}

// rebind replaces a handle's replica set (anti-entropy repair outcome). The
// handle may have been released while the repair ran; rebind then reports
// false and the repair's work is discarded.
func (t *handleTable) rebind(handle string, replicas []replicaRef) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	h, ok := t.m[handle]
	if !ok {
		return false
	}
	h.replicas = replicas
	return true
}
