package gateway

import (
	"sort"

	"github.com/pastix-go/pastix/internal/gateway/client"
)

// ring is a consistent-hash ring over backend indices with virtual nodes.
// Routing a key walks the ring clockwise from the key's hash, yielding every
// backend exactly once in a key-deterministic preference order — position 0
// is the shard primary, positions 1..R-1 its factorize replicas. Because the
// order depends only on (seed, backends, key), routing is a pure function of
// the request the way the paper's block mapping is a pure function of the
// analysis: any gateway instance with the same configuration routes a
// fingerprint identically, with no coordination.
type ring struct {
	n      int
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash    uint64
	backend int
}

// mix64 is the splitmix64 finalizer (the internal/faults discipline).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// newRing places vnodes points per backend, hashed from (seed, backend,
// vnode) — no dependence on backend URLs, so renaming a node does not remap
// the space, only adding or removing one does.
func newRing(n, vnodes int, seed int64) *ring {
	r := &ring{n: n, points: make([]ringPoint, 0, n*vnodes)}
	for b := 0; b < n; b++ {
		for v := 0; v < vnodes; v++ {
			h := mix64(mix64(uint64(seed)) ^ mix64(uint64(b)<<20|uint64(v)))
			r.points = append(r.points, ringPoint{hash: h, backend: b})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].backend < r.points[j].backend
	})
	return r
}

// order returns all backends in the key's clockwise preference order.
func (r *ring) order(key string) []int {
	out := make([]int, 0, r.n)
	if len(r.points) == 0 {
		return out
	}
	h := client.Key(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make([]bool, r.n)
	for i := 0; len(out) < r.n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.backend] {
			seen[p.backend] = true
			out = append(out, p.backend)
		}
	}
	return out
}

// capacity is the bounded-load ceiling (consistent hashing with bounded
// loads): with m requests in flight across n backends and expansion factor
// c ≥ 1, no backend may take more than ceil(c·(m+1)/n). A hot pattern whose
// primary is saturated spills to the next backend on its ring walk instead
// of melting the shard.
func capacity(c float64, inflightTotal int64, n int) int64 {
	if c < 1 {
		c = 1
	}
	m := float64(inflightTotal + 1)
	cap := int64(c * m / float64(n))
	if float64(cap)*float64(n) < c*m {
		cap++
	}
	if cap < 1 {
		cap = 1
	}
	return cap
}
