package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/pastix-go/pastix"
	"github.com/pastix-go/pastix/internal/gateway/client"
	"github.com/pastix-go/pastix/internal/gen"
	"github.com/pastix-go/pastix/internal/service"
)

// node is one pastix-serve backend under test: a real service.Server behind
// an httptest front that can be killed (connections abort mid-request),
// stalled, restarted with an empty store, or intercepted.
type node struct {
	t       *testing.T
	ts      *httptest.Server
	svcCfg  service.Config
	handler atomic.Value // http.Handler
	svc     atomic.Value // *service.Server
	down    atomic.Bool
	stallNS atomic.Int64 // sleep on /v1/solve, simulating a slow node
	// intercept, when set, gets first crack at each request; returning true
	// means it wrote the response.
	intercept atomic.Value // func(http.ResponseWriter, *http.Request, http.Handler) bool
}

func svcConfig() service.Config {
	return service.Config{
		Solver:      pastix.Options{Processors: 2},
		BatchWindow: 2 * time.Millisecond,
		Workers:     4,
		QueueDepth:  32,
	}
}

func startNode(t *testing.T, cfg service.Config) *node {
	t.Helper()
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := &node{t: t, svcCfg: cfg}
	n.svc.Store(svc)
	n.handler.Store(svc.Handler())
	n.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.down.Load() {
			panic(http.ErrAbortHandler) // connection abort: a killed node, not a clean 5xx
		}
		if d := n.stallNS.Load(); d > 0 && r.URL.Path == "/v1/solve" {
			time.Sleep(time.Duration(d))
		}
		h := n.handler.Load().(http.Handler)
		if f := n.intercept.Load(); f != nil {
			if f.(func(http.ResponseWriter, *http.Request, http.Handler) bool)(w, r, h) {
				return
			}
		}
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		n.ts.Close()
		n.svc.Load().(*service.Server).Close()
	})
	return n
}

// restart replaces the service with a fresh one at the same URL — a new
// process instance. Without a DataDir the stores come back empty and old
// handles are stale 404s; with one, the journal replays them. The old
// service closes before the new one opens so the journal file hands over
// cleanly, exactly like a real process restart.
func (n *node) restart() {
	n.t.Helper()
	old := n.svc.Load().(*service.Server)
	old.Close()
	svc, err := service.New(n.svcCfg)
	if err != nil {
		n.t.Fatal(err)
	}
	n.svc.Store(svc)
	n.handler.Store(svc.Handler())
	n.down.Store(false)
}

func (n *node) liveFactors() int {
	n.t.Helper()
	resp, err := http.Get(n.ts.URL + "/readyz")
	if err != nil {
		n.t.Fatal(err)
	}
	defer resp.Body.Close()
	var st service.ReadyState
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		n.t.Fatal(err)
	}
	return st.LiveFactors
}

func startGateway(t *testing.T, nodes []*node, mutate func(*Config)) (*Gateway, *httptest.Server) {
	t.Helper()
	cfg := Config{
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  500 * time.Millisecond,
		Retry:         clientPolicyFast(),
		Seed:          7,
	}
	for _, n := range nodes {
		cfg.Backends = append(cfg.Backends, n.ts.URL)
	}
	if mutate != nil {
		mutate(&cfg)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(func() {
		ts.Close()
		g.Close()
	})
	return g, ts
}

func postJSON(t *testing.T, url string, body any) (int, map[string]json.RawMessage) {
	t.Helper()
	var buf []byte
	switch b := body.(type) {
	case []byte:
		buf = b
	default:
		var err error
		if buf, err = json.Marshal(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode %s response: %v", url, err)
	}
	return resp.StatusCode, out
}

func field[T any](t *testing.T, m map[string]json.RawMessage, key string) T {
	t.Helper()
	var v T
	raw, ok := m[key]
	if !ok {
		t.Fatalf("response missing %q: %v", key, keysOf(m))
	}
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("field %q: %v", key, err)
	}
	return v
}

func keysOf(m map[string]json.RawMessage) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

// waitRoutable blocks until the gateway's health model marks want backends
// routable.
func waitRoutable(t *testing.T, g *Gateway, want int) {
	t.Helper()
	waitFor(t, 5*time.Second, fmt.Sprintf("%d routable backends", want), func() bool {
		now := time.Now()
		n := 0
		for _, b := range g.backends {
			if b.routable(now) {
				n++
			}
		}
		return n == want
	})
}

func testMatrix(t *testing.T) (*pastix.Matrix, string) {
	t.Helper()
	a := gen.Laplacian3D(5, 5, 5)
	var sb strings.Builder
	if err := pastix.WriteMatrixMarket(&sb, a, "gateway test"); err != nil {
		t.Fatal(err)
	}
	return a, sb.String()
}

// referenceSolve computes the fault-free single-node answer the gateway must
// reproduce bitwise regardless of which replica serves.
func referenceSolve(t *testing.T, a *pastix.Matrix, b []float64) []float64 {
	t.Helper()
	an, err := pastix.Analyze(a, pastix.Options{Processors: 2})
	if err != nil {
		t.Fatal(err)
	}
	f, err := an.FactorizeValues(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := an.SolveParallel(f, b)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func bitIdentical(t *testing.T, got, want []float64, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: x[%d] = %x, want %x — not bit-identical", what, i, got[i], want[i])
		}
	}
}

func clientPolicyFast() client.Policy {
	return client.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Seed: 7}
}
