package lowrank

import (
	"encoding/binary"
	"math"
	"testing"
)

// splitmix64 drives the deterministic pseudo-random block generators (no
// math/rand, matching the repo's seeding convention).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unit returns a deterministic value in [-1, 1).
func unit(s *uint64) float64 {
	*s = splitmix64(*s)
	return float64(int64(*s>>11))/float64(1<<52) - 1
}

// lowRankPlusNoise builds B = X·Yᵀ + eta·G with X m×r, Y n×r and G a dense
// noise matrix with entries in [-1,1).
func lowRankPlusNoise(m, n, r int, eta float64, seed uint64) []float64 {
	s := seed
	x := make([]float64, m*r)
	y := make([]float64, n*r)
	for i := range x {
		x[i] = unit(&s)
	}
	for i := range y {
		y[i] = unit(&s)
	}
	b := make([]float64, m*n)
	for j := 0; j < n; j++ {
		for k := 0; k < r; k++ {
			yjk := y[j+k*n]
			for i := 0; i < m; i++ {
				b[i+j*m] += x[i+k*m] * yjk
			}
		}
	}
	if eta > 0 {
		for i := range b {
			b[i] += eta * unit(&s)
		}
	}
	return b
}

// TestLRCompressRRQRProperty is the accuracy contract of the reference
// compressor: for random low-rank-plus-noise blocks,
// ‖B − decompress(compress(B))‖_F ≤ Tol·‖B‖_F.
func TestLRCompressRRQRProperty(t *testing.T) {
	cases := []struct {
		m, n, r int
		eta     float64
		tol     float64
	}{
		{48, 32, 4, 0, 1e-8},
		{64, 64, 8, 1e-10, 1e-8},
		{96, 40, 6, 1e-9, 1e-6},
		{33, 57, 10, 1e-12, 1e-10},
		{128, 64, 12, 1e-7, 1e-4},
	}
	for ci, tc := range cases {
		for seed := uint64(1); seed <= 5; seed++ {
			b := lowRankPlusNoise(tc.m, tc.n, tc.r, tc.eta, seed*977+uint64(ci))
			lr := CompressRRQR(tc.m, tc.n, b, tc.m, tc.tol)
			if lr == nil {
				t.Fatalf("case %d seed %d: compression declined a rank-%d block at tol %g", ci, seed, tc.r, tc.tol)
			}
			dec := make([]float64, tc.m*tc.n)
			lr.Decompress(dec, tc.m)
			normB := FrobNorm(tc.m, tc.n, b, tc.m)
			err := FrobDiff(tc.m, tc.n, b, tc.m, dec, tc.m)
			if err > tc.tol*normB*(1+1e-12) {
				t.Errorf("case %d seed %d: ‖B−UVᵀ‖_F = %g > tol·‖B‖_F = %g (rank %d)",
					ci, seed, err, tc.tol*normB, lr.Rank)
			}
			if lr.Rank < tc.r && tc.eta == 0 {
				t.Errorf("case %d seed %d: rank %d under the exact rank %d", ci, seed, lr.Rank, tc.r)
			}
		}
	}
}

// TestLRCompressACAProperty checks the cheap path on the same block family.
// ACA's stopping rule is heuristic, so the contract is verified to a slack
// factor of 10 (the tests pin the family where ACA is known to behave).
func TestLRCompressACAProperty(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		m, n, r := 160, 140, 9
		b := lowRankPlusNoise(m, n, r, 1e-11, seed*31)
		tol := 1e-8
		lr := CompressACA(m, n, b, m, tol)
		if lr == nil {
			t.Fatalf("seed %d: ACA declined a rank-%d block", seed, r)
		}
		dec := make([]float64, m*n)
		lr.Decompress(dec, m)
		normB := FrobNorm(m, n, b, m)
		err := FrobDiff(m, n, b, m, dec, m)
		if err > 10*tol*normB {
			t.Errorf("seed %d: ACA error %g > 10·tol·‖B‖_F = %g (rank %d)", seed, err, 10*tol*normB, lr.Rank)
		}
	}
}

// TestLRCompressDeclinesFullRank: a dense random block has no numerical
// rank structure, so compression must decline (return nil) rather than
// produce an unprofitable representation.
func TestLRCompressDeclinesFullRank(t *testing.T) {
	m, n := 40, 40
	s := uint64(12345)
	b := make([]float64, m*n)
	for i := range b {
		b[i] = unit(&s)
	}
	if lr := CompressRRQR(m, n, b, m, 1e-12); lr != nil {
		t.Errorf("full-rank block compressed to rank %d (max profitable %d)", lr.Rank, maxProfitableRank(m, n))
	}
}

// TestLRCompressZeroBlock: the zero block compresses to rank 0 and
// decompresses to zeros.
func TestLRCompressZeroBlock(t *testing.T) {
	m, n := 32, 28
	lr := CompressRRQR(m, n, make([]float64, m*n), m, 1e-8)
	if lr == nil || lr.Rank != 0 {
		t.Fatalf("zero block: got %+v, want rank 0", lr)
	}
	dec := make([]float64, m*n)
	for i := range dec {
		dec[i] = math.NaN()
	}
	lr.Decompress(dec, m)
	for i, v := range dec {
		if v != 0 {
			t.Fatalf("dec[%d] = %g, want 0", i, v)
		}
	}
}

// TestLRCompressStrided: compression must honour the leading dimension (the
// factor blocks live inside larger cell arrays).
func TestLRCompressStrided(t *testing.T) {
	m, n, lda := 30, 26, 47
	b := lowRankPlusNoise(m, n, 3, 0, 7)
	a := make([]float64, lda*n)
	for j := 0; j < n; j++ {
		copy(a[j*lda:j*lda+m], b[j*m:j*m+m])
	}
	lr := CompressRRQR(m, n, a, lda, 1e-10)
	if lr == nil {
		t.Fatal("strided compression declined")
	}
	dec := make([]float64, m*n)
	lr.Decompress(dec, m)
	if err := FrobDiff(m, n, b, m, dec, m); err > 1e-10*FrobNorm(m, n, b, m) {
		t.Errorf("strided error %g", err)
	}
}

// TestLRAdmit pins the admission gate.
func TestLRAdmit(t *testing.T) {
	o := Options{Tol: 1e-8}
	if o.Admit(DefaultMinBlockSize-1, 100) || o.Admit(100, DefaultMinBlockSize-1) {
		t.Error("admitted a block under the default minimum dimension")
	}
	if !o.Admit(DefaultMinBlockSize, DefaultMinBlockSize) {
		t.Error("refused a block at the default minimum dimension")
	}
	if (Options{}).Admit(1000, 1000) {
		t.Error("disabled options admitted a block")
	}
	o.MinBlockSize = 8
	if !o.Admit(8, 8) || o.Admit(7, 8) {
		t.Error("explicit MinBlockSize not honoured")
	}
}

// TestLROptionsValidate pins the validation errors.
func TestLROptionsValidate(t *testing.T) {
	for _, bad := range []Options{{Tol: -1}, {Tol: 1}, {Tol: 1e-8, MinBlockSize: -2}} {
		if bad.Validate() == nil {
			t.Errorf("options %+v validated", bad)
		}
	}
	for _, good := range []Options{{}, {Tol: 1e-8}, {Tol: 0.5, MinBlockSize: 100}} {
		if err := good.Validate(); err != nil {
			t.Errorf("options %+v failed: %v", good, err)
		}
	}
}

// FuzzLRCompress feeds arbitrary bytes as block dimensions and values
// through the compress/decompress round trip: whatever the input, the
// compressor must not panic, and any block it does produce must satisfy the
// Frobenius contract (RRQR path) and the storage-win invariant.
func FuzzLRCompress(f *testing.F) {
	f.Add([]byte{4, 4, 1, 0, 0, 0, 0, 0, 0, 0})
	seed := lowRankPlusNoise(8, 8, 2, 0, 3)
	raw := make([]byte, 2+8*len(seed))
	raw[0], raw[1] = 8, 8
	for i, v := range seed {
		binary.LittleEndian.PutUint64(raw[2+8*i:], math.Float64bits(v))
	}
	f.Add(raw)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		m := int(data[0])%48 + 1
		n := int(data[1])%48 + 1
		vals := data[2:]
		b := make([]float64, m*n)
		for i := range b {
			if 8*i+8 <= len(vals) {
				v := math.Float64frombits(binary.LittleEndian.Uint64(vals[8*i:]))
				if math.IsInf(v, 0) || math.IsNaN(v) {
					v = 1
				}
				// Clamp to a sane range so ‖B‖_F stays finite.
				b[i] = math.Max(-1e100, math.Min(1e100, v))
			} else {
				b[i] = float64((i*7)%13) / 13
			}
		}
		tol := 1e-8
		lr := CompressRRQR(m, n, b, m, tol)
		if lr == nil {
			return // declined: dense fallback, nothing to check
		}
		if lr.Rank > maxProfitableRank(m, n) {
			t.Fatalf("unprofitable rank %d accepted for %dx%d", lr.Rank, m, n)
		}
		dec := make([]float64, m*n)
		lr.Decompress(dec, m)
		normB := FrobNorm(m, n, b, m)
		if err := FrobDiff(m, n, b, m, dec, m); err > tol*normB*(1+1e-9)+1e-300 {
			t.Fatalf("error %g > tol·norm %g for %dx%d rank %d", err, tol*normB, m, n, lr.Rank)
		}
	})
}
