// Package lowrank implements block low-rank (BLR) compression of dense
// factor blocks: the memory lever modern PaStiX ships beyond the source
// paper ("low-rank compression methods to reduce the memory footprint
// and/or the time-to-solution").
//
// A dense m×n block B is replaced, when profitable, by the outer product
// B ≈ U·Vᵀ with U m×r and V n×r, r = the numerical rank of B at a relative
// Frobenius tolerance tol: ‖B − U·Vᵀ‖_F ≤ tol·‖B‖_F. Storage drops from
// m·n to r·(m+n) values, so compression is admitted only when that is a
// win (r < m·n/(m+n)).
//
// Two compressors are provided. CompressRRQR is the reference path: a
// truncated rank-revealing QR (column-pivoted modified Gram-Schmidt on the
// explicit residual), whose error bound is exact by construction — the
// residual matrix is maintained explicitly and its Frobenius norm is what
// the stopping test reads. CompressACA is the cheap path for large blocks:
// partially-pivoted adaptive cross approximation building the factorization
// from rank-1 crosses of residual rows and columns at O((m+n)·r²+m·n) cost
// instead of RRQR's O(m·n·r); its stopping criterion estimates the residual
// norm from the last cross, so its error contract is heuristic (verified to
// a small slack factor in the tests). Compress picks between them by block
// size.
package lowrank

import (
	"fmt"
	"math"
)

// DefaultMinBlockSize is the admission threshold on min(rows, cols) used
// when Options.MinBlockSize is zero: blocks with a smaller minimum dimension
// stay dense (the fixed overheads of the LR form and its kernels dominate
// below it).
const DefaultMinBlockSize = 24

// acaCutoff is the min(rows, cols) above which Compress switches from the
// reference RRQR to the cheaper ACA path.
const acaCutoff = 128

// LRBlock is a compressed block B ≈ U·Vᵀ: U is Rows×Rank, V is Cols×Rank,
// both packed column-major (leading dimension == row count).
type LRBlock struct {
	Rows, Cols, Rank int
	U, V             []float64
}

// Values returns the number of float64 values the compressed form stores.
func (b *LRBlock) Values() int { return b.Rank * (b.Rows + b.Cols) }

// Decompress materializes B = U·Vᵀ into dst, an m×n column-major panel with
// leading dimension ld (dst is overwritten, not accumulated into).
func (b *LRBlock) Decompress(dst []float64, ld int) {
	for j := 0; j < b.Cols; j++ {
		col := dst[j*ld : j*ld+b.Rows]
		for i := range col {
			col[i] = 0
		}
		for k := 0; k < b.Rank; k++ {
			vjk := b.V[j+k*b.Cols]
			if vjk == 0 {
				continue
			}
			uk := b.U[k*b.Rows : (k+1)*b.Rows]
			for i := range col {
				col[i] += vjk * uk[i]
			}
		}
	}
}

// Options configures compression.
type Options struct {
	// Tol is the relative Frobenius tolerance of each compressed block:
	// ‖B − U·Vᵀ‖_F ≤ Tol·‖B‖_F. Tol <= 0 disables compression.
	Tol float64
	// MinBlockSize is the admission threshold: only blocks with
	// min(rows, cols) >= MinBlockSize are considered. 0 selects
	// DefaultMinBlockSize.
	MinBlockSize int
}

// Enabled reports whether the options request compression at all.
func (o Options) Enabled() bool { return o.Tol > 0 }

// Validate checks the options; Tol must lie in [0, 1) and MinBlockSize must
// be non-negative.
func (o Options) Validate() error {
	if o.Tol < 0 || o.Tol >= 1 {
		return fmt.Errorf("lowrank: Tol %g outside [0,1)", o.Tol)
	}
	if o.MinBlockSize < 0 {
		return fmt.Errorf("lowrank: MinBlockSize %d is negative", o.MinBlockSize)
	}
	return nil
}

// Admit reports whether a block of the given shape is a compression
// candidate under the options (size gate only; the rank test happens inside
// the compressor).
func (o Options) Admit(rows, cols int) bool {
	if !o.Enabled() {
		return false
	}
	min := o.MinBlockSize
	if min == 0 {
		min = DefaultMinBlockSize
	}
	return rows >= min && cols >= min
}

// maxProfitableRank is the largest rank at which U·Vᵀ storage still beats
// the dense m×n block.
func maxProfitableRank(m, n int) int {
	r := (m*n - 1) / (m + n)
	if r < 0 {
		r = 0
	}
	return r
}

// Compress compresses the m×n column-major block a (leading dimension lda)
// at relative Frobenius tolerance tol, choosing RRQR for moderate blocks and
// ACA for large ones. It returns nil when the numerical rank at tol does not
// beat dense storage — the caller keeps the dense block (the decompress
// fallback path).
func Compress(m, n int, a []float64, lda int, tol float64) *LRBlock {
	if tol <= 0 || m <= 0 || n <= 0 {
		return nil
	}
	if m >= acaCutoff && n >= acaCutoff {
		if b := CompressACA(m, n, a, lda, tol); b != nil {
			return b
		}
		// ACA declined (rank grew past profitability or it stalled): fall
		// through to the reference compressor, whose bound is exact.
	}
	return CompressRRQR(m, n, a, lda, tol)
}

// CompressRRQR runs the truncated rank-revealing QR: column-pivoted modified
// Gram-Schmidt on an explicit residual copy of the block. At acceptance the
// residual matrix IS B − U·Vᵀ up to rounding, so ‖B − U·Vᵀ‖_F ≤ tol·‖B‖_F
// holds by construction. Returns nil when the truncated rank does not beat
// dense storage.
func CompressRRQR(m, n int, a []float64, lda int, tol float64) *LRBlock {
	maxRank := maxProfitableRank(m, n)
	if maxRank == 0 {
		return nil
	}
	// Residual working copy, packed.
	res := make([]float64, m*n)
	for j := 0; j < n; j++ {
		copy(res[j*m:j*m+m], a[j*lda:j*lda+m])
	}
	norms2 := make([]float64, n)
	var total float64
	for j := 0; j < n; j++ {
		norms2[j] = dot(res[j*m:j*m+m], res[j*m:j*m+m])
		total += norms2[j]
	}
	target := tol * tol * total
	if total == 0 {
		// Identically zero block: rank 0.
		return &LRBlock{Rows: m, Cols: n, Rank: 0, U: nil, V: nil}
	}
	u := make([]float64, 0, maxRank*m)
	v := make([]float64, 0, maxRank*n)
	rank := 0
	remaining := total
	for remaining > target {
		if rank == maxRank {
			return nil // numerical rank at tol does not beat dense
		}
		// Pivot: the residual column of largest norm (recomputed exactly to
		// keep the downdated estimates honest).
		p, best := -1, 0.0
		for j := 0; j < n; j++ {
			if norms2[j] > best {
				best, p = norms2[j], j
			}
		}
		if p < 0 || best <= 0 {
			break // residual exactly zero: done below target
		}
		col := res[p*m : p*m+m]
		nrm := math.Sqrt(dot(col, col))
		if nrm == 0 {
			norms2[p] = 0
			continue
		}
		q := make([]float64, m)
		inv := 1 / nrm
		for i, ci := range col {
			q[i] = ci * inv
		}
		// Project q out of every residual column, recording the coefficients
		// as row `rank` of Vᵀ (i.e. column `rank` of V).
		vk := make([]float64, n)
		remaining = 0
		for j := 0; j < n; j++ {
			cj := res[j*m : j*m+m]
			r := dot(q, cj)
			vk[j] = r
			if r != 0 {
				for i := range cj {
					cj[i] -= r * q[i]
				}
			}
			norms2[j] = dot(cj, cj)
			remaining += norms2[j]
		}
		u = append(u, q...)
		v = append(v, vk...)
		rank++
	}
	return &LRBlock{Rows: m, Cols: n, Rank: rank, U: u, V: v}
}

// CompressACA runs partially-pivoted adaptive cross approximation: rank-1
// updates built from a residual row and column per step, touching O(m+n)
// entries of the residual per step instead of all m·n. The stopping test is
// the standard one — ‖u_k‖·‖v_k‖ ≤ tol·‖A_k‖_F with ‖A_k‖_F accumulated
// from the crosses — so the Frobenius contract is heuristic, not proven;
// Compress uses it only for large blocks and falls back to RRQR when ACA
// declines. Returns nil when the rank grows past profitability or no valid
// pivot is found early enough.
func CompressACA(m, n int, a []float64, lda int, tol float64) *LRBlock {
	maxRank := maxProfitableRank(m, n)
	if maxRank == 0 {
		return nil
	}
	var (
		u, v     []float64 // accumulated factors, column-major packed
		rank     int
		approxF2 float64 // running ‖U·Vᵀ‖_F² estimate
		rowUsed  = make([]bool, m)
		row      = make([]float64, n) // residual row buffer
		colBuf   = make([]float64, m) // residual column buffer
	)
	nextRow := 0
	for rank < maxRank {
		// Residual row at pivot row i*: a[i*,:] − U[i*,:]·Vᵀ.
		i := nextRow
		tries := 0
		var jmax int
		for {
			if i >= m || tries == m {
				// No admissible pivot row left: treat the approximation as
				// converged if we ever made progress, else decline.
				if rank == 0 {
					return &LRBlock{Rows: m, Cols: n, Rank: 0}
				}
				return &LRBlock{Rows: m, Cols: n, Rank: rank, U: u, V: v}
			}
			if rowUsed[i] {
				i = (i + 1) % m
				tries++
				continue
			}
			for j := 0; j < n; j++ {
				s := a[i+j*lda]
				for k := 0; k < rank; k++ {
					s -= u[i+k*m] * v[j+k*n]
				}
				row[j] = s
			}
			jmax = argmaxAbs(row)
			if math.Abs(row[jmax]) > 0 {
				break
			}
			rowUsed[i] = true
			i = (i + 1) % m
			tries++
		}
		rowUsed[i] = true
		delta := row[jmax]
		// Residual column at pivot column j*: a[:,j*] − U·V[j*,:]ᵀ.
		for r := 0; r < m; r++ {
			s := a[r+jmax*lda]
			for k := 0; k < rank; k++ {
				s -= u[r+k*m] * v[jmax+k*n]
			}
			colBuf[r] = s
		}
		// Cross update: u_k = residual column, v_k = residual row / delta.
		uk := make([]float64, m)
		copy(uk, colBuf)
		vk := make([]float64, n)
		invd := 1 / delta
		for j := 0; j < n; j++ {
			vk[j] = row[j] * invd
		}
		nu2 := dot(uk, uk)
		nv2 := dot(vk, vk)
		// Norm bookkeeping: ‖A_{k+1}‖² ≈ ‖A_k‖² + 2·Σ cross terms + ‖u‖²‖v‖².
		for k := 0; k < rank; k++ {
			var du, dv float64
			for r := 0; r < m; r++ {
				du += u[r+k*m] * uk[r]
			}
			for j := 0; j < n; j++ {
				dv += v[j+k*n] * vk[j]
			}
			approxF2 += 2 * du * dv
		}
		approxF2 += nu2 * nv2
		u = append(u, uk...)
		v = append(v, vk...)
		rank++
		// Next pivot row: where the new residual column was largest (skip the
		// row just used).
		colBuf[i] = 0
		nextRow = argmaxAbs(colBuf)
		if math.Sqrt(nu2*nv2) <= tol*math.Sqrt(math.Max(approxF2, 0)) {
			return &LRBlock{Rows: m, Cols: n, Rank: rank, U: u, V: v}
		}
	}
	return nil
}

func dot(x, y []float64) float64 {
	var s float64
	for i, xi := range x {
		s += xi * y[i]
	}
	return s
}

func argmaxAbs(x []float64) int {
	best, bi := -1.0, 0
	for i, xi := range x {
		if a := math.Abs(xi); a > best {
			best, bi = a, i
		}
	}
	return bi
}

// FrobNorm returns the Frobenius norm of the m×n column-major block a (lda).
func FrobNorm(m, n int, a []float64, lda int) float64 {
	var s float64
	for j := 0; j < n; j++ {
		for _, v := range a[j*lda : j*lda+m] {
			s += v * v
		}
	}
	return math.Sqrt(s)
}

// FrobDiff returns ‖A − B‖_F for two m×n column-major blocks.
func FrobDiff(m, n int, a []float64, lda int, b []float64, ldb int) float64 {
	var s float64
	for j := 0; j < n; j++ {
		ca := a[j*lda : j*lda+m]
		cb := b[j*ldb : j*ldb+m]
		for i := range ca {
			d := ca[i] - cb[i]
			s += d * d
		}
	}
	return math.Sqrt(s)
}
