package multifrontal

import (
	"math"
	"testing"

	"github.com/pastix-go/pastix/internal/cost"
	"github.com/pastix-go/pastix/internal/gen"
	"github.com/pastix-go/pastix/internal/order"
	"github.com/pastix-go/pastix/internal/part"
	"github.com/pastix-go/pastix/internal/solver"
	"github.com/pastix-go/pastix/internal/sparse"
)

func analyzeMF(t *testing.T, a *sparse.SymMatrix, P int) *solver.Analysis {
	t.Helper()
	// PSPASES-like configuration: MeTiS-style ordering, fronts are whole
	// supernodes (no splitting), no 1D/2D switch (the multifrontal code has
	// its own subcube parallelism).
	an, err := solver.Analyze(a, solver.Options{
		P:        P,
		Ordering: order.Options{Method: order.MetisLike, LeafSize: 30},
		Part:     part.Options{BlockSize: 1 << 20, Ratio2D: 1 << 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	return an
}

func TestSeqCholeskyFactorSolve(t *testing.T) {
	p, err := gen.Generate("THREAD", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	a := p.A
	an := analyzeMF(t, a, 1)
	fs, err := FactorizeSeq(an)
	if err != nil {
		t.Fatal(err)
	}
	x, b := gen.RHSForSolution(a)
	pb := make([]float64, len(b))
	for newI, old := range an.Perm {
		pb[newI] = b[old]
	}
	px := SolveChol(fs, pb)
	maxErr := 0.0
	for newI, old := range an.Perm {
		if e := math.Abs(px[newI] - x[old]); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 1e-8 {
		t.Fatalf("max error %g", maxErr)
	}
}

func TestCholeskyDiagonalPositive(t *testing.T) {
	a := gen.Laplacian2D(12, 12)
	an := analyzeMF(t, a, 1)
	fs, err := FactorizeSeq(an)
	if err != nil {
		t.Fatal(err)
	}
	for k := range an.Sym.CB {
		for _, d := range fs.Diag(k) {
			if d <= 0 {
				t.Fatalf("non-positive Cholesky diagonal %g in cb %d", d, k)
			}
		}
	}
}

func TestParallelMatchesSequentialMF(t *testing.T) {
	a := gen.Laplacian2D(18, 18)
	ref, err := FactorizeSeq(analyzeMF(t, a, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, P := range []int{2, 4, 8} {
		an := analyzeMF(t, a, P)
		got, err := FactorizePar(an)
		if err != nil {
			t.Fatalf("P=%d: %v", P, err)
		}
		for k := range ref.Data {
			for i := range ref.Data[k] {
				if math.Abs(ref.Data[k][i]-got.Data[k][i]) > 1e-10*(1+math.Abs(ref.Data[k][i])) {
					t.Fatalf("P=%d cell %d elem %d: %g vs %g", P, k, i, ref.Data[k][i], got.Data[k][i])
				}
			}
		}
	}
}

func TestParallelMFOnGeneratedProblem(t *testing.T) {
	p, err := gen.Generate("SHIP001", 0.03)
	if err != nil {
		t.Fatal(err)
	}
	an := analyzeMF(t, p.A, 4)
	fs, err := FactorizePar(an)
	if err != nil {
		t.Fatal(err)
	}
	x, b := gen.RHSForSolution(p.A)
	pb := make([]float64, len(b))
	for newI, old := range an.Perm {
		pb[newI] = b[old]
	}
	px := SolveChol(fs, pb)
	for newI, old := range an.Perm {
		if math.Abs(px[newI]-x[old]) > 1e-8 {
			t.Fatalf("x mismatch at %d", old)
		}
	}
}

func TestSimulateTimeScales(t *testing.T) {
	// Needs a realistically sized problem: on the SP2 profile, tiny problems
	// legitimately do not speed up (latency dominates), exactly as on the
	// real machine.
	p, err := gen.Generate("QUER", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	mach := cost.SP2()
	t1 := SimulateTime(analyzeMF(t, p.A, 1), mach)
	t4 := SimulateTime(analyzeMF(t, p.A, 4), mach)
	t16 := SimulateTime(analyzeMF(t, p.A, 16), mach)
	if t1 <= 0 {
		t.Fatal("sequential simulated time must be positive")
	}
	if t4 >= t1 {
		t.Fatalf("P=4 (%g) not faster than P=1 (%g)", t4, t1)
	}
	if t16 >= t4 {
		t.Fatalf("P=16 (%g) not faster than P=4 (%g)", t16, t4)
	}
	if t1/t16 > 16 {
		t.Fatalf("superlinear baseline speedup %g", t1/t16)
	}
}

func TestFrontRowsMatchStorageLayout(t *testing.T) {
	a := gen.Laplacian2D(10, 10)
	an := analyzeMF(t, a, 1)
	fs := solver.NewFactorsLazy(an.Sym)
	for k := range an.Sym.CB {
		rows := frontRows(an, k)
		if len(rows) != fs.LD[k] {
			t.Fatalf("front %d has %d rows, storage ld %d", k, len(rows), fs.LD[k])
		}
		for i, r := range rows {
			if lr := fs.LocateRow(k, r); lr != i {
				t.Fatalf("front %d row %d at %d, storage locates %d", k, r, i, lr)
			}
		}
	}
}
