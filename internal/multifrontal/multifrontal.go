// Package multifrontal implements the PSPASES-like baseline the paper
// compares against (Joshi, Karypis, Kumar, Gupta & Gustavson): a parallel
// multifrontal Cholesky (LLᵀ) factorization with subtree-to-subcube
// proportional mapping.
//
// Three entry points matter:
//
//   - FactorizeSeq: sequential multifrontal LLᵀ (reference numerics).
//   - FactorizePar: executed parallel multifrontal on goroutine processors —
//     subtrees run concurrently, each front is factored by one processor,
//     and child update matrices travel by message to the parent's owner.
//   - SimulateTime: the modelled parallel time used in Table 2, where a
//     multi-candidate front is gang-scheduled on its processor subcube with
//     a Gupta–Karypis-style parallel dense-kernel model. This is what makes
//     the baseline competitive at scale, as real PSPASES 2D fronts are.
//
// The baseline reuses the same analysis pipeline as PaStiX (with the
// MeTiS-like ordering, PSPASES's default) and stores L in the same block
// layout, with explicit diagonal instead of the unit-diagonal/D convention.
package multifrontal

import (
	"fmt"
	"math"
	"sort"

	"github.com/pastix-go/pastix/internal/blas"
	"github.com/pastix-go/pastix/internal/cost"
	"github.com/pastix-go/pastix/internal/mpsim"
	"github.com/pastix-go/pastix/internal/solver"
)

// front is the dense frontal matrix of one supernode: rows/cols indexed by
// the global row list (supernode columns first, then the off-diagonal rows).
type front struct {
	rows []int     // global indices, ascending
	data []float64 // n×n column-major, lower triangle meaningful
}

func (f *front) n() int { return len(f.rows) }

func (f *front) loc(row int) int {
	i := sort.SearchInts(f.rows, row)
	if i >= len(f.rows) || f.rows[i] != row {
		return -1
	}
	return i
}

// frontRows builds the global row list of cell k from the symbol.
func frontRows(an *solver.Analysis, k int) []int {
	cb := &an.Sym.CB[k]
	rows := make([]int, 0, cb.Width()+cb.RowsBelow())
	for j := cb.Cols[0]; j < cb.Cols[1]; j++ {
		rows = append(rows, j)
	}
	for _, b := range cb.Blocks {
		for r := b.FirstRow; r < b.LastRow; r++ {
			rows = append(rows, r)
		}
	}
	return rows
}

// assembleFront scatters A's entries of cell k into a fresh front.
func assembleFront(an *solver.Analysis, k int) (*front, error) {
	f := &front{rows: frontRows(an, k)}
	n := f.n()
	f.data = make([]float64, n*n)
	a := an.A
	cb := &an.Sym.CB[k]
	for j := cb.Cols[0]; j < cb.Cols[1]; j++ {
		lc := j - cb.Cols[0]
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			lr := f.loc(a.RowIdx[p])
			if lr < 0 {
				return nil, fmt.Errorf("multifrontal: entry (%d,%d) outside front %d", a.RowIdx[p], j, k)
			}
			f.data[lr+lc*n] += a.Val[p]
		}
	}
	return f, nil
}

// extendAdd adds the child's update matrix (rows urows, dense lower n×n
// column-major starting at the update's own indexing) into parent front pf.
func extendAdd(pf *front, urows []int, u []float64) error {
	n := len(urows)
	pn := pf.n()
	locs := make([]int, n)
	for i, r := range urows {
		locs[i] = pf.loc(r)
		if locs[i] < 0 {
			return fmt.Errorf("multifrontal: update row %d not in parent front", r)
		}
	}
	for j := 0; j < n; j++ {
		pj := locs[j]
		for i := j; i < n; i++ {
			pf.data[locs[i]+pj*pn] += u[i+j*n]
		}
	}
	return nil
}

// factorFront runs the dense partial LLᵀ on the first w columns and returns
// the Schur update (rows[w:], dense lower, column-major r×r).
func factorFront(f *front, w int) ([]float64, error) {
	n := f.n()
	if err := blas.Cholesky(w, f.data, n); err != nil {
		return nil, err
	}
	r := n - w
	if r == 0 {
		return nil, nil
	}
	// Panel solve: rows [w,n) of the first w columns.
	blas.TrsmRightLTrans(r, w, f.data, n, f.data[w:], n)
	// Schur complement U = F₂₂ − L₂₁·L₂₁ᵀ. F₂₂ carries the contributions of
	// the descendants accumulated by extend-add; dropping it would lose every
	// update that skips a tree level.
	u := make([]float64, r*r)
	for j := 0; j < r; j++ {
		src := f.data[(w+j)*n+w:]
		for i := j; i < r; i++ {
			u[i+j*r] = src[i]
		}
	}
	blas.SyrkLowerNT(r, w, f.data[w:], n, u, r)
	return u, nil
}

// storeFront copies the factored columns of the front into the shared block
// layout (explicit diagonal: L with real diagonal entries).
func storeFront(fs *solver.Factors, k int, f *front) {
	w := fs.Sym.CB[k].Width()
	ld := fs.LD[k]
	n := f.n()
	fs.EnsureCell(k)
	for j := 0; j < w; j++ {
		copy(fs.Data[k][j+j*ld:(j+1)*ld], f.data[j+j*n:j*n+n])
	}
}

// FactorizeSeq runs the sequential multifrontal LLᵀ factorization over the
// analysis (built with any ordering; PSPASES defaults to the MeTiS-like
// configuration).
func FactorizeSeq(an *solver.Analysis) (*solver.Factors, error) {
	sym := an.Sym
	fs := solver.NewFactorsLazy(sym)
	ncb := sym.NumCB()
	pending := make(map[int][]childUpdate, ncb)
	for k := 0; k < ncb; k++ {
		f, err := assembleFront(an, k)
		if err != nil {
			return nil, err
		}
		for _, cu := range pending[k] {
			if err := extendAdd(f, cu.rows, cu.u); err != nil {
				return nil, err
			}
		}
		delete(pending, k)
		w := sym.CB[k].Width()
		u, err := factorFront(f, w)
		if err != nil {
			return nil, fmt.Errorf("multifrontal: front %d: %w", k, err)
		}
		storeFront(fs, k, f)
		if u != nil {
			p := sym.Parent[k]
			pending[p] = append(pending[p], childUpdate{rows: f.rows[w:], u: u})
		}
	}
	return fs, nil
}

type childUpdate struct {
	rows []int
	u    []float64
}

// SolveChol solves A·x = b with the explicit-diagonal LLᵀ factor in the
// block layout (forward then backward substitution). b is in the PERMUTED
// ordering.
func SolveChol(fs *solver.Factors, b []float64) []float64 {
	sym := fs.Sym
	x := append([]float64(nil), b...)
	for k := range sym.CB {
		cb := &sym.CB[k]
		w := cb.Width()
		ld := fs.LD[k]
		xk := x[cb.Cols[0]:cb.Cols[1]]
		blas.TrsvLower(w, fs.Data[k], ld, xk)
		for bi := range cb.Blocks {
			blk := &cb.Blocks[bi]
			blas.GemvN(blk.Rows(), w, fs.Data[k][fs.BlockOff[k][bi]:], ld,
				xk, x[blk.FirstRow:blk.LastRow])
		}
	}
	for k := len(sym.CB) - 1; k >= 0; k-- {
		cb := &sym.CB[k]
		w := cb.Width()
		ld := fs.LD[k]
		xk := x[cb.Cols[0]:cb.Cols[1]]
		for bi := range cb.Blocks {
			blk := &cb.Blocks[bi]
			blas.GemvT(blk.Rows(), w, fs.Data[k][fs.BlockOff[k][bi]:], ld,
				x[blk.FirstRow:blk.LastRow], xk)
		}
		blas.TrsvLowerTrans(w, fs.Data[k], ld, xk)
	}
	return x
}

// ownerOf maps each front to one processor: the first candidate of its
// subtree interval (subtree-to-subcube: a subtree's fronts cluster on its
// subcube; the top fronts land on the subcube leader).
func ownerOf(an *solver.Analysis) []int {
	ncb := an.Sym.NumCB()
	owner := make([]int, ncb)
	for k := 0; k < ncb; k++ {
		owner[k] = an.Mapping.CandLo[k]
	}
	return owner
}

// FactorizePar runs the executed parallel multifrontal factorization on
// an.Mapping.P goroutine processors. Each front is factored by its owner;
// child update matrices are sent to the parent's owner.
func FactorizePar(an *solver.Analysis) (*solver.Factors, error) {
	sym := an.Sym
	P := an.Mapping.P
	if P == 1 {
		return FactorizeSeq(an)
	}
	owner := ownerOf(an)
	ncb := sym.NumCB()
	// Remote children per front (to know how many update messages to await).
	nRemote := make([]int, ncb)
	for k := 0; k < ncb; k++ {
		if p := sym.Parent[k]; p != -1 && owner[p] != owner[k] && sym.CB[k].RowsBelow() > 0 {
			nRemote[p]++
		}
	}
	stores := make([]*solver.Factors, P)
	comm := mpsim.NewComm(P)
	err := comm.Run(func(p int) error {
		fs := solver.NewFactorsLazy(sym)
		stores[p] = fs
		pending := make(map[int][]childUpdate)
		got := make(map[int]int)
		for k := 0; k < ncb; k++ {
			if owner[k] != p {
				continue
			}
			f, err := assembleFront(an, k)
			if err != nil {
				return err
			}
			for _, cu := range pending[k] {
				if err := extendAdd(f, cu.rows, cu.u); err != nil {
					return err
				}
			}
			delete(pending, k)
			for got[k] < nRemote[k] {
				m, err := comm.Recv(p)
				if err != nil {
					return err
				}
				// Message data: [nrows | rows... | dense r×r update].
				nr := int(m.Data[0])
				rows := make([]int, nr)
				for i := 0; i < nr; i++ {
					rows[i] = int(m.Data[1+i])
				}
				u := m.Data[1+nr:]
				if m.Tag == k {
					if err := extendAdd(f, rows, u); err != nil {
						return err
					}
				} else {
					pending[m.Tag] = append(pending[m.Tag], childUpdate{rows: rows, u: u})
				}
				got[m.Tag]++
			}
			w := sym.CB[k].Width()
			u, err := factorFront(f, w)
			if err != nil {
				return err
			}
			storeFront(fs, k, f)
			if u == nil {
				continue
			}
			par := sym.Parent[k]
			urows := f.rows[w:]
			if owner[par] == p {
				pending[par] = append(pending[par], childUpdate{rows: urows, u: u})
				continue
			}
			msg := make([]float64, 1+len(urows)+len(u))
			msg[0] = float64(len(urows))
			for i, r := range urows {
				msg[1+i] = float64(r)
			}
			copy(msg[1+len(urows):], u)
			comm.Send(mpsim.Message{Kind: 1, Src: p, Dst: owner[par], Tag: par, Data: msg})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Gather.
	out := solver.NewFactors(sym)
	for k := 0; k < ncb; k++ {
		src := stores[owner[k]].Data[k]
		copy(out.Data[k], src)
	}
	return out, nil
}

// SimulateTime models the parallel multifrontal factorization time on the
// machine profile: subtree-to-subcube gang scheduling where a front with q
// candidate processors runs its dense kernels at q-way parallel efficiency
// following a Gupta–Karypis-style model (perfect work split plus a
// communication term ∝ front area / √q plus per-level startup), and child
// updates crossing subcube boundaries pay bandwidth.
func SimulateTime(an *solver.Analysis, mach *cost.Machine) float64 {
	sym := an.Sym
	P := an.Mapping.P
	ncb := sym.NumCB()
	chol := mach.CholRatio()
	seqWork := func(k int) float64 {
		w := sym.CB[k].Width()
		r := sym.CB[k].RowsBelow()
		t := mach.FactorTime(w) + mach.TrsmTime(r, w)
		if r > 0 {
			t += mach.GemmTime(r, r, w) / 2
			t += mach.AddTime(r * (r + 1) / 2) // extend-add of the update
		}
		return t / chol
	}
	frontPar := func(k, q int) float64 {
		seq := seqWork(k)
		if q <= 1 {
			return seq
		}
		w := sym.CB[k].Width()
		r := sym.CB[k].RowsBelow()
		n := float64(w + r)
		// Word-transfer term of 2D parallel dense Cholesky, ~c·n²/√q words
		// with c≈0.25 once send/compute overlap is accounted for.
		comm := 0.25 * n * n * 8 / math.Sqrt(float64(q)) / mach.Bandwidth
		steps := float64(w)/64 + 1
		return seq/float64(q) + comm + mach.Latency*steps*math.Log2(float64(q))
	}
	timer := make([]float64, P)
	complete := make([]float64, ncb)
	for k := 0; k < ncb; k++ {
		lo, hi := an.Mapping.CandLo[k], an.Mapping.CandHi[k]
		q := hi - lo
		ready := 0.0
		for q2 := lo; q2 < hi; q2++ {
			if timer[q2] > ready {
				ready = timer[q2]
			}
		}
		// Children completion (+ redistribution when subcubes differ).
		for c := 0; c < k; c++ {
			if sym.Parent[c] != k {
				continue
			}
			at := complete[c]
			if an.Mapping.CandLo[c] != lo || an.Mapping.CandHi[c] != hi {
				r := sym.CB[c].RowsBelow()
				at += mach.SendTime(r * (r + 1) / 2 * 8)
			}
			if at > ready {
				ready = at
			}
		}
		dur := frontPar(k, q)
		complete[k] = ready + dur
		for q2 := lo; q2 < hi; q2++ {
			timer[q2] = complete[k]
		}
	}
	mk := 0.0
	for _, t := range timer {
		if t > mk {
			mk = t
		}
	}
	return mk
}
