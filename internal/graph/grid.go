package graph

// Grid2D returns the 5-point-stencil graph of an nx×ny grid
// (vertex (i,j) has index i + j*nx).
func Grid2D(nx, ny int) *Graph {
	n := nx * ny
	ptr := make([]int, n+1)
	adj := make([]int, 0, 4*n)
	idx := func(i, j int) int { return i + j*nx }
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			if j > 0 {
				adj = append(adj, idx(i, j-1))
			}
			if i > 0 {
				adj = append(adj, idx(i-1, j))
			}
			if i < nx-1 {
				adj = append(adj, idx(i+1, j))
			}
			if j < ny-1 {
				adj = append(adj, idx(i, j+1))
			}
			ptr[idx(i, j)+1] = len(adj)
		}
	}
	return FromCSR(n, ptr, adj)
}

// Grid3D returns the 7-point-stencil graph of an nx×ny×nz grid
// (vertex (i,j,k) has index i + j*nx + k*nx*ny).
func Grid3D(nx, ny, nz int) *Graph {
	n := nx * ny * nz
	ptr := make([]int, n+1)
	adj := make([]int, 0, 6*n)
	idx := func(i, j, k int) int { return i + j*nx + k*nx*ny }
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				if k > 0 {
					adj = append(adj, idx(i, j, k-1))
				}
				if j > 0 {
					adj = append(adj, idx(i, j-1, k))
				}
				if i > 0 {
					adj = append(adj, idx(i-1, j, k))
				}
				if i < nx-1 {
					adj = append(adj, idx(i+1, j, k))
				}
				if j < ny-1 {
					adj = append(adj, idx(i, j+1, k))
				}
				if k < nz-1 {
					adj = append(adj, idx(i, j, k+1))
				}
				ptr[idx(i, j, k)+1] = len(adj)
			}
		}
	}
	return FromCSR(n, ptr, adj)
}

// Grid3D27 returns the 27-point-stencil graph of an nx×ny×nz grid: each
// vertex is adjacent to all grid vertices in the surrounding 3×3×3 cube.
// This models trilinear hexahedral finite elements.
func Grid3D27(nx, ny, nz int) *Graph {
	n := nx * ny * nz
	ptr := make([]int, n+1)
	adj := make([]int, 0, 26*n)
	idx := func(i, j, k int) int { return i + j*nx + k*nx*ny }
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				for dk := -1; dk <= 1; dk++ {
					kk := k + dk
					if kk < 0 || kk >= nz {
						continue
					}
					for dj := -1; dj <= 1; dj++ {
						jj := j + dj
						if jj < 0 || jj >= ny {
							continue
						}
						for di := -1; di <= 1; di++ {
							ii := i + di
							if ii < 0 || ii >= nx {
								continue
							}
							if di == 0 && dj == 0 && dk == 0 {
								continue
							}
							adj = append(adj, idx(ii, jj, kk))
						}
					}
				}
				ptr[idx(i, j, k)+1] = len(adj)
			}
		}
	}
	return FromCSR(n, ptr, adj)
}
