package graph

import (
	"math/rand"
	"testing"
)

// dofExpand replicates each vertex of g into dof copies: copies of a node
// are mutually adjacent and adjacent to all copies of neighbouring nodes —
// exactly the structure of multi-DOF finite element matrices.
func dofExpand(g *Graph, dof int) *Graph {
	adj := make([][]int, g.N*dof)
	for v := 0; v < g.N; v++ {
		for a := 0; a < dof; a++ {
			for b := a + 1; b < dof; b++ {
				adj[v*dof+a] = append(adj[v*dof+a], v*dof+b)
			}
			for _, u := range g.Neighbors(v) {
				for b := 0; b < dof; b++ {
					adj[v*dof+a] = append(adj[v*dof+a], u*dof+b)
				}
			}
		}
	}
	return New(adj)
}

func TestCompressRecoversDOFStructure(t *testing.T) {
	base := Grid2D(6, 5)
	for _, dof := range []int{2, 3, 6} {
		g := dofExpand(base, dof)
		cg, groups := CompressIndistinguishable(g)
		if cg.N != base.N {
			t.Fatalf("dof=%d: compressed to %d vertices, want %d", dof, cg.N, base.N)
		}
		if err := cg.Validate(); err != nil {
			t.Fatal(err)
		}
		for _, grp := range groups {
			if len(grp) != dof {
				t.Fatalf("dof=%d: group size %d", dof, len(grp))
			}
		}
		// The compressed graph must be isomorphic to the base grid: same
		// degree sequence suffices as a smoke check, plus total weight.
		if cg.TotalWeight() != g.N {
			t.Fatalf("weights lost: %d want %d", cg.TotalWeight(), g.N)
		}
		for cv := 0; cv < cg.N; cv++ {
			wantDeg := base.Degree(groups[cv][0] / dof)
			if cg.Degree(cv) != wantDeg {
				t.Fatalf("dof=%d: compressed degree %d want %d", dof, cg.Degree(cv), wantDeg)
			}
		}
	}
}

func TestCompressNoOpOnIncompressible(t *testing.T) {
	g := Grid2D(7, 7) // no two grid vertices share a closed neighbourhood
	cg, groups := CompressIndistinguishable(g)
	if cg.N != g.N {
		t.Fatalf("grid compressed from %d to %d", g.N, cg.N)
	}
	for _, grp := range groups {
		if len(grp) != 1 {
			t.Fatal("spurious grouping")
		}
	}
}

func TestCompressGroupsArePartition(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(25)
		adj := make([][]int, n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					adj[i] = append(adj[i], j)
				}
			}
		}
		g := New(adj)
		_, groups := CompressIndistinguishable(g)
		seen := make([]bool, n)
		for _, grp := range groups {
			for _, v := range grp {
				if seen[v] {
					t.Fatal("vertex in two groups")
				}
				seen[v] = true
			}
		}
		for v := 0; v < n; v++ {
			if !seen[v] {
				t.Fatalf("vertex %d unassigned", v)
			}
		}
		// Every group must truly be indistinguishable: closed neighbourhoods
		// coincide.
		for _, grp := range groups {
			for i := 1; i < len(grp); i++ {
				a, b := grp[0], grp[i]
				if !g.HasEdge(a, b) {
					t.Fatalf("grouped non-adjacent %d,%d", a, b)
				}
				na := append([]int{a}, g.Neighbors(a)...)
				nb := append([]int{b}, g.Neighbors(b)...)
				set := make(map[int]bool)
				for _, x := range na {
					set[x] = true
				}
				for _, x := range nb {
					if !set[x] {
						t.Fatalf("closed neighbourhoods differ for %d,%d", a, b)
					}
				}
				if len(na) != len(nb) {
					t.Fatalf("closed neighbourhood sizes differ for %d,%d", a, b)
				}
			}
		}
	}
}
