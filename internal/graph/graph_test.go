package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func pathGraph(n int) *Graph {
	adj := make([][]int, n)
	for i := 0; i < n-1; i++ {
		adj[i] = append(adj[i], i+1)
	}
	return New(adj)
}

func TestNewSymmetrizes(t *testing.T) {
	g := New([][]int{{1, 2, 2}, {}, {0}})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) != 2 || g.Degree(1) != 1 || g.Degree(2) != 1 {
		t.Fatalf("wrong degrees: %v", g.Ptr)
	}
	if !g.HasEdge(1, 0) {
		t.Fatal("edge (1,0) missing after symmetrization")
	}
	if g.HasEdge(1, 2) {
		t.Fatal("spurious edge (1,2)")
	}
}

func TestNewRejectsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range edge")
		}
	}()
	New([][]int{{5}})
}

func TestNewDropsSelfLoops(t *testing.T) {
	g := New([][]int{{0, 1}, {1}})
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Fatalf("self loops not removed: degrees %d,%d", g.Degree(0), g.Degree(1))
	}
}

func TestGrid2DStructure(t *testing.T) {
	g := Grid2D(3, 4)
	if g.N != 12 {
		t.Fatalf("n=%d", g.N)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Corner vertex 0 has 2 neighbours, interior vertex (1,1)=4 has 4.
	if g.Degree(0) != 2 {
		t.Fatalf("corner degree %d", g.Degree(0))
	}
	if g.Degree(4) != 4 {
		t.Fatalf("interior degree %d", g.Degree(4))
	}
	// Edge count of grid: nx*(ny-1)+ny*(nx-1) wait: horizontal edges (nx-1)*ny, vertical nx*(ny-1).
	want := (3-1)*4 + 3*(4-1)
	if g.NumEdges() != want {
		t.Fatalf("edges=%d want %d", g.NumEdges(), want)
	}
}

func TestGrid3DStructure(t *testing.T) {
	g := Grid3D(3, 3, 3)
	if g.N != 27 {
		t.Fatalf("n=%d", g.N)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Degree(13) != 6 { // center
		t.Fatalf("center degree %d", g.Degree(13))
	}
	if g.Degree(0) != 3 { // corner
		t.Fatalf("corner degree %d", g.Degree(0))
	}
}

func TestGrid3D27Structure(t *testing.T) {
	g := Grid3D27(3, 3, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Degree(13) != 26 {
		t.Fatalf("center degree %d", g.Degree(13))
	}
	if g.Degree(0) != 7 {
		t.Fatalf("corner degree %d", g.Degree(0))
	}
}

func TestBFSLevels(t *testing.T) {
	g := pathGraph(5)
	order, level := g.BFS(0, nil, 0)
	if len(order) != 5 {
		t.Fatalf("visited %d", len(order))
	}
	for i := 0; i < 5; i++ {
		if level[i] != i {
			t.Fatalf("level[%d]=%d", i, level[i])
		}
	}
}

func TestBFSMasked(t *testing.T) {
	g := pathGraph(5)
	mask := []int{7, 7, 0, 7, 7} // vertex 2 excluded
	order, level := g.BFS(0, mask, 7)
	if len(order) != 2 {
		t.Fatalf("visited %d, want 2 (blocked by mask)", len(order))
	}
	if level[3] != -1 || level[4] != -1 {
		t.Fatal("reached past masked vertex")
	}
}

func TestPseudoPeripheralPath(t *testing.T) {
	g := pathGraph(10)
	v, h := g.PseudoPeripheral(5, nil, 0)
	if v != 0 && v != 9 {
		t.Fatalf("pseudo-peripheral of path should be an endpoint, got %d", v)
	}
	if h != 9 {
		t.Fatalf("height %d want 9", h)
	}
}

func TestComponents(t *testing.T) {
	// Two disjoint paths: 0-1-2 and 3-4.
	g := New([][]int{{1}, {2}, {}, {4}, {}})
	comp, n := g.Components(nil, nil, 0)
	if n != 2 {
		t.Fatalf("ncomp=%d", n)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatal("first component split")
	}
	if comp[3] != comp[4] || comp[3] == comp[0] {
		t.Fatal("second component wrong")
	}
}

func TestComponentsMasked(t *testing.T) {
	g := pathGraph(5)
	mask := []int{1, 1, 0, 1, 1}
	comp, n := g.Components(nil, mask, 1)
	if n != 2 {
		t.Fatalf("ncomp=%d want 2", n)
	}
	if comp[2] != -1 {
		t.Fatal("masked vertex assigned a component")
	}
}

func TestSubgraph(t *testing.T) {
	g := Grid2D(4, 4)
	verts := []int{0, 1, 4, 5}
	sub, l2g := g.Subgraph(verts)
	if sub.N != 4 {
		t.Fatalf("n=%d", sub.N)
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	if !sort.IntsAreSorted(l2g) {
		t.Fatal("loc2glob not sorted")
	}
	// 2x2 block has 4 edges.
	if sub.NumEdges() != 4 {
		t.Fatalf("edges=%d", sub.NumEdges())
	}
}

func TestHaloSubgraph(t *testing.T) {
	g := Grid2D(4, 4)
	verts := []int{0, 1, 4, 5} // top-left 2x2 block
	sub, l2g, nInner := g.HaloSubgraph(verts)
	if nInner != 4 {
		t.Fatalf("nInner=%d", nInner)
	}
	// Halo of the 2x2 corner block: vertices 2, 6, 8, 9.
	halo := l2g[nInner:]
	want := []int{2, 6, 8, 9}
	if len(halo) != len(want) {
		t.Fatalf("halo %v want %v", halo, want)
	}
	for i := range want {
		if halo[i] != want[i] {
			t.Fatalf("halo %v want %v", halo, want)
		}
	}
	// Halo-halo edges must be absent: vertices 8 and 9 are adjacent in g but
	// both are halo.
	li8, li9 := -1, -1
	for i, v := range l2g {
		if v == 8 {
			li8 = i
		}
		if v == 9 {
			li9 = i
		}
	}
	for _, u := range sub.Neighbors(li8) {
		if u == li9 {
			t.Fatal("halo-halo edge present")
		}
	}
}

func TestCompress(t *testing.T) {
	g := Grid2D(4, 1) // path of 4
	part := []int{0, 0, 1, 1}
	cg := g.Compress(part, 2)
	if cg.N != 2 {
		t.Fatalf("n=%d", cg.N)
	}
	if cg.VWgt[0] != 2 || cg.VWgt[1] != 2 {
		t.Fatalf("weights %v", cg.VWgt)
	}
	if !cg.HasEdge(0, 1) {
		t.Fatal("parts should be adjacent")
	}
	if err := cg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func randomGraph(rng *rand.Rand, n int, density float64) *Graph {
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				adj[i] = append(adj[i], j)
			}
		}
	}
	return New(adj)
}

func TestValidateRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(40)
		g := randomGraph(rng, n, 0.2)
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestQuickSubgraphPreservesEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(30)
		g := randomGraph(r, n, 0.25)
		// Random subset.
		var verts []int
		for v := 0; v < n; v++ {
			if r.Float64() < 0.5 {
				verts = append(verts, v)
			}
		}
		if len(verts) == 0 {
			return true
		}
		sub, l2g := g.Subgraph(verts)
		// Every subgraph edge must exist in g and vice versa.
		for lv := 0; lv < sub.N; lv++ {
			for _, lu := range sub.Neighbors(lv) {
				if !g.HasEdge(l2g[lv], l2g[lu]) {
					return false
				}
			}
		}
		inSub := make(map[int]int)
		for i, v := range l2g {
			inSub[v] = i
		}
		for _, v := range verts {
			for _, u := range g.Neighbors(v) {
				if lu, ok := inSub[u]; ok {
					if !sub.HasEdge(inSub[v], lu) {
						return false
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPseudoPeripheralOnGrid(t *testing.T) {
	g := Grid3D(5, 5, 5)
	v, h := g.PseudoPeripheral(62, nil, 0) // start at center
	// A pseudo-peripheral vertex of the 5^3 grid should be a corner with
	// eccentricity 12 (Manhattan diameter).
	if h != 12 {
		t.Fatalf("height %d want 12 (found v=%d)", h, v)
	}
}
