// Package graph provides the adjacency-graph machinery used by the ordering
// and symbolic-factorization phases: compressed sparse row (CSR) symmetric
// graphs, traversals, pseudo-peripheral vertex search, induced subgraphs with
// halo, and vertex-weighted compressed graphs.
//
// A Graph represents the adjacency structure of a symmetric sparse matrix:
// vertex i is adjacent to j iff A[i][j] != 0, i != j. Self loops are never
// stored. All graphs in this package are undirected and stored symmetrically
// (both (i,j) and (j,i) appear).
package graph

import (
	"fmt"
	"sort"
)

// Graph is a symmetric adjacency structure in CSR form.
// The neighbours of vertex v are Adj[Ptr[v]:Ptr[v+1]].
type Graph struct {
	N   int   // number of vertices
	Ptr []int // length N+1
	Adj []int // length Ptr[N]

	// VWgt holds optional vertex weights. If nil every vertex has weight 1.
	// Compressed graphs carry the size of each merged vertex set here.
	VWgt []int
}

// New builds a graph from an adjacency list, symmetrizing and removing
// self-loops and duplicate edges.
func New(adj [][]int) *Graph {
	n := len(adj)
	sets := make([]map[int]struct{}, n)
	for i := range sets {
		sets[i] = make(map[int]struct{})
	}
	for u, nbrs := range adj {
		for _, v := range nbrs {
			if v == u {
				continue
			}
			if v < 0 || v >= n {
				panic(fmt.Sprintf("graph: edge (%d,%d) out of range n=%d", u, v, n))
			}
			sets[u][v] = struct{}{}
			sets[v][u] = struct{}{}
		}
	}
	g := &Graph{N: n, Ptr: make([]int, n+1)}
	for i := 0; i < n; i++ {
		g.Ptr[i+1] = g.Ptr[i] + len(sets[i])
	}
	g.Adj = make([]int, g.Ptr[n])
	for i := 0; i < n; i++ {
		p := g.Ptr[i]
		for v := range sets[i] {
			g.Adj[p] = v
			p++
		}
		sort.Ints(g.Adj[g.Ptr[i]:g.Ptr[i+1]])
	}
	return g
}

// FromCSR wraps existing CSR arrays without copying. The caller must
// guarantee symmetry, sorted rows and absence of self loops.
func FromCSR(n int, ptr, adj []int) *Graph {
	if len(ptr) != n+1 {
		panic("graph: ptr length must be n+1")
	}
	return &Graph{N: n, Ptr: ptr, Adj: adj}
}

// Degree returns the number of neighbours of v.
func (g *Graph) Degree(v int) int { return g.Ptr[v+1] - g.Ptr[v] }

// Neighbors returns the (sorted) adjacency slice of v. The slice aliases the
// graph storage and must not be modified.
func (g *Graph) Neighbors(v int) []int { return g.Adj[g.Ptr[v]:g.Ptr[v+1]] }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.Adj) / 2 }

// Weight returns the weight of vertex v (1 if the graph is unweighted).
func (g *Graph) Weight(v int) int {
	if g.VWgt == nil {
		return 1
	}
	return g.VWgt[v]
}

// TotalWeight returns the sum of all vertex weights.
func (g *Graph) TotalWeight() int {
	if g.VWgt == nil {
		return g.N
	}
	t := 0
	for _, w := range g.VWgt {
		t += w
	}
	return t
}

// Validate checks structural invariants (symmetry, sortedness, no loops).
func (g *Graph) Validate() error {
	if len(g.Ptr) != g.N+1 {
		return fmt.Errorf("graph: ptr length %d != n+1=%d", len(g.Ptr), g.N+1)
	}
	if g.Ptr[0] != 0 || g.Ptr[g.N] != len(g.Adj) {
		return fmt.Errorf("graph: ptr bounds invalid")
	}
	for v := 0; v < g.N; v++ {
		row := g.Neighbors(v)
		for i, u := range row {
			if u < 0 || u >= g.N {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbour %d", v, u)
			}
			if u == v {
				return fmt.Errorf("graph: self loop at %d", v)
			}
			if i > 0 && row[i-1] >= u {
				return fmt.Errorf("graph: row %d not strictly sorted", v)
			}
			if !g.HasEdge(u, v) {
				return fmt.Errorf("graph: edge (%d,%d) not symmetric", v, u)
			}
		}
	}
	return nil
}

// HasEdge reports whether u and v are adjacent (binary search on u's row).
func (g *Graph) HasEdge(u, v int) bool {
	row := g.Neighbors(u)
	i := sort.SearchInts(row, v)
	return i < len(row) && row[i] == v
}

// BFS runs a breadth-first search from root restricted to vertices with
// mask[v]==maskVal (pass mask==nil for the whole graph). It returns the
// visit order and the level (distance) of each visited vertex; level is -1
// for unvisited vertices.
func (g *Graph) BFS(root int, mask []int, maskVal int) (order []int, level []int) {
	level = make([]int, g.N)
	for i := range level {
		level[i] = -1
	}
	order = make([]int, 0, g.N)
	level[root] = 0
	order = append(order, root)
	for head := 0; head < len(order); head++ {
		v := order[head]
		for _, u := range g.Neighbors(v) {
			if level[u] >= 0 {
				continue
			}
			if mask != nil && mask[u] != maskVal {
				continue
			}
			level[u] = level[v] + 1
			order = append(order, u)
		}
	}
	return order, level
}

// PseudoPeripheral finds a vertex of (approximately) maximal eccentricity in
// the component of start, restricted to mask/maskVal, using the standard
// Gibbs-Poole-Stockmeyer iteration. It returns that vertex and the number of
// BFS levels rooted there.
func (g *Graph) PseudoPeripheral(start int, mask []int, maskVal int) (v int, height int) {
	v = start
	order, level := g.BFS(v, mask, maskVal)
	height = level[order[len(order)-1]]
	for iter := 0; iter < 8; iter++ {
		// Pick a minimum-degree vertex in the last level.
		last := order[len(order)-1]
		best := last
		for i := len(order) - 1; i >= 0 && level[order[i]] == level[last]; i-- {
			if g.Degree(order[i]) < g.Degree(best) {
				best = order[i]
			}
		}
		o2, l2 := g.BFS(best, mask, maskVal)
		h2 := l2[o2[len(o2)-1]]
		if h2 <= height {
			break
		}
		v, height, order, level = best, h2, o2, l2
	}
	return v, height
}

// Components labels connected components restricted to mask/maskVal over the
// given vertex set (nil = all vertices). It returns the component id of each
// vertex (-1 for vertices outside the mask) and the number of components.
func (g *Graph) Components(verts []int, mask []int, maskVal int) (comp []int, ncomp int) {
	comp = make([]int, g.N)
	for i := range comp {
		comp[i] = -1
	}
	inSet := func(v int) bool { return mask == nil || mask[v] == maskVal }
	scan := verts
	if scan == nil {
		scan = make([]int, g.N)
		for i := range scan {
			scan[i] = i
		}
	}
	queue := make([]int, 0, g.N)
	for _, s := range scan {
		if !inSet(s) || comp[s] >= 0 {
			continue
		}
		comp[s] = ncomp
		queue = append(queue[:0], s)
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, u := range g.Neighbors(v) {
				if comp[u] < 0 && inSet(u) {
					comp[u] = ncomp
					queue = append(queue, u)
				}
			}
		}
		ncomp++
	}
	return comp, ncomp
}

// Subgraph materializes the graph induced by verts. It returns the subgraph
// and local→global vertex numbering (which is just a copy of verts, sorted).
// Vertex weights are inherited.
func (g *Graph) Subgraph(verts []int) (*Graph, []int) {
	loc2glob := append([]int(nil), verts...)
	sort.Ints(loc2glob)
	glob2loc := make(map[int]int, len(loc2glob))
	for i, v := range loc2glob {
		glob2loc[v] = i
	}
	sub := &Graph{N: len(loc2glob), Ptr: make([]int, len(loc2glob)+1)}
	var adj []int
	for i, v := range loc2glob {
		for _, u := range g.Neighbors(v) {
			if lu, ok := glob2loc[u]; ok {
				adj = append(adj, lu)
			}
		}
		sub.Ptr[i+1] = len(adj)
	}
	sub.Adj = adj
	if g.VWgt != nil {
		sub.VWgt = make([]int, sub.N)
		for i, v := range loc2glob {
			sub.VWgt[i] = g.VWgt[v]
		}
	}
	return sub, loc2glob
}

// HaloSubgraph materializes the graph induced by verts plus its distance-1
// halo (neighbours outside verts). It returns the subgraph, local→global
// numbering, and nInner: locals [0,nInner) are the interior vertices and
// locals [nInner, N) are halo vertices. Interior vertices come first, each
// group sorted by global index.
func (g *Graph) HaloSubgraph(verts []int) (sub *Graph, loc2glob []int, nInner int) {
	inner := make(map[int]bool, len(verts))
	for _, v := range verts {
		inner[v] = true
	}
	haloSet := make(map[int]bool)
	for _, v := range verts {
		for _, u := range g.Neighbors(v) {
			if !inner[u] {
				haloSet[u] = true
			}
		}
	}
	innerSorted := append([]int(nil), verts...)
	sort.Ints(innerSorted)
	halo := make([]int, 0, len(haloSet))
	for v := range haloSet {
		halo = append(halo, v)
	}
	sort.Ints(halo)
	loc2glob = append(innerSorted, halo...)
	nInner = len(innerSorted)
	glob2loc := make(map[int]int, len(loc2glob))
	for i, v := range loc2glob {
		glob2loc[v] = i
	}
	sub = &Graph{N: len(loc2glob), Ptr: make([]int, len(loc2glob)+1)}
	var adj []int
	for i, v := range loc2glob {
		isHalo := i >= nInner
		for _, u := range g.Neighbors(v) {
			lu, ok := glob2loc[u]
			if !ok {
				continue
			}
			// Halo-halo edges are irrelevant to halo degrees of interior
			// vertices; keep only edges with at least one interior endpoint.
			if isHalo && lu >= nInner {
				continue
			}
			adj = append(adj, lu)
		}
		sub.Ptr[i+1] = len(adj)
	}
	sub.Adj = adj
	if g.VWgt != nil {
		sub.VWgt = make([]int, sub.N)
		for i, v := range loc2glob {
			sub.VWgt[i] = g.VWgt[v]
		}
	}
	return sub, loc2glob, nInner
}

// Compress builds the compressed (quotient) graph in which each part —
// part[v] in [0,nparts) — becomes a single vertex whose weight is the sum of
// the member weights, with an edge between parts p,q iff some member edge
// crosses them.
func (g *Graph) Compress(part []int, nparts int) *Graph {
	sets := make([]map[int]struct{}, nparts)
	wgt := make([]int, nparts)
	for i := range sets {
		sets[i] = make(map[int]struct{})
	}
	for v := 0; v < g.N; v++ {
		p := part[v]
		wgt[p] += g.Weight(v)
		for _, u := range g.Neighbors(v) {
			q := part[u]
			if q != p {
				sets[p][q] = struct{}{}
			}
		}
	}
	cg := &Graph{N: nparts, Ptr: make([]int, nparts+1), VWgt: wgt}
	for p := 0; p < nparts; p++ {
		cg.Ptr[p+1] = cg.Ptr[p] + len(sets[p])
	}
	cg.Adj = make([]int, cg.Ptr[nparts])
	for p := 0; p < nparts; p++ {
		i := cg.Ptr[p]
		for q := range sets[p] {
			cg.Adj[i] = q
			i++
		}
		sort.Ints(cg.Adj[cg.Ptr[p]:cg.Ptr[p+1]])
	}
	return cg
}
