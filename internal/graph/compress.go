package graph

import "sort"

// CompressIndistinguishable groups vertices with identical closed
// neighbourhoods (N(v) ∪ {v}) into single weighted vertices and returns the
// compressed graph plus the member list of each compressed vertex. Finite
// element problems with several unknowns per mesh node compress by the DOF
// factor, which is how Scotch keeps ordering cost independent of the DOF
// count; an ordering computed on the compressed graph expands to an ordering
// of the original graph with the same fill.
func CompressIndistinguishable(g *Graph) (*Graph, [][]int) {
	n := g.N
	// Hash the closed neighbourhood of each vertex (FNV-1a over sorted ids).
	hash := make([]uint64, n)
	for v := 0; v < n; v++ {
		h := uint64(1469598103934665603)
		mix := func(x int) {
			h ^= uint64(x)
			h *= 1099511628211
		}
		// Neighbors are sorted; merge v into its place for a canonical order.
		inserted := false
		for _, u := range g.Neighbors(v) {
			if !inserted && v < u {
				mix(v)
				inserted = true
			}
			mix(u)
		}
		if !inserted {
			mix(v)
		}
		hash[v] = h
	}
	byHash := make(map[uint64][]int)
	for v := 0; v < n; v++ {
		byHash[hash[v]] = append(byHash[hash[v]], v)
	}

	group := make([]int, n)
	for i := range group {
		group[i] = -1
	}
	var groups [][]int
	sameClosed := func(a, b int) bool {
		na, nb := g.Neighbors(a), g.Neighbors(b)
		if len(na) != len(nb) {
			return false
		}
		// Closed neighbourhoods equal ⇔ a,b adjacent and open neighbourhoods
		// agree outside {a,b}.
		i, j := 0, 0
		seenB, seenA := false, false
		for i < len(na) || j < len(nb) {
			var x, y int
			if i < len(na) {
				x = na[i]
			} else {
				x = n
			}
			if j < len(nb) {
				y = nb[j]
			} else {
				y = n
			}
			switch {
			case x == b && !seenB:
				seenB = true
				i++
			case y == a && !seenA:
				seenA = true
				j++
			case x == y:
				i++
				j++
			default:
				return false
			}
		}
		return seenA && seenB
	}
	// Deterministic group formation: scan vertices ascending.
	for v := 0; v < n; v++ {
		if group[v] >= 0 {
			continue
		}
		gid := len(groups)
		group[v] = gid
		members := []int{v}
		for _, u := range byHash[hash[v]] {
			if u <= v || group[u] >= 0 {
				continue
			}
			if sameClosed(v, u) {
				group[u] = gid
				members = append(members, u)
			}
		}
		sort.Ints(members)
		groups = append(groups, members)
	}
	return g.Compress(group, len(groups)), groups
}
