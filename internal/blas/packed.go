package blas

// Packed panel kernels for the solve phase: variants of the Gemv/Gemm/Trsv
// solve kernels whose matrix operand is stored contiguously (leading
// dimension == row count), as produced by PackPanel. Packing the factor's
// solve operands per level turns the strided per-supernode gathers of the
// sweeps into linear streams; the kernels themselves keep EXACTLY the
// floating-point operation order of their strided counterparts — including
// the xj == 0 skips, which cannot be dropped without risking a −0/+0 sign
// flip on cancelled entries — so a packed sweep is bitwise-identical to a
// strided one.

// PackPanel copies the m×n column-major panel src (leading dimension lds)
// into dst as a contiguous m×n panel (leading dimension m). dst must have
// room for m*n values.
func PackPanel(m, n int, src []float64, lds int, dst []float64) {
	for j := 0; j < n; j++ {
		copy(dst[j*m:j*m+m], src[j*lds:j*lds+m])
	}
}

// GemvNPacked computes y -= A·x with A m×n packed (lda == m). Bitwise-equal
// to GemvN(m, n, a, m, x, y).
func GemvNPacked(m, n int, a, x, y []float64) {
	y = y[:m]
	for j := 0; j < n; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		axpy(-xj, a[j*m:j*m+m], y)
	}
}

// GemvTPacked computes y -= Aᵀ·x with A m×n packed, x length m, y length n.
// Bitwise-equal to GemvT(m, n, a, m, x, y).
func GemvTPacked(m, n int, a, x, y []float64) {
	x = x[:m]
	for j := 0; j < n; j++ {
		col := a[j*m : j*m+m]
		s := 0.0
		for i, ci := range col {
			s += ci * x[i]
		}
		y[j] -= s
	}
}

// GemmNNPacked computes C -= A·B with A m×k packed, B k×n (ldb), C m×n
// (ldc). Each column is bitwise-equal to a GemvNPacked of that column.
func GemmNNPacked(m, n, k int, a []float64, b []float64, ldb int, c []float64, ldc int) {
	for j := 0; j < n; j++ {
		cj := c[j*ldc : j*ldc+m]
		bj := b[j*ldb : j*ldb+k]
		for l, blj := range bj {
			if blj == 0 {
				continue
			}
			axpy(-blj, a[l*m:l*m+m], cj)
		}
	}
}

// GemmTNPacked computes C -= Aᵀ·B with A k×m packed, B k×n (ldb), C m×n
// (ldc). Each column is bitwise-equal to a GemvTPacked of that column.
func GemmTNPacked(m, n, k int, a []float64, b []float64, ldb int, c []float64, ldc int) {
	for j := 0; j < n; j++ {
		cj := c[j*ldc : j*ldc+m]
		bj := b[j*ldb : j*ldb+k]
		for i := 0; i < m; i++ {
			ai := a[i*k : i*k+k]
			s := 0.0
			for l, al := range ai {
				s += al * bj[l]
			}
			cj[i] -= s
		}
	}
}

// TrsvLowerUnitPacked solves L·x = b in place, unit lower L n×n packed.
// Bitwise-equal to TrsvLowerUnit(n, l, n, x).
func TrsvLowerUnitPacked(n int, l, x []float64) {
	for j := 0; j < n; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		col := l[j*n : j*n+n]
		for i := j + 1; i < n; i++ {
			x[i] -= col[i] * xj
		}
	}
}

// TrsvLowerTransUnitPacked solves Lᵀ·x = b in place, unit lower L n×n
// packed. Bitwise-equal to TrsvLowerTransUnit(n, l, n, x).
func TrsvLowerTransUnitPacked(n int, l, x []float64) {
	for j := n - 1; j >= 0; j-- {
		s := x[j]
		col := l[j*n : j*n+n]
		for i := j + 1; i < n; i++ {
			s -= col[i] * x[i]
		}
		x[j] = s
	}
}

// TrsmLowerUnitPacked solves L·X = B in place for an n×nrhs panel B with
// leading dimension n (a packed RHS panel), one TrsvLowerUnitPacked per
// column.
func TrsmLowerUnitPacked(n, nrhs int, l, b []float64) {
	for r := 0; r < nrhs; r++ {
		TrsvLowerUnitPacked(n, l, b[r*n:r*n+n])
	}
}

// TrsmLTransUnitPacked solves Lᵀ·X = B in place for an n×nrhs packed panel.
func TrsmLTransUnitPacked(n, nrhs int, l, b []float64) {
	for r := 0; r < nrhs; r++ {
		TrsvLowerTransUnitPacked(n, l, b[r*n:r*n+n])
	}
}
