package blas

// Kernels for solving with blocks of right-hand sides (X and B are n×nrhs
// column-major panels). These give the solve phase BLAS3 shape when many
// right-hand sides are solved at once.

// TrsmLeftLowerUnit solves L·X = B in place: L n×n unit lower (ldl),
// B n×nrhs (ldb).
func TrsmLeftLowerUnit(n, nrhs int, l []float64, ldl int, b []float64, ldb int) {
	for r := 0; r < nrhs; r++ {
		TrsvLowerUnit(n, l, ldl, b[r*ldb:r*ldb+n])
	}
}

// TrsmLeftLTransUnit solves Lᵀ·X = B in place.
func TrsmLeftLTransUnit(n, nrhs int, l []float64, ldl int, b []float64, ldb int) {
	for r := 0; r < nrhs; r++ {
		TrsvLowerTransUnit(n, l, ldl, b[r*ldb:r*ldb+n])
	}
}

// GemmNN computes C -= A·B with A m×k (lda), B k×n (ldb), C m×n (ldc).
func GemmNN(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for j := 0; j < n; j++ {
		cj := c[j*ldc : j*ldc+m]
		bj := b[j*ldb : j*ldb+k]
		for l := 0; l < k; l++ {
			if bj[l] == 0 {
				continue
			}
			axpy(-bj[l], a[l*lda:l*lda+m], cj)
		}
	}
}

// GemmTN computes C -= Aᵀ·B with A k×m (lda), B k×n (ldb), C m×n (ldc).
func GemmTN(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for j := 0; j < n; j++ {
		cj := c[j*ldc : j*ldc+m]
		bj := b[j*ldb : j*ldb+k]
		for i := 0; i < m; i++ {
			ai := a[i*lda : i*lda+k]
			s := 0.0
			for l := 0; l < k; l++ {
				s += ai[l] * bj[l]
			}
			cj[i] -= s
		}
	}
}
