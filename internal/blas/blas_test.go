package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMat(rng *rand.Rand, m, n, ld int) []float64 {
	a := make([]float64, ld*n)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			a[i+j*ld] = rng.NormFloat64()
		}
	}
	return a
}

// randSPD returns a random SPD matrix (lower triangle meaningful).
func randSPD(rng *rand.Rand, n, ld int) []float64 {
	a := make([]float64, ld*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := rng.NormFloat64() * 0.3
			a[i+j*ld] = v
			a[j+i*ld] = v
		}
		a[i+i*ld] = float64(n) + rng.Float64()
	}
	return a
}

func maxDiff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

func TestGemmNTAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		m, n, k := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		lda, ldb, ldc := m+rng.Intn(3), n+rng.Intn(3), m+rng.Intn(3)
		a := randMat(rng, m, k, lda)
		b := randMat(rng, n, k, ldb)
		c := randMat(rng, m, n, ldc)
		want := append([]float64(nil), c...)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for l := 0; l < k; l++ {
					s += a[i+l*lda] * b[j+l*ldb]
				}
				want[i+j*ldc] -= s
			}
		}
		GemmNT(m, n, k, a, lda, b, ldb, c, ldc)
		if d := maxDiff(c, want); d > 1e-12 {
			t.Fatalf("trial %d: diff %g", trial, d)
		}
	}
}

func TestGemmNDTAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 20; trial++ {
		m, n, k := 1+rng.Intn(10), 1+rng.Intn(10), 1+rng.Intn(10)
		a := randMat(rng, m, k, m)
		b := randMat(rng, n, k, n)
		c := randMat(rng, m, n, m)
		d := make([]float64, k)
		for i := range d {
			d[i] = rng.NormFloat64()
		}
		want := append([]float64(nil), c...)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for l := 0; l < k; l++ {
					s += a[i+l*m] * d[l] * b[j+l*n]
				}
				want[i+j*m] -= s
			}
		}
		GemmNDT(m, n, k, a, m, d, b, n, c, m)
		if diff := maxDiff(c, want); diff > 1e-12 {
			t.Fatalf("trial %d: diff %g", trial, diff)
		}
	}
}

func TestSyrkLowerNT(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m, k := 8, 5
	a := randMat(rng, m, k, m)
	c := randMat(rng, m, m, m)
	want := append([]float64(nil), c...)
	for i := 0; i < m; i++ {
		for j := 0; j <= i; j++ {
			s := 0.0
			for l := 0; l < k; l++ {
				s += a[i+l*m] * a[j+l*m]
			}
			want[i+j*m] -= s
		}
	}
	SyrkLowerNT(m, k, a, m, c, m)
	for i := 0; i < m; i++ {
		for j := 0; j <= i; j++ {
			if math.Abs(c[i+j*m]-want[i+j*m]) > 1e-12 {
				t.Fatalf("(%d,%d)", i, j)
			}
		}
	}
}

func TestSyrkLowerNDT(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	m, k := 7, 4
	a := randMat(rng, m, k, m)
	d := make([]float64, k)
	for i := range d {
		d[i] = 1 + rng.Float64()
	}
	c := randMat(rng, m, m, m)
	want := append([]float64(nil), c...)
	for i := 0; i < m; i++ {
		for j := 0; j <= i; j++ {
			s := 0.0
			for l := 0; l < k; l++ {
				s += a[i+l*m] * d[l] * a[j+l*m]
			}
			want[i+j*m] -= s
		}
	}
	SyrkLowerNDT(m, k, a, m, d, c, m)
	for i := 0; i < m; i++ {
		for j := 0; j <= i; j++ {
			if math.Abs(c[i+j*m]-want[i+j*m]) > 1e-12 {
				t.Fatalf("(%d,%d)", i, j)
			}
		}
	}
}

func TestCholeskyReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(30)
		ld := n + rng.Intn(2)
		a := randSPD(rng, n, ld)
		orig := append([]float64(nil), a...)
		if err := Cholesky(n, a, ld); err != nil {
			t.Fatal(err)
		}
		// Check L·Lᵀ == orig (lower triangle).
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				s := 0.0
				for k := 0; k <= j; k++ {
					s += a[i+k*ld] * a[j+k*ld]
				}
				if math.Abs(s-orig[i+j*ld]) > 1e-9 {
					t.Fatalf("trial %d: (%d,%d) %g vs %g", trial, i, j, s, orig[i+j*ld])
				}
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := []float64{1, 2, 2, 1} // indefinite 2x2
	if err := Cholesky(2, a, 2); err == nil {
		t.Fatal("expected failure")
	}
}

func TestLDLTReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(30)
		ld := n
		a := randSPD(rng, n, ld)
		// Make it indefinite sometimes (LDLᵀ without pivoting still works for
		// strongly diagonally dominant symmetric matrices of either sign).
		if trial%2 == 1 {
			for i := 0; i < n; i++ {
				a[i+i*ld] = -a[i+i*ld]
			}
		}
		orig := append([]float64(nil), a...)
		if err := LDLT(n, a, ld); err != nil {
			t.Fatal(err)
		}
		// Reconstruct: (L D Lᵀ)_ij = Σ_k l_ik d_k l_jk with l_kk = 1.
		lval := func(i, k int) float64 {
			if i == k {
				return 1
			}
			return a[i+k*ld]
		}
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				s := 0.0
				for k := 0; k <= j; k++ {
					s += lval(i, k) * a[k+k*ld] * lval(j, k)
				}
				if math.Abs(s-orig[i+j*ld]) > 1e-8*(1+math.Abs(orig[i+j*ld])) {
					t.Fatalf("trial %d: (%d,%d) %g vs %g", trial, i, j, s, orig[i+j*ld])
				}
			}
		}
	}
}

func TestTrsmRightLTransUnit(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	m, n := 6, 5
	l := make([]float64, n*n)
	for j := 0; j < n; j++ {
		l[j+j*n] = 1
		for i := j + 1; i < n; i++ {
			l[i+j*n] = rng.NormFloat64() * 0.5
		}
	}
	x := randMat(rng, m, n, m)
	b := make([]float64, m*n)
	// b = x · Lᵀ
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k <= j; k++ {
				lv := l[j+k*n]
				s += x[i+k*m] * lv
			}
			b[i+j*m] = s
		}
	}
	TrsmRightLTransUnit(m, n, l, n, b, m)
	if d := maxDiff(b, x); d > 1e-10 {
		t.Fatalf("diff %g", d)
	}
}

func TestTrsmRightLTrans(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	m, n := 4, 6
	l := make([]float64, n*n)
	for j := 0; j < n; j++ {
		l[j+j*n] = 2 + rng.Float64()
		for i := j + 1; i < n; i++ {
			l[i+j*n] = rng.NormFloat64() * 0.5
		}
	}
	x := randMat(rng, m, n, m)
	b := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k <= j; k++ {
				s += x[i+k*m] * l[j+k*n]
			}
			b[i+j*m] = s
		}
	}
	TrsmRightLTrans(m, n, l, n, b, m)
	if d := maxDiff(b, x); d > 1e-10 {
		t.Fatalf("diff %g", d)
	}
}

func TestTriangularVectorSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	n := 12
	l := make([]float64, n*n)
	for j := 0; j < n; j++ {
		l[j+j*n] = 2 + rng.Float64()
		for i := j + 1; i < n; i++ {
			l[i+j*n] = rng.NormFloat64() * 0.3
		}
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	// Explicit-diagonal forward: b = L x.
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j <= i; j++ {
			s += l[i+j*n] * x[j]
		}
		b[i] = s
	}
	got := append([]float64(nil), b...)
	TrsvLower(n, l, n, got)
	if d := maxDiff(got, x); d > 1e-10 {
		t.Fatalf("TrsvLower diff %g", d)
	}
	// Explicit-diagonal backward: b = Lᵀ x.
	for i := 0; i < n; i++ {
		s := 0.0
		for j := i; j < n; j++ {
			s += l[j+i*n] * x[j]
		}
		b[i] = s
	}
	got = append(got[:0], b...)
	TrsvLowerTrans(n, l, n, got)
	if d := maxDiff(got, x); d > 1e-10 {
		t.Fatalf("TrsvLowerTrans diff %g", d)
	}
	// Unit variants.
	for i := 0; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s += l[i+j*n] * x[j]
		}
		b[i] = s
	}
	got = append(got[:0], b...)
	TrsvLowerUnit(n, l, n, got)
	if d := maxDiff(got, x); d > 1e-10 {
		t.Fatalf("TrsvLowerUnit diff %g", d)
	}
	for i := 0; i < n; i++ {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s += l[j+i*n] * x[j]
		}
		b[i] = s
	}
	got = append(got[:0], b...)
	TrsvLowerTransUnit(n, l, n, got)
	if d := maxDiff(got, x); d > 1e-10 {
		t.Fatalf("TrsvLowerTransUnit diff %g", d)
	}
}

func TestGemv(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	m, n := 7, 5
	a := randMat(rng, m, n, m)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, m)
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	want := append([]float64(nil), y...)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			want[i] -= a[i+j*m] * x[j]
		}
	}
	GemvN(m, n, a, m, x, y)
	if d := maxDiff(y, want); d > 1e-12 {
		t.Fatalf("GemvN diff %g", d)
	}
	xm := make([]float64, m)
	for i := range xm {
		xm[i] = rng.NormFloat64()
	}
	yn := make([]float64, n)
	wantN := append([]float64(nil), yn...)
	for j := 0; j < n; j++ {
		s := 0.0
		for i := 0; i < m; i++ {
			s += a[i+j*m] * xm[i]
		}
		wantN[j] -= s
	}
	GemvT(m, n, a, m, xm, yn)
	if d := maxDiff(yn, wantN); d > 1e-12 {
		t.Fatalf("GemvT diff %g", d)
	}
}

func TestScaleColumns(t *testing.T) {
	b := []float64{2, 4, 6, 9}
	ScaleColumns(2, 2, b, 2, []float64{2, 3})
	want := []float64{1, 2, 2, 3}
	if maxDiff(b, want) != 0 {
		t.Fatalf("%v", b)
	}
}

// Property: for diagonally dominant symmetric matrices, solve(L D Lᵀ, b)
// composed from our kernels reproduces b's preimage.
func TestQuickLDLTSolve(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(25)
		a := randSPD(rng, n, n)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		bvec := make([]float64, n)
		for i := 0; i < n; i++ {
			s := 0.0
			for j := 0; j < n; j++ {
				s += a[i+j*n] * x[j]
			}
			bvec[i] = s
		}
		if err := LDLT(n, a, n); err != nil {
			return false
		}
		TrsvLowerUnit(n, a, n, bvec)
		for i := 0; i < n; i++ {
			bvec[i] /= a[i+i*n]
		}
		TrsvLowerTransUnit(n, a, n, bvec)
		for i := range x {
			if math.Abs(bvec[i]-x[i]) > 1e-7*(1+math.Abs(x[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGemmNNAndTN(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	m, n, k := 6, 5, 4
	a := randMat(rng, m, k, m)
	bm := randMat(rng, k, n, k)
	c := randMat(rng, m, n, m)
	want := append([]float64(nil), c...)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for l := 0; l < k; l++ {
				s += a[i+l*m] * bm[l+j*k]
			}
			want[i+j*m] -= s
		}
	}
	GemmNN(m, n, k, a, m, bm, k, c, m)
	if d := maxDiff(c, want); d > 1e-12 {
		t.Fatalf("GemmNN diff %g", d)
	}
	// GemmTN: C (k' x n) -= Aᵀ B with A m'(=rows) x k'(=cols).
	at := randMat(rng, k, m, k) // k rows, m cols
	c2 := randMat(rng, m, n, m)
	want2 := append([]float64(nil), c2...)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for l := 0; l < k; l++ {
				s += at[l+i*k] * bm[l+j*k]
			}
			want2[i+j*m] -= s
		}
	}
	GemmTN(m, n, k, at, k, bm, k, c2, m)
	if d := maxDiff(c2, want2); d > 1e-12 {
		t.Fatalf("GemmTN diff %g", d)
	}
}

func TestTrsmLeftVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	n, nrhs := 7, 3
	l := make([]float64, n*n)
	for j := 0; j < n; j++ {
		l[j+j*n] = 1
		for i := j + 1; i < n; i++ {
			l[i+j*n] = rng.NormFloat64() * 0.4
		}
	}
	x := randMat(rng, n, nrhs, n)
	// B = L X.
	b := make([]float64, n*nrhs)
	for r := 0; r < nrhs; r++ {
		for i := 0; i < n; i++ {
			s := x[i+r*n]
			for j := 0; j < i; j++ {
				s += l[i+j*n] * x[j+r*n]
			}
			b[i+r*n] = s
		}
	}
	TrsmLeftLowerUnit(n, nrhs, l, n, b, n)
	if d := maxDiff(b, x); d > 1e-10 {
		t.Fatalf("TrsmLeftLowerUnit diff %g", d)
	}
	// B = Lᵀ X.
	for r := 0; r < nrhs; r++ {
		for i := 0; i < n; i++ {
			s := x[i+r*n]
			for j := i + 1; j < n; j++ {
				s += l[j+i*n] * x[j+r*n]
			}
			b[i+r*n] = s
		}
	}
	TrsmLeftLTransUnit(n, nrhs, l, n, b, n)
	if d := maxDiff(b, x); d > 1e-10 {
		t.Fatalf("TrsmLeftLTransUnit diff %g", d)
	}
}
