package blas

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func TestGemmNDTTiledMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 12; trial++ {
		m := 1 + rng.Intn(300)
		n := 1 + rng.Intn(150)
		k := 1 + rng.Intn(80)
		lda, ldb, ldc := m+rng.Intn(4), n+rng.Intn(4), m+rng.Intn(4)
		a := randMat(rng, m, k, lda)
		b := randMat(rng, n, k, ldb)
		d := make([]float64, k)
		for i := range d {
			d[i] = rng.NormFloat64()
		}
		c1 := randMat(rng, m, n, ldc)
		c2 := append([]float64(nil), c1...)
		GemmNDT(m, n, k, a, lda, d, b, ldb, c1, ldc)
		gemmNDTTiled(m, n, k, a, lda, d, b, ldb, c2, ldc)
		for i := range c1 {
			if math.Abs(c1[i]-c2[i]) > 1e-11*(1+math.Abs(c1[i])) {
				t.Fatalf("trial %d (m=%d n=%d k=%d): elem %d differs", trial, m, n, k, i)
			}
		}
		c3 := append([]float64(nil), c2...)
		_ = c3
	}
}

func TestGemmNDTAutoDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	// Exercise both sides of the threshold.
	for _, dims := range [][3]int{{8, 8, 8}, {128, 96, 64}} {
		m, n, k := dims[0], dims[1], dims[2]
		a := randMat(rng, m, k, m)
		b := randMat(rng, n, k, n)
		d := make([]float64, k)
		for i := range d {
			d[i] = 1 + rng.Float64()
		}
		c1 := randMat(rng, m, n, m)
		c2 := append([]float64(nil), c1...)
		GemmNDT(m, n, k, a, m, d, b, n, c1, m)
		GemmNDTAuto(m, n, k, a, m, d, b, n, c2, m)
		for i := range c1 {
			if math.Abs(c1[i]-c2[i]) > 1e-11*(1+math.Abs(c1[i])) {
				t.Fatalf("dims %v: dispatch result differs", dims)
			}
		}
	}
}

func BenchmarkGemmTiled(b *testing.B) {
	for _, sz := range []int{64, 128, 256} {
		a := make([]float64, sz*sz)
		bb := make([]float64, sz*sz)
		c := make([]float64, sz*sz)
		d := make([]float64, sz)
		for i := range a {
			a[i] = 1
			bb[i] = 1
		}
		for i := range d {
			d[i] = 1
		}
		b.Run(fmt.Sprintf("plain/n%d", sz), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				GemmNDT(sz, sz, sz, a, sz, d, bb, sz, c, sz)
			}
		})
		b.Run(fmt.Sprintf("tiled/n%d", sz), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gemmNDTTiled(sz, sz, sz, a, sz, d, bb, sz, c, sz)
			}
		})
	}
}
