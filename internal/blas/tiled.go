package blas

// Cache-tiled variants of the update kernels. The straightforward
// column-axpy loops in blas.go stream the whole A panel once per column of
// C, which falls out of cache for large blocks; the tiled versions process C
// in column strips and A in row strips so the working set stays resident.
// GemmNDT dispatches to the tiled path above a size threshold.

const (
	tileM = 128 // rows of A / C per strip
	tileN = 64  // columns of C per strip
	// tiledThreshold is the m·n·k product above which tiling pays for the
	// extra loop overhead (determined with BenchmarkGemmTiled).
	tiledThreshold = 1 << 18
)

// gemmNDTTiled computes C -= A·diag(d)·Bᵀ by tiles.
func gemmNDTTiled(m, n, k int, a []float64, lda int, d []float64, b []float64, ldb int, c []float64, ldc int) {
	for j0 := 0; j0 < n; j0 += tileN {
		j1 := j0 + tileN
		if j1 > n {
			j1 = n
		}
		for i0 := 0; i0 < m; i0 += tileM {
			i1 := i0 + tileM
			if i1 > m {
				i1 = m
			}
			for j := j0; j < j1; j++ {
				cj := c[i0+j*ldc : i1+j*ldc]
				for l := 0; l < k; l++ {
					s := d[l] * b[j+l*ldb]
					if s == 0 {
						continue
					}
					axpy(-s, a[i0+l*lda:i1+l*lda], cj)
				}
			}
		}
	}
}

// GemmNDTAuto picks the plain or tiled kernel by problem size. The solver's
// contribution computations call this.
func GemmNDTAuto(m, n, k int, a []float64, lda int, d []float64, b []float64, ldb int, c []float64, ldc int) {
	if m*n*k >= tiledThreshold {
		gemmNDTTiled(m, n, k, a, lda, d, b, ldb, c, ldc)
		return
	}
	GemmNDT(m, n, k, a, lda, d, b, ldb, c, ldc)
}
