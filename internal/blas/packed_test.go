package blas

import (
	"math/rand"
	"testing"
)

// randPanel fills an m×n strided panel (lda) with deterministic values,
// injecting exact zeros so the kernels' skip branches are exercised: the
// packed kernels must keep those skips to stay bitwise-equal.
func randPanel(rng *rand.Rand, m, n, lda int) []float64 {
	a := make([]float64, lda*n)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			v := rng.NormFloat64()
			if rng.Intn(5) == 0 {
				v = 0
			}
			a[i+j*lda] = v
		}
	}
	return a
}

func randVec(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		if rng.Intn(6) == 0 {
			x[i] = 0
		}
	}
	return x
}

func bitwiseEqual(t *testing.T, name string, got, want []float64) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: elem %d = %x, want %x (not bit-identical)", name, i, got[i], want[i])
		}
	}
}

// TestPackedKernelsBitwise proves every packed kernel bitwise-equal to its
// strided counterpart over random shapes, including empty dimensions.
func TestPackedKernelsBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][2]int{{1, 1}, {3, 2}, {8, 8}, {17, 5}, {5, 17}, {32, 1}, {1, 32}, {0, 4}, {4, 0}}
	for _, sh := range shapes {
		m, n := sh[0], sh[1]
		lda := m + 3
		a := randPanel(rng, m, n, lda)
		pa := make([]float64, m*n)
		PackPanel(m, n, a, lda, pa)
		for j := 0; j < n; j++ {
			for i := 0; i < m; i++ {
				if pa[i+j*m] != a[i+j*lda] {
					t.Fatalf("PackPanel(%dx%d): (%d,%d) differs", m, n, i, j)
				}
			}
		}

		x := randVec(rng, n)
		y1 := randVec(rng, m)
		y2 := append([]float64(nil), y1...)
		GemvN(m, n, a, lda, x, y1)
		GemvNPacked(m, n, pa, x, y2)
		bitwiseEqual(t, "GemvNPacked", y2, y1)

		xv := randVec(rng, m)
		z1 := randVec(rng, n)
		z2 := append([]float64(nil), z1...)
		GemvT(m, n, a, lda, xv, z1)
		GemvTPacked(m, n, pa, xv, z2)
		bitwiseEqual(t, "GemvTPacked", z2, z1)

		// Gemm variants: A m×k packed vs strided, B/C stay strided panels.
		k, nrhs := n, 6
		ldb, ldc := k+2, m+1
		b := randPanel(rng, k, nrhs, ldb)
		c1 := randPanel(rng, m, nrhs, ldc)
		c2 := append([]float64(nil), c1...)
		GemmNN(m, nrhs, k, a, lda, b, ldb, c1, ldc)
		GemmNNPacked(m, nrhs, k, pa, b, ldb, c2, ldc)
		bitwiseEqual(t, "GemmNNPacked", c2, c1)

		// Transposed: A is k×m here, reuse pa as (n rows × m cols) by
		// swapping roles — repack a fresh k×m panel instead for clarity.
		ldat := k + 3
		at := randPanel(rng, k, m, ldat)
		pat := make([]float64, k*m)
		PackPanel(k, m, at, ldat, pat)
		bt := randPanel(rng, k, nrhs, ldb)
		d1 := randPanel(rng, m, nrhs, ldc)
		d2 := append([]float64(nil), d1...)
		GemmTN(m, nrhs, k, at, ldat, bt, ldb, d1, ldc)
		GemmTNPacked(m, nrhs, k, pat, bt, ldb, d2, ldc)
		bitwiseEqual(t, "GemmTNPacked", d2, d1)
	}
}

// TestPackedTriangularBitwise checks the packed triangular solves against
// the strided ones on unit-lower systems of several orders, single and
// multi-RHS.
func TestPackedTriangularBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 5, 16, 33} {
		ld := n + 4
		l := randPanel(rng, n, n, ld)
		pl := make([]float64, n*n)
		PackPanel(n, n, l, ld, pl)

		x1 := randVec(rng, n)
		x2 := append([]float64(nil), x1...)
		TrsvLowerUnit(n, l, ld, x1)
		TrsvLowerUnitPacked(n, pl, x2)
		bitwiseEqual(t, "TrsvLowerUnitPacked", x2, x1)

		x1 = randVec(rng, n)
		x2 = append([]float64(nil), x1...)
		TrsvLowerTransUnit(n, l, ld, x1)
		TrsvLowerTransUnitPacked(n, pl, x2)
		bitwiseEqual(t, "TrsvLowerTransUnitPacked", x2, x1)

		nrhs := 5
		b1 := randPanel(rng, n, nrhs, n) // packed RHS layout: ldb == n
		b2 := append([]float64(nil), b1...)
		TrsmLeftLowerUnit(n, nrhs, l, ld, b1, n)
		TrsmLowerUnitPacked(n, nrhs, pl, b2)
		bitwiseEqual(t, "TrsmLowerUnitPacked", b2, b1)

		b1 = randPanel(rng, n, nrhs, n)
		b2 = append([]float64(nil), b1...)
		TrsmLeftLTransUnit(n, nrhs, l, ld, b1, n)
		TrsmLTransUnitPacked(n, nrhs, pl, b2)
		bitwiseEqual(t, "TrsmLTransUnitPacked", b2, b1)
	}
}
