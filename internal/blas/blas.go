// Package blas provides the dense linear-algebra kernels the solver is built
// on: GEMM-like block updates, triangular solves, and dense LLᵀ / LDLᵀ
// factorizations, all in pure Go on column-major storage with explicit
// leading dimensions (LAPACK convention).
//
// These stand in for the IBM ESSL BLAS3 routines of the paper. The paper's
// observation that the LLᵀ kernel outperforms the LDLᵀ kernel (1.07 s vs
// 1.27 s on a 1024² dense matrix on one Power2SC node) is reproduced here:
// the LDLᵀ path performs the extra diagonal-scaling work.
package blas

import (
	"math"
)

// At returns the (i,j) element of the column-major matrix a with leading
// dimension ld. Intended for tests and debugging.
func At(a []float64, ld, i, j int) float64 { return a[i+j*ld] }

// GemmNT computes C -= A·Bᵀ, with A m×k (lda), B n×k (ldb), C m×n (ldc),
// all column-major. This is the solver's main update kernel shape.
func GemmNT(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	if m == 0 || n == 0 || k == 0 {
		return
	}
	for j := 0; j < n; j++ {
		cj := c[j*ldc : j*ldc+m]
		for l := 0; l < k; l++ {
			blj := b[j+l*ldb]
			if blj == 0 {
				continue
			}
			al := a[l*lda : l*lda+m]
			axpy(-blj, al, cj)
		}
	}
}

// GemmNDT computes C -= A·diag(d)·Bᵀ, with A m×k (lda), d length k,
// B n×k (ldb), C m×n (ldc). This is the LDLᵀ fan-in contribution kernel
// (the extra diag(d) pass is what makes LDLᵀ slower than LLᵀ, as in the
// paper's ESSL comparison).
func GemmNDT(m, n, k int, a []float64, lda int, d []float64, b []float64, ldb int, c []float64, ldc int) {
	if m == 0 || n == 0 || k == 0 {
		return
	}
	for j := 0; j < n; j++ {
		cj := c[j*ldc : j*ldc+m]
		for l := 0; l < k; l++ {
			s := d[l] * b[j+l*ldb]
			if s == 0 {
				continue
			}
			al := a[l*lda : l*lda+m]
			axpy(-s, al, cj)
		}
	}
}

// axpy computes y += alpha*x over equal-length slices, unrolled by 4.
func axpy(alpha float64, x, y []float64) {
	n := len(y)
	i := 0
	for ; i+4 <= n; i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < n; i++ {
		y[i] += alpha * x[i]
	}
}

// SyrkLowerNT computes the lower triangle of C -= A·Aᵀ, with A m×k (lda) and
// C m×m (ldc); only C's lower triangle (including diagonal) is referenced.
func SyrkLowerNT(m, k int, a []float64, lda int, c []float64, ldc int) {
	for j := 0; j < m; j++ {
		cj := c[j*ldc : j*ldc+m]
		for l := 0; l < k; l++ {
			ajl := a[j+l*lda]
			if ajl == 0 {
				continue
			}
			al := a[l*lda : l*lda+m]
			axpy(-ajl, al[j:], cj[j:])
		}
	}
}

// SyrkLowerNDT computes the lower triangle of C -= A·diag(d)·Aᵀ.
func SyrkLowerNDT(m, k int, a []float64, lda int, d []float64, c []float64, ldc int) {
	for j := 0; j < m; j++ {
		cj := c[j*ldc : j*ldc+m]
		for l := 0; l < k; l++ {
			s := d[l] * a[j+l*lda]
			if s == 0 {
				continue
			}
			al := a[l*lda : l*lda+m]
			axpy(-s, al[j:], cj[j:])
		}
	}
}

// Cholesky factors the n×n SPD matrix A (lower triangle, column-major,
// leading dimension ld) in place into L·Lᵀ: on return the lower triangle
// holds L. It returns an error if a non-positive pivot arises.
func Cholesky(n int, a []float64, ld int) error {
	for k := 0; k < n; k++ {
		akk := a[k+k*ld]
		if akk <= 0 || math.IsNaN(akk) {
			return &PivotError{Kernel: "cholesky", Index: k, Value: akk}
		}
		p := math.Sqrt(akk)
		a[k+k*ld] = p
		col := a[k*ld : k*ld+n]
		inv := 1 / p
		for i := k + 1; i < n; i++ {
			col[i] *= inv
		}
		for j := k + 1; j < n; j++ {
			ajk := col[j]
			if ajk == 0 {
				continue
			}
			axpy(-ajk, col[j:n], a[j*ld+j:j*ld+n])
		}
	}
	return nil
}

// LDLT factors the n×n symmetric matrix A (lower triangle, column-major,
// ld) in place into L·D·Lᵀ without pivoting: on return the strictly lower
// triangle holds the unit-lower L (unit diagonal implicit) and the diagonal
// holds D. It returns an error on a zero pivot.
func LDLT(n int, a []float64, ld int) error {
	_, err := LDLTStatic(n, a, ld, 0)
	return err
}

// Perturb records one static-pivot substitution inside a diagonal kernel:
// the block-local column Index whose pivot Original fell below the threshold
// and the value Used (sign(Original)·τ) written in its place.
type Perturb struct {
	Index    int
	Original float64
	Used     float64
}

// LDLTStatic is LDLT with static pivoting: a pivot with |d_k| < tau is
// replaced by sign(d_k)·tau (an exact zero gets +tau) and the substitution is
// recorded, so the factorization always completes on finite input. With
// tau <= 0 the arithmetic is bit-identical to LDLT, including the zero-pivot
// error. A NaN pivot is never perturbable and always errors.
func LDLTStatic(n int, a []float64, ld int, tau float64) ([]Perturb, error) {
	var perts []Perturb
	for k := 0; k < n; k++ {
		dk := a[k+k*ld]
		if math.IsNaN(dk) {
			return nil, &PivotError{Kernel: "ldlt", Index: k, Value: dk}
		}
		if tau > 0 && math.Abs(dk) < tau {
			used := tau
			if math.Signbit(dk) {
				used = -tau
			}
			a[k+k*ld] = used
			perts = append(perts, Perturb{Index: k, Original: dk, Used: used})
			dk = used
		} else if dk == 0 {
			return nil, &PivotError{Kernel: "ldlt", Index: k, Value: dk}
		}
		col := a[k*ld : k*ld+n]
		inv := 1 / dk
		// Scale column k: l_ik = a_ik / d_k, keeping w_ik = a_ik for the
		// rank-1 update (A_jj... -= w_j * l_i pattern).
		for j := k + 1; j < n; j++ {
			wjk := col[j]
			if wjk == 0 {
				continue
			}
			ljk := wjk * inv
			axpy(-ljk, col[j:n], a[j*ld+j:j*ld+n])
		}
		for i := k + 1; i < n; i++ {
			col[i] *= inv
		}
	}
	return perts, nil
}

// TrsmRightLTransUnit solves X · Lᵀ = B in place for X, where L is n×n
// unit-lower-triangular (the strictly lower triangle of l is used; unit
// diagonal assumed) and B is m×n column-major (ldb). On return b holds X.
// This computes the off-diagonal blocks of an LDLᵀ factorization:
// X_j = (B_j - Σ_{k<j} X_k · L_jk).
func TrsmRightLTransUnit(m, n int, l []float64, ldl int, b []float64, ldb int) {
	for j := 0; j < n; j++ {
		bj := b[j*ldb : j*ldb+m]
		for k := 0; k < j; k++ {
			ljk := l[j+k*ldl]
			if ljk == 0 {
				continue
			}
			axpy(-ljk, b[k*ldb:k*ldb+m], bj)
		}
	}
}

// TrsmRightLTrans solves X · Lᵀ = B in place, where L is n×n lower
// triangular with explicit diagonal (the LLᵀ case).
func TrsmRightLTrans(m, n int, l []float64, ldl int, b []float64, ldb int) {
	for j := 0; j < n; j++ {
		bj := b[j*ldb : j*ldb+m]
		for k := 0; k < j; k++ {
			ljk := l[j+k*ldl]
			if ljk == 0 {
				continue
			}
			axpy(-ljk, b[k*ldb:k*ldb+m], bj)
		}
		inv := 1 / l[j+j*ldl]
		for i := range bj {
			bj[i] *= inv
		}
	}
}

// ScaleColumns divides column j of the m×n matrix B (ldb) by d[j]. Used to
// turn W = L·D into L after a TRSM in the LDLᵀ path.
func ScaleColumns(m, n int, b []float64, ldb int, d []float64) {
	for j := 0; j < n; j++ {
		inv := 1 / d[j]
		bj := b[j*ldb : j*ldb+m]
		for i := range bj {
			bj[i] *= inv
		}
	}
}

// --- Solve-phase kernels (operate on a block of right-hand sides) ---

// TrsvLowerUnit solves L·x = b in place for one rhs, unit lower L (n×n, ld).
func TrsvLowerUnit(n int, l []float64, ld int, x []float64) {
	for j := 0; j < n; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		col := l[j*ld : j*ld+n]
		for i := j + 1; i < n; i++ {
			x[i] -= col[i] * xj
		}
	}
}

// TrsvLower solves L·x = b in place, explicit-diagonal lower L.
func TrsvLower(n int, l []float64, ld int, x []float64) {
	for j := 0; j < n; j++ {
		x[j] /= l[j+j*ld]
		xj := x[j]
		if xj == 0 {
			continue
		}
		col := l[j*ld : j*ld+n]
		for i := j + 1; i < n; i++ {
			x[i] -= col[i] * xj
		}
	}
}

// TrsvLowerTransUnit solves Lᵀ·x = b in place, unit lower L.
func TrsvLowerTransUnit(n int, l []float64, ld int, x []float64) {
	for j := n - 1; j >= 0; j-- {
		s := x[j]
		col := l[j*ld : j*ld+n]
		for i := j + 1; i < n; i++ {
			s -= col[i] * x[i]
		}
		x[j] = s
	}
}

// TrsvLowerTrans solves Lᵀ·x = b in place, explicit-diagonal lower L.
func TrsvLowerTrans(n int, l []float64, ld int, x []float64) {
	for j := n - 1; j >= 0; j-- {
		s := x[j]
		col := l[j*ld : j*ld+n]
		for i := j + 1; i < n; i++ {
			s -= col[i] * x[i]
		}
		x[j] = s / col[j]
	}
}

// GemvN computes y -= A·x with A m×n (lda) column-major.
func GemvN(m, n int, a []float64, lda int, x, y []float64) {
	for j := 0; j < n; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		axpy(-xj, a[j*lda:j*lda+m], y)
	}
}

// GemvT computes y -= Aᵀ·x with A m×n (lda) column-major, x length m,
// y length n.
func GemvT(m, n int, a []float64, lda int, x, y []float64) {
	for j := 0; j < n; j++ {
		col := a[j*lda : j*lda+m]
		s := 0.0
		for i := 0; i < m; i++ {
			s += col[i] * x[i]
		}
		y[j] -= s
	}
}
