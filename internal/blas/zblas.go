package blas

import (
	"math/cmplx"
)

// Complex kernels (z-variants). The paper's motivation for LDLᵀ over LLᵀ is
// solving sparse systems with COMPLEX SYMMETRIC (not Hermitian) coefficients
// — electromagnetics-style matrices where A = Aᵀ but A ≠ Aᴴ. All transposes
// here are therefore plain transposes without conjugation, and the
// factorization is A = L·D·Lᵀ with unit-lower complex L and complex
// diagonal D, no pivoting.

// ZGemmNDT computes C -= A·diag(d)·Bᵀ over complex column-major matrices.
func ZGemmNDT(m, n, k int, a []complex128, lda int, d []complex128, b []complex128, ldb int, c []complex128, ldc int) {
	if m == 0 || n == 0 || k == 0 {
		return
	}
	for j := 0; j < n; j++ {
		cj := c[j*ldc : j*ldc+m]
		for l := 0; l < k; l++ {
			s := d[l] * b[j+l*ldb]
			if s == 0 {
				continue
			}
			zaxpy(-s, a[l*lda:l*lda+m], cj)
		}
	}
}

// ZSyrkLowerNDT computes the lower triangle of C -= A·diag(d)·Aᵀ.
func ZSyrkLowerNDT(m, k int, a []complex128, lda int, d []complex128, c []complex128, ldc int) {
	for j := 0; j < m; j++ {
		cj := c[j*ldc : j*ldc+m]
		for l := 0; l < k; l++ {
			s := d[l] * a[j+l*lda]
			if s == 0 {
				continue
			}
			zaxpy(-s, a[l*lda+j:l*lda+m], cj[j:])
		}
	}
}

func zaxpy(alpha complex128, x, y []complex128) {
	n := len(y)
	i := 0
	for ; i+4 <= n; i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < n; i++ {
		y[i] += alpha * x[i]
	}
}

// ZLDLT factors the n×n complex symmetric matrix A (lower triangle,
// column-major, ld) in place into L·D·Lᵀ without pivoting.
func ZLDLT(n int, a []complex128, ld int) error {
	for k := 0; k < n; k++ {
		dk := a[k+k*ld]
		if dk == 0 || cmplx.IsNaN(dk) {
			return &PivotError{Kernel: "zldlt", Index: k, Value: real(dk)}
		}
		col := a[k*ld : k*ld+n]
		inv := 1 / dk
		for j := k + 1; j < n; j++ {
			wjk := col[j]
			if wjk == 0 {
				continue
			}
			ljk := wjk * inv
			zaxpy(-ljk, col[j:n], a[j*ld+j:j*ld+n])
		}
		for i := k + 1; i < n; i++ {
			col[i] *= inv
		}
	}
	return nil
}

// ZTrsmRightLTransUnit solves X·Lᵀ = B in place for X, with L n×n
// unit-lower complex and B m×n (ldb).
func ZTrsmRightLTransUnit(m, n int, l []complex128, ldl int, b []complex128, ldb int) {
	for j := 0; j < n; j++ {
		bj := b[j*ldb : j*ldb+m]
		for k := 0; k < j; k++ {
			ljk := l[j+k*ldl]
			if ljk == 0 {
				continue
			}
			zaxpy(-ljk, b[k*ldb:k*ldb+m], bj)
		}
	}
}

// ZScaleColumns divides column j of B (m×n, ldb) by d[j].
func ZScaleColumns(m, n int, b []complex128, ldb int, d []complex128) {
	for j := 0; j < n; j++ {
		inv := 1 / d[j]
		bj := b[j*ldb : j*ldb+m]
		for i := range bj {
			bj[i] *= inv
		}
	}
}

// ZTrsvLowerUnit solves L·x = b in place, unit lower complex L.
func ZTrsvLowerUnit(n int, l []complex128, ld int, x []complex128) {
	for j := 0; j < n; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		col := l[j*ld : j*ld+n]
		for i := j + 1; i < n; i++ {
			x[i] -= col[i] * xj
		}
	}
}

// ZTrsvLowerTransUnit solves Lᵀ·x = b in place, unit lower complex L.
func ZTrsvLowerTransUnit(n int, l []complex128, ld int, x []complex128) {
	for j := n - 1; j >= 0; j-- {
		s := x[j]
		col := l[j*ld : j*ld+n]
		for i := j + 1; i < n; i++ {
			s -= col[i] * x[i]
		}
		x[j] = s
	}
}

// ZGemvN computes y -= A·x, complex A m×n (lda).
func ZGemvN(m, n int, a []complex128, lda int, x, y []complex128) {
	for j := 0; j < n; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		zaxpy(-xj, a[j*lda:j*lda+m], y)
	}
}

// ZGemvT computes y -= Aᵀ·x (plain transpose), x length m, y length n.
func ZGemvT(m, n int, a []complex128, lda int, x, y []complex128) {
	for j := 0; j < n; j++ {
		col := a[j*lda : j*lda+m]
		var s complex128
		for i := 0; i < m; i++ {
			s += col[i] * x[i]
		}
		y[j] -= s
	}
}
