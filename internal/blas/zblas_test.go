package blas

import (
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func zRandMat(rng *rand.Rand, m, n, ld int) []complex128 {
	a := make([]complex128, ld*n)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			a[i+j*ld] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
	}
	return a
}

// zRandSymDominant returns a complex symmetric matrix with dominant
// diagonal (stable for unpivoted LDLᵀ).
func zRandSymDominant(rng *rand.Rand, n, ld int) []complex128 {
	a := make([]complex128, ld*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := complex(rng.NormFloat64(), rng.NormFloat64()) * 0.3
			a[i+j*ld] = v
			a[j+i*ld] = v
		}
		a[i+i*ld] = complex(float64(n), float64(n)/2)
	}
	return a
}

func zMaxDiff(a, b []complex128) float64 {
	d := 0.0
	for i := range a {
		if v := cmplx.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

func TestZGemmNDTAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 15; trial++ {
		m, n, k := 1+rng.Intn(10), 1+rng.Intn(10), 1+rng.Intn(10)
		a := zRandMat(rng, m, k, m)
		b := zRandMat(rng, n, k, n)
		c := zRandMat(rng, m, n, m)
		d := make([]complex128, k)
		for i := range d {
			d[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := append([]complex128(nil), c...)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var s complex128
				for l := 0; l < k; l++ {
					s += a[i+l*m] * d[l] * b[j+l*n] // plain transpose, no conj
				}
				want[i+j*m] -= s
			}
		}
		ZGemmNDT(m, n, k, a, m, d, b, n, c, m)
		if diff := zMaxDiff(c, want); diff > 1e-12 {
			t.Fatalf("trial %d: diff %g", trial, diff)
		}
	}
}

func TestZSyrkLowerNDT(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	m, k := 7, 4
	a := zRandMat(rng, m, k, m)
	d := make([]complex128, k)
	for i := range d {
		d[i] = complex(1+rng.Float64(), rng.Float64())
	}
	c := zRandMat(rng, m, m, m)
	want := append([]complex128(nil), c...)
	for i := 0; i < m; i++ {
		for j := 0; j <= i; j++ {
			var s complex128
			for l := 0; l < k; l++ {
				s += a[i+l*m] * d[l] * a[j+l*m]
			}
			want[i+j*m] -= s
		}
	}
	ZSyrkLowerNDT(m, k, a, m, d, c, m)
	for i := 0; i < m; i++ {
		for j := 0; j <= i; j++ {
			if cmplx.Abs(c[i+j*m]-want[i+j*m]) > 1e-12 {
				t.Fatalf("(%d,%d)", i, j)
			}
		}
	}
}

func TestZLDLTReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	for trial := 0; trial < 8; trial++ {
		n := 1 + rng.Intn(20)
		a := zRandSymDominant(rng, n, n)
		orig := append([]complex128(nil), a...)
		if err := ZLDLT(n, a, n); err != nil {
			t.Fatal(err)
		}
		lval := func(i, k int) complex128 {
			if i == k {
				return 1
			}
			return a[i+k*n]
		}
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				var s complex128
				for k := 0; k <= j; k++ {
					s += lval(i, k) * a[k+k*n] * lval(j, k)
				}
				if cmplx.Abs(s-orig[i+j*n]) > 1e-8*(1+cmplx.Abs(orig[i+j*n])) {
					t.Fatalf("trial %d (%d,%d): %v vs %v", trial, i, j, s, orig[i+j*n])
				}
			}
		}
	}
}

func TestZLDLTZeroPivot(t *testing.T) {
	a := []complex128{0, 1, 1, 2} // A[0][0] = 0
	if err := ZLDLT(2, a, 2); err == nil {
		t.Fatal("expected zero-pivot error")
	}
}

func TestZTrsmRightLTransUnit(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	m, n := 5, 6
	l := make([]complex128, n*n)
	for j := 0; j < n; j++ {
		l[j+j*n] = 1
		for i := j + 1; i < n; i++ {
			l[i+j*n] = complex(rng.NormFloat64(), rng.NormFloat64()) * 0.4
		}
	}
	x := zRandMat(rng, m, n, m)
	b := make([]complex128, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s complex128
			for k := 0; k <= j; k++ {
				s += x[i+k*m] * l[j+k*n]
			}
			b[i+j*m] = s
		}
	}
	ZTrsmRightLTransUnit(m, n, l, n, b, m)
	if d := zMaxDiff(b, x); d > 1e-10 {
		t.Fatalf("diff %g", d)
	}
}

func TestQuickZSolveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(18)
		a := zRandSymDominant(rng, n, n)
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		b := make([]complex128, n)
		for i := 0; i < n; i++ {
			var s complex128
			for j := 0; j < n; j++ {
				s += a[i+j*n] * x[j]
			}
			b[i] = s
		}
		if err := ZLDLT(n, a, n); err != nil {
			return false
		}
		ZTrsvLowerUnit(n, a, n, b)
		for i := 0; i < n; i++ {
			b[i] /= a[i+i*n]
		}
		ZTrsvLowerTransUnit(n, a, n, b)
		for i := range x {
			if cmplx.Abs(b[i]-x[i]) > 1e-7*(1+cmplx.Abs(x[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestZGemv(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	m, n := 6, 4
	a := zRandMat(rng, m, n, m)
	x := make([]complex128, n)
	xm := make([]complex128, m)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 1)
	}
	for i := range xm {
		xm[i] = complex(1, rng.NormFloat64())
	}
	y := make([]complex128, m)
	want := make([]complex128, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			want[i] -= a[i+j*m] * x[j]
		}
	}
	ZGemvN(m, n, a, m, x, y)
	if d := zMaxDiff(y, want); d > 1e-12 {
		t.Fatalf("ZGemvN diff %g", d)
	}
	yn := make([]complex128, n)
	wantN := make([]complex128, n)
	for j := 0; j < n; j++ {
		var s complex128
		for i := 0; i < m; i++ {
			s += a[i+j*m] * xm[i]
		}
		wantN[j] -= s
	}
	ZGemvT(m, n, a, m, xm, yn)
	if d := zMaxDiff(yn, wantN); d > 1e-12 {
		t.Fatalf("ZGemvT diff %g", d)
	}
}

func TestZScaleColumns(t *testing.T) {
	b := []complex128{2, 4, 6i, 9i}
	ZScaleColumns(2, 2, b, 2, []complex128{2, 3i})
	want := []complex128{1, 2, 2, 3}
	if zMaxDiff(b, want) > 1e-15 {
		t.Fatalf("%v", b)
	}
}
