package blas

import (
	"math"
	"testing"
)

// lrSplitmix64 drives the deterministic test data (no math/rand).
func lrSplitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func lrUnit(s *uint64) float64 {
	*s = lrSplitmix64(*s)
	return float64(int64(*s>>11))/float64(1<<52) - 1
}

func lrFill(n int, s *uint64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lrUnit(s)
	}
	return out
}

// lrDense materialises U·Vᵀ as a dense m×n column-major matrix.
func lrDense(m, n, r int, u, v []float64) []float64 {
	b := make([]float64, m*n)
	for j := 0; j < n; j++ {
		for k := 0; k < r; k++ {
			vjk := v[j+k*n]
			for i := 0; i < m; i++ {
				b[i+j*m] += u[i+k*m] * vjk
			}
		}
	}
	return b
}

func lrMaxDiff(a, b []float64) float64 {
	var d float64
	for i := range a {
		if e := math.Abs(a[i] - b[i]); e > d {
			d = e
		}
	}
	return d
}

// TestLRGemv checks both solve-application directions against the dense
// GemvN/GemvT on the materialised block.
func TestLRGemv(t *testing.T) {
	m, n, r := 37, 29, 5
	s := uint64(11)
	u, v := lrFill(m*r, &s), lrFill(n*r, &s)
	dense := lrDense(m, n, r, u, v)

	x := lrFill(n, &s)
	yLR := lrFill(m, &s)
	yRef := append([]float64(nil), yLR...)
	LRGemvN(m, n, r, u, v, x, yLR)
	GemvN(m, n, dense, m, x, yRef)
	if d := lrMaxDiff(yLR, yRef); d > 1e-13 {
		t.Errorf("LRGemvN vs dense: max diff %g", d)
	}

	xt := lrFill(m, &s)
	ytLR := lrFill(n, &s)
	ytRef := append([]float64(nil), ytLR...)
	LRGemvT(m, n, r, u, v, xt, ytLR)
	GemvT(m, n, dense, m, xt, ytRef)
	if d := lrMaxDiff(ytLR, ytRef); d > 1e-13 {
		t.Errorf("LRGemvT vs dense: max diff %g", d)
	}
}

// TestLRGemmPanel checks the multi-rhs forms column-by-column against the
// single-rhs kernels (the two must agree bitwise) and against the dense
// panel kernels numerically.
func TestLRGemmPanel(t *testing.T) {
	m, n, r, nrhs := 26, 31, 4, 7
	ldb, ldc := n+3, m+2
	s := uint64(23)
	u, v := lrFill(m*r, &s), lrFill(n*r, &s)
	dense := lrDense(m, n, r, u, v)

	b := lrFill(ldb*nrhs, &s)
	c0 := lrFill(ldc*nrhs, &s)
	cLR := append([]float64(nil), c0...)
	cCol := append([]float64(nil), c0...)
	cRef := append([]float64(nil), c0...)

	LRGemmNN(m, n, r, nrhs, u, v, b, ldb, cLR, ldc)
	for col := 0; col < nrhs; col++ {
		LRGemvN(m, n, r, u, v, b[col*ldb:col*ldb+n], cCol[col*ldc:col*ldc+m])
	}
	for i := range cLR {
		if cLR[i] != cCol[i] {
			t.Fatalf("LRGemmNN not bitwise-equal to per-column LRGemvN at %d", i)
		}
	}
	GemmNN(m, nrhs, n, dense, m, b, ldb, cRef, ldc)
	if d := lrMaxDiff(cLR, cRef); d > 1e-12 {
		t.Errorf("LRGemmNN vs dense GemmNN: max diff %g", d)
	}

	bt := lrFill(ldc*nrhs, &s) // m-length columns, reuse ldc stride
	ct0 := lrFill(ldb*nrhs, &s)
	ctLR := append([]float64(nil), ct0...)
	ctCol := append([]float64(nil), ct0...)
	ctRef := append([]float64(nil), ct0...)
	LRGemmTN(m, n, r, nrhs, u, v, bt, ldc, ctLR, ldb)
	for col := 0; col < nrhs; col++ {
		LRGemvT(m, n, r, u, v, bt[col*ldc:col*ldc+m], ctCol[col*ldb:col*ldb+n])
	}
	for i := range ctLR {
		if ctLR[i] != ctCol[i] {
			t.Fatalf("LRGemmTN not bitwise-equal to per-column LRGemvT at %d", i)
		}
	}
	GemmTN(n, nrhs, m, dense, m, bt, ldc, ctRef, ldb)
	if d := lrMaxDiff(ctLR, ctRef); d > 1e-12 {
		t.Errorf("LRGemmTN vs dense GemmTN: max diff %g", d)
	}
}

// TestGemmLRDense checks C -= (U·Vᵀ)·B against materialise-then-GemmNN.
func TestGemmLRDense(t *testing.T) {
	m, n, k, r := 22, 17, 30, 6
	ldb, ldc := k+1, m+4
	s := uint64(37)
	u, v := lrFill(m*r, &s), lrFill(k*r, &s)
	dense := lrDense(m, k, r, u, v)

	b := lrFill(ldb*n, &s)
	c0 := lrFill(ldc*n, &s)
	cLR := append([]float64(nil), c0...)
	cRef := append([]float64(nil), c0...)
	GemmLRDense(m, n, k, r, u, v, b, ldb, cLR, ldc)
	GemmNN(m, n, k, dense, m, b, ldb, cRef, ldc)
	if d := lrMaxDiff(cLR, cRef); d > 1e-12 {
		t.Errorf("GemmLRDense vs dense: max diff %g", d)
	}
}

// TestGemmDenseLR checks C -= A·(U·Vᵀ) against materialise-then-GemmNN.
func TestGemmDenseLR(t *testing.T) {
	m, n, k, r := 19, 25, 21, 5
	lda, ldc := m+2, m+3
	s := uint64(41)
	u, v := lrFill(k*r, &s), lrFill(n*r, &s)
	dense := lrDense(k, n, r, u, v)

	a := lrFill(lda*k, &s)
	c0 := lrFill(ldc*n, &s)
	cLR := append([]float64(nil), c0...)
	cRef := append([]float64(nil), c0...)
	GemmDenseLR(m, n, k, r, a, lda, u, v, cLR, ldc)
	GemmNN(m, n, k, a, lda, dense, k, cRef, ldc)
	if d := lrMaxDiff(cLR, cRef); d > 1e-12 {
		t.Errorf("GemmDenseLR vs dense: max diff %g", d)
	}
}

// TestTrsmRightLTransUnitLR: solving X·Lᵀ = U·Vᵀ on the compressed form
// must match the dense TRSM on the materialised block.
func TestTrsmRightLTransUnitLR(t *testing.T) {
	m, n, r := 24, 18, 4
	ldl := n + 2
	s := uint64(53)
	u, v := lrFill(m*r, &s), lrFill(n*r, &s)
	dense := lrDense(m, n, r, u, v)

	l := make([]float64, ldl*n)
	for j := 0; j < n; j++ {
		l[j+j*ldl] = 1
		for i := j + 1; i < n; i++ {
			l[i+j*ldl] = 0.3 * lrUnit(&s)
		}
	}

	// Dense reference: row i of X solves L·xᵢ = (row i of U·Vᵀ).
	xRef := make([]float64, m*n)
	row := make([]float64, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			row[j] = dense[i+j*m]
		}
		TrsvLowerUnit(n, l, ldl, row)
		for j := 0; j < n; j++ {
			xRef[i+j*m] = row[j]
		}
	}

	TrsmRightLTransUnitLR(n, r, l, ldl, v)
	xLR := lrDense(m, n, r, u, v)
	if d := lrMaxDiff(xLR, xRef); d > 1e-12 {
		t.Errorf("compressed TRSM vs dense: max diff %g", d)
	}
}

// TestLRKernelsRankZero: rank-0 blocks are no-ops everywhere.
func TestLRKernelsRankZero(t *testing.T) {
	m, n := 9, 7
	s := uint64(61)
	y := lrFill(m, &s)
	want := append([]float64(nil), y...)
	LRGemvN(m, n, 0, nil, nil, make([]float64, n), y)
	LRGemvT(n, m, 0, nil, nil, make([]float64, n), y)
	GemmLRDense(m, 3, n, 0, nil, nil, make([]float64, n*3), n, y, m)
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("rank-0 kernel modified output at %d", i)
		}
	}
}
