package blas

// Low-rank (BLR) kernels: variants of the solver's update and solve kernels
// where one operand is a compressed block B = U·Vᵀ (U m×r, V n×r, both
// packed column-major). Every kernel factors through the rank-r middle
// dimension — a temporary of r values (or r×nrhs for panels) — so the
// arithmetic cost is O(r·(m+n)) per column instead of O(m·n). All kernels
// keep a fixed operation order (rank index innermost accumulation first),
// so runs are deterministic regardless of the caller's scheduling; they are
// NOT bit-compatible with their dense counterparts — compressed data is
// lossy to begin with, and the accuracy contract lives at the compression
// tolerance, not the kernel.

// LRGemvN computes y -= (U·Vᵀ)·x: the forward-solve application of a
// compressed block. U is m×r packed, V is n×r packed, x length n, y length
// m. The temporary t = Vᵀ·x is formed first, then y -= U·t.
func LRGemvN(m, n, r int, u, v, x, y []float64) {
	if r == 0 {
		return
	}
	y = y[:m]
	for k := 0; k < r; k++ {
		vk := v[k*n : k*n+n]
		var t float64
		for j, xj := range x[:n] {
			t += vk[j] * xj
		}
		if t == 0 {
			continue
		}
		axpy(-t, u[k*m:k*m+m], y)
	}
}

// LRGemvT computes y -= (U·Vᵀ)ᵀ·x = V·(Uᵀ·x): the backward-solve
// application. x length m, y length n.
func LRGemvT(m, n, r int, u, v, x, y []float64) {
	if r == 0 {
		return
	}
	y = y[:n]
	for k := 0; k < r; k++ {
		uk := u[k*m : k*m+m]
		var t float64
		for i, xi := range x[:m] {
			t += uk[i] * xi
		}
		if t == 0 {
			continue
		}
		axpy(-t, v[k*n:k*n+n], y)
	}
}

// LRGemmNN computes C -= (U·Vᵀ)·B for a panel of nrhs right-hand sides:
// U m×r, V n×r (packed), B n×nrhs (ldb), C m×nrhs (ldc). Each column is the
// LRGemvN of that column, so panel and per-column applications agree
// bitwise.
func LRGemmNN(m, n, r, nrhs int, u, v, b []float64, ldb int, c []float64, ldc int) {
	for col := 0; col < nrhs; col++ {
		LRGemvN(m, n, r, u, v, b[col*ldb:col*ldb+n], c[col*ldc:col*ldc+m])
	}
}

// LRGemmTN computes C -= V·(Uᵀ·B) for a panel: B m×nrhs (ldb), C n×nrhs
// (ldc). Column-by-column LRGemvT.
func LRGemmTN(m, n, r, nrhs int, u, v, b []float64, ldb int, c []float64, ldc int) {
	for col := 0; col < nrhs; col++ {
		LRGemvT(m, n, r, u, v, b[col*ldb:col*ldb+m], c[col*ldc:col*ldc+n])
	}
}

// GemmLRDense computes C -= (U·Vᵀ)·B with a DENSE right operand: U m×r,
// V k×r packed, B k×n (ldb), C m×n (ldc). The r×n temporary T = Vᵀ·B is
// formed once, then C -= U·T — the "LR·dense" update of a compressed
// factorization (cost r·k·n + m·r·n instead of m·k·n).
func GemmLRDense(m, n, k, r int, u, v, b []float64, ldb int, c []float64, ldc int) {
	if r == 0 || m == 0 || n == 0 || k == 0 {
		return
	}
	t := make([]float64, r*n)
	for j := 0; j < n; j++ {
		bj := b[j*ldb : j*ldb+k]
		tj := t[j*r : j*r+r]
		for kk := 0; kk < r; kk++ {
			vk := v[kk*k : kk*k+k]
			var s float64
			for i, bi := range bj {
				s += vk[i] * bi
			}
			tj[kk] = s
		}
	}
	for j := 0; j < n; j++ {
		cj := c[j*ldc : j*ldc+m]
		tj := t[j*r : j*r+r]
		for kk := 0; kk < r; kk++ {
			if tj[kk] == 0 {
				continue
			}
			axpy(-tj[kk], u[kk*m:kk*m+m], cj)
		}
	}
}

// GemmDenseLR computes C -= A·(U·Vᵀ) with a DENSE left operand: A m×k
// (lda), U k×r, V n×r packed, C m×n (ldc). The m×r temporary T = A·U is
// formed once, then C -= T·Vᵀ — the "dense·LR" update.
func GemmDenseLR(m, n, k, r int, a []float64, lda int, u, v, c []float64, ldc int) {
	if r == 0 || m == 0 || n == 0 || k == 0 {
		return
	}
	t := make([]float64, m*r)
	for kk := 0; kk < r; kk++ {
		uk := u[kk*k : kk*k+k]
		tk := t[kk*m : kk*m+m]
		for l := 0; l < k; l++ {
			ul := uk[l]
			if ul == 0 {
				continue
			}
			al := a[l*lda : l*lda+m]
			for i := range tk {
				tk[i] += ul * al[i]
			}
		}
	}
	for j := 0; j < n; j++ {
		cj := c[j*ldc : j*ldc+m]
		for kk := 0; kk < r; kk++ {
			vjk := v[j+kk*n]
			if vjk == 0 {
				continue
			}
			axpy(-vjk, t[kk*m:kk*m+m], cj)
		}
	}
}

// TrsmRightLTransUnitLR solves X·Lᵀ = U·Vᵀ in place on the compressed
// representation: with L n×n unit-lower (ldl) and the panel stored as U·Vᵀ
// (V n×r packed), the solution is X = U·(L⁻¹·V)ᵀ — only the n×r V factor is
// touched (the TRSM of a compressed panel costs r triangular solves instead
// of m). On return v holds L⁻¹·V.
func TrsmRightLTransUnitLR(n, r int, l []float64, ldl int, v []float64) {
	// Column k of V is one rhs of the unit-lower solve L·y = v_k.
	for k := 0; k < r; k++ {
		TrsvLowerUnit(n, l, ldl, v[k*n:k*n+n])
	}
}
