package blas

import "fmt"

// PivotError reports a breakdown of an unpivoted dense factorization: the
// pivot at Index (0-based within the factored block) was zero, NaN, or — for
// Cholesky — non-positive. Callers translate Index into global matrix
// coordinates; errors.As is the intended access path.
type PivotError struct {
	Kernel string  // "ldlt", "zldlt" or "cholesky"
	Index  int     // pivot index within the factored block
	Value  float64 // offending pivot (real part for the complex kernel)
}

func (e *PivotError) Error() string {
	switch e.Kernel {
	case "cholesky":
		return fmt.Sprintf("blas: cholesky pivot %d non-positive (%g)", e.Index, e.Value)
	default:
		return fmt.Sprintf("blas: %s pivot %d is zero", e.Kernel, e.Index)
	}
}
