// Package etree computes elimination trees, postorderings, column counts,
// fundamental supernodes and relaxed supernode amalgamation for symmetric
// sparse matrices. These feed the block symbolic factorization and provide
// the scalar NNZ(L)/OPC metrics reported in Table 1 of the paper ("the
// values of the metrics come from scalar column symbolic factorization").
package etree

import (
	"fmt"
	"sort"

	"github.com/pastix-go/pastix/internal/sparse"
)

// Build computes the elimination tree of A (lower-CSC symmetric): parent[j]
// is the parent column of j, or -1 for roots. Liu's algorithm with path
// compression.
func Build(a *sparse.SymMatrix) []int {
	n := a.N
	parent := make([]int, n)
	ancestor := make([]int, n)
	for i := range parent {
		parent[i] = -1
		ancestor[i] = -1
	}
	// Iterate entries (i,j), j<i, in row order: from lower CSC, entry (i,j)
	// is seen when scanning column j; we need them grouped by i. Walk columns
	// and process each strictly-lower entry against row index i directly —
	// Liu's algorithm only needs, for each i, the set {j < i : a_ij != 0},
	// in any order, processed after all rows < i. Scanning i ascending and
	// using a row-wise view achieves that; build the row view on the fly.
	rowPtr, rowIdx := lowerRows(a)
	for i := 0; i < n; i++ {
		for p := rowPtr[i]; p < rowPtr[i+1]; p++ {
			j := rowIdx[p] // j < i
			for j != -1 && j < i {
				next := ancestor[j]
				ancestor[j] = i
				if next == -1 {
					parent[j] = i
				}
				j = next
			}
		}
	}
	return parent
}

// lowerRows returns a CSR view of the strict lower triangle: for each row i,
// the columns j<i with a_ij != 0, ascending.
func lowerRows(a *sparse.SymMatrix) (ptr, idx []int) {
	n := a.N
	cnt := make([]int, n)
	for j := 0; j < n; j++ {
		for p := a.ColPtr[j] + 1; p < a.ColPtr[j+1]; p++ {
			cnt[a.RowIdx[p]]++
		}
	}
	ptr = make([]int, n+1)
	for i := 0; i < n; i++ {
		ptr[i+1] = ptr[i] + cnt[i]
	}
	idx = make([]int, ptr[n])
	next := append([]int(nil), ptr[:n]...)
	for j := 0; j < n; j++ {
		for p := a.ColPtr[j] + 1; p < a.ColPtr[j+1]; p++ {
			i := a.RowIdx[p]
			idx[next[i]] = j
			next[i]++
		}
	}
	// Columns are appended in ascending j, so each row is already sorted.
	return ptr, idx
}

// Postorder returns a postorder of the forest given by parent: post[r] = v
// means vertex v has postorder rank r. Children are visited in ascending
// vertex order, making the result deterministic.
func Postorder(parent []int) []int {
	n := len(parent)
	// Build children lists (ascending by construction).
	head := make([]int, n)
	next := make([]int, n)
	for i := range head {
		head[i] = -1
	}
	var roots []int
	for v := n - 1; v >= 0; v-- { // prepend => ascending child order
		p := parent[v]
		if p == -1 {
			roots = append(roots, v)
		} else {
			next[v] = head[p]
			head[p] = v
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(roots))) // we pop from the back
	post := make([]int, 0, n)
	// Iterative DFS emitting vertices in postorder.
	type frame struct{ v, child int }
	stack := make([]frame, 0, 64)
	for len(roots) > 0 {
		r := roots[len(roots)-1]
		roots = roots[:len(roots)-1]
		stack = append(stack, frame{r, head[r]})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.child == -1 {
				post = append(post, f.v)
				stack = stack[:len(stack)-1]
				continue
			}
			c := f.child
			f.child = next[c]
			stack = append(stack, frame{c, head[c]})
		}
	}
	if len(post) != n {
		panic(fmt.Sprintf("etree: postorder visited %d of %d", len(post), n))
	}
	return post
}

// ColCounts computes, for each column j, the number of nonzeros of L in
// column j including the diagonal, by the row-subtree marking algorithm
// (O(|L|) time).
func ColCounts(a *sparse.SymMatrix, parent []int) []int {
	n := a.N
	cc := make([]int, n)
	mark := make([]int, n)
	for j := range cc {
		cc[j] = 1 // diagonal
		mark[j] = -1
	}
	rowPtr, rowIdx := lowerRows(a)
	for i := 0; i < n; i++ {
		mark[i] = i
		for p := rowPtr[i]; p < rowPtr[i+1]; p++ {
			for k := rowIdx[p]; k != -1 && k < i && mark[k] != i; k = parent[k] {
				cc[k]++ // row i appears in column k of L
				mark[k] = i
			}
		}
	}
	return cc
}

// NNZL returns the number of strictly-lower nonzeros of L given the column
// counts (the paper's NNZ_L metric).
func NNZL(cc []int) int64 {
	var s int64
	for _, c := range cc {
		s += int64(c - 1)
	}
	return s
}

// OPC returns the operation count of the scalar LLᵀ/LDLᵀ factorization with
// the given column counts: column k with m off-diagonal nonzeros costs
// m(m+3)+1 flops (rank-1 update multiply-adds, scaling divisions, and the
// pivot op). This is the standard OPC metric of Table 1.
func OPC(cc []int) float64 {
	var s float64
	for _, c := range cc {
		m := float64(c - 1)
		s += m*(m+3) + 1
	}
	return s
}

// Supernodes describes a supernode partition of the columns: half-open
// column ranges in ascending order, plus the supernodal tree (Parent[s] is
// the supernode containing the parent column of s's last column, -1 at
// roots).
type Supernodes struct {
	Ranges [][2]int
	Parent []int
}

// Count returns the number of supernodes.
func (s *Supernodes) Count() int { return len(s.Ranges) }

// ColToSnode returns a map column → supernode index.
func (s *Supernodes) ColToSnode(n int) []int {
	m := make([]int, n)
	for k, r := range s.Ranges {
		for j := r[0]; j < r[1]; j++ {
			m[j] = k
		}
	}
	return m
}

// Fundamental computes the maximal fundamental supernodes of a postordered
// matrix: columns j and j+1 share a supernode iff parent[j] == j+1 and
// cc[j+1] == cc[j]-1 (their structures then coincide below the diagonal).
func Fundamental(parent, cc []int) *Supernodes {
	n := len(parent)
	var ranges [][2]int
	start := 0
	for j := 0; j < n; j++ {
		if j == n-1 || parent[j] != j+1 || cc[j+1] != cc[j]-1 {
			ranges = append(ranges, [2]int{start, j + 1})
			start = j + 1
		}
	}
	s := &Supernodes{Ranges: ranges}
	s.computeParents(parent)
	return s
}

func (s *Supernodes) computeParents(parent []int) {
	n := 0
	if len(s.Ranges) > 0 {
		n = s.Ranges[len(s.Ranges)-1][1]
	}
	col2sn := s.ColToSnode(n)
	s.Parent = make([]int, len(s.Ranges))
	for k, r := range s.Ranges {
		last := r[1] - 1
		p := parent[last]
		if p == -1 {
			s.Parent[k] = -1
		} else {
			s.Parent[k] = col2sn[p]
		}
	}
}

// AmalgamateOptions controls relaxed supernode amalgamation.
type AmalgamateOptions struct {
	// Disable turns amalgamation off entirely (fundamental supernodes pass
	// through unchanged).
	Disable bool
	// MinWidth: a supernode narrower than this is merged into its parent
	// whenever the ranges are adjacent (default 4).
	MinWidth int
	// FillTol: merge when the estimated extra explicit zeros do not exceed
	// FillTol × the merged supernode's nonzeros (default 0.05).
	FillTol float64
}

func (o AmalgamateOptions) withDefaults() AmalgamateOptions {
	if o.MinWidth <= 0 {
		o.MinWidth = 4
	}
	if o.FillTol <= 0 {
		o.FillTol = 0.05
	}
	return o
}

// Amalgamate merges supernodes into their parents (when the column ranges
// are adjacent, which a postordered tree makes common) to reduce the block
// count at the price of some explicit zeros — the paper's relaxed
// amalgamation. cc are the scalar column counts; parent is the scalar etree.
func Amalgamate(s *Supernodes, parent, cc []int, opts AmalgamateOptions) *Supernodes {
	if opts.Disable {
		return s
	}
	opts = opts.withDefaults()
	ns := len(s.Ranges)
	start := make([]int, ns)
	end := make([]int, ns)
	alive := make([]bool, ns)
	rep := make([]int, ns) // representative after merges
	for k, r := range s.Ranges {
		start[k], end[k], alive[k], rep[k] = r[0], r[1], true, k
	}
	find := func(k int) int {
		for rep[k] != k {
			rep[k] = rep[rep[k]]
			k = rep[k]
		}
		return k
	}
	// Sweep from the root end downward so that chains collapse fully: once a
	// supernode merges into its parent, the child below becomes adjacent to
	// the merged range.
	for k := ns - 1; k >= 0; k-- {
		if !alive[k] {
			continue
		}
		pk := s.Parent[k]
		if pk == -1 {
			continue
		}
		p := find(pk)
		if start[p] != end[k] {
			continue // not adjacent; merging would break contiguity
		}
		ws := end[k] - start[k]
		wt := end[p] - start[p]
		rowsS := cc[start[k]] - ws // off-diagonal rows below supernode k
		rowsT := cc[start[p]] - wt
		extra := ws * (wt + rowsT - rowsS)
		if extra < 0 {
			extra = 0
		}
		w := ws + wt
		mergedNNZ := w*(w+1)/2 + w*rowsT
		if ws <= opts.MinWidth || float64(extra) <= opts.FillTol*float64(mergedNNZ) {
			start[p] = start[k]
			alive[k] = false
			rep[k] = p
		}
	}
	out := &Supernodes{}
	old2new := make([]int, ns)
	for k := 0; k < ns; k++ {
		if alive[k] {
			old2new[k] = len(out.Ranges)
			out.Ranges = append(out.Ranges, [2]int{start[k], end[k]})
		}
	}
	out.Parent = make([]int, len(out.Ranges))
	for k := 0; k < ns; k++ {
		if !alive[k] {
			continue
		}
		nk := old2new[k]
		pk := s.Parent[k]
		if pk == -1 {
			out.Parent[nk] = -1
			continue
		}
		p := find(pk)
		if p == k {
			out.Parent[nk] = -1
		} else {
			out.Parent[nk] = old2new[find(p)]
		}
	}
	return out
}

// ApplyPostorder maps an elimination forest and column counts through a
// postorder: it returns the composed permutation data for the reordered
// matrix, where newParent[ipost[v]] = ipost[parent[v]] and newCC likewise.
// post[r]=v gives rank r of old vertex v.
func ApplyPostorder(parent, cc, post []int) (newParent, newCC []int) {
	n := len(parent)
	ipost := make([]int, n)
	for r, v := range post {
		ipost[v] = r
	}
	newParent = make([]int, n)
	newCC = make([]int, n)
	for v := 0; v < n; v++ {
		r := ipost[v]
		if parent[v] == -1 {
			newParent[r] = -1
		} else {
			newParent[r] = ipost[parent[v]]
		}
		newCC[r] = cc[v]
	}
	return newParent, newCC
}

// Validate checks supernode partition invariants over n columns.
func (s *Supernodes) Validate(n int) error {
	pos := 0
	for k, r := range s.Ranges {
		if r[0] != pos || r[1] <= r[0] {
			return fmt.Errorf("etree: supernode %d range %v not contiguous at %d", k, r, pos)
		}
		pos = r[1]
		if p := s.Parent[k]; p != -1 && p <= k {
			return fmt.Errorf("etree: supernode %d parent %d not later", k, p)
		}
	}
	if pos != n {
		return fmt.Errorf("etree: supernodes cover %d of %d columns", pos, n)
	}
	return nil
}
