package etree

import (
	"math/rand"
	"testing"

	"github.com/pastix-go/pastix/internal/sparse"
)

// arrow builds the n×n "arrow" matrix with dense last row/column: its etree
// is a path and L fills completely in the last column only.
func arrow(n int) *sparse.SymMatrix {
	b := sparse.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.Add(i, i, float64(n+2))
		if i < n-1 {
			b.Add(n-1, i, -1)
		}
	}
	return b.Build()
}

// tridiag builds a tridiagonal SPD matrix; L has no fill and the etree is a
// path 0→1→…→n-1.
func tridiag(n int) *sparse.SymMatrix {
	b := sparse.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 4)
		if i+1 < n {
			b.Add(i+1, i, -1)
		}
	}
	return b.Build()
}

func laplacian2D(nx, ny int) *sparse.SymMatrix {
	b := sparse.NewBuilder(nx * ny)
	idx := func(i, j int) int { return i + j*nx }
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			v := idx(i, j)
			b.Add(v, v, 4)
			if i+1 < nx {
				b.Add(v, idx(i+1, j), -1)
			}
			if j+1 < ny {
				b.Add(v, idx(i, j+1), -1)
			}
		}
	}
	return b.Build()
}

// denseSymbolic computes L's column counts by explicit dense symbolic
// elimination (reference oracle, O(n³)).
func denseSymbolic(a *sparse.SymMatrix) []int {
	n := a.N
	pat := make([][]bool, n)
	for i := range pat {
		pat[i] = make([]bool, n)
	}
	for j := 0; j < n; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			pat[a.RowIdx[p]][j] = true
		}
	}
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			if !pat[i][k] {
				continue
			}
			for j := k + 1; j <= i; j++ {
				if pat[j][k] {
					pat[i][j] = true
				}
			}
		}
	}
	cc := make([]int, n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			if pat[i][j] {
				cc[j]++
			}
		}
	}
	return cc
}

func TestEtreeTridiag(t *testing.T) {
	a := tridiag(8)
	parent := Build(a)
	for j := 0; j < 7; j++ {
		if parent[j] != j+1 {
			t.Fatalf("parent[%d]=%d", j, parent[j])
		}
	}
	if parent[7] != -1 {
		t.Fatal("root should have parent -1")
	}
}

func TestEtreeArrow(t *testing.T) {
	a := arrow(6)
	parent := Build(a)
	for j := 0; j < 5; j++ {
		if parent[j] != 5 {
			t.Fatalf("parent[%d]=%d want 5", j, parent[j])
		}
	}
}

func TestColCountsAgainstDenseOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(25)
		b := sparse.NewBuilder(n)
		for i := 0; i < n; i++ {
			b.Add(i, i, 10)
			for j := 0; j < i; j++ {
				if rng.Float64() < 0.2 {
					b.Add(i, j, -1)
				}
			}
		}
		a := b.Build()
		parent := Build(a)
		cc := ColCounts(a, parent)
		want := denseSymbolic(a)
		for j := 0; j < n; j++ {
			if cc[j] != want[j] {
				t.Fatalf("trial %d: cc[%d]=%d want %d", trial, j, cc[j], want[j])
			}
		}
	}
}

func TestColCountsLaplacian(t *testing.T) {
	a := laplacian2D(5, 5)
	parent := Build(a)
	cc := ColCounts(a, parent)
	want := denseSymbolic(a)
	for j := range cc {
		if cc[j] != want[j] {
			t.Fatalf("cc[%d]=%d want %d", j, cc[j], want[j])
		}
	}
}

func TestNNZLandOPC(t *testing.T) {
	a := tridiag(10)
	parent := Build(a)
	cc := ColCounts(a, parent)
	if got := NNZL(cc); got != 9 {
		t.Fatalf("NNZL=%d want 9", got)
	}
	// Each of the 9 non-root columns: m=1 → 1*(1+3)+1 = 5; root m=0 → 1.
	if got := OPC(cc); got != 9*5+1 {
		t.Fatalf("OPC=%g want 46", got)
	}
}

func TestPostorderIsPermutationAndTopological(t *testing.T) {
	a := laplacian2D(6, 6)
	parent := Build(a)
	post := Postorder(parent)
	n := len(parent)
	seen := make([]bool, n)
	rank := make([]int, n)
	for r, v := range post {
		if v < 0 || v >= n || seen[v] {
			t.Fatal("postorder not a permutation")
		}
		seen[v] = true
		rank[v] = r
	}
	for v := 0; v < n; v++ {
		if p := parent[v]; p != -1 && rank[p] < rank[v] {
			t.Fatalf("parent %d ranked before child %d", p, v)
		}
	}
}

func TestPostorderContiguousSubtrees(t *testing.T) {
	// In a postorder, each subtree occupies a contiguous rank interval.
	a := laplacian2D(5, 4)
	parent := Build(a)
	post := Postorder(parent)
	n := len(parent)
	rank := make([]int, n)
	for r, v := range post {
		rank[v] = r
	}
	// min rank of subtree(v) must equal rank[v] - size(subtree)+1.
	size := make([]int, n)
	minRank := make([]int, n)
	for v := range size {
		size[v] = 1
		minRank[v] = rank[v]
	}
	for _, v := range post { // children before parents
		if p := parent[v]; p != -1 {
			size[p] += size[v]
			if minRank[v] < minRank[p] {
				minRank[p] = minRank[v]
			}
		}
	}
	for v := 0; v < n; v++ {
		if minRank[v] != rank[v]-size[v]+1 {
			t.Fatalf("subtree of %d not contiguous", v)
		}
	}
}

func TestApplyPostorderPreservesStructure(t *testing.T) {
	a := laplacian2D(6, 5)
	parent := Build(a)
	cc := ColCounts(a, parent)
	post := Postorder(parent)
	newParent, newCC := ApplyPostorder(parent, cc, post)
	// The permuted matrix must have exactly newParent as etree and newCC as
	// column counts (postorder is a fill-equivalent reordering).
	p := a.Permute(post)
	gotParent := Build(p)
	gotCC := ColCounts(p, gotParent)
	for j := range gotParent {
		if gotParent[j] != newParent[j] {
			t.Fatalf("parent[%d]=%d want %d", j, gotParent[j], newParent[j])
		}
		if gotCC[j] != newCC[j] {
			t.Fatalf("cc[%d]=%d want %d", j, gotCC[j], newCC[j])
		}
	}
}

func TestFundamentalSupernodesTridiag(t *testing.T) {
	// Tridiagonal: Struct(L_j) = {j, j+1}, which is NOT Struct(L_{j+1}) ∪
	// {j+1}, so every column is its own fundamental supernode except the last
	// two, which do share structure ({n-2,n-1} and {n-1}).
	a := tridiag(6)
	parent := Build(a)
	cc := ColCounts(a, parent)
	s := Fundamental(parent, cc)
	if err := s.Validate(6); err != nil {
		t.Fatal(err)
	}
	if s.Count() != 5 {
		t.Fatalf("want 5 supernodes, got %v", s.Ranges)
	}
	last := s.Ranges[4]
	if last[0] != 4 || last[1] != 6 {
		t.Fatalf("last supernode %v want [4,6)", last)
	}
}

func TestFundamentalSupernodesArrow(t *testing.T) {
	a := arrow(5)
	parent := Build(a)
	cc := ColCounts(a, parent)
	s := Fundamental(parent, cc)
	if err := s.Validate(5); err != nil {
		t.Fatal(err)
	}
	// Columns 0..3 each have structure {j, 4}: parent[j]=4 ≠ j+1 except j=3.
	// Column 3's cc=2, column 4's cc=1 = cc[3]-1 and parent[3]=4 → {3,4}
	// merge; 0,1,2 stay singletons.
	if s.Count() != 4 {
		t.Fatalf("want 4 supernodes, got %v", s.Ranges)
	}
	last := s.Ranges[len(s.Ranges)-1]
	if last[0] != 3 || last[1] != 5 {
		t.Fatalf("last supernode %v want [3,5)", last)
	}
}

func TestSupernodeParents(t *testing.T) {
	a := arrow(5)
	parent := Build(a)
	cc := ColCounts(a, parent)
	s := Fundamental(parent, cc)
	for k := 0; k < s.Count()-1; k++ {
		if s.Parent[k] != s.Count()-1 {
			t.Fatalf("supernode %d parent %d, want root %d", k, s.Parent[k], s.Count()-1)
		}
	}
	if s.Parent[s.Count()-1] != -1 {
		t.Fatal("root supernode should have parent -1")
	}
}

func TestAmalgamateMergesSingletons(t *testing.T) {
	a := arrow(8)
	parent := Build(a)
	cc := ColCounts(a, parent)
	s := Fundamental(parent, cc)
	am := Amalgamate(s, parent, cc, AmalgamateOptions{MinWidth: 8, FillTol: 1})
	if err := am.Validate(8); err != nil {
		t.Fatal(err)
	}
	if am.Count() >= s.Count() {
		t.Fatalf("amalgamation did not reduce supernodes: %d -> %d", s.Count(), am.Count())
	}
	// With aggressive settings on the arrow matrix everything collapses into
	// one supernode (ranges are chain-adjacent).
	if am.Count() != 1 {
		t.Fatalf("want full collapse, got %v", am.Ranges)
	}
}

func TestAmalgamateConservative(t *testing.T) {
	// With MinWidth 1 and tiny tolerance, the 2D Laplacian partition should
	// keep most supernodes (little amalgamation).
	a := laplacian2D(8, 8)
	parent := Build(a)
	post := Postorder(parent)
	p := a.Permute(post)
	parent = Build(p)
	cc := ColCounts(p, parent)
	s := Fundamental(parent, cc)
	am := Amalgamate(s, parent, cc, AmalgamateOptions{MinWidth: 1, FillTol: 1e-9})
	if am.Count() > s.Count() {
		t.Fatal("amalgamation increased supernode count")
	}
	if err := am.Validate(p.N); err != nil {
		t.Fatal(err)
	}
}

func TestColCountsMonotoneUnderPostorder(t *testing.T) {
	// NNZL and OPC are invariant under postorder reordering.
	a := laplacian2D(7, 7)
	parent := Build(a)
	cc := ColCounts(a, parent)
	post := Postorder(parent)
	p := a.Permute(post)
	cc2 := ColCounts(p, Build(p))
	if NNZL(cc) != NNZL(cc2) {
		t.Fatalf("NNZL changed under postorder: %d vs %d", NNZL(cc), NNZL(cc2))
	}
	if OPC(cc) != OPC(cc2) {
		t.Fatalf("OPC changed under postorder")
	}
}
