// Package faults is a seeded, deterministic fault injector for the mpsim
// message-passing runtime. A Plan gives per-transmission drop/duplicate/delay
// probabilities and per-processor crash and stall schedules; the Injector it
// compiles to decides every fault by hashing (seed, decision, coordinates)
// with a splitmix64-style mixer — no shared RNG state, so the fault sequence
// for a given seed is identical regardless of goroutine interleaving, and a
// chaos failure can be replayed from its seed alone.
//
// The injector implements mpsim.Injector for wire faults; workers additionally
// call Boundary at each task boundary, which is where crashes and stalls fire
// (a crash surfaces as an error matching mpsim.ErrCrashed, which Comm.Run
// turns into a restart-and-replay).
package faults

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/pastix-go/pastix/internal/mpsim"
	"github.com/pastix-go/pastix/internal/trace"
)

// Stall schedules one cooperative stall window on a processor: before
// executing task Step, the worker blocks for Duration (or until the heartbeat
// supervisor declares it dead and breaks the stall, whichever is first).
type Stall struct {
	Step     int
	Duration time.Duration
}

// Plan configures deterministic fault injection. The zero value injects
// nothing; probabilities are per wire transmission (resends and acks are
// judged independently, so a message can be dropped repeatedly).
type Plan struct {
	Seed int64 // hash seed; same seed + same traffic → same faults

	Drop  float64 // P(lose a transmission), in [0,1)
	Dup   float64 // P(deliver an extra copy), in [0,1)
	Delay float64 // P(hold a delivery back), in [0,1)

	// MaxDelay bounds injected delivery delays (default 1ms). Keep it above
	// the reliability RTO to exercise spurious resends, or below to keep
	// delays benign.
	MaxDelay time.Duration

	// CrashAtStep crashes processor p once, immediately before it executes
	// task index step of its (possibly restarted) run. The restarted worker
	// replays from its completion log and does not crash again.
	CrashAtStep map[int]int

	// StallAtStep stalls processor p once, immediately before task index
	// Step. Stalls shorter than the reliability StallTimeout end naturally
	// (pure delay); longer ones are broken by the heartbeat supervisor and
	// unwind as a crash + restart.
	StallAtStep map[int]Stall

	// Reliability tunes the mpsim retry/timeout/recovery machinery; the zero
	// value selects its defaults.
	Reliability mpsim.Reliability
}

// Active reports whether the plan injects any fault at all.
func (p *Plan) Active() bool {
	if p == nil {
		return false
	}
	return p.Drop > 0 || p.Dup > 0 || p.Delay > 0 || len(p.CrashAtStep) > 0 || len(p.StallAtStep) > 0
}

// Validate checks the plan's probabilities and schedules.
func (p *Plan) Validate() error {
	check := func(name string, v float64) error {
		if v < 0 || v >= 1 {
			return fmt.Errorf("faults: %s probability %v outside [0,1)", name, v)
		}
		return nil
	}
	if err := check("drop", p.Drop); err != nil {
		return err
	}
	if err := check("dup", p.Dup); err != nil {
		return err
	}
	if err := check("delay", p.Delay); err != nil {
		return err
	}
	if p.MaxDelay < 0 {
		return fmt.Errorf("faults: negative MaxDelay %v", p.MaxDelay)
	}
	for proc, step := range p.CrashAtStep {
		if proc < 0 || step < 0 {
			return fmt.Errorf("faults: invalid crash schedule proc %d step %d", proc, step)
		}
	}
	for proc, s := range p.StallAtStep {
		if proc < 0 || s.Step < 0 || s.Duration <= 0 {
			return fmt.Errorf("faults: invalid stall schedule proc %d step %d duration %v", proc, s.Step, s.Duration)
		}
	}
	return nil
}

// Stats counts the faults an Injector actually fired.
type Stats struct {
	Drops        int64
	Dups         int64
	Delays       int64
	Crashes      int64
	Stalls       int64
	BrokenStalls int64 // stalls ended by the heartbeat supervisor (→ restart)
}

// CrashError is the error a worker returns from Boundary to simulate its
// crash; mpsim.Comm.Run matches it via errors.Is(err, mpsim.ErrCrashed) and
// restarts the worker.
type CrashError struct {
	Proc    int
	Step    int
	Stalled bool // crash was a stall broken by the heartbeat supervisor
}

func (e *CrashError) Error() string {
	if e.Stalled {
		return fmt.Sprintf("faults: processor %d stalled before task %d, declared dead by supervisor", e.Proc, e.Step)
	}
	return fmt.Sprintf("faults: processor %d crashed before task %d", e.Proc, e.Step)
}

// Is makes errors.Is(err, mpsim.ErrCrashed) succeed for CrashError values.
func (e *CrashError) Is(target error) bool { return errors.Is(mpsim.ErrCrashed, target) }

// decision purposes fed into the hash so each independent draw for the same
// transmission decorrelates.
const (
	purposeDrop = 1 + iota
	purposeDup
	purposeDupDelay
	purposeDelay
	purposeDelayMag
)

// Injector is a compiled Plan. Safe for concurrent use; FateOf is pure in
// its arguments given the seed.
type Injector struct {
	plan Plan
	rec  *trace.Recorder

	mu      sync.Mutex
	crashed map[int]bool          // crash schedule already fired
	stalled map[int]bool          // stall schedule already fired
	gates   map[int]chan struct{} // open stall gates, closed by BreakStall
	stats   Stats
}

// New compiles a plan into an Injector. Returns an error if the plan is
// invalid; a nil error never returns a nil injector.
func New(plan Plan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if plan.MaxDelay <= 0 {
		plan.MaxDelay = time.Millisecond
	}
	return &Injector{
		plan:    plan,
		crashed: make(map[int]bool),
		stalled: make(map[int]bool),
		gates:   make(map[int]chan struct{}),
	}, nil
}

// SetTrace attaches a recorder; injected faults are recorded as KindFault
// events. Call before the run starts.
func (in *Injector) SetTrace(rec *trace.Recorder) { in.rec = rec }

// mix64 is the splitmix64 finalizer: a bijective avalanche mixer, used here
// as a counter-based PRNG over decision coordinates.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rnd draws a deterministic uniform in [0,1) for one decision about one
// transmission.
func (in *Injector) rnd(purpose, src, dst int, seq int64, attempt int, ack bool) float64 {
	a := uint64(attempt) << 1
	if ack {
		a |= 1
	}
	h := mix64(uint64(in.plan.Seed))
	h = mix64(h ^ uint64(purpose))
	h = mix64(h ^ uint64(src)<<32 ^ uint64(dst))
	h = mix64(h ^ uint64(seq))
	h = mix64(h ^ a)
	return float64(h>>11) / (1 << 53)
}

// FateOf implements mpsim.Injector: it judges one wire transmission.
// Duplicates are only injected for data messages (acks are idempotent, a
// duplicate ack would test nothing).
func (in *Injector) FateOf(src, dst int, seq int64, attempt int, ack bool) mpsim.Fate {
	var f mpsim.Fate
	if in.plan.Drop > 0 && in.rnd(purposeDrop, src, dst, seq, attempt, ack) < in.plan.Drop {
		f.Drop = true
		in.count(func(s *Stats) { s.Drops++ })
		if in.rec != nil {
			in.rec.Fault(src, trace.FaultDrop, int(seq), 0)
		}
		return f
	}
	if !ack && in.plan.Dup > 0 && in.rnd(purposeDup, src, dst, seq, attempt, ack) < in.plan.Dup {
		f.Dup = true
		f.DupDelay = time.Duration(in.rnd(purposeDupDelay, src, dst, seq, attempt, ack) * float64(in.plan.MaxDelay))
		in.count(func(s *Stats) { s.Dups++ })
		if in.rec != nil {
			in.rec.Fault(src, trace.FaultDup, int(seq), 0)
		}
	}
	if in.plan.Delay > 0 && in.rnd(purposeDelay, src, dst, seq, attempt, ack) < in.plan.Delay {
		f.Delay = time.Duration(in.rnd(purposeDelayMag, src, dst, seq, attempt, ack) * float64(in.plan.MaxDelay))
		if f.Delay > 0 {
			in.count(func(s *Stats) { s.Delays++ })
			if in.rec != nil {
				in.rec.Fault(src, trace.FaultDelay, int(seq), int64(f.Delay))
			}
		}
	}
	return f
}

// Boundary is called by a worker on processor p immediately before executing
// its task at index step. It fires the plan's crash and stall schedules:
// a non-nil return means the worker must unwind with that error (it matches
// mpsim.ErrCrashed, so Run restarts it). Each schedule entry fires at most
// once across restarts — the replay after a crash runs clean.
func (in *Injector) Boundary(p, step int) error {
	if in == nil {
		return nil
	}
	if s, ok := in.plan.CrashAtStep[p]; ok && s == step {
		in.mu.Lock()
		fire := !in.crashed[p]
		in.crashed[p] = true
		if fire {
			in.stats.Crashes++
		}
		in.mu.Unlock()
		if fire {
			if in.rec != nil {
				in.rec.Fault(p, trace.FaultCrash, step, 0)
			}
			return &CrashError{Proc: p, Step: step}
		}
	}
	if s, ok := in.plan.StallAtStep[p]; ok && s.Step == step {
		in.mu.Lock()
		fire := !in.stalled[p]
		in.stalled[p] = true
		var gate chan struct{}
		if fire {
			in.stats.Stalls++
			gate = make(chan struct{})
			in.gates[p] = gate
		}
		in.mu.Unlock()
		if fire {
			if in.rec != nil {
				in.rec.Fault(p, trace.FaultStall, step, int64(s.Duration))
			}
			t := time.NewTimer(s.Duration)
			broken := false
			select {
			case <-t.C:
			case <-gate:
				broken = true
			}
			t.Stop()
			in.mu.Lock()
			if in.gates[p] == gate {
				delete(in.gates, p)
			}
			if broken {
				in.stats.BrokenStalls++
			}
			in.mu.Unlock()
			if broken {
				return &CrashError{Proc: p, Step: step, Stalled: true}
			}
		}
	}
	return nil
}

// BreakStall implements mpsim.Injector: the heartbeat supervisor calls it
// when p's heartbeat goes stale. It ends p's stall (the stalled worker then
// unwinds as a crash and is restarted) and reports whether p was actually
// stalled — a stale heartbeat on a worker merely blocked in Recv is left
// alone.
func (in *Injector) BreakStall(p int) bool {
	in.mu.Lock()
	gate, ok := in.gates[p]
	if ok {
		delete(in.gates, p)
	}
	in.mu.Unlock()
	if ok {
		close(gate)
	}
	return ok
}

// Stats returns the counts of faults fired so far.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

func (in *Injector) count(f func(*Stats)) {
	in.mu.Lock()
	f(&in.stats)
	in.mu.Unlock()
}
