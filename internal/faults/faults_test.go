package faults

import (
	"errors"
	"testing"
	"time"

	"github.com/pastix-go/pastix/internal/mpsim"
)

func mustNew(t *testing.T, plan Plan) *Injector {
	t.Helper()
	in, err := New(plan)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// Same seed must yield the same fate for every transmission regardless of
// call order; a different seed must disagree somewhere.
func TestFateDeterminism(t *testing.T) {
	plan := Plan{Seed: 42, Drop: 0.3, Dup: 0.3, Delay: 0.3, MaxDelay: time.Millisecond}
	a := mustNew(t, plan)
	b := mustNew(t, plan)
	plan.Seed = 43
	c := mustNew(t, plan)
	differs := false
	for src := 0; src < 3; src++ {
		for dst := 0; dst < 3; dst++ {
			for seq := int64(0); seq < 50; seq++ {
				for attempt := 0; attempt < 3; attempt++ {
					for _, ack := range []bool{false, true} {
						fa := a.FateOf(src, dst, seq, attempt, ack)
						fb := b.FateOf(src, dst, seq, attempt, ack)
						if fa != fb {
							t.Fatalf("same seed disagrees at (%d,%d,%d,%d,%v): %+v vs %+v",
								src, dst, seq, attempt, ack, fa, fb)
						}
						if fa != c.FateOf(src, dst, seq, attempt, ack) {
							differs = true
						}
					}
				}
			}
		}
	}
	if !differs {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

// Drop frequency should track the configured probability roughly.
func TestDropRate(t *testing.T) {
	in := mustNew(t, Plan{Seed: 7, Drop: 0.5})
	drops := 0
	const n = 2000
	for seq := int64(0); seq < n; seq++ {
		if in.FateOf(0, 1, seq, 0, false).Drop {
			drops++
		}
	}
	if drops < n/3 || drops > 2*n/3 {
		t.Fatalf("drop rate %d/%d far from configured 0.5", drops, n)
	}
	if st := in.Stats(); st.Drops != int64(drops) {
		t.Fatalf("stats drops %d, counted %d", st.Drops, drops)
	}
}

func TestAcksNeverDuplicated(t *testing.T) {
	in := mustNew(t, Plan{Seed: 3, Dup: 0.9})
	for seq := int64(0); seq < 500; seq++ {
		if in.FateOf(0, 1, seq, 0, true).Dup {
			t.Fatal("duplicated an ack")
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []Plan{
		{Drop: 1.0},
		{Dup: -0.1},
		{Delay: 2},
		{MaxDelay: -time.Second},
		{CrashAtStep: map[int]int{-1: 0}},
		{StallAtStep: map[int]Stall{0: {Step: 1, Duration: 0}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d: invalid plan accepted", i)
		}
		if _, err := New(p); err == nil {
			t.Errorf("plan %d: New accepted invalid plan", i)
		}
	}
	if err := (&Plan{Seed: 1, Drop: 0.5, CrashAtStep: map[int]int{0: 3}}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestActive(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.Active() {
		t.Fatal("nil plan active")
	}
	if (&Plan{Seed: 99}).Active() {
		t.Fatal("no-fault plan active")
	}
	if !(&Plan{Drop: 0.1}).Active() || !(&Plan{CrashAtStep: map[int]int{0: 0}}).Active() {
		t.Fatal("faulty plan inactive")
	}
}

// A scheduled crash fires exactly once, matches mpsim.ErrCrashed, and the
// replay after the restart runs clean.
func TestBoundaryCrashOnce(t *testing.T) {
	in := mustNew(t, Plan{CrashAtStep: map[int]int{1: 3}})
	if err := in.Boundary(0, 3); err != nil {
		t.Fatalf("wrong proc crashed: %v", err)
	}
	if err := in.Boundary(1, 2); err != nil {
		t.Fatalf("wrong step crashed: %v", err)
	}
	err := in.Boundary(1, 3)
	if err == nil {
		t.Fatal("scheduled crash did not fire")
	}
	if !errors.Is(err, mpsim.ErrCrashed) {
		t.Fatalf("crash not matchable: %v", err)
	}
	var ce *CrashError
	if !errors.As(err, &ce) || ce.Proc != 1 || ce.Step != 3 || ce.Stalled {
		t.Fatalf("crash detail wrong: %+v", ce)
	}
	if err := in.Boundary(1, 3); err != nil {
		t.Fatalf("crash fired twice: %v", err)
	}
	if st := in.Stats(); st.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", st.Crashes)
	}
}

// A stall shorter than any supervision is a pure delay: Boundary returns nil
// after the window.
func TestBoundaryStallEndsNaturally(t *testing.T) {
	in := mustNew(t, Plan{StallAtStep: map[int]Stall{0: {Step: 2, Duration: time.Millisecond}}})
	start := time.Now()
	if err := in.Boundary(0, 2); err != nil {
		t.Fatalf("natural stall crashed: %v", err)
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("stall did not block")
	}
	if err := in.Boundary(0, 2); err != nil {
		t.Fatalf("stall fired twice: %v", err)
	}
	st := in.Stats()
	if st.Stalls != 1 || st.BrokenStalls != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// BreakStall ends a long stall and the worker unwinds as a crash.
func TestBreakStall(t *testing.T) {
	in := mustNew(t, Plan{StallAtStep: map[int]Stall{2: {Step: 0, Duration: time.Minute}}})
	if in.BreakStall(2) {
		t.Fatal("broke a stall that has not started")
	}
	done := make(chan error, 1)
	go func() { done <- in.Boundary(2, 0) }()
	deadline := time.Now().Add(5 * time.Second)
	for !in.BreakStall(2) {
		if time.Now().After(deadline) {
			t.Fatal("stall gate never appeared")
		}
		time.Sleep(100 * time.Microsecond)
	}
	err := <-done
	if !errors.Is(err, mpsim.ErrCrashed) {
		t.Fatalf("broken stall must crash: %v", err)
	}
	var ce *CrashError
	if !errors.As(err, &ce) || !ce.Stalled {
		t.Fatalf("stall detail wrong: %+v", ce)
	}
	if st := in.Stats(); st.Stalls != 1 || st.BrokenStalls != 1 {
		t.Fatalf("stats %+v", st)
	}
	if in.BreakStall(2) {
		t.Fatal("broke an already-broken stall")
	}
}
