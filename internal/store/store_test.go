package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/pastix-go/pastix/internal/gen"
	"github.com/pastix-go/pastix/internal/lowrank"
	"github.com/pastix-go/pastix/internal/solver"
	"github.com/pastix-go/pastix/internal/sparse"
)

// testMatrix is a small valid symmetric matrix with distinctive values.
func testMatrix(n int) *sparse.SymMatrix {
	m := gen.Laplacian2D(n, n)
	for i := range m.Val {
		m.Val[i] *= 1 + 1e-3*float64(i%7)
	}
	return m
}

// densePayload builds a synthetic dense factor payload (the codec does not
// validate against a symbol; solver.ImportFactors does that downstream).
func densePayload() *solver.FactorPayload {
	return &solver.FactorPayload{
		Cells: [][]float64{{1, 2.5, -3}, {}, {4.25}},
		Pivots: &solver.PerturbationReport{
			Epsilon: 1e-8, NormMax: 4, Threshold: 4e-8, PivotGrowth: 1.25,
			Perturbed: []solver.Perturbation{{Column: 3, Original: 1e-12, Used: 4e-8}},
		},
	}
}

func lrPayload() *solver.FactorPayload {
	return &solver.FactorPayload{
		LRCells: []solver.LRCellPayload{
			{
				Diag:  []float64{2, 0.5, 0.5, 3},
				Dense: []float64{1, 2, 3, 4},
				Off:   []int32{0, -1},
				LR: []*lowrank.LRBlock{nil, {
					Rows: 3, Cols: 2, Rank: 1,
					U: []float64{1, 2, 3}, V: []float64{0.5, -0.5},
				}},
			},
		},
		Comp: &solver.CompressionStats{DenseBytes: 96, CompressedBytes: 72, Ratio: 96.0 / 72, BlocksCompressed: 1, BlocksTotal: 2},
	}
}

func factorRecord(handle, idem string, p *solver.FactorPayload) *FactorRecord {
	return &FactorRecord{
		Handle:      handle,
		Fingerprint: "fp-" + handle,
		IdemKey:     idem,
		Matrix:      testMatrix(4),
		Payload:     p,
		Response:    []byte(`{"handle":"` + handle + `","durable":true}`),
	}
}

func TestFactorRecordRoundTrip(t *testing.T) {
	for name, p := range map[string]*solver.FactorPayload{"dense": densePayload(), "lr": lrPayload()} {
		in := factorRecord("f-000001-abcd", "key-1", p)
		b := MarshalFactorRecord(in)
		out, err := UnmarshalFactorRecord(b)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("%s: round trip mismatch:\n in=%+v\nout=%+v", name, in, out)
		}
	}
}

func TestOpenEmptyAndAppendReplay(t *testing.T) {
	dir := t.TempDir()
	s, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Factors) != 0 || len(rec.Analyses) != 0 || rec.TornTail {
		t.Fatalf("fresh store not empty: %+v", rec)
	}
	if _, err := s.AppendAnalysis(&AnalysisRecord{Fingerprint: "fpA", Matrix: testMatrix(3)}); err != nil {
		t.Fatal(err)
	}
	// Second append of the same fingerprint is a no-op.
	if appended, err := s.AppendAnalysis(&AnalysisRecord{Fingerprint: "fpA", Matrix: testMatrix(3)}); err != nil || appended {
		t.Fatalf("duplicate analysis appended=%v err=%v", appended, err)
	}
	if err := s.AppendFactor(factorRecord("f-000001-aaaa", "k1", densePayload())); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendFactor(factorRecord("f-000002-bbbb", "", lrPayload())); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendRelease("f-000001-aaaa"); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.LiveFactors != 1 || st.LiveAnalyses != 1 || st.WALRecords != 4 {
		t.Fatalf("stats %+v", st)
	}
	s.Close()

	s2, rec2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if len(rec2.Factors) != 1 || rec2.Factors[0].Handle != "f-000002-bbbb" {
		t.Fatalf("recovered factors %+v", rec2.Factors)
	}
	if len(rec2.Analyses) != 1 || rec2.Analyses[0].Fingerprint != "fpA" {
		t.Fatalf("recovered analyses %+v", rec2.Analyses)
	}
	if rec2.TornTail {
		t.Fatal("unexpected torn tail")
	}
	if !reflect.DeepEqual(rec2.Factors[0].Payload, lrPayload()) {
		t.Fatal("recovered payload differs")
	}
	// The store keeps appending after recovery without sequence conflicts.
	if err := s2.AppendFactor(factorRecord("f-000003-cccc", "", densePayload())); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{SnapshotEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		h := fmt.Sprintf("f-%06d-snap", i+1)
		if err := s.AppendFactor(factorRecord(h, "", densePayload())); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AppendRelease("f-000001-snap"); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Snapshots == 0 {
		t.Fatal("no snapshot happened")
	}
	if st.WALRecords >= 13 {
		t.Fatalf("WAL not compacted: %+v", st)
	}
	s.Close()
	s2, rec, err := Open(dir, Options{SnapshotEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if len(rec.Factors) != 11 {
		t.Fatalf("recovered %d factors, want 11", len(rec.Factors))
	}
	for _, fr := range rec.Factors {
		if fr.Handle == "f-000001-snap" {
			t.Fatal("released handle resurrected by snapshot replay")
		}
	}
}

// TestCrashAtEveryWrite proves the acceptance criterion: with a seeded crash
// injected at write k for every k, the store recovers exactly the records
// acknowledged before the crash — every prefix of a crashed WAL is a
// consistent store.
func TestCrashAtEveryWrite(t *testing.T) {
	const appends = 10
	for _, seed := range []int64{1, 7, 42} {
		for k := 1; k <= appends+3; k++ { // +3 reaches into snapshot writes
			dir := t.TempDir()
			s, _, err := Open(dir, Options{SnapshotEvery: 4, CrashAfterWrites: k, CrashSeed: seed})
			if err != nil {
				t.Fatal(err)
			}
			acked := 0
			for i := 0; i < appends; i++ {
				h := fmt.Sprintf("f-%06d-crsh", i+1)
				err := s.AppendFactor(factorRecord(h, fmt.Sprintf("k%d", i), densePayload()))
				if err != nil {
					if !errors.Is(err, ErrInjectedCrash) {
						t.Fatalf("seed %d k %d append %d: %v", seed, k, i, err)
					}
					break
				}
				acked++
			}
			s.Close()

			s2, rec, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("seed %d k %d: recovery failed: %v", seed, k, err)
			}
			// Recovery must hold at least every acknowledged append; the
			// record torn by the crash itself was never acked and must be
			// dropped cleanly (never a decode error, never a partial record).
			if len(rec.Factors) < acked || len(rec.Factors) > acked+1 {
				t.Fatalf("seed %d k %d: recovered %d factors, acked %d", seed, k, len(rec.Factors), acked)
			}
			for i, fr := range rec.Factors {
				want := factorRecord(fmt.Sprintf("f-%06d-crsh", i+1), fmt.Sprintf("k%d", i), densePayload())
				if !reflect.DeepEqual(fr, want) {
					t.Fatalf("seed %d k %d: recovered record %d differs", seed, k, i)
				}
			}
			// The recovered store must accept new appends.
			if err := s2.AppendFactor(factorRecord("f-900000-postx", "", densePayload())); err != nil {
				t.Fatalf("seed %d k %d: post-recovery append: %v", seed, k, err)
			}
			s2.Close()
		}
	}
}

// --- corruption table tests ---

// buildWAL writes a store with nrec factor records and returns the WAL path.
func buildWAL(t *testing.T, nrec int) (dir, wal string) {
	t.Helper()
	dir = t.TempDir()
	s, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nrec; i++ {
		if err := s.AppendFactor(factorRecord(fmt.Sprintf("f-%06d-corr", i+1), "", densePayload())); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	return dir, filepath.Join(dir, walName)
}

func TestRecoverTruncatedTail(t *testing.T) {
	dir, wal := buildWAL(t, 3)
	b, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	rec1 := len(b) / 3 // all three records are byte-identical in size
	for _, tc := range []struct{ cut, want int }{
		{1, 2}, {7, 2}, {rec1 - 3, 2}, {rec1 + 5, 1}, {len(b) - 1, 0},
	} {
		if err := os.WriteFile(wal, b[:len(b)-tc.cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s, rec, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: truncated tail must recover cleanly, got %v", tc.cut, err)
		}
		if !rec.TornTail {
			t.Fatalf("cut %d: torn tail not reported", tc.cut)
		}
		if len(rec.Factors) != tc.want {
			t.Fatalf("cut %d: recovered %d factors, want %d", tc.cut, len(rec.Factors), tc.want)
		}
		s.Close()
	}
}

func TestRecoverBitFlippedCRC(t *testing.T) {
	dir, wal := buildWAL(t, 3)
	b, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit inside the middle record's payload.
	flipped := make([]byte, len(b))
	copy(flipped, b)
	flipped[len(b)/2] ^= 0x10
	if err := os.WriteFile(wal, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("bit flip: want ErrCorruptLog, got %v", err)
	}
}

func TestRecoverDuplicateSequence(t *testing.T) {
	dir, wal := buildWAL(t, 1)
	b, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	// Append a byte-identical copy of the first record: same sequence twice.
	dup := append(append([]byte{}, b...), b...)
	if err := os.WriteFile(wal, dup, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("duplicate sequence: want ErrCorruptLog, got %v", err)
	}
}

func TestRecoverBadMagic(t *testing.T) {
	dir, wal := buildWAL(t, 2)
	b, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(b, 0xdeadbeef)
	if err := os.WriteFile(wal, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("bad magic: want ErrCorruptLog, got %v", err)
	}
}

func TestCorruptSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{SnapshotEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.AppendFactor(factorRecord(fmt.Sprintf("f-%06d-snco", i+1), "", densePayload())); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	snap := filepath.Join(dir, snapName)
	b, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x01
	if err := os.WriteFile(snap, b, 0o644); err != nil {
		t.Fatal(err)
	}
	// A snapshot committed by atomic rename cannot legitimately be torn or
	// flipped: corruption, not clean recovery.
	if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("corrupt snapshot: want ErrCorruptLog, got %v", err)
	}
}

func TestStaleWALPrefixAfterSnapshot(t *testing.T) {
	// Simulate a crash between snapshot rename and WAL truncation: the WAL
	// still holds records the snapshot already covers. Replay must skip them.
	dir := t.TempDir()
	s, _, err := Open(dir, Options{SnapshotEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	var walCopy []byte
	for i := 0; i < 3; i++ {
		if err := s.AppendFactor(factorRecord(fmt.Sprintf("f-%06d-stal", i+1), "", densePayload())); err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			walCopy, err = os.ReadFile(filepath.Join(dir, walName))
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	s.Close()
	// After the 3rd append a snapshot fired and truncated the WAL. Put the
	// old records back in front, as an interrupted truncation would leave.
	cur, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, walName), append(walCopy, cur...), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("stale WAL prefix must replay cleanly: %v", err)
	}
	defer s2.Close()
	if len(rec.Factors) != 3 {
		t.Fatalf("recovered %d factors, want 3", len(rec.Factors))
	}
}

func TestUnmarshalRejectsTruncatedTransfer(t *testing.T) {
	b := MarshalFactorRecord(factorRecord("f-000001-wire", "", densePayload()))
	if _, err := UnmarshalFactorRecord(b[:len(b)-5]); !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("truncated transfer: want ErrCorruptLog, got %v", err)
	}
	flipped := bytes.Clone(b)
	flipped[len(b)/3] ^= 0x40
	if _, err := UnmarshalFactorRecord(flipped); !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("flipped transfer: want ErrCorruptLog, got %v", err)
	}
}
