package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzStoreRecover feeds arbitrary bytes to the recovery path as a WAL file.
// The invariant under fuzz: Open never panics and never returns a partially
// applied store — either the bytes replay to a clean store (possibly with a
// torn tail dropped) or recovery fails with the typed ErrCorruptLog.
func FuzzStoreRecover(f *testing.F) {
	// Seed the corpus with a valid WAL so the fuzzer mutates real frames.
	{
		dir := f.TempDir()
		s, _, err := Open(dir, Options{})
		if err != nil {
			f.Fatal(err)
		}
		if err := s.AppendFactor(factorRecord("f-000001-fuzz", "k", densePayload())); err != nil {
			f.Fatal(err)
		}
		if err := s.AppendFactor(factorRecord("f-000002-fuzz", "", lrPayload())); err != nil {
			f.Fatal(err)
		}
		if err := s.AppendRelease("f-000001-fuzz"); err != nil {
			f.Fatal(err)
		}
		s.Close()
		b, err := os.ReadFile(filepath.Join(dir, walName))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		f.Add(b[:len(b)/2])
	}
	f.Add([]byte{})
	f.Add([]byte{0x57, 0x53, 0x58, 0x50}) // frame magic, nothing else

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walName), data, 0o644); err != nil {
			t.Skip()
		}
		s, rec, err := Open(dir, Options{NoSync: true})
		if err != nil {
			if !errors.Is(err, ErrCorruptLog) {
				t.Fatalf("recovery error is not ErrCorruptLog: %v", err)
			}
			return
		}
		// A clean open must yield a usable store: appends land after the
		// replayed prefix and survive a reopen.
		_ = rec
		if err := s.AppendFactor(factorRecord("f-999999-post", "", densePayload())); err != nil {
			t.Fatalf("post-recovery append: %v", err)
		}
		s.Close()
		if _, _, err := Open(dir, Options{NoSync: true}); err != nil {
			t.Fatalf("reopen after recovery+append: %v", err)
		}
	})
}

// FuzzStoreRecoverSnapshot does the same with the bytes as a snapshot file.
func FuzzStoreRecoverSnapshot(f *testing.F) {
	{
		dir := f.TempDir()
		s, _, err := Open(dir, Options{SnapshotEvery: 1})
		if err != nil {
			f.Fatal(err)
		}
		if err := s.AppendFactor(factorRecord("f-000001-fuzz", "", densePayload())); err != nil {
			f.Fatal(err)
		}
		s.Close()
		b, err := os.ReadFile(filepath.Join(dir, snapName))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, snapName), data, 0o644); err != nil {
			t.Skip()
		}
		s, _, err := Open(dir, Options{NoSync: true})
		if err != nil {
			if !errors.Is(err, ErrCorruptLog) {
				t.Fatalf("recovery error is not ErrCorruptLog: %v", err)
			}
			return
		}
		s.Close()
	})
}
