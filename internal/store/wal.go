package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// ErrInjectedCrash is returned by every operation after the seeded crash
// injector fired: the store behaves like a process that died mid-write. Only
// tests configure the injector.
var ErrInjectedCrash = errors.New("store: injected crash")

// ErrClosed reports an operation on a closed store.
var ErrClosed = errors.New("store: closed")

const (
	walName  = "wal.log"
	snapName = "snapshot.bin"
	tmpName  = "snapshot.tmp"
)

// Options configures a Store.
type Options struct {
	// SnapshotEvery compacts the WAL into a snapshot after this many appended
	// records (default 256). Snapshots commit by atomic rename; the WAL is
	// truncated only after the rename is durable.
	SnapshotEvery int
	// NoSync skips fsync after writes. Only for benchmarks measuring the sync
	// cost; a NoSync store does not survive power loss, only process crashes.
	NoSync bool
	// CrashAfterWrites, when positive, makes the k-th file write (1-based,
	// counted across WAL appends and snapshot writes) persist only a seeded
	// prefix of its bytes and fail with ErrInjectedCrash; every later
	// operation fails too. With CrashSeed varying, the crash-at-write-k suite
	// proves every prefix of a crashed log recovers consistently.
	CrashAfterWrites int
	// CrashSeed picks the partial-write fraction of the injected crash.
	CrashSeed int64
}

func (o Options) withDefaults() Options {
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 256
	}
	return o
}

// walEntry is one live record in the store's state machine: the encoded
// payload plus the sequence number that committed it (for deterministic
// replay ordering).
type walEntry struct {
	seq     uint64
	payload []byte
}

// Store is the durable state machine: an append-only CRC-framed WAL plus a
// periodically rewritten snapshot, both under one directory. The live state
// (factor records by handle, analysis records by fingerprint) is maintained
// in encoded form so a snapshot is written purely from log-layer state —
// never by re-serializing live solver objects, which keeps the on-disk bytes
// a pure function of the append history.
type Store struct {
	mu   sync.Mutex
	dir  string
	opts Options
	wal  *os.File

	seq        uint64
	walRecords int
	walBytes   int64
	snapshots  int64
	closed     bool
	crashed    bool
	writes     int // injector counter

	factors  map[string]walEntry // handle → encoded FactorRecord
	analyses map[string]walEntry // fingerprint → encoded AnalysisRecord
}

// Recovered is what Open replayed from disk, in commit order.
type Recovered struct {
	Factors  []*FactorRecord
	Analyses []*AnalysisRecord
	// WALBytes is the valid WAL prefix replayed; TornTail reports that bytes
	// beyond it were dropped (the signature of a crash mid-append).
	WALBytes int64
	TornTail bool
}

// Open loads (or creates) the store under dir and replays snapshot + WAL into
// a Recovered. Replay is a pure function of the bytes on disk: a torn final
// record is truncated away, anything else inconsistent fails with
// ErrCorruptLog, and on success the store is positioned to append.
func Open(dir string, opts Options) (*Store, *Recovered, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	s := &Store{
		dir:      dir,
		opts:     opts,
		factors:  make(map[string]walEntry),
		analyses: make(map[string]walEntry),
	}
	rec := &Recovered{}
	snapUpTo, err := s.loadSnapshot()
	if err != nil {
		return nil, nil, err
	}
	if err := s.replayWAL(snapUpTo, rec); err != nil {
		return nil, nil, err
	}
	if s.seq < snapUpTo {
		s.seq = snapUpTo
	}
	// Collect the live state in commit order for the caller.
	rec.Factors = make([]*FactorRecord, 0, len(s.factors))
	for _, e := range s.factors {
		fr, err := decodeFactorRecord(e.payload)
		if err != nil {
			return nil, nil, err
		}
		rec.Factors = append(rec.Factors, fr)
	}
	entSeq := func(fr *FactorRecord) uint64 { return s.factors[fr.Handle].seq }
	sort.Slice(rec.Factors, func(i, j int) bool { return entSeq(rec.Factors[i]) < entSeq(rec.Factors[j]) })
	rec.Analyses = make([]*AnalysisRecord, 0, len(s.analyses))
	for _, e := range s.analyses {
		ar, err := decodeAnalysisRecord(e.payload)
		if err != nil {
			return nil, nil, err
		}
		rec.Analyses = append(rec.Analyses, ar)
	}
	sort.Slice(rec.Analyses, func(i, j int) bool {
		return s.analyses[rec.Analyses[i].Fingerprint].seq < s.analyses[rec.Analyses[j].Fingerprint].seq
	})
	rec.WALBytes = s.walBytes

	wal, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	// Drop any torn tail so the next append lands on a record boundary.
	if err := wal.Truncate(s.walBytes); err != nil {
		wal.Close()
		return nil, nil, err
	}
	if _, err := wal.Seek(s.walBytes, 0); err != nil {
		wal.Close()
		return nil, nil, err
	}
	s.wal = wal
	return s, rec, nil
}

// loadSnapshot reads snapshot.bin if present. A snapshot commits by atomic
// rename, so unlike the WAL it must be perfectly formed end to end: any torn
// or mismatched record inside it is real corruption.
func (s *Store) loadSnapshot() (upTo uint64, err error) {
	b, err := os.ReadFile(filepath.Join(s.dir, snapName))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	off := 0
	kind, seq, payload, next, err := readFrame(b, off)
	if err != nil {
		if errors.Is(err, errTornTail) {
			return 0, fmt.Errorf("%w: truncated snapshot header", ErrCorruptLog)
		}
		return 0, err
	}
	if kind != KindSnapshot {
		return 0, fmt.Errorf("%w: snapshot starts with record kind %d", ErrCorruptLog, kind)
	}
	d := &dec{b: payload}
	upTo = d.u64()
	if d.err != nil || d.off != len(payload) {
		return 0, fmt.Errorf("%w: malformed snapshot header", ErrCorruptLog)
	}
	_ = seq
	off = next
	for off < len(b) {
		kind, rseq, payload, next, err := readFrame(b, off)
		if err != nil {
			if errors.Is(err, errTornTail) {
				return 0, fmt.Errorf("%w: truncated snapshot record at offset %d", ErrCorruptLog, off)
			}
			return 0, err
		}
		cp := make([]byte, len(payload))
		copy(cp, payload)
		switch kind {
		case KindFactor:
			fr, err := decodeFactorRecord(cp)
			if err != nil {
				return 0, err
			}
			s.factors[fr.Handle] = walEntry{seq: rseq, payload: cp}
		case KindAnalysis:
			ar, err := decodeAnalysisRecord(cp)
			if err != nil {
				return 0, err
			}
			s.analyses[ar.Fingerprint] = walEntry{seq: rseq, payload: cp}
		default:
			return 0, fmt.Errorf("%w: record kind %d inside snapshot", ErrCorruptLog, kind)
		}
		off = next
	}
	return upTo, nil
}

// replayWAL applies the WAL on top of the snapshot state. Records at or
// below the snapshot's sequence are skipped (the stale prefix left when a
// crash hit between snapshot rename and WAL truncation); beyond it the
// sequence must be strictly increasing — a duplicate or regression is
// corruption, not a torn write.
func (s *Store) replayWAL(snapUpTo uint64, rec *Recovered) error {
	b, err := os.ReadFile(filepath.Join(s.dir, walName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	off := 0
	last := snapUpTo
	for off < len(b) {
		kind, seq, payload, next, err := readFrame(b, off)
		if err != nil {
			if errors.Is(err, errTornTail) {
				rec.TornTail = true
				break
			}
			return err
		}
		if seq <= snapUpTo {
			// Stale prefix already folded into the snapshot.
			off = next
			continue
		}
		if seq <= last {
			return fmt.Errorf("%w: WAL sequence %d after %d (duplicate or out of order)", ErrCorruptLog, seq, last)
		}
		last = seq
		cp := make([]byte, len(payload))
		copy(cp, payload)
		switch kind {
		case KindFactor:
			fr, err := decodeFactorRecord(cp)
			if err != nil {
				return err
			}
			s.factors[fr.Handle] = walEntry{seq: seq, payload: cp}
		case KindRelease:
			rr, err := decodeReleaseRecord(cp)
			if err != nil {
				return err
			}
			delete(s.factors, rr.Handle)
		case KindAnalysis:
			ar, err := decodeAnalysisRecord(cp)
			if err != nil {
				return err
			}
			s.analyses[ar.Fingerprint] = walEntry{seq: seq, payload: cp}
		default:
			return fmt.Errorf("%w: unknown WAL record kind %d", ErrCorruptLog, kind)
		}
		off = next
	}
	s.seq = last
	s.walBytes = int64(off)
	return nil
}

// write pushes b through the crash injector to the file. One append = one
// write call, so an injected crash tears exactly one record.
func (s *Store) write(f *os.File, b []byte) error {
	s.writes++
	if s.opts.CrashAfterWrites > 0 && s.writes >= s.opts.CrashAfterWrites {
		// Persist a seeded prefix — the torn write a real crash leaves — then
		// die for good.
		n := int(crashFrac(s.opts.CrashSeed, s.writes) * float64(len(b)))
		if n >= len(b) {
			n = len(b) - 1
		}
		if n > 0 {
			_, _ = f.Write(b[:n])
			_ = f.Sync()
		}
		s.crashed = true
		return ErrInjectedCrash
	}
	if _, err := f.Write(b); err != nil {
		return err
	}
	if s.opts.NoSync {
		return nil
	}
	return f.Sync()
}

// crashFrac draws the deterministic partial-write fraction in [0,1) for
// (seed, write index) — the splitmix64 counter-hash discipline of
// internal/faults, with no shared stream state.
func crashFrac(seed int64, write int) float64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(write)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

func (s *Store) appendLocked(kind Kind, payload []byte, apply func(seq uint64)) error {
	if s.closed {
		return ErrClosed
	}
	if s.crashed {
		return ErrInjectedCrash
	}
	seq := s.seq + 1
	frame := appendFrame(nil, kind, seq, payload)
	if err := s.write(s.wal, frame); err != nil {
		return err
	}
	s.seq = seq
	s.walBytes += int64(len(frame))
	s.walRecords++
	apply(seq)
	if s.walRecords >= s.opts.SnapshotEvery {
		// Compaction failure is not append failure: the record above is
		// durable either way. A failed snapshot (ENOSPC, injected crash)
		// leaves old-snapshot + full-WAL, which replays to the same state.
		if err := s.snapshotLocked(); err != nil && !errors.Is(err, ErrInjectedCrash) {
			return nil
		}
	}
	return nil
}

// AppendFactor journals one committed factorization. It must complete before
// the handle is acknowledged to the client: fsync-before-ack is what makes
// "durable: true" honest.
func (s *Store) AppendFactor(r *FactorRecord) error {
	payload := encodeFactorRecord(r)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendLocked(KindFactor, payload, func(seq uint64) {
		s.factors[r.Handle] = walEntry{seq: seq, payload: payload}
	})
}

// AppendRelease journals a handle tombstone.
func (s *Store) AppendRelease(handle string) error {
	payload := encodeReleaseRecord(&ReleaseRecord{Handle: handle})
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendLocked(KindRelease, payload, func(uint64) {
		delete(s.factors, handle)
	})
}

// AppendAnalysis journals an analyze-time cache warm. Idempotent per
// fingerprint: re-analyzing a known pattern does not grow the log.
func (s *Store) AppendAnalysis(r *AnalysisRecord) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.analyses[r.Fingerprint]; ok {
		return false, nil
	}
	payload := encodeAnalysisRecord(r)
	err := s.appendLocked(KindAnalysis, payload, func(seq uint64) {
		s.analyses[r.Fingerprint] = walEntry{seq: seq, payload: payload}
	})
	return err == nil, err
}

// snapshotLocked rewrites the live state as snapshot.tmp, commits it with an
// atomic rename (after fsync of file and directory), then truncates the WAL.
// A crash at any point leaves a recoverable combination: old snapshot + full
// WAL, or new snapshot + stale WAL prefix (skipped on replay by sequence).
func (s *Store) snapshotLocked() error {
	hdr := &enc{}
	hdr.u64(s.seq)
	out := appendFrame(nil, KindSnapshot, s.seq, hdr.b)
	// Deterministic record order: by committing sequence.
	type kv struct {
		e    walEntry
		kind Kind
	}
	all := make([]kv, 0, len(s.factors)+len(s.analyses))
	for _, e := range s.analyses {
		all = append(all, kv{e, KindAnalysis})
	}
	for _, e := range s.factors {
		all = append(all, kv{e, KindFactor})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].e.seq < all[j].e.seq })
	for _, it := range all {
		out = appendFrame(out, it.kind, it.e.seq, it.e.payload)
	}
	tmp := filepath.Join(s.dir, tmpName)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := s.write(f, out); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapName)); err != nil {
		return err
	}
	s.syncDir()
	// The snapshot is durable; the WAL prefix is now stale and can go.
	if err := s.wal.Truncate(0); err != nil {
		return err
	}
	if _, err := s.wal.Seek(0, 0); err != nil {
		return err
	}
	if !s.opts.NoSync {
		_ = s.wal.Sync()
	}
	s.walBytes = 0
	s.walRecords = 0
	s.snapshots++
	return nil
}

// syncDir makes the rename itself durable.
func (s *Store) syncDir() {
	if s.opts.NoSync {
		return
	}
	if d, err := os.Open(s.dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// Stats is a point-in-time observability sample.
type Stats struct {
	WALBytes     int64
	WALRecords   int
	Snapshots    int64
	LiveFactors  int
	LiveAnalyses int
}

// Stats samples the store.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		WALBytes: s.walBytes, WALRecords: s.walRecords, Snapshots: s.snapshots,
		LiveFactors: len(s.factors), LiveAnalyses: len(s.analyses),
	}
}

// Close releases the WAL file. Appends after Close fail with ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.wal.Close()
}
