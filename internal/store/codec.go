// Package store is the durability layer of the solver service: a versioned,
// CRC-checked binary codec for analyses and factors (including perturbation
// reports and BLR-compressed cells) under a write-ahead log + snapshot store
// with atomic-rename commits and fsync discipline. Recovery is a pure
// function of the bytes on disk — the same discipline that makes the solver's
// chaos runs bit-identical to fault-free runs — and every prefix of a crashed
// log replays to a consistent store (wal.go, crash injection in the tests).
//
// Analyses are persisted as their generator, not their product: the defining
// matrix is stored and the deterministic analysis pipeline re-runs on replay,
// which keeps the format small and forever in sync with the code. Factors are
// persisted as their exact numerical payload (solver.FactorPayload), so a
// restored factor solves bitwise-identically to the original without
// refactorizing.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"github.com/pastix-go/pastix/internal/lowrank"
	"github.com/pastix-go/pastix/internal/solver"
	"github.com/pastix-go/pastix/internal/sparse"
)

// ErrCorruptLog reports bytes that can only come from corruption, not from a
// torn write: a full-length record whose CRC does not match, an unknown
// magic/version/kind, a duplicate or regressing sequence number, or a
// CRC-valid payload whose internal structure is inconsistent. A torn or
// truncated final record is NOT corruption — it is the expected shape of a
// crash mid-write and replay stops cleanly before it.
var ErrCorruptLog = errors.New("store: corrupt log")

// errTornTail marks an incomplete final record (fewer bytes on disk than the
// frame declares). Internal: Open folds it into Recovered.TornTail.
var errTornTail = errors.New("store: torn tail")

const (
	frameMagic   = 0x50585357 // "PXSW"
	codecVersion = 1
	// frameHeader is magic u32 + version u16 + kind u16 + seq u64 + len u32.
	frameHeader = 20
	// maxPayload guards length fields before allocation; a WAL record holds
	// at most one factor, and a 1 GiB factor payload is beyond anything this
	// service admits (MaxBodyBytes caps requests far lower).
	maxPayload = 1 << 30
)

// Kind tags a record's payload type.
type Kind uint16

const (
	// KindFactor is a committed factorization: handle, matrix, payload,
	// idempotency key and the acknowledged response bytes.
	KindFactor Kind = 1
	// KindRelease tombstones a handle.
	KindRelease Kind = 2
	// KindAnalysis is an analyze-time cache warm: fingerprint + matrix.
	KindAnalysis Kind = 3
	// KindSnapshot heads a snapshot file, carrying the sequence number the
	// snapshot covers; WAL records at or below it are stale.
	KindSnapshot Kind = 4
)

var crcTab = crc32.MakeTable(crc32.Castagnoli)

// --- records ---

// FactorRecord is the durable form of one committed factorization. The
// matrix is stored with its values — they bind the refinement system on
// restore and are the re-factorize fallback when a factor payload cannot be
// transferred.
type FactorRecord struct {
	Handle      string
	Fingerprint string
	IdemKey     string
	Matrix      *sparse.SymMatrix
	Payload     *solver.FactorPayload
	// Response is the acknowledged factorize response body, replayed verbatim
	// for idempotent retries that arrive after a restart.
	Response []byte
}

// AnalysisRecord persists an analyze-time cache entry as its generator: the
// deterministic pipeline re-analyzes the matrix on replay.
type AnalysisRecord struct {
	Fingerprint string
	Matrix      *sparse.SymMatrix
}

// ReleaseRecord tombstones a handle.
type ReleaseRecord struct {
	Handle string
}

// --- primitive encoder/decoder ---

type enc struct{ b []byte }

func (e *enc) u8(v uint8) { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) {
	e.b = binary.LittleEndian.AppendUint32(e.b, v)
}
func (e *enc) u64(v uint64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, v)
}
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}
func (e *enc) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.b = append(e.b, b...)
}
func (e *enc) floats(v []float64) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.f64(x)
	}
}
func (e *enc) ints(v []int) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.u64(uint64(x))
	}
}
func (e *enc) i32s(v []int32) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.u32(uint32(x))
	}
}

// dec is a bounds-checked little-endian reader: the first failure latches and
// every later read returns zeros, so decode paths stay linear and check err
// once at the end. Count fields are validated against the remaining bytes
// BEFORE allocation — a corrupted length cannot force a huge allocation.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: "+format, append([]any{ErrCorruptLog}, args...)...)
	}
}

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.b) {
		d.fail("need %d bytes at offset %d of %d", n, d.off, len(d.b))
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}

func (d *dec) u8() uint8 {
	s := d.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}
func (d *dec) u32() uint32 {
	s := d.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}
func (d *dec) u64() uint64 {
	s := d.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

// count reads a length field and validates it against the bytes remaining at
// elemSize bytes per element.
func (d *dec) count(elemSize int) int {
	n := int(d.u32())
	if d.err != nil {
		return 0
	}
	if n < 0 || n > (len(d.b)-d.off)/elemSize {
		d.fail("count %d exceeds remaining %d bytes", n, len(d.b)-d.off)
		return 0
	}
	return n
}

func (d *dec) str() string {
	n := d.count(1)
	s := d.take(n)
	return string(s)
}
func (d *dec) bytes() []byte {
	n := d.count(1)
	s := d.take(n)
	if s == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, s)
	return out
}
func (d *dec) floats() []float64 {
	n := d.count(8)
	if d.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64()
	}
	return out
}
func (d *dec) ints() []int {
	n := d.count(8)
	if d.err != nil {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		v := d.u64()
		if v > math.MaxInt32 {
			d.fail("int value %d out of range", v)
			return nil
		}
		out[i] = int(v)
	}
	return out
}
func (d *dec) i32s() []int32 {
	n := d.count(4)
	if d.err != nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(d.u32())
	}
	return out
}

// --- matrix codec ---

func encodeMatrix(e *enc, m *sparse.SymMatrix) {
	e.u64(uint64(m.N))
	e.ints(m.ColPtr)
	e.ints(m.RowIdx)
	e.floats(m.Val)
}

func decodeMatrix(d *dec) *sparse.SymMatrix {
	n := d.u64()
	m := &sparse.SymMatrix{
		N:      int(n),
		ColPtr: d.ints(),
		RowIdx: d.ints(),
		Val:    d.floats(),
	}
	if d.err != nil {
		return nil
	}
	if n > math.MaxInt32 || len(m.ColPtr) != m.N+1 || len(m.Val) != len(m.RowIdx) {
		d.fail("matrix shape: n=%d colptr=%d rowidx=%d val=%d", n, len(m.ColPtr), len(m.RowIdx), len(m.Val))
		return nil
	}
	if err := m.Validate(); err != nil {
		d.fail("matrix: %v", err)
		return nil
	}
	return m
}

// --- factor payload codec ---

const (
	formDense      = 0
	formCompressed = 1
)

func encodePayload(e *enc, p *solver.FactorPayload) {
	if p.Compressed() {
		e.u8(formCompressed)
		e.u32(uint32(len(p.LRCells)))
		for i := range p.LRCells {
			c := &p.LRCells[i]
			e.floats(c.Diag)
			e.floats(c.Dense)
			e.i32s(c.Off)
			e.u32(uint32(len(c.LR)))
			for _, lb := range c.LR {
				if lb == nil {
					e.u8(0)
					continue
				}
				e.u8(1)
				e.u64(uint64(lb.Rows))
				e.u64(uint64(lb.Cols))
				e.u64(uint64(lb.Rank))
				e.floats(lb.U)
				e.floats(lb.V)
			}
		}
		if p.Comp != nil {
			e.u8(1)
			e.u64(uint64(p.Comp.DenseBytes))
			e.u64(uint64(p.Comp.CompressedBytes))
			e.f64(p.Comp.Ratio)
			e.u64(uint64(p.Comp.BlocksCompressed))
			e.u64(uint64(p.Comp.BlocksTotal))
		} else {
			e.u8(0)
		}
	} else {
		e.u8(formDense)
		e.u32(uint32(len(p.Cells)))
		for _, cell := range p.Cells {
			e.floats(cell)
		}
	}
	// Pivot report (either form).
	if p.Pivots == nil {
		e.u8(0)
		return
	}
	e.u8(1)
	e.f64(p.Pivots.Epsilon)
	e.f64(p.Pivots.NormMax)
	e.f64(p.Pivots.Threshold)
	e.f64(p.Pivots.PivotGrowth)
	e.u32(uint32(len(p.Pivots.Perturbed)))
	for _, pt := range p.Pivots.Perturbed {
		e.u64(uint64(pt.Column))
		e.f64(pt.Original)
		e.f64(pt.Used)
	}
}

func decodePayload(d *dec) *solver.FactorPayload {
	p := &solver.FactorPayload{}
	switch form := d.u8(); form {
	case formCompressed:
		ncells := d.count(1)
		if d.err != nil {
			return nil
		}
		p.LRCells = make([]solver.LRCellPayload, ncells)
		for i := 0; i < ncells && d.err == nil; i++ {
			c := &p.LRCells[i]
			c.Diag = d.floats()
			c.Dense = d.floats()
			c.Off = d.i32s()
			nb := d.count(1)
			if d.err != nil {
				break
			}
			c.LR = make([]*lowrank.LRBlock, nb)
			for bi := 0; bi < nb && d.err == nil; bi++ {
				if d.u8() == 0 {
					continue
				}
				lb := &lowrank.LRBlock{
					Rows: int(d.u64()), Cols: int(d.u64()), Rank: int(d.u64()),
				}
				lb.U = d.floats()
				lb.V = d.floats()
				c.LR[bi] = lb
			}
		}
		if d.u8() == 1 {
			p.Comp = &solver.CompressionStats{
				DenseBytes:       int64(d.u64()),
				CompressedBytes:  int64(d.u64()),
				Ratio:            d.f64(),
				BlocksCompressed: int(d.u64()),
				BlocksTotal:      int(d.u64()),
			}
		}
	case formDense:
		ncells := d.count(1)
		if d.err != nil {
			return nil
		}
		p.Cells = make([][]float64, ncells)
		for i := 0; i < ncells && d.err == nil; i++ {
			p.Cells[i] = d.floats()
		}
	default:
		d.fail("unknown factor payload form %d", form)
		return nil
	}
	if d.u8() == 1 {
		rep := &solver.PerturbationReport{
			Epsilon:     d.f64(),
			NormMax:     d.f64(),
			Threshold:   d.f64(),
			PivotGrowth: d.f64(),
		}
		np := d.count(24)
		if d.err != nil {
			return nil
		}
		if np > 0 {
			rep.Perturbed = make([]solver.Perturbation, np)
			for i := range rep.Perturbed {
				rep.Perturbed[i] = solver.Perturbation{
					Column: int(d.u64()), Original: d.f64(), Used: d.f64(),
				}
			}
		}
		p.Pivots = rep
	}
	if d.err != nil {
		return nil
	}
	return p
}

// --- record payload codecs ---

func encodeFactorRecord(r *FactorRecord) []byte {
	e := &enc{}
	e.str(r.Handle)
	e.str(r.Fingerprint)
	e.str(r.IdemKey)
	encodeMatrix(e, r.Matrix)
	encodePayload(e, r.Payload)
	e.bytes(r.Response)
	return e.b
}

func decodeFactorRecord(b []byte) (*FactorRecord, error) {
	d := &dec{b: b}
	r := &FactorRecord{
		Handle:      d.str(),
		Fingerprint: d.str(),
		IdemKey:     d.str(),
	}
	r.Matrix = decodeMatrix(d)
	r.Payload = decodePayload(d)
	r.Response = d.bytes()
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes in factor record", ErrCorruptLog, len(b)-d.off)
	}
	return r, nil
}

func encodeAnalysisRecord(r *AnalysisRecord) []byte {
	e := &enc{}
	e.str(r.Fingerprint)
	encodeMatrix(e, r.Matrix)
	return e.b
}

func decodeAnalysisRecord(b []byte) (*AnalysisRecord, error) {
	d := &dec{b: b}
	r := &AnalysisRecord{Fingerprint: d.str()}
	r.Matrix = decodeMatrix(d)
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes in analysis record", ErrCorruptLog, len(b)-d.off)
	}
	return r, nil
}

func encodeReleaseRecord(r *ReleaseRecord) []byte {
	e := &enc{}
	e.str(r.Handle)
	return e.b
}

func decodeReleaseRecord(b []byte) (*ReleaseRecord, error) {
	d := &dec{b: b}
	r := &ReleaseRecord{Handle: d.str()}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes in release record", ErrCorruptLog, len(b)-d.off)
	}
	return r, nil
}

// --- framing ---

// appendFrame appends one CRC-sealed record frame:
//
//	magic u32 | version u16 | kind u16 | seq u64 | len u32 | payload | crc u32
//
// The CRC (Castagnoli) covers everything before it, header included, so a
// bit flip anywhere in the frame is detected.
func appendFrame(dst []byte, kind Kind, seq uint64, payload []byte) []byte {
	start := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, frameMagic)
	dst = binary.LittleEndian.AppendUint16(dst, codecVersion)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(kind))
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	crc := crc32.Checksum(dst[start:], crcTab)
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// readFrame parses the frame at b[off:]. It distinguishes a torn tail (not
// enough bytes for the declared frame: errTornTail, replay stops cleanly)
// from corruption (bad magic/version/CRC with the full frame present:
// ErrCorruptLog).
func readFrame(b []byte, off int) (kind Kind, seq uint64, payload []byte, next int, err error) {
	rest := len(b) - off
	if rest < frameHeader {
		return 0, 0, nil, off, errTornTail
	}
	h := b[off:]
	if binary.LittleEndian.Uint32(h) != frameMagic {
		return 0, 0, nil, off, fmt.Errorf("%w: bad frame magic at offset %d", ErrCorruptLog, off)
	}
	if v := binary.LittleEndian.Uint16(h[4:]); v != codecVersion {
		return 0, 0, nil, off, fmt.Errorf("%w: unsupported codec version %d", ErrCorruptLog, v)
	}
	kind = Kind(binary.LittleEndian.Uint16(h[6:]))
	seq = binary.LittleEndian.Uint64(h[8:])
	plen := int(binary.LittleEndian.Uint32(h[16:]))
	if plen < 0 || plen > maxPayload {
		return 0, 0, nil, off, fmt.Errorf("%w: frame payload length %d", ErrCorruptLog, plen)
	}
	total := frameHeader + plen + 4
	if rest < total {
		// The length field itself may be the flipped bits, but with the tail
		// missing we cannot tell a torn write from corruption; the safe,
		// documented choice is the torn-tail verdict (clean prefix recovery).
		return 0, 0, nil, off, errTornTail
	}
	want := binary.LittleEndian.Uint32(h[frameHeader+plen:])
	got := crc32.Checksum(h[:frameHeader+plen], crcTab)
	if want != got {
		return 0, 0, nil, off, fmt.Errorf("%w: CRC mismatch at offset %d (record seq %d)", ErrCorruptLog, off, seq)
	}
	return kind, seq, h[frameHeader : frameHeader+plen], off + total, nil
}

// MarshalFactorRecord seals a factor record into a standalone CRC-checked
// frame — the wire format of the backend-to-backend /v1/replicate transfer.
func MarshalFactorRecord(r *FactorRecord) []byte {
	return appendFrame(nil, KindFactor, 0, encodeFactorRecord(r))
}

// UnmarshalFactorRecord parses a frame produced by MarshalFactorRecord.
func UnmarshalFactorRecord(b []byte) (*FactorRecord, error) {
	kind, _, payload, next, err := readFrame(b, 0)
	if err != nil {
		if errors.Is(err, errTornTail) {
			return nil, fmt.Errorf("%w: truncated factor record", ErrCorruptLog)
		}
		return nil, err
	}
	if kind != KindFactor {
		return nil, fmt.Errorf("%w: record kind %d is not a factor", ErrCorruptLog, kind)
	}
	if next != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes after factor record", ErrCorruptLog, len(b)-next)
	}
	return decodeFactorRecord(payload)
}
