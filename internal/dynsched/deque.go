// Package dynsched executes a sched.DAG with data-driven task activation on
// a pool of worker goroutines: no fixed task→processor mapping, per-worker
// ready deques, atomic in-degree countdown, and lock-free work stealing. It
// is the dynamic alternative to the paper's static K_p task vectors — the
// schedule's cost model survives only as the priority used to order a
// worker's own ready queue.
package dynsched

import "sync/atomic"

// deque is a Chase-Lev work-stealing deque specialised for this executor:
// the owner pushes and pops at the bottom (LIFO, so the priority-sorted
// activation batch is consumed highest-priority first), thieves steal from
// the top (the tail — the oldest, typically coarsest-grained entries).
//
// The ring is sized to the total task count, and every task id is pushed at
// most once per run, so slots are never recycled — the classic ABA hazard of
// a wrapping Chase-Lev buffer cannot occur. Go's sync/atomic operations are
// sequentially consistent, which is stronger than the acquire/release
// fences the original algorithm needs, so the unsynchronised-looking loads
// in pop/steal are sound.
type deque struct {
	top    atomic.Int64 // next index thieves claim; only ever incremented
	bottom atomic.Int64 // next index the owner pushes at; owner-written only
	mask   int64
	buf    []atomic.Int32
}

// newDeque returns a deque that can hold cap entries without wrapping.
func newDeque(cap int) *deque {
	sz := int64(1)
	for sz < int64(cap)+1 {
		sz <<= 1
	}
	return &deque{mask: sz - 1, buf: make([]atomic.Int32, sz)}
}

// push appends a task at the bottom. Owner only.
func (d *deque) push(task int32) {
	b := d.bottom.Load()
	d.buf[b&d.mask].Store(task)
	d.bottom.Store(b + 1)
}

// pop removes the most recently pushed task, or returns -1 when empty. Owner
// only. When a thief races for the last entry, the CAS on top decides.
func (d *deque) pop() int32 {
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: undo the reservation.
		d.bottom.Store(b + 1)
		return -1
	}
	task := d.buf[b&d.mask].Load()
	if b > t {
		return task
	}
	// Last entry: win it against any concurrent thief.
	if !d.top.CompareAndSwap(t, t+1) {
		task = -1
	}
	d.bottom.Store(b + 1)
	return task
}

// steal removes the oldest task, or returns -1 when empty or when it lost a
// race for the last entry (the caller treats both as "try elsewhere").
func (d *deque) steal() int32 {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return -1
	}
	task := d.buf[t&d.mask].Load()
	if !d.top.CompareAndSwap(t, t+1) {
		return -1
	}
	return task
}
