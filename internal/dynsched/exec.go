package dynsched

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/pastix-go/pastix/internal/sched"
)

// ExecFunc runs one task on one worker. The worker index is stable for the
// goroutine that calls it (0 ≤ worker < Workers), so implementations may use
// it for per-worker scratch or trace attribution. Returning an error aborts
// the run: no further tasks start, and the first error is reported.
type ExecFunc func(worker, task int) error

// Stats reports what one Run actually did — the observables the steal-storm
// tests assert on.
type Stats struct {
	Executed int64 // tasks run (== NTasks on success)
	Steals   int64 // tasks obtained from another worker's deque
	Parks    int64 // times a worker slept for lack of work
}

// runner is the state of one Run: the activation counters, the per-worker
// deques, and the parking lot idle workers sleep in.
type runner struct {
	dag       *sched.DAG
	exec      ExecFunc
	remaining []atomic.Int32 // in-degree countdown; task ready at zero
	deques    []*deque
	pending   atomic.Int64 // tasks not yet completed; 0 = run finished
	steals    atomic.Int64
	parks     atomic.Int64

	// Parking: a worker that finds every deque empty sleeps on cond until a
	// completion pushes new ready tasks (or the run ends). wakeSeq is bumped
	// under mu before every broadcast; a would-be sleeper re-checks the
	// deques after reading it and sleeps only if it is unchanged, so a wakeup
	// between the check and the sleep cannot be missed.
	mu      sync.Mutex
	cond    *sync.Cond
	wakeSeq uint64

	aborted  atomic.Bool
	abortMu  sync.Mutex
	abortErr error
}

// Run executes every task of d exactly once on `workers` goroutines,
// respecting the dependency edges: a task becomes ready when its last
// incoming edge is satisfied, is pushed to the completing worker's deque
// (batch sorted so the highest d.Priority is popped first), and idle workers
// steal from the tail of their peers' deques. Cancelling ctx aborts between
// tasks. The caller must pass a validated DAG (NewDAG or Schedule.DAG); a
// cyclic graph would deadlock, which Validate exists to exclude.
func Run(ctx context.Context, d *sched.DAG, workers int, exec ExecFunc) (Stats, error) {
	n := d.NTasks()
	if workers < 1 {
		return Stats{}, fmt.Errorf("dynsched: %d workers", workers)
	}
	if n == 0 {
		return Stats{}, nil
	}
	r := &runner{
		dag:       d,
		exec:      exec,
		remaining: make([]atomic.Int32, n),
		deques:    make([]*deque, workers),
	}
	r.cond = sync.NewCond(&r.mu)
	r.pending.Store(int64(n))
	for w := range r.deques {
		r.deques[w] = newDeque(n)
	}
	var roots []int32
	for i, deg := range d.InDegrees() {
		r.remaining[i].Store(deg)
		if deg == 0 {
			roots = append(roots, int32(i))
		}
	}
	if len(roots) == 0 {
		return Stats{}, fmt.Errorf("dynsched: no root tasks (cyclic graph?)")
	}
	// Seed round-robin, best roots last so each worker pops its best first.
	r.sortByPriority(roots)
	for i := len(roots) - 1; i >= 0; i-- {
		r.deques[i%workers].push(roots[i])
	}

	watchDone := make(chan struct{})
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				r.abort(ctx.Err())
			case <-watchDone:
			}
		}()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r.work(w)
		}(w)
	}
	wg.Wait()
	close(watchDone)

	st := Stats{Executed: int64(n) - r.pending.Load(), Steals: r.steals.Load(), Parks: r.parks.Load()}
	r.abortMu.Lock()
	err := r.abortErr
	r.abortMu.Unlock()
	if err == nil && r.pending.Load() != 0 {
		err = fmt.Errorf("dynsched: %d tasks never became ready", r.pending.Load())
	}
	return st, err
}

// sortByPriority orders ids so that the best task — highest priority, then
// lowest id — comes LAST, ready to be pushed closest to the deque's bottom.
func (r *runner) sortByPriority(ids []int32) {
	pr := r.dag.Priority
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if pr != nil && pr[a] != pr[b] {
			return pr[a] < pr[b]
		}
		return a > b
	})
}

func (r *runner) abort(err error) {
	r.abortMu.Lock()
	if r.abortErr == nil {
		r.abortErr = err
	}
	r.abortMu.Unlock()
	r.aborted.Store(true)
	r.wake()
}

// wake bumps the wakeup sequence and rouses every parked worker.
func (r *runner) wake() {
	r.mu.Lock()
	r.wakeSeq++
	r.mu.Unlock()
	r.cond.Broadcast()
}

// work is one worker goroutine: pop local, else steal, else park.
func (r *runner) work(w int) {
	for {
		if r.aborted.Load() || r.pending.Load() == 0 {
			return
		}
		task := r.deques[w].pop()
		if task < 0 {
			task = r.trySteal(w)
		}
		if task < 0 {
			if !r.park(w) {
				return
			}
			continue
		}
		r.run(w, task)
	}
}

// trySteal scans the other workers' deques (starting after w, so victims
// differ across thieves) and returns a stolen task or -1.
func (r *runner) trySteal(w int) int32 {
	n := len(r.deques)
	for i := 1; i < n; i++ {
		if task := r.deques[(w+i)%n].steal(); task >= 0 {
			r.steals.Add(1)
			return task
		}
	}
	return -1
}

// park sleeps until new work may exist. It returns false when the run is
// over (all tasks done or aborted) and true when the worker should retry.
func (r *runner) park(w int) bool {
	r.mu.Lock()
	seq := r.wakeSeq
	r.mu.Unlock()
	// Re-check after capturing seq: any push since bumps the sequence, so
	// either we see the work here or the comparison below fails.
	if r.aborted.Load() || r.pending.Load() == 0 {
		return false
	}
	for i := 0; i < len(r.deques); i++ {
		d := r.deques[i]
		if d.top.Load() < d.bottom.Load() {
			return true // work visible somewhere; retry without sleeping
		}
	}
	r.mu.Lock()
	if r.wakeSeq == seq {
		r.parks.Add(1)
		r.cond.Wait()
	}
	r.mu.Unlock()
	return !r.aborted.Load() && r.pending.Load() != 0
}

// run executes one task and activates its successors: each out-edge
// decrements the destination's countdown, and the batch that reached zero is
// priority-sorted and pushed locally — the data-driven replacement for the
// static schedule's fixed K_p order.
func (r *runner) run(w int, task int32) {
	if err := r.exec(w, int(task)); err != nil {
		r.abort(err)
		return
	}
	var ready []int32
	for _, dst := range r.dag.Outs[task] {
		left := r.remaining[dst].Add(-1)
		if left == 0 {
			ready = append(ready, dst)
		} else if left < 0 {
			r.abort(fmt.Errorf("dynsched: task %d in-degree went negative (duplicate completion of a predecessor of %d?)", dst, dst))
			return
		}
	}
	if len(ready) > 0 {
		r.sortByPriority(ready)
		for _, id := range ready {
			r.deques[w].push(id)
		}
	}
	if r.pending.Add(-1) == 0 || len(ready) > 0 {
		r.wake()
	}
}
