package dynsched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/pastix-go/pastix/internal/sched"
)

// countingExec returns an ExecFunc that atomically counts executions per
// task, plus the counter slice.
func countingExec(n int) (ExecFunc, []atomic.Int32) {
	counts := make([]atomic.Int32, n)
	return func(w, task int) error {
		counts[task].Add(1)
		return nil
	}, counts
}

func mustDAG(t *testing.T, n int, edges [][2]int) *sched.DAG {
	t.Helper()
	d, err := sched.NewDAG(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func checkAllOnce(t *testing.T, counts []atomic.Int32) {
	t.Helper()
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("task %d executed %d times", i, c)
		}
	}
}

func TestRunEmpty(t *testing.T) {
	d := mustDAG(t, 0, nil)
	st, err := Run(context.Background(), d, 4, func(w, task int) error { return nil })
	if err != nil || st.Executed != 0 {
		t.Fatalf("empty run: %v %+v", err, st)
	}
}

func TestRunChainRespectsOrder(t *testing.T) {
	// 0 → 1 → 2 → … → 63: only ever one ready task, any worker count.
	const n = 64
	var edges [][2]int
	for i := 0; i < n-1; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	d := mustDAG(t, n, edges)
	for _, workers := range []int{1, 4, 16} {
		var mu sync.Mutex
		var order []int
		st, err := Run(context.Background(), d, workers, func(w, task int) error {
			mu.Lock()
			order = append(order, task)
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if st.Executed != n {
			t.Fatalf("workers=%d: executed %d of %d", workers, st.Executed, n)
		}
		for i, task := range order {
			if task != i {
				t.Fatalf("workers=%d: position %d ran task %d (chain demands program order)", workers, i, task)
			}
		}
	}
}

func TestRunDiamondAndParallelEdges(t *testing.T) {
	// Diamond with a doubled edge: 3's in-degree is 3, so the countdown must
	// handle parallel edges exactly like sched.InDegrees counts them.
	d := mustDAG(t, 4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {2, 3}})
	exec, counts := countingExec(4)
	st, err := Run(context.Background(), d, 3, exec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Executed != 4 {
		t.Fatalf("executed %d of 4", st.Executed)
	}
	checkAllOnce(t, counts)
}

func TestRunPriorityOrdersLocalPop(t *testing.T) {
	// One root fans out to 8 ready tasks on a single worker: they must run
	// in priority order (highest first, id breaking ties).
	const n = 9
	var edges [][2]int
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{0, i})
	}
	d := mustDAG(t, n, edges)
	d.Priority = make([]int64, n)
	for i := 1; i < n; i++ {
		d.Priority[i] = int64(i % 3) // ties inside each class → id ascending
	}
	var order []int
	_, err := Run(context.Background(), d, 1, func(w, task int) error {
		order = append(order, task)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 2, 5, 8, 1, 4, 7, 3, 6}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want %v", order, want)
		}
	}
}

func TestRunAbortsOnError(t *testing.T) {
	const n = 32
	var edges [][2]int
	for i := 0; i < n-1; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	d := mustDAG(t, n, edges)
	boom := errors.New("boom")
	var ran atomic.Int32
	st, err := Run(context.Background(), d, 4, func(w, task int) error {
		ran.Add(1)
		if task == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if st.Executed >= n {
		t.Fatalf("executed %d tasks despite abort at task 5", st.Executed)
	}
}

func TestRunHonorsContext(t *testing.T) {
	const n = 128
	var edges [][2]int
	for i := 0; i < n-1; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	d := mustDAG(t, n, edges)
	ctx, cancel := context.WithCancel(context.Background())
	_, err := Run(ctx, d, 2, func(w, task int) error {
		if task == 3 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunRejectsBadWorkerCount(t *testing.T) {
	d := mustDAG(t, 1, nil)
	if _, err := Run(context.Background(), d, 0, func(w, task int) error { return nil }); err == nil {
		t.Fatal("accepted 0 workers")
	}
}

// TestStealStorm hammers the deque steal path: far more workers than ready
// tasks, wide fan-outs, tiny task bodies, many repetitions. Every task must
// run exactly once every round, and across the rounds at least one steal
// must be observed (with 32 workers racing for roots of a 4-wide graph,
// stealing is how anyone but worker 0 eats).
func TestStealStorm(t *testing.T) {
	// Layered graph: L layers of width W, each task depending on every task
	// of the previous layer (barrier-like waves that repeatedly go from
	// "everything ready" to "nothing ready").
	const layers, width = 8, 4
	n := layers * width
	var edges [][2]int
	for l := 0; l+1 < layers; l++ {
		for i := 0; i < width; i++ {
			for j := 0; j < width; j++ {
				edges = append(edges, [2]int{l*width + i, (l+1)*width + j})
			}
		}
	}
	d := mustDAG(t, n, edges)

	rounds := 200
	if testing.Short() {
		rounds = 50
	}
	var totalSteals int64
	for r := 0; r < rounds; r++ {
		exec, counts := countingExec(n)
		st, err := Run(context.Background(), d, 32, exec)
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		if st.Executed != int64(n) {
			t.Fatalf("round %d: executed %d of %d", r, st.Executed, n)
		}
		checkAllOnce(t, counts)
		totalSteals += st.Steals
	}
	if totalSteals == 0 {
		t.Fatal("no steals observed across the storm — deque steal path never exercised")
	}
}
