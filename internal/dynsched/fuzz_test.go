package dynsched

import (
	"context"
	"sync/atomic"
	"testing"

	"github.com/pastix-go/pastix/internal/sched"
)

// FuzzScheduleDAG decodes arbitrary bytes into a (task count, edge list)
// pair, builds a DAG through the same constructor the solver uses, and runs
// the work-stealing executor over it. sched.NewDAG must either reject the
// graph (cycles, bad indices) or the executor must run every task exactly
// once with in-degree counters never going negative — the executor aborts
// with an error on a negative countdown, which would fail the invariant
// check below.
//
// Byte layout: data[0] (mod 64) + 1 is n; each following pair of bytes is an
// edge (src, dst) taken mod n. This intentionally produces self-loops,
// cycles and parallel edges so the validator's rejection paths get fuzzed
// alongside the executor's happy path.
func FuzzScheduleDAG(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{3, 0, 1, 1, 2, 2, 3})       // chain
	f.Add([]byte{3, 0, 1, 0, 2, 1, 3, 2, 3}) // diamond
	f.Add([]byte{1, 0, 1, 1, 0})             // 2-cycle → rejected
	f.Add([]byte{2, 1, 1})                   // self-loop → rejected
	f.Add([]byte{7, 0, 3, 0, 3, 0, 3, 1, 2}) // parallel edges
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := int(data[0])%64 + 1
		var edges [][2]int
		for i := 1; i+1 < len(data); i += 2 {
			edges = append(edges, [2]int{int(data[i]) % n, int(data[i+1]) % n})
		}
		d, err := sched.NewDAG(n, edges)
		if err != nil {
			return // invalid graph correctly rejected
		}
		for _, workers := range []int{1, 4} {
			counts := make([]atomic.Int32, n)
			st, err := Run(context.Background(), d, workers, func(w, task int) error {
				counts[task].Add(1)
				return nil
			})
			if err != nil {
				t.Fatalf("workers=%d: executor failed on valid DAG (n=%d, %d edges): %v",
					workers, n, len(edges), err)
			}
			if st.Executed != int64(n) {
				t.Fatalf("workers=%d: executed %d of %d", workers, st.Executed, n)
			}
			for i := range counts {
				if c := counts[i].Load(); c != 1 {
					t.Fatalf("workers=%d: task %d executed %d times", workers, i, c)
				}
			}
		}
	})
}
