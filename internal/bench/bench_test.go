package bench

import (
	"strings"
	"testing"
)

// The experiment harness runs at a tiny scale in unit tests; the real tables
// are produced by cmd/pastix-bench and the root benchmarks at DefaultScale.
const testScale = 0.05

func TestTable1ShapesAndOrder(t *testing.T) {
	rows, err := Table1(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("want 10 problems, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Columns <= 0 || r.NNZA <= 0 {
			t.Fatalf("%s: degenerate problem", r.Name)
		}
		if r.NNZLScotch < int64(r.NNZA) || r.NNZLMetis < int64(r.NNZA) {
			t.Fatalf("%s: factor cannot have less fill than A", r.Name)
		}
		if r.OPCScotch <= 0 || r.OPCMetis <= 0 {
			t.Fatalf("%s: OPC missing", r.Name)
		}
		// The two orderings must actually differ (different algorithms).
		if r.NNZLScotch == r.NNZLMetis && r.OPCScotch == r.OPCMetis {
			t.Fatalf("%s: Scotch and MeTiS configurations identical", r.Name)
		}
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "NNZ_L(Scotch)") || !strings.Contains(out, "B5TUER") {
		t.Fatal("table 1 formatting broken")
	}
}

func TestTable2ShapeMatchesPaper(t *testing.T) {
	procs := []int{1, 4, 16, 64}
	rows, err := Table2(testScale, procs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("want 10 problems")
	}
	winsAt16 := 0
	for _, r := range rows {
		// Times decrease (weakly) with processors for both solvers.
		for i := 1; i < len(procs); i++ {
			if r.Pastix[i].Time > r.Pastix[0].Time*1.05 {
				t.Fatalf("%s: PaStiX slower at P=%d than P=1", r.Name, procs[i])
			}
			// The baseline may degrade on the tiniest test problems (latency
			// dominated, as on the real SP2); bound the damage.
			if r.Pspases[i].Time > r.Pspases[0].Time*3 {
				t.Fatalf("%s: PSPASES degrades badly at P=%d", r.Name, procs[i])
			}
		}
		// Speedup bounded by P.
		if s := r.Pastix[0].Time / r.Pastix[3].Time; s > 64 {
			t.Fatalf("%s: superlinear PaStiX speedup %g", r.Name, s)
		}
		if r.Pastix[2].Time < r.Pspases[2].Time {
			winsAt16++
		}
	}
	// Paper: "PaStiX compares very favorably to PSPASES and achieves better
	// solving times in almost all cases up to 32 processors."
	if winsAt16 < 6 {
		t.Fatalf("PaStiX wins only %d/10 problems at P=16; paper shape lost", winsAt16)
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "PaStiX") || !strings.Contains(out, "PSPASES") {
		t.Fatal("table 2 formatting broken")
	}
}

func TestDenseKernelsLLTFasterThanLDLT(t *testing.T) {
	res := DenseKernels(192)
	if res.LLT <= 0 || res.LDLT <= 0 {
		t.Fatal("kernel timings missing")
	}
	// The paper's §3 effect: the LDLᵀ kernel is slower than LLᵀ on ESSL
	// (ratio 1.19). Our pure-Go kernels have nearly identical inner loops,
	// so the host ratio hovers around 1 and jitters; assert only that it is
	// not wildly off, and that the SP2 model encodes the paper's ratio.
	if res.RatioHost < 0.6 || res.RatioHost > 2 {
		t.Fatalf("host LDLᵀ/LLᵀ ratio %g implausible", res.RatioHost)
	}
	if res.RatioSP2 < 1.15 || res.RatioSP2 > 1.25 {
		t.Fatalf("SP2 ratio %g should encode the paper's ≈1.19", res.RatioSP2)
	}
}

func TestAblationMixedBeats1DAndGreedyBeatsFirstCandidate(t *testing.T) {
	row, err := Ablate("BMWCRA1", 0.08, 16)
	if err != nil {
		t.Fatal(err)
	}
	if row.Mixed1D2D <= 0 || row.Only1D <= 0 || row.FirstCand <= 0 {
		t.Fatalf("missing ablation data: %+v", row)
	}
	// §2's design claims: the mixed 1D/2D distribution beats 1D-only at
	// higher processor counts, and the greedy completion-time mapper beats
	// naive first-candidate assignment.
	if row.Mixed1D2D > row.Only1D {
		t.Fatalf("mixed 1D/2D (%g) slower than 1D-only (%g)", row.Mixed1D2D, row.Only1D)
	}
	if row.Mixed1D2D > row.FirstCand {
		t.Fatalf("greedy mapping (%g) slower than first-candidate (%g)", row.Mixed1D2D, row.FirstCand)
	}
}

func TestSortedNames(t *testing.T) {
	names := SortedNames()
	if len(names) != 10 {
		t.Fatalf("%d names", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("not sorted")
		}
	}
}

func TestFormatSpeedupPlot(t *testing.T) {
	row := Table2Row{
		Name:    "TEST",
		Procs:   []int{1, 4, 16},
		Pastix:  []Table2Cell{{Time: 8}, {Time: 2}, {Time: 1}},
		Pspases: []Table2Cell{{Time: 8}, {Time: 4}, {Time: 2}},
	}
	out := FormatSpeedupPlot(row, 10)
	if !strings.Contains(out, "TEST") || !strings.Contains(out, "X") || !strings.Contains(out, "o") {
		t.Fatalf("plot malformed:\n%s", out)
	}
	if !strings.Contains(out, "P=16") {
		t.Fatal("axis missing")
	}
}

func TestBlockSweepTradeoff(t *testing.T) {
	rows, err := BlockSweep("BMWCRA1", 0.1, 16, []int{8, 32, 64, 128})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("bs=%3d: blockNNZL=%d tasks=%d model=%.4fs", r.BlockSize, r.BlockNNZL, r.Tasks, r.ModelTime)
	}
	// Task count must shrink with larger blocks; stored entries must grow
	// (amalgamation zeros).
	for i := 1; i < len(rows); i++ {
		if rows[i].Tasks >= rows[i-1].Tasks {
			t.Fatalf("task count not decreasing at bs=%d", rows[i].BlockSize)
		}
	}
	if rows[len(rows)-1].BlockNNZL < rows[0].BlockNNZL {
		t.Fatal("stored entries should not shrink with larger blocks")
	}
	// The paper's choice of 64 should be within 2x of the best in the sweep.
	best := rows[0].ModelTime
	var at64 float64
	for _, r := range rows {
		if r.ModelTime < best {
			best = r.ModelTime
		}
		if r.BlockSize == 64 {
			at64 = r.ModelTime
		}
	}
	if at64 > 2*best {
		t.Fatalf("blocking 64 (%.4fs) far from the sweep best (%.4fs)", at64, best)
	}
}
