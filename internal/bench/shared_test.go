package bench

import (
	"strings"
	"testing"
)

func TestCompareRuntimesShape(t *testing.T) {
	rows, err := CompareRuntimes(8, 8, 8, []int{1, 2, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for i, r := range rows {
		if r.P != []int{1, 2, 4}[i] {
			t.Fatalf("row %d: P=%d", i, r.P)
		}
		if r.MpsimSec <= 0 || r.SharedSec <= 0 {
			t.Fatalf("row P=%d: non-positive timings %+v", r.P, r)
		}
		if r.Speedup != r.MpsimSec/r.SharedSec {
			t.Fatalf("row P=%d: inconsistent speedup", r.P)
		}
		if r.MaxDiff > 1e-11 {
			t.Fatalf("row P=%d: shared factor off by %g", r.P, r.MaxDiff)
		}
		// The validation inside CompareRuntimes already failed the run if the
		// factor drifted; message traffic must appear once P > 1.
		if r.P > 1 && (r.Messages == 0 || r.Bytes == 0) {
			t.Fatalf("row P=%d: no message traffic recorded (%+v)", r.P, r)
		}
		if r.P == 1 && r.Messages != 0 {
			t.Fatalf("P=1 sent %d messages", r.Messages)
		}
	}
	out := FormatRuntimes(rows)
	if !strings.Contains(out, "speedup") || len(strings.Split(strings.TrimSpace(out), "\n")) != 4 {
		t.Fatalf("unexpected table:\n%s", out)
	}
}
