package bench

import (
	"fmt"
	"math"
	"strings"
	"time"

	"github.com/pastix-go/pastix/internal/gen"
	"github.com/pastix-go/pastix/internal/lowrank"
	"github.com/pastix-go/pastix/internal/order"
	"github.com/pastix-go/pastix/internal/solver"
	"github.com/pastix-go/pastix/internal/sparse"
)

// BLRRow is one (matrix, tolerance) point of the factor-compression study:
// the byte accounting of the compression pass, its wall-clock cost, and the
// quality/cost of solves against the compressed factor — raw backward error
// of the lossy solve, then the error and sweep count after adaptive
// refinement. Tol 0 is the dense baseline row of the same matrix.
type BLRRow struct {
	Matrix string  `json:"matrix"`
	N      int     `json:"n"`
	Tol    float64 `json:"tol"`

	DenseBytes       int64   `json:"dense_bytes"`
	CompressedBytes  int64   `json:"compressed_bytes"`
	Ratio            float64 `json:"ratio"`
	BlocksCompressed int     `json:"blocks_compressed"`
	BlocksTotal      int     `json:"blocks_total"`

	FactorizeSec float64 `json:"factorize_sec"`
	CompressSec  float64 `json:"compress_sec"`
	SolveSec     float64 `json:"solve_sec"`

	SolveErr        float64 `json:"solve_backward_error"`
	RefinedErr      float64 `json:"refined_backward_error"`
	RefineIters     int     `json:"refine_iters"`
	RefineConverged bool    `json:"refine_converged"`
}

// BLRReport is the BENCH_blr.json payload.
type BLRReport struct {
	Grid      int       `json:"grid"`
	Procs     int       `json:"procs"`
	Reps      int       `json:"reps"`
	MinBlock  int       `json:"min_block_size"`
	RefineTol float64   `json:"refine_tol"`
	Tols      []float64 `json:"tols"`
	Rows      []BLRRow  `json:"rows"`
	// TwoXAtTarget reports whether any row at the target tolerance 1e-8
	// reached a ≥2x memory ratio with refined backward error ≤ RefineTol.
	TwoXAtTarget bool   `json:"two_x_at_target_tol"`
	Note         string `json:"note"`
}

// blrProblem is one matrix of the compression study.
type blrProblem struct {
	name string
	a    *sparse.SymMatrix
}

// blrProblems builds the study set: the regular 3-D Poisson problem at the
// requested grid, a graded block matrix whose cliques are wider than the
// solver blocking (so the partition splits them and the factor carries dense
// intra-clique off-diagonal blocks with strong column grading), and an
// irregular random SPD problem with no geometry at all.
func blrProblems(grid int) []blrProblem {
	return []blrProblem{
		{fmt.Sprintf("poisson-%d", grid), gen.Laplacian3D(grid, grid, grid)},
		{"graded-256", gen.GradedPivot(8, 256, 0.96, 0.3, false)},
		{"random-spd", gen.RandomSPD(2000, 6, 7)},
	}
}

// BLRCompare measures block low-rank factor compression across tolerances:
// for each problem it factorizes dense once (the Tol=0 baseline row), then
// for every tolerance compresses a fresh factor (admission floor minBlock)
// and times a solve against it, recording raw and refined backward error.
// The whole study runs in the permuted system P·A·Pᵀ the factors are
// computed in — backward errors are permutation-invariant. Timings keep the
// best of reps repetitions; the byte accounting is deterministic.
func BLRCompare(grid, procs, reps, minBlock int, tols []float64) (*BLRReport, error) {
	if reps < 1 {
		reps = 1
	}
	rp := &BLRReport{
		Grid:      grid,
		Procs:     procs,
		Reps:      reps,
		MinBlock:  minBlock,
		RefineTol: solver.DefaultRefineTol,
		Tols:      tols,
	}
	for _, pb := range blrProblems(grid) {
		an, err := solver.Analyze(pb.a, solver.Options{
			P:        procs,
			Ordering: order.Options{Method: order.ScotchLike},
		})
		if err != nil {
			return nil, fmt.Errorf("%s: analyze: %w", pb.name, err)
		}
		_, b := gen.RHSForSolution(an.A)

		// Dense baseline: factorization time, resident bytes, solve quality.
		base := BLRRow{Matrix: pb.name, N: pb.a.N, FactorizeSec: math.Inf(1)}
		var f *solver.Factors
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			f, err = solver.FactorizeShared(an.A, an.Sched)
			if err != nil {
				return nil, fmt.Errorf("%s: factorize: %w", pb.name, err)
			}
			if s := time.Since(t0).Seconds(); s < base.FactorizeSec {
				base.FactorizeSec = s
			}
		}
		base.DenseBytes = f.MemoryBytes()
		base.CompressedBytes = base.DenseBytes
		base.Ratio = 1
		blrSolveInto(f, an.A, b, reps, &base)
		rp.Rows = append(rp.Rows, base)

		for _, tol := range tols {
			row := BLRRow{Matrix: pb.name, N: pb.a.N, Tol: tol,
				FactorizeSec: base.FactorizeSec, CompressSec: math.Inf(1)}
			// Compress a fresh factor per repetition (compression is in-place
			// and idempotent, so timing a second pass on the same factor would
			// measure a no-op).
			var cf *solver.Factors
			for r := 0; r < reps; r++ {
				cf, err = solver.FactorizeShared(an.A, an.Sched)
				if err != nil {
					return nil, fmt.Errorf("%s: factorize: %w", pb.name, err)
				}
				t0 := time.Now()
				st := cf.Compress(lowrank.Options{Tol: tol, MinBlockSize: minBlock})
				if s := time.Since(t0).Seconds(); s < row.CompressSec {
					row.CompressSec = s
				}
				row.DenseBytes = st.DenseBytes
				row.CompressedBytes = st.CompressedBytes
				row.Ratio = st.Ratio
				row.BlocksCompressed = st.BlocksCompressed
				row.BlocksTotal = st.BlocksTotal
			}
			blrSolveInto(cf, an.A, b, reps, &row)
			if tol == 1e-8 && row.Ratio >= 2 && row.RefinedErr <= rp.RefineTol {
				rp.TwoXAtTarget = true
			}
			rp.Rows = append(rp.Rows, row)
		}
	}
	rp.Note = "Ratio is dense-equivalent bytes over resident bytes of the same block structure. " +
		"At these problem sizes the supernodal blocks are small (≤ the 64-column blocking), and " +
		"exhaustive rank-revealing QR shows their numerical ranks at tight tolerances sit near " +
		"full rank — block truncation at Tol=1e-8 is storage-profitable on only a few percent of " +
		"the factor, so the memory ratio stays near 1 regardless of compressor quality. Gains grow " +
		"with looser tolerances and larger problems (wider separators). Adaptive refinement " +
		"recovers backward error below RefineTol at every tolerance where the refinement " +
		"contraction holds (cond(A)·Tol well below 1) — in this sweep, everywhere at Tol ≤ 1e-4, " +
		"and in a handful of sweeps even at Tol = 1e-2 on the well-conditioned problems; the " +
		"strongly graded matrix at Tol = 1e-2 stagnates above RefineTol, the expected failure " +
		"mode of loose compression on ill-conditioned systems."
	return rp, nil
}

// blrSolveInto times the triangular solve for factor f and records the raw
// and refined backward error of the solution into row. a and b live in the
// factor's permuted system.
func blrSolveInto(f *solver.Factors, a *sparse.SymMatrix, b []float64, reps int, row *BLRRow) {
	row.SolveSec = math.Inf(1)
	var x []float64
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		x = f.Solve(b)
		if s := time.Since(t0).Seconds(); s < row.SolveSec {
			row.SolveSec = s
		}
	}
	row.SolveErr = sparse.Residual(a, x, b)
	_, rs := f.RefineAdaptive(a, b, x, 0, 60)
	row.RefinedErr = rs.BackwardError
	row.RefineIters = rs.Iterations
	row.RefineConverged = rs.Converged
}

// FormatBLR renders the study as an aligned text table, one block per matrix.
func FormatBLR(rp *BLRReport) string {
	var sb strings.Builder
	last := ""
	for _, r := range rp.Rows {
		if r.Matrix != last {
			if last != "" {
				sb.WriteString("\n")
			}
			sb.WriteString(fmt.Sprintf("-- %s (n=%d) --\n", r.Matrix, r.N))
			sb.WriteString("      tol    ratio   comp/total   bytes      compress  solve (s)   raw err    refined (iters)\n")
			last = r.Matrix
		}
		tol := "dense"
		if r.Tol > 0 {
			tol = fmt.Sprintf("%.0e", r.Tol)
		}
		sb.WriteString(fmt.Sprintf("%9s  %6.3fx  %5d/%-5d  %9d  %8.4fs  %8.4fs  %9.2e  %9.2e (%d)\n",
			tol, r.Ratio, r.BlocksCompressed, r.BlocksTotal, r.CompressedBytes,
			r.CompressSec, r.SolveSec, r.SolveErr, r.RefinedErr, r.RefineIters))
	}
	return sb.String()
}
