package bench

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"github.com/pastix-go/pastix/internal/gen"
	"github.com/pastix-go/pastix/internal/order"
	"github.com/pastix-go/pastix/internal/solver"
)

// BatchRow is one right-hand-side count of the batched-solve comparison:
// wall-clock of k independent single-RHS parallel solves versus one blocked
// multi-RHS panel solve over the same k columns (each the best of the
// measured repetitions), the resulting speedup, and whether the batched
// columns were bit-identical to the independent solves (the service
// batcher's contract).
type BatchRow struct {
	NRHS         int     `json:"nrhs"`
	SingleSec    float64 `json:"single_sec"`
	BatchedSec   float64 `json:"batched_sec"`
	Speedup      float64 `json:"speedup"`
	PerRHSMicros float64 `json:"batched_us_per_rhs"`
	BitIdentical bool    `json:"bit_identical"`
}

// CompareBatchedSolve factorizes the nx×ny×nz Poisson problem once on p
// processors and then times, for each k in rhsCounts, k independent
// SolveParOpts calls against one k-column SolveParManyOpts. Both paths run
// the same message-passing panel solve, so the batched columns must be
// bit-identical to the independent results; any mismatch is an error.
func CompareBatchedSolve(nx, ny, nz, p int, rhsCounts []int, reps int) ([]BatchRow, error) {
	if reps < 1 {
		reps = 1
	}
	a := gen.Laplacian3D(nx, ny, nz)
	an, err := solver.Analyze(a, solver.Options{
		P:        p,
		Ordering: order.Options{Method: order.ScotchLike},
	})
	if err != nil {
		return nil, err
	}
	f, err := solver.FactorizePar(an.A, an.Sched)
	if err != nil {
		return nil, err
	}
	n := a.N
	ctx := context.Background()

	rows := make([]BatchRow, 0, len(rhsCounts))
	for _, k := range rhsCounts {
		if k < 1 {
			return nil, fmt.Errorf("bad rhs count %d", k)
		}
		panel := make([]float64, n*k)
		for r := 0; r < k; r++ {
			for i := 0; i < n; i++ {
				panel[r*n+i] = math.Sin(float64(1+i*(r+2))) + float64(r)
			}
		}
		row := BatchRow{NRHS: k, SingleSec: math.Inf(1), BatchedSec: math.Inf(1), BitIdentical: true}
		var single, batched []float64
		for rep := 0; rep < reps; rep++ {
			t0 := time.Now()
			single = single[:0]
			for r := 0; r < k; r++ {
				x, err := solver.SolveParOpts(ctx, an.Sched, f, panel[r*n:(r+1)*n], solver.SolveOptions{})
				if err != nil {
					return nil, fmt.Errorf("single k=%d: %w", k, err)
				}
				single = append(single, x...)
			}
			if s := time.Since(t0).Seconds(); s < row.SingleSec {
				row.SingleSec = s
			}

			t0 = time.Now()
			batched, err = solver.SolveParManyOpts(ctx, an.Sched, f, panel, k, solver.SolveOptions{})
			if err != nil {
				return nil, fmt.Errorf("batched k=%d: %w", k, err)
			}
			if s := time.Since(t0).Seconds(); s < row.BatchedSec {
				row.BatchedSec = s
			}
		}
		for i := range single {
			if batched[i] != single[i] {
				row.BitIdentical = false
				return nil, fmt.Errorf("batched k=%d: column value %v differs from independent solve %v at %d",
					k, batched[i], single[i], i)
			}
		}
		row.Speedup = row.SingleSec / row.BatchedSec
		row.PerRHSMicros = row.BatchedSec / float64(k) * 1e6
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatBatchedSolve renders the comparison as an aligned text table.
func FormatBatchedSolve(rows []BatchRow) string {
	var sb strings.Builder
	sb.WriteString("   k   k×single (s)  batched (s)  speedup   µs/rhs  bit-identical\n")
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%4d   %12.4f  %11.4f  %6.2fx  %7.0f  %v\n",
			r.NRHS, r.SingleSec, r.BatchedSec, r.Speedup, r.PerRHSMicros, r.BitIdentical))
	}
	return sb.String()
}
