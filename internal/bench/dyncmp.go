package bench

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"github.com/pastix-go/pastix/internal/gen"
	"github.com/pastix-go/pastix/internal/order"
	"github.com/pastix-go/pastix/internal/solver"
	"github.com/pastix-go/pastix/internal/sparse"
)

// DynRow is one point of the dynamic-vs-static comparison: the same
// schedule executed by the static shared-memory runtime (each worker pinned
// to its K_p vector) and by the work-stealing dynamic runtime, on a given
// matrix, with or without background CPU load. Both runtimes produce
// bitwise-identical factors — the comparison is purely about makespan.
type DynRow struct {
	Matrix     string  `json:"matrix"`
	N          int     `json:"n"`
	P          int     `json:"p"`
	Loaded     bool    `json:"background_load"`
	StaticSec  float64 `json:"static_sec"`
	DynamicSec float64 `json:"dynamic_sec"`
	Speedup    float64 `json:"speedup"` // static / dynamic; >1 means dynamic won
	Steals     int64   `json:"steals"`  // from the dynamic run kept for timing
}

// DynReport is the emitted artifact: the rows plus the host parallelism
// they were measured under. Work stealing's advantage over a static
// schedule only materialises when workers are real parallel execution
// streams; on a host with fewer cores than workers the comparison degrades
// to goroutine-scheduler noise, so the report records the context needed to
// read the numbers.
type DynReport struct {
	CPUs       int      `json:"cpus"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Rows       []DynRow `json:"rows"`
	Note       string   `json:"note,omitempty"`
}

// dynCmpCase is one matrix of the comparison corpus: the paper-style regular
// 3D Poisson problem (where the static schedule's cost model is accurate and
// static should be hard to beat) and an irregular graded matrix (deep
// uneven elimination tree, where static processor assignments go idle and
// stealing should recover the slack).
type dynCmpCase struct {
	name string
	a    *sparse.SymMatrix
}

// CompareDynamic times static (shared-memory) vs dynamic (work-stealing)
// execution of the same schedules and wraps the rows into the report
// artifact. See CompareDynamicRows for the measurement parameters.
func CompareDynamic(grid, procs, reps, spinners int) (*DynReport, error) {
	rows, err := CompareDynamicRows(grid, procs, reps, spinners)
	if err != nil {
		return nil, err
	}
	rp := &DynReport{CPUs: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0), Rows: rows}
	if rp.GOMAXPROCS < procs {
		rp.Note = fmt.Sprintf("host has GOMAXPROCS=%d for %d workers: the runtimes time-share cores, so "+
			"work stealing cannot convert idle workers into progress and the loaded points measure "+
			"goroutine-scheduler interference, not scheduling quality; on a machine with ≥%d cores the "+
			"dynamic runtime is expected to win the irregular-under-contention points",
			rp.GOMAXPROCS, procs, procs)
	}
	return rp, nil
}

// CompareDynamicRows measures the comparison grid. grid is the Poisson edge
// (grid³ unknowns; the irregular graded matrix is sized to match); procs
// the worker count; reps timing repetitions (best kept). Each matrix is
// measured twice: on an idle machine and with spinners background
// CPU-burner goroutines running — the scenario static scheduling cannot
// model and work stealing absorbs.
func CompareDynamicRows(grid, procs, reps, spinners int) ([]DynRow, error) {
	if reps < 1 {
		reps = 1
	}
	if spinners < 1 {
		spinners = procs
	}
	gradedNB := grid * grid * grid / 24 // size the irregular case like the Poisson one
	if gradedNB < 4 {
		gradedNB = 4
	}
	cases := []dynCmpCase{
		{fmt.Sprintf("poisson3d-%d", grid), gen.Laplacian3D(grid, grid, grid)},
		{"graded-irregular", gen.GradedPivot(gradedNB, 24, 1e-2, 0.05, false)},
	}
	var rows []DynRow
	for _, tc := range cases {
		an, err := solver.Analyze(tc.a, solver.Options{
			P:        procs,
			Ordering: order.Options{Method: order.ScotchLike},
			Part:     runtimeCmpPart,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", tc.name, err)
		}
		for _, loaded := range []bool{false, true} {
			stop := func() {}
			if loaded {
				stop = startLoad(spinners)
			}
			row, err := timeDynPoint(tc.name, an, reps, loaded)
			stop()
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// timeDynPoint measures one (matrix, load) point: best-of-reps wall time
// for each runtime, interleaved so load variation hits both fairly, with a
// one-off bitwise equality check between the two factors.
func timeDynPoint(name string, an *solver.Analysis, reps int, loaded bool) (DynRow, error) {
	row := DynRow{
		Matrix: name, N: an.A.N, P: an.Sched.P, Loaded: loaded,
		StaticSec: math.Inf(1), DynamicSec: math.Inf(1),
	}
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		fs, err := solver.FactorizeShared(an.A, an.Sched)
		if err != nil {
			return row, fmt.Errorf("%s static: %w", name, err)
		}
		if s := time.Since(t0).Seconds(); s < row.StaticSec {
			row.StaticSec = s
		}

		t0 = time.Now()
		fd, stats, err := solver.FactorizeDynamicStatsCtx(context.Background(), an.A, an.Sched, nil, solver.StaticPivot{})
		if err != nil {
			return row, fmt.Errorf("%s dynamic: %w", name, err)
		}
		if s := time.Since(t0).Seconds(); s < row.DynamicSec {
			row.DynamicSec = s
			row.Steals = stats.Steals
		}
		if r == 0 {
			for k := range fs.Data {
				for i := range fs.Data[k] {
					if fs.Data[k][i] != fd.Data[k][i] {
						return row, fmt.Errorf("%s: dynamic factor not bitwise-identical to static (cell %d elem %d)", name, k, i)
					}
				}
			}
		}
	}
	row.Speedup = row.StaticSec / row.DynamicSec
	return row, nil
}

// startLoad launches n CPU-burner goroutines and returns a function that
// stops them. The burners do unpredictable floating-point work so the OS
// scheduler genuinely contends them against the solver's workers — the
// "machine is busy" scenario a static schedule cannot see.
func startLoad(n int) (stop func()) {
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func(seed float64) {
			x := seed
			for {
				select {
				case <-done:
					return
				default:
					for k := 0; k < 1<<12; k++ {
						x = math.Sqrt(x*x + 1.000001)
					}
				}
			}
		}(float64(i) + 2)
	}
	return func() { close(done) }
}

// FormatDynRows renders the comparison as an aligned text table.
func FormatDynRows(rows []DynRow) string {
	var sb strings.Builder
	sb.WriteString("matrix             n      P  load   static (s)  dynamic (s)  speedup   steals\n")
	for _, r := range rows {
		load := "idle"
		if r.Loaded {
			load = "busy"
		}
		sb.WriteString(fmt.Sprintf("%-16s %6d %4d  %-4s   %10.4f   %10.4f   %6.2fx  %7d\n",
			r.Matrix, r.N, r.P, load, r.StaticSec, r.DynamicSec, r.Speedup, r.Steals))
	}
	return sb.String()
}
