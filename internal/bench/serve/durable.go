package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/pastix-go/pastix"
	"github.com/pastix-go/pastix/internal/gen"
	"github.com/pastix-go/pastix/internal/service"
)

// DurabilityRow is the factorize ack-latency distribution for one serving
// mode: in-memory (ack after compute) or durable (ack after the journal
// fsync as well).
type DurabilityRow struct {
	Mode     string  `json:"mode"`
	Factors  int     `json:"factors"`
	AckP50MS float64 `json:"ack_p50_ms"`
	AckP99MS float64 `json:"ack_p99_ms"`
	MeanMS   float64 `json:"ack_mean_ms"`
}

// DurabilityReport is the emitted BENCH_durability.json artifact: the price
// of the durable ack, the recovery wall time for a journal of K factors,
// and whether the replayed factors solve bitwise identically.
type DurabilityReport struct {
	CPUs            int             `json:"cpus"`
	GOMAXPROCS      int             `json:"gomaxprocs"`
	Grid            int             `json:"grid"`
	Procs           int             `json:"p"`
	Factors         int             `json:"factors"`
	Rows            []DurabilityRow `json:"rows"`
	WALBytes        float64         `json:"wal_bytes"`
	RecoverySeconds float64         `json:"recovery_seconds"`
	BitIdentical    bool            `json:"bit_identical"`
	Note            string          `json:"note,omitempty"`
}

// DurabilityTest factorizes the same pattern `factors` times against an
// in-memory service and a durable one (fsync-journaled data dir), compares
// the ack latency distributions, then kills the durable service and times a
// fresh process's journal replay — checking that a pre-restart solve and its
// post-replay rerun return the same bits.
func DurabilityTest(grid, procs, factors int) (*DurabilityReport, error) {
	rp := &DurabilityReport{
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Grid:       grid,
		Procs:      procs,
		Factors:    factors,
	}
	a := gen.Laplacian3D(grid, grid, grid)
	var mmb strings.Builder
	if err := pastix.WriteMatrixMarket(&mmb, a, "durability bench"); err != nil {
		return nil, err
	}
	mm := mmb.String()
	_, b := gen.RHSForSolution(a)

	dir, err := os.MkdirTemp("", "pastix-bench-durable-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	baseCfg := service.Config{
		Solver:     pastix.Options{Processors: procs},
		MaxFactors: factors + 1,
	}

	var handles []string
	var preX []float64
	for _, mode := range []struct {
		name    string
		dataDir string
	}{
		{"in-memory", ""},
		{"durable", dir},
	} {
		cfg := baseCfg
		cfg.DataDir = mode.dataDir
		svc, err := service.New(cfg)
		if err != nil {
			return nil, err
		}
		ts := httptest.NewServer(svc.Handler())
		lat := make([]time.Duration, 0, factors)
		fail := func(err error) (*DurabilityReport, error) {
			ts.Close()
			svc.Close()
			return nil, err
		}
		for k := 0; k < factors; k++ {
			var h struct {
				Handle  string `json:"handle"`
				Durable bool   `json:"durable"`
			}
			t0 := time.Now()
			if err := postServe(ts.URL+"/v1/factorize", map[string]any{"matrix_market": mm}, &h); err != nil {
				return fail(fmt.Errorf("%s factorize %d: %w", mode.name, k, err))
			}
			lat = append(lat, time.Since(t0))
			if mode.dataDir != "" {
				if !h.Durable {
					return fail(fmt.Errorf("durable factorize %d did not ack durable", k))
				}
				handles = append(handles, h.Handle)
			}
		}
		rp.Rows = append(rp.Rows, durabilityRow(mode.name, lat))

		if mode.dataDir != "" {
			// Pre-restart reference solve of the last handle, and the WAL size.
			var sx struct {
				X []float64 `json:"x"`
			}
			if err := postServe(ts.URL+"/v1/solve",
				map[string]any{"handle": handles[len(handles)-1], "b": b}, &sx); err != nil {
				return fail(fmt.Errorf("pre-restart solve: %w", err))
			}
			preX = sx.X
			if wb, err := scrapeDurabilityMetric(ts.URL+"/metrics", "pastix_store_wal_bytes"); err == nil {
				rp.WALBytes = wb
			}
		}
		ts.Close()
		svc.Close()
	}

	// Recovery: a fresh process on the same data dir replays every factor.
	t0 := time.Now()
	cfg := baseCfg
	cfg.DataDir = dir
	svc, err := service.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("reopen journal: %w", err)
	}
	defer svc.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	if err := svc.WaitRecovered(ctx); err != nil {
		return nil, fmt.Errorf("journal replay: %w", err)
	}
	rp.RecoverySeconds = time.Since(t0).Seconds()

	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	var sx struct {
		X []float64 `json:"x"`
	}
	if err := postServe(ts.URL+"/v1/solve",
		map[string]any{"handle": handles[len(handles)-1], "b": b}, &sx); err != nil {
		return nil, fmt.Errorf("post-replay solve: %w", err)
	}
	rp.BitIdentical = len(sx.X) == len(preX)
	for j := range sx.X {
		if sx.X[j] != preX[j] {
			rp.BitIdentical = false
			break
		}
	}
	rp.Note = "durable acks include a WAL append + fsync before the response; " +
		"recovery re-analyzes from journaled matrices and adopts journaled factor values, so replayed solves are bitwise identical"
	return rp, nil
}

func durabilityRow(mode string, lat []time.Duration) DurabilityRow {
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pct := func(p float64) float64 {
		if len(sorted) == 0 {
			return 0
		}
		i := int(p * float64(len(sorted)-1))
		return float64(sorted[i]) / float64(time.Millisecond)
	}
	var sum time.Duration
	for _, d := range lat {
		sum += d
	}
	mean := 0.0
	if len(lat) > 0 {
		mean = float64(sum) / float64(len(lat)) / float64(time.Millisecond)
	}
	return DurabilityRow{
		Mode: mode, Factors: len(lat),
		AckP50MS: pct(0.50), AckP99MS: pct(0.99), MeanMS: mean,
	}
}

// scrapeDurabilityMetric reads one un-labelled sample from Prometheus text.
func scrapeDurabilityMetric(url, name string) (float64, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			return strconv.ParseFloat(strings.TrimSpace(rest), 64)
		}
	}
	return 0, fmt.Errorf("metric %s not found", name)
}

// FormatDurabilityReport renders the report for the terminal.
func FormatDurabilityReport(rp *DurabilityReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "grid=%d p=%d factors=%d\n", rp.Grid, rp.Procs, rp.Factors)
	sb.WriteString("mode       factors  ack p50 (ms)  ack p99 (ms)  ack mean (ms)\n")
	for _, r := range rp.Rows {
		fmt.Fprintf(&sb, "%-10s %7d %13.3f %13.3f %14.3f\n",
			r.Mode, r.Factors, r.AckP50MS, r.AckP99MS, r.MeanMS)
	}
	fmt.Fprintf(&sb, "WAL bytes: %.0f\n", rp.WALBytes)
	fmt.Fprintf(&sb, "recovery: %.3fs for %d factors, bit-identical: %v\n",
		rp.RecoverySeconds, rp.Factors, rp.BitIdentical)
	return sb.String()
}
