package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pastix-go/pastix"
	"github.com/pastix-go/pastix/internal/gateway"
	"github.com/pastix-go/pastix/internal/gateway/chaos"
	"github.com/pastix-go/pastix/internal/gateway/client"
	"github.com/pastix-go/pastix/internal/gen"
	"github.com/pastix-go/pastix/internal/service"
)

// GatewayLoadRow is one point of the HA-gateway failover load test:
// concurrent clients solving one replicated factor through the gateway while
// zero or one backend is killed (and later restarted) mid-load.
type GatewayLoadRow struct {
	Clients   int     `json:"clients"`
	Kills     int     `json:"kills"`
	Requests  int     `json:"requests"`
	Accepted  int     `json:"accepted"` // 200s; with R>=2 and one kill this must equal Requests
	Mismatch  int     `json:"mismatch"` // accepted solves whose bits differ from the fault-free run
	QPS       float64 `json:"qps"`
	P50MS     float64 `json:"p50_ms"`
	P99MS     float64 `json:"p99_ms"`
	MeanMS    float64 `json:"mean_ms"`
	Failovers int64   `json:"failovers"`
	Retries   int64   `json:"retries"`
}

// GatewayReport is the emitted BENCH_gateway_failover.json artifact.
type GatewayReport struct {
	CPUs       int              `json:"cpus"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Grid       int              `json:"grid"`
	Procs      int              `json:"p"`
	Nodes      int              `json:"nodes"`
	Replicas   int              `json:"replicas"`
	Load       []GatewayLoadRow `json:"load_rows"`
	Note       string           `json:"note,omitempty"`
}

// GatewayTest measures serving throughput and tail latency through the HA
// gateway at each client count, first fault-free and then with one node
// killed a quarter of the way through the load and restarted (empty) at the
// halfway mark — the node-kill failover cost in QPS and p99. Every accepted
// solve is checked bitwise against a fault-free single-node reference.
func GatewayTest(grid, procs, nodes, requests int, clientCounts []int) (*GatewayReport, error) {
	rp := &GatewayReport{
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Grid:       grid,
		Procs:      procs,
		Nodes:      nodes,
		Replicas:   2,
	}
	if rp.CPUs < procs+2 {
		rp.Note = fmt.Sprintf("only %d CPUs for %d solver workers plus gateway and clients: rows measure time-sharing", rp.CPUs, procs)
	}

	a := gen.Laplacian3D(grid, grid, grid)
	var mm strings.Builder
	if err := pastix.WriteMatrixMarket(&mm, a, "gateway bench"); err != nil {
		return nil, err
	}
	an, err := pastix.Analyze(a, pastix.Options{Processors: procs})
	if err != nil {
		return nil, err
	}
	f, err := an.Factorize()
	if err != nil {
		return nil, err
	}
	_, b := gen.RHSForSolution(a)
	want, err := an.SolveParallel(f, b)
	if err != nil {
		return nil, err
	}

	for _, kills := range []int{0, 1} {
		for _, clients := range clientCounts {
			row, err := gatewayLoadPoint(mm.String(), b, want, procs, nodes, requests, clients, kills)
			if err != nil {
				return nil, fmt.Errorf("clients=%d kills=%d: %w", clients, kills, err)
			}
			rp.Load = append(rp.Load, *row)
		}
	}
	return rp, nil
}

func gatewayLoadPoint(mm string, b, want []float64, procs, nodes, requests, clients, kills int) (*GatewayLoadRow, error) {
	cl, err := chaos.NewCluster(nodes, service.Config{
		Solver:     pastix.Options{Processors: procs},
		QueueDepth: 4096,
		Workers:    8,
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	g, err := gateway.New(gateway.Config{
		Backends:      cl.URLs(),
		Replicas:      2,
		ProbeInterval: 25 * time.Millisecond,
		Retry:         client.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond, Seed: 1},
		Seed:          1,
	})
	if err != nil {
		return nil, err
	}
	defer g.Close()
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	var fr struct {
		Handle  string `json:"handle"`
		Primary int    `json:"primary_backend"`
	}
	if err := postServe(ts.URL+"/v1/factorize", map[string]any{"matrix_market": mm}, &fr); err != nil {
		return nil, fmt.Errorf("factorize: %w", err)
	}

	perClient := requests / clients
	if perClient < 1 {
		perClient = 1
	}
	total := perClient * clients
	lat := make([]float64, total)
	status := make([]int, total)
	mismatch := make([]bool, total)
	var completed atomic.Int64

	// The kill lands a quarter of the way through the load on the factorize
	// primary; the node comes back — empty — at the halfway mark, so the
	// tail also pays stale-handle rediscovery.
	killerDone := make(chan struct{})
	if kills > 0 {
		go func() {
			defer close(killerDone)
			victim := cl.Nodes[fr.Primary]
			for completed.Load() < int64(total/4) {
				time.Sleep(2 * time.Millisecond)
			}
			victim.Kill()
			for completed.Load() < int64(total/2) {
				time.Sleep(2 * time.Millisecond)
			}
			_ = victim.Restart()
		}()
	} else {
		close(killerDone)
	}

	var wg sync.WaitGroup
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			body := map[string]any{"handle": fr.Handle, "b": b}
			for i := 0; i < perClient; i++ {
				idx := c*perClient + i
				tr := time.Now()
				st, x := postSolve(ts.URL+"/v1/solve", body)
				lat[idx] = float64(time.Since(tr)) / float64(time.Millisecond)
				status[idx] = st
				if st == http.StatusOK {
					if len(x) != len(want) {
						mismatch[idx] = true
					} else {
						for j := range x {
							if x[j] != want[j] {
								mismatch[idx] = true
								break
							}
						}
					}
				}
				completed.Add(1)
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(t0).Seconds()
	<-killerDone

	row := &GatewayLoadRow{Clients: clients, Kills: kills, Requests: total}
	var okLat []float64
	for i := range status {
		if status[i] == http.StatusOK {
			row.Accepted++
			okLat = append(okLat, lat[i])
			if mismatch[i] {
				row.Mismatch++
			}
		}
	}
	if row.Accepted == 0 {
		return nil, fmt.Errorf("no solve accepted")
	}
	sort.Float64s(okLat)
	mean := 0.0
	for _, l := range okLat {
		mean += l
	}
	st := g.Stats()
	row.QPS = float64(row.Accepted) / wall
	row.P50MS = okLat[len(okLat)/2]
	row.P99MS = okLat[(len(okLat)*99)/100]
	row.MeanMS = mean / float64(len(okLat))
	row.Failovers = st.Failovers
	row.Retries = st.Retries
	return row, nil
}

// postSolve posts a solve and returns (status, x); transport errors come
// back as status 0.
func postSolve(url string, body map[string]any) (int, []float64) {
	var resp struct {
		X []float64 `json:"x"`
	}
	if err := postServe(url, body, &resp); err != nil {
		return 0, nil
	}
	return http.StatusOK, resp.X
}

// FormatGatewayReport renders the report as an aligned text table.
func FormatGatewayReport(rp *GatewayReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "nodes=%d replicas=%d grid=%d p=%d\n", rp.Nodes, rp.Replicas, rp.Grid, rp.Procs)
	sb.WriteString("clients  kills  requests  accepted  mismatch      QPS   p50 (ms)   p99 (ms)  failovers\n")
	for _, r := range rp.Load {
		fmt.Fprintf(&sb, "%7d %6d %9d %9d %9d %8.1f %10.3f %10.3f %10d\n",
			r.Clients, r.Kills, r.Requests, r.Accepted, r.Mismatch, r.QPS, r.P50MS, r.P99MS, r.Failovers)
	}
	return sb.String()
}

// MarshalPretty renders the report as indented JSON ready to write to the
// BENCH_gateway_failover.json artifact.
func (rp *GatewayReport) MarshalPretty() ([]byte, error) {
	data, err := json.MarshalIndent(rp, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
