// Package serve benchmarks the solve-path throughput engine: the level-set
// solve scheduler with packed panel kernels against the legacy sweeps, and
// the HTTP serving layer under concurrent clients. It lives apart from
// internal/bench because it exercises the public pastix API (which the root
// package's own benchmarks would cycle on).
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/pastix-go/pastix"
	"github.com/pastix-go/pastix/internal/gen"
	"github.com/pastix-go/pastix/internal/order"
	"github.com/pastix-go/pastix/internal/part"
	"github.com/pastix-go/pastix/internal/service"
	"github.com/pastix-go/pastix/internal/solver"
)

// runtimeCmpPart mirrors internal/bench's runtime-comparison blocking: small
// blocks so the solve DAG has enough cells to spread across workers at these
// test sizes.
var runtimeCmpPart = part.Options{BlockSize: 16, Ratio2D: 2, MinWidth2D: 8}

// ServeSolveRow is one point of the solve-engine comparison: the same
// factor solved by the legacy sweep (the per-supernode gathering
// SolveShared at one right-hand side, the message-passing panel sweep at
// many) and by the level-set engine with packed panel kernels. Times are
// best-of-reps wall seconds per right-hand side.
type ServeSolveRow struct {
	Matrix       string  `json:"matrix"`
	N            int     `json:"n"`
	P            int     `json:"p"`
	NRHS         int     `json:"nrhs"`
	Legacy       string  `json:"legacy_engine"`
	LegacyPerRHS float64 `json:"legacy_per_rhs_sec"`
	LevelPerRHS  float64 `json:"levelset_per_rhs_sec"`
	Speedup      float64 `json:"speedup"` // legacy / level-set; >1 means the level-set engine won
}

// ServeLoadRow is one client-count point of the in-process serving load
// test: concurrent clients firing single-RHS /v1/solve requests (riding the
// server's batcher) against one factor handle.
type ServeLoadRow struct {
	Clients  int     `json:"clients"`
	Requests int     `json:"requests"`
	QPS      float64 `json:"qps"`
	P50MS    float64 `json:"p50_ms"`
	P99MS    float64 `json:"p99_ms"`
	MeanMS   float64 `json:"mean_ms"`
}

// ServeReport is the emitted BENCH_solve_throughput.json artifact. Like the
// dynamic-vs-static report it records the host parallelism the numbers were
// measured under: with fewer cores than solver workers plus clients the QPS
// points measure time-sharing, not the solve path.
type ServeReport struct {
	CPUs       int             `json:"cpus"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Grid       int             `json:"grid"`
	Procs      int             `json:"p"`
	Solve      []ServeSolveRow `json:"solve_rows"`
	Load       []ServeLoadRow  `json:"load_rows"`
	Note       string          `json:"note,omitempty"`
}

// ServeTest measures the solve-path throughput engine: per-solve time of the
// level-set engine vs the legacy sweeps at 1 and wideNRHS right-hand sides,
// then an in-process HTTP load test at each of clientCounts concurrent
// clients (requests per point split across them).
func ServeTest(grid, procs, reps, wideNRHS, requests int, clientCounts []int) (*ServeReport, error) {
	if reps < 1 {
		reps = 1
	}
	if wideNRHS < 2 {
		wideNRHS = 32
	}
	if requests < 1 {
		requests = 200
	}
	rp := &ServeReport{
		CPUs: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
		Grid: grid, Procs: procs,
	}
	solveRows, err := serveSolveRows(grid, procs, reps, wideNRHS)
	if err != nil {
		return nil, err
	}
	rp.Solve = solveRows
	loadRows, err := serveLoadRows(grid, procs, requests, clientCounts)
	if err != nil {
		return nil, err
	}
	rp.Load = loadRows
	maxClients := 0
	for _, c := range clientCounts {
		if c > maxClients {
			maxClients = c
		}
	}
	if rp.GOMAXPROCS < procs+maxClients {
		rp.Note = fmt.Sprintf("host has GOMAXPROCS=%d for %d solver workers + up to %d clients: "+
			"the QPS and tail-latency points include core time-sharing; on a larger machine the "+
			"level-set engine's parallel steps convert directly into latency",
			rp.GOMAXPROCS, procs, maxClients)
	}
	return rp, nil
}

// serveSolveRows times the raw solve engines on one factor.
func serveSolveRows(grid, procs, reps, wideNRHS int) ([]ServeSolveRow, error) {
	a := gen.Laplacian3D(grid, grid, grid)
	name := fmt.Sprintf("poisson3d-%d", grid)
	an, err := solver.Analyze(a, solver.Options{
		P:        procs,
		Ordering: order.Options{Method: order.ScotchLike},
		Part:     runtimeCmpPart,
	})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	f, err := solver.FactorizeShared(an.A, an.Sched)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	an.PrepareSolve(f) // plan + packed panels out of the timed region
	pl := an.SolvePlanFor(procs)
	_, b := gen.RHSForSolution(a)
	pb := make([]float64, a.N)
	for newI, old := range an.Perm {
		pb[newI] = b[old]
	}
	panel := make([]float64, a.N*wideNRHS)
	for r := 0; r < wideNRHS; r++ {
		for i := 0; i < a.N; i++ {
			panel[i+r*a.N] = pb[i] * (1 + float64(r)/7)
		}
	}
	ctx := context.Background()
	var rows []ServeSolveRow
	for _, nrhs := range []int{1, wideNRHS} {
		row := ServeSolveRow{
			Matrix: name, N: a.N, P: procs, NRHS: nrhs,
			LegacyPerRHS: math.Inf(1), LevelPerRHS: math.Inf(1),
		}
		rhs := pb
		if nrhs > 1 {
			rhs = panel
		}
		for r := 0; r < reps; r++ {
			// Legacy: the schedule-sweep shared solve for one RHS, the
			// message-passing panel sweep for many (the engines the server
			// ran before the level-set scheduler).
			t0 := time.Now()
			if nrhs == 1 {
				row.Legacy = "shared-sweep"
				_, err = solver.SolveShared(an.Sched, f, rhs)
			} else {
				row.Legacy = "mpsim-panel"
				_, err = solver.SolveParManyOpts(ctx, an.Sched, f, rhs, nrhs, solver.SolveOptions{})
			}
			if err != nil {
				return nil, fmt.Errorf("%s legacy nrhs=%d: %w", name, nrhs, err)
			}
			if s := time.Since(t0).Seconds() / float64(nrhs); s < row.LegacyPerRHS {
				row.LegacyPerRHS = s
			}

			t0 = time.Now()
			_, err = solver.SolveLevelCtx(ctx, pl, f, rhs, solver.LevelOptions{NRHS: nrhs})
			if err != nil {
				return nil, fmt.Errorf("%s level nrhs=%d: %w", name, nrhs, err)
			}
			if s := time.Since(t0).Seconds() / float64(nrhs); s < row.LevelPerRHS {
				row.LevelPerRHS = s
			}
		}
		row.Speedup = row.LegacyPerRHS / row.LevelPerRHS
		rows = append(rows, row)
	}
	return rows, nil
}

// serveLoadRows boots the solver service in-process and fires concurrent
// single-RHS solve requests at one factor handle.
func serveLoadRows(grid, procs, requests int, clientCounts []int) ([]ServeLoadRow, error) {
	s, err := service.New(service.Config{
		Solver:     pastix.Options{Processors: procs},
		QueueDepth: 4096,
		Workers:    8,
	})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	a := gen.Laplacian3D(grid, grid, grid)
	var mm strings.Builder
	if err := pastix.WriteMatrixMarket(&mm, a, "servetest"); err != nil {
		return nil, err
	}
	var fr struct {
		Handle string `json:"handle"`
	}
	if err := postServe(ts.URL+"/v1/factorize", map[string]any{"matrix_market": mm.String()}, &fr); err != nil {
		return nil, fmt.Errorf("factorize: %w", err)
	}
	_, b := gen.RHSForSolution(a)

	var rows []ServeLoadRow
	for _, clients := range clientCounts {
		if clients < 1 {
			continue
		}
		perClient := requests / clients
		if perClient < 1 {
			perClient = 1
		}
		total := perClient * clients
		lat := make([]float64, total)
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		t0 := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				body := map[string]any{"handle": fr.Handle, "b": b}
				var resp struct {
					X []float64 `json:"x"`
				}
				for i := 0; i < perClient; i++ {
					tr := time.Now()
					if err := postServe(ts.URL+"/v1/solve", body, &resp); err != nil {
						errs <- fmt.Errorf("clients=%d: %w", clients, err)
						return
					}
					lat[c*perClient+i] = float64(time.Since(tr)) / float64(time.Millisecond)
				}
			}(c)
		}
		wg.Wait()
		wall := time.Since(t0).Seconds()
		select {
		case err := <-errs:
			return nil, err
		default:
		}
		sort.Float64s(lat)
		mean := 0.0
		for _, l := range lat {
			mean += l
		}
		rows = append(rows, ServeLoadRow{
			Clients:  clients,
			Requests: total,
			QPS:      float64(total) / wall,
			P50MS:    lat[total/2],
			P99MS:    lat[(total*99)/100],
			MeanMS:   mean / float64(total),
		})
	}
	return rows, nil
}

// postServe posts body as JSON and decodes the response, failing on any
// non-200 status.
func postServe(url string, body, into any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb bytes.Buffer
		_, _ = eb.ReadFrom(resp.Body)
		return fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, eb.String())
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

// FormatServeReport renders the report as aligned text tables.
func FormatServeReport(rp *ServeReport) string {
	var sb strings.Builder
	sb.WriteString("matrix          n      P  nrhs  legacy engine  legacy/rhs (ms)  levelset/rhs (ms)  speedup\n")
	for _, r := range rp.Solve {
		fmt.Fprintf(&sb, "%-12s %6d %4d %5d  %-13s %16.3f %18.3f %8.2fx\n",
			r.Matrix, r.N, r.P, r.NRHS, r.Legacy, r.LegacyPerRHS*1e3, r.LevelPerRHS*1e3, r.Speedup)
	}
	sb.WriteString("\nclients  requests      QPS   p50 (ms)   p99 (ms)  mean (ms)\n")
	for _, r := range rp.Load {
		fmt.Fprintf(&sb, "%7d %9d %8.1f %10.3f %10.3f %10.3f\n",
			r.Clients, r.Requests, r.QPS, r.P50MS, r.P99MS, r.MeanMS)
	}
	return sb.String()
}
