// Package bench regenerates the paper's evaluation: Table 1 (problem and
// ordering metrics), Table 2 (parallel factorization time and Gflop/s,
// PaStiX vs the PSPASES-like baseline, 1–64 processors on the SP2 profile),
// the §3 dense kernel comparison (LLᵀ vs LDLᵀ), and the scheduling ablations
// discussed in §2. It is shared by cmd/pastix-bench and the root package's
// testing.B benchmarks.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/pastix-go/pastix/internal/blas"
	"github.com/pastix-go/pastix/internal/cost"
	"github.com/pastix-go/pastix/internal/gen"
	"github.com/pastix-go/pastix/internal/multifrontal"
	"github.com/pastix-go/pastix/internal/order"
	"github.com/pastix-go/pastix/internal/part"
	"github.com/pastix-go/pastix/internal/sched"
	"github.com/pastix-go/pastix/internal/solver"
)

// DefaultScale sizes the synthetic problem suite: 1.0 targets ≈1/8 of the
// paper's degrees of freedom per problem (see internal/gen); the default
// keeps the full Table 2 sweep under a few minutes of analysis time.
const DefaultScale = 0.25

// DefaultProcs is the paper's processor axis.
var DefaultProcs = []int{1, 2, 4, 8, 16, 32, 64}

// PastixAnalysis runs the paper's PaStiX configuration (Scotch-like
// ordering, blocking 64, mixed 1D/2D) for the named problem.
func PastixAnalysis(name string, scale float64, p int) (*solver.Analysis, error) {
	prob, err := gen.Generate(name, scale)
	if err != nil {
		return nil, err
	}
	return solver.Analyze(prob.A, solver.Options{
		P:        p,
		Ordering: order.Options{Method: order.ScotchLike},
		Part:     part.Options{BlockSize: 64, Ratio2D: 4},
	})
}

// PspasesAnalysis runs the baseline configuration (MeTiS-like ordering,
// whole-supernode fronts, subcube mapping).
func PspasesAnalysis(name string, scale float64, p int) (*solver.Analysis, error) {
	prob, err := gen.Generate(name, scale)
	if err != nil {
		return nil, err
	}
	return solver.Analyze(prob.A, solver.Options{
		P:        p,
		Ordering: order.Options{Method: order.MetisLike},
		Part:     part.Options{BlockSize: 1 << 20, Ratio2D: 1 << 30},
	})
}

// Table1Row mirrors one line of the paper's Table 1.
type Table1Row struct {
	Name       string
	Columns    int
	NNZA       int
	NNZLScotch int64
	OPCScotch  float64
	NNZLMetis  int64
	OPCMetis   float64
}

// Table1 computes the problem-description metrics for every test problem
// under both ordering configurations (scalar column symbolic factorization,
// exactly as the paper states).
func Table1(scale float64) ([]Table1Row, error) {
	var rows []Table1Row
	for _, name := range gen.Names() {
		s, err := PastixAnalysis(name, scale, 1)
		if err != nil {
			return nil, err
		}
		m, err := PspasesAnalysis(name, scale, 1)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Name:       name,
			Columns:    s.A.N,
			NNZA:       s.A.NNZOffDiag(),
			NNZLScotch: s.ScalarNNZL,
			OPCScotch:  s.ScalarOPC,
			NNZLMetis:  m.ScalarNNZL,
			OPCMetis:   m.ScalarOPC,
		})
	}
	return rows, nil
}

// FormatTable1 renders the rows in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %9s %10s %14s %12s %14s %12s\n",
		"Name", "Columns", "NNZ_A", "NNZ_L(Scotch)", "OPC(Scotch)", "NNZ_L(MeTiS)", "OPC(MeTiS)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %9d %10d %14d %12.3e %14d %12.3e\n",
			r.Name, r.Columns, r.NNZA, r.NNZLScotch, r.OPCScotch, r.NNZLMetis, r.OPCMetis)
	}
	return b.String()
}

// Table2Cell is one (problem, processor-count) measurement.
type Table2Cell struct {
	Time   float64 // modelled seconds on the SP2 profile
	GFlops float64 // scalar OPC / time / 1e9 (the paper's performance figure)
}

// Table2Row mirrors one pair of lines of the paper's Table 2: the PaStiX
// results and the PSPASES results across the processor axis.
type Table2Row struct {
	Name    string
	Procs   []int
	Pastix  []Table2Cell
	Pspases []Table2Cell
}

// Table2 regenerates the factorization-performance table on the SP2-like
// machine model: PaStiX times are the replayed static-schedule makespans of
// the fan-in LDLᵀ solver; PSPASES times come from the multifrontal subcube
// simulation (LLᵀ kernel rates).
func Table2(scale float64, procs []int) ([]Table2Row, error) {
	mach := cost.SP2()
	var rows []Table2Row
	for _, name := range gen.Names() {
		row := Table2Row{Name: name, Procs: procs}
		for _, p := range procs {
			pa, err := PastixAnalysis(name, scale, p)
			if err != nil {
				return nil, err
			}
			t := pa.Sched.Replay()
			row.Pastix = append(row.Pastix, Table2Cell{Time: t, GFlops: pa.ScalarOPC / t / 1e9})

			ps, err := PspasesAnalysis(name, scale, p)
			if err != nil {
				return nil, err
			}
			bt := multifrontal.SimulateTime(ps, mach)
			row.Pspases = append(row.Pspases, Table2Cell{Time: bt, GFlops: ps.ScalarOPC / bt / 1e9})
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable2 renders Table 2 in the paper's layout: per problem, the first
// line is PaStiX, the second PSPASES; each cell is "time (GFlops)".
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	if len(rows) == 0 {
		return ""
	}
	fmt.Fprintf(&b, "%-10s %-8s", "Name", "Solver")
	for _, p := range rows[0].Procs {
		fmt.Fprintf(&b, " %14s", fmt.Sprintf("P=%d", p))
	}
	fmt.Fprintln(&b)
	line := func(name, solverName string, cells []Table2Cell) {
		fmt.Fprintf(&b, "%-10s %-8s", name, solverName)
		for _, c := range cells {
			fmt.Fprintf(&b, " %8.3f(%4.2f)", c.Time, c.GFlops)
		}
		fmt.Fprintln(&b)
	}
	for _, r := range rows {
		line(r.Name, "PaStiX", r.Pastix)
		line("", "PSPASES", r.Pspases)
	}
	return b.String()
}

// DenseKernelResult reproduces the paper's §3 micro-comparison: the time of
// a dense n×n LLᵀ vs LDLᵀ factorization (measured on this host, plus the
// SP2-modelled times for reference).
type DenseKernelResult struct {
	N                   int
	LLT, LDLT           float64 // measured seconds on this host
	SP2LLT, SP2LDLT     float64 // modelled seconds on the Power2SC profile
	RatioHost, RatioSP2 float64
}

// DenseKernels measures the dense kernel comparison at order n.
func DenseKernels(n int) DenseKernelResult {
	src := make([]float64, n*n)
	for j := 0; j < n; j++ {
		src[j+j*n] = float64(n) + 1
		for i := j + 1; i < n; i++ {
			src[i+j*n] = -0.5 / float64(n)
		}
	}
	a := make([]float64, n*n)
	timeOf := func(f func()) float64 {
		best := -1.0
		for r := 0; r < 3; r++ {
			copy(a, src)
			start := time.Now()
			f()
			t := time.Since(start).Seconds()
			if best < 0 || t < best {
				best = t
			}
		}
		return best
	}
	res := DenseKernelResult{N: n}
	res.LLT = timeOf(func() { _ = blas.Cholesky(n, a, n) })
	res.LDLT = timeOf(func() { _ = blas.LDLT(n, a, n) })
	mach := cost.SP2()
	res.SP2LDLT = mach.FactorTime(n)
	res.SP2LLT = res.SP2LDLT / mach.CholRatio()
	res.RatioHost = res.LDLT / res.LLT
	res.RatioSP2 = res.SP2LDLT / res.SP2LLT
	return res
}

// AblationRow compares the mixed 1D/2D distribution against 1D-only
// scheduling on one problem (the design choice §2 argues for), and the
// greedy simulation mapper against the naive variant that always maps onto
// the first candidate.
type AblationRow struct {
	Name      string
	P         int
	Mixed1D2D float64 // replayed makespan, paper configuration
	Only1D    float64 // Ratio2D = ∞
	FirstCand float64 // mixed distribution, first-candidate mapping
}

// Ablate runs the scheduling ablations for one problem at one processor
// count.
func Ablate(name string, scale float64, p int) (AblationRow, error) {
	row := AblationRow{Name: name, P: p}
	prob, err := gen.Generate(name, scale)
	if err != nil {
		return row, err
	}
	mixed, err := solver.Analyze(prob.A, solver.Options{
		P:        p,
		Ordering: order.Options{Method: order.ScotchLike},
		Part:     part.Options{BlockSize: 64, Ratio2D: 4},
	})
	if err != nil {
		return row, err
	}
	row.Mixed1D2D = mixed.Sched.Replay()

	only1d, err := solver.Analyze(prob.A, solver.Options{
		P:        p,
		Ordering: order.Options{Method: order.ScotchLike},
		Part:     part.Options{BlockSize: 64, Ratio2D: 1 << 30},
	})
	if err != nil {
		return row, err
	}
	row.Only1D = only1d.Sched.Replay()

	firstCand, err := solver.Analyze(prob.A, solver.Options{
		P:        p,
		Ordering: order.Options{Method: order.ScotchLike},
		Part:     part.Options{BlockSize: 64, Ratio2D: 4},
		Sched:    sched.Options{FirstCandidate: true},
	})
	if err != nil {
		return row, err
	}
	row.FirstCand = firstCand.Sched.Replay()
	return row, nil
}

// SortedNames returns the benchmark problem names sorted (Table order).
func SortedNames() []string {
	n := gen.Names()
	sort.Strings(n)
	return n
}

// SMPAblate quantifies topology-aware scheduling on an SMP cluster (the
// paper's stated next step): both schedules are evaluated on the same SMP
// machine (nodes of nodeSize processors with shared-memory-like intra-node
// links); "aware" was built knowing the topology, "flat" was built with the
// flat network model.
func SMPAblate(name string, scale float64, p, nodeSize int) (aware, flat float64, err error) {
	prob, err := gen.Generate(name, scale)
	if err != nil {
		return 0, 0, err
	}
	smp := cost.SP2().WithSMPNodes(nodeSize)
	awareAn, err := solver.Analyze(prob.A, solver.Options{
		P:        p,
		Ordering: order.Options{Method: order.ScotchLike},
		Part:     part.Options{BlockSize: 64, Ratio2D: 4},
		Machine:  smp,
	})
	if err != nil {
		return 0, 0, err
	}
	flatAn, err := solver.Analyze(prob.A, solver.Options{
		P:        p,
		Ordering: order.Options{Method: order.ScotchLike},
		Part:     part.Options{BlockSize: 64, Ratio2D: 4},
	})
	if err != nil {
		return 0, 0, err
	}
	return awareAn.Sched.Replay(), flatAn.Sched.ReplayOn(smp), nil
}

// FormatSpeedupPlot renders Table 2 as an ASCII figure: one speedup curve
// per solver for the given problem, over the processor axis — "who wins and
// where the curves bend" at a glance.
func FormatSpeedupPlot(row Table2Row, height int) string {
	if height <= 0 {
		height = 16
	}
	var b strings.Builder
	np := len(row.Procs)
	su := func(cells []Table2Cell, i int) float64 { return cells[0].Time / cells[i].Time }
	maxS := 1.0
	for i := range row.Procs {
		if s := su(row.Pastix, i); s > maxS {
			maxS = s
		}
		if s := su(row.Pspases, i); s > maxS {
			maxS = s
		}
	}
	const colW = 7
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", np*colW))
	}
	put := func(i int, s float64, ch byte) {
		r := height - 1 - int(s/maxS*float64(height-1)+0.5)
		if r < 0 {
			r = 0
		}
		c := i*colW + colW/2
		if grid[r][c] == ' ' {
			grid[r][c] = ch
		} else {
			grid[r][c] = '*' // overlap
		}
	}
	for i := range row.Procs {
		put(i, su(row.Pastix, i), 'X')
		put(i, su(row.Pspases, i), 'o')
	}
	fmt.Fprintf(&b, "%s — speedup vs P=1 (X = PaStiX, o = PSPASES, * = overlap), ceiling %.1f\n",
		row.Name, maxS)
	for r := range grid {
		fmt.Fprintf(&b, "  |%s\n", grid[r])
	}
	fmt.Fprintf(&b, "  +%s\n   ", strings.Repeat("-", np*colW))
	for _, p := range row.Procs {
		fmt.Fprintf(&b, "%-*s", colW, fmt.Sprintf("P=%d", p))
	}
	fmt.Fprintln(&b)
	return b.String()
}

// BlockSweepRow records the blocking-size trade-off the paper resolves at 64:
// small blocks mean little amalgamation overhead but poor BLAS shape and huge
// task counts; large blocks the reverse.
type BlockSweepRow struct {
	BlockSize int
	BlockNNZL int64 // stored entries incl. explicit zeros
	Tasks     int
	ModelTime float64 // replayed makespan, SP2 profile
}

// BlockSweep evaluates a problem at several blocking sizes and fixed P.
func BlockSweep(name string, scale float64, p int, sizes []int) ([]BlockSweepRow, error) {
	prob, err := gen.Generate(name, scale)
	if err != nil {
		return nil, err
	}
	var rows []BlockSweepRow
	for _, bs := range sizes {
		an, err := solver.Analyze(prob.A, solver.Options{
			P:        p,
			Ordering: order.Options{Method: order.ScotchLike},
			Part:     part.Options{BlockSize: bs, Ratio2D: 4},
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, BlockSweepRow{
			BlockSize: bs,
			BlockNNZL: an.Sym.NNZL(),
			Tasks:     len(an.Sched.Tasks),
			ModelTime: an.Sched.Replay(),
		})
	}
	return rows, nil
}
