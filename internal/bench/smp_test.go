package bench

import "testing"

func TestSMPAwareSchedulingHelps(t *testing.T) {
	aware, flat, err := SMPAblate("BMWCRA1", 0.1, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if aware <= 0 || flat <= 0 {
		t.Fatal("missing results")
	}
	// Topology-aware scheduling must not be (much) worse than flat; it is
	// usually better because AUB routes stay on-node.
	if aware > flat*1.05 {
		t.Fatalf("SMP-aware schedule (%g) worse than flat (%g)", aware, flat)
	}
	t.Logf("aware=%gs flat=%gs gain=%.1f%%", aware, flat, 100*(flat-aware)/flat)
}
