package bench

import (
	"fmt"
	"math"
	"strings"
	"time"

	"github.com/pastix-go/pastix/internal/gen"
	"github.com/pastix-go/pastix/internal/order"
	"github.com/pastix-go/pastix/internal/part"
	"github.com/pastix-go/pastix/internal/solver"
)

// RuntimeRow is one processor count of the shared-memory vs message-passing
// runtime comparison: wall-clock of the executed factorization under each
// runtime (best of the measured repetitions), the resulting speedup, and the
// communication volume the message runtime paid that the shared runtime
// avoided entirely.
type RuntimeRow struct {
	P         int     `json:"p"`
	MpsimSec  float64 `json:"mpsim_sec"`
	SharedSec float64 `json:"shared_sec"`
	Speedup   float64 `json:"speedup"`
	Messages  int64   `json:"messages"`
	Bytes     int64   `json:"bytes"`
	MaxDiff   float64 `json:"max_rel_diff"` // shared vs sequential factor
}

// runtimeCmpPart is the blocking used by the runtime comparison: small
// blocks and an aggressive 1D/2D switch, so the schedule carries the full
// mix of COMP1D/FACTOR/BDIV/BMOD tasks and a realistic message volume. With
// large blocks the dense kernels dwarf the communication under either
// runtime and the comparison measures nothing.
var runtimeCmpPart = part.Options{BlockSize: 16, Ratio2D: 2, MinWidth2D: 8}

// CompareRuntimes factorizes the nx×ny×nz Poisson problem (7-point stencil,
// the paper-style regular 3D test case) over the given processor axis with
// both runtimes. Each timing is the best of reps repetitions; each shared
// factor is validated entry-wise against the sequential reference so the
// speedup never comes at the cost of the numbers.
func CompareRuntimes(nx, ny, nz int, procs []int, reps int) ([]RuntimeRow, error) {
	if reps < 1 {
		reps = 1
	}
	a := gen.Laplacian3D(nx, ny, nz)
	refAn, err := solver.Analyze(a, solver.Options{
		P:        1,
		Ordering: order.Options{Method: order.ScotchLike},
		Part:     runtimeCmpPart,
	})
	if err != nil {
		return nil, err
	}
	ref, err := solver.FactorizeSeq(refAn.A, refAn.Sym)
	if err != nil {
		return nil, err
	}

	rows := make([]RuntimeRow, 0, len(procs))
	for _, p := range procs {
		an, err := solver.Analyze(a, solver.Options{
			P:        p,
			Ordering: order.Options{Method: order.ScotchLike},
			Part:     runtimeCmpPart,
		})
		if err != nil {
			return nil, err
		}
		row := RuntimeRow{P: p, MpsimSec: math.Inf(1), SharedSec: math.Inf(1)}
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			_, stats, err := solver.FactorizeParStats(an.A, an.Sched, solver.ParOptions{})
			if err != nil {
				return nil, fmt.Errorf("mpsim P=%d: %w", p, err)
			}
			if s := time.Since(t0).Seconds(); s < row.MpsimSec {
				row.MpsimSec = s
			}
			row.Messages, row.Bytes = stats.Messages, stats.Bytes

			t0 = time.Now()
			f, err := solver.FactorizeShared(an.A, an.Sched)
			if err != nil {
				return nil, fmt.Errorf("shared P=%d: %w", p, err)
			}
			if s := time.Since(t0).Seconds(); s < row.SharedSec {
				row.SharedSec = s
			}
			if r == 0 {
				if row.MaxDiff = maxRelDiff(ref, f); row.MaxDiff > 1e-11 {
					return nil, fmt.Errorf("shared P=%d: factor differs from sequential by %g", p, row.MaxDiff)
				}
			}
		}
		row.Speedup = row.MpsimSec / row.SharedSec
		rows = append(rows, row)
	}
	return rows, nil
}

func maxRelDiff(a, b *solver.Factors) float64 {
	m := 0.0
	for k := range a.Data {
		for i := range a.Data[k] {
			d := math.Abs(a.Data[k][i]-b.Data[k][i]) / (1 + math.Abs(a.Data[k][i]))
			if d > m {
				m = d
			}
		}
	}
	return m
}

// FormatRuntimes renders the comparison as an aligned text table.
func FormatRuntimes(rows []RuntimeRow) string {
	var sb strings.Builder
	sb.WriteString("  P   mpsim (s)  shared (s)  speedup   messages       bytes\n")
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%3d   %9.4f   %9.4f   %6.2fx   %8d  %10d\n",
			r.P, r.MpsimSec, r.SharedSec, r.Speedup, r.Messages, r.Bytes))
	}
	return sb.String()
}
