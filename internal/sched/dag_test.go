package sched

import (
	"testing"

	"github.com/pastix-go/pastix/internal/gen"
)

func TestNewDAGValidation(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges [][2]int
		ok    bool
	}{
		{"empty", 0, nil, true},
		{"chain", 3, [][2]int{{0, 1}, {1, 2}}, true},
		{"diamond", 4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}}, true},
		{"parallel-edges", 2, [][2]int{{0, 1}, {0, 1}}, true},
		{"negative-n", -1, nil, false},
		{"dst-out-of-range", 2, [][2]int{{0, 5}}, false},
		{"src-out-of-range", 2, [][2]int{{-1, 0}}, false},
		{"self-loop", 2, [][2]int{{1, 1}}, false},
		{"two-cycle", 2, [][2]int{{0, 1}, {1, 0}}, false},
		{"three-cycle", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 1}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := NewDAG(tc.n, tc.edges)
			if tc.ok && err != nil {
				t.Fatalf("NewDAG: %v", err)
			}
			if !tc.ok {
				if err == nil {
					t.Fatalf("NewDAG accepted invalid graph")
				}
				return
			}
			if d.NTasks() != tc.n {
				t.Fatalf("NTasks = %d, want %d", d.NTasks(), tc.n)
			}
			in := d.InDegrees()
			want := make([]int32, tc.n)
			for _, e := range tc.edges {
				want[e[1]]++
			}
			for i := range want {
				if in[i] != want[i] {
					t.Fatalf("InDegrees[%d] = %d, want %d", i, in[i], want[i])
				}
			}
		})
	}
}

// TestScheduleDAG checks that the DAG extracted from a real schedule carries
// exactly the schedule's edges and a priority consistent with the mapper's
// depth-first preference.
func TestScheduleDAG(t *testing.T) {
	a := gen.Laplacian2D(14, 14)
	_, sch := buildSchedule(t, a, 4, 24)
	d := sch.DAG()
	if d.NTasks() != len(sch.Tasks) {
		t.Fatalf("DAG has %d tasks, schedule %d", d.NTasks(), len(sch.Tasks))
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("schedule DAG invalid: %v", err)
	}
	// Same in-degrees as the schedule's own counters.
	want := sch.InDegrees()
	got := d.InDegrees()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("task %d: DAG in-degree %d, schedule %d", i, got[i], want[i])
		}
	}
	// Edges preserved one-for-one.
	for i := range sch.Tasks {
		if len(d.Outs[i]) != len(sch.Tasks[i].Outs) {
			t.Fatalf("task %d: %d DAG out-edges, schedule has %d", i, len(d.Outs[i]), len(sch.Tasks[i].Outs))
		}
		for j, e := range sch.Tasks[i].Outs {
			if int(d.Outs[i][j]) != e.Dst {
				t.Fatalf("task %d edge %d: DAG dst %d, schedule %d", i, j, d.Outs[i][j], e.Dst)
			}
		}
	}
	// Priority encodes depth in the high bits: a leaf supernode's COMP1D must
	// outrank the root cell's tasks.
	deepest, shallowest := int64(-1), int64(1)<<62
	for i := range sch.Tasks {
		if d.Priority[i] > deepest {
			deepest = d.Priority[i]
		}
		if d.Priority[i] < shallowest {
			shallowest = d.Priority[i]
		}
	}
	if deepest>>32 <= shallowest>>32 {
		t.Fatalf("priorities carry no depth spread: max %d min %d", deepest, shallowest)
	}
}
