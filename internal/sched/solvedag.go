package sched

import (
	"github.com/pastix-go/pastix/internal/symbolic"
)

// SolveDAG is the dependency structure of the block triangular solves,
// projected from the supernodal elimination structure: the forward sweep has
// an edge k→f for every off-diagonal block of column block k facing f (cell
// f's forward solve consumes y_k), and the backward sweep is the same graph
// reversed. Unlike the factorization DAG, there are no inter-block update
// tasks — one node per column block — so the solve phase deserves its own,
// much flatter, schedule rather than reusing the factorization's proc
// mapping (the per-phase static specialization the paper argues for).
//
// Level[k] is the longest-path depth of cell k (sources at level 0);
// Levels[l] lists the cells of level l in ascending index order. Within a
// level no two cells depend on each other, so a level can run in any order —
// and because every consumer applies its incoming contributions in the
// canonical (source, block) order, any within-level execution produces
// bitwise-identical results.
type SolveDAG struct {
	Level  []int32   // per cell: level-set index (0 = no in-edges)
	Levels [][]int32 // cells by level, ascending index within each level

	// Edges counts the forward dependencies (off-diagonal blocks); MaxWidth
	// is the widest level in cells.
	Edges    int
	MaxWidth int
}

// BuildSolveDAG computes the level sets of the solve DAG in one ascending
// pass: every block of cell k faces a cell with a larger index (lower
// triangle), so by the time k is visited its own level is final.
func BuildSolveDAG(sym *symbolic.Symbol) *SolveDAG {
	ncb := sym.NumCB()
	d := &SolveDAG{Level: make([]int32, ncb)}
	depth := int32(0)
	for k := 0; k < ncb; k++ {
		lk := d.Level[k] + 1
		if lk > depth {
			depth = lk
		}
		for _, blk := range sym.CB[k].Blocks {
			d.Edges++
			if d.Level[blk.Facing] < lk {
				d.Level[blk.Facing] = lk
			}
		}
	}
	if ncb == 0 {
		return d
	}
	d.Levels = make([][]int32, depth)
	width := make([]int, depth)
	for k := 0; k < ncb; k++ {
		width[d.Level[k]]++
	}
	for l, w := range width {
		d.Levels[l] = make([]int32, 0, w)
		if w > d.MaxWidth {
			d.MaxWidth = w
		}
	}
	for k := 0; k < ncb; k++ {
		l := d.Level[k]
		d.Levels[l] = append(d.Levels[l], int32(k))
	}
	return d
}

// Depth returns the number of level sets (the solve DAG's critical path in
// cells).
func (d *SolveDAG) Depth() int { return len(d.Levels) }

// SolveStep is one synchronization step of a hybrid solve schedule: either a
// wide level executed in parallel across workers (one barrier afterwards),
// or a run of consecutive narrow levels collapsed into a single sequential
// chain so the tail of the elimination tree does not pay one barrier per
// level. Cells are in level order, ascending index within a level — a
// topological order for the forward sweep; the backward sweep walks the
// steps and the cells inside each step in reverse.
type SolveStep struct {
	Cells    []int32
	Parallel bool
	// Levels is the number of level sets merged into this step (1 for
	// parallel steps).
	Levels int
}

// DefaultSolveCutoff is the hybrid width threshold for w workers: a level
// narrower than 2·w cells cannot keep the workers busy past the barrier it
// costs, so it is chained.
func DefaultSolveCutoff(workers int) int { return 2 * workers }

// HybridSteps folds the level sets into a hybrid schedule: levels at least
// cutoff cells wide become parallel steps, narrower levels merge with their
// neighbours into sequential chains. cutoff <= 0 selects
// DefaultSolveCutoff(workers); workers <= 1 collapses everything into one
// chain (a pure sequential sweep with no barriers).
func (d *SolveDAG) HybridSteps(workers, cutoff int) []SolveStep {
	if cutoff <= 0 {
		cutoff = DefaultSolveCutoff(workers)
	}
	var steps []SolveStep
	var chain []int32
	chainLevels := 0
	flush := func() {
		if len(chain) > 0 {
			steps = append(steps, SolveStep{Cells: chain, Levels: chainLevels})
			chain, chainLevels = nil, 0
		}
	}
	for _, cells := range d.Levels {
		if workers > 1 && len(cells) >= cutoff {
			flush()
			steps = append(steps, SolveStep{Cells: cells, Parallel: true, Levels: 1})
			continue
		}
		chain = append(chain, cells...)
		chainLevels++
	}
	flush()
	return steps
}
