package sched

import (
	"testing"

	"github.com/pastix-go/pastix/internal/cost"
	"github.com/pastix-go/pastix/internal/etree"
	"github.com/pastix-go/pastix/internal/gen"
	"github.com/pastix-go/pastix/internal/graph"
	"github.com/pastix-go/pastix/internal/order"
	"github.com/pastix-go/pastix/internal/part"
	"github.com/pastix-go/pastix/internal/sparse"
	"github.com/pastix-go/pastix/internal/symbolic"
)

func buildSchedule(t *testing.T, a *sparse.SymMatrix, P, bs int) (*symbolic.Symbol, *Schedule) {
	t.Helper()
	ptr, adj := a.AdjacencyCSR()
	g := graph.FromCSR(a.N, ptr, adj)
	o := order.Compute(g, order.Options{Method: order.ScotchLike, LeafSize: 40})
	pa := a.Permute(o.Perm)
	parent := etree.Build(pa)
	post := etree.Postorder(parent)
	pa = pa.Permute(post)
	parent = etree.Build(pa)
	cc := etree.ColCounts(pa, parent)
	sn := etree.Fundamental(parent, cc)
	sn = etree.Amalgamate(sn, parent, cc, etree.AmalgamateOptions{})
	sn = part.SplitRanges(sn, part.Options{BlockSize: bs})
	sym := symbolic.Factor(pa, sn)
	if err := sym.Validate(); err != nil {
		t.Fatal(err)
	}
	mach := cost.SP2()
	mapping := part.Map(sym, mach, P, part.Options{BlockSize: bs, Ratio2D: 4, MinWidth2D: bs / 2})
	sch, err := Build(sym, mapping, mach, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sym, sch
}

func testMatrix(t *testing.T, name string, scale float64) *sparse.SymMatrix {
	t.Helper()
	p, err := gen.Generate(name, scale)
	if err != nil {
		t.Fatal(err)
	}
	return p.A
}

func TestScheduleValidates(t *testing.T) {
	a := testMatrix(t, "QUER", 0.03)
	for _, P := range []int{1, 2, 4, 8} {
		_, sch := buildSchedule(t, a, P, 24)
		if err := sch.Validate(); err != nil {
			t.Fatalf("P=%d: %v", P, err)
		}
	}
}

func TestScheduleCoversAllCells(t *testing.T) {
	a := testMatrix(t, "OILPAN", 0.02)
	sym, sch := buildSchedule(t, a, 8, 24)
	for k := 0; k < sym.NumCB(); k++ {
		if sch.Comp1DOf[k] >= 0 {
			continue
		}
		if sch.FactorOf[k] < 0 {
			t.Fatalf("cell %d has neither COMP1D nor FACTOR", k)
		}
		nb := len(sym.CB[k].Blocks)
		for b := 0; b < nb; b++ {
			if sch.BDivOf[k][b] < 0 {
				t.Fatalf("cell %d missing BDIV(%d)", k, b)
			}
		}
		for ti := 0; ti < nb; ti++ {
			for si := ti; si < nb; si++ {
				if sch.BModOf(k, si, ti) < 0 {
					t.Fatalf("cell %d missing BMOD(%d,%d)", k, si, ti)
				}
			}
		}
	}
}

func TestMakespanDecreasesWithProcessors(t *testing.T) {
	a := testMatrix(t, "SHIP001", 0.06)
	_, s1 := buildSchedule(t, a, 1, 24)
	_, s4 := buildSchedule(t, a, 4, 24)
	_, s16 := buildSchedule(t, a, 16, 24)
	if s4.Makespan >= s1.Makespan {
		t.Fatalf("P=4 makespan %g not below P=1 %g", s4.Makespan, s1.Makespan)
	}
	if s16.Makespan >= s4.Makespan {
		t.Fatalf("P=16 makespan %g not below P=4 %g", s16.Makespan, s4.Makespan)
	}
	// Speedup cannot exceed P.
	if s16.SeqTime/s16.Makespan > 16.001 {
		t.Fatalf("superlinear modelled speedup: %g", s16.SeqTime/s16.Makespan)
	}
}

func TestMakespanAtLeastCriticalWork(t *testing.T) {
	a := testMatrix(t, "THREAD", 0.03)
	_, sch := buildSchedule(t, a, 8, 24)
	// Makespan must be at least the largest single task and at least
	// SeqTime/P.
	var maxExec float64
	for i := range sch.Tasks {
		if sch.Tasks[i].execT > maxExec {
			maxExec = sch.Tasks[i].execT
		}
	}
	if sch.Makespan < maxExec {
		t.Fatalf("makespan %g below largest task %g", sch.Makespan, maxExec)
	}
	if sch.Makespan < sch.SeqTime/8 {
		t.Fatalf("makespan %g below SeqTime/P %g", sch.Makespan, sch.SeqTime/8)
	}
}

func TestStartTimesRespectDependencies(t *testing.T) {
	a := testMatrix(t, "QUER", 0.03)
	_, sch := buildSchedule(t, a, 8, 24)
	for i := range sch.Tasks {
		src := &sch.Tasks[i]
		for _, e := range src.Outs {
			dst := &sch.Tasks[e.Dst]
			if dst.End < src.End {
				t.Fatalf("task %d (%v) ends %g before its dependency %d (%v) at %g",
					e.Dst, dst.Type, dst.End, i, src.Type, src.End)
			}
		}
	}
}

func TestSingleProcessorScheduleIsSequential(t *testing.T) {
	a := testMatrix(t, "SHIP001", 0.04)
	_, sch := buildSchedule(t, a, 1, 32)
	if len(sch.ByProc) != 1 || len(sch.ByProc[0]) != len(sch.Tasks) {
		t.Fatal("all tasks must be on processor 0")
	}
	// With P=1 the makespan equals the sum of exec times.
	if diff := sch.Makespan - sch.SeqTime; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("P=1 makespan %g != seq time %g", sch.Makespan, sch.SeqTime)
	}
}

func TestReplayCloseToMakespan(t *testing.T) {
	a := testMatrix(t, "OILPAN", 0.02)
	_, sch := buildSchedule(t, a, 8, 24)
	rp := sch.Replay()
	if rp <= 0 {
		t.Fatal("replay makespan must be positive")
	}
	// Replay aggregates messages, so it should not be wildly larger than the
	// mapper's estimate; allow generous slack for ordering effects.
	if rp > 2*sch.Makespan {
		t.Fatalf("replay %g vs mapper %g: too far apart", rp, sch.Makespan)
	}
}

func TestStatsConsistency(t *testing.T) {
	a := testMatrix(t, "QUER", 0.03)
	sym, sch := buildSchedule(t, a, 8, 24)
	st := sch.ComputeStats()
	if st.NTasks != len(sch.Tasks) {
		t.Fatal("task count mismatch")
	}
	if st.NComp1D+st.NFactor+st.NBDiv+st.NBMod != st.NTasks {
		t.Fatal("task type counts do not sum")
	}
	if st.LoadImbalance < 1.0 {
		t.Fatalf("load imbalance %g < 1", st.LoadImbalance)
	}
	n1d := 0
	for k := 0; k < sym.NumCB(); k++ {
		if sch.Comp1DOf[k] >= 0 {
			n1d++
		}
	}
	if st.NComp1D != n1d {
		t.Fatal("COMP1D count mismatch")
	}
	if st.N2DCells != sym.NumCB()-n1d {
		t.Fatal("2D cell count mismatch")
	}
}

func TestTaskTypeString(t *testing.T) {
	if Comp1D.String() != "COMP1D" || Factor.String() != "FACTOR" ||
		BDiv.String() != "BDIV" || BMod.String() != "BMOD" {
		t.Fatal("task type names")
	}
}

func TestDeterministicSchedule(t *testing.T) {
	a := testMatrix(t, "SHIP001", 0.04)
	_, s1 := buildSchedule(t, a, 4, 24)
	_, s2 := buildSchedule(t, a, 4, 24)
	if len(s1.Tasks) != len(s2.Tasks) {
		t.Fatal("task counts differ")
	}
	for i := range s1.Tasks {
		if s1.Tasks[i].Proc != s2.Tasks[i].Proc || s1.Tasks[i].Rank != s2.Tasks[i].Rank {
			t.Fatalf("schedule not deterministic at task %d", i)
		}
	}
}

func TestMemoryPerProcCoversFactor(t *testing.T) {
	a := testMatrix(t, "SHIP003", 0.05)
	sym, sch := buildSchedule(t, a, 8, 24)
	mem := sch.MemoryPerProc()
	var total int64
	for _, m := range mem {
		if m < 0 {
			t.Fatal("negative memory")
		}
		total += m
	}
	// Total distributed memory: triangles for diag regions of 2D cells,
	// full cell arrays for 1D cells. It must be at least the dense diagonal
	// triangles and at most the full block storage.
	full := int64(0)
	for k := range sym.CB {
		w := int64(sym.CB[k].Width())
		full += 8 * w * (w + int64(sym.CB[k].RowsBelow()))
	}
	if total > full {
		t.Fatalf("distributed memory %d exceeds full storage %d", total, full)
	}
	if total < full/2 {
		t.Fatalf("distributed memory %d suspiciously below full storage %d", total, full)
	}
	// With P=8 on a real problem, no processor should hold everything.
	for p, m := range mem {
		if m == total {
			t.Fatalf("processor %d holds the entire factor", p)
		}
	}
}

func TestReplayDeterministicAndMatchesSP2(t *testing.T) {
	a := testMatrix(t, "QUER", 0.04)
	_, sch := buildSchedule(t, a, 8, 24)
	r1 := sch.Replay()
	r2 := sch.Replay()
	if r1 != r2 {
		t.Fatalf("replay not deterministic: %g vs %g", r1, r2)
	}
	// Replaying on the same machine it was built with must equal Replay().
	if r3 := sch.ReplayOn(cost.SP2()); r3 != r1 {
		t.Fatalf("ReplayOn(SP2) %g != Replay %g", r3, r1)
	}
}

// InDegrees must agree with the edge lists and describe an executable DAG:
// every positive-indegree task has all its predecessors at strictly lower
// rank, and topologically releasing tasks by counter reaches every task (the
// invariant the shared-memory runtime's dependency gates rely on).
func TestInDegreesMatchEdges(t *testing.T) {
	a := testMatrix(t, "QUER", 0.04)
	for _, P := range []int{1, 3, 8} {
		_, sch := buildSchedule(t, a, P, 24)
		in := sch.InDegrees()
		if len(in) != len(sch.Tasks) {
			t.Fatalf("P=%d: %d indegrees for %d tasks", P, len(in), len(sch.Tasks))
		}
		// Recount independently.
		want := make([]int32, len(sch.Tasks))
		nEdges := 0
		for i := range sch.Tasks {
			for _, e := range sch.Tasks[i].Outs {
				want[e.Dst]++
				nEdges++
			}
		}
		for i := range want {
			if in[i] != want[i] {
				t.Fatalf("P=%d task %d: indegree %d, edges say %d", P, i, in[i], want[i])
			}
		}
		if nEdges == 0 && P > 1 {
			t.Fatalf("P=%d: schedule has no edges", P)
		}
		// Kahn propagation by the counters must consume every task.
		rem := append([]int32(nil), in...)
		queue := []int{}
		for i, r := range rem {
			if r == 0 {
				queue = append(queue, i)
			}
		}
		released := 0
		for len(queue) > 0 {
			id := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			released++
			for _, e := range sch.Tasks[id].Outs {
				if rem[e.Dst]--; rem[e.Dst] == 0 {
					queue = append(queue, e.Dst)
				}
			}
		}
		if released != len(sch.Tasks) {
			t.Fatalf("P=%d: counter release reached %d of %d tasks", P, released, len(sch.Tasks))
		}
	}
}
