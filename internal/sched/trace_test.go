package sched

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	a := testMatrix(t, "SHIP001", 0.04)
	_, sch := buildSchedule(t, a, 4, 24)
	var buf bytes.Buffer
	if err := sch.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(sch.Tasks)+1 {
		t.Fatalf("csv rows %d want %d", len(lines), len(sch.Tasks)+1)
	}
	if !strings.HasPrefix(lines[0], "rank,proc,type") {
		t.Fatalf("header %q", lines[0])
	}
	// Rows are rank-ordered: rank column of row i is i-1.
	if !strings.HasPrefix(lines[1], "0,") || !strings.HasPrefix(lines[2], "1,") {
		t.Fatal("csv not rank ordered")
	}
}

func TestWriteGantt(t *testing.T) {
	a := testMatrix(t, "QUER", 0.03)
	_, sch := buildSchedule(t, a, 4, 24)
	var buf bytes.Buffer
	if err := sch.WriteGantt(&buf, 60); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1+4 {
		t.Fatalf("gantt lines %d want 5:\n%s", len(lines), out)
	}
	for _, l := range lines[1:] {
		if !strings.Contains(l, "|") || !strings.Contains(l, "%") {
			t.Fatalf("malformed gantt row %q", l)
		}
	}
	// At least one processor must be visibly busy (tiny test problems can
	// leave individual processors nearly idle).
	busySomewhere := false
	for _, l := range lines[1:] {
		if !strings.Contains(l, "   0%") {
			busySomewhere = true
		}
	}
	if !busySomewhere {
		t.Fatalf("all processors idle:\n%s", out)
	}
}

func TestCriticalPath(t *testing.T) {
	a := testMatrix(t, "OILPAN", 0.02)
	_, sch := buildSchedule(t, a, 8, 24)
	path := sch.CriticalPath()
	if len(path) == 0 {
		t.Fatal("empty critical path")
	}
	// Ends at the makespan.
	last := &sch.Tasks[path[len(path)-1]]
	if last.End < sch.Makespan*(1-1e-12) {
		t.Fatalf("critical path ends at %g, makespan %g", last.End, sch.Makespan)
	}
	// Monotone in time.
	for i := 1; i < len(path); i++ {
		if sch.Tasks[path[i]].End < sch.Tasks[path[i-1]].End-1e-15 {
			t.Fatal("critical path not monotone")
		}
	}
	// Path length bounded by task count.
	if len(path) > len(sch.Tasks) {
		t.Fatal("path longer than task count")
	}
}

func TestWriteSummary(t *testing.T) {
	a := testMatrix(t, "SHIP001", 0.05)
	_, sch := buildSchedule(t, a, 4, 24)
	var buf bytes.Buffer
	if err := sch.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"schedule:", "model", "balance", "comm", "memory", "widths", "critpath"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}
