package sched

import (
	"bufio"
	"fmt"
	"io"
)

// WriteSummary prints a human-readable account of the schedule: task mix,
// load and memory balance, communication volume, and what the modelled
// critical path consists of — the quantities §2 of the paper argues the
// static regulation controls.
func (s *Schedule) WriteSummary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	st := s.ComputeStats()
	fmt.Fprintf(bw, "schedule: %d tasks on %d processors (%d COMP1D, %d FACTOR, %d BDIV, %d BMOD)\n",
		st.NTasks, s.P, st.NComp1D, st.NFactor, st.NBDiv, st.NBMod)
	fmt.Fprintf(bw, "model   : makespan %.4fs, sequential %.4fs, speedup %.2f, efficiency %.0f%%\n",
		st.Makespan, st.SeqTime, st.SeqTime/st.Makespan, 100*st.SeqTime/st.Makespan/float64(s.P))
	fmt.Fprintf(bw, "balance : busy-time imbalance %.2f (max/mean)\n", st.LoadImbalance)
	fmt.Fprintf(bw, "comm    : %.2f MB modelled cross-processor volume\n", float64(st.CommVolume)/1e6)

	mem := s.MemoryPerProc()
	var memMax, memTot int64
	for _, m := range mem {
		memTot += m
		if m > memMax {
			memMax = m
		}
	}
	if memTot > 0 {
		fmt.Fprintf(bw, "memory  : %.2f MB factor total, %.2f MB max/proc (imbalance %.2f)\n",
			float64(memTot)/1e6, float64(memMax)/1e6,
			float64(memMax)*float64(s.P)/float64(memTot))
	}

	// Column-block width histogram.
	var hist [6]int
	bounds := [5]int{8, 16, 32, 64, 128}
	for k := range s.sym.CB {
		w := s.sym.CB[k].Width()
		i := 0
		for i < len(bounds) && w > bounds[i] {
			i++
		}
		hist[i]++
	}
	fmt.Fprintf(bw, "widths  : ≤8:%d ≤16:%d ≤32:%d ≤64:%d ≤128:%d >128:%d (of %d column blocks)\n",
		hist[0], hist[1], hist[2], hist[3], hist[4], hist[5], s.sym.NumCB())

	// Critical path composition.
	path := s.CriticalPath()
	var comp [4]float64
	var commGap float64
	prevEnd := 0.0
	for _, id := range path {
		t := &s.Tasks[id]
		comp[t.Type] += t.End - t.Start
		if t.Start > prevEnd {
			commGap += t.Start - prevEnd
		}
		prevEnd = t.End
	}
	fmt.Fprintf(bw, "critpath: %d tasks; time in COMP1D %.0f%%, FACTOR %.0f%%, BDIV %.0f%%, BMOD %.0f%%, waits %.0f%%\n",
		len(path),
		100*comp[Comp1D]/st.Makespan, 100*comp[Factor]/st.Makespan,
		100*comp[BDiv]/st.Makespan, 100*comp[BMod]/st.Makespan,
		100*commGap/st.Makespan)
	return bw.Flush()
}
