package sched

import (
	"testing"

	"github.com/pastix-go/pastix/internal/gen"
	"github.com/pastix-go/pastix/internal/symbolic"
)

func buildSolveDAG(t *testing.T, grid, P int) (*symbolic.Symbol, *SolveDAG) {
	t.Helper()
	sym, _ := buildSchedule(t, gen.Laplacian2D(grid, grid), P, 16)
	return sym, BuildSolveDAG(sym)
}

// TestSolveDAGLevelsTopological checks the level invariant directly against
// the block structure: every forward edge k→Facing must go to a strictly
// deeper level, and each cell's level must be exactly one more than its
// deepest predecessor (longest path, not just any topological labelling).
func TestSolveDAGLevelsTopological(t *testing.T) {
	sym, d := buildSolveDAG(t, 18, 4)
	ncb := sym.NumCB()
	if len(d.Level) != ncb {
		t.Fatalf("Level covers %d cells, want %d", len(d.Level), ncb)
	}
	deepestIn := make([]int32, ncb)
	for i := range deepestIn {
		deepestIn[i] = -1
	}
	edges := 0
	for k := 0; k < ncb; k++ {
		for _, blk := range sym.CB[k].Blocks {
			edges++
			if d.Level[blk.Facing] <= d.Level[k] {
				t.Fatalf("edge %d(level %d) -> %d(level %d) not increasing",
					k, d.Level[k], blk.Facing, d.Level[blk.Facing])
			}
			if l := d.Level[k] + 1; l > deepestIn[blk.Facing] {
				deepestIn[blk.Facing] = l
			}
		}
	}
	if edges != d.Edges {
		t.Fatalf("Edges = %d, structure has %d", d.Edges, edges)
	}
	for k := 0; k < ncb; k++ {
		want := deepestIn[k]
		if want < 0 {
			want = 0
		}
		if d.Level[k] != want {
			t.Fatalf("cell %d: level %d, longest path gives %d", k, d.Level[k], want)
		}
	}
}

// TestSolveDAGLevelsPartition checks Levels is a partition of the cells in
// ascending order per level, consistent with Level, and that MaxWidth and
// Depth match it.
func TestSolveDAGLevelsPartition(t *testing.T) {
	sym, d := buildSolveDAG(t, 16, 4)
	seen := make([]bool, sym.NumCB())
	maxW := 0
	for l, cells := range d.Levels {
		if len(cells) == 0 {
			t.Fatalf("level %d empty", l)
		}
		if len(cells) > maxW {
			maxW = len(cells)
		}
		for i, c := range cells {
			if seen[c] {
				t.Fatalf("cell %d in two levels", c)
			}
			seen[c] = true
			if d.Level[c] != int32(l) {
				t.Fatalf("cell %d listed at level %d but Level says %d", c, l, d.Level[c])
			}
			if i > 0 && cells[i-1] >= c {
				t.Fatalf("level %d not ascending at %d", l, i)
			}
		}
	}
	for c, ok := range seen {
		if !ok {
			t.Fatalf("cell %d missing from Levels", c)
		}
	}
	if maxW != d.MaxWidth {
		t.Fatalf("MaxWidth = %d, want %d", d.MaxWidth, maxW)
	}
	if d.Depth() != len(d.Levels) {
		t.Fatalf("Depth = %d, want %d", d.Depth(), len(d.Levels))
	}
}

// TestHybridStepsCoverAndOrder checks a hybrid schedule is a permutation of
// the cells in level order (so executing steps in sequence is topological),
// that parallel steps are exactly the wide levels, and that chains never
// contain a level at or above the cutoff.
func TestHybridStepsCoverAndOrder(t *testing.T) {
	sym, d := buildSolveDAG(t, 18, 4)
	for _, cutoff := range []int{0, 1, 4, 1 << 30} {
		steps := d.HybridSteps(4, cutoff)
		eff := cutoff
		if eff <= 0 {
			eff = DefaultSolveCutoff(4)
		}
		total := 0
		lastLevel := int32(-1)
		for _, st := range steps {
			if len(st.Cells) == 0 {
				t.Fatalf("cutoff %d: empty step", cutoff)
			}
			total += len(st.Cells)
			for _, c := range st.Cells {
				if d.Level[c] < lastLevel {
					t.Fatalf("cutoff %d: cell %d at level %d after level %d", cutoff, c, d.Level[c], lastLevel)
				}
				lastLevel = d.Level[c]
			}
			if st.Parallel {
				if st.Levels != 1 {
					t.Fatalf("parallel step spans %d levels", st.Levels)
				}
				if len(st.Cells) < eff {
					t.Fatalf("cutoff %d: parallel step of width %d below cutoff %d", cutoff, len(st.Cells), eff)
				}
			} else if st.Levels < 1 {
				t.Fatalf("chain step with Levels %d", st.Levels)
			}
		}
		if total != sym.NumCB() {
			t.Fatalf("cutoff %d: steps cover %d cells, want %d", cutoff, total, sym.NumCB())
		}
	}
}

// TestHybridStepsSingleWorker pins the degenerate schedules: one worker (or
// an empty DAG) must produce at most one step, a chain over everything — a
// plain sequential sweep with no barriers.
func TestHybridStepsSingleWorker(t *testing.T) {
	sym, d := buildSolveDAG(t, 14, 2)
	steps := d.HybridSteps(1, 0)
	if len(steps) != 1 || steps[0].Parallel {
		t.Fatalf("1 worker: got %d steps (parallel=%v), want one chain", len(steps), len(steps) > 0 && steps[0].Parallel)
	}
	if len(steps[0].Cells) != sym.NumCB() {
		t.Fatalf("1 worker: chain has %d cells, want %d", len(steps[0].Cells), sym.NumCB())
	}
	if steps[0].Levels != d.Depth() {
		t.Fatalf("1 worker: chain spans %d levels, want %d", steps[0].Levels, d.Depth())
	}
	empty := &SolveDAG{}
	if got := empty.HybridSteps(4, 0); len(got) != 0 {
		t.Fatalf("empty DAG: %d steps", len(got))
	}
}
