package sched

import "fmt"

// DAG is the runtime-agnostic view of a task graph: successor lists and a
// scheduling priority per task, nothing else. The static runtimes consume the
// full Schedule (task→processor mapping, per-processor K_p vectors, modelled
// times); a data-driven runtime needs only this — which task unblocks which,
// and which ready task to prefer. Build one from a Schedule with
// Schedule.DAG, or from raw edge lists with NewDAG (the fuzzing and unit-test
// entry point).
type DAG struct {
	// Outs[i] lists the tasks that depend on task i. A task may appear more
	// than once (the schedule keeps parallel edges of different kinds); the
	// in-degree counts every occurrence, so a dependency-driven runtime must
	// decrement once per edge, exactly mirroring InDegrees.
	Outs [][]int32

	// Priority orders ready tasks: on a tie for the processor's attention the
	// HIGHER priority runs first. Schedule.DAG derives it from the static
	// cost model (elimination-tree depth first — the same key the greedy
	// mapper uses — then modelled execution time); NewDAG leaves it zero
	// unless the caller fills it.
	Priority []int64
}

// NTasks returns the number of tasks in the graph.
func (d *DAG) NTasks() int { return len(d.Outs) }

// InDegrees returns the per-task incoming-edge counts — the counters a
// dependency-driven runtime initialises its activation gates with.
func (d *DAG) InDegrees() []int32 {
	in := make([]int32, len(d.Outs))
	for _, outs := range d.Outs {
		for _, dst := range outs {
			in[dst]++
		}
	}
	return in
}

// Validate checks that the graph is executable by a dependency-driven
// runtime: every edge endpoint in range, no self-loops, and no cycles (a
// cycle would leave its tasks' in-degrees forever positive — the runtime
// would deadlock). The acyclicity check is Kahn's algorithm, i.e. exactly
// the countdown the runtime performs, run to completion.
func (d *DAG) Validate() error {
	n := len(d.Outs)
	if d.Priority != nil && len(d.Priority) != n {
		return fmt.Errorf("sched: dag has %d tasks but %d priorities", n, len(d.Priority))
	}
	for src, outs := range d.Outs {
		for _, dst := range outs {
			if int(dst) < 0 || int(dst) >= n {
				return fmt.Errorf("sched: dag edge %d→%d outside [0,%d)", src, dst, n)
			}
			if int(dst) == src {
				return fmt.Errorf("sched: dag task %d depends on itself", src)
			}
		}
	}
	in := d.InDegrees()
	ready := make([]int32, 0, n)
	for i, deg := range in {
		if deg == 0 {
			ready = append(ready, int32(i))
		}
	}
	seen := 0
	for len(ready) > 0 {
		id := ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		seen++
		for _, dst := range d.Outs[id] {
			in[dst]--
			if in[dst] == 0 {
				ready = append(ready, dst)
			}
		}
	}
	if seen != n {
		return fmt.Errorf("sched: dag has a dependency cycle (%d of %d tasks reachable)", seen, n)
	}
	return nil
}

// NewDAG builds and validates a DAG from raw (src, dst) edges over n tasks.
func NewDAG(n int, edges [][2]int) (*DAG, error) {
	if n < 0 {
		return nil, fmt.Errorf("sched: dag with %d tasks", n)
	}
	d := &DAG{Outs: make([][]int32, n)}
	for _, e := range edges {
		if e[0] < 0 || e[0] >= n {
			return nil, fmt.Errorf("sched: dag edge source %d outside [0,%d)", e[0], n)
		}
		d.Outs[e[0]] = append(d.Outs[e[0]], int32(e[1]))
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// DAG extracts the runtime-agnostic task graph from the schedule: the same
// edges InDegrees counts, plus a priority per task encoding the cost model's
// preference — elimination-tree depth in the high bits (deeper supernodes
// first, the greedy mapper's ready-heap key) and the modelled execution time
// in microseconds in the low bits (longer tasks first on equal depth, so the
// work most likely to gate successors starts earliest).
func (s *Schedule) DAG() *DAG {
	d := &DAG{
		Outs:     make([][]int32, len(s.Tasks)),
		Priority: make([]int64, len(s.Tasks)),
	}
	for i := range s.Tasks {
		t := &s.Tasks[i]
		if len(t.Outs) > 0 {
			outs := make([]int32, len(t.Outs))
			for j, e := range t.Outs {
				outs[j] = int32(e.Dst)
			}
			d.Outs[i] = outs
		}
		us := int64(t.execT * 1e6)
		if us < 0 {
			us = 0
		} else if us > 1<<30 {
			us = 1 << 30
		}
		d.Priority[i] = int64(t.depth)<<32 | us
	}
	return d
}
