package sched

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// WriteCSV dumps the mapped schedule as CSV (one row per task) for external
// analysis: rank, processor, type, cell, block indices, modelled start/end.
func (s *Schedule) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "rank,proc,type,cell,s,t,start,end")
	order := make([]int, len(s.Tasks))
	for i := range s.Tasks {
		order[s.Tasks[i].Rank] = i
	}
	for _, id := range order {
		t := &s.Tasks[id]
		fmt.Fprintf(bw, "%d,%d,%s,%d,%d,%d,%.9f,%.9f\n",
			t.Rank, t.Proc, t.Type, t.Cell, t.S, t.T, t.Start, t.End)
	}
	return bw.Flush()
}

// WriteGantt renders a textual Gantt chart of the modelled schedule: one
// line per processor, time binned into width columns. Busy bins show the
// dominant task type (1=COMP1D, F=FACTOR, D=BDIV, M=BMOD), idle bins '.'.
func (s *Schedule) WriteGantt(w io.Writer, width int) error {
	if width <= 0 {
		width = 100
	}
	bw := bufio.NewWriter(w)
	if s.Makespan <= 0 {
		fmt.Fprintln(bw, "(empty schedule)")
		return bw.Flush()
	}
	binDur := s.Makespan / float64(width)
	glyph := map[TaskType]byte{Comp1D: '1', Factor: 'F', BDiv: 'D', BMod: 'M'}
	fmt.Fprintf(bw, "modelled makespan %.6fs, %d tasks, %d processors; one column = %.2es\n",
		s.Makespan, len(s.Tasks), s.P, binDur)
	for p := 0; p < s.P; p++ {
		// For each bin, the task type with the largest time share.
		share := make([]map[TaskType]float64, width)
		for i := range share {
			share[i] = make(map[TaskType]float64)
		}
		for _, id := range s.ByProc[p] {
			t := &s.Tasks[id]
			b0 := int(t.Start / binDur)
			b1 := int(t.End / binDur)
			if b1 >= width {
				b1 = width - 1
			}
			for b := b0; b <= b1; b++ {
				lo := float64(b) * binDur
				hi := lo + binDur
				if t.Start > lo {
					lo = t.Start
				}
				if t.End < hi {
					hi = t.End
				}
				if hi > lo {
					share[b][t.Type] += hi - lo
				}
			}
		}
		line := make([]byte, width)
		for b := 0; b < width; b++ {
			best, bestV := byte('.'), 0.0
			// Deterministic order over task types.
			for _, tt := range []TaskType{Comp1D, Factor, BDiv, BMod} {
				if v := share[b][tt]; v > bestV {
					best, bestV = glyph[tt], v
				}
			}
			line[b] = best
		}
		busy := 0.0
		for _, id := range s.ByProc[p] {
			busy += s.Tasks[id].End - s.Tasks[id].Start
		}
		fmt.Fprintf(bw, "P%-3d |%s| %4.0f%%\n", p, line, 100*busy/s.Makespan)
	}
	return bw.Flush()
}

// CriticalPath returns the modelled critical path of the schedule: the chain
// of tasks ending at the makespan, following for each task its
// latest-finishing predecessor. Useful to understand what limits speedup.
func (s *Schedule) CriticalPath() []int {
	if len(s.Tasks) == 0 {
		return nil
	}
	// Reverse edges.
	preds := make([][]int, len(s.Tasks))
	for i := range s.Tasks {
		for _, e := range s.Tasks[i].Outs {
			preds[e.Dst] = append(preds[e.Dst], i)
		}
	}
	// Start from the task with the largest End.
	cur := 0
	for i := range s.Tasks {
		if s.Tasks[i].End > s.Tasks[cur].End {
			cur = i
		}
	}
	path := []int{cur}
	for {
		t := &s.Tasks[cur]
		// Prefer the predecessor whose End is latest; if the task started
		// after all predecessors finished (processor busy elsewhere), follow
		// the previous task on the same processor instead.
		best := -1
		for _, p := range preds[cur] {
			if best == -1 || s.Tasks[p].End > s.Tasks[best].End {
				best = p
			}
		}
		prevOnProc := -1
		list := s.ByProc[t.Proc]
		idx := sort.Search(len(list), func(i int) bool { return s.Tasks[list[i]].Rank >= t.Rank })
		if idx > 0 {
			prevOnProc = list[idx-1]
		}
		next := best
		if prevOnProc >= 0 && (best == -1 || s.Tasks[prevOnProc].End > s.Tasks[best].End) && s.Tasks[prevOnProc].End >= t.Start-1e-15 {
			next = prevOnProc
		}
		if next == -1 {
			break
		}
		path = append(path, next)
		cur = next
	}
	// Reverse into execution order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}
