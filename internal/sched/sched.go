// Package sched implements the paper's static scheduling phase: from the
// block symbolic structure and the candidate-processor mapping it builds the
// task graph (COMP1D / FACTOR / BDIV / BMOD), then maps every task onto one
// of its candidate processors by a greedy simulation of the parallel
// factorization driven by the BLAS and communication time models. The
// result is, for each processor p, a vector K_p of local tasks fully ordered
// by priority — the parallel solver is entirely driven by this order.
package sched

import (
	"container/heap"
	"fmt"
	"sort"

	"github.com/pastix-go/pastix/internal/cost"
	"github.com/pastix-go/pastix/internal/part"
	"github.com/pastix-go/pastix/internal/symbolic"
)

// TaskType enumerates the paper's four block-computation task types.
type TaskType int8

const (
	// Comp1D updates and computes all contributions of a 1D-distributed
	// column block.
	Comp1D TaskType = iota
	// Factor factorizes the dense diagonal block of a 2D column block.
	Factor
	// BDiv updates (solves) one off-diagonal block against the diagonal.
	BDiv
	// BMod computes the contribution of one block pair (S,T) of a 2D column
	// block; it runs on the processor storing block S.
	BMod
)

func (t TaskType) String() string {
	switch t {
	case Comp1D:
		return "COMP1D"
	case Factor:
		return "FACTOR"
	case BDiv:
		return "BDIV"
	case BMod:
		return "BMOD"
	}
	return fmt.Sprintf("TaskType(%d)", int8(t))
}

// EdgeKind classifies dependency edges, which doubles as the runtime message
// taxonomy.
type EdgeKind int8

const (
	// EdgeAUB is an aggregated-update-block contribution: the source task's
	// contribution is added into an AUB that is sent (or applied locally) to
	// the destination task's region. AUB edges from tasks on the same
	// processor to the same destination aggregate into one message.
	EdgeAUB EdgeKind = iota
	// EdgeF carries the solved panel W_T of BDIV(T,k) to the BMOD tasks that
	// multiply against it.
	EdgeF
	// EdgeDiag carries the factored diagonal block (L_kk, D_k) from FACTOR
	// to the BDIV tasks of the same column block.
	EdgeDiag
	// EdgePin orders BMOD(S,T,k) after BDIV(S,k) on the same processor (the
	// BMOD task is pinned to the processor storing block S); no data moves.
	EdgePin
)

// Edge is a dependency from the task owning it to Dst.
type Edge struct {
	Dst   int
	Kind  EdgeKind
	Elems int // float64 elements transferred / aggregated
}

// Task is one node of the task graph.
type Task struct {
	ID   int
	Type TaskType
	Cell int
	S, T int // block indices within Cell (BDiv: S; BMod: S,T)

	Proc  int     // assigned processor (after Build)
	Rank  int     // global mapping order (priority)
	Start float64 // modelled start time
	End   float64 // modelled completion time

	Outs []Edge

	deps           int32
	candLo, candHi int
	pinned         bool // candidate set becomes {proc of BDIV(S,Cell)} when ready
	depth          int32
	execT          float64
	arrival        float64 // filled during mapping
}

// Schedule is the fully ordered static schedule.
type Schedule struct {
	P        int
	Tasks    []Task
	ByProc   [][]int // K_p: task ids in execution order per processor
	Makespan float64 // modelled parallel time
	SeqTime  float64 // modelled one-processor time (sum of exec times)

	// Lookup tables from symbol coordinates to task ids (-1 when absent).
	Comp1DOf []int
	FactorOf []int
	BDivOf   [][]int // [cell][blockIdx]
	bmodOf   map[[3]int]int

	sym  *symbolic.Symbol
	mach *cost.Machine
}

// Sym returns the symbol this schedule was built for.
func (s *Schedule) Sym() *symbolic.Symbol { return s.sym }

// BModOf returns the BMOD task id for (cell, s, t), or -1.
func (s *Schedule) BModOf(cell, sIdx, tIdx int) int {
	if id, ok := s.bmodOf[[3]int{cell, sIdx, tIdx}]; ok {
		return id
	}
	return -1
}

// InDegrees returns, for every task, the number of incoming dependency
// edges (of any kind). These are the counters a dependency-driven runtime —
// e.g. the shared-memory factorization — initialises its per-task gates
// with: a task may start once its counter reaches zero, each predecessor
// decrementing it on completion. The counts are recomputed from the edge
// lists, so they are valid after mapping (which consumes its own internal
// counters).
func (s *Schedule) InDegrees() []int32 {
	in := make([]int32, len(s.Tasks))
	for i := range s.Tasks {
		for _, e := range s.Tasks[i].Outs {
			in[e.Dst]++
		}
	}
	return in
}

// Options tunes the scheduler.
type Options struct {
	// FirstCandidate degrades the mapper for ablation studies: instead of
	// simulating completion times and picking the soonest-finishing
	// candidate, every task goes to the first processor of its candidate
	// set (a Pothen-Sun-style static assignment without the greedy
	// simulation).
	FirstCandidate bool
}

// Build constructs the task graph and computes the static mapping and
// ordering. mapping must come from part.Map over the same symbol.
func Build(sym *symbolic.Symbol, mapping *part.Mapping, mach *cost.Machine, opts Options) (*Schedule, error) {
	ncb := sym.NumCB()
	s := &Schedule{
		P:        mapping.P,
		Comp1DOf: make([]int, ncb),
		FactorOf: make([]int, ncb),
		BDivOf:   make([][]int, ncb),
		bmodOf:   make(map[[3]int]int),
		sym:      sym,
		mach:     mach,
	}

	// --- Create tasks. ---
	newTask := func(tt TaskType, cell, sIdx, tIdx int) int {
		id := len(s.Tasks)
		s.Tasks = append(s.Tasks, Task{
			ID: id, Type: tt, Cell: cell, S: sIdx, T: tIdx, Proc: -1,
			candLo: mapping.CandLo[cell], candHi: mapping.CandHi[cell],
		})
		return id
	}
	for k := 0; k < ncb; k++ {
		nb := len(sym.CB[k].Blocks)
		s.BDivOf[k] = make([]int, nb)
		if !mapping.Is2D[k] {
			s.Comp1DOf[k] = newTask(Comp1D, k, -1, -1)
			s.FactorOf[k] = -1
			for b := range s.BDivOf[k] {
				s.BDivOf[k][b] = -1
			}
			continue
		}
		s.Comp1DOf[k] = -1
		s.FactorOf[k] = newTask(Factor, k, -1, -1)
		for b := 0; b < nb; b++ {
			s.BDivOf[k][b] = newTask(BDiv, k, b, -1)
		}
		for t := 0; t < nb; t++ {
			for sb := t; sb < nb; sb++ {
				id := newTask(BMod, k, sb, t)
				s.Tasks[id].pinned = true
				s.bmodOf[[3]int{k, sb, t}] = id
			}
		}
	}

	// --- Depth (distance from root) for the priority rule: the task coming
	// from the lowest (deepest) node of the elimination tree goes first. ---
	depth := make([]int32, ncb)
	for k := ncb - 1; k >= 0; k-- {
		if p := sym.Parent[k]; p != -1 {
			depth[k] = depth[p] + 1
		}
	}
	for i := range s.Tasks {
		s.Tasks[i].depth = depth[s.Tasks[i].Cell]
	}

	// --- Edges. ---
	addEdge := func(src, dst int, kind EdgeKind, elems int) {
		s.Tasks[src].Outs = append(s.Tasks[src].Outs, Edge{Dst: dst, Kind: kind, Elems: elems})
		s.Tasks[dst].deps++
	}
	// contributionTarget returns the task receiving the (sBlk,tBlk)
	// contribution of cell k.
	contributionTarget := func(k, sIdx, tIdx int) (int, error) {
		blocks := sym.CB[k].Blocks
		f := blocks[tIdx].Facing
		if s.Comp1DOf[f] >= 0 {
			return s.Comp1DOf[f], nil
		}
		sb := blocks[sIdx]
		if sb.Facing == f {
			return s.FactorOf[f], nil // rows land in f's diagonal block
		}
		// Find the block of f containing rows [sb.FirstRow, sb.LastRow).
		fb := sym.CB[f].Blocks
		idx := sort.Search(len(fb), func(i int) bool { return fb[i].LastRow > sb.FirstRow })
		if idx >= len(fb) || fb[idx].FirstRow > sb.FirstRow || fb[idx].LastRow < sb.LastRow {
			return -1, fmt.Errorf("sched: contribution rows [%d,%d) of cb %d not covered by one block of cb %d",
				sb.FirstRow, sb.LastRow, k, f)
		}
		return s.BDivOf[f][idx], nil
	}
	contribElems := func(k, sIdx, tIdx int) int {
		blocks := sym.CB[k].Blocks
		rs := blocks[sIdx].Rows()
		rt := blocks[tIdx].Rows()
		if sIdx == tIdx {
			return rs * (rs + 1) / 2
		}
		return rs * rt
	}

	type aggKey struct{ src, dst int }
	agg := make(map[aggKey]int) // compressed COMP1D→dst AUB elems
	for k := 0; k < ncb; k++ {
		blocks := sym.CB[k].Blocks
		nb := len(blocks)
		w := sym.CB[k].Width()
		if s.Comp1DOf[k] >= 0 {
			src := s.Comp1DOf[k]
			for t := 0; t < nb; t++ {
				for sb := t; sb < nb; sb++ {
					dst, err := contributionTarget(k, sb, t)
					if err != nil {
						return nil, err
					}
					agg[aggKey{src, dst}] += contribElems(k, sb, t)
				}
			}
			continue
		}
		// 2D cell: FACTOR → BDIVs; BDIV(T) → BMOD(S,T); BDIV(S) pin → BMOD;
		// BMOD → its contribution target.
		diagElems := w * (w + 1) / 2
		for b := 0; b < nb; b++ {
			addEdge(s.FactorOf[k], s.BDivOf[k][b], EdgeDiag, diagElems)
		}
		for t := 0; t < nb; t++ {
			for sb := t; sb < nb; sb++ {
				bm := s.bmodOf[[3]int{k, sb, t}]
				addEdge(s.BDivOf[k][sb], bm, EdgePin, 0)
				if sb != t {
					addEdge(s.BDivOf[k][t], bm, EdgeF, blocks[t].Rows()*w)
				}
				dst, err := contributionTarget(k, sb, t)
				if err != nil {
					return nil, err
				}
				addEdge(bm, dst, EdgeAUB, contribElems(k, sb, t))
			}
		}
	}
	for key, elems := range agg {
		addEdge(key.src, key.dst, EdgeAUB, elems)
	}

	// --- Execution-time model per task (kernel + aggregation work). ---
	aggIn := make([]int, len(s.Tasks))
	for i := range s.Tasks {
		for _, e := range s.Tasks[i].Outs {
			if e.Kind == EdgeAUB {
				aggIn[e.Dst] += e.Elems
			}
		}
	}
	for i := range s.Tasks {
		t := &s.Tasks[i]
		cb := &sym.CB[t.Cell]
		w := cb.Width()
		var kt float64
		switch t.Type {
		case Comp1D:
			kt = mach.FactorTime(w) + mach.TrsmTime(cb.RowsBelow(), w)
			blocks := cb.Blocks
			cum := cb.RowsBelow()
			for ti := 0; ti < len(blocks); ti++ {
				kt += mach.GemmTime(cum, blocks[ti].Rows(), w)
				cum -= blocks[ti].Rows()
			}
		case Factor:
			kt = mach.FactorTime(w)
		case BDiv:
			kt = mach.TrsmTime(cb.Blocks[t.S].Rows(), w)
		case BMod:
			kt = mach.GemmTime(cb.Blocks[t.S].Rows(), cb.Blocks[t.T].Rows(), w)
		}
		outAgg := 0
		for _, e := range t.Outs {
			if e.Kind == EdgeAUB {
				outAgg += e.Elems
			}
		}
		if outAgg > 0 {
			kt += mach.AddTime(outAgg)
		}
		if aggIn[i] > 0 {
			kt += mach.AddTime(aggIn[i])
		}
		t.execT = kt
		s.SeqTime += kt
	}

	if err := s.mapTasks(opts); err != nil {
		return nil, err
	}
	return s, nil
}

// readyHeap orders ready tasks: deepest elimination-tree node first, then
// cell, then id (deterministic).
type readyItem struct {
	depth int32
	cell  int
	id    int
}
type readyHeap []readyItem

func (h readyHeap) Len() int { return len(h) }
func (h readyHeap) Less(i, j int) bool {
	if h[i].depth != h[j].depth {
		return h[i].depth > h[j].depth
	}
	if h[i].cell != h[j].cell {
		return h[i].cell < h[j].cell
	}
	return h[i].id < h[j].id
}
func (h readyHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *readyHeap) Push(x any)   { *h = append(*h, x.(readyItem)) }
func (h *readyHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// mapTasks runs the greedy mapping simulation.
func (s *Schedule) mapTasks(opts Options) error {
	P := s.P
	timer := make([]float64, P)
	heaps := make([]readyHeap, P)
	s.ByProc = make([][]int, P)

	// Incoming AUB edges per destination, for arrival computation.
	incoming := make([][]Edge, len(s.Tasks)) // reversed edges (src stored in Dst field)
	for i := range s.Tasks {
		for _, e := range s.Tasks[i].Outs {
			incoming[e.Dst] = append(incoming[e.Dst], Edge{Dst: i, Kind: e.Kind, Elems: e.Elems})
		}
	}

	pushReady := func(id int) {
		t := &s.Tasks[id]
		lo, hi := t.candLo, t.candHi
		if t.pinned {
			// BMOD runs where block S is stored: the processor of BDIV(S).
			bd := s.BDivOf[t.Cell][t.S]
			p := s.Tasks[bd].Proc
			if p < 0 {
				return // not possible: pin edge guarantees BDIV mapped first
			}
			lo, hi = p, p+1
		}
		for p := lo; p < hi; p++ {
			heap.Push(&heaps[p], readyItem{t.depth, t.Cell, id})
		}
	}
	for i := range s.Tasks {
		if s.Tasks[i].deps == 0 {
			pushReady(i)
		}
	}

	mapped := 0
	rank := 0
	for mapped < len(s.Tasks) {
		// Pick, among the heads of all ready heaps, the task from the lowest
		// (deepest) elimination-tree node.
		best := -1
		var bestItem readyItem
		for p := 0; p < P; p++ {
			for len(heaps[p]) > 0 && s.Tasks[heaps[p][0].id].Proc >= 0 {
				heap.Pop(&heaps[p]) // stale: already mapped via another heap
			}
			if len(heaps[p]) == 0 {
				continue
			}
			it := heaps[p][0]
			if best == -1 || (readyHeap{it, bestItem}).Less(0, 1) {
				best, bestItem = it.id, it
			}
		}
		if best == -1 {
			return fmt.Errorf("sched: deadlock with %d of %d tasks mapped", mapped, len(s.Tasks))
		}
		t := &s.Tasks[best]

		// Completion-time estimate per candidate processor; take the soonest.
		lo, hi := t.candLo, t.candHi
		if t.pinned {
			p := s.Tasks[s.BDivOf[t.Cell][t.S]].Proc
			lo, hi = p, p+1
		}
		if opts.FirstCandidate {
			hi = lo + 1
		}
		bestProc, bestEnd, bestStart := -1, 0.0, 0.0
		for q := lo; q < hi; q++ {
			arrival := 0.0
			for _, in := range incoming[best] {
				src := &s.Tasks[in.Dst]
				at := src.End
				if src.Proc != q && in.Kind != EdgePin {
					at += s.mach.SendTimeBetween(src.Proc, q, in.Elems*8)
				}
				if at > arrival {
					arrival = at
				}
			}
			start := timer[q]
			if arrival > start {
				start = arrival
			}
			end := start + t.execT
			if bestProc == -1 || end < bestEnd {
				bestProc, bestEnd, bestStart = q, end, start
			}
		}
		t.Proc = bestProc
		t.Start = bestStart
		t.End = bestEnd
		t.Rank = rank
		rank++
		timer[bestProc] = bestEnd
		s.ByProc[bestProc] = append(s.ByProc[bestProc], best)
		mapped++

		for _, e := range t.Outs {
			d := &s.Tasks[e.Dst]
			d.deps--
			if d.deps == 0 {
				pushReady(e.Dst)
			}
		}
	}
	for _, tm := range timer {
		if tm > s.Makespan {
			s.Makespan = tm
		}
	}
	return nil
}

// Validate checks schedule invariants: every task mapped exactly once onto a
// candidate processor, per-processor lists ordered by rank, and every
// dependency edge satisfied by the rank order.
func (s *Schedule) Validate() error {
	seen := make([]bool, len(s.Tasks))
	for p, list := range s.ByProc {
		prev := -1
		for _, id := range list {
			t := &s.Tasks[id]
			if seen[id] {
				return fmt.Errorf("sched: task %d scheduled twice", id)
			}
			seen[id] = true
			if t.Proc != p {
				return fmt.Errorf("sched: task %d on list of proc %d but assigned %d", id, p, t.Proc)
			}
			if t.Rank <= prev {
				return fmt.Errorf("sched: proc %d list not rank-ordered at task %d", p, id)
			}
			prev = t.Rank
			if !t.pinned && (t.Proc < t.candLo || t.Proc >= t.candHi) {
				return fmt.Errorf("sched: task %d mapped to %d outside candidates [%d,%d)",
					id, t.Proc, t.candLo, t.candHi)
			}
		}
	}
	for id := range s.Tasks {
		if !seen[id] {
			return fmt.Errorf("sched: task %d never scheduled", id)
		}
	}
	for i := range s.Tasks {
		for _, e := range s.Tasks[i].Outs {
			if s.Tasks[e.Dst].Rank <= s.Tasks[i].Rank {
				return fmt.Errorf("sched: edge %d→%d violates rank order", i, e.Dst)
			}
		}
	}
	// BMOD pinning.
	for i := range s.Tasks {
		t := &s.Tasks[i]
		if t.Type == BMod {
			if bd := s.BDivOf[t.Cell][t.S]; s.Tasks[bd].Proc != t.Proc {
				return fmt.Errorf("sched: BMOD %d not on the processor of its BDIV(S)", i)
			}
		}
	}
	return nil
}

// Replay re-simulates the mapped schedule with fan-in aggregation modelled
// exactly (one message per source processor per destination task) and
// returns the makespan. This is the modelled parallel factorization time
// used for Table 2; it differs slightly from the greedy mapper's internal
// estimate because sends aggregate.
func (s *Schedule) Replay() float64 { return s.ReplayOn(s.mach) }

// ReplayOn replays the mapped schedule under a different machine profile —
// e.g. a schedule built with a flat network model replayed on an SMP
// topology, to quantify what topology-aware scheduling buys.
func (s *Schedule) ReplayOn(mach *cost.Machine) float64 {
	n := len(s.Tasks)
	// For each destination, group incoming AUB edges by source proc; track F
	// and Diag edges individually.
	type msg struct {
		elems int
		srcs  []int // contributing task ids
	}
	aubIn := make([]map[int]*msg, n) // dst -> srcProc -> aggregated message
	var directIn [][]Edge            // dst -> direct edges (src id in Dst field)
	directIn = make([][]Edge, n)
	for i := range s.Tasks {
		for _, e := range s.Tasks[i].Outs {
			switch e.Kind {
			case EdgeAUB:
				if s.Tasks[i].Proc == s.Tasks[e.Dst].Proc {
					directIn[e.Dst] = append(directIn[e.Dst], Edge{Dst: i, Kind: EdgePin})
					continue
				}
				if aubIn[e.Dst] == nil {
					aubIn[e.Dst] = make(map[int]*msg)
				}
				m := aubIn[e.Dst][s.Tasks[i].Proc]
				if m == nil {
					m = &msg{}
					aubIn[e.Dst][s.Tasks[i].Proc] = m
				}
				m.elems += e.Elems
				m.srcs = append(m.srcs, i)
			default:
				directIn[e.Dst] = append(directIn[e.Dst], Edge{Dst: i, Kind: e.Kind, Elems: e.Elems})
			}
		}
	}
	end := make([]float64, n)
	timer := make([]float64, s.P)
	// Execute in rank order (a topological order by construction).
	order := make([]int, n)
	for i := range s.Tasks {
		order[s.Tasks[i].Rank] = i
	}
	for _, id := range order {
		t := &s.Tasks[id]
		arrival := 0.0
		for _, e := range directIn[id] {
			at := end[e.Dst]
			if e.Kind != EdgePin && s.Tasks[e.Dst].Proc != t.Proc {
				at += mach.SendTimeBetween(s.Tasks[e.Dst].Proc, t.Proc, e.Elems*8)
			}
			if at > arrival {
				arrival = at
			}
		}
		for srcProc, m := range aubIn[id] {
			ready := 0.0
			for _, src := range m.srcs {
				if end[src] > ready {
					ready = end[src]
				}
			}
			if at := ready + mach.SendTimeBetween(srcProc, t.Proc, m.elems*8); at > arrival {
				arrival = at
			}
		}
		start := timer[t.Proc]
		if arrival > start {
			start = arrival
		}
		end[id] = start + t.execT
		timer[t.Proc] = end[id]
	}
	mk := 0.0
	for _, tm := range timer {
		if tm > mk {
			mk = tm
		}
	}
	return mk
}

// Stats summarises a schedule for reporting.
type Stats struct {
	NTasks                         int
	NComp1D, NFactor, NBDiv, NBMod int
	Makespan, SeqTime              float64
	LoadImbalance                  float64 // max proc busy time / mean busy time
	CommVolume                     int64   // bytes crossing processors (model)
	N2DCells                       int
}

// ComputeStats derives summary statistics from a mapped schedule.
func (s *Schedule) ComputeStats() Stats {
	st := Stats{NTasks: len(s.Tasks), Makespan: s.Makespan, SeqTime: s.SeqTime}
	busy := make([]float64, s.P)
	for i := range s.Tasks {
		t := &s.Tasks[i]
		busy[t.Proc] += t.execT
		switch t.Type {
		case Comp1D:
			st.NComp1D++
		case Factor:
			st.NFactor++
		case BDiv:
			st.NBDiv++
		case BMod:
			st.NBMod++
		}
		for _, e := range t.Outs {
			if e.Kind != EdgePin && s.Tasks[e.Dst].Proc != t.Proc {
				st.CommVolume += int64(e.Elems) * 8
			}
		}
	}
	cells := make(map[int]bool)
	for i := range s.Tasks {
		if s.Tasks[i].Type == Factor {
			cells[s.Tasks[i].Cell] = true
		}
	}
	st.N2DCells = len(cells)
	mean, mx := 0.0, 0.0
	for _, b := range busy {
		mean += b
		if b > mx {
			mx = b
		}
	}
	mean /= float64(s.P)
	if mean > 0 {
		st.LoadImbalance = mx / mean
	}
	return st
}

// MemoryPerProc returns the factor bytes owned by each processor under the
// schedule's data distribution (the quantity the paper's static regulation
// balances alongside work): COMP1D owners hold whole column blocks, FACTOR
// owners the dense diagonal triangles, BDIV owners their off-diagonal
// blocks.
func (s *Schedule) MemoryPerProc() []int64 {
	mem := make([]int64, s.P)
	sym := s.sym
	for k := range sym.CB {
		w := int64(sym.CB[k].Width())
		if id := s.Comp1DOf[k]; id >= 0 {
			mem[s.Tasks[id].Proc] += 8 * w * (w + int64(sym.CB[k].RowsBelow()))
			continue
		}
		mem[s.Tasks[s.FactorOf[k]].Proc] += 8 * w * (w + 1) / 2
		for b := range sym.CB[k].Blocks {
			mem[s.Tasks[s.BDivOf[k][b]].Proc] += 8 * w * int64(sym.CB[k].Blocks[b].Rows())
		}
	}
	return mem
}
