package solver

import (
	"fmt"

	"github.com/pastix-go/pastix/internal/blas"
	"github.com/pastix-go/pastix/internal/mpsim"
	"github.com/pastix-go/pastix/internal/sched"
	"github.com/pastix-go/pastix/internal/sparse"
)

// Fan-out factorization: the classical column-based alternative the paper's
// fan-in scheme is contrasted against (Ashcraft-Eisenstat-Liu's comparison of
// column-based schemes, the paper's refs [3,4]). The OWNER of a column block
// factors it and broadcasts the factored panel to every processor owning a
// column block it updates; updates are computed on the RECEIVING side. No
// aggregation happens, so communication volume is the panel size times its
// remote consumer count — the trade-off that motivates fan-in with AUBs.
//
// Column blocks are wholly owned by their diagonal-task processor (use a
// 1D-only schedule for a faithful comparison). The factor equals the fan-in
// and sequential results to rounding.

const msgPanel int8 = 20 // factored panel of a cell: Tag = cell

// FactorizeFanOut runs the fan-out LDLᵀ factorization on sch.P goroutine
// processors and reports its communication statistics (compare with
// FactorizeParStats for the fan-in volume).
func FactorizeFanOut(a *sparse.SymMatrix, sch *sched.Schedule) (*Factors, CommStats, error) {
	sym := sch.Sym()
	P := sch.P
	ncb := sym.NumCB()

	owner := make([]int, ncb)
	for k := 0; k < ncb; k++ {
		if id := sch.Comp1DOf[k]; id >= 0 {
			owner[k] = sch.Tasks[id].Proc
		} else {
			owner[k] = sch.Tasks[sch.FactorOf[k]].Proc
		}
	}
	// sendSet[i]: distinct remote processors owning a cell that i updates.
	// expected[k]: number of distinct remote updater panels cell k waits for.
	sendSet := make([][]int, ncb)
	expected := make([]int, ncb)
	for i := 0; i < ncb; i++ {
		seen := map[int]bool{}
		counted := map[int]bool{} // target cells already counted for panel i
		for _, f := range sym.Facings(i) {
			if owner[f] != owner[i] {
				if !seen[owner[f]] {
					seen[owner[f]] = true
					sendSet[i] = append(sendSet[i], owner[f])
				}
				if !counted[f] {
					counted[f] = true
					expected[f]++
				}
			}
		}
	}

	stores := make([]*Factors, P)
	comm := mpsim.NewComm(P)
	runErr := comm.Run(func(p int) error {
		f := NewFactorsLazy(sym)
		stores[p] = f
		got := make(map[int]int)
		// Assemble owned cells.
		for k := 0; k < ncb; k++ {
			if owner[k] != p {
				continue
			}
			if err := f.AssembleCell(a, k); err != nil {
				return err
			}
		}
		// applyPanel computes the updates of source cell i (panel = scaled L
		// with D on the diagonal, shaped like i's full cell array) into the
		// locally owned target cells, bumping their counters.
		applyPanel := func(i int, data []float64) error {
			ldI := f.LD[i]
			w := sym.CB[i].Width()
			d := make([]float64, w)
			for j := 0; j < w; j++ {
				d[j] = data[j+j*ldI]
			}
			blocks := sym.CB[i].Blocks
			bumped := map[int]bool{}
			for t := range blocks {
				fcell := blocks[t].Facing
				if owner[fcell] != p {
					continue
				}
				for s := t; s < len(blocks); s++ {
					shape := &Factors{Sym: sym, LD: f.LD, BlockOff: f.BlockOff}
					_, off, err := targetOffset(shape, i, s, t)
					if err != nil {
						return err
					}
					f.EnsureCell(fcell)
					dst := f.Data[fcell][off:]
					ldf := f.LD[fcell]
					rs := blocks[s].Rows()
					rt := blocks[t].Rows()
					ws := data[f.BlockOff[i][s]:]
					wt := data[f.BlockOff[i][t]:]
					// C = L_s · D · L_tᵀ subtracted from the target.
					if s == t {
						blas.SyrkLowerNDT(rs, w, ws, ldI, d, dst, ldf)
					} else {
						blas.GemmNDT(rs, rt, w, ws, ldI, d, wt, ldI, dst, ldf)
					}
				}
				// Only REMOTE panels count toward a cell's expected arrivals;
				// local panels are applied synchronously before the target is
				// reached in the ascending sweep.
				if owner[i] != p && !bumped[fcell] {
					bumped[fcell] = true
					got[fcell]++
				}
			}
			return nil
		}

		for k := 0; k < ncb; k++ {
			if owner[k] != p {
				continue
			}
			for got[k] < expected[k] {
				m, err := comm.Recv(p)
				if err != nil {
					return err
				}
				if m.Kind != msgPanel {
					return fmt.Errorf("solver: fan-out got message kind %d", m.Kind)
				}
				if err := applyPanel(m.Tag, m.Data); err != nil {
					return err
				}
			}
			// Factor cell k: dense diagonal LDLᵀ, panel solve, scale.
			if err := f.FactorDiag(k); err != nil {
				return err
			}
			f.SolvePanel(k)
			d := f.Diag(k)
			f.ScalePanel(k, d)
			// Local updates (receiver-computes applies to ourselves too).
			if err := applyPanel(k, f.Data[k]); err != nil {
				return err
			}
			// Broadcast the factored panel to remote consumers.
			if len(sendSet[k]) > 0 {
				buf := append([]float64(nil), f.Data[k]...)
				for _, q := range sendSet[k] {
					comm.Send(mpsim.Message{Kind: msgPanel, Src: p, Dst: q, Tag: k, Data: buf})
				}
			}
		}
		return nil
	})
	msgs, bytes, inflight := comm.Stats()
	stats := CommStats{Messages: msgs, Bytes: bytes, MaxInFlight: inflight}
	for i := 0; i < ncb; i++ {
		stats.PredictedMessages += int64(len(sendSet[i]))
	}
	if runErr != nil {
		return nil, stats, runErr
	}
	g := NewFactors(sym)
	for k := 0; k < ncb; k++ {
		copy(g.Data[k], stores[owner[k]].Data[k])
	}
	return g, stats, nil
}
