package solver

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/pastix-go/pastix/internal/cost"
	"github.com/pastix-go/pastix/internal/etree"
	"github.com/pastix-go/pastix/internal/graph"
	"github.com/pastix-go/pastix/internal/order"
	"github.com/pastix-go/pastix/internal/part"
	"github.com/pastix-go/pastix/internal/sched"
	"github.com/pastix-go/pastix/internal/sparse"
	"github.com/pastix-go/pastix/internal/symbolic"
)

// Options configures the analysis (pre-processing) pipeline.
type Options struct {
	// P is the number of (virtual) processors the schedule targets (≥1;
	// default 1).
	P int
	// Ordering configures the fill-reducing ordering (default: ScotchLike
	// nested dissection + Halo-AMD).
	Ordering order.Options
	// Amalgamation controls relaxed supernode amalgamation.
	Amalgamation etree.AmalgamateOptions
	// Part controls supernode splitting and the 1D/2D switch.
	Part part.Options
	// Machine supplies the cost models; nil selects the deterministic
	// SP2-like analytic profile.
	Machine *cost.Machine
	// Sched tunes the static scheduler (ablation switches).
	Sched sched.Options
}

// Analysis is the result of the pre-processing phases: the permuted matrix,
// the composed permutation, the block symbolic structure, and the static
// schedule. It is immutable once built and may be reused for several
// numerical factorizations (e.g. different values, same pattern).
type Analysis struct {
	A       *sparse.SymMatrix // permuted matrix P·A·Pᵀ
	Perm    []int             // Perm[new] = old (composed ordering ∘ postorder)
	IPerm   []int             // IPerm[old] = new
	Snodes  *etree.Supernodes
	Sym     *symbolic.Symbol
	Mapping *part.Mapping
	Sched   *sched.Schedule
	Machine *cost.Machine

	// Scalar metrics from the column counts of the permuted matrix (these
	// are the paper's Table 1 numbers — scalar, not block, fill).
	ScalarNNZL int64
	ScalarOPC  float64

	// Phase durations of this analysis (ordering, elimination-tree +
	// supernode work, block symbolic factorization, mapping + scheduling).
	OrderTime, TreeTime, SymbolicTime, SchedTime time.Duration

	// Solve-scheduling caches (levelsolve.go): the solve DAG is projected
	// once per analysis and one SolvePlan is cached per worker count. Both
	// are internally synchronized, so the Analysis remains safe for
	// concurrent use.
	solveDAGOnce sync.Once
	solveDAG     *sched.SolveDAG
	solvePlans   sync.Map // workers (int) -> *SolvePlan
}

// Analyze runs ordering, symbolic factorization, repartitioning, candidate
// mapping and static scheduling for matrix a.
func Analyze(a *sparse.SymMatrix, opts Options) (*Analysis, error) {
	return AnalyzeCtx(context.Background(), a, opts)
}

// AnalyzeCtx is Analyze under a context. The analysis phases are sequential
// CPU-bound passes, so cancellation is observed at the phase boundaries
// (ordering → tree/supernodes → symbolic → mapping/scheduling) — ctx.Err()
// is returned at the first boundary after cancellation.
func AnalyzeCtx(ctx context.Context, a *sparse.SymMatrix, opts Options) (*Analysis, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("solver: invalid matrix: %w", err)
	}
	if opts.P <= 0 {
		opts.P = 1
	}
	mach := opts.Machine
	if mach == nil {
		mach = cost.SP2()
	}

	// Ordering phase.
	tStart := time.Now()
	ptr, adj := a.AdjacencyCSR()
	g := graph.FromCSR(a.N, ptr, adj)
	o := order.Compute(g, opts.Ordering)
	if err := o.Validate(a.N); err != nil {
		return nil, err
	}
	pa := a.Permute(o.Perm)
	tOrder := time.Since(tStart)
	tStart = time.Now()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Elimination tree, postorder (composed into the permutation), column
	// counts, supernodes.
	parent := etree.Build(pa)
	post := etree.Postorder(parent)
	pa = pa.Permute(post)
	perm := make([]int, a.N)
	for r, v := range post {
		perm[r] = o.Perm[v]
	}
	iperm := make([]int, a.N)
	for newI, old := range perm {
		iperm[old] = newI
	}
	parent = etree.Build(pa)
	cc := etree.ColCounts(pa, parent)
	sn := etree.Fundamental(parent, cc)
	sn = etree.Amalgamate(sn, parent, cc, opts.Amalgamation)
	tTree := time.Since(tStart)
	tStart = time.Now()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Block repartitioning: split by blocking size, then the block symbolic
	// factorization on the final partition.
	sn = part.SplitRanges(sn, opts.Part)
	if err := sn.Validate(a.N); err != nil {
		return nil, err
	}
	sym := symbolic.Factor(pa, sn)
	tSymbolic := time.Since(tStart)
	tStart = time.Now()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Candidate mapping and static scheduling.
	mapping := part.Map(sym, mach, opts.P, opts.Part)
	if err := mapping.Validate(sym.NumCB()); err != nil {
		return nil, err
	}
	schedule, err := sched.Build(sym, mapping, mach, opts.Sched)
	if err != nil {
		return nil, err
	}
	tSched := time.Since(tStart)

	return &Analysis{
		A:          pa,
		Perm:       perm,
		IPerm:      iperm,
		Snodes:     sn,
		Sym:        sym,
		Mapping:    mapping,
		Sched:      schedule,
		Machine:    mach,
		ScalarNNZL: etree.NNZL(cc),
		ScalarOPC:  etree.OPC(cc),
		OrderTime:  tOrder, TreeTime: tTree, SymbolicTime: tSymbolic, SchedTime: tSched,
	}, nil
}

// Factorize computes the numerical factorization: sequentially for P == 1,
// otherwise with the schedule-driven parallel fan-in solver on P goroutine
// processors.
func (an *Analysis) Factorize() (*Factors, error) {
	return an.FactorizeOpts(ParOptions{})
}

// FactorizeOpts is Factorize with an explicit runtime selection: the
// message-passing fan-in/fan-both runtime (default, sequential for P == 1)
// or the zero-copy shared-memory runtime (popts.SharedMemory).
func (an *Analysis) FactorizeOpts(popts ParOptions) (*Factors, error) {
	return an.FactorizeOptsCtx(context.Background(), popts)
}

// FactorizeOptsCtx is FactorizeOpts under a context: cancelling ctx aborts
// the parallel runtimes (all worker goroutines unwind before the call
// returns) and is checked up front on the sequential path.
func (an *Analysis) FactorizeOptsCtx(ctx context.Context, popts ParOptions) (*Factors, error) {
	return an.FactorizeMatrixOptsCtx(ctx, an.A, popts)
}

// FactorizeMatrixOptsCtx factorizes pa — a matrix with the analysed sparsity
// pattern, already permuted into the analysis ordering — under this
// analysis's symbolic structure and schedule. This is the amortization the
// analysis/factorization split exists for: one ordering/symbolic/scheduling
// pass serves every matrix sharing the pattern. The caller is responsible
// for pa actually having the analysed pattern.
func (an *Analysis) FactorizeMatrixOptsCtx(ctx context.Context, pa *sparse.SymMatrix, popts ParOptions) (*Factors, error) {
	rt := popts.Runtime
	if rt == RuntimeAuto {
		switch {
		case popts.SharedMemory:
			rt = RuntimeShared
		// Fault injection forces the message-passing runtime even at P == 1
		// so crash/stall schedules have a worker to act on; tracing forces it
		// so every schedule task gets an event.
		case an.Sched.P == 1 && popts.Trace == nil && !popts.Faults.Active():
			rt = RuntimeSequential
		default:
			rt = RuntimeMPSim
		}
	}
	if rt != RuntimeMPSim && popts.Faults.Active() {
		return nil, fmt.Errorf("solver: fault injection requires the message-passing runtime, not %v", rt)
	}
	switch rt {
	case RuntimeSequential:
		if popts.Trace != nil {
			return nil, fmt.Errorf("solver: tracing requires a parallel runtime, not %v", rt)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return FactorizeSeqPivot(pa, an.Sym, popts.Pivot)
	case RuntimeShared:
		return FactorizeSharedCtx(ctx, pa, an.Sched, popts.Trace, popts.Pivot)
	case RuntimeDynamic:
		return FactorizeDynamicCtx(ctx, pa, an.Sched, popts.Trace, popts.Pivot)
	case RuntimeMPSim:
		f, _, err := FactorizeParStatsCtx(ctx, pa, an.Sched, popts)
		return f, err
	}
	return nil, fmt.Errorf("solver: unknown runtime %v", popts.Runtime)
}

// SolveOriginal solves A·x = b in the ORIGINAL ordering: b is permuted in,
// the block triangular solves run on the factor, and the solution is
// permuted back.
func (an *Analysis) SolveOriginal(f *Factors, b []float64) []float64 {
	pb := make([]float64, len(b))
	for newI, old := range an.Perm {
		pb[newI] = b[old]
	}
	px := f.Solve(pb)
	x := make([]float64, len(b))
	for newI, old := range an.Perm {
		x[old] = px[newI]
	}
	return x
}

// PredictedTime returns the modelled parallel factorization time (the static
// schedule's replayed makespan) in seconds on the analysis machine profile.
func (an *Analysis) PredictedTime() float64 { return an.Sched.Replay() }
