package solver

import (
	"context"
	"math"
	"testing"

	"github.com/pastix-go/pastix/internal/gen"
	"github.com/pastix-go/pastix/internal/sparse"
)

// solveConformanceCorpus covers every generator family in internal/gen at
// small sizes: the regular Poisson stencils, the FE shells/solids with
// multiple DOFs per node, the irregular graded matrix and random SPD graphs.
type solveConformanceCase struct {
	name string
	a    *sparse.SymMatrix
}

func solveConformanceCorpus() []solveConformanceCase {
	return []solveConformanceCase{
		{"poisson2d-14x14", gen.Laplacian2D(14, 14)},
		{"poisson3d-6", gen.Laplacian3D(6, 6, 6)},
		{"shell-8x8x3", gen.Shell(8, 8, 3)},
		{"solid-4x4x4x3", gen.Solid(4, 4, 4, 3)},
		{"thickshell-6x6x2x3", gen.ThickShell(6, 6, 2, 3)},
		{"graded", gen.GradedPivot(4, 8, 1e-2, 0.05, false)},
		{"randspd-seed5", gen.RandomSPD(150, 4, 5)},
	}
}

// TestSolveConformanceTable is the cross-runtime solve conformance table of
// the solve-path engine: every generator family × factors from the
// sequential, shared and dynamic runtimes × the level-set engine (static
// and dynamic dispatch) vs the legacy sweeps × 1 and 32 right-hand sides.
//
// The level-set legs assert BITWISE equality against the sequential
// Factors.Solve of each column — the engine's core contract. The legacy
// shared sweep accumulates contributions in arrival order under a lock, so
// it is only equal to rounding; its legs assert a tolerance, which is
// exactly why the level-set engine replaces it as the default.
func TestSolveConformanceTable(t *testing.T) {
	const nrhsWide = 32
	for _, tc := range solveConformanceCorpus() {
		t.Run(tc.name, func(t *testing.T) {
			an := analyzeFor(t, tc.a, 4)
			n := tc.a.N
			_, b := gen.RHSForSolution(tc.a)
			pb := make([]float64, n)
			for newI, old := range an.Perm {
				pb[newI] = b[old]
			}
			panel := make([]float64, n*nrhsWide)
			for r := 0; r < nrhsWide; r++ {
				for i := 0; i < n; i++ {
					panel[i+r*n] = pb[i] * (1 + float64(r)/3)
				}
			}
			for _, rt := range []Runtime{RuntimeSequential, RuntimeShared, RuntimeDynamic} {
				f, err := an.FactorizeMatrixOptsCtx(context.Background(), an.A, ParOptions{Runtime: rt})
				if err != nil {
					t.Fatalf("%v factorize: %v", rt, err)
				}
				// Per-column sequential references.
				refs := make([][]float64, nrhsWide)
				for r := 0; r < nrhsWide; r++ {
					col := append([]float64(nil), panel[r*n:(r+1)*n]...)
					refs[r] = f.Solve(col)
				}
				pl := an.SolvePlanFor(4)

				for _, dyn := range []bool{false, true} {
					for _, nrhs := range []int{1, nrhsWide} {
						x, err := SolveLevelCtx(context.Background(), pl, f, panel[:n*nrhs],
							LevelOptions{NRHS: nrhs, Dynamic: dyn})
						if err != nil {
							t.Fatalf("%v level dyn=%v nrhs=%d: %v", rt, dyn, nrhs, err)
						}
						for r := 0; r < nrhs; r++ {
							for i := 0; i < n; i++ {
								if x[i+r*n] != refs[r][i] {
									t.Fatalf("%v level dyn=%v nrhs=%d col %d: x[%d] = %x, seq %x (not bit-identical)",
										rt, dyn, nrhs, r, i, x[i+r*n], refs[r][i])
								}
							}
						}
					}
				}

				// Legacy shared sweep (single RHS) — rounding-level agreement.
				xs, err := SolveShared(an.Sched, f, pb)
				if err != nil {
					t.Fatalf("%v legacy shared: %v", rt, err)
				}
				legacyClose(t, tc.name+"/legacy-shared", xs, refs[0])

				// Legacy panel sweep (mpsim data distribution) — rounding-level.
				xm, err := SolveParManyOpts(context.Background(), an.Sched, f, panel, nrhsWide, SolveOptions{})
				if err != nil {
					t.Fatalf("%v legacy panel: %v", rt, err)
				}
				for r := 0; r < nrhsWide; r++ {
					legacyClose(t, tc.name+"/legacy-panel", xm[r*n:(r+1)*n], refs[r])
				}
			}
		})
	}
}

func legacyClose(t *testing.T, name string, got, want []float64) {
	t.Helper()
	scale := 0.0
	for _, v := range want {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	if scale == 0 {
		scale = 1
	}
	for i := range want {
		if d := math.Abs(got[i] - want[i]); d > 1e-9*scale {
			t.Fatalf("%s: x[%d] off by %g (scale %g)", name, i, d, scale)
		}
	}
}
