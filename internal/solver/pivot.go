package solver

import (
	"math"
	"sort"

	"github.com/pastix-go/pastix/internal/sparse"
)

// Numerical-robustness defaults shared by the solver and the public API.
const (
	// DefaultPivotEpsilon is the ε_piv used when static pivoting is requested
	// without an explicit threshold (and the first escalation step of
	// FactorizeRobust). 1e-12 sits above the cancellation noise floor of
	// double-precision supernodal updates but low enough that the induced
	// backward error ≈ ε_piv is recoverable by refinement.
	DefaultPivotEpsilon = 1e-12
	// DefaultRefineTol is the componentwise backward-error target of adaptive
	// refinement when none is configured.
	DefaultRefineTol = 1e-10
	// defaultPivotRetries bounds FactorizeRobust's escalation attempts when
	// StaticPivot.MaxRetries is unset.
	defaultPivotRetries = 3
	// pivotEscalation multiplies ε_piv between FactorizeRobust attempts.
	pivotEscalation = 100
	// defaultMaxRefine bounds adaptive refinement sweeps; the loop normally
	// exits far earlier on convergence or stagnation.
	defaultMaxRefine = 40
)

// StaticPivot configures static pivoting in the numerical factorization: a
// diagonal pivot with |d| < τ = Epsilon·‖A‖_max is replaced by sign(d)·τ and
// recorded, instead of aborting with ErrNotSPD. The zero value disables
// pivoting (bit-identical to the historical kernels).
type StaticPivot struct {
	// Epsilon is ε_piv, the threshold relative to ‖A‖_max. 0 disables
	// pivoting.
	Epsilon float64
	// MaxRetries bounds FactorizeRobust's escalation attempts (each retry
	// multiplies ε_piv by 100); 0 selects the default of 3. It has no effect
	// on plain factorization.
	MaxRetries int
}

// Enabled reports whether static pivoting is active.
func (sp StaticPivot) Enabled() bool { return sp.Epsilon > 0 }

// Perturbation records one static-pivot substitution: the global column
// (original matrix ordering is not applied — Column is in the permuted
// system, identical across runtimes), the pivot found there and the value
// written in its place.
type Perturbation struct {
	Column   int     `json:"column"`
	Original float64 `json:"original"`
	Used     float64 `json:"used"`
}

// PerturbationReport summarizes the static pivoting of one factorization.
// All three runtimes produce bitwise-identical reports for the same matrix
// and ε_piv: the threshold is a pure function of (ε, ‖A‖_max), substitution
// happens inside the same dense kernel, and the perturbation list is sorted
// by column before the report is published.
type PerturbationReport struct {
	// Epsilon is the ε_piv the factorization ran with.
	Epsilon float64 `json:"epsilon"`
	// NormMax is ‖A‖_max of the factorized matrix.
	NormMax float64 `json:"norm_max"`
	// Threshold is τ = Epsilon·NormMax.
	Threshold float64 `json:"threshold"`
	// Perturbed lists every substitution, sorted by column; empty when the
	// factorization needed none.
	Perturbed []Perturbation `json:"perturbed,omitempty"`
	// PivotGrowth is max_k |D_k| / ‖A‖_max over the computed factor, the
	// classical growth-factor diagnostic: values far above 1 flag element
	// growth that degrades the factorization's backward stability.
	PivotGrowth float64 `json:"pivot_growth"`
}

// Columns returns the perturbed column indices in ascending order.
func (r *PerturbationReport) Columns() []int {
	if r == nil || len(r.Perturbed) == 0 {
		return nil
	}
	cols := make([]int, len(r.Perturbed))
	for i, p := range r.Perturbed {
		cols[i] = p.Column
	}
	return cols
}

// pivotThreshold returns (τ, ‖A‖_max) for factorizing a under sp.
func pivotThreshold(sp StaticPivot, a *sparse.SymMatrix) (tau, normMax float64) {
	if !sp.Enabled() {
		return 0, 0
	}
	normMax = a.NormMax()
	return sp.Epsilon * normMax, normMax
}

// buildReport assembles the published report from the collected
// perturbations and the finished factor (for the growth diagnostic). The
// perturbation slice is sorted in place by column so per-processor
// collection order never leaks into the report.
func buildReport(sp StaticPivot, normMax float64, perts []Perturbation, f *Factors) *PerturbationReport {
	sort.Slice(perts, func(i, j int) bool { return perts[i].Column < perts[j].Column })
	maxD := 0.0
	for k := range f.Sym.CB {
		w := f.Sym.CB[k].Width()
		ld := f.LD[k]
		data := f.Data[k]
		if data == nil {
			continue
		}
		for j := 0; j < w; j++ {
			if d := math.Abs(data[j+j*ld]); d > maxD {
				maxD = d
			}
		}
	}
	growth := 0.0
	if normMax > 0 {
		growth = maxD / normMax
	}
	return &PerturbationReport{
		Epsilon:     sp.Epsilon,
		NormMax:     normMax,
		Threshold:   sp.Epsilon * normMax,
		Perturbed:   perts,
		PivotGrowth: growth,
	}
}
