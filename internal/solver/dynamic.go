package solver

import (
	"context"

	"github.com/pastix-go/pastix/internal/dynsched"
	"github.com/pastix-go/pastix/internal/sched"
	"github.com/pastix-go/pastix/internal/sparse"
	"github.com/pastix-go/pastix/internal/trace"
)

// This file is the dynamic work-stealing execution of the task graph: the
// same shared-memory data layout, kernels and canonical contribution
// protocol as FactorizeShared (shared.go), but the static schedule's
// task→processor mapping and K_p orders are DISCARDED. Tasks activate when
// their last dependency completes (atomic in-degree countdown), land on the
// completing worker's deque ordered by the cost model's priority, and idle
// workers steal from the tail of their peers' deques (internal/dynsched).
//
// Because every contribution is applied by its destination task in the
// canonical source order, the factor — and the perturbation report — is
// bitwise identical to FactorizeSeq and FactorizeShared no matter how the
// steal lottery interleaves the tasks. Only the trace differs: tasks run on
// whichever worker got them, so divergence reports must be computed with
// trace.CompareOptions.FreeMapping.

// FactorizeDynamic runs the supernodal LDLᵀ factorization with data-driven
// task activation and work stealing on sch.P workers over one shared factor
// storage. The result is bitwise identical to FactorizeSeq.
func FactorizeDynamic(a *sparse.SymMatrix, sch *sched.Schedule) (*Factors, error) {
	return FactorizeDynamicCtx(context.Background(), a, sch, nil, StaticPivot{})
}

// FactorizeDynamicCtx is FactorizeDynamic under a context, an optional
// execution-trace recorder (task events carry the WORKER index as the
// processor — compare with FreeMapping) and an optional static-pivot
// configuration. Cancelling ctx aborts the run between tasks; every worker
// goroutine unwinds before the call returns.
func FactorizeDynamicCtx(ctx context.Context, a *sparse.SymMatrix, sch *sched.Schedule, rec *trace.Recorder, sp StaticPivot) (*Factors, error) {
	f, _, err := FactorizeDynamicStatsCtx(ctx, a, sch, rec, sp)
	return f, err
}

// FactorizeDynamicStatsCtx is FactorizeDynamicCtx also reporting the
// executor's stats (steal and park counts) for benchmarks and stress tests.
func FactorizeDynamicStatsCtx(ctx context.Context, a *sparse.SymMatrix, sch *sched.Schedule, rec *trace.Recorder, sp StaticPivot) (*Factors, dynsched.Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, dynsched.Stats{}, err
	}
	sr := newSharedRun(ctx, sch, rec, sp, a)
	// Assembly reuses the static ownership partition — it is embarrassingly
	// parallel, so there is nothing for stealing to improve.
	if err := sr.runPhase(func(p int) error { return sr.assemble(a, p) }); err != nil {
		return nil, dynsched.Stats{}, err
	}
	st, err := dynsched.Run(ctx, sch.DAG(), sch.P, sr.execTask)
	if err != nil {
		return nil, st, err
	}
	if err := sr.runPhase(sr.scale); err != nil {
		return nil, st, err
	}
	sr.finishPivots(sp, a)
	return sr.f, st, nil
}
