package solver

import (
	"context"
	"errors"

	"github.com/pastix-go/pastix/internal/sparse"
)

// RobustStats reports what FactorizeRobust did to obtain an acceptable
// factorization.
type RobustStats struct {
	// Attempts is how many factorizations ran (1 = first try sufficed).
	Attempts int `json:"attempts"`
	// Epsilon is the ε_piv of the accepted (or last attempted) factorization.
	Epsilon float64 `json:"epsilon"`
	// BackwardError is the probe backward error after refinement; 0 when the
	// accepted factorization needed no perturbation (exact to working
	// accuracy, no probe run).
	BackwardError float64 `json:"backward_error"`
	// RefineIterations is the refinement sweeps the probe needed.
	RefineIterations int `json:"refine_iterations"`
	// PerturbedColumns counts the static-pivot substitutions of the accepted
	// factorization.
	PerturbedColumns int `json:"perturbed_columns"`
}

// FactorizeRobust factorizes pa with escalating static pivoting: the first
// attempt runs with popts.Pivot as configured (ε = 0 means unpivoted), and
// each retry multiplies ε_piv by 100 (starting from DefaultPivotEpsilon when
// unset). An attempt is accepted when it completes and a probe solve —
// against a synthetic right-hand side with known solution — refines to a
// componentwise backward error ≤ refineTol (≤ 0 selects DefaultRefineTol).
// Unperturbed factorizations are accepted without a probe. After
// popts.Pivot.MaxRetries retries (0 = default 3) the ErrPivotExhausted-typed
// *PivotExhaustedError reports the final state.
func (an *Analysis) FactorizeRobust(ctx context.Context, pa *sparse.SymMatrix, popts ParOptions, refineTol float64) (*Factors, RobustStats, error) {
	maxRetries := popts.Pivot.MaxRetries
	if maxRetries <= 0 {
		maxRetries = defaultPivotRetries
	}
	eps := popts.Pivot.Epsilon
	var stats RobustStats
	var lastErr error
	var lastCols []int
	for attempt := 0; ; attempt++ {
		stats.Attempts = attempt + 1
		stats.Epsilon = eps
		cur := popts
		cur.Pivot = StaticPivot{Epsilon: eps}
		f, err := an.FactorizeMatrixOptsCtx(ctx, pa, cur)
		switch {
		case err == nil:
			if f.Pivots == nil || len(f.Pivots.Perturbed) == 0 {
				// Nothing was substituted: this is the exact unpivoted factor.
				stats.BackwardError = 0
				stats.RefineIterations = 0
				stats.PerturbedColumns = 0
				return f, stats, nil
			}
			rs := an.probe(f, pa, refineTol)
			stats.BackwardError = rs.BackwardError
			stats.RefineIterations = rs.Iterations
			stats.PerturbedColumns = len(f.Pivots.Perturbed)
			if rs.Converged {
				return f, stats, nil
			}
			lastErr, lastCols = nil, f.Pivots.Columns()
		case errors.Is(err, ErrNotSPD):
			lastErr, lastCols = err, nil
			stats.BackwardError, stats.RefineIterations, stats.PerturbedColumns = 0, 0, 0
		default:
			// Cancellation, shape errors, fault budgets: escalating ε cannot
			// help, surface immediately.
			return nil, stats, err
		}
		if attempt >= maxRetries {
			return nil, stats, &PivotExhaustedError{
				Attempts:      stats.Attempts,
				Epsilon:       eps,
				BackwardError: stats.BackwardError,
				Columns:       lastCols,
				Err:           lastErr,
			}
		}
		if eps <= 0 {
			eps = DefaultPivotEpsilon
		} else {
			eps *= pivotEscalation
		}
	}
}

// probe measures the solution quality of a perturbed factor: solve against a
// right-hand side manufactured from a fixed reference solution and refine
// adaptively. The reference is deterministic, so probe quality is
// reproducible across runs and runtimes.
func (an *Analysis) probe(f *Factors, pa *sparse.SymMatrix, refineTol float64) RefineStats {
	n := pa.N
	xref := make([]float64, n)
	for i := range xref {
		xref[i] = 1 + float64(i%7)/7
	}
	b := make([]float64, n)
	pa.MatVec(xref, b)
	x := f.Solve(b)
	_, rs := f.RefineAdaptive(pa, b, x, refineTol, 0)
	return rs
}
