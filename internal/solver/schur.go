package solver

import (
	"fmt"
	"sort"

	"github.com/pastix-go/pastix/internal/cost"
	"github.com/pastix-go/pastix/internal/etree"
	"github.com/pastix-go/pastix/internal/graph"
	"github.com/pastix-go/pastix/internal/order"
	"github.com/pastix-go/pastix/internal/part"
	"github.com/pastix-go/pastix/internal/sched"
	"github.com/pastix-go/pastix/internal/sparse"
	"github.com/pastix-go/pastix/internal/symbolic"
)

// Schur complement support, in the tradition of PaStiX's Schur API consumed
// by hybrid direct/iterative solvers (HIPS, MaPHyS): the caller designates a
// set of unknowns (typically an interface separating subdomains); those are
// ordered last as one terminal column block, the factorization eliminates
// all interior unknowns, and the fully updated terminal diagonal block
// S = A_ss − A_si·A_ii⁻¹·A_is is returned dense instead of being factored.

// SchurAnalysis extends Analysis with the terminal Schur block bookkeeping.
type SchurAnalysis struct {
	*Analysis
	// SchurVars lists the designated unknowns (original indices) in the
	// order of the rows/columns of the returned Schur matrix.
	SchurVars []int
}

// AnalyzeSchur orders the matrix with the Schur unknowns constrained last,
// then runs the usual pipeline. schurVars must be distinct valid indices.
func AnalyzeSchur(a *sparse.SymMatrix, schurVars []int, opts Options) (*SchurAnalysis, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	n := a.N
	isSchur := make([]bool, n)
	for _, v := range schurVars {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("solver: schur unknown %d out of range", v)
		}
		if isSchur[v] {
			return nil, fmt.Errorf("solver: schur unknown %d listed twice", v)
		}
		isSchur[v] = true
	}
	ns := len(schurVars)
	if ns == 0 || ns == n {
		return nil, fmt.Errorf("solver: schur set must be a proper nonempty subset")
	}
	if opts.P <= 0 {
		opts.P = 1
	}
	mach := opts.Machine
	if mach == nil {
		mach = cost.SP2()
	}

	// Order the interior subgraph only; the Schur unknowns go last (sorted,
	// one terminal supernode).
	ptr, adj := a.AdjacencyCSR()
	g := graph.FromCSR(n, ptr, adj)
	interior := make([]int, 0, n-ns)
	for v := 0; v < n; v++ {
		if !isSchur[v] {
			interior = append(interior, v)
		}
	}
	sub, l2g := g.Subgraph(interior)
	o := order.Compute(sub, opts.Ordering)
	perm := make([]int, 0, n)
	for _, lv := range o.Perm {
		perm = append(perm, l2g[lv])
	}
	schurSorted := append([]int(nil), schurVars...)
	sort.Ints(schurSorted)
	perm = append(perm, schurSorted...)

	pa := a.Permute(perm)
	parent := etree.Build(pa)
	post := etree.Postorder(parent)
	// The terminal Schur columns form a path at the top of the etree; the
	// postorder keeps them last (they are ancestors of everything they
	// touch). Compose permutations as in Analyze.
	pa = pa.Permute(post)
	composed := make([]int, n)
	for r, v := range post {
		composed[r] = perm[v]
	}
	iperm := make([]int, n)
	for newI, old := range composed {
		iperm[old] = newI
	}
	// Verify the Schur unknowns stayed last (they must: every interior
	// column is eliminated before them or unrelated).
	for r := n - ns; r < n; r++ {
		if !isSchur[composed[r]] {
			return nil, fmt.Errorf("solver: schur unknowns not terminal after postorder")
		}
	}

	parent = etree.Build(pa)
	cc := etree.ColCounts(pa, parent)
	sn := etree.Fundamental(parent, cc)
	sn = etree.Amalgamate(sn, parent, cc, opts.Amalgamation)
	// Merge all supernodes inside the Schur range into one terminal block,
	// then split only the interior ones.
	sn = forceTerminalBlock(sn, n-ns)
	interiorSn := &etree.Supernodes{}
	var schurRange [2]int
	for i, r := range sn.Ranges {
		if r[0] >= n-ns {
			schurRange = r
			continue
		}
		interiorSn.Ranges = append(interiorSn.Ranges, r)
		interiorSn.Parent = append(interiorSn.Parent, sn.Parent[i])
	}
	split := part.SplitRanges(interiorSn, opts.Part)
	final := &etree.Supernodes{Ranges: append(split.Ranges, schurRange), Parent: make([]int, len(split.Ranges)+1)}
	for i := range final.Parent {
		final.Parent[i] = -1 // recomputed from the block structure by symbolic.Factor
	}
	if err := final.Validate(n); err != nil {
		return nil, err
	}
	sym := symbolic.Factor(pa, final)

	mapping := part.Map(sym, mach, opts.P, opts.Part)
	schedule, err := sched.Build(sym, mapping, mach, opts.Sched)
	if err != nil {
		return nil, err
	}
	an := &Analysis{
		A: pa, Perm: composed, IPerm: iperm, Snodes: final, Sym: sym,
		Mapping: mapping, Sched: schedule, Machine: mach,
		ScalarNNZL: etree.NNZL(cc), ScalarOPC: etree.OPC(cc),
	}
	ordered := make([]int, ns)
	copy(ordered, composed[n-ns:])
	return &SchurAnalysis{Analysis: an, SchurVars: ordered}, nil
}

// forceTerminalBlock merges every supernode whose range intersects [cut, n)
// into one terminal supernode starting exactly at cut. Ranges never straddle
// cut because the Schur set was ordered contiguously last, and fundamental
// supernodes/amalgamation only merge adjacent ranges within the etree, but a
// merge across the cut is possible (interior chain into the terminal block);
// in that case the interior part is split back off.
func forceTerminalBlock(sn *etree.Supernodes, cut int) *etree.Supernodes {
	out := &etree.Supernodes{}
	for i, r := range sn.Ranges {
		switch {
		case r[1] <= cut:
			out.Ranges = append(out.Ranges, r)
			out.Parent = append(out.Parent, sn.Parent[i])
		case r[0] < cut:
			out.Ranges = append(out.Ranges, [2]int{r[0], cut})
			out.Parent = append(out.Parent, sn.Parent[i])
		}
	}
	n := sn.Ranges[len(sn.Ranges)-1][1]
	out.Ranges = append(out.Ranges, [2]int{cut, n})
	out.Parent = append(out.Parent, -1)
	for i := range out.Parent {
		if i < len(out.Parent)-1 {
			out.Parent[i] = -1 // parents recomputed by symbolic.Factor; unused here
		}
	}
	return out
}

// FactorizeSchur eliminates the interior unknowns and returns the partial
// factor plus the dense Schur complement S (ns×ns, column-major, full
// symmetric storage). The terminal block of the factor is left unfactored.
func (san *SchurAnalysis) FactorizeSchur() (*Factors, []float64, error) {
	sym := san.Sym
	ncb := sym.NumCB()
	f := NewFactors(sym)
	for k := range sym.CB {
		if err := f.AssembleCell(san.A, k); err != nil {
			return nil, nil, err
		}
	}
	for k := 0; k < ncb-1; k++ {
		if err := f.FactorDiag(k); err != nil {
			return nil, nil, err
		}
		f.SolvePanel(k)
		d := f.Diag(k)
		invd := make([]float64, len(d))
		for i, v := range d {
			invd[i] = 1 / v
		}
		if err := applyCellUpdates(f, k, invd); err != nil {
			return nil, nil, err
		}
		f.ScalePanel(k, d)
	}
	// The terminal cell's diagonal region now holds S (lower triangle).
	last := ncb - 1
	ns := sym.CB[last].Width()
	ld := f.LD[last]
	s := make([]float64, ns*ns)
	for j := 0; j < ns; j++ {
		for i := j; i < ns; i++ {
			v := f.Data[last][i+j*ld]
			s[i+j*ns] = v
			s[j+i*ns] = v
		}
	}
	return f, s, nil
}
