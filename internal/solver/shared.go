package solver

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pastix-go/pastix/internal/blas"
	"github.com/pastix-go/pastix/internal/sched"
	"github.com/pastix-go/pastix/internal/sparse"
	"github.com/pastix-go/pastix/internal/trace"
)

// This file implements the shared-memory execution of the static schedule:
// the same per-processor K_p task vectors as FactorizePar, but with direct
// in-place aggregation into one shared Factors storage instead of mpsim
// message copies. AUBs, solved panels and diagonal blocks are never
// serialized or duplicated — a contribution is a GEMM straight into the
// destination region, a panel or diagonal read is a slice of the shared
// array. Task ordering is enforced by per-task dependency counters
// (sched.InDegrees) with close-only ready channels, and concurrent
// contributions into one destination region are serialized by a per-task
// mutex. The message-passing runtime remains as the paper-faithful ablation
// baseline; see DESIGN.md for the contrast.

// errSharedAborted unblocks gate waiters after a peer failed; the peer's
// root-cause error is reported in preference to it.
var errSharedAborted = errors.New("solver: shared runtime aborted")

// taskGate is the completion signal of one task: remaining counts the
// incoming dependency edges not yet satisfied; ready is closed when the
// count reaches zero.
type taskGate struct {
	remaining atomic.Int32
	ready     chan struct{}
}

// sharedRun is the state shared by all goroutine processors of one
// FactorizeShared execution.
type sharedRun struct {
	sch   *sched.Schedule
	f     *Factors        // the one shared factor storage (fully allocated)
	gates []taskGate      // per task
	locks []sync.Mutex    // per task: serializes contributions into its region
	invd  [][]float64     // per cell: 1/D, published by the FACTOR task
	rec   *trace.Recorder // nil disables tracing
	tau   float64         // static-pivot threshold; 0 disables pivoting

	// Static-pivot substitutions are rare events on the factorization's
	// critical path of never, so a plain mutex-guarded log is fine; the
	// report sorts by column, erasing the nondeterministic arrival order.
	pivotMu sync.Mutex
	perts   []Perturbation

	ctx       context.Context
	ctxDone   <-chan struct{} // ctx.Done(); nil when uncancellable
	abort     chan struct{}   // closed on first error to unblock gate waiters
	abortOnce sync.Once
}

func (sr *sharedRun) fail() { sr.abortOnce.Do(func() { close(sr.abort) }) }

// wait blocks until task id's gate opens (all dependencies satisfied), the
// run aborts, or the context is cancelled. A nil ctxDone channel blocks
// forever in select, so the uncancellable case costs nothing.
func (sr *sharedRun) wait(id int) error {
	if sr.ctxDone != nil {
		select {
		case <-sr.ctxDone:
			return sr.ctx.Err()
		default:
		}
	}
	select {
	case <-sr.gates[id].ready:
		return nil
	default:
	}
	select {
	case <-sr.gates[id].ready:
		return nil
	case <-sr.abort:
		return errSharedAborted
	case <-sr.ctxDone:
		return sr.ctx.Err()
	}
}

// done marks task id complete, decrementing every successor's gate. A
// decrement to zero closes the successor's ready channel; together with the
// sequentially consistent atomics this hands the successor a happens-before
// edge over everything its predecessors wrote.
func (sr *sharedRun) done(id int) {
	for _, e := range sr.sch.Tasks[id].Outs {
		if sr.gates[e.Dst].remaining.Add(-1) == 0 {
			close(sr.gates[e.Dst].ready)
		}
	}
}

// FactorizeShared runs the supernodal LDLᵀ factorization on sch.P goroutine
// processors over ONE shared factor storage: the exact task vectors and
// dependency structure of the static schedule, executed zero-copy. The
// result equals FactorizeSeq to rounding and needs no gather step.
func FactorizeShared(a *sparse.SymMatrix, sch *sched.Schedule) (*Factors, error) {
	return FactorizeSharedCtx(context.Background(), a, sch, nil, StaticPivot{})
}

// FactorizeSharedCtx is FactorizeShared under a context, an optional
// execution-trace recorder and an optional static-pivot configuration.
// Cancelling ctx aborts the run: processors blocked on a task gate are woken
// immediately, compute-bound processors observe the cancellation between
// tasks, and ctx.Err() is returned once every worker goroutine has unwound
// (none leak). A nil recorder disables tracing at the cost of one pointer
// comparison per task; the zero StaticPivot disables pivoting.
func FactorizeSharedCtx(ctx context.Context, a *sparse.SymMatrix, sch *sched.Schedule, rec *trace.Recorder, sp StaticPivot) (*Factors, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tau, normMax := pivotThreshold(sp, a)
	sym := sch.Sym()
	sr := &sharedRun{
		sch:     sch,
		f:       NewFactors(sym),
		gates:   make([]taskGate, len(sch.Tasks)),
		locks:   make([]sync.Mutex, len(sch.Tasks)),
		invd:    make([][]float64, sym.NumCB()),
		rec:     rec,
		tau:     tau,
		ctx:     ctx,
		ctxDone: ctx.Done(),
		abort:   make(chan struct{}),
	}
	for i, d := range sch.InDegrees() {
		sr.gates[i].ready = make(chan struct{})
		sr.gates[i].remaining.Store(d)
		if d == 0 {
			close(sr.gates[i].ready)
		}
	}

	// Phase 1: every processor assembles the regions its tasks own (the same
	// ownership as the distributed runtime). The phase barrier orders all
	// assembly writes before any contribution.
	if err := sr.runPhase(func(p int) error { return sr.assemble(a, p) }); err != nil {
		return nil, err
	}
	// Phase 2: execute the K_p task vectors.
	if err := sr.runPhase(sr.execute); err != nil {
		return nil, err
	}
	// Phase 3: deferred panel scaling of 2D blocks (W = L·D until every BMOD
	// reader has finished; the phase barrier guarantees that).
	if err := sr.runPhase(sr.scale); err != nil {
		return nil, err
	}
	if sp.Enabled() {
		sr.f.Pivots = buildReport(sp, normMax, sr.perts, sr.f)
	}
	return sr.f, nil
}

// runPhase runs fn on every processor and waits; the phase boundary is a
// full barrier. The first error wins.
func (sr *sharedRun) runPhase(fn func(p int) error) error {
	P := sr.sch.P
	errs := make([]error, P)
	var wg sync.WaitGroup
	for p := 0; p < P; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			if err := fn(p); err != nil {
				errs[p] = err
				sr.fail()
			}
		}(p)
	}
	wg.Wait()
	var aborted error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, errSharedAborted) {
			aborted = err
			continue
		}
		return err
	}
	return aborted
}

func (sr *sharedRun) assemble(a *sparse.SymMatrix, p int) error {
	var start time.Duration
	if sr.rec != nil {
		start = sr.rec.Now()
	}
	for _, id := range sr.sch.ByProc[p] {
		t := &sr.sch.Tasks[id]
		var err error
		switch t.Type {
		case sched.Comp1D:
			err = sr.f.AssembleCell(a, t.Cell)
		case sched.Factor:
			err = sr.f.AssembleDiagRegion(a, t.Cell)
		case sched.BDiv:
			err = sr.f.AssembleBlockRegion(a, t.Cell, t.S)
		}
		if err != nil {
			return err
		}
	}
	if sr.rec != nil {
		sr.rec.Phase(p, trace.PhaseAssemble, start, sr.rec.Now())
	}
	return nil
}

func (sr *sharedRun) execute(p int) error {
	for _, id := range sr.sch.ByProc[p] {
		if err := sr.wait(id); err != nil {
			return err
		}
		t := &sr.sch.Tasks[id]
		// Interval starts after wait so it measures execution only; idle time
		// is the gap between consecutive task events on this processor.
		var start time.Duration
		if sr.rec != nil {
			start = sr.rec.Now()
		}
		var err error
		switch t.Type {
		case sched.Comp1D:
			err = sr.execComp1D(p, t)
		case sched.Factor:
			err = sr.execFactor(p, t)
		case sched.BDiv:
			err = sr.execBDiv(t)
		case sched.BMod:
			err = sr.execBMod(t)
		}
		if err != nil {
			return err
		}
		if sr.rec != nil {
			sr.rec.Task(p, id, t.Type, t.Cell, t.S, t.T, start, sr.rec.Now())
		}
		sr.done(id)
	}
	return nil
}

func (sr *sharedRun) scale(p int) error {
	var start time.Duration
	if sr.rec != nil {
		start = sr.rec.Now()
	}
	sym := sr.sch.Sym()
	for _, id := range sr.sch.ByProc[p] {
		t := &sr.sch.Tasks[id]
		if t.Type != sched.BDiv {
			continue
		}
		cb := &sym.CB[t.Cell]
		blk := cb.Blocks[t.S]
		off := sr.f.BlockOff[t.Cell][t.S]
		blas.ScaleColumns(blk.Rows(), cb.Width(), sr.f.Data[t.Cell][off:], sr.f.LD[t.Cell], sr.f.Diag(t.Cell))
	}
	if sr.rec != nil {
		sr.rec.Phase(p, trace.PhaseScale, start, sr.rec.Now())
	}
	return nil
}

// contribute computes the (s,t) outer-product contribution of cell k from
// W_s and W_t (both slices of the shared storage) and subtracts it directly
// from the destination region, under the destination task's lock. This is
// the zero-copy replacement for the AUB accumulate/pack/send/apply chain.
func (sr *sharedRun) contribute(k, s, t int, ws []float64, lda int, wt []float64, ldb int, invd []float64) error {
	sym := sr.sch.Sym()
	cb := &sym.CB[k]
	w := cb.Width()
	bs := &cb.Blocks[s]
	bt := &cb.Blocks[t]
	fcell := bt.Facing

	// Destination task (for the lock) and region offset.
	var dt int
	switch {
	case sr.sch.Comp1DOf[fcell] >= 0:
		dt = sr.sch.Comp1DOf[fcell]
	case bs.Facing == fcell:
		dt = sr.sch.FactorOf[fcell]
	default:
		b := sr.f.BlockContaining(fcell, bs.FirstRow, bs.LastRow)
		if b < 0 {
			return fmt.Errorf("solver: rows [%d,%d) of cb %d not in cb %d", bs.FirstRow, bs.LastRow, k, fcell)
		}
		dt = sr.sch.BDivOf[fcell][b]
	}
	_, off, err := targetOffset(sr.f, k, s, t)
	if err != nil {
		return err
	}
	dst := sr.f.Data[fcell][off:]
	ldc := sr.f.LD[fcell]

	sr.locks[dt].Lock()
	if s == t {
		blas.SyrkLowerNDT(bs.Rows(), w, ws, lda, invd, dst, ldc)
	} else {
		blas.GemmNDTAuto(bs.Rows(), bt.Rows(), w, ws, lda, invd, wt, ldb, dst, ldc)
	}
	sr.locks[dt].Unlock()
	return nil
}

// factorDiag runs the (possibly pivoted) diagonal factorization of cell k on
// processor p, logging substitutions into the shared pivot log and the trace.
func (sr *sharedRun) factorDiag(p, k int) error {
	ps, err := sr.f.FactorDiagStatic(k, sr.tau)
	if err != nil {
		return err
	}
	if len(ps) > 0 {
		sr.pivotMu.Lock()
		sr.perts = append(sr.perts, ps...)
		sr.pivotMu.Unlock()
		if sr.rec != nil {
			for _, pe := range ps {
				sr.rec.Pivot(p, pe.Column)
			}
		}
	}
	return nil
}

func (sr *sharedRun) execComp1D(p int, t *sched.Task) error {
	k := t.Cell
	// The gate admitted us, so every contribution into this cell has been
	// subtracted in place already; the cell is ready to factor.
	if err := sr.factorDiag(p, k); err != nil {
		return err
	}
	sr.f.SolvePanel(k)
	d := sr.f.Diag(k)
	invd := make([]float64, len(d))
	for i, v := range d {
		invd[i] = 1 / v
	}
	sym := sr.sch.Sym()
	cb := &sym.CB[k]
	ld := sr.f.LD[k]
	data := sr.f.Data[k]
	for ti := range cb.Blocks {
		for si := ti; si < len(cb.Blocks); si++ {
			if err := sr.contribute(k, si, ti,
				data[sr.f.BlockOff[k][si]:], ld,
				data[sr.f.BlockOff[k][ti]:], ld, invd); err != nil {
				return err
			}
		}
	}
	// All readers of this cell's W are within this task; scale immediately.
	sr.f.ScalePanel(k, d)
	return nil
}

func (sr *sharedRun) execFactor(p int, t *sched.Task) error {
	k := t.Cell
	if err := sr.factorDiag(p, k); err != nil {
		return err
	}
	// Publish 1/D for the BMOD tasks of this cell (they observe it through
	// the FACTOR → BDIV → BMOD gate chain). The diagonal block itself is
	// read in place by BDIV — no copy is ever taken.
	d := sr.f.Diag(k)
	invd := make([]float64, len(d))
	for i, v := range d {
		invd[i] = 1 / v
	}
	sr.invd[k] = invd
	return nil
}

func (sr *sharedRun) execBDiv(t *sched.Task) error {
	k := t.Cell
	cb := &sr.sch.Sym().CB[k]
	w := cb.Width()
	off := sr.f.BlockOff[k][t.S]
	// TRSM against the shared diagonal block, in place on the shared panel.
	blas.TrsmRightLTransUnit(cb.Blocks[t.S].Rows(), w, sr.f.Data[k], sr.f.LD[k], sr.f.Data[k][off:], sr.f.LD[k])
	return nil
}

func (sr *sharedRun) execBMod(t *sched.Task) error {
	k := t.Cell
	ld := sr.f.LD[k]
	ws := sr.f.Data[k][sr.f.BlockOff[k][t.S]:]
	wt := sr.f.Data[k][sr.f.BlockOff[k][t.T]:]
	return sr.contribute(k, t.S, t.T, ws, ld, wt, ld, sr.invd[k])
}
