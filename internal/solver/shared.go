package solver

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pastix-go/pastix/internal/blas"
	"github.com/pastix-go/pastix/internal/sched"
	"github.com/pastix-go/pastix/internal/sparse"
	"github.com/pastix-go/pastix/internal/trace"
)

// This file implements the shared-memory execution of the static schedule:
// the same per-processor K_p task vectors as FactorizePar, but over ONE
// shared Factors storage instead of mpsim message copies. AUBs, solved
// panels and diagonal blocks are never serialized or duplicated — a panel or
// diagonal read is a slice of the shared array.
//
// Contributions are not applied by their producer. Each outer-product update
// is enqueued as a (source cell, s, t) descriptor on its DESTINATION task,
// and the destination applies all of them at activation, sorted into the
// sequential right-looking order (source cell ascending, then t, then s).
// Because the update kernels accumulate into the destination in place, the
// floating-point result depends on application order; replaying the
// sequential order makes the factor BITWISE identical to FactorizeSeq — and
// to every other runtime that executes the same protocol, regardless of how
// tasks interleave (see the dynamic work-stealing runtime in dynamic.go,
// which reuses everything here except the driver loop). The price is that a
// region's updates execute on one processor instead of being spread over the
// producers; the message-passing runtime pays the same shape of cost when it
// adds received AUBs at the destination.
//
// Task ordering is enforced by per-task dependency counters
// (sched.InDegrees) with close-only ready channels. The message-passing
// runtime remains as the paper-faithful ablation baseline; see DESIGN.md for
// the contrast.

// errSharedAborted unblocks gate waiters after a peer failed; the peer's
// root-cause error is reported in preference to it.
var errSharedAborted = errors.New("solver: shared runtime aborted")

// taskGate is the completion signal of one task: remaining counts the
// incoming dependency edges not yet satisfied; ready is closed when the
// count reaches zero.
type taskGate struct {
	remaining atomic.Int32
	ready     chan struct{}
}

// contribRef identifies one deferred outer-product update: the (S,T) block
// pair of source cell Cell. The actual operands are read from the shared
// storage when the destination applies the update — by then the source panel
// holds exactly W = L·D (panel scaling is deferred to the scale phase) and
// sr.invd[Cell] is published, so the kernel computes bit for bit what the
// sequential code computes.
type contribRef struct {
	Cell, S, T int32
}

// pendList collects the contributions enqueued on one destination task. The
// mutex both serializes concurrent producers and hands the consumer a
// happens-before edge over everything each producer wrote before enqueueing
// (its solved panel, its published 1/D).
type pendList struct {
	mu   sync.Mutex
	refs []contribRef
}

// sharedRun is the state shared by all goroutine processors of one
// FactorizeShared (or FactorizeDynamic) execution.
type sharedRun struct {
	sch   *sched.Schedule
	f     *Factors        // the one shared factor storage (fully allocated)
	gates []taskGate      // per task (static driver only)
	pend  []pendList      // per task: deferred contributions into its region
	invd  [][]float64     // per cell: 1/D, published by the FACTOR/COMP1D task
	rec   *trace.Recorder // nil disables tracing
	tau   float64         // static-pivot threshold; 0 disables pivoting

	// Static-pivot substitutions are rare events on the factorization's
	// critical path of never, so a plain mutex-guarded log is fine; the
	// report sorts by column, erasing the nondeterministic arrival order.
	pivotMu sync.Mutex
	perts   []Perturbation

	ctx       context.Context
	ctxDone   <-chan struct{} // ctx.Done(); nil when uncancellable
	abort     chan struct{}   // closed on first error to unblock gate waiters
	abortOnce sync.Once
}

func (sr *sharedRun) fail() { sr.abortOnce.Do(func() { close(sr.abort) }) }

// newSharedRun builds the run state common to the static shared-memory
// driver and the dynamic work-stealing driver.
func newSharedRun(ctx context.Context, sch *sched.Schedule, rec *trace.Recorder, sp StaticPivot, a *sparse.SymMatrix) *sharedRun {
	tau, _ := pivotThreshold(sp, a)
	sym := sch.Sym()
	return &sharedRun{
		sch:     sch,
		f:       NewFactors(sym),
		pend:    make([]pendList, len(sch.Tasks)),
		invd:    make([][]float64, sym.NumCB()),
		rec:     rec,
		tau:     tau,
		ctx:     ctx,
		ctxDone: ctx.Done(),
		abort:   make(chan struct{}),
	}
}

// wait blocks until task id's gate opens (all dependencies satisfied), the
// run aborts, or the context is cancelled. A nil ctxDone channel blocks
// forever in select, so the uncancellable case costs nothing.
func (sr *sharedRun) wait(id int) error {
	if sr.ctxDone != nil {
		select {
		case <-sr.ctxDone:
			return sr.ctx.Err()
		default:
		}
	}
	select {
	case <-sr.gates[id].ready:
		return nil
	default:
	}
	select {
	case <-sr.gates[id].ready:
		return nil
	case <-sr.abort:
		return errSharedAborted
	case <-sr.ctxDone:
		return sr.ctx.Err()
	}
}

// done marks task id complete, decrementing every successor's gate. A
// decrement to zero closes the successor's ready channel; together with the
// sequentially consistent atomics this hands the successor a happens-before
// edge over everything its predecessors wrote.
func (sr *sharedRun) done(id int) {
	for _, e := range sr.sch.Tasks[id].Outs {
		if sr.gates[e.Dst].remaining.Add(-1) == 0 {
			close(sr.gates[e.Dst].ready)
		}
	}
}

// FactorizeShared runs the supernodal LDLᵀ factorization on sch.P goroutine
// processors over ONE shared factor storage: the exact task vectors and
// dependency structure of the static schedule, executed zero-copy. The
// result is bitwise identical to FactorizeSeq and needs no gather step.
func FactorizeShared(a *sparse.SymMatrix, sch *sched.Schedule) (*Factors, error) {
	return FactorizeSharedCtx(context.Background(), a, sch, nil, StaticPivot{})
}

// FactorizeSharedCtx is FactorizeShared under a context, an optional
// execution-trace recorder and an optional static-pivot configuration.
// Cancelling ctx aborts the run: processors blocked on a task gate are woken
// immediately, compute-bound processors observe the cancellation between
// tasks, and ctx.Err() is returned once every worker goroutine has unwound
// (none leak). A nil recorder disables tracing at the cost of one pointer
// comparison per task; the zero StaticPivot disables pivoting.
func FactorizeSharedCtx(ctx context.Context, a *sparse.SymMatrix, sch *sched.Schedule, rec *trace.Recorder, sp StaticPivot) (*Factors, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sr := newSharedRun(ctx, sch, rec, sp, a)
	sr.gates = make([]taskGate, len(sch.Tasks))
	for i, d := range sch.InDegrees() {
		sr.gates[i].ready = make(chan struct{})
		sr.gates[i].remaining.Store(d)
		if d == 0 {
			close(sr.gates[i].ready)
		}
	}

	// Phase 1: every processor assembles the regions its tasks own (the same
	// ownership as the distributed runtime). The phase barrier orders all
	// assembly writes before any contribution.
	if err := sr.runPhase(func(p int) error { return sr.assemble(a, p) }); err != nil {
		return nil, err
	}
	// Phase 2: execute the K_p task vectors.
	if err := sr.runPhase(sr.execute); err != nil {
		return nil, err
	}
	// Phase 3: deferred panel scaling (W = L·D until every deferred reader
	// has finished; the phase barrier guarantees that).
	if err := sr.runPhase(sr.scale); err != nil {
		return nil, err
	}
	sr.finishPivots(sp, a)
	return sr.f, nil
}

// finishPivots attaches the perturbation report after a successful run.
func (sr *sharedRun) finishPivots(sp StaticPivot, a *sparse.SymMatrix) {
	if sp.Enabled() {
		_, normMax := pivotThreshold(sp, a)
		sr.f.Pivots = buildReport(sp, normMax, sr.perts, sr.f)
	}
}

// runPhase runs fn on every processor and waits; the phase boundary is a
// full barrier. The first error wins.
func (sr *sharedRun) runPhase(fn func(p int) error) error {
	P := sr.sch.P
	errs := make([]error, P)
	var wg sync.WaitGroup
	for p := 0; p < P; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			if err := fn(p); err != nil {
				errs[p] = err
				sr.fail()
			}
		}(p)
	}
	wg.Wait()
	var aborted error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, errSharedAborted) {
			aborted = err
			continue
		}
		return err
	}
	return aborted
}

func (sr *sharedRun) assemble(a *sparse.SymMatrix, p int) error {
	var start time.Duration
	if sr.rec != nil {
		start = sr.rec.Now()
	}
	for _, id := range sr.sch.ByProc[p] {
		t := &sr.sch.Tasks[id]
		var err error
		switch t.Type {
		case sched.Comp1D:
			err = sr.f.AssembleCell(a, t.Cell)
		case sched.Factor:
			err = sr.f.AssembleDiagRegion(a, t.Cell)
		case sched.BDiv:
			err = sr.f.AssembleBlockRegion(a, t.Cell, t.S)
		}
		if err != nil {
			return err
		}
	}
	if sr.rec != nil {
		sr.rec.Phase(p, trace.PhaseAssemble, start, sr.rec.Now())
	}
	return nil
}

// execute is the static driver: run this processor's K_p vector in schedule
// order, waiting on each task's gate.
func (sr *sharedRun) execute(p int) error {
	for _, id := range sr.sch.ByProc[p] {
		if err := sr.wait(id); err != nil {
			return err
		}
		if err := sr.execTask(p, id); err != nil {
			return err
		}
		sr.done(id)
	}
	return nil
}

// execTask runs one schedule task on (virtual) processor p: apply the
// deferred contributions targeting its region, then the task's own kernel
// work. It is shared by the static shared-memory driver and the dynamic
// work-stealing driver — the callers differ only in how they decide that the
// task's dependencies are satisfied.
func (sr *sharedRun) execTask(p, id int) error {
	t := &sr.sch.Tasks[id]
	// Interval starts after the dependency wait so it measures execution
	// only; idle time is the gap between consecutive task events.
	var start time.Duration
	if sr.rec != nil {
		start = sr.rec.Now()
	}
	if err := sr.applyPending(id); err != nil {
		return err
	}
	var err error
	switch t.Type {
	case sched.Comp1D:
		err = sr.execComp1D(p, t)
	case sched.Factor:
		err = sr.execFactor(p, t)
	case sched.BDiv:
		err = sr.execBDiv(t)
	case sched.BMod:
		err = sr.execBMod(t)
	}
	if err != nil {
		return err
	}
	if sr.rec != nil {
		sr.rec.Task(p, id, t.Type, t.Cell, t.S, t.T, start, sr.rec.Now())
	}
	return nil
}

// scale is phase 3: convert every panel from W = L·D to L. BDIV panels and
// COMP1D panels alike are deferred here so that deferred contribution
// readers always see W.
func (sr *sharedRun) scale(p int) error {
	var start time.Duration
	if sr.rec != nil {
		start = sr.rec.Now()
	}
	sym := sr.sch.Sym()
	for _, id := range sr.sch.ByProc[p] {
		t := &sr.sch.Tasks[id]
		switch t.Type {
		case sched.Comp1D:
			sr.f.ScalePanel(t.Cell, sr.f.Diag(t.Cell))
		case sched.BDiv:
			cb := &sym.CB[t.Cell]
			blk := cb.Blocks[t.S]
			off := sr.f.BlockOff[t.Cell][t.S]
			blas.ScaleColumns(blk.Rows(), cb.Width(), sr.f.Data[t.Cell][off:], sr.f.LD[t.Cell], sr.f.Diag(t.Cell))
		}
	}
	if sr.rec != nil {
		sr.rec.Phase(p, trace.PhaseScale, start, sr.rec.Now())
	}
	return nil
}

// destTask returns the task whose region the (s,t) contribution of cell k
// lands in — the task the contribution descriptor is enqueued on.
func (sr *sharedRun) destTask(k, s, t int) (int, error) {
	sym := sr.sch.Sym()
	cb := &sym.CB[k]
	bs := &cb.Blocks[s]
	bt := &cb.Blocks[t]
	fcell := bt.Facing
	switch {
	case sr.sch.Comp1DOf[fcell] >= 0:
		return sr.sch.Comp1DOf[fcell], nil
	case bs.Facing == fcell:
		return sr.sch.FactorOf[fcell], nil
	default:
		b := sr.f.BlockContaining(fcell, bs.FirstRow, bs.LastRow)
		if b < 0 {
			return 0, fmt.Errorf("solver: rows [%d,%d) of cb %d not in cb %d", bs.FirstRow, bs.LastRow, k, fcell)
		}
		return sr.sch.BDivOf[fcell][b], nil
	}
}

// enqueue defers the (s,t) outer-product contribution of cell k onto its
// destination task. The source panel and 1/D must already be published; the
// destination reads them when it activates.
func (sr *sharedRun) enqueue(k, s, t int) error {
	dt, err := sr.destTask(k, s, t)
	if err != nil {
		return err
	}
	pl := &sr.pend[dt]
	pl.mu.Lock()
	pl.refs = append(pl.refs, contribRef{Cell: int32(k), S: int32(s), T: int32(t)})
	pl.mu.Unlock()
	return nil
}

// applyPending applies every contribution enqueued on task id, in the
// CANONICAL order — source cell ascending, then t, then s: exactly the order
// the sequential right-looking loop produces them in. Each kernel runs
// straight into the destination region of the shared storage, so the
// accumulated bits equal the sequential ones. By the activation protocol all
// producers have completed, so the list is final and the region is owned
// exclusively by this task — no locks are held during the kernels.
func (sr *sharedRun) applyPending(id int) error {
	pl := &sr.pend[id]
	pl.mu.Lock()
	refs := pl.refs
	pl.refs = nil
	pl.mu.Unlock()
	if len(refs) == 0 {
		return nil
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Cell != refs[j].Cell {
			return refs[i].Cell < refs[j].Cell
		}
		if refs[i].T != refs[j].T {
			return refs[i].T < refs[j].T
		}
		return refs[i].S < refs[j].S
	})
	sym := sr.sch.Sym()
	for _, r := range refs {
		k, s, t := int(r.Cell), int(r.S), int(r.T)
		cb := &sym.CB[k]
		w := cb.Width()
		bs := &cb.Blocks[s]
		bt := &cb.Blocks[t]
		fcell, off, err := targetOffset(sr.f, k, s, t)
		if err != nil {
			return err
		}
		ld := sr.f.LD[k]
		ws := sr.f.Data[k][sr.f.BlockOff[k][s]:]
		wt := sr.f.Data[k][sr.f.BlockOff[k][t]:]
		dst := sr.f.Data[fcell][off:]
		ldc := sr.f.LD[fcell]
		if s == t {
			blas.SyrkLowerNDT(bs.Rows(), w, ws, ld, sr.invd[k], dst, ldc)
		} else {
			blas.GemmNDTAuto(bs.Rows(), bt.Rows(), w, ws, ld, sr.invd[k], wt, ld, dst, ldc)
		}
	}
	return nil
}

// factorDiag runs the (possibly pivoted) diagonal factorization of cell k on
// processor p, logging substitutions into the shared pivot log and the trace.
func (sr *sharedRun) factorDiag(p, k int) error {
	ps, err := sr.f.FactorDiagStatic(k, sr.tau)
	if err != nil {
		return err
	}
	if len(ps) > 0 {
		sr.pivotMu.Lock()
		sr.perts = append(sr.perts, ps...)
		sr.pivotMu.Unlock()
		if sr.rec != nil {
			for _, pe := range ps {
				sr.rec.Pivot(p, pe.Column)
			}
		}
	}
	return nil
}

func (sr *sharedRun) execComp1D(p int, t *sched.Task) error {
	k := t.Cell
	// applyPending subtracted every contribution into this cell; it is ready
	// to factor.
	if err := sr.factorDiag(p, k); err != nil {
		return err
	}
	sr.f.SolvePanel(k)
	d := sr.f.Diag(k)
	invd := make([]float64, len(d))
	for i, v := range d {
		invd[i] = 1 / v
	}
	// Publish 1/D: the destinations of this cell's contributions read it when
	// they activate. The panel stays W = L·D until the scale phase.
	sr.invd[k] = invd
	cb := &sr.sch.Sym().CB[k]
	for ti := range cb.Blocks {
		for si := ti; si < len(cb.Blocks); si++ {
			if err := sr.enqueue(k, si, ti); err != nil {
				return err
			}
		}
	}
	return nil
}

func (sr *sharedRun) execFactor(p int, t *sched.Task) error {
	k := t.Cell
	if err := sr.factorDiag(p, k); err != nil {
		return err
	}
	// Publish 1/D for the BMOD tasks of this cell (they observe it through
	// the FACTOR → BDIV → BMOD activation chain). The diagonal block itself
	// is read in place by BDIV — no copy is ever taken.
	d := sr.f.Diag(k)
	invd := make([]float64, len(d))
	for i, v := range d {
		invd[i] = 1 / v
	}
	sr.invd[k] = invd
	return nil
}

func (sr *sharedRun) execBDiv(t *sched.Task) error {
	k := t.Cell
	cb := &sr.sch.Sym().CB[k]
	w := cb.Width()
	off := sr.f.BlockOff[k][t.S]
	// TRSM against the shared diagonal block, in place on the shared panel.
	blas.TrsmRightLTransUnit(cb.Blocks[t.S].Rows(), w, sr.f.Data[k], sr.f.LD[k], sr.f.Data[k][off:], sr.f.LD[k])
	return nil
}

func (sr *sharedRun) execBMod(t *sched.Task) error {
	return sr.enqueue(t.Cell, t.S, t.T)
}
