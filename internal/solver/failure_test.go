package solver

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/pastix-go/pastix/internal/gen"
	"github.com/pastix-go/pastix/internal/sparse"
)

// singularMatrix couples vertices like a grid but zeroes one diagonal entry
// whose column has no sub-diagonal couplings, guaranteeing an exactly-zero
// pivot whatever the ordering: vertex `loner` is fully decoupled.
func singularMatrix(nx, ny, loner int) *sparse.SymMatrix {
	b := sparse.NewBuilder(nx * ny)
	idx := func(i, j int) int { return i + j*nx }
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			v := idx(i, j)
			if v == loner {
				b.Add(v, v, 0) // isolated, zero diagonal → zero pivot
				continue
			}
			b.Add(v, v, 4.5)
			for _, u := range [][2]int{{i + 1, j}, {i, j + 1}} {
				if u[0] < nx && u[1] < ny && idx(u[0], u[1]) != loner {
					b.Add(v, idx(u[0], u[1]), -1)
				}
			}
		}
	}
	return b.Build()
}

func TestZeroPivotErrorSequential(t *testing.T) {
	a := singularMatrix(8, 8, 27)
	an := analyzeFor(t, a, 1)
	if _, err := an.Factorize(); err == nil {
		t.Fatal("expected zero-pivot error")
	} else if !strings.Contains(err.Error(), "pivot") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

// The parallel runtime must fail cleanly (no deadlock, no panic) and report
// the root cause, not the secondary closed-mailbox errors.
func TestZeroPivotErrorParallel(t *testing.T) {
	a := singularMatrix(10, 10, 33)
	for _, P := range []int{2, 4, 8} {
		an := analyzeFor(t, a, P)
		_, err := FactorizePar(an.A, an.Sched)
		if err == nil {
			t.Fatalf("P=%d: expected error", P)
		}
		if !strings.Contains(err.Error(), "pivot") {
			t.Fatalf("P=%d: root cause lost: %v", P, err)
		}
	}
}

func TestZeroPivotErrorMultifrontalStyle(t *testing.T) {
	// The fan-both path must fail cleanly too.
	a := singularMatrix(9, 9, 40)
	an := analyzeFor(t, a, 4)
	if _, err := FactorizeParOpts(an.A, an.Sched, ParOptions{MaxAUBBytes: 64}); err == nil {
		t.Fatal("expected error in fan-both mode")
	}
}

// The shared-memory runtime must also fail cleanly on a zero pivot: no
// deadlock, no goroutine leak, and the typed root cause preserved through
// the dependency-graph scheduler's shutdown.
func TestZeroPivotErrorSharedMemory(t *testing.T) {
	a := singularMatrix(10, 10, 33)
	an := analyzeFor(t, a, 4)
	before := runtime.NumGoroutine()
	_, err := FactorizeSharedCtx(context.Background(), an.A, an.Sched, nil, StaticPivot{})
	if err == nil {
		t.Fatal("expected zero-pivot error")
	}
	if !errors.Is(err, ErrNotSPD) {
		t.Fatalf("root cause lost: %v", err)
	}
	var zpe *ZeroPivotError
	if !errors.As(err, &zpe) {
		t.Fatalf("no ZeroPivotError in chain: %v", err)
	}
	// All worker goroutines must have unwound; allow a grace period for the
	// scheduler's teardown to complete.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(time.Millisecond)
	}
}

// Stress: many problem/processor/blocking combinations, parallel factor
// must always match sequential. Skipped with -short.
func TestStressParallelEqualsSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	for _, name := range []string{"OILPAN", "BMWCRA1", "SHIPSEC8"} {
		p, err := gen.Generate(name, 0.02)
		if err != nil {
			t.Fatal(err)
		}
		refAn := analyzeFor(t, p.A, 1)
		ref, err := FactorizeSeq(refAn.A, refAn.Sym)
		if err != nil {
			t.Fatal(err)
		}
		for _, P := range []int{3, 5, 7, 16} {
			an := analyzeFor(t, p.A, P)
			got, err := FactorizePar(an.A, an.Sched)
			if err != nil {
				t.Fatalf("%s P=%d: %v", name, P, err)
			}
			factorsClose(t, ref, got, 1e-10)
		}
	}
}
