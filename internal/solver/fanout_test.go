package solver

import (
	"testing"

	"github.com/pastix-go/pastix/internal/gen"
	"github.com/pastix-go/pastix/internal/order"
	"github.com/pastix-go/pastix/internal/part"
	"github.com/pastix-go/pastix/internal/sched"
	"github.com/pastix-go/pastix/internal/sparse"
)

func analyze1D(t *testing.T, a *sparse.SymMatrix, P int) *Analysis {
	t.Helper()
	an, err := Analyze(a, Options{
		P:        P,
		Ordering: order.Options{Method: order.ScotchLike, LeafSize: 30},
		Part:     part.Options{BlockSize: 16, Ratio2D: 1 << 30}, // 1D only
	})
	if err != nil {
		t.Fatal(err)
	}
	return an
}

func TestFanOutMatchesSequential(t *testing.T) {
	a := laplacian2D(18, 18)
	ref, err := FactorizeSeq(analyze1D(t, a, 1).A, analyze1D(t, a, 1).Sym)
	if err != nil {
		t.Fatal(err)
	}
	for _, P := range []int{2, 4, 8} {
		an := analyze1D(t, a, P)
		got, st, err := FactorizeFanOut(an.A, an.Sched)
		if err != nil {
			t.Fatalf("P=%d: %v", P, err)
		}
		factorsClose(t, ref, got, 1e-11)
		if st.Messages != st.PredictedMessages {
			t.Fatalf("P=%d: fan-out sent %d messages, predicted %d", P, st.Messages, st.PredictedMessages)
		}
	}
}

// The classical fan-in-vs-fan-out trade-off (Ashcraft-Eisenstat-Liu, the
// paper's refs [3,4]): with a subtree-per-processor mapping, fan-in
// aggregation compresses the raw cross-processor update volume by a large
// factor and sends FEWER messages than fan-out's panel broadcasts — the
// decisive metric on a high-latency network like the paper's SP2 switch.
// (Total bytes can go either way: fan-out ships compact factor panels but
// recomputes updates on every consumer.)
func TestFanInVsFanOutTradeoffs(t *testing.T) {
	p, err := gen.Generate("BMWCRA1", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	an := analyze1D(t, p.A, 2)
	var rawBytes int64
	for i := range an.Sched.Tasks {
		for _, e := range an.Sched.Tasks[i].Outs {
			if e.Kind == sched.EdgeAUB && an.Sched.Tasks[e.Dst].Proc != an.Sched.Tasks[i].Proc {
				rawBytes += int64(e.Elems) * 8
			}
		}
	}
	_, fanIn, err := FactorizeParStats(an.A, an.Sched, ParOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, fanOut, err := FactorizeFanOut(an.A, an.Sched)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("raw updates: %d bytes; fan-in: %d msgs %d bytes; fan-out: %d msgs %d bytes",
		rawBytes, fanIn.Messages, fanIn.Bytes, fanOut.Messages, fanOut.Bytes)
	if fanIn.Messages >= fanOut.Messages {
		t.Fatalf("fan-in messages (%d) not below fan-out (%d)", fanIn.Messages, fanOut.Messages)
	}
	if fanIn.Bytes*2 >= rawBytes {
		t.Fatalf("aggregation compresses raw volume %d only to %d (< 2x)", rawBytes, fanIn.Bytes)
	}
}

func TestFanOutSolves(t *testing.T) {
	prob, err := gen.Generate("QUER", 0.03)
	if err != nil {
		t.Fatal(err)
	}
	an := analyze1D(t, prob.A, 4)
	f, _, err := FactorizeFanOut(an.A, an.Sched)
	if err != nil {
		t.Fatal(err)
	}
	x, b := gen.RHSForSolution(prob.A)
	got := an.SolveOriginal(f, b)
	for i := range x {
		if d := got[i] - x[i]; d > 1e-8 || d < -1e-8 {
			t.Fatalf("x[%d]=%g want %g", i, got[i], x[i])
		}
	}
}
