package solver

import (
	"fmt"

	"github.com/pastix-go/pastix/internal/blas"
	"github.com/pastix-go/pastix/internal/sparse"
	"github.com/pastix-go/pastix/internal/symbolic"
)

// ZFactors is the complex-symmetric counterpart of Factors: the LDLᵀ factor
// of a complex symmetric matrix in the same block layout (unit-lower complex
// L, complex diagonal D). The analysis (ordering, symbolic structure,
// schedule) is shared with the real path: it is computed on the sparsity
// pattern and is value-type independent.
type ZFactors struct {
	Sym      *symbolic.Symbol
	Data     [][]complex128
	LD       []int
	BlockOff [][]int
}

// NewZFactors allocates zeroed complex storage for every column block.
func NewZFactors(sym *symbolic.Symbol) *ZFactors {
	f := NewZFactorsLazy(sym)
	for k := range sym.CB {
		f.EnsureCell(k)
	}
	return f
}

// NewZFactorsLazy prepares the shape tables without allocating cell data.
func NewZFactorsLazy(sym *symbolic.Symbol) *ZFactors {
	shape := NewFactorsLazy(sym) // shapes are value-type independent
	return &ZFactors{
		Sym:      sym,
		Data:     make([][]complex128, sym.NumCB()),
		LD:       shape.LD,
		BlockOff: shape.BlockOff,
	}
}

// EnsureCell allocates cell k's array if absent.
func (f *ZFactors) EnsureCell(k int) {
	if f.Data[k] == nil {
		f.Data[k] = make([]complex128, f.LD[k]*f.Sym.CB[k].Width())
	}
}

// LocateRow maps a global row to the local row offset in cell k (-1 when
// outside the structure).
func (f *ZFactors) LocateRow(k, row int) int {
	return (&Factors{Sym: f.Sym, LD: f.LD, BlockOff: f.BlockOff}).LocateRow(k, row)
}

// AssembleCell scatters the complex matrix entries of cell k.
func (f *ZFactors) AssembleCell(a *sparse.ZSymMatrix, k int) error {
	f.EnsureCell(k)
	cb := &f.Sym.CB[k]
	ld := f.LD[k]
	data := f.Data[k]
	shape := &Factors{Sym: f.Sym, LD: f.LD, BlockOff: f.BlockOff}
	for j := cb.Cols[0]; j < cb.Cols[1]; j++ {
		lc := j - cb.Cols[0]
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			i := a.RowIdx[p]
			lr := shape.LocateRow(k, i)
			if lr < 0 {
				return fmt.Errorf("solver: complex entry (%d,%d) outside structure of cb %d", i, j, k)
			}
			data[lr+lc*ld] = a.Val[p]
		}
	}
	return nil
}

// Diag returns a copy of cell k's diagonal D.
func (f *ZFactors) Diag(k int) []complex128 {
	w := f.Sym.CB[k].Width()
	d := make([]complex128, w)
	ld := f.LD[k]
	for j := 0; j < w; j++ {
		d[j] = f.Data[k][j+j*ld]
	}
	return d
}

// FactorizeZSeq runs the sequential complex symmetric supernodal LDLᵀ
// factorization on the structure of an existing analysis. az must have
// exactly the sparsity pattern the analysis was computed from (use
// ZSymMatrix.Pattern for Analyze), already permuted by an.Perm.
func FactorizeZSeq(az *sparse.ZSymMatrix, sym *symbolic.Symbol) (*ZFactors, error) {
	f := NewZFactors(sym)
	for k := range sym.CB {
		if err := f.AssembleCell(az, k); err != nil {
			return nil, err
		}
	}
	for k := range sym.CB {
		cb := &sym.CB[k]
		w := cb.Width()
		ld := f.LD[k]
		if err := blas.ZLDLT(w, f.Data[k], ld); err != nil {
			return nil, wrapPivot(cb.Cols[0], k, err)
		}
		r := cb.RowsBelow()
		if r > 0 {
			blas.ZTrsmRightLTransUnit(r, w, f.Data[k], ld, f.Data[k][w:], ld)
		}
		d := f.Diag(k)
		invd := make([]complex128, len(d))
		for i, v := range d {
			invd[i] = 1 / v
		}
		if err := f.applyCellUpdates(k, invd); err != nil {
			return nil, err
		}
		if r > 0 {
			blas.ZScaleColumns(r, w, f.Data[k][w:], ld, d)
		}
	}
	return f, nil
}

func (f *ZFactors) applyCellUpdates(k int, invd []complex128) error {
	sym := f.Sym
	cb := &sym.CB[k]
	w := cb.Width()
	ld := f.LD[k]
	data := f.Data[k]
	shape := &Factors{Sym: sym, LD: f.LD, BlockOff: f.BlockOff}
	for t := range cb.Blocks {
		rt := cb.Blocks[t].Rows()
		wt := data[f.BlockOff[k][t]:]
		for s := t; s < len(cb.Blocks); s++ {
			rs := cb.Blocks[s].Rows()
			fcell, off, err := targetOffset(shape, k, s, t)
			if err != nil {
				return err
			}
			f.EnsureCell(fcell)
			dst := f.Data[fcell][off:]
			ldf := f.LD[fcell]
			ws := data[f.BlockOff[k][s]:]
			if s == t {
				blas.ZSyrkLowerNDT(rs, w, ws, ld, invd, dst, ldf)
			} else {
				blas.ZGemmNDT(rs, rt, w, ws, ld, invd, wt, ld, dst, ldf)
			}
		}
	}
	return nil
}

// Solve solves A·x = b (permuted ordering) with the complex factor.
func (f *ZFactors) Solve(b []complex128) []complex128 {
	sym := f.Sym
	x := append([]complex128(nil), b...)
	for k := range sym.CB {
		cb := &sym.CB[k]
		w := cb.Width()
		ld := f.LD[k]
		xk := x[cb.Cols[0]:cb.Cols[1]]
		blas.ZTrsvLowerUnit(w, f.Data[k], ld, xk)
		for bi := range cb.Blocks {
			blk := &cb.Blocks[bi]
			blas.ZGemvN(blk.Rows(), w, f.Data[k][f.BlockOff[k][bi]:], ld,
				xk, x[blk.FirstRow:blk.LastRow])
		}
	}
	for k := range sym.CB {
		cb := &sym.CB[k]
		ld := f.LD[k]
		for j := 0; j < cb.Width(); j++ {
			x[cb.Cols[0]+j] /= f.Data[k][j+j*ld]
		}
	}
	for k := len(sym.CB) - 1; k >= 0; k-- {
		cb := &sym.CB[k]
		w := cb.Width()
		ld := f.LD[k]
		xk := x[cb.Cols[0]:cb.Cols[1]]
		for bi := range cb.Blocks {
			blk := &cb.Blocks[bi]
			blas.ZGemvT(blk.Rows(), w, f.Data[k][f.BlockOff[k][bi]:], ld,
				x[blk.FirstRow:blk.LastRow], xk)
		}
		blas.ZTrsvLowerTransUnit(w, f.Data[k], ld, xk)
	}
	return x
}
