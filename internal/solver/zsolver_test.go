package solver

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"github.com/pastix-go/pastix/internal/sparse"
)

// zLaplacian builds a complex symmetric diagonally dominant matrix on a 2D
// grid: a Helmholtz-like shifted Laplacian (the paper's motivating class).
func zLaplacian(nx, ny int) *sparse.ZSymMatrix {
	b := sparse.NewZBuilder(nx * ny)
	idx := func(i, j int) int { return i + j*nx }
	rng := rand.New(rand.NewSource(81))
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			v := idx(i, j)
			b.Add(v, v, complex(4.5, 1.5+rng.Float64()))
			if i+1 < nx {
				b.Add(v, idx(i+1, j), complex(-1, 0.2*rng.Float64()))
			}
			if j+1 < ny {
				b.Add(v, idx(i, j+1), complex(-1, -0.2*rng.Float64()))
			}
		}
	}
	return b.Build()
}

func zAnalyze(t *testing.T, az *sparse.ZSymMatrix, P int) (*Analysis, *sparse.ZSymMatrix) {
	t.Helper()
	an := analyzeFor(t, az.Pattern(), P)
	return an, az.Permute(an.Perm)
}

func TestZSeqFactorSolve(t *testing.T) {
	az := zLaplacian(14, 14)
	an, paz := zAnalyze(t, az, 1)
	zf, err := FactorizeZSeq(paz, an.Sym)
	if err != nil {
		t.Fatal(err)
	}
	// Manufactured complex solution.
	n := az.N
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(1+float64(i%5), float64(i%3)-1)
	}
	b := make([]complex128, n)
	paz.MatVec(x, b)
	got := zf.Solve(b)
	for i := range x {
		if cmplx.Abs(got[i]-x[i]) > 1e-9*(1+cmplx.Abs(x[i])) {
			t.Fatalf("x[%d]=%v want %v", i, got[i], x[i])
		}
	}
	if r := sparse.ZResidual(paz, got, b); r > 1e-12 {
		t.Fatalf("residual %g", r)
	}
}

func TestZSeqReconstruction(t *testing.T) {
	az := zLaplacian(6, 6)
	an, paz := zAnalyze(t, az, 1)
	zf, err := FactorizeZSeq(paz, an.Sym)
	if err != nil {
		t.Fatal(err)
	}
	n := az.N
	L := make([]complex128, n*n)
	D := make([]complex128, n)
	for i := 0; i < n; i++ {
		L[i+i*n] = 1
	}
	sym := an.Sym
	for k := range sym.CB {
		cb := &sym.CB[k]
		ld := zf.LD[k]
		for j := 0; j < cb.Width(); j++ {
			gc := cb.Cols[0] + j
			D[gc] = zf.Data[k][j+j*ld]
			for i := j + 1; i < cb.Width(); i++ {
				L[(cb.Cols[0]+i)+gc*n] = zf.Data[k][i+j*ld]
			}
			for bi := range cb.Blocks {
				blk := &cb.Blocks[bi]
				off := zf.BlockOff[k][bi]
				for r := 0; r < blk.Rows(); r++ {
					L[(blk.FirstRow+r)+gc*n] = zf.Data[k][off+r+j*ld]
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			var s complex128
			for kk := 0; kk <= j; kk++ {
				s += L[i+kk*n] * D[kk] * L[j+kk*n]
			}
			want := paz.At(i, j)
			if cmplx.Abs(s-want) > 1e-9*(1+cmplx.Abs(want)) {
				t.Fatalf("reconstruction (%d,%d): %v want %v", i, j, s, want)
			}
		}
	}
}

func TestZParallelMatchesSequential(t *testing.T) {
	az := zLaplacian(18, 18)
	for _, P := range []int{2, 4, 8} {
		an, paz := zAnalyze(t, az, P)
		ref, err := FactorizeZSeq(paz, an.Sym)
		if err != nil {
			t.Fatal(err)
		}
		got, err := FactorizeZPar(paz, an.Sched)
		if err != nil {
			t.Fatalf("P=%d: %v", P, err)
		}
		for k := range ref.Data {
			for i := range ref.Data[k] {
				if cmplx.Abs(ref.Data[k][i]-got.Data[k][i]) > 1e-11*(1+cmplx.Abs(ref.Data[k][i])) {
					t.Fatalf("P=%d cell %d elem %d: %v vs %v", P, k, i, ref.Data[k][i], got.Data[k][i])
				}
			}
		}
	}
}

func TestZParallelSolveEndToEnd(t *testing.T) {
	az := zLaplacian(16, 16)
	an, paz := zAnalyze(t, az, 4)
	zf, err := FactorizeZPar(paz, an.Sched)
	if err != nil {
		t.Fatal(err)
	}
	n := az.N
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(float64(i%7), 1)
	}
	b := make([]complex128, n)
	paz.MatVec(x, b)
	got := zf.Solve(b)
	for i := range x {
		if cmplx.Abs(got[i]-x[i]) > 1e-8 {
			t.Fatalf("x[%d]=%v want %v", i, got[i], x[i])
		}
	}
}

func TestZPatternMatchesStructure(t *testing.T) {
	az := zLaplacian(5, 5)
	p := az.Pattern()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.N != az.N || p.NNZ() != az.NNZ() {
		t.Fatal("pattern shape mismatch")
	}
	if err := az.Validate(); err != nil {
		t.Fatal(err)
	}
}
