package solver

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/pastix-go/pastix/internal/gen"
	"github.com/pastix-go/pastix/internal/sched"
	"github.com/pastix-go/pastix/internal/sparse"
)

// randomSPD builds a random sparse strictly diagonally dominant (hence SPD)
// matrix: n vertices, about deg random neighbours each, seeded — the
// metamorphic corpus the shared/message runtimes are compared on.
func randomSPD(n, deg int, seed int64) *sparse.SymMatrix {
	rng := rand.New(rand.NewSource(seed))
	b := sparse.NewBuilder(n)
	rowAbs := make([]float64, n)
	for i := 0; i < n; i++ {
		for d := 0; d < deg; d++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			v := -(0.25 + rng.Float64())
			b.Add(i, j, v)
			rowAbs[i] += -v
			rowAbs[j] += -v
		}
	}
	for i := 0; i < n; i++ {
		b.Add(i, i, rowAbs[i]+1+rng.Float64())
	}
	return b.Build()
}

// sharedCase is one entry of the metamorphic corpus.
type sharedCase struct {
	name string
	a    *sparse.SymMatrix
}

func sharedCorpus(t *testing.T) []sharedCase {
	t.Helper()
	cases := []sharedCase{
		{"laplace2d-15x15", laplacian2D(15, 15)},
		{"laplace2d-23x9", laplacian2D(23, 9)},
		{"poisson3d-7", gen.Laplacian3D(7, 7, 7)},
	}
	for _, seed := range []int64{1, 42, 20260805} {
		cases = append(cases, sharedCase{fmt.Sprintf("random-seed%d", seed), randomSPD(220, 4, seed)})
	}
	for _, name := range []string{"THREAD", "QUER"} {
		p, err := gen.Generate(name, 0.02)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, sharedCase{name, p.A})
	}
	return cases
}

// TestSharedMetamorphicEquality is the metamorphic oracle of the runtime
// family: for every corpus matrix and every processor count, the zero-copy
// shared runtime, the message-passing fan-in runtime and the sequential
// reference must produce the same factor to rounding and solves with the
// same residual quality.
func TestSharedMetamorphicEquality(t *testing.T) {
	for _, tc := range sharedCorpus(t) {
		t.Run(tc.name, func(t *testing.T) {
			seqAn := analyzeFor(t, tc.a, 1)
			ref, err := FactorizeSeq(seqAn.A, seqAn.Sym)
			if err != nil {
				t.Fatal(err)
			}
			for _, P := range []int{1, 2, 4, 7} {
				an := analyzeFor(t, tc.a, P)
				par, err := FactorizePar(an.A, an.Sched)
				if err != nil {
					t.Fatalf("P=%d par: %v", P, err)
				}
				sh, err := FactorizeShared(an.A, an.Sched)
				if err != nil {
					t.Fatalf("P=%d shared: %v", P, err)
				}
				factorsClose(t, ref, par, 1e-11)
				factorsClose(t, ref, sh, 1e-11)

				// Solve residuals: sequential, message-passing and shared
				// solves on the shared factor all recover x_ref.
				x, b := gen.RHSForSolution(tc.a)
				pb := make([]float64, len(b))
				for newI, old := range an.Perm {
					pb[newI] = b[old]
				}
				for mode, px := range map[string][]float64{
					"seq":    sh.Solve(pb),
					"shared": mustSolve(t, SolveShared, an.Sched, sh, pb),
					"mpsim":  mustSolve(t, SolvePar, an.Sched, sh, pb),
				} {
					maxErr := 0.0
					for newI, old := range an.Perm {
						if e := math.Abs(px[newI] - x[old]); e > maxErr {
							maxErr = e
						}
					}
					if maxErr > 1e-8 {
						t.Fatalf("P=%d %s solve: max |x-x_ref| = %g", P, mode, maxErr)
					}
					if r := sparse.Residual(an.A, px, pb); r > 1e-12 {
						t.Fatalf("P=%d %s solve: residual %g", P, mode, r)
					}
				}
			}
		})
	}
}

func mustSolve(t *testing.T, solve func(*sched.Schedule, *Factors, []float64) ([]float64, error), sch *sched.Schedule, f *Factors, b []float64) []float64 {
	t.Helper()
	x, err := solve(sch, f, b)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

// TestSharedViaParOptions covers the ParOptions.SharedMemory dispatch.
func TestSharedViaParOptions(t *testing.T) {
	a := laplacian2D(18, 18)
	an := analyzeFor(t, a, 4)
	ref, err := FactorizeSeq(an.A, an.Sym)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := FactorizeParStats(an.A, an.Sched, ParOptions{SharedMemory: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages != 0 || stats.Bytes != 0 {
		t.Fatalf("shared runtime reported traffic: %+v", stats)
	}
	factorsClose(t, ref, got, 1e-11)
	got2, err := an.FactorizeOpts(ParOptions{SharedMemory: true})
	if err != nil {
		t.Fatal(err)
	}
	factorsClose(t, ref, got2, 1e-11)
}

// TestSharedExercises2DTasks makes sure the corpus is not dodging the 2D
// code paths (FACTOR/BDIV/BMOD with cross-processor gates).
func TestSharedExercises2DTasks(t *testing.T) {
	a := laplacian2D(24, 24)
	an := analyzeFor(t, a, 8)
	st := an.Sched.ComputeStats()
	if st.NBMod == 0 || st.NBDiv == 0 || st.NFactor == 0 {
		t.Fatalf("schedule has no 2D tasks (stats %+v)", st)
	}
	ref, err := FactorizeSeq(an.A, an.Sym)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FactorizeShared(an.A, an.Sched)
	if err != nil {
		t.Fatal(err)
	}
	factorsClose(t, ref, got, 1e-11)
}

// TestSharedFactorizationError propagates a numerical failure (zero pivot)
// instead of deadlocking the gate graph.
func TestSharedFactorizationError(t *testing.T) {
	a := singularMatrix(10, 10, 33)
	for _, P := range []int{1, 2, 4, 8} {
		an := analyzeFor(t, a, P)
		if _, err := FactorizeShared(an.A, an.Sched); err == nil {
			t.Fatalf("P=%d: expected pivot failure, got success", P)
		}
	}
}

// TestSharedStress shakes out ordering-dependent bugs: many repetitions of
// the full shared factorize+solve on a small grid with varying processor
// counts. Run it under -race (the tier-2 target) to make the interleavings
// observable; -short keeps only a few iterations for tier-1.
func TestSharedStress(t *testing.T) {
	iters := 300
	if testing.Short() {
		iters = 10
	}
	a := laplacian2D(9, 9)
	x, b := gen.RHSForSolution(a)
	type prep struct {
		an *Analysis
		pb []float64
		px []float64 // expected permuted solution
	}
	var preps []prep
	for _, P := range []int{2, 3, 5, 8} {
		an := analyzeFor(t, a, P)
		pb := make([]float64, len(b))
		px := make([]float64, len(x))
		for newI, old := range an.Perm {
			pb[newI] = b[old]
			px[newI] = x[old]
		}
		preps = append(preps, prep{an, pb, px})
	}
	ref, err := FactorizeSeq(preps[0].an.A, preps[0].an.Sym)
	if err != nil {
		t.Fatal(err)
	}
	for it := 0; it < iters; it++ {
		pr := preps[it%len(preps)]
		f, err := FactorizeShared(pr.an.A, pr.an.Sched)
		if err != nil {
			t.Fatalf("iter %d P=%d: %v", it, pr.an.Sched.P, err)
		}
		factorsClose(t, ref, f, 1e-11)
		got, err := SolveShared(pr.an.Sched, f, pr.pb)
		if err != nil {
			t.Fatalf("iter %d P=%d solve: %v", it, pr.an.Sched.P, err)
		}
		for i := range got {
			if math.Abs(got[i]-pr.px[i]) > 1e-9 {
				t.Fatalf("iter %d P=%d: x[%d]=%g want %g", it, pr.an.Sched.P, i, got[i], pr.px[i])
			}
		}
	}
}
