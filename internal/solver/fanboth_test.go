package solver

import (
	"math"
	"testing"

	"github.com/pastix-go/pastix/internal/gen"
)

// Fan-both mode (partial AUB aggregation under a memory bound) must produce
// the same factor as pure fan-in — more messages, same numbers.
func TestFanBothMatchesFanIn(t *testing.T) {
	a := laplacian2D(20, 20)
	an := analyzeFor(t, a, 4)
	ref, err := FactorizePar(an.A, an.Sched)
	if err != nil {
		t.Fatal(err)
	}
	for _, capBytes := range []int64{1, 1 << 10, 1 << 16} {
		got, err := FactorizeParOpts(an.A, an.Sched, ParOptions{MaxAUBBytes: capBytes})
		if err != nil {
			t.Fatalf("cap=%d: %v", capBytes, err)
		}
		for k := range ref.Data {
			for i := range ref.Data[k] {
				if math.Abs(ref.Data[k][i]-got.Data[k][i]) > 1e-11*(1+math.Abs(ref.Data[k][i])) {
					t.Fatalf("cap=%d cell %d elem %d: %g vs %g",
						capBytes, k, i, ref.Data[k][i], got.Data[k][i])
				}
			}
		}
	}
}

func TestFanBothSolvesCorrectly(t *testing.T) {
	p, err := gen.Generate("QUER", 0.03)
	if err != nil {
		t.Fatal(err)
	}
	an := analyzeFor(t, p.A, 8)
	f, err := FactorizeParOpts(an.A, an.Sched, ParOptions{MaxAUBBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	x, b := gen.RHSForSolution(p.A)
	got := an.SolveOriginal(f, b)
	for i := range x {
		if math.Abs(got[i]-x[i]) > 1e-8 {
			t.Fatalf("x[%d]=%g want %g", i, got[i], x[i])
		}
	}
}
