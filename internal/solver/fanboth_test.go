package solver

import (
	"math"
	"testing"

	"github.com/pastix-go/pastix/internal/gen"
)

// Fan-both mode (partial AUB aggregation under a memory bound) must produce
// the same factor as pure fan-in — more messages, same numbers.
func TestFanBothMatchesFanIn(t *testing.T) {
	a := laplacian2D(20, 20)
	an := analyzeFor(t, a, 4)
	ref, err := FactorizePar(an.A, an.Sched)
	if err != nil {
		t.Fatal(err)
	}
	for _, capBytes := range []int64{1, 1 << 10, 1 << 16} {
		got, err := FactorizeParOpts(an.A, an.Sched, ParOptions{MaxAUBBytes: capBytes})
		if err != nil {
			t.Fatalf("cap=%d: %v", capBytes, err)
		}
		for k := range ref.Data {
			for i := range ref.Data[k] {
				if math.Abs(ref.Data[k][i]-got.Data[k][i]) > 1e-11*(1+math.Abs(ref.Data[k][i])) {
					t.Fatalf("cap=%d cell %d elem %d: %g vs %g",
						capBytes, k, i, ref.Data[k][i], got.Data[k][i])
				}
			}
		}
	}
}

// TestFanBothPeakAUBMonotone drives the fan-both memory bound through a
// ladder of caps, from unbounded down to a pathological 1-byte bound. At
// every step the factor must stay identical to the sequential reference and
// the observed aggregation-buffer high-water mark (CommStats.PeakAUBBytes)
// must be non-increasing: paying messages can only buy memory back, never
// cost more. The run is repeated to pin down determinism of the spill
// sequence.
func TestFanBothPeakAUBMonotone(t *testing.T) {
	a := laplacian2D(22, 22)
	an := analyzeFor(t, a, 6)
	ref, err := FactorizeSeq(an.A, an.Sym)
	if err != nil {
		t.Fatal(err)
	}
	bounds := []int64{0, 1 << 20, 1 << 14, 1 << 11, 1 << 8, 64, 8, 1}
	peaks := make([]int64, len(bounds))
	for i, bd := range bounds {
		f, stats, err := FactorizeParStats(an.A, an.Sched, ParOptions{MaxAUBBytes: bd})
		if err != nil {
			t.Fatalf("bound %d: %v", bd, err)
		}
		factorsClose(t, ref, f, 1e-11)
		peaks[i] = stats.PeakAUBBytes
		if i > 0 && peaks[i] > peaks[i-1] {
			t.Fatalf("peak AUB grew when bound shrank: bound %d → peak %d, bound %d → peak %d",
				bounds[i-1], peaks[i-1], bd, peaks[i])
		}
	}
	if peaks[0] == 0 {
		t.Fatal("unbounded run held no AUBs; pick a bigger problem or more procs")
	}
	if last := peaks[len(peaks)-1]; last >= peaks[0] {
		t.Fatalf("pathological bound did not reduce peak: %d vs unbounded %d", last, peaks[0])
	}
	// Determinism: the same bound must reproduce the same peak.
	for i, bd := range bounds {
		_, stats, err := FactorizeParStats(an.A, an.Sched, ParOptions{MaxAUBBytes: bd})
		if err != nil {
			t.Fatalf("bound %d (rerun): %v", bd, err)
		}
		if stats.PeakAUBBytes != peaks[i] {
			t.Fatalf("bound %d: peak not deterministic: %d then %d", bd, peaks[i], stats.PeakAUBBytes)
		}
	}
}

func TestFanBothSolvesCorrectly(t *testing.T) {
	p, err := gen.Generate("QUER", 0.03)
	if err != nil {
		t.Fatal(err)
	}
	an := analyzeFor(t, p.A, 8)
	f, err := FactorizeParOpts(an.A, an.Sched, ParOptions{MaxAUBBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	x, b := gen.RHSForSolution(p.A)
	got := an.SolveOriginal(f, b)
	for i := range x {
		if math.Abs(got[i]-x[i]) > 1e-8 {
			t.Fatalf("x[%d]=%g want %g", i, got[i], x[i])
		}
	}
}
