package solver

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/pastix-go/pastix/internal/faults"
	"github.com/pastix-go/pastix/internal/mpsim"
)

// chaosPlan is the soak configuration: every wire fault class armed, one
// scheduled crash and one supervisor-broken stall, with tight reliability
// timeouts so recovery happens within test time.
func chaosPlan(seed int64) *faults.Plan {
	return &faults.Plan{
		Seed:     seed,
		Drop:     0.15,
		Dup:      0.15,
		Delay:    0.20,
		MaxDelay: 300 * time.Microsecond,
		CrashAtStep: map[int]int{
			1: 2,
			3: 0,
		},
		StallAtStep: map[int]faults.Stall{
			2: {Step: 1, Duration: 50 * time.Millisecond},
		},
		Reliability: mpsim.Reliability{
			RTO:          200 * time.Microsecond,
			StallTimeout: 3 * time.Millisecond,
			Tick:         100 * time.Microsecond,
		},
	}
}

func bitwiseEqualFactors(t *testing.T, ref, got *Factors, seed int64) {
	t.Helper()
	for k := range ref.Data {
		if len(ref.Data[k]) != len(got.Data[k]) {
			t.Fatalf("seed %d: cell %d sizes differ", seed, k)
		}
		for i := range ref.Data[k] {
			if ref.Data[k][i] != got.Data[k][i] {
				t.Fatalf("seed %d: cell %d elem %d: %x vs %x (not bit-identical)",
					seed, k, i, ref.Data[k][i], got.Data[k][i])
			}
		}
	}
}

// The acceptance soak: across many seeds with drops, duplicates, delays, two
// scheduled crashes and a supervisor-broken stall, factorization and solve
// must complete and produce results bit-for-bit identical to the fault-free
// run, with the recovery machinery demonstrably exercised.
func TestChaosSoakFactorSolve(t *testing.T) {
	a := laplacian2D(14, 14)
	an := analyzeFor(t, a, 4)
	ref, _, err := FactorizeParStats(an.A, an.Sched, ParOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.N)
	for i := range b {
		b[i] = 1 + float64(i%7)
	}
	refX, err := SolvePar(an.Sched, ref, b)
	if err != nil {
		t.Fatal(err)
	}

	seeds := 20
	if testing.Short() {
		seeds = 5
	}
	var restarts, recoveries int64
	for s := 0; s < seeds; s++ {
		seed := int64(s*7919 + 1)
		plan := chaosPlan(seed)
		f, cs, err := FactorizeParStats(an.A, an.Sched, ParOptions{Faults: plan})
		if err != nil {
			t.Fatalf("seed %d: factorization under chaos failed: %v", seed, err)
		}
		bitwiseEqualFactors(t, ref, f, seed)
		x, err := SolveParOpts(context.Background(), an.Sched, f, b, SolveOptions{Faults: chaosPlan(seed)})
		if err != nil {
			t.Fatalf("seed %d: solve under chaos failed: %v", seed, err)
		}
		for i := range x {
			if x[i] != refX[i] {
				t.Fatalf("seed %d: x[%d] = %x, fault-free %x (not bit-identical)", seed, i, x[i], refX[i])
			}
		}
		restarts += cs.Restarts
		recoveries += cs.Resends + cs.Deduped
	}
	if restarts == 0 {
		t.Fatal("no worker restart was exercised across the soak")
	}
	if recoveries == 0 {
		t.Fatal("no resend/dedup activity was exercised across the soak")
	}
}

// Fan-both spills must survive chaos too: partial AUBs from one sender must
// be applied before its final message despite reordering on the wire.
func TestChaosFanBoth(t *testing.T) {
	a := laplacian2D(12, 12)
	an := analyzeFor(t, a, 4)
	ref, _, err := FactorizeParStats(an.A, an.Sched, ParOptions{MaxAUBBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 5; s++ {
		seed := int64(s*104729 + 13)
		f, _, err := FactorizeParStats(an.A, an.Sched, ParOptions{MaxAUBBytes: 512, Faults: chaosPlan(seed)})
		if err != nil {
			t.Fatalf("seed %d: fan-both under chaos failed: %v", seed, err)
		}
		bitwiseEqualFactors(t, ref, f, seed)
	}
}

// A crash schedule works at P = 1 too (the injector forces the
// message-passing runtime past the sequential shortcut).
func TestChaosCrashSingleProc(t *testing.T) {
	a := laplacian2D(8, 8)
	an := analyzeFor(t, a, 1)
	ref, err := FactorizeSeq(an.A, an.Sym)
	if err != nil {
		t.Fatal(err)
	}
	plan := &faults.Plan{Seed: 5, CrashAtStep: map[int]int{0: 1}}
	f, cs, err := FactorizeParStats(an.A, an.Sched, ParOptions{Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if cs.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", cs.Restarts)
	}
	factorsClose(t, ref, f, 1e-12)
}

// Past-recovery degradation: with everything dropped and a tiny retry
// budget, the run must abort with the typed budget error carrying
// per-processor progress — not deadlock and not panic.
func TestChaosFaultBudget(t *testing.T) {
	a := laplacian2D(10, 10)
	an := analyzeFor(t, a, 4)
	plan := &faults.Plan{
		Seed: 9,
		Drop: 0.999,
		Reliability: mpsim.Reliability{
			RTO: 100 * time.Microsecond, MaxRTO: 200 * time.Microsecond,
			RetryLimit: 2, Tick: 50 * time.Microsecond,
		},
	}
	_, _, err := FactorizeParStats(an.A, an.Sched, ParOptions{Faults: plan})
	if err == nil {
		t.Fatal("expected fault-budget exhaustion")
	}
	if !errors.Is(err, ErrFaultBudget) {
		t.Fatalf("not matchable as ErrFaultBudget: %v", err)
	}
	var fbe *FaultBudgetError
	if !errors.As(err, &fbe) {
		t.Fatalf("no FaultBudgetError in chain: %v", err)
	}
	if len(fbe.Progress) != 4 {
		t.Fatalf("progress for %d procs, want 4", len(fbe.Progress))
	}
	total := 0
	for p, pr := range fbe.Progress {
		if pr.Done < 0 || pr.Done > pr.Total {
			t.Fatalf("proc %d: nonsense progress %+v", p, pr)
		}
		total += pr.Total
	}
	if total == 0 {
		t.Fatal("no tasks reported in progress")
	}
}

// SharedMemory and fault injection are mutually exclusive.
func TestChaosRejectsSharedMemory(t *testing.T) {
	a := laplacian2D(6, 6)
	an := analyzeFor(t, a, 2)
	plan := &faults.Plan{Drop: 0.1}
	if _, _, err := FactorizeParStats(an.A, an.Sched, ParOptions{SharedMemory: true, Faults: plan}); err == nil {
		t.Fatal("SharedMemory+Faults accepted")
	}
}

// With no injection, repeated runs are bit-identical (the canonical
// contribution ordering makes even the fault-free runtime deterministic).
func TestFaultFreeBitwiseDeterministic(t *testing.T) {
	a := laplacian2D(12, 12)
	an := analyzeFor(t, a, 4)
	f1, err := FactorizePar(an.A, an.Sched)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := FactorizePar(an.A, an.Sched)
	if err != nil {
		t.Fatal(err)
	}
	bitwiseEqualFactors(t, f1, f2, -1)
	b := make([]float64, a.N)
	for i := range b {
		b[i] = float64(i%5) - 2
	}
	x1, err := SolvePar(an.Sched, f1, b)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := SolvePar(an.Sched, f2, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("fault-free solve not deterministic at %d", i)
		}
	}
}
