package solver

import (
	"context"
	"errors"
	"math"
	"testing"

	"github.com/pastix-go/pastix/internal/gen"
	"github.com/pastix-go/pastix/internal/lowrank"
	"github.com/pastix-go/pastix/internal/sparse"
)

// compressFixture factorizes a 3-D Poisson problem (large enough to have
// admissible off-diagonal blocks) and returns the analysis, factor and the
// permuted rhs.
func compressFixture(t *testing.T, P int) (*Analysis, *Factors, []float64, *sparse.SymMatrix) {
	t.Helper()
	a := gen.Laplacian3D(10, 10, 10)
	an := analyzeFor(t, a, P)
	f, err := an.FactorizeMatrixOptsCtx(context.Background(), an.A, ParOptions{Runtime: RuntimeShared})
	if err != nil {
		t.Fatal(err)
	}
	_, b := gen.RHSForSolution(a)
	pb := make([]float64, len(b))
	for newI, old := range an.Perm {
		pb[newI] = b[old]
	}
	return an, f, pb, an.A
}

// TestCompressReducesMemory: the pass must actually shrink the factor, free
// the dense arrays, and report consistent byte accounting.
func TestCompressReducesMemory(t *testing.T) {
	_, f, _, _ := compressFixture(t, 4)
	denseNNZ := f.NNZ()
	st := f.Compress(lowrank.Options{Tol: 1e-8, MinBlockSize: 8})
	if !f.Compressed() {
		t.Fatal("factor not marked compressed")
	}
	if st.BlocksCompressed == 0 {
		t.Fatal("no block compressed on a 10³ Poisson factor")
	}
	if st.DenseBytes != 8*denseNNZ {
		t.Errorf("DenseBytes = %d, want 8·NNZ = %d", st.DenseBytes, 8*denseNNZ)
	}
	if st.CompressedBytes != 8*f.NNZ() {
		t.Errorf("CompressedBytes = %d, resident bytes %d", st.CompressedBytes, 8*f.NNZ())
	}
	if st.CompressedBytes >= st.DenseBytes {
		t.Errorf("no memory reduction: %d -> %d bytes", st.DenseBytes, st.CompressedBytes)
	}
	if math.Abs(st.Ratio-float64(st.DenseBytes)/float64(st.CompressedBytes)) > 1e-12 {
		t.Errorf("Ratio %g inconsistent", st.Ratio)
	}
	for k := range f.Data {
		if f.Data[k] != nil {
			t.Fatalf("dense cell %d not released", k)
		}
	}
	if got := f.Compression(); got == nil || *got != st {
		t.Errorf("Compression() = %+v, want %+v", got, st)
	}
}

// TestCompressedSolveAccuracy: a compressed solve approximates the dense
// solve to roughly the compression tolerance (measured through the backward
// error, which is what the contract promises after refinement).
func TestCompressedSolveAccuracy(t *testing.T) {
	_, f, pb, pa := compressFixture(t, 4)
	xDense := f.Solve(pb)
	f.Compress(lowrank.Options{Tol: 1e-8, MinBlockSize: 8})
	xComp := f.Solve(pb)
	var diff, norm float64
	for i := range xDense {
		diff = math.Max(diff, math.Abs(xDense[i]-xComp[i]))
		norm = math.Max(norm, math.Abs(xDense[i]))
	}
	if diff > 1e-4*norm {
		t.Errorf("compressed solve diverged: max diff %g vs norm %g", diff, norm)
	}
	if be := sparse.Residual(pa, xComp, pb); be > 1e-6 {
		t.Errorf("compressed backward error %g", be)
	}
}

// TestCompressedSolveConformance: the level-set engine on a compressed
// factor (any workers, static and dynamic dispatch, single and multi RHS
// columns) is bitwise-identical to the compressed sequential Solve.
func TestCompressedSolveConformance(t *testing.T) {
	an, f, pb, _ := compressFixture(t, 4)
	f.Compress(lowrank.Options{Tol: 1e-8, MinBlockSize: 8})
	ref := f.Solve(pb)
	for _, workers := range []int{1, 2, 4} {
		pl := BuildSolvePlan(an.Sym, an.SolveDAG(), workers, 0)
		for _, dyn := range []bool{false, true} {
			x, err := SolveLevelCtx(context.Background(), pl, f, pb, LevelOptions{Dynamic: dyn})
			if err != nil {
				t.Fatalf("workers=%d dyn=%v: %v", workers, dyn, err)
			}
			for i := range ref {
				if x[i] != ref[i] {
					t.Fatalf("workers=%d dyn=%v: x[%d] = %x, seq %x", workers, dyn, i, x[i], ref[i])
				}
			}
		}
	}
	// Multi-RHS: each column of the panel solve equals the single-RHS solve.
	n := len(pb)
	nrhs := 3
	panel := make([]float64, n*nrhs)
	for c := 0; c < nrhs; c++ {
		for i := 0; i < n; i++ {
			panel[c*n+i] = pb[i] * float64(c+1)
		}
	}
	pl := BuildSolvePlan(an.Sym, an.SolveDAG(), 4, 0)
	xp, err := SolveLevelCtx(context.Background(), pl, f, panel, LevelOptions{NRHS: nrhs})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < nrhs; c++ {
		col := f.Solve(panel[c*n : (c+1)*n])
		for i := 0; i < n; i++ {
			if xp[c*n+i] != col[i] {
				t.Fatalf("panel col %d row %d: %x vs %x", c, i, xp[c*n+i], col[i])
			}
		}
	}
}

// TestCompressedRefineRecovers: solve-then-RefineAdaptive on a compressed
// factor pulls the backward error below the refinement tolerance (the
// accuracy contract of lossy factors).
func TestCompressedRefineRecovers(t *testing.T) {
	_, f, pb, pa := compressFixture(t, 4)
	f.Compress(lowrank.Options{Tol: 1e-8, MinBlockSize: 8})
	x := f.Solve(pb)
	refined, st := f.RefineAdaptive(pa, pb, x, DefaultRefineTol, 0)
	if st.BackwardError > DefaultRefineTol {
		t.Fatalf("refined backward error %g > RefineTol %g after %d iterations",
			st.BackwardError, DefaultRefineTol, st.Iterations)
	}
	if be := sparse.Residual(pa, refined, pb); be > DefaultRefineTol {
		t.Fatalf("recomputed backward error %g disagrees with stats", be)
	}
}

// TestCompressedRejectsDenseOnlyRuntimes: the message-passing and shared
// schedule-driven solves read the dense arrays and must refuse a compressed
// factor with ErrCompressed.
func TestCompressedRejectsDenseOnlyRuntimes(t *testing.T) {
	an, f, pb, _ := compressFixture(t, 2)
	f.Compress(lowrank.Options{Tol: 1e-8, MinBlockSize: 8})
	if _, err := SolveParManyOpts(context.Background(), an.Sched, f, pb, 1, SolveOptions{}); !errors.Is(err, ErrCompressed) {
		t.Errorf("SolveParManyOpts err = %v, want ErrCompressed", err)
	}
	if _, err := SolveShared(an.Sched, f, pb); !errors.Is(err, ErrCompressed) {
		t.Errorf("SolveShared err = %v, want ErrCompressed", err)
	}
}

// TestCompressDisabledAndIdempotent: zero options are a no-op (the factor
// stays dense, same arrays), and a second Compress returns the same stats
// without re-compressing.
func TestCompressDisabledAndIdempotent(t *testing.T) {
	_, f, _, _ := compressFixture(t, 1)
	data0 := f.Data[0]
	if st := f.Compress(lowrank.Options{}); st != (CompressionStats{}) || f.Compressed() {
		t.Fatal("disabled options compressed the factor")
	}
	if &f.Data[0][0] != &data0[0] {
		t.Fatal("disabled Compress touched the dense arrays")
	}
	st1 := f.Compress(lowrank.Options{Tol: 1e-8, MinBlockSize: 8})
	st2 := f.Compress(lowrank.Options{Tol: 1e-4, MinBlockSize: 8})
	if st1 != st2 {
		t.Fatalf("re-Compress changed stats: %+v vs %+v", st1, st2)
	}
}
