package solver

import (
	"fmt"

	"github.com/pastix-go/pastix/internal/lowrank"
	"github.com/pastix-go/pastix/internal/symbolic"
)

// This file is the factor persistence boundary: ExportPayload lifts the
// numerical content of a Factors — and nothing else — into a FactorPayload
// the store codec can serialize, and ImportFactors rebuilds a Factors from
// one against a Symbol. The shape tables (LD, BlockOff) are NOT persisted:
// they are a pure function of the Symbol (NewFactorsLazy), which itself is a
// pure function of (pattern, Options) through the deterministic analysis
// pipeline. Persisting only the numerical payload keeps the on-disk format
// small and makes a restored factor bitwise-identical to the original by
// construction: the values are copied, not recomputed.

// FactorPayload is the serializable numerical content of a Factors: exactly
// one of the dense cells or the BLR-compressed cells, plus the static-pivot
// report. It carries no shape information beyond what the values imply; the
// importing side validates every length against its Symbol.
type FactorPayload struct {
	// Cells are the dense per-column-block arrays (Data), nil when the factor
	// is BLR-compressed.
	Cells [][]float64
	// LRCells are the compressed per-column-block cells, nil when dense.
	LRCells []LRCellPayload
	// Comp is the compression accounting; non-nil exactly when LRCells is.
	Comp *CompressionStats
	// Pivots is the static-pivoting report; nil when pivoting was disabled.
	Pivots *PerturbationReport
}

// LRCellPayload mirrors lrCell for serialization: the packed diagonal block,
// the concatenated packed dense off-diagonal blocks, and per off-diagonal
// block either an offset into Dense (Off[bi] >= 0) or a low-rank form
// (Off[bi] < 0, LR[bi] != nil).
type LRCellPayload struct {
	Diag  []float64
	Dense []float64
	Off   []int32
	LR    []*lowrank.LRBlock
}

// Compressed reports whether the payload carries the BLR form.
func (p *FactorPayload) Compressed() bool { return p.LRCells != nil }

// ExportPayload returns the factor's numerical content for persistence. The
// returned payload aliases the factor's storage — the factor is immutable
// once factorization (and any compression pass) has finished, and the caller
// only reads the payload to serialize it.
func (f *Factors) ExportPayload() *FactorPayload {
	p := &FactorPayload{Pivots: f.Pivots}
	if f.lrCells != nil {
		p.LRCells = make([]LRCellPayload, len(f.lrCells))
		for k := range f.lrCells {
			c := &f.lrCells[k]
			p.LRCells[k] = LRCellPayload{Diag: c.diag, Dense: c.dense, Off: c.off, LR: c.lr}
		}
		if f.comp != nil {
			st := *f.comp
			p.Comp = &st
		}
		return p
	}
	p.Cells = f.Data
	return p
}

// ImportFactors rebuilds a Factors from a payload against sym, validating
// every array length against the symbolic structure so a payload from a
// different (or corrupted) factorization is rejected instead of producing
// out-of-bounds solves. The payload's slices are adopted, not copied: the
// caller (the store codec, which decodes into fresh slices) must not reuse
// them.
func ImportFactors(sym *symbolic.Symbol, p *FactorPayload) (*Factors, error) {
	if sym == nil || p == nil {
		return nil, fmt.Errorf("solver: import: nil symbol or payload")
	}
	f := NewFactorsLazy(sym)
	ncb := sym.NumCB()
	switch {
	case p.LRCells != nil:
		if len(p.LRCells) != ncb {
			return nil, fmt.Errorf("solver: import: %d compressed cells, symbol has %d column blocks", len(p.LRCells), ncb)
		}
		cells := make([]lrCell, ncb)
		for k := 0; k < ncb; k++ {
			cb := &sym.CB[k]
			w := cb.Width()
			nb := len(cb.Blocks)
			pc := &p.LRCells[k]
			if len(pc.Diag) != w*w {
				return nil, fmt.Errorf("solver: import: cell %d diag length %d, want %d", k, len(pc.Diag), w*w)
			}
			if len(pc.Off) != nb || len(pc.LR) != nb {
				return nil, fmt.Errorf("solver: import: cell %d has %d/%d block entries, want %d", k, len(pc.Off), len(pc.LR), nb)
			}
			for bi := 0; bi < nb; bi++ {
				rows := cb.Blocks[bi].Rows()
				if o := pc.Off[bi]; o >= 0 {
					if pc.LR[bi] != nil {
						return nil, fmt.Errorf("solver: import: cell %d block %d is both dense and low-rank", k, bi)
					}
					if int(o)+rows*w > len(pc.Dense) {
						return nil, fmt.Errorf("solver: import: cell %d block %d dense range [%d,%d) exceeds %d", k, bi, o, int(o)+rows*w, len(pc.Dense))
					}
				} else {
					lb := pc.LR[bi]
					if lb == nil {
						return nil, fmt.Errorf("solver: import: cell %d block %d has neither dense nor low-rank form", k, bi)
					}
					if lb.Rows != rows || lb.Cols != w || lb.Rank < 0 ||
						len(lb.U) != lb.Rank*lb.Rows || len(lb.V) != lb.Rank*lb.Cols {
						return nil, fmt.Errorf("solver: import: cell %d block %d low-rank shape %dx%d rank %d (|U|=%d,|V|=%d) does not match %dx%d",
							k, bi, lb.Rows, lb.Cols, lb.Rank, len(lb.U), len(lb.V), rows, w)
					}
				}
			}
			cells[k] = lrCell{diag: pc.Diag, dense: pc.Dense, off: pc.Off, lr: pc.LR}
		}
		f.lrCells = cells
		if p.Comp != nil {
			st := *p.Comp
			f.comp = &st
		} else {
			// Rebuild the accounting so Compression() stays meaningful.
			st := CompressionStats{CompressedBytes: 8 * f.nnzOf(cells)}
			f.comp = &st
		}
	default:
		if len(p.Cells) != ncb {
			return nil, fmt.Errorf("solver: import: %d dense cells, symbol has %d column blocks", len(p.Cells), ncb)
		}
		for k := 0; k < ncb; k++ {
			want := f.LD[k] * sym.CB[k].Width()
			if len(p.Cells[k]) != want {
				return nil, fmt.Errorf("solver: import: cell %d length %d, want %d", k, len(p.Cells[k]), want)
			}
		}
		f.Data = p.Cells
	}
	f.Pivots = p.Pivots
	return f, nil
}
