// Package solver is the PaStiX core: it assembles the block factor storage,
// runs the LDLᵀ factorization — sequentially as a reference, or in parallel
// with the paper's supernodal fan-in algorithm driven entirely by the static
// schedule (Fig. 1) — and performs the triangular solves.
package solver

import (
	"fmt"
	"sort"
	"sync"

	"github.com/pastix-go/pastix/internal/blas"
	"github.com/pastix-go/pastix/internal/sparse"
	"github.com/pastix-go/pastix/internal/symbolic"
)

// Factors holds the block factor L and diagonal D. Each column block k is a
// column-major dense array of LD[k] rows × Width(k) columns: rows [0,w) are
// the diagonal block (strictly-lower part = unit-lower L, diagonal = D), and
// each off-diagonal block b occupies rows [BlockOff[k][b],
// BlockOff[k][b]+rows(b)).
type Factors struct {
	Sym      *symbolic.Symbol
	Data     [][]float64
	LD       []int
	BlockOff [][]int
	// Pivots is the static-pivoting report of the factorization that produced
	// this factor; nil when pivoting was disabled. Present (with an empty
	// Perturbed list) whenever pivoting was enabled, even if no pivot needed
	// substitution.
	Pivots *PerturbationReport

	// lrCells is the block low-rank compressed form (compress.go), built by
	// Compress as a post-factorization pass. While nil the factor is dense and
	// Data holds the values; once set, Data is released and every solve path
	// reads the compressed cells instead. comp carries the byte accounting.
	lrCells []lrCell
	comp    *CompressionStats

	// Packed solve panels for the level-set engine (levelsolve.go), built
	// lazily once the factor values are final. Guarded by packMu; must not be
	// warmed before the factorization completes. Compress invalidates the
	// pack so the next solve re-packs from (aliases) the compressed cells.
	packMu sync.Mutex
	pack   *solvePack
}

// NewFactors allocates zeroed storage for every column block of sym.
func NewFactors(sym *symbolic.Symbol) *Factors {
	f := NewFactorsLazy(sym)
	for k := range sym.CB {
		f.EnsureCell(k)
	}
	return f
}

// NewFactorsLazy prepares the shape tables without allocating cell data;
// parallel processors allocate only the cells they own parts of.
func NewFactorsLazy(sym *symbolic.Symbol) *Factors {
	ncb := sym.NumCB()
	f := &Factors{
		Sym:      sym,
		Data:     make([][]float64, ncb),
		LD:       make([]int, ncb),
		BlockOff: make([][]int, ncb),
	}
	for k := range sym.CB {
		cb := &sym.CB[k]
		w := cb.Width()
		off := make([]int, len(cb.Blocks))
		pos := w
		for b := range cb.Blocks {
			off[b] = pos
			pos += cb.Blocks[b].Rows()
		}
		f.LD[k] = pos
		f.BlockOff[k] = off
	}
	return f
}

// EnsureCell allocates cell k's array if absent.
func (f *Factors) EnsureCell(k int) {
	if f.Data[k] == nil {
		f.Data[k] = make([]float64, f.LD[k]*f.Sym.CB[k].Width())
	}
}

// LocateRow maps a global row index to the local row offset inside cell k's
// array, or -1 when the row is not in k's structure.
func (f *Factors) LocateRow(k, row int) int {
	cb := &f.Sym.CB[k]
	if row >= cb.Cols[0] && row < cb.Cols[1] {
		return row - cb.Cols[0]
	}
	blocks := cb.Blocks
	i := sort.Search(len(blocks), func(b int) bool { return blocks[b].LastRow > row })
	if i < len(blocks) && blocks[i].FirstRow <= row {
		return f.BlockOff[k][i] + row - blocks[i].FirstRow
	}
	return -1
}

// BlockContaining returns the index of the off-diagonal block of cell k
// containing rows [lo,hi), or -1.
func (f *Factors) BlockContaining(k, lo, hi int) int {
	blocks := f.Sym.CB[k].Blocks
	i := sort.Search(len(blocks), func(b int) bool { return blocks[b].LastRow > lo })
	if i < len(blocks) && blocks[i].FirstRow <= lo && blocks[i].LastRow >= hi {
		return i
	}
	return -1
}

// AssembleCell scatters the entries of the permuted matrix a belonging to
// cell k into the cell's array. Rows outside the symbolic structure are an
// error (the structure must cover the matrix).
func (f *Factors) AssembleCell(a *sparse.SymMatrix, k int) error {
	f.EnsureCell(k)
	cb := &f.Sym.CB[k]
	ld := f.LD[k]
	data := f.Data[k]
	for j := cb.Cols[0]; j < cb.Cols[1]; j++ {
		lc := j - cb.Cols[0]
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			i := a.RowIdx[p]
			lr := f.LocateRow(k, i)
			if lr < 0 {
				return fmt.Errorf("solver: entry (%d,%d) outside symbolic structure of cb %d", i, j, k)
			}
			data[lr+lc*ld] = a.Val[p]
		}
	}
	return nil
}

// AssembleDiagRegion scatters only the diagonal-block entries of cell k
// (used by the processor owning FACTOR(k) in 2D distribution).
func (f *Factors) AssembleDiagRegion(a *sparse.SymMatrix, k int) error {
	f.EnsureCell(k)
	cb := &f.Sym.CB[k]
	ld := f.LD[k]
	data := f.Data[k]
	for j := cb.Cols[0]; j < cb.Cols[1]; j++ {
		lc := j - cb.Cols[0]
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			i := a.RowIdx[p]
			if i >= cb.Cols[1] {
				break
			}
			data[(i-cb.Cols[0])+lc*ld] = a.Val[p]
		}
	}
	return nil
}

// AssembleBlockRegion scatters only block b's entries of cell k (used by the
// processor owning BDIV(b,k)).
func (f *Factors) AssembleBlockRegion(a *sparse.SymMatrix, k, b int) error {
	f.EnsureCell(k)
	cb := &f.Sym.CB[k]
	blk := cb.Blocks[b]
	ld := f.LD[k]
	data := f.Data[k]
	off := f.BlockOff[k][b]
	for j := cb.Cols[0]; j < cb.Cols[1]; j++ {
		lc := j - cb.Cols[0]
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			i := a.RowIdx[p]
			if i < blk.FirstRow {
				continue
			}
			if i >= blk.LastRow {
				break
			}
			data[off+(i-blk.FirstRow)+lc*ld] = a.Val[p]
		}
	}
	return nil
}

// Diag returns the diagonal vector D of cell k (aliasing storage is avoided:
// a copy is returned).
func (f *Factors) Diag(k int) []float64 {
	cb := &f.Sym.CB[k]
	w := cb.Width()
	d := make([]float64, w)
	if f.lrCells != nil {
		diag := f.lrCells[k].diag
		for j := 0; j < w; j++ {
			d[j] = diag[j+j*w]
		}
		return d
	}
	ld := f.LD[k]
	for j := 0; j < w; j++ {
		d[j] = f.Data[k][j+j*ld]
	}
	return d
}

// NNZ returns the resident factor entries (block model; compressed cells
// count their U/V values, not the dense blocks they replaced).
func (f *Factors) NNZ() int64 {
	if f.lrCells != nil {
		var t int64
		for k := range f.lrCells {
			c := &f.lrCells[k]
			t += int64(len(c.diag) + len(c.dense))
			for _, lb := range c.lr {
				if lb != nil {
					t += int64(lb.Values())
				}
			}
		}
		return t
	}
	var t int64
	for k := range f.Data {
		if f.Data[k] != nil {
			t += int64(len(f.Data[k]))
		}
	}
	return t
}

// FactorDiag factors cell k's diagonal block in place (dense LDLᵀ). A pivot
// breakdown is reported as a *ZeroPivotError (matching ErrNotSPD) with the
// global column.
func (f *Factors) FactorDiag(k int) error {
	_, err := f.FactorDiagStatic(k, 0)
	return err
}

// FactorDiagStatic is FactorDiag with a static-pivot threshold: pivots with
// |d| < tau are substituted by sign(d)·tau and returned as Perturbations
// carrying global (permuted-system) column indices. tau <= 0 reproduces
// FactorDiag exactly.
func (f *Factors) FactorDiagStatic(k int, tau float64) ([]Perturbation, error) {
	cb := &f.Sym.CB[k]
	ps, err := blas.LDLTStatic(cb.Width(), f.Data[k], f.LD[k], tau)
	if err != nil {
		return nil, f.pivotError(k, err)
	}
	if len(ps) == 0 {
		return nil, nil
	}
	perts := make([]Perturbation, len(ps))
	for i, p := range ps {
		perts[i] = Perturbation{Column: cb.Cols[0] + p.Index, Original: p.Original, Used: p.Used}
	}
	return perts, nil
}

// SolvePanel computes W = A_panel · L_kk^{-ᵀ} in place over the whole
// off-diagonal panel of cell k (the result is W = L·D, not yet scaled).
func (f *Factors) SolvePanel(k int) {
	cb := &f.Sym.CB[k]
	w := cb.Width()
	r := cb.RowsBelow()
	if r == 0 {
		return
	}
	ld := f.LD[k]
	blas.TrsmRightLTransUnit(r, w, f.Data[k], ld, f.Data[k][w:], ld)
}

// ScalePanel divides the panel columns by D, turning W into L.
func (f *Factors) ScalePanel(k int, d []float64) {
	cb := &f.Sym.CB[k]
	w := cb.Width()
	r := cb.RowsBelow()
	if r == 0 {
		return
	}
	ld := f.LD[k]
	blas.ScaleColumns(r, w, f.Data[k][w:], ld, d)
}
