package solver

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pastix-go/pastix/internal/blas"
	"github.com/pastix-go/pastix/internal/lowrank"
	"github.com/pastix-go/pastix/internal/sched"
	"github.com/pastix-go/pastix/internal/symbolic"
	"github.com/pastix-go/pastix/internal/trace"
)

// This file implements the level-set solve engine: triangular solves
// scheduled by the solve DAG's level sets (sched.SolveDAG) instead of the
// factorization's proc mapping, over per-factor packed panels
// (blas/packed.go). The engine is bitwise-identical to the sequential
// Factors.Solve for ANY worker count, any hybrid cutoff and either dispatch
// mode, because of a consumer-pull determinism argument:
//
// The sequential forward sweep updates each destination segment x_f by the
// contributions of (source cell k, block bi) in ascending (k, bi) order,
// interleaved with updates to other destinations — but per element of x_f
// the order is exactly ascending (k, bi). Here every destination cell pulls
// its own incoming contributions, applying them in that same canonical
// order directly into its b-initialized segment; level sets guarantee every
// source segment is final before any consumer in a later level reads it, and
// no two cells write the same segment. So neither the within-level execution
// order nor the cell→worker assignment can change a single bit. The backward
// sweep is symmetric (each cell folds its own blocks' dot products in block
// order). The packed kernels replicate the strided kernels' operation order
// exactly, so packing does not perturb results either.

// solveIn is one incoming forward contribution of a destination cell: block
// bi of source cell src lands at rows [off, off+rows) of the destination's
// segment. Lists are built in canonical (src, bi) order.
type solveIn struct {
	src  int32
	bi   int32
	off  int32
	rows int32
}

// SolvePlan is a reusable schedule for the level-set solve engine on a fixed
// worker count: the hybrid steps, a cost-balanced contiguous partition of
// each parallel step, and the per-cell pull lists. Plans are immutable and
// cached per (Analysis, workers) — see Analysis.SolvePlanFor.
type SolvePlan struct {
	sym     *symbolic.Symbol
	dag     *sched.SolveDAG
	steps   []sched.SolveStep
	parts   [][][]int32 // per parallel step: worker -> contiguous cell run
	ins     [][]solveIn
	cost    []int64
	workers int
	cutoff  int
}

// PlanStats summarizes a SolvePlan for reporting (the service returns it
// from /v1/factorize and /v1/solve).
type PlanStats struct {
	Workers       int `json:"workers"`
	Cells         int `json:"cells"`
	Levels        int `json:"levels"`
	ParallelSteps int `json:"parallel_steps"`
	ChainSteps    int `json:"chain_steps"`
	ChainCells    int `json:"chain_cells"`
	MaxLevelWidth int `json:"max_level_width"`
	Cutoff        int `json:"cutoff"`
}

// Stats reports the plan's shape.
func (pl *SolvePlan) Stats() PlanStats {
	st := PlanStats{
		Workers:       pl.workers,
		Cells:         pl.sym.NumCB(),
		Levels:        pl.dag.Depth(),
		MaxLevelWidth: pl.dag.MaxWidth,
		Cutoff:        pl.cutoff,
	}
	for _, s := range pl.steps {
		if s.Parallel {
			st.ParallelSteps++
		} else {
			st.ChainSteps++
			st.ChainCells += len(s.Cells)
		}
	}
	return st
}

// Workers returns the worker count the plan was built for.
func (pl *SolvePlan) Workers() int { return pl.workers }

// BuildSolvePlan builds a level-set solve plan: hybrid steps from the DAG
// (cutoff <= 0 selects sched.DefaultSolveCutoff), per-cell pull lists in
// canonical order, and a cost-balanced contiguous partition of every
// parallel step across the workers.
func BuildSolvePlan(sym *symbolic.Symbol, dag *sched.SolveDAG, workers, cutoff int) *SolvePlan {
	if workers < 1 {
		workers = 1
	}
	if cutoff <= 0 {
		cutoff = sched.DefaultSolveCutoff(workers)
	}
	steps := dag.HybridSteps(workers, cutoff)
	ncb := sym.NumCB()
	ins := make([][]solveIn, ncb)
	for k := 0; k < ncb; k++ {
		cb := &sym.CB[k]
		for bi := range cb.Blocks {
			blk := &cb.Blocks[bi]
			fcb := &sym.CB[blk.Facing]
			ins[blk.Facing] = append(ins[blk.Facing], solveIn{
				src: int32(k), bi: int32(bi),
				off: int32(blk.FirstRow - fcb.Cols[0]), rows: int32(blk.Rows()),
			})
		}
	}
	// Per-cell solve cost (forward pulls + backward dots + the triangular
	// solves), used to balance the contiguous partitions.
	cost := make([]int64, ncb)
	for k := 0; k < ncb; k++ {
		cb := &sym.CB[k]
		w := int64(cb.Width())
		c := w*w + 16
		for _, in := range ins[k] {
			c += int64(in.rows) * int64(sym.CB[in.src].Width())
		}
		c += int64(cb.RowsBelow()) * w
		cost[k] = c
	}
	parts := make([][][]int32, len(steps))
	for si, st := range steps {
		if st.Parallel {
			parts[si] = splitByCost(st.Cells, cost, workers)
		}
	}
	return &SolvePlan{
		sym: sym, dag: dag, steps: steps, parts: parts, ins: ins,
		cost: cost, workers: workers, cutoff: cutoff,
	}
}

// splitByCost partitions cells into at most `workers` contiguous runs of
// near-equal total cost (contiguity keeps each worker streaming through the
// packed level buffer).
func splitByCost(cells []int32, cost []int64, workers int) [][]int32 {
	parts := make([][]int32, workers)
	var total int64
	for _, c := range cells {
		total += cost[c]
	}
	i := 0
	rem := total
	for p := 0; p < workers && i < len(cells); p++ {
		if workers-p == 1 {
			parts[p] = cells[i:]
			i = len(cells)
			break
		}
		target := (rem + int64(workers-p) - 1) / int64(workers-p)
		start := i
		var acc int64
		for i < len(cells) && acc < target {
			acc += cost[cells[i]]
			i++
		}
		parts[p] = cells[start:i]
		rem -= acc
	}
	return parts
}

// solvePack holds contiguous copies of a factor's solve operands, laid out
// in level order: per cell the w×w diagonal block and the off-diagonal
// blocks (rows×w each, block bi at off[bi] inside blk[k]). Built once per
// factor (guarded by Factors.packMu) on first use or by PrepareSolve. For a
// BLR-compressed factor the pack aliases the compressed cells zero-copy
// (they are already packed); lr is non-nil and lr[k][bi] != nil marks a
// low-rank block (off[k][bi] is negative for those).
type solvePack struct {
	diag [][]float64
	blk  [][]float64
	off  [][]int32
	lr   [][]*lowrank.LRBlock
}

// solvePackFor builds (once) and returns the factor's packed solve panels.
func (f *Factors) solvePackFor(dag *sched.SolveDAG) *solvePack {
	f.packMu.Lock()
	defer f.packMu.Unlock()
	if f.pack != nil {
		return f.pack
	}
	sym := f.Sym
	ncb := sym.NumCB()
	pk := &solvePack{
		diag: make([][]float64, ncb),
		blk:  make([][]float64, ncb),
		off:  make([][]int32, ncb),
	}
	if f.lrCells != nil {
		pk.lr = make([][]*lowrank.LRBlock, ncb)
		for k := 0; k < ncb; k++ {
			cell := &f.lrCells[k]
			pk.diag[k] = cell.diag
			pk.blk[k] = cell.dense
			pk.off[k] = cell.off
			pk.lr[k] = cell.lr
		}
		f.pack = pk
		return pk
	}
	for _, cells := range dag.Levels {
		total := 0
		for _, c := range cells {
			cb := &sym.CB[c]
			w := cb.Width()
			total += w*w + cb.RowsBelow()*w
		}
		buf := make([]float64, total)
		pos := 0
		for _, c := range cells {
			k := int(c)
			cb := &sym.CB[k]
			w := cb.Width()
			ld := f.LD[k]
			f.EnsureCell(k)
			pk.diag[k] = buf[pos : pos+w*w]
			blas.PackPanel(w, w, f.Data[k], ld, pk.diag[k])
			pos += w * w
			pk.off[k] = make([]int32, len(cb.Blocks))
			blkStart := pos
			for bi := range cb.Blocks {
				rows := cb.Blocks[bi].Rows()
				pk.off[k][bi] = int32(pos - blkStart)
				blas.PackPanel(rows, w, f.Data[k][f.BlockOff[k][bi]:], ld, buf[pos:pos+rows*w])
				pos += rows * w
			}
			pk.blk[k] = buf[blkStart:pos]
		}
	}
	f.pack = pk
	return pk
}

// SolveDAG returns the analysis's solve DAG, built on first use (internally
// synchronized; safe for concurrent callers).
func (an *Analysis) SolveDAG() *sched.SolveDAG {
	an.solveDAGOnce.Do(func() {
		an.solveDAG = sched.BuildSolveDAG(an.Sym)
	})
	return an.solveDAG
}

// SolvePlanFor returns the cached level-set solve plan for the given worker
// count, building it on first request. Plans are immutable; the cache is a
// sync.Map keyed by worker count.
func (an *Analysis) SolvePlanFor(workers int) *SolvePlan {
	if workers < 1 {
		workers = 1
	}
	if v, ok := an.solvePlans.Load(workers); ok {
		return v.(*SolvePlan)
	}
	pl := BuildSolvePlan(an.Sym, an.SolveDAG(), workers, 0)
	v, _ := an.solvePlans.LoadOrStore(workers, pl)
	return v.(*SolvePlan)
}

// PrepareSolve eagerly builds the solve plan for the schedule's worker count
// and packs the factor's solve panels, so a serving layer can pay the whole
// solve-planning cost at factorize time instead of on the first request.
func (an *Analysis) PrepareSolve(f *Factors) PlanStats {
	pl := an.SolvePlanFor(an.Sched.P)
	f.solvePackFor(pl.dag)
	return pl.Stats()
}

// LevelStats carries per-worker observability of one level-set solve:
// Executed[p] counts the parallel-step cells worker p ran (chain cells run
// on worker 0 and are not counted).
type LevelStats struct {
	Executed []int64
}

// LevelOptions configures one level-set solve.
type LevelOptions struct {
	// NRHS is the number of right-hand sides (<= 0 means 1); b is an
	// n×NRHS column-major panel.
	NRHS int
	// Dynamic selects atomic-counter dispatch of parallel steps (workers
	// fetch cells as they free up) instead of the static cost-balanced
	// partition. Both are bitwise-identical to sequential.
	Dynamic bool
	// Trace records each worker's forward and backward sweep as phase
	// events (nil disables tracing).
	Trace *trace.Recorder
	// Stats, when non-nil, receives per-worker execution counts.
	Stats *LevelStats
}

// SolveLevelCtx runs the level-set solve engine on the plan: forward sweep,
// diagonal scaling and backward sweep over packed panels, with one barrier
// per hybrid step. Each column of the result is bitwise-identical to the
// sequential Factors.Solve of that column (note: Factors.SolveMany scales
// the diagonal by reciprocal-multiply and so differs in the last bits; this
// engine keeps the single-RHS division semantics for every column).
// Cancelling ctx aborts at the next step boundary on every worker and
// returns ctx.Err().
func SolveLevelCtx(ctx context.Context, pl *SolvePlan, f *Factors, b []float64, opts LevelOptions) ([]float64, error) {
	nrhs := opts.NRHS
	if nrhs <= 0 {
		nrhs = 1
	}
	sym := pl.sym
	if f.Sym != sym {
		return nil, fmt.Errorf("solver: factor was not built from the plan's symbolic structure")
	}
	if len(b) != sym.N*nrhs {
		return nil, fmt.Errorf("solver: rhs panel length %d, want n×nrhs = %d×%d: %w", len(b), sym.N, nrhs, ErrShape)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pk := f.solvePackFor(pl.dag)
	n := sym.N
	r := &levelRun{
		pl: pl, pk: pk, nrhs: nrhs, dynamic: opts.Dynamic,
		rec: opts.Trace, ctx: ctx,
		y: make([]float64, n*nrhs), x: make([]float64, n*nrhs),
		fcursors: make([]atomic.Int64, len(pl.steps)),
		bcursors: make([]atomic.Int64, len(pl.steps)),
		executed: make([]int64, pl.workers),
		bar:      newStepBarrier(pl.workers),
	}
	packRHS(sym, b, r.y, nrhs)
	var wg sync.WaitGroup
	for p := 0; p < pl.workers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			r.worker(p)
		}(p)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opts.Stats != nil {
		opts.Stats.Executed = append([]int64(nil), r.executed...)
	}
	out := make([]float64, n*nrhs)
	unpackRHS(sym, r.x, out, nrhs)
	return out, nil
}

// packRHS lays the n×nrhs column-major panel b out as per-cell w×nrhs
// panels, cell-major (cell k's panel starts at Cols[0]*nrhs). For nrhs == 1
// the layout is the identity because the cells partition [0, n).
func packRHS(sym *symbolic.Symbol, b, y []float64, nrhs int) {
	if nrhs == 1 {
		copy(y, b)
		return
	}
	n := sym.N
	for k := range sym.CB {
		cb := &sym.CB[k]
		w := cb.Width()
		base := cb.Cols[0] * nrhs
		for c := 0; c < nrhs; c++ {
			copy(y[base+c*w:base+c*w+w], b[cb.Cols[0]+c*n:cb.Cols[1]+c*n])
		}
	}
}

// unpackRHS is the inverse of packRHS.
func unpackRHS(sym *symbolic.Symbol, y, out []float64, nrhs int) {
	if nrhs == 1 {
		copy(out, y)
		return
	}
	n := sym.N
	for k := range sym.CB {
		cb := &sym.CB[k]
		w := cb.Width()
		base := cb.Cols[0] * nrhs
		for c := 0; c < nrhs; c++ {
			copy(out[cb.Cols[0]+c*n:cb.Cols[1]+c*n], y[base+c*w:base+c*w+w])
		}
	}
}

// levelRun is the per-call state of one level-set solve.
type levelRun struct {
	pl      *SolvePlan
	pk      *solvePack
	nrhs    int
	dynamic bool
	rec     *trace.Recorder
	ctx     context.Context

	y, x []float64 // cell-major RHS panels: forward result, then solution

	fcursors []atomic.Int64 // per-step dynamic fetch cursors, forward
	bcursors []atomic.Int64 // and backward (separate: no reset races)
	executed []int64        // per worker; each worker touches only its own slot
	bar      *stepBarrier
	failed   atomic.Bool
}

// worker runs both sweeps in lockstep with the other workers: one barrier
// per hybrid step, the backward sweep walking steps (and chain cells) in
// reverse. Every worker executes the identical barrier sequence, so
// cancellation (checked at step boundaries) unwinds all of them uniformly.
func (r *levelRun) worker(p int) {
	var start time.Duration
	if r.rec != nil {
		start = r.rec.Now()
	}
	for si := range r.pl.steps {
		r.step(p, si, true)
		r.bar.wait()
	}
	if r.rec != nil {
		r.rec.Phase(p, trace.PhaseForward, start, r.rec.Now())
		start = r.rec.Now()
	}
	for si := len(r.pl.steps) - 1; si >= 0; si-- {
		r.step(p, si, false)
		r.bar.wait()
	}
	if r.rec != nil {
		r.rec.Phase(p, trace.PhaseBackward, start, r.rec.Now())
	}
}

func (r *levelRun) step(p, si int, fwd bool) {
	if r.failed.Load() {
		return
	}
	if r.ctx.Err() != nil {
		r.failed.Store(true)
		return
	}
	st := &r.pl.steps[si]
	if !st.Parallel {
		// Chain step: worker 0 runs the collapsed narrow levels sequentially
		// (forward in level order, backward in reverse).
		if p != 0 {
			return
		}
		if fwd {
			for _, c := range st.Cells {
				r.forwardCell(int(c))
			}
		} else {
			for i := len(st.Cells) - 1; i >= 0; i-- {
				r.backwardCell(int(st.Cells[i]))
			}
		}
		return
	}
	if r.dynamic {
		cur := &r.fcursors[si]
		if !fwd {
			cur = &r.bcursors[si]
		}
		limit := int64(len(st.Cells))
		for {
			i := cur.Add(1) - 1
			if i >= limit {
				return
			}
			if fwd {
				r.forwardCell(int(st.Cells[i]))
			} else {
				r.backwardCell(int(st.Cells[i]))
			}
			r.executed[p]++
		}
	}
	for _, c := range r.pl.parts[si][p] {
		if fwd {
			r.forwardCell(int(c))
		} else {
			r.backwardCell(int(c))
		}
		r.executed[p]++
	}
}

// forwardCell completes cell fc's forward solve: pull every incoming
// contribution in canonical (source, block) order into the b-initialized
// segment, then the unit-lower triangular solve — all on packed operands.
func (r *levelRun) forwardCell(fc int) {
	sym := r.pl.sym
	cb := &sym.CB[fc]
	w := cb.Width()
	nr := r.nrhs
	base := cb.Cols[0] * nr
	yf := r.y[base : base+w*nr]
	for _, in := range r.pl.ins[fc] {
		scb := &sym.CB[in.src]
		sw := scb.Width()
		ys := r.y[scb.Cols[0]*nr:]
		rows := int(in.rows)
		if r.pk.lr != nil {
			if lb := r.pk.lr[in.src][in.bi]; lb != nil {
				if nr == 1 {
					blas.LRGemvN(rows, sw, lb.Rank, lb.U, lb.V, ys[:sw], yf[in.off:int(in.off)+rows])
				} else {
					blas.LRGemmNN(rows, sw, lb.Rank, nr, lb.U, lb.V, ys[:sw*nr], sw, yf[in.off:], w)
				}
				continue
			}
		}
		a := r.pk.blk[in.src][r.pk.off[in.src][in.bi]:]
		if nr == 1 {
			blas.GemvNPacked(rows, sw, a, ys[:sw], yf[in.off:int(in.off)+rows])
		} else {
			blas.GemmNNPacked(rows, nr, sw, a, ys[:sw*nr], sw, yf[in.off:], w)
		}
	}
	if nr == 1 {
		blas.TrsvLowerUnitPacked(w, r.pk.diag[fc], yf)
	} else {
		blas.TrsmLowerUnitPacked(w, nr, r.pk.diag[fc], yf)
	}
}

// backwardCell completes cell kc's backward solve: diagonal division (the
// sequential single-RHS semantics, per column), the dot products of kc's own
// blocks in block order against the already-final facing segments, then the
// transposed triangular solve.
func (r *levelRun) backwardCell(kc int) {
	sym := r.pl.sym
	cb := &sym.CB[kc]
	w := cb.Width()
	nr := r.nrhs
	base := cb.Cols[0] * nr
	xk := r.x[base : base+w*nr]
	yk := r.y[base : base+w*nr]
	diag := r.pk.diag[kc]
	for c := 0; c < nr; c++ {
		for j := 0; j < w; j++ {
			xk[c*w+j] = yk[c*w+j] / diag[j+j*w]
		}
	}
	for bi := range cb.Blocks {
		blk := &cb.Blocks[bi]
		fcb := &sym.CB[blk.Facing]
		fw := fcb.Width()
		off := blk.FirstRow - fcb.Cols[0]
		rows := blk.Rows()
		xf := r.x[fcb.Cols[0]*nr:]
		if r.pk.lr != nil {
			if lb := r.pk.lr[kc][bi]; lb != nil {
				if nr == 1 {
					blas.LRGemvT(rows, w, lb.Rank, lb.U, lb.V, xf[off:off+rows], xk)
				} else {
					blas.LRGemmTN(rows, w, lb.Rank, nr, lb.U, lb.V, xf[off:], fw, xk, w)
				}
				continue
			}
		}
		a := r.pk.blk[kc][r.pk.off[kc][bi]:]
		if nr == 1 {
			blas.GemvTPacked(rows, w, a, xf[off:off+rows], xk)
		} else {
			blas.GemmTNPacked(w, nr, rows, a, xf[off:], fw, xk, w)
		}
	}
	if nr == 1 {
		blas.TrsvLowerTransUnitPacked(w, diag, xk)
	} else {
		blas.TrsmLTransUnitPacked(w, nr, diag, xk)
	}
}

// stepBarrier is a reusable generation barrier for the engine's lockstep
// steps.
type stepBarrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   uint64
}

func newStepBarrier(n int) *stepBarrier {
	b := &stepBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *stepBarrier) wait() {
	b.mu.Lock()
	g := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for g == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
