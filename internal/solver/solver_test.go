package solver

import (
	"math"
	"testing"

	"github.com/pastix-go/pastix/internal/etree"
	"github.com/pastix-go/pastix/internal/gen"
	"github.com/pastix-go/pastix/internal/order"
	"github.com/pastix-go/pastix/internal/part"
	"github.com/pastix-go/pastix/internal/sched"
	"github.com/pastix-go/pastix/internal/sparse"
)

func laplacian2D(nx, ny int) *sparse.SymMatrix {
	b := sparse.NewBuilder(nx * ny)
	idx := func(i, j int) int { return i + j*nx }
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			v := idx(i, j)
			b.Add(v, v, 4.5)
			if i+1 < nx {
				b.Add(v, idx(i+1, j), -1)
			}
			if j+1 < ny {
				b.Add(v, idx(i, j+1), -1)
			}
		}
	}
	return b.Build()
}

func analyzeFor(t *testing.T, a *sparse.SymMatrix, P int) *Analysis {
	t.Helper()
	an, err := Analyze(a, Options{
		P:        P,
		Ordering: order.Options{Method: order.ScotchLike, LeafSize: 30},
		Part:     part.Options{BlockSize: 12, Ratio2D: 2, MinWidth2D: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := an.Sched.Validate(); err != nil {
		t.Fatal(err)
	}
	return an
}

func TestSeqFactorSolveLaplacian(t *testing.T) {
	a := laplacian2D(15, 15)
	an := analyzeFor(t, a, 1)
	f, err := an.Factorize()
	if err != nil {
		t.Fatal(err)
	}
	x, b := gen.RHSForSolution(a)
	got := an.SolveOriginal(f, b)
	for i := range x {
		if math.Abs(got[i]-x[i]) > 1e-9 {
			t.Fatalf("x[%d]=%g want %g", i, got[i], x[i])
		}
	}
	if r := sparse.Residual(a, got, b); r > 1e-12 {
		t.Fatalf("residual %g", r)
	}
}

func TestSeqFactorAgainstDenseLDLT(t *testing.T) {
	// On a small matrix, compare the sparse block factor's reconstruction
	// A ≈ L·D·Lᵀ against the original values entrywise.
	a := laplacian2D(6, 6)
	an := analyzeFor(t, a, 1)
	f, err := an.Factorize()
	if err != nil {
		t.Fatal(err)
	}
	n := a.N
	// Expand the block factor into dense L (unit diag) and D.
	L := make([]float64, n*n)
	D := make([]float64, n)
	for i := 0; i < n; i++ {
		L[i+i*n] = 1
	}
	sym := an.Sym
	for k := range sym.CB {
		cb := &sym.CB[k]
		ld := f.LD[k]
		for j := 0; j < cb.Width(); j++ {
			gc := cb.Cols[0] + j
			D[gc] = f.Data[k][j+j*ld]
			for i := j + 1; i < cb.Width(); i++ {
				L[(cb.Cols[0]+i)+gc*n] = f.Data[k][i+j*ld]
			}
			for bi := range cb.Blocks {
				blk := &cb.Blocks[bi]
				off := f.BlockOff[k][bi]
				for r := 0; r < blk.Rows(); r++ {
					L[(blk.FirstRow+r)+gc*n] = f.Data[k][off+r+j*ld]
				}
			}
		}
	}
	pa := an.A
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := 0.0
			for kk := 0; kk <= j; kk++ {
				s += L[i+kk*n] * D[kk] * L[j+kk*n]
			}
			want := pa.At(i, j)
			if math.Abs(s-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("reconstruction (%d,%d): %g want %g", i, j, s, want)
			}
		}
	}
}

func factorsClose(t *testing.T, a, b *Factors, tol float64) {
	t.Helper()
	for k := range a.Data {
		if len(a.Data[k]) != len(b.Data[k]) {
			t.Fatalf("cell %d sizes differ", k)
		}
		for i := range a.Data[k] {
			if math.Abs(a.Data[k][i]-b.Data[k][i]) > tol*(1+math.Abs(a.Data[k][i])) {
				t.Fatalf("cell %d elem %d: %g vs %g", k, i, a.Data[k][i], b.Data[k][i])
			}
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	a := laplacian2D(20, 20)
	seqAn := analyzeFor(t, a, 1)
	ref, err := FactorizeSeq(seqAn.A, seqAn.Sym)
	if err != nil {
		t.Fatal(err)
	}
	for _, P := range []int{2, 3, 4, 8} {
		an := analyzeFor(t, a, P)
		// Same ordering/partition pipeline → same symbol as P=1.
		got, err := FactorizePar(an.A, an.Sched)
		if err != nil {
			t.Fatalf("P=%d: %v", P, err)
		}
		factorsClose(t, ref, got, 1e-11)
	}
}

func TestParallelExercises2DTasks(t *testing.T) {
	a := laplacian2D(24, 24)
	an := analyzeFor(t, a, 8)
	st := an.Sched.ComputeStats()
	if st.NBMod == 0 || st.NBDiv == 0 || st.NFactor == 0 {
		t.Fatalf("schedule has no 2D tasks (stats %+v); test would not cover the 2D path", st)
	}
	f, err := FactorizePar(an.A, an.Sched)
	if err != nil {
		t.Fatal(err)
	}
	x, b := gen.RHSForSolution(a)
	got := an.SolveOriginal(f, b)
	for i := range x {
		if math.Abs(got[i]-x[i]) > 1e-8 {
			t.Fatalf("x[%d]=%g want %g", i, got[i], x[i])
		}
	}
}

func TestParallelOnGeneratedProblems(t *testing.T) {
	for _, name := range []string{"THREAD", "SHIP001", "QUER"} {
		p, err := gen.Generate(name, 0.02)
		if err != nil {
			t.Fatal(err)
		}
		an := analyzeFor(t, p.A, 4)
		f, err := an.Factorize()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		x, b := gen.RHSForSolution(p.A)
		got := an.SolveOriginal(f, b)
		maxErr := 0.0
		for i := range x {
			if e := math.Abs(got[i] - x[i]); e > maxErr {
				maxErr = e
			}
		}
		if maxErr > 1e-8 {
			t.Fatalf("%s: max error %g", name, maxErr)
		}
		if r := sparse.Residual(p.A, got, b); r > 1e-12 {
			t.Fatalf("%s: residual %g", name, r)
		}
	}
}

func TestRefineImprovesOrKeepsResidual(t *testing.T) {
	a := laplacian2D(12, 12)
	an := analyzeFor(t, a, 1)
	f, err := an.Factorize()
	if err != nil {
		t.Fatal(err)
	}
	_, b := gen.RHSForSolution(a)
	pb := make([]float64, len(b))
	for newI, old := range an.Perm {
		pb[newI] = b[old]
	}
	x0 := f.Solve(pb)
	// Perturb the solution, then refine.
	x0[0] += 1e-3
	r0 := sparse.Residual(an.A, x0, pb)
	x1 := f.Refine(an.A, pb, x0)
	r1 := sparse.Residual(an.A, x1, pb)
	if r1 > r0 {
		t.Fatalf("refinement worsened residual: %g -> %g", r0, r1)
	}
	if r1 > 1e-10 {
		t.Fatalf("refined residual still large: %g", r1)
	}
}

func TestAssembleRejectsOutOfStructure(t *testing.T) {
	// Natural ordering of a tridiagonal matrix with a partition of singleton
	// supernodes: entry (5,0) is outside the structure.
	b := sparse.NewBuilder(6)
	for i := 0; i < 6; i++ {
		b.Add(i, i, 4)
		if i+1 < 6 {
			b.Add(i+1, i, -1)
		}
	}
	a := b.Build()
	an, err := Analyze(a, Options{
		P:            1,
		Ordering:     order.Options{Method: order.Natural},
		Amalgamation: etree.AmalgamateOptions{Disable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	f := NewFactors(an.Sym)
	bad := sparse.NewBuilder(6)
	bad.Add(0, 0, 1)
	bad.Add(5, 0, 7) // fill of a tridiagonal natural factor never reaches (5,0)
	for i := 1; i < 6; i++ {
		bad.Add(i, i, 1)
	}
	if err := f.AssembleCell(bad.Build(), 0); err == nil {
		t.Fatal("expected out-of-structure error")
	}
}

func TestLocateRow(t *testing.T) {
	a := laplacian2D(8, 8)
	an := analyzeFor(t, a, 1)
	f := NewFactors(an.Sym)
	for k := range an.Sym.CB {
		cb := &an.Sym.CB[k]
		// Diagonal rows.
		if lr := f.LocateRow(k, cb.Cols[0]); lr != 0 {
			t.Fatalf("cb %d first col row at %d", k, lr)
		}
		for bi, blk := range cb.Blocks {
			if lr := f.LocateRow(k, blk.FirstRow); lr != f.BlockOff[k][bi] {
				t.Fatalf("cb %d block %d first row maps to %d", k, bi, lr)
			}
			if lr := f.LocateRow(k, blk.LastRow-1); lr != f.BlockOff[k][bi]+blk.Rows()-1 {
				t.Fatalf("cb %d block %d last row wrong", k, bi)
			}
		}
	}
	// A row in no structure: row between blocks or past the end.
	if f.LocateRow(0, an.Sym.N) != -1 {
		t.Fatal("out-of-range row located")
	}
}

func TestAnalyzeMetricsPopulated(t *testing.T) {
	a := laplacian2D(16, 16)
	an := analyzeFor(t, a, 4)
	if an.ScalarNNZL <= int64(a.N) {
		t.Fatalf("scalar NNZL %d too small", an.ScalarNNZL)
	}
	if an.ScalarOPC <= 0 {
		t.Fatal("scalar OPC missing")
	}
	if an.Sym.NNZL() < an.ScalarNNZL {
		t.Fatalf("block NNZL %d below scalar %d", an.Sym.NNZL(), an.ScalarNNZL)
	}
	if an.PredictedTime() <= 0 {
		t.Fatal("predicted time missing")
	}
}

func TestScheduleReuseAcrossValues(t *testing.T) {
	// Same pattern, different values: one analysis, two factorizations.
	a1 := laplacian2D(10, 10)
	a2 := laplacian2D(10, 10)
	for i := range a2.Val {
		if a2.RowIdx[i] == i { // scale diagonal a bit
		}
	}
	for j := 0; j < a2.N; j++ {
		a2.Val[a2.ColPtr[j]] += 1.5
	}
	an := analyzeFor(t, a1, 2)
	f1, err := FactorizePar(a1.Permute(an.Perm), an.Sched)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := FactorizePar(a2.Permute(an.Perm), an.Sched)
	if err != nil {
		t.Fatal(err)
	}
	// Diagonals of D must differ (different matrices) while structure agrees.
	if f1.NNZ() != f2.NNZ() {
		t.Fatal("structure changed between factorizations")
	}
	d1 := f1.Diag(0)
	d2 := f2.Diag(0)
	if d1[0] == d2[0] {
		t.Fatal("values unexpectedly identical")
	}
}

var _ = etree.AmalgamateOptions{} // keep import for future options in tests
var _ = sched.Options{}

func TestSolveManyMatchesSingleSolves(t *testing.T) {
	a := laplacian2D(13, 13)
	an := analyzeFor(t, a, 1)
	f, err := an.Factorize()
	if err != nil {
		t.Fatal(err)
	}
	n := a.N
	const nrhs = 4
	b := make([]float64, n*nrhs)
	for i := range b {
		b[i] = float64((i*7)%11) - 5
	}
	got := f.SolveMany(b, nrhs)
	for r := 0; r < nrhs; r++ {
		want := f.Solve(b[r*n : (r+1)*n])
		for i := 0; i < n; i++ {
			if math.Abs(got[i+r*n]-want[i]) > 1e-11*(1+math.Abs(want[i])) {
				t.Fatalf("rhs %d: x[%d]=%g want %g", r, i, got[i+r*n], want[i])
			}
		}
	}
}
