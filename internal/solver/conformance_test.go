package solver

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"testing"

	"github.com/pastix-go/pastix/internal/faults"
	"github.com/pastix-go/pastix/internal/gen"
	"github.com/pastix-go/pastix/internal/sparse"
	"github.com/pastix-go/pastix/internal/trace"
)

// conformanceCase is one matrix of the cross-runtime conformance corpus:
// every generator family in internal/gen, including the irregular ones.
type conformanceCase struct {
	name string
	a    *sparse.SymMatrix
	// needsPivot marks matrices that cannot factor without static pivoting
	// (the pivot-off leg is skipped for them).
	needsPivot bool
}

func conformanceCorpus() []conformanceCase {
	return []conformanceCase{
		{"poisson2d-16x16", gen.Laplacian2D(16, 16), false},
		{"poisson3d-7", gen.Laplacian3D(7, 7, 7), false},
		{"graded", gen.GradedPivot(4, 8, 1e-2, 0.05, false), false},
		{"graded-singular", gen.GradedPivot(4, 8, 1e-2, 0.05, true), true},
		{"randspd-seed1", gen.RandomSPD(160, 4, 1), false},
		{"randspd-seed9", gen.RandomSPD(160, 5, 9), false},
	}
}

// factorizeRT runs one factorization of the conformance grid: analysis an,
// runtime rt, optional pivoting, optional tracing (recorder sized to the
// schedule).
func factorizeRT(t *testing.T, an *Analysis, rt Runtime, sp StaticPivot, traced bool) (*Factors, *trace.Recorder) {
	t.Helper()
	var rec *trace.Recorder
	if traced {
		rec = trace.New(an.Sched.P, 0)
	}
	f, err := an.FactorizeMatrixOptsCtx(context.Background(), an.A, ParOptions{
		Runtime: rt,
		Pivot:   sp,
		Trace:   rec,
	})
	if err != nil {
		t.Fatalf("%v factorize: %v", rt, err)
	}
	return f, rec
}

// TestRuntimeConformance is the cross-runtime conformance suite of the
// dynamic-runtime work: every generator family × all four runtimes ×
// {pivot off, pivot on} × {untraced, traced}. The deterministic runtimes
// (sequential, shared, dynamic) must agree BITWISE on factor data, publish
// reflect.DeepEqual perturbation reports, and return bitwise-equal solve
// vectors; the message-passing simulator must agree to aggregation rounding
// (≤1e-11 entrywise on these scales) with an identical report, and must be
// bitwise-reproducible against itself.
func TestRuntimeConformance(t *testing.T) {
	for _, tc := range conformanceCorpus() {
		for _, pivOn := range []bool{false, true} {
			if tc.needsPivot && !pivOn {
				continue
			}
			var sp StaticPivot
			if pivOn {
				sp = StaticPivot{Epsilon: 1e-10}
			}
			t.Run(fmt.Sprintf("%s/pivot=%v", tc.name, pivOn), func(t *testing.T) {
				an := analyzeFor(t, tc.a, 4)
				ref, _ := factorizeRT(t, an, RuntimeSequential, sp, false)
				_, b := gen.RHSForSolution(tc.a)
				refX := an.SolveOriginal(ref, b)

				for _, rt := range []Runtime{RuntimeShared, RuntimeDynamic} {
					for _, traced := range []bool{false, true} {
						f, _ := factorizeRT(t, an, rt, sp, traced)
						name := fmt.Sprintf("%v/traced=%v", rt, traced)
						bitwiseEqualFactorsNamed(t, ref, f, name)
						if !reflect.DeepEqual(ref.Pivots, f.Pivots) {
							t.Fatalf("%s: perturbation report differs:\nseq: %+v\ngot: %+v", name, ref.Pivots, f.Pivots)
						}
						x := an.SolveOriginal(f, b)
						for i := range refX {
							if x[i] != refX[i] {
								t.Fatalf("%s: solve x[%d] = %x, seq %x (not bit-identical)", name, i, x[i], refX[i])
							}
						}
					}
				}

				// mpsim: deterministic (bitwise against itself) and equal to the
				// reference to aggregation rounding; same report.
				for _, traced := range []bool{false, true} {
					f1, _ := factorizeRT(t, an, RuntimeMPSim, sp, traced)
					f2, _ := factorizeRT(t, an, RuntimeMPSim, sp, traced)
					name := fmt.Sprintf("mpsim/traced=%v", traced)
					bitwiseEqualFactorsNamed(t, f1, f2, name+" (run-to-run)")
					factorsClose(t, ref, f1, 1e-11)
					if !reflect.DeepEqual(ref.Pivots, f1.Pivots) {
						t.Fatalf("%s: perturbation report differs from seq", name)
					}
					x := an.SolveOriginal(f1, b)
					for i := range refX {
						if d := math.Abs(x[i] - refX[i]); d > 1e-9 {
							t.Fatalf("%s: solve x[%d] off by %g", name, i, d)
						}
					}
				}
			})
		}
	}
}

func bitwiseEqualFactorsNamed(t *testing.T, ref, got *Factors, name string) {
	t.Helper()
	for k := range ref.Data {
		if len(ref.Data[k]) != len(got.Data[k]) {
			t.Fatalf("%s: cell %d sizes differ (%d vs %d)", name, k, len(ref.Data[k]), len(got.Data[k]))
		}
		for i := range ref.Data[k] {
			if ref.Data[k][i] != got.Data[k][i] {
				t.Fatalf("%s: cell %d elem %d: %x vs %x (not bit-identical)",
					name, k, i, got.Data[k][i], ref.Data[k][i])
			}
		}
	}
}

// TestDynamicSharedBitwiseSeeds is the acceptance soak: across ≥20 random
// irregular matrices the work-stealing runtime must produce factors
// bitwise-identical to the static shared-memory runtime — every seed, every
// run, regardless of which worker stole what. Run under -race by `make race`.
func TestDynamicSharedBitwiseSeeds(t *testing.T) {
	seeds := 24
	if testing.Short() {
		seeds = 6
	}
	for seed := 0; seed < seeds; seed++ {
		a := gen.RandomSPD(120, 4, uint64(seed)+1)
		an := analyzeFor(t, a, 4)
		sh, err := an.FactorizeMatrixOptsCtx(context.Background(), an.A, ParOptions{Runtime: RuntimeShared})
		if err != nil {
			t.Fatalf("seed %d: shared: %v", seed, err)
		}
		dy, err := an.FactorizeMatrixOptsCtx(context.Background(), an.A, ParOptions{Runtime: RuntimeDynamic})
		if err != nil {
			t.Fatalf("seed %d: dynamic: %v", seed, err)
		}
		bitwiseEqualFactors(t, sh, dy, int64(seed))
	}
}

// TestDynamicStealStorm drives the dynamic runtime where stealing is the
// only way to make progress: tiny blocks (many small tasks) on many more
// workers than the elimination tree keeps busy. Results must still be
// bitwise-identical to sequential, and the executor must actually have
// stolen.
func TestDynamicStealStorm(t *testing.T) {
	a := gen.Laplacian2D(20, 20)
	an, err := Analyze(a, Options{P: 8})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := FactorizeSeqPivot(an.A, an.Sym, StaticPivot{})
	if err != nil {
		t.Fatal(err)
	}
	var totalSteals int64
	rounds := 20
	if testing.Short() {
		rounds = 5
	}
	for r := 0; r < rounds; r++ {
		f, st, err := FactorizeDynamicStatsCtx(context.Background(), an.A, an.Sched, nil, StaticPivot{})
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		if st.Executed != int64(len(an.Sched.Tasks)) {
			t.Fatalf("round %d: executed %d of %d tasks", r, st.Executed, len(an.Sched.Tasks))
		}
		bitwiseEqualFactors(t, ref, f, int64(r))
		totalSteals += st.Steals
	}
	if totalSteals == 0 {
		t.Fatal("steal storm never stole: executor degenerated to static mapping")
	}
}

// TestDynamicTraceCompare checks the tracing surface of the dynamic runtime:
// a traced dynamic factorization must replay through trace.CompareOpts with
// FreeMapping (tasks run on arbitrary workers), producing a full report,
// while the strict mapped comparison is expected to reject the free mapping.
func TestDynamicTraceCompare(t *testing.T) {
	a := gen.Laplacian2D(16, 16)
	an := analyzeFor(t, a, 4)
	rec := trace.New(an.Sched.P, 0)
	_, err := an.FactorizeMatrixOptsCtx(context.Background(), an.A, ParOptions{Runtime: RuntimeDynamic, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := trace.CompareOpts(an.Sched, rec, trace.CompareOptions{FreeMapping: true})
	if err != nil {
		t.Fatalf("CompareOpts(FreeMapping): %v", err)
	}
	if len(rp.Tasks) != len(an.Sched.Tasks) {
		t.Fatalf("report covers %d tasks, schedule has %d", len(rp.Tasks), len(an.Sched.Tasks))
	}
	if rp.MeasuredMakespan <= 0 {
		t.Fatalf("measured makespan %v not positive", rp.MeasuredMakespan)
	}
}

// TestDynamicRejectsFaults pins the chaos-interplay contract at the solver
// layer: fault injection exists for the message-passing runtime only, and
// combining an active plan with the work-stealing runtime must fail up
// front, not silently ignore the plan.
func TestDynamicRejectsFaults(t *testing.T) {
	a := gen.Laplacian2D(10, 10)
	an := analyzeFor(t, a, 2)
	plan := &faults.Plan{Seed: 1, Drop: 0.1}
	for _, rt := range []Runtime{RuntimeDynamic, RuntimeShared, RuntimeSequential} {
		_, err := an.FactorizeMatrixOptsCtx(context.Background(), an.A, ParOptions{Runtime: rt, Faults: plan})
		if err == nil {
			t.Fatalf("%v accepted an active fault plan", rt)
		}
	}
	// The same plan on the message-passing runtime is fine.
	if _, err := an.FactorizeMatrixOptsCtx(context.Background(), an.A, ParOptions{Runtime: RuntimeMPSim, Faults: plan}); err != nil {
		t.Fatalf("mpsim rejected its own fault plan: %v", err)
	}
}

// TestDynamicHonorsContext covers cancellation through the full solver
// stack: a context cancelled mid-factorization must abort the dynamic run
// with ctx.Err() and unwind every worker.
func TestDynamicHonorsContext(t *testing.T) {
	a := gen.Laplacian2D(20, 20)
	an := analyzeFor(t, a, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := an.FactorizeMatrixOptsCtx(ctx, an.A, ParOptions{Runtime: RuntimeDynamic}); err == nil {
		t.Fatal("cancelled context not observed")
	}
}
