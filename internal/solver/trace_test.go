package solver

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"github.com/pastix-go/pastix/internal/gen"
	"github.com/pastix-go/pastix/internal/trace"
)

// TestTraceCoversSchedule runs a traced factorization under both runtimes
// and checks the recorder holds exactly one task event per schedule task,
// and that the divergence report's per-processor busy times equal the sums
// of the recorded task durations.
func TestTraceCoversSchedule(t *testing.T) {
	a := gen.Laplacian3D(8, 8, 8)
	for _, shared := range []bool{false, true} {
		name := "mpsim"
		if shared {
			name = "shared"
		}
		t.Run(name, func(t *testing.T) {
			an := analyzeFor(t, a, 4)
			rec := trace.New(4, 0)
			_, _, err := FactorizeParStatsCtx(context.Background(), an.A, an.Sched,
				ParOptions{SharedMemory: shared, Trace: rec})
			if err != nil {
				t.Fatal(err)
			}
			tasks := rec.TaskEvents()
			if len(tasks) != len(an.Sched.Tasks) {
				t.Fatalf("traced %d tasks, schedule has %d", len(tasks), len(an.Sched.Tasks))
			}
			rp, err := trace.Compare(an.Sched, rec)
			if err != nil {
				t.Fatal(err)
			}
			busy := make([]float64, 4)
			for _, e := range tasks {
				busy[e.Proc] += (e.End - e.Start).Seconds()
			}
			for p := range rp.Procs {
				if math.Abs(rp.Procs[p].MeasBusy-busy[p]) > 1e-12 {
					t.Fatalf("proc %d: report busy %g != summed task durations %g",
						p, rp.Procs[p].MeasBusy, busy[p])
				}
			}
			if rp.MeasuredMakespan <= 0 {
				t.Fatalf("measured makespan %g, want > 0", rp.MeasuredMakespan)
			}
			if shared {
				if rp.MsgsSent != 0 {
					t.Fatalf("shared runtime sent %d messages, want 0", rp.MsgsSent)
				}
			} else if rp.MsgsSent == 0 {
				t.Fatal("mpsim runtime recorded no messages")
			}
		})
	}
}

// TestTraceSpillEvents checks the fan-both memory bound shows up as spill
// events in the trace.
func TestTraceSpillEvents(t *testing.T) {
	a := gen.Laplacian3D(8, 8, 8)
	an := analyzeFor(t, a, 4)
	rec := trace.New(4, 0)
	_, stats, err := FactorizeParStatsCtx(context.Background(), an.A, an.Sched,
		ParOptions{MaxAUBBytes: 1, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := trace.Compare(an.Sched, rec)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages > stats.PredictedMessages && rp.SpillCount == 0 {
		t.Fatalf("fan-both sent %d > %d predicted messages but recorded no spills",
			stats.Messages, stats.PredictedMessages)
	}
}

// waitGoroutines polls until the goroutine count drops back to at most base,
// tolerating the runtime's own background goroutines.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now, %d before", runtime.NumGoroutine(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFactorizeCtxPreCancelled: an already-cancelled context aborts before
// any work starts, under both runtimes, without leaking goroutines.
func TestFactorizeCtxPreCancelled(t *testing.T) {
	a := laplacian2D(15, 15)
	an := analyzeFor(t, a, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	base := runtime.NumGoroutine()
	for _, shared := range []bool{false, true} {
		_, _, err := FactorizeParStatsCtx(ctx, an.A, an.Sched, ParOptions{SharedMemory: shared})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("shared=%v: got %v, want context.Canceled", shared, err)
		}
	}
	waitGoroutines(t, base)
}

// TestFactorizeCtxCancelMidRun cancels concurrently with the run: the call
// must return (no deadlock with receivers blocked in Recv or gate waits) and
// report context.Canceled unless it already finished, with all worker
// goroutines unwound either way.
func TestFactorizeCtxCancelMidRun(t *testing.T) {
	a := gen.Laplacian3D(10, 10, 10)
	for _, shared := range []bool{false, true} {
		an := analyzeFor(t, a, 4)
		base := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(200 * time.Microsecond)
			cancel()
		}()
		_, _, err := FactorizeParStatsCtx(ctx, an.A, an.Sched, ParOptions{SharedMemory: shared})
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("shared=%v: got %v, want nil or context.Canceled", shared, err)
		}
		cancel()
		waitGoroutines(t, base+1) // +1 tolerates the exiting cancel goroutine
	}
}

// TestSolveCtxPreCancelled covers both parallel solve runtimes.
func TestSolveCtxPreCancelled(t *testing.T) {
	a := laplacian2D(15, 15)
	an := analyzeFor(t, a, 4)
	f, err := FactorizePar(an.A, an.Sched)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, an.A.N)
	for i := range b {
		b[i] = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveParCtx(ctx, an.Sched, f, b, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveParCtx: got %v, want context.Canceled", err)
	}
	if _, err := SolveSharedCtx(ctx, an.Sched, f, b, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveSharedCtx: got %v, want context.Canceled", err)
	}
}

// TestTracedSolvePhases checks the solves record forward/backward phase
// events for every processor.
func TestTracedSolvePhases(t *testing.T) {
	a := laplacian2D(15, 15)
	an := analyzeFor(t, a, 4)
	f, err := FactorizePar(an.A, an.Sched)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, an.A.N)
	for i := range b {
		b[i] = 1
	}
	for _, shared := range []bool{false, true} {
		rec := trace.New(4, 0)
		var serr error
		if shared {
			_, serr = SolveSharedCtx(context.Background(), an.Sched, f, b, rec)
		} else {
			_, serr = SolveParCtx(context.Background(), an.Sched, f, b, rec)
		}
		if serr != nil {
			t.Fatal(serr)
		}
		var phases int
		for _, e := range rec.Events() {
			if e.Kind == trace.KindPhase {
				phases++
			}
		}
		if phases != 2*4 {
			t.Fatalf("shared=%v: got %d phase events, want %d (fwd+bwd per proc)", shared, phases, 2*4)
		}
	}
}
