package solver

import "fmt"

// Runtime selects which engine executes the numerical factorization. All
// runtimes consume the same analysis (ordering, symbolic structure, static
// schedule); they differ in how the task graph is driven and where the data
// lives. The sequential, shared-memory and dynamic runtimes produce BITWISE
// identical factors and perturbation reports (they execute contributions in
// the canonical source order); the message-passing runtime aggregates
// contributions into AUBs — the paper's central mechanism — which changes the
// floating-point association, so it matches the others to rounding (~1e-11
// componentwise) and is deterministic run to run, but not bit-equal.
type Runtime int8

const (
	// RuntimeAuto preserves the historical dispatch: shared-memory when
	// ParOptions.SharedMemory is set, plain sequential at P == 1 without
	// tracing or faults, message-passing otherwise.
	RuntimeAuto Runtime = iota
	// RuntimeSequential is the right-looking reference (FactorizeSeq).
	RuntimeSequential
	// RuntimeMPSim is the paper-faithful message-passing fan-in/fan-both
	// runtime: goroutine processors, explicit messages, AUB aggregation.
	RuntimeMPSim
	// RuntimeShared is the zero-copy shared-memory runtime: the static
	// schedule's K_p vectors over one shared factor storage.
	RuntimeShared
	// RuntimeDynamic is the work-stealing runtime: data-driven activation
	// over the shared-memory layout, no fixed task→processor mapping.
	RuntimeDynamic
)

// String returns the CLI spelling of the runtime.
func (r Runtime) String() string {
	switch r {
	case RuntimeAuto:
		return "auto"
	case RuntimeSequential:
		return "seq"
	case RuntimeMPSim:
		return "mpsim"
	case RuntimeShared:
		return "shared"
	case RuntimeDynamic:
		return "dynamic"
	}
	return fmt.Sprintf("Runtime(%d)", int8(r))
}

// Valid reports whether r is a known runtime.
func (r Runtime) Valid() bool {
	return r >= RuntimeAuto && r <= RuntimeDynamic
}

// ParseRuntime maps a CLI spelling to its Runtime.
func ParseRuntime(s string) (Runtime, error) {
	switch s {
	case "", "auto":
		return RuntimeAuto, nil
	case "seq", "sequential":
		return RuntimeSequential, nil
	case "mpsim":
		return RuntimeMPSim, nil
	case "shared":
		return RuntimeShared, nil
	case "dynamic":
		return RuntimeDynamic, nil
	}
	return 0, fmt.Errorf("solver: unknown runtime %q (want auto, seq, mpsim, shared or dynamic)", s)
}
