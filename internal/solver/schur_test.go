package solver

import (
	"math"
	"testing"

	"github.com/pastix-go/pastix/internal/blas"
	"github.com/pastix-go/pastix/internal/order"
	"github.com/pastix-go/pastix/internal/part"
)

// denseSchur computes S = A_ss − A_si·A_ii⁻¹·A_is by dense elimination of
// the interior unknowns (oracle).
func denseSchur(t *testing.T, a [][]float64, schur []int) []float64 {
	t.Helper()
	n := len(a)
	isSchur := make([]bool, n)
	for _, v := range schur {
		isSchur[v] = true
	}
	// Dense copy, eliminate interior pivots in index order.
	m := make([][]float64, n)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
	}
	for k := 0; k < n; k++ {
		if isSchur[k] {
			continue
		}
		piv := m[k][k]
		for i := 0; i < n; i++ {
			if i == k || (!isSchur[i] && i < k) || m[i][k] == 0 {
				continue
			}
			r := m[i][k] / piv
			for j := 0; j < n; j++ {
				m[i][j] -= r * m[k][j]
			}
		}
	}
	ns := len(schur)
	s := make([]float64, ns*ns)
	for i, gi := range schur {
		for j, gj := range schur {
			s[i+j*ns] = m[gi][gj]
		}
	}
	return s
}

func TestSchurAgainstDenseOracle(t *testing.T) {
	a := laplacian2D(9, 9)
	// Schur set: the middle grid column (a natural interface).
	var schurVars []int
	for j := 0; j < 9; j++ {
		schurVars = append(schurVars, 4+j*9)
	}
	san, err := AnalyzeSchur(a, schurVars, Options{
		Ordering: order.Options{Method: order.ScotchLike, LeafSize: 20},
		Part:     part.Options{BlockSize: 12},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, s, err := san.FactorizeSchur()
	if err != nil {
		t.Fatal(err)
	}
	ns := len(schurVars)
	if len(s) != ns*ns {
		t.Fatalf("schur size %d", len(s))
	}
	// Dense oracle over the ORIGINAL matrix with the ordered Schur list.
	dense := make([][]float64, a.N)
	flat := a.Dense()
	for i := range dense {
		dense[i] = flat[i*a.N : (i+1)*a.N]
	}
	want := denseSchur(t, dense, san.SchurVars)
	for i := range s {
		if math.Abs(s[i]-want[i]) > 1e-8*(1+math.Abs(want[i])) {
			t.Fatalf("S[%d]=%g want %g", i, s[i], want[i])
		}
	}
	// S must be SPD for an SPD A: factor it densely.
	sc := append([]float64(nil), s...)
	if err := blas.Cholesky(ns, sc, ns); err != nil {
		t.Fatalf("schur complement not SPD: %v", err)
	}
}

func TestSchurErrors(t *testing.T) {
	a := laplacian2D(4, 4)
	if _, err := AnalyzeSchur(a, nil, Options{}); err == nil {
		t.Fatal("empty schur set must error")
	}
	if _, err := AnalyzeSchur(a, []int{99}, Options{}); err == nil {
		t.Fatal("out of range must error")
	}
	if _, err := AnalyzeSchur(a, []int{1, 1}, Options{}); err == nil {
		t.Fatal("duplicate must error")
	}
	all := make([]int, a.N)
	for i := range all {
		all[i] = i
	}
	if _, err := AnalyzeSchur(a, all, Options{}); err == nil {
		t.Fatal("full set must error")
	}
}

func TestSchurVarsOrderMatchesMatrix(t *testing.T) {
	a := laplacian2D(6, 6)
	schurVars := []int{35, 3, 17} // unsorted on purpose
	san, err := AnalyzeSchur(a, schurVars, Options{Ordering: order.Options{LeafSize: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if len(san.SchurVars) != 3 {
		t.Fatal("schur vars lost")
	}
	seen := map[int]bool{}
	for _, v := range san.SchurVars {
		seen[v] = true
	}
	for _, v := range schurVars {
		if !seen[v] {
			t.Fatalf("schur var %d missing from result order", v)
		}
	}
}
