package solver

import (
	"github.com/pastix-go/pastix/internal/blas"
	"github.com/pastix-go/pastix/internal/lowrank"
)

// This file is the block low-rank (BLR) compression pass: after a
// factorization finishes, Compress walks every column block, keeps the
// diagonal block dense (it carries the unit-lower triangle and D, and its
// triangular solves do not profit from a low-rank form), and offers each
// off-diagonal block to the lowrank admission rule. Admitted blocks that
// compress profitably are stored as U·Vᵀ; everything else is re-packed
// dense (leading dimension = block rows, no panel padding), and the
// original strided cell arrays are released. Compression is lossy at the
// configured tolerance — solves on a compressed factor approximate the
// dense solve to ~Tol and are paired with iterative refinement to recover
// accuracy — and is a solve-only format: the message-passing (mpsim)
// runtime and the schedule-driven shared solve read the dense arrays
// directly and refuse compressed factors (ErrCompressed).

// lrCell is the compressed storage of one column block: the packed w×w
// diagonal block, the concatenated packed dense off-diagonal blocks, and
// per off-diagonal block either an offset into dense (off[bi] >= 0) or the
// low-rank form (off[bi] < 0, lr[bi] != nil).
type lrCell struct {
	diag  []float64
	dense []float64
	off   []int32
	lr    []*lowrank.LRBlock
}

// CompressionStats is the byte accounting of one compression pass. Bytes
// count factor values only (8 bytes per float64; index arrays and slice
// headers are negligible and identical either way). DenseBytes is what the
// factor occupied before the pass; CompressedBytes is what it occupies
// after — re-packed dense blocks count at their packed size, so the ratio
// reflects only genuine low-rank wins.
type CompressionStats struct {
	DenseBytes       int64   `json:"dense_bytes"`
	CompressedBytes  int64   `json:"compressed_bytes"`
	Ratio            float64 `json:"ratio"`
	BlocksCompressed int     `json:"blocks_compressed"`
	BlocksTotal      int     `json:"blocks_total"`
}

// Compressed reports whether the factor is in BLR-compressed form.
func (f *Factors) Compressed() bool { return f.lrCells != nil }

// Compression returns the stats of the compression pass, or nil for a dense
// factor.
func (f *Factors) Compression() *CompressionStats {
	if f.comp == nil {
		return nil
	}
	s := *f.comp
	return &s
}

// Compress converts the factor to block low-rank form in place and returns
// the byte accounting. Disabled options (zero Tol) are a no-op; calling
// Compress on an already-compressed factor returns the existing stats. The
// pass must not run concurrently with solves on the same factor: it
// releases the dense arrays and invalidates the packed solve panels.
func (f *Factors) Compress(opts lowrank.Options) CompressionStats {
	if !opts.Enabled() {
		return CompressionStats{}
	}
	if f.lrCells != nil {
		return *f.comp
	}
	sym := f.Sym
	ncb := sym.NumCB()
	cells := make([]lrCell, ncb)
	st := CompressionStats{}
	for k := 0; k < ncb; k++ {
		cb := &sym.CB[k]
		w := cb.Width()
		ld := f.LD[k]
		f.EnsureCell(k)
		data := f.Data[k]
		st.DenseBytes += 8 * int64(ld) * int64(w)

		cell := &cells[k]
		cell.diag = make([]float64, w*w)
		blas.PackPanel(w, w, data, ld, cell.diag)
		nb := len(cb.Blocks)
		cell.off = make([]int32, nb)
		cell.lr = make([]*lowrank.LRBlock, nb)
		st.BlocksTotal += nb

		denseVals := 0
		for bi := 0; bi < nb; bi++ {
			rows := cb.Blocks[bi].Rows()
			if opts.Admit(rows, w) {
				if lb := lowrank.Compress(rows, w, data[f.BlockOff[k][bi]:], ld, opts.Tol); lb != nil {
					cell.lr[bi] = lb
					cell.off[bi] = -1
					st.BlocksCompressed++
					continue
				}
			}
			cell.off[bi] = int32(denseVals)
			denseVals += rows * w
		}
		cell.dense = make([]float64, denseVals)
		for bi := 0; bi < nb; bi++ {
			if o := cell.off[bi]; o >= 0 {
				rows := cb.Blocks[bi].Rows()
				blas.PackPanel(rows, w, data[f.BlockOff[k][bi]:], ld, cell.dense[o:int(o)+rows*w])
			}
		}
		f.Data[k] = nil // release the strided dense cell
	}
	st.CompressedBytes = 8 * f.nnzOf(cells)
	if st.CompressedBytes > 0 {
		st.Ratio = float64(st.DenseBytes) / float64(st.CompressedBytes)
	}
	f.lrCells = cells
	f.comp = &st
	f.packMu.Lock()
	f.pack = nil // next solve re-packs by aliasing the compressed cells
	f.packMu.Unlock()
	return st
}

// nnzOf counts resident values of a compressed cell set.
func (f *Factors) nnzOf(cells []lrCell) int64 {
	var t int64
	for k := range cells {
		c := &cells[k]
		t += int64(len(c.diag) + len(c.dense))
		for _, lb := range c.lr {
			if lb != nil {
				t += int64(lb.Values())
			}
		}
	}
	return t
}

// MemoryBytes reports the resident factor-value bytes in the current form.
func (f *Factors) MemoryBytes() int64 { return 8 * f.NNZ() }

// solveCompressed is Factors.Solve on the compressed form: the identical
// three sweeps, with each off-diagonal block applied either from its packed
// dense copy or through the rank-r LR kernels. Results approximate the
// dense solve to the compression tolerance.
func (f *Factors) solveCompressed(b []float64) []float64 {
	sym := f.Sym
	x := append([]float64(nil), b...)
	// Forward: L y = b.
	for k := range sym.CB {
		cb := &sym.CB[k]
		w := cb.Width()
		cell := &f.lrCells[k]
		xk := x[cb.Cols[0]:cb.Cols[1]]
		blas.TrsvLowerUnit(w, cell.diag, w, xk)
		for bi := range cb.Blocks {
			blk := &cb.Blocks[bi]
			rows := blk.Rows()
			if lb := cell.lr[bi]; lb != nil {
				blas.LRGemvN(rows, w, lb.Rank, lb.U, lb.V, xk, x[blk.FirstRow:blk.LastRow])
			} else {
				blas.GemvN(rows, w, cell.dense[cell.off[bi]:], rows, xk, x[blk.FirstRow:blk.LastRow])
			}
		}
	}
	// Diagonal: z = D⁻¹ y.
	for k := range sym.CB {
		cb := &sym.CB[k]
		diag := f.lrCells[k].diag
		w := cb.Width()
		for j := 0; j < w; j++ {
			x[cb.Cols[0]+j] /= diag[j+j*w]
		}
	}
	// Backward: Lᵀ x = z.
	for k := len(sym.CB) - 1; k >= 0; k-- {
		cb := &sym.CB[k]
		w := cb.Width()
		cell := &f.lrCells[k]
		xk := x[cb.Cols[0]:cb.Cols[1]]
		for bi := range cb.Blocks {
			blk := &cb.Blocks[bi]
			rows := blk.Rows()
			if lb := cell.lr[bi]; lb != nil {
				blas.LRGemvT(rows, w, lb.Rank, lb.U, lb.V, x[blk.FirstRow:blk.LastRow], xk)
			} else {
				blas.GemvT(rows, w, cell.dense[cell.off[bi]:], rows, x[blk.FirstRow:blk.LastRow], xk)
			}
		}
		blas.TrsvLowerTransUnit(w, cell.diag, w, xk)
	}
	return x
}

// solveManyCompressed is Factors.SolveMany on the compressed form.
func (f *Factors) solveManyCompressed(b []float64, nrhs int) []float64 {
	sym := f.Sym
	n := sym.N
	x := append([]float64(nil), b...)
	// Forward: L·Y = B.
	for k := range sym.CB {
		cb := &sym.CB[k]
		w := cb.Width()
		cell := &f.lrCells[k]
		xk := x[cb.Cols[0]:]
		blas.TrsmLeftLowerUnit(w, nrhs, cell.diag, w, xk, n)
		for bi := range cb.Blocks {
			blk := &cb.Blocks[bi]
			rows := blk.Rows()
			if lb := cell.lr[bi]; lb != nil {
				blas.LRGemmNN(rows, w, lb.Rank, nrhs, lb.U, lb.V, xk, n, x[blk.FirstRow:], n)
			} else {
				blas.GemmNN(rows, nrhs, w, cell.dense[cell.off[bi]:], rows, xk, n, x[blk.FirstRow:], n)
			}
		}
	}
	// Diagonal (reciprocal-multiply, matching the dense SolveMany).
	for k := range sym.CB {
		cb := &sym.CB[k]
		diag := f.lrCells[k].diag
		w := cb.Width()
		for j := 0; j < w; j++ {
			inv := 1 / diag[j+j*w]
			for r := 0; r < nrhs; r++ {
				x[cb.Cols[0]+j+r*n] *= inv
			}
		}
	}
	// Backward: Lᵀ·X = Z.
	for k := len(sym.CB) - 1; k >= 0; k-- {
		cb := &sym.CB[k]
		w := cb.Width()
		cell := &f.lrCells[k]
		xk := x[cb.Cols[0]:]
		for bi := range cb.Blocks {
			blk := &cb.Blocks[bi]
			rows := blk.Rows()
			if lb := cell.lr[bi]; lb != nil {
				blas.LRGemmTN(rows, w, lb.Rank, nrhs, lb.U, lb.V, x[blk.FirstRow:], n, xk, n)
			} else {
				blas.GemmTN(w, nrhs, rows, cell.dense[cell.off[bi]:], rows, x[blk.FirstRow:], n, xk, n)
			}
		}
		blas.TrsmLeftLTransUnit(w, nrhs, cell.diag, w, xk, n)
	}
	return x
}
