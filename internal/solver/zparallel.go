package solver

import (
	"fmt"

	"github.com/pastix-go/pastix/internal/blas"
	"github.com/pastix-go/pastix/internal/mpsim"
	"github.com/pastix-go/pastix/internal/sched"
	"github.com/pastix-go/pastix/internal/sparse"
)

// Complex parallel factorization: the same Fig. 1 fan-in protocol as the
// float64 runtime (identical message plan, built by buildProtocol), with
// complex payloads interleaved into the float64 message buffers.

func zToFloats(z []complex128) []float64 {
	f := make([]float64, 2*len(z))
	for i, v := range z {
		f[2*i] = real(v)
		f[2*i+1] = imag(v)
	}
	return f
}

func floatsToZ(f []float64) []complex128 {
	z := make([]complex128, len(f)/2)
	for i := range z {
		z[i] = complex(f[2*i], f[2*i+1])
	}
	return z
}

// FactorizeZPar runs the complex symmetric fan-in LDLᵀ factorization on
// sch.P goroutine processors. az is the permuted complex matrix whose
// pattern matches the analysis.
func FactorizeZPar(az *sparse.ZSymMatrix, sch *sched.Schedule) (*ZFactors, error) {
	sym := sch.Sym()
	P := sch.P
	pr := buildProtocol(sch)

	stores := make([]*ZFactors, P)
	comm := mpsim.NewComm(P)
	runErr := comm.Run(func(p int) error {
		st := &zProcState{
			p:      p,
			sch:    sch,
			f:      NewZFactorsLazy(sym),
			comm:   comm,
			pr:     pr,
			aubBuf: make(map[int][]complex128),
			aubRem: make(map[int]int),
			aubGot: make(map[int]int),
			fstore: make(map[int][]complex128),
			diags:  make(map[int][]complex128),
			invd:   make(map[int][]complex128),
		}
		stores[p] = st.f
		for k, c := range pr.contributors {
			if k.sp == p {
				st.aubRem[k.dt] = c
			}
		}
		return st.run(az)
	})
	if runErr != nil {
		return nil, runErr
	}

	g := NewZFactors(sym)
	copyCols := func(dst, src []complex128, ld, rowLo, rowHi, w int) {
		for j := 0; j < w; j++ {
			copy(dst[rowLo+j*ld:rowHi+j*ld], src[rowLo+j*ld:rowHi+j*ld])
		}
	}
	for k := range sym.CB {
		w := sym.CB[k].Width()
		ld := g.LD[k]
		if id := sch.Comp1DOf[k]; id >= 0 {
			copy(g.Data[k], stores[sch.Tasks[id].Proc].Data[k])
			continue
		}
		fp := sch.Tasks[sch.FactorOf[k]].Proc
		copyCols(g.Data[k], stores[fp].Data[k], ld, 0, w, w)
		for b := range sym.CB[k].Blocks {
			bp := sch.Tasks[sch.BDivOf[k][b]].Proc
			off := g.BlockOff[k][b]
			copyCols(g.Data[k], stores[bp].Data[k], ld, off, off+sym.CB[k].Blocks[b].Rows(), w)
		}
	}
	return g, nil
}

type zProcState struct {
	p    int
	sch  *sched.Schedule
	f    *ZFactors
	comm *mpsim.Comm
	pr   *protocol

	aubBuf map[int][]complex128
	aubRem map[int]int
	aubGot map[int]int
	fstore map[int][]complex128
	diags  map[int][]complex128
	invd   map[int][]complex128
}

func (st *zProcState) shape() *Factors {
	return &Factors{Sym: st.f.Sym, LD: st.f.LD, BlockOff: st.f.BlockOff}
}

func (st *zProcState) run(az *sparse.ZSymMatrix) error {
	sym := st.sch.Sym()
	shape := st.shape()
	// Assemble owned regions.
	for _, id := range st.sch.ByProc[st.p] {
		t := &st.sch.Tasks[id]
		switch t.Type {
		case sched.Comp1D:
			if err := st.f.AssembleCell(az, t.Cell); err != nil {
				return err
			}
		case sched.Factor:
			st.f.EnsureCell(t.Cell)
			cb := &sym.CB[t.Cell]
			ld := st.f.LD[t.Cell]
			for j := cb.Cols[0]; j < cb.Cols[1]; j++ {
				lc := j - cb.Cols[0]
				for p := az.ColPtr[j]; p < az.ColPtr[j+1]; p++ {
					i := az.RowIdx[p]
					if i >= cb.Cols[1] {
						break
					}
					st.f.Data[t.Cell][(i-cb.Cols[0])+lc*ld] = az.Val[p]
				}
			}
		case sched.BDiv:
			st.f.EnsureCell(t.Cell)
			cb := &sym.CB[t.Cell]
			blk := cb.Blocks[t.S]
			ld := st.f.LD[t.Cell]
			off := st.f.BlockOff[t.Cell][t.S]
			for j := cb.Cols[0]; j < cb.Cols[1]; j++ {
				lc := j - cb.Cols[0]
				for p := az.ColPtr[j]; p < az.ColPtr[j+1]; p++ {
					i := az.RowIdx[p]
					if i < blk.FirstRow {
						continue
					}
					if i >= blk.LastRow {
						break
					}
					st.f.Data[t.Cell][off+(i-blk.FirstRow)+lc*ld] = az.Val[p]
				}
			}
		}
	}

	for _, id := range st.sch.ByProc[st.p] {
		t := &st.sch.Tasks[id]
		if err := st.waitInputs(id); err != nil {
			return err
		}
		var err error
		switch t.Type {
		case sched.Comp1D:
			err = st.execComp1D(t)
		case sched.Factor:
			err = st.execFactor(t)
		case sched.BDiv:
			err = st.execBDiv(t)
		case sched.BMod:
			err = st.execBMod(t)
		}
		if err != nil {
			return err
		}
	}

	// Deferred panel scaling.
	for _, id := range st.sch.ByProc[st.p] {
		t := &st.sch.Tasks[id]
		if t.Type != sched.BDiv {
			continue
		}
		cb := &sym.CB[t.Cell]
		w := cb.Width()
		d := st.cellDiagVec(t.Cell)
		blk := cb.Blocks[t.S]
		off := st.f.BlockOff[t.Cell][t.S]
		blas.ZScaleColumns(blk.Rows(), w, st.f.Data[t.Cell][off:], st.f.LD[t.Cell], d)
	}
	_ = shape
	return nil
}

func (st *zProcState) waitInputs(id int) error {
	t := &st.sch.Tasks[id]
	satisfied := func() bool {
		if st.aubGot[id] < st.pr.nAUBmsgs[id] {
			return false
		}
		switch t.Type {
		case sched.BDiv:
			if st.pr.needDiag[id] {
				if _, ok := st.diags[t.Cell]; !ok {
					return false
				}
			}
		case sched.BMod:
			if st.pr.needF[id] {
				if _, ok := st.fstore[st.sch.BDivOf[t.Cell][t.T]]; !ok {
					return false
				}
			}
		}
		return true
	}
	for !satisfied() {
		m, err := st.comm.Recv(st.p)
		if err != nil {
			return err
		}
		switch m.Kind {
		case msgF:
			st.fstore[m.Tag] = floatsToZ(m.Data)
		case msgDiag:
			st.diags[m.Tag] = floatsToZ(m.Data)
		case msgAUB:
			if err := st.applyAUB(m.Tag, floatsToZ(m.Data)); err != nil {
				return err
			}
			st.aubGot[m.Tag]++
		default:
			return fmt.Errorf("solver: zproc %d: unknown message kind %d", st.p, m.Kind)
		}
	}
	return nil
}

func (st *zProcState) applyAUB(dt int, buf []complex128) error {
	if len(buf) == 0 {
		return nil
	}
	t := &st.sch.Tasks[dt]
	sym := st.sch.Sym()
	cb := &sym.CB[t.Cell]
	w := cb.Width()
	st.f.EnsureCell(t.Cell)
	data := st.f.Data[t.Cell]
	ld := st.f.LD[t.Cell]
	switch t.Type {
	case sched.Comp1D:
		if len(buf) != len(data) {
			return fmt.Errorf("solver: zAUB size %d != cell size %d", len(buf), len(data))
		}
		for i, v := range buf {
			data[i] += v
		}
	case sched.Factor:
		for j := 0; j < w; j++ {
			col := data[j*ld : j*ld+w]
			src := buf[j*w : j*w+w]
			for i := j; i < w; i++ {
				col[i] += src[i]
			}
		}
	case sched.BDiv:
		rb := cb.Blocks[t.S].Rows()
		off := st.f.BlockOff[t.Cell][t.S]
		for j := 0; j < w; j++ {
			col := data[off+j*ld : off+j*ld+rb]
			src := buf[j*rb : j*rb+rb]
			for i := range col {
				col[i] += src[i]
			}
		}
	default:
		return fmt.Errorf("solver: zAUB destined to %v task", t.Type)
	}
	return nil
}

func (st *zProcState) cellDiagVec(k int) []complex128 {
	w := st.sch.Sym().CB[k].Width()
	if fid := st.sch.FactorOf[k]; fid >= 0 && st.sch.Tasks[fid].Proc != st.p {
		buf := st.diags[k]
		d := make([]complex128, w)
		for j := 0; j < w; j++ {
			d[j] = buf[j+j*w]
		}
		return d
	}
	return st.f.Diag(k)
}

func (st *zProcState) cellInvD(k int) []complex128 {
	if v, ok := st.invd[k]; ok {
		return v
	}
	d := st.cellDiagVec(k)
	inv := make([]complex128, len(d))
	for i, x := range d {
		inv[i] = 1 / x
	}
	st.invd[k] = inv
	return inv
}

func (st *zProcState) diagRef(k int) ([]complex128, int) {
	if fid := st.sch.FactorOf[k]; fid >= 0 && st.sch.Tasks[fid].Proc != st.p {
		return st.diags[k], st.sch.Sym().CB[k].Width()
	}
	return st.f.Data[k], st.f.LD[k]
}

func (st *zProcState) execComp1D(t *sched.Task) error {
	k := t.Cell
	sym := st.sch.Sym()
	cb := &sym.CB[k]
	w := cb.Width()
	ld := st.f.LD[k]
	if err := blas.ZLDLT(w, st.f.Data[k], ld); err != nil {
		return wrapPivot(cb.Cols[0], k, err)
	}
	r := cb.RowsBelow()
	if r > 0 {
		blas.ZTrsmRightLTransUnit(r, w, st.f.Data[k], ld, st.f.Data[k][w:], ld)
	}
	d := st.f.Diag(k)
	invd := make([]complex128, len(d))
	for i, v := range d {
		invd[i] = 1 / v
	}
	touched := map[int]bool{}
	for ti := range cb.Blocks {
		for si := ti; si < len(cb.Blocks); si++ {
			dt, err := st.routePair(k, si, ti,
				st.f.Data[k][st.f.BlockOff[k][si]:], ld,
				st.f.Data[k][st.f.BlockOff[k][ti]:], ld, invd)
			if err != nil {
				return err
			}
			if dt >= 0 {
				touched[dt] = true
			}
		}
	}
	st.flushAUBs(touched)
	if r > 0 {
		blas.ZScaleColumns(r, w, st.f.Data[k][w:], ld, d)
	}
	return nil
}

func (st *zProcState) execFactor(t *sched.Task) error {
	k := t.Cell
	w := st.sch.Sym().CB[k].Width()
	ld := st.f.LD[k]
	if err := blas.ZLDLT(w, st.f.Data[k], ld); err != nil {
		return wrapPivot(st.sch.Sym().CB[k].Cols[0], k, err)
	}
	if dsts := st.pr.sendTo[t.ID]; len(dsts) > 0 {
		buf := make([]complex128, w*w)
		for j := 0; j < w; j++ {
			copy(buf[j*w+j:j*w+w], st.f.Data[k][j*ld+j:j*ld+w])
		}
		fbuf := zToFloats(buf)
		for _, q := range dsts {
			st.comm.Send(mpsim.Message{Kind: msgDiag, Src: st.p, Dst: q, Tag: k, Data: fbuf})
		}
	}
	return nil
}

func (st *zProcState) execBDiv(t *sched.Task) error {
	k := t.Cell
	sym := st.sch.Sym()
	cb := &sym.CB[k]
	w := cb.Width()
	rb := cb.Blocks[t.S].Rows()
	l, ldl := st.diagRef(k)
	off := st.f.BlockOff[k][t.S]
	blas.ZTrsmRightLTransUnit(rb, w, l, ldl, st.f.Data[k][off:], st.f.LD[k])
	if dsts := st.pr.sendTo[t.ID]; len(dsts) > 0 {
		buf := make([]complex128, rb*w)
		for j := 0; j < w; j++ {
			copy(buf[j*rb:(j+1)*rb], st.f.Data[k][off+j*st.f.LD[k]:off+j*st.f.LD[k]+rb])
		}
		fbuf := zToFloats(buf)
		for _, q := range dsts {
			st.comm.Send(mpsim.Message{Kind: msgF, Src: st.p, Dst: q, Tag: t.ID, Data: fbuf})
		}
	}
	return nil
}

func (st *zProcState) execBMod(t *sched.Task) error {
	k := t.Cell
	cb := &st.sch.Sym().CB[k]
	ldk := st.f.LD[k]
	ws := st.f.Data[k][st.f.BlockOff[k][t.S]:]
	var wt []complex128
	var ldt int
	bdivT := st.sch.BDivOf[k][t.T]
	if st.sch.Tasks[bdivT].Proc == st.p {
		wt = st.f.Data[k][st.f.BlockOff[k][t.T]:]
		ldt = ldk
	} else {
		wt = st.fstore[bdivT]
		ldt = cb.Blocks[t.T].Rows()
	}
	dt, err := st.routePair(k, t.S, t.T, ws, ldk, wt, ldt, st.cellInvD(k))
	if err != nil {
		return err
	}
	if dt >= 0 {
		st.flushAUBs(map[int]bool{dt: true})
	}
	return nil
}

func (st *zProcState) routePair(k, s, t int, ws []complex128, lda int, wt []complex128, ldb int, invd []complex128) (int, error) {
	sym := st.sch.Sym()
	cb := &sym.CB[k]
	w := cb.Width()
	bs := &cb.Blocks[s]
	bt := &cb.Blocks[t]
	rs := bs.Rows()
	rt := bt.Rows()
	fcell := bt.Facing
	fcb := &sym.CB[fcell]

	var dt int
	switch {
	case st.sch.Comp1DOf[fcell] >= 0:
		dt = st.sch.Comp1DOf[fcell]
	case bs.Facing == fcell:
		dt = st.sch.FactorOf[fcell]
	default:
		shape := st.shape()
		b := shape.BlockContaining(fcell, bs.FirstRow, bs.LastRow)
		if b < 0 {
			return -1, fmt.Errorf("solver: zrows [%d,%d) of cb %d not in cb %d", bs.FirstRow, bs.LastRow, k, fcell)
		}
		dt = st.sch.BDivOf[fcell][b]
	}
	dtask := &st.sch.Tasks[dt]
	lc := bt.FirstRow - fcb.Cols[0]

	var dst []complex128
	var ldc int
	if dtask.Proc == st.p {
		st.f.EnsureCell(fcell)
		lr := st.f.LocateRow(fcell, bs.FirstRow)
		ldc = st.f.LD[fcell]
		dst = st.f.Data[fcell][lr+lc*ldc:]
	} else {
		buf := st.aubBuf[dt]
		if buf == nil {
			buf = make([]complex128, st.aubSize(dt))
			st.aubBuf[dt] = buf
		}
		var lr int
		switch dtask.Type {
		case sched.Comp1D:
			lr = st.f.LocateRow(fcell, bs.FirstRow)
			ldc = st.f.LD[fcell]
		case sched.Factor:
			lr = bs.FirstRow - fcb.Cols[0]
			ldc = fcb.Width()
		case sched.BDiv:
			fb := &fcb.Blocks[dtask.S]
			lr = bs.FirstRow - fb.FirstRow
			ldc = fb.Rows()
		}
		dst = buf[lr+lc*ldc:]
	}
	if s == t {
		blas.ZSyrkLowerNDT(rs, w, ws, lda, invd, dst, ldc)
	} else {
		blas.ZGemmNDT(rs, rt, w, ws, lda, invd, wt, ldb, dst, ldc)
	}
	if dtask.Proc == st.p {
		return -1, nil
	}
	return dt, nil
}

func (st *zProcState) aubSize(dt int) int {
	t := &st.sch.Tasks[dt]
	cb := &st.sch.Sym().CB[t.Cell]
	w := cb.Width()
	switch t.Type {
	case sched.Comp1D:
		return st.f.LD[t.Cell] * w
	case sched.Factor:
		return w * w
	default:
		return cb.Blocks[t.S].Rows() * w
	}
}

func (st *zProcState) flushAUBs(touched map[int]bool) {
	for dt := range touched {
		st.aubRem[dt]--
		if st.aubRem[dt] == 0 {
			buf := st.aubBuf[dt]
			delete(st.aubBuf, dt)
			delete(st.aubRem, dt)
			st.comm.Send(mpsim.Message{
				Kind: msgAUB, Src: st.p, Dst: st.sch.Tasks[dt].Proc, Tag: dt, Data: zToFloats(buf),
			})
		}
	}
}
