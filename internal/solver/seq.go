package solver

import (
	"fmt"

	"github.com/pastix-go/pastix/internal/blas"
	"github.com/pastix-go/pastix/internal/sparse"
	"github.com/pastix-go/pastix/internal/symbolic"
)

// targetOffset computes where the (s,t) contribution of cell k lands: the
// destination cell, the linear offset of the region's top-left corner in
// that cell's array, and whether the target is the (triangular) diagonal
// region with s == t.
func targetOffset(f *Factors, k, s, t int) (cell, offset int, err error) {
	cb := &f.Sym.CB[k]
	bt := cb.Blocks[t]
	bs := cb.Blocks[s]
	fcell := bt.Facing
	fcb := &f.Sym.CB[fcell]
	lc := bt.FirstRow - fcb.Cols[0]
	var lr int
	if bs.Facing == fcell {
		lr = bs.FirstRow - fcb.Cols[0]
	} else {
		b := f.BlockContaining(fcell, bs.FirstRow, bs.LastRow)
		if b < 0 {
			return 0, 0, fmt.Errorf("solver: contribution rows [%d,%d) of cb %d not in cb %d",
				bs.FirstRow, bs.LastRow, k, fcell)
		}
		lr = f.BlockOff[fcell][b] + bs.FirstRow - f.Sym.CB[fcell].Blocks[b].FirstRow
	}
	return fcell, lr + lc*f.LD[fcell], nil
}

// applyCellUpdates computes all outer-product contributions of cell k
// (whose panel currently holds W = L·D) and subtracts them from the target
// cells' arrays in f. invd is 1/D of cell k.
func applyCellUpdates(f *Factors, k int, invd []float64) error {
	cb := &f.Sym.CB[k]
	w := cb.Width()
	ld := f.LD[k]
	data := f.Data[k]
	for t := range cb.Blocks {
		bt := &cb.Blocks[t]
		rt := bt.Rows()
		wt := data[f.BlockOff[k][t]:]
		for s := t; s < len(cb.Blocks); s++ {
			bs := &cb.Blocks[s]
			rs := bs.Rows()
			fcell, off, err := targetOffset(f, k, s, t)
			if err != nil {
				return err
			}
			f.EnsureCell(fcell)
			dst := f.Data[fcell][off:]
			ldf := f.LD[fcell]
			ws := data[f.BlockOff[k][s]:]
			if s == t {
				blas.SyrkLowerNDT(rs, w, ws, ld, invd, dst, ldf)
			} else {
				blas.GemmNDTAuto(rs, rt, w, ws, ld, invd, wt, ld, dst, ldf)
			}
		}
	}
	return nil
}

// FactorizeSeq runs the right-looking sequential supernodal LDLᵀ
// factorization — the reference the parallel solver must match bit-for-bit
// in structure and to rounding in values.
func FactorizeSeq(a *sparse.SymMatrix, sym *symbolic.Symbol) (*Factors, error) {
	return FactorizeSeqPivot(a, sym, StaticPivot{})
}

// FactorizeSeqPivot is FactorizeSeq with static pivoting: pivots below
// τ = sp.Epsilon·‖A‖_max are substituted instead of aborting, and the
// resulting report is attached to the factor (Factors.Pivots). The zero
// StaticPivot reproduces FactorizeSeq bit for bit.
func FactorizeSeqPivot(a *sparse.SymMatrix, sym *symbolic.Symbol, sp StaticPivot) (*Factors, error) {
	tau, normMax := pivotThreshold(sp, a)
	f := NewFactors(sym)
	for k := range sym.CB {
		if err := f.AssembleCell(a, k); err != nil {
			return nil, err
		}
	}
	var perts []Perturbation
	for k := range sym.CB {
		ps, err := f.FactorDiagStatic(k, tau)
		if err != nil {
			return nil, err
		}
		perts = append(perts, ps...)
		f.SolvePanel(k)
		d := f.Diag(k)
		invd := make([]float64, len(d))
		for i, v := range d {
			invd[i] = 1 / v
		}
		if err := applyCellUpdates(f, k, invd); err != nil {
			return nil, err
		}
		f.ScalePanel(k, d)
	}
	if sp.Enabled() {
		f.Pivots = buildReport(sp, normMax, perts, f)
	}
	return f, nil
}

// Solve solves A·x = b given the factor (L, D): forward substitution with
// the unit-lower block L, diagonal scaling, then backward substitution with
// Lᵀ. b is not modified; the solution is returned.
func (f *Factors) Solve(b []float64) []float64 {
	if f.lrCells != nil {
		return f.solveCompressed(b)
	}
	sym := f.Sym
	x := append([]float64(nil), b...)
	// Forward: L y = b.
	for k := range sym.CB {
		cb := &sym.CB[k]
		w := cb.Width()
		ld := f.LD[k]
		xk := x[cb.Cols[0]:cb.Cols[1]]
		blas.TrsvLowerUnit(w, f.Data[k], ld, xk)
		for bi := range cb.Blocks {
			blk := &cb.Blocks[bi]
			blas.GemvN(blk.Rows(), w, f.Data[k][f.BlockOff[k][bi]:], ld,
				xk, x[blk.FirstRow:blk.LastRow])
		}
	}
	// Diagonal: z = D⁻¹ y.
	for k := range sym.CB {
		cb := &sym.CB[k]
		ld := f.LD[k]
		for j := 0; j < cb.Width(); j++ {
			x[cb.Cols[0]+j] /= f.Data[k][j+j*ld]
		}
	}
	// Backward: Lᵀ x = z.
	for k := len(sym.CB) - 1; k >= 0; k-- {
		cb := &sym.CB[k]
		w := cb.Width()
		ld := f.LD[k]
		xk := x[cb.Cols[0]:cb.Cols[1]]
		for bi := range cb.Blocks {
			blk := &cb.Blocks[bi]
			blas.GemvT(blk.Rows(), w, f.Data[k][f.BlockOff[k][bi]:], ld,
				x[blk.FirstRow:blk.LastRow], xk)
		}
		blas.TrsvLowerTransUnit(w, f.Data[k], ld, xk)
	}
	return x
}

// Refine performs one step of iterative refinement of x for A·x = b and
// returns the refined solution (a is the same permuted matrix the factor was
// built from).
func (f *Factors) Refine(a *sparse.SymMatrix, b, x []float64) []float64 {
	r := make([]float64, a.N)
	a.MatVec(x, r)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	dx := f.Solve(r)
	out := make([]float64, a.N)
	for i := range out {
		out[i] = x[i] + dx[i]
	}
	return out
}

// SolveMany solves A·X = B for nrhs right-hand sides at once. b is an
// n×nrhs column-major panel (leading dimension n); the solution panel is
// returned in the same layout. Block kernels give the solve BLAS3 shape.
func (f *Factors) SolveMany(b []float64, nrhs int) []float64 {
	if f.lrCells != nil {
		return f.solveManyCompressed(b, nrhs)
	}
	sym := f.Sym
	n := sym.N
	x := append([]float64(nil), b...)
	// Forward: L·Y = B.
	for k := range sym.CB {
		cb := &sym.CB[k]
		w := cb.Width()
		ld := f.LD[k]
		xk := x[cb.Cols[0]:]
		blas.TrsmLeftLowerUnit(w, nrhs, f.Data[k], ld, xk, n)
		for bi := range cb.Blocks {
			blk := &cb.Blocks[bi]
			blas.GemmNN(blk.Rows(), nrhs, w,
				f.Data[k][f.BlockOff[k][bi]:], ld, xk, n, x[blk.FirstRow:], n)
		}
	}
	// Diagonal.
	for k := range sym.CB {
		cb := &sym.CB[k]
		ld := f.LD[k]
		for j := 0; j < cb.Width(); j++ {
			inv := 1 / f.Data[k][j+j*ld]
			for r := 0; r < nrhs; r++ {
				x[cb.Cols[0]+j+r*n] *= inv
			}
		}
	}
	// Backward: Lᵀ·X = Z.
	for k := len(sym.CB) - 1; k >= 0; k-- {
		cb := &sym.CB[k]
		w := cb.Width()
		ld := f.LD[k]
		xk := x[cb.Cols[0]:]
		for bi := range cb.Blocks {
			blk := &cb.Blocks[bi]
			blas.GemmTN(w, nrhs, blk.Rows(),
				f.Data[k][f.BlockOff[k][bi]:], ld, x[blk.FirstRow:], n, xk, n)
		}
		blas.TrsmLeftLTransUnit(w, nrhs, f.Data[k], ld, xk, n)
	}
	return x
}
