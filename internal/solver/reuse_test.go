package solver

import (
	"math"
	"math/cmplx"
	"testing"
)

// One analysis, both arithmetic kinds: the pattern-level pre-processing is
// value-type independent, so a single schedule must drive a real and a
// complex factorization of matrices sharing that pattern.
func TestAnalysisReuseAcrossArithmeticKinds(t *testing.T) {
	az := zLaplacian(12, 12)
	pat := az.Pattern()
	an := analyzeFor(t, pat, 4)

	// Real factorization of the pattern matrix itself.
	fr, err := FactorizePar(an.A, an.Sched)
	if err != nil {
		t.Fatal(err)
	}
	xr := make([]float64, pat.N)
	for i := range xr {
		xr[i] = float64(i%5) + 1
	}
	br := make([]float64, pat.N)
	an.A.MatVec(permuteVec(xr, an.Perm), br)
	got := fr.Solve(br)
	for i := range got {
		if math.Abs(got[i]-permuteVec(xr, an.Perm)[i]) > 1e-9 {
			t.Fatalf("real path broken at %d", i)
		}
	}

	// Complex factorization on the same schedule.
	paz := az.Permute(an.Perm)
	zf, err := FactorizeZPar(paz, an.Sched)
	if err != nil {
		t.Fatal(err)
	}
	xz := make([]complex128, pat.N)
	for i := range xz {
		xz[i] = complex(1, float64(i%3))
	}
	bz := make([]complex128, pat.N)
	paz.MatVec(xz, bz)
	gz := zf.Solve(bz)
	for i := range gz {
		if cmplx.Abs(gz[i]-xz[i]) > 1e-8 {
			t.Fatalf("complex path broken at %d", i)
		}
	}
}

func permuteVec(x []float64, perm []int) []float64 {
	out := make([]float64, len(x))
	for newI, old := range perm {
		out[newI] = x[old]
	}
	return out
}

// The gathered parallel factor must carry exactly the diagonal the
// sequential one does — D is the most sensitive part of LDLᵀ.
func TestParallelDiagonalMatches(t *testing.T) {
	a := laplacian2D(16, 16)
	an := analyzeFor(t, a, 8)
	seq, err := FactorizeSeq(an.A, an.Sym)
	if err != nil {
		t.Fatal(err)
	}
	par, err := FactorizePar(an.A, an.Sched)
	if err != nil {
		t.Fatal(err)
	}
	for k := range an.Sym.CB {
		ds := seq.Diag(k)
		dp := par.Diag(k)
		for j := range ds {
			if math.Abs(ds[j]-dp[j]) > 1e-12*(1+math.Abs(ds[j])) {
				t.Fatalf("cell %d D[%d]: %g vs %g", k, j, ds[j], dp[j])
			}
		}
	}
}

// Factor NNZ accounting is consistent between lazy and eager allocation.
func TestFactorsNNZAccounting(t *testing.T) {
	a := laplacian2D(8, 8)
	an := analyzeFor(t, a, 1)
	full := NewFactors(an.Sym)
	lazy := NewFactorsLazy(an.Sym)
	if lazy.NNZ() != 0 {
		t.Fatal("lazy factors should start empty")
	}
	var want int64
	for k := range an.Sym.CB {
		w := int64(an.Sym.CB[k].Width())
		want += w * int64(full.LD[k])
	}
	if full.NNZ() != want {
		t.Fatalf("NNZ %d want %d", full.NNZ(), want)
	}
	lazy.EnsureCell(0)
	if lazy.NNZ() == 0 || lazy.NNZ() >= full.NNZ() {
		t.Fatal("partial allocation accounting wrong")
	}
}
