package solver

import (
	"github.com/pastix-go/pastix/internal/sparse"
)

// RefineStats reports what adaptive iterative refinement did: how many
// correction sweeps ran, the componentwise backward error reached, and the
// full error trajectory (Trajectory[0] is the error of the input solution,
// one entry per accepted sweep after that — non-increasing by construction).
type RefineStats struct {
	Iterations    int       `json:"iterations"`
	BackwardError float64   `json:"backward_error"`
	Trajectory    []float64 `json:"trajectory,omitempty"`
	Converged     bool      `json:"converged"`
}

// RefineAdaptive improves x toward A·x = b by iterative refinement until the
// componentwise backward error ‖Ax−b‖∞/(‖A‖∞‖x‖∞+‖b‖∞) meets tol or
// stagnates (a sweep that fails to reduce it is discarded and the loop
// stops). tol <= 0 selects DefaultRefineTol, maxIter <= 0 a generous default
// bound. a, b and x live in the same (permuted) system the factor was
// computed in; the returned solution is the best iterate seen.
func (f *Factors) RefineAdaptive(a *sparse.SymMatrix, b, x []float64, tol float64, maxIter int) ([]float64, RefineStats) {
	if tol <= 0 {
		tol = DefaultRefineTol
	}
	if maxIter <= 0 {
		maxIter = defaultMaxRefine
	}
	be := sparse.Residual(a, x, b)
	stats := RefineStats{BackwardError: be, Trajectory: []float64{be}}
	cur := x
	for stats.Iterations < maxIter && be > tol {
		next := f.Refine(a, b, cur)
		nbe := sparse.Residual(a, next, b)
		if !(nbe < be) {
			break // stagnated: keep the best iterate
		}
		cur, be = next, nbe
		stats.Iterations++
		stats.BackwardError = be
		stats.Trajectory = append(stats.Trajectory, be)
	}
	stats.Converged = be <= tol
	return cur, stats
}
