package solver

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"github.com/pastix-go/pastix/internal/gen"
	"github.com/pastix-go/pastix/internal/trace"
)

// levelFixture factorizes a Poisson problem and returns analysis, factor and
// a right-hand side.
func levelFixture(t *testing.T, P int) (*Analysis, *Factors, []float64) {
	t.Helper()
	a := gen.Laplacian2D(18, 18)
	an := analyzeFor(t, a, P)
	f, err := an.FactorizeMatrixOptsCtx(context.Background(), an.A, ParOptions{Runtime: RuntimeShared})
	if err != nil {
		t.Fatal(err)
	}
	_, b := gen.RHSForSolution(a)
	// The engine works in the permuted system, like Factors.Solve.
	pb := make([]float64, len(b))
	for newI, old := range an.Perm {
		pb[newI] = b[old]
	}
	return an, f, pb
}

// TestSolveLevelBitwiseSeq is the core determinism property: the level-set
// engine (static and dynamic dispatch, several worker counts and cutoffs) is
// bitwise-identical to the sequential Factors.Solve.
func TestSolveLevelBitwiseSeq(t *testing.T) {
	an, f, pb := levelFixture(t, 4)
	ref := f.Solve(pb)
	for _, workers := range []int{1, 2, 4, 7} {
		for _, cutoff := range []int{0, 1, 3, 64} {
			pl := BuildSolvePlan(an.Sym, an.SolveDAG(), workers, cutoff)
			for _, dyn := range []bool{false, true} {
				x, err := SolveLevelCtx(context.Background(), pl, f, pb, LevelOptions{Dynamic: dyn})
				if err != nil {
					t.Fatalf("workers=%d cutoff=%d dyn=%v: %v", workers, cutoff, dyn, err)
				}
				for i := range ref {
					if x[i] != ref[i] {
						t.Fatalf("workers=%d cutoff=%d dyn=%v: x[%d] = %x, seq %x",
							workers, cutoff, dyn, i, x[i], ref[i])
					}
				}
			}
		}
	}
}

// TestSolveLevelPanelColumns checks the multi-RHS path: every column of a
// level-set panel solve must be bitwise-identical to the sequential
// single-RHS solve of that column (stronger than Factors.SolveMany, whose
// reciprocal-scaled diagonal differs in the last bits).
func TestSolveLevelPanelColumns(t *testing.T) {
	an, f, pb := levelFixture(t, 4)
	n := len(pb)
	const nrhs = 5
	panel := make([]float64, n*nrhs)
	for r := 0; r < nrhs; r++ {
		for i := 0; i < n; i++ {
			panel[i+r*n] = pb[i] * float64(r+1)
		}
	}
	pl := an.SolvePlanFor(4)
	x, err := SolveLevelCtx(context.Background(), pl, f, panel, LevelOptions{NRHS: nrhs})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < nrhs; r++ {
		col := make([]float64, n)
		copy(col, panel[r*n:(r+1)*n])
		ref := f.Solve(col)
		for i := range ref {
			if x[i+r*n] != ref[i] {
				t.Fatalf("col %d: x[%d] = %x, seq %x", r, i, x[i+r*n], ref[i])
			}
		}
	}
}

// TestSolvePlanCached checks the per-(analysis, workers) plan cache and the
// per-factor pack cache: same pointer back, safe under concurrent first use.
func TestSolvePlanCached(t *testing.T) {
	an, f, pb := levelFixture(t, 3)
	var wg sync.WaitGroup
	plans := make([]*SolvePlan, 8)
	for i := range plans {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			plans[i] = an.SolvePlanFor(3)
			if _, err := SolveLevelCtx(context.Background(), plans[i], f, pb, LevelOptions{}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(plans); i++ {
		if plans[i] != plans[0] {
			t.Fatal("SolvePlanFor rebuilt a cached plan")
		}
	}
	if an.SolvePlanFor(2) == plans[0] {
		t.Fatal("different worker counts share a plan")
	}
	st := plans[0].Stats()
	if st.Workers != 3 || st.Cells != an.Sym.NumCB() || st.Levels != an.SolveDAG().Depth() {
		t.Fatalf("PlanStats inconsistent: %+v", st)
	}
	if st.ParallelSteps+st.ChainSteps == 0 {
		t.Fatal("plan has no steps")
	}
}

// TestPrepareSolvePacksOnce checks PrepareSolve warms the pack so the first
// solve does no packing work (same pack pointer observed).
func TestPrepareSolvePacksOnce(t *testing.T) {
	an, f, pb := levelFixture(t, 4)
	st := an.PrepareSolve(f)
	if st.Workers != an.Sched.P {
		t.Fatalf("PrepareSolve stats for %d workers, schedule has %d", st.Workers, an.Sched.P)
	}
	warm := f.pack
	if warm == nil {
		t.Fatal("PrepareSolve did not build the pack")
	}
	if _, err := SolveLevelCtx(context.Background(), an.SolvePlanFor(an.Sched.P), f, pb, LevelOptions{}); err != nil {
		t.Fatal(err)
	}
	if f.pack != warm {
		t.Fatal("solve rebuilt the pack")
	}
}

// TestSolveLevelCancelled checks cancellation: a pre-cancelled context and a
// context cancelled mid-run must both return ctx.Err() with every worker
// unwound (the race detector guards the unwinding).
func TestSolveLevelCancelled(t *testing.T) {
	an, f, pb := levelFixture(t, 4)
	pl := an.SolvePlanFor(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveLevelCtx(ctx, pl, f, pb, LevelOptions{}); err != context.Canceled {
		t.Fatalf("pre-cancelled: err = %v", err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := SolveLevelCtx(ctx2, pl, f, pb, LevelOptions{})
		done <- err
	}()
	cancel2()
	if err := <-done; err != nil && err != context.Canceled {
		t.Fatalf("mid-run cancel: err = %v", err)
	}
}

// TestSolveLevelTraced checks the engine records one forward and one
// backward phase per worker into an attached recorder.
func TestSolveLevelTraced(t *testing.T) {
	an, f, pb := levelFixture(t, 4)
	pl := an.SolvePlanFor(4)
	rec := trace.New(4, 0)
	if _, err := SolveLevelCtx(context.Background(), pl, f, pb, LevelOptions{Trace: rec}); err != nil {
		t.Fatal(err)
	}
	if got := rec.KindCount(trace.KindPhase); got != 8 {
		t.Fatalf("recorded %d phase events, want 8 (fwd+bwd × 4 workers)", got)
	}
}

// TestSolveLevelShapeErrors pins the validation surface.
func TestSolveLevelShapeErrors(t *testing.T) {
	an, f, pb := levelFixture(t, 2)
	pl := an.SolvePlanFor(2)
	if _, err := SolveLevelCtx(context.Background(), pl, f, pb[:len(pb)-1], LevelOptions{}); err == nil {
		t.Fatal("short rhs accepted")
	}
	if _, err := SolveLevelCtx(context.Background(), pl, f, pb, LevelOptions{NRHS: 2}); err == nil {
		t.Fatal("panel shorter than n×nrhs accepted")
	}
	other := analyzeFor(t, gen.Laplacian2D(6, 6), 2)
	of, err := other.Factorize()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolveLevelCtx(context.Background(), pl, of, pb, LevelOptions{}); err == nil {
		t.Fatal("foreign factor accepted")
	}
}

// TestLevelStormDynamic is the steal/level-storm test: many more workers
// than the widest level keeps busy, tiny cutoff so every level is a parallel
// step, dynamic fetch — run repeatedly (under -race via make solvestress).
// Results must stay bitwise-identical to sequential every round, all
// parallel cells must be executed, and with contending workers more than one
// worker must win cells overall.
func TestLevelStormDynamic(t *testing.T) {
	an, f, pb := levelFixture(t, 4)
	ref := f.Solve(pb)
	pl := BuildSolvePlan(an.Sym, an.SolveDAG(), 8, 1)
	var parCells int64
	for _, s := range pl.steps {
		if s.Parallel {
			parCells += int64(len(s.Cells))
		}
	}
	if parCells == 0 {
		t.Fatal("storm plan has no parallel cells")
	}
	rounds := 20
	if testing.Short() {
		rounds = 5
	}
	winners := map[int]bool{}
	for r := 0; r < rounds; r++ {
		var st LevelStats
		x, err := SolveLevelCtx(context.Background(), pl, f, pb, LevelOptions{Dynamic: true, Stats: &st})
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		var got int64
		for p, c := range st.Executed {
			got += c
			if c > 0 {
				winners[p] = true
			}
		}
		// Forward and backward both traverse the parallel cells.
		if got != 2*parCells {
			t.Fatalf("round %d: executed %d parallel cells, want %d", r, got, 2*parCells)
		}
		for i := range ref {
			if x[i] != ref[i] {
				t.Fatalf("round %d: x[%d] = %x, seq %x (storm broke determinism)", r, i, x[i], ref[i])
			}
		}
	}
	if len(winners) < 2 {
		t.Fatalf("storm degenerated: only %d worker(s) ever fetched cells", len(winners))
	}
}

// TestSolveLevelAllRuntimeFactors checks the engine accepts factors from
// every deterministic runtime interchangeably (they are bitwise-identical)
// and from mpsim (bitwise against its own sequential solve).
func TestSolveLevelAllRuntimeFactors(t *testing.T) {
	a := gen.RandomSPD(160, 4, 3)
	an := analyzeFor(t, a, 4)
	_, b := gen.RHSForSolution(a)
	pb := make([]float64, len(b))
	for newI, old := range an.Perm {
		pb[newI] = b[old]
	}
	pl := an.SolvePlanFor(4)
	for _, rt := range []Runtime{RuntimeSequential, RuntimeShared, RuntimeDynamic, RuntimeMPSim} {
		f, err := an.FactorizeMatrixOptsCtx(context.Background(), an.A, ParOptions{Runtime: rt})
		if err != nil {
			t.Fatalf("%v: %v", rt, err)
		}
		ref := f.Solve(pb)
		x, err := SolveLevelCtx(context.Background(), pl, f, pb, LevelOptions{})
		if err != nil {
			t.Fatalf("%v: %v", rt, err)
		}
		for i := range ref {
			if x[i] != ref[i] {
				t.Fatalf("%v: x[%d] = %x, seq %x", rt, i, x[i], ref[i])
			}
		}
	}
}

func ExampleSolveLevelCtx() {
	a := gen.Laplacian2D(8, 8)
	an, err := Analyze(a, Options{P: 2})
	if err != nil {
		panic(err)
	}
	f, err := an.Factorize()
	if err != nil {
		panic(err)
	}
	_, b := gen.RHSForSolution(a)
	pb := make([]float64, len(b))
	for newI, old := range an.Perm {
		pb[newI] = b[old]
	}
	x, err := SolveLevelCtx(context.Background(), an.SolvePlanFor(2), f, pb, LevelOptions{})
	if err != nil {
		panic(err)
	}
	seq := f.Solve(pb)
	same := true
	for i := range x {
		if x[i] != seq[i] {
			same = false
		}
	}
	fmt.Println("bitwise equal to sequential:", same)
	// Output: bitwise equal to sequential: true
}
