package solver

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/pastix-go/pastix/internal/blas"
	"github.com/pastix-go/pastix/internal/faults"
	"github.com/pastix-go/pastix/internal/mpsim"
	"github.com/pastix-go/pastix/internal/sched"
	"github.com/pastix-go/pastix/internal/trace"
)

// Parallel triangular solve. The distribution follows the factorization
// schedule's ownership: the diagonal block of a column block lives on its
// FACTOR (or COMP1D) processor and each off-diagonal block on its BDIV (or
// COMP1D) processor. The forward sweep pipelines y segments down the
// elimination order with fan-in aggregation of the L·y contributions; the
// backward sweep runs the mirror image. Both phases are fully determined by
// the static schedule, like the factorization itself.
const (
	msgYSeg int8 = 10 + iota // forward solution segment of a cell (Tag = cell)
	msgFwdC                  // aggregated forward contributions (Tag = target cell)
	msgXSeg                  // backward solution segment (Tag = cell)
	msgBwdC                  // aggregated backward dot-products (Tag = target cell)
)

// solvePlan precomputes the per-cell communication counts of the parallel
// solve from the schedule's ownership.
type solvePlan struct {
	sch       *sched.Schedule
	diagOwner []int
	blockOwn  [][]int
	// Forward: contributions into cell k come from owners of blocks facing k.
	fwdMsgs  []int         // distinct remote source procs per cell
	fwdLocal []map[int]int // per proc: #owned blocks facing cell k
	ySendTo  [][]int       // per cell: distinct remote procs owning its blocks
	// Backward: dot-products for cell k come from owners of k's own blocks;
	// x_k is needed by owners of blocks facing k.
	bwdMsgs  []int
	bwdLocal []map[int]int
	xSendTo  [][]int
}

func newSolvePlan(sch *sched.Schedule) *solvePlan {
	sym := sch.Sym()
	ncb := sym.NumCB()
	P := sch.P
	pl := &solvePlan{
		sch:       sch,
		diagOwner: make([]int, ncb),
		blockOwn:  make([][]int, ncb),
		fwdMsgs:   make([]int, ncb),
		fwdLocal:  make([]map[int]int, P),
		ySendTo:   make([][]int, ncb),
		bwdMsgs:   make([]int, ncb),
		bwdLocal:  make([]map[int]int, P),
		xSendTo:   make([][]int, ncb),
	}
	for p := 0; p < P; p++ {
		pl.fwdLocal[p] = make(map[int]int)
		pl.bwdLocal[p] = make(map[int]int)
	}
	for k := 0; k < ncb; k++ {
		if id := sch.Comp1DOf[k]; id >= 0 {
			pl.diagOwner[k] = sch.Tasks[id].Proc
		} else {
			pl.diagOwner[k] = sch.Tasks[sch.FactorOf[k]].Proc
		}
		pl.blockOwn[k] = make([]int, len(sym.CB[k].Blocks))
		for b := range sym.CB[k].Blocks {
			if id := sch.Comp1DOf[k]; id >= 0 {
				pl.blockOwn[k][b] = sch.Tasks[id].Proc
			} else {
				pl.blockOwn[k][b] = sch.Tasks[sch.BDivOf[k][b]].Proc
			}
		}
	}
	fwdSrc := make([]map[int]bool, ncb) // target cell -> source procs
	ySend := make([]map[int]bool, ncb)
	bwdSrc := make([]map[int]bool, ncb)
	xSend := make([]map[int]bool, ncb)
	for k := 0; k < ncb; k++ {
		fwdSrc[k] = make(map[int]bool)
		ySend[k] = make(map[int]bool)
		bwdSrc[k] = make(map[int]bool)
		xSend[k] = make(map[int]bool)
	}
	for k := 0; k < ncb; k++ {
		for b, blk := range sym.CB[k].Blocks {
			o := pl.blockOwn[k][b]
			f := blk.Facing
			// Forward: block (k,b) contributes L_b·y_k into cell f's segment.
			if o != pl.diagOwner[f] {
				fwdSrc[f][o] = true
			}
			pl.fwdLocal[o][f]++
			// Forward: the block owner needs y_k.
			if o != pl.diagOwner[k] {
				ySend[k][o] = true
			}
			// Backward: block (k,b) computes L_bᵀ·x_f for cell k's segment.
			if o != pl.diagOwner[k] {
				bwdSrc[k][o] = true
			}
			pl.bwdLocal[o][k]++
			// Backward: the block owner needs x_f.
			if o != pl.diagOwner[f] {
				xSend[f][o] = true
			}
		}
	}
	setToSlice := func(m map[int]bool) []int {
		out := make([]int, 0, len(m))
		for p := range m {
			out = append(out, p)
		}
		return out
	}
	for k := 0; k < ncb; k++ {
		pl.fwdMsgs[k] = len(fwdSrc[k])
		pl.bwdMsgs[k] = len(bwdSrc[k])
		pl.ySendTo[k] = setToSlice(ySend[k])
		pl.xSendTo[k] = setToSlice(xSend[k])
	}
	return pl
}

// SolvePar solves A·x = b (permuted ordering) on sch.P goroutine processors
// using the factorization's data distribution. f must be the (gathered)
// factor of the matrix the schedule was built for. The result matches the
// sequential Solve to rounding.
func SolvePar(sch *sched.Schedule, f *Factors, b []float64) ([]float64, error) {
	return SolveParCtx(context.Background(), sch, f, b, nil)
}

// SolveParCtx is SolvePar under a context and an optional trace recorder.
// Cancelling ctx closes the communicator so blocked receivers unwind;
// ctx.Err() is returned once every worker has finished. With a recorder
// attached, each processor records its forward and backward sweeps as phase
// events alongside the message sends/receives.
func SolveParCtx(ctx context.Context, sch *sched.Schedule, f *Factors, b []float64, rec *trace.Recorder) ([]float64, error) {
	return SolveParOpts(ctx, sch, f, b, SolveOptions{Trace: rec})
}

// SolveOptions tunes the parallel triangular solve runtime.
type SolveOptions struct {
	// Trace attaches an execution recorder (see ParOptions.Trace).
	Trace *trace.Recorder
	// Faults injects deterministic message and worker faults and arms the
	// mpsim reliability layer (see ParOptions.Faults).
	Faults *faults.Plan
}

// SolveParOpts is SolveParCtx with runtime options, including fault
// injection.
func SolveParOpts(ctx context.Context, sch *sched.Schedule, f *Factors, b []float64, sopts SolveOptions) ([]float64, error) {
	return SolveParManyOpts(ctx, sch, f, b, 1, sopts)
}

// SolveParManyOpts solves A·X = B for nrhs right-hand sides at once on the
// parallel message-passing runtime: b is an n×nrhs column-major panel in the
// permuted ordering, and both sweeps run over whole panels — one message per
// solution segment carrying nrhs columns instead of nrhs separate sweeps.
// The per-column arithmetic (kernel loop order and the canonical source-sorted
// application of remote contributions) is exactly that of the single-RHS
// solve, so column r of the result is bit-identical to SolveParOpts on
// column r of b.
func SolveParManyOpts(ctx context.Context, sch *sched.Schedule, f *Factors, b []float64, nrhs int, sopts SolveOptions) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sym := sch.Sym()
	if nrhs <= 0 || len(b) != sym.N*nrhs {
		return nil, fmt.Errorf("solver: rhs panel must be n×nrhs = %d×%d: %w", sym.N, nrhs, ErrShape)
	}
	if f.Compressed() {
		return nil, ErrCompressed
	}
	pl := newSolvePlan(sch)
	P := sch.P
	rec := sopts.Trace
	x := make([]float64, sym.N*nrhs)
	comm := mpsim.NewComm(P)
	if rec != nil {
		comm.SetTrace(rec)
	}
	var inj *faults.Injector
	if sopts.Faults.Active() {
		var err error
		inj, err = faults.New(*sopts.Faults)
		if err != nil {
			return nil, err
		}
		if rec != nil {
			inj.SetTrace(rec)
		}
		comm.EnableFaults(inj, sopts.Faults.Reliability)
	}
	if done := ctx.Done(); done != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-done:
				comm.Close()
			case <-stop:
			}
		}()
	}
	workers := make([]*solveWorker, P)
	err := comm.Run(func(p int) error {
		// As in the factorization, the worker state is the completion log: a
		// restarted worker resumes its sweep at the cell it crashed before.
		w := workers[p]
		if w == nil {
			w = &solveWorker{p: p, pl: pl, f: f, comm: comm, inj: inj,
				nrhs: nrhs, n: sym.N,
				y:      make(map[int][]float64),
				xs:     make(map[int][]float64),
				fwdAcc: make(map[int][]float64),
				fwdRem: make(map[int]int),
				fwdIn:  make(map[int][]aubContrib),
				bwdAcc: make(map[int][]float64),
				bwdRem: make(map[int]int),
				bwdIn:  make(map[int][]aubContrib),
				got:    make(map[int]int),
				bwdK:   sym.NumCB() - 1,
			}
			workers[p] = w
		}
		return w.run(b, x, rec)
	})
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		if errors.Is(err, ErrFaultBudget) {
			ncb := sym.NumCB()
			prog := make([]TaskProgress, P)
			for p := 0; p < P; p++ {
				prog[p] = TaskProgress{Total: 2 * ncb}
				if w := workers[p]; w != nil {
					prog[p].Done = w.fwdK + (ncb - 1 - w.bwdK)
				}
			}
			return nil, &FaultBudgetError{Progress: prog, Err: err}
		}
		return nil, err
	}
	return x, nil
}

type solveWorker struct {
	p    int
	pl   *solvePlan
	f    *Factors
	comm *mpsim.Comm
	inj  *faults.Injector // nil disables fault injection
	nrhs int              // right-hand sides per panel (1 = classic solve)
	n    int              // matrix order (panel leading dimension)

	y      map[int][]float64 // forward segments by cell (width×nrhs panels)
	xs     map[int][]float64 // backward segments by cell (width×nrhs panels)
	fwdAcc map[int][]float64 // locally aggregated forward contributions by target cell
	fwdRem map[int]int
	bwdAcc map[int][]float64
	bwdRem map[int]int
	got    map[int]int // received aggregated messages per cell
	// fwdIn/bwdIn buffer received remote contribution messages per target
	// cell; they are applied in canonical (source-sorted) order once the cell
	// is processed, for bit-reproducibility (see procState.aubIn).
	fwdIn map[int][]aubContrib
	bwdIn map[int][]aubContrib
	// pending buffers backward-phase messages that arrive while this
	// processor is still in its forward sweep (peers may run ahead).
	pending []mpsim.Message

	// Completion log for crash recovery: phase initialisation flags and the
	// sweep positions (next forward cell ascending, next backward cell
	// descending). Boundary steps are numbered fwdK in the forward sweep and
	// 2·ncb−1−bwdK in the backward sweep, stable across restarts.
	fwdInit bool
	fwdDone bool
	bwdInit bool
	fwdK    int
	bwdK    int
}

// boundary is the per-cell task boundary: heartbeat plus any scheduled crash
// or stall.
func (w *solveWorker) boundary(step int) error {
	if w.inj == nil {
		return nil
	}
	w.comm.Heartbeat(w.p)
	return w.inj.Boundary(w.p, step)
}

// run executes (or resumes) both sweeps.
func (w *solveWorker) run(b, x []float64, rec *trace.Recorder) error {
	if !w.fwdInit {
		for k, c := range w.pl.fwdLocal[w.p] {
			w.fwdRem[k] = c
		}
		w.fwdInit = true
	}
	if !w.fwdDone {
		var fwdStart time.Duration
		if rec != nil {
			fwdStart = rec.Now()
		}
		if err := w.forward(b); err != nil {
			return err
		}
		if rec != nil {
			rec.Phase(w.p, trace.PhaseForward, fwdStart, rec.Now())
		}
		w.fwdDone = true
	}
	if !w.bwdInit {
		for k, c := range w.pl.bwdLocal[w.p] {
			w.bwdRem[k] = c
		}
		w.got = make(map[int]int)
		w.bwdInit = true
	}
	var bwdStart time.Duration
	if rec != nil {
		bwdStart = rec.Now()
	}
	if err := w.backward(x); err != nil {
		return err
	}
	if rec != nil {
		rec.Phase(w.p, trace.PhaseBackward, bwdStart, rec.Now())
	}
	return nil
}

// applyIn drains buf[k] in canonical source order into apply.
func applyIn(buf map[int][]aubContrib, k int, apply func([]float64)) {
	contribs := buf[k]
	if len(contribs) == 0 {
		return
	}
	delete(buf, k)
	sort.SliceStable(contribs, func(i, j int) bool { return contribs[i].src < contribs[j].src })
	for _, c := range contribs {
		apply(c.data)
	}
}

func (w *solveWorker) handleFwd(m mpsim.Message) error {
	switch m.Kind {
	case msgXSeg, msgBwdC:
		// A peer already entered its backward sweep; keep for later.
		w.pending = append(w.pending, m)
	case msgYSeg:
		w.y[m.Tag] = m.Data
	case msgFwdC:
		w.fwdIn[m.Tag] = append(w.fwdIn[m.Tag], aubContrib{src: m.Src, data: m.Data})
		w.got[m.Tag]++
	default:
		return fmt.Errorf("solver: unexpected message kind %d in forward solve", m.Kind)
	}
	return nil
}

func (w *solveWorker) forward(b []float64) error {
	pl := w.pl
	sym := pl.sch.Sym()
	for ; w.fwdK < sym.NumCB(); w.fwdK++ {
		k := w.fwdK
		if err := w.boundary(k); err != nil {
			return err
		}
		cb := &sym.CB[k]
		wdt := cb.Width()
		ld := w.f.LD[k]
		if pl.diagOwner[k] == w.p {
			for w.got[k] < pl.fwdMsgs[k] {
				m, err := w.comm.Recv(w.p)
				if err != nil {
					return err
				}
				if err := w.handleFwd(m); err != nil {
					return err
				}
			}
			yk := make([]float64, wdt*w.nrhs)
			for r := 0; r < w.nrhs; r++ {
				copy(yk[r*wdt:(r+1)*wdt], b[cb.Cols[0]+r*w.n:cb.Cols[1]+r*w.n])
			}
			if acc := w.fwdAcc[k]; acc != nil {
				for i := range yk {
					yk[i] -= acc[i]
				}
				delete(w.fwdAcc, k)
			}
			applyIn(w.fwdIn, k, func(data []float64) {
				for i := range yk {
					yk[i] -= data[i]
				}
			})
			blas.TrsmLeftLowerUnit(wdt, w.nrhs, w.f.Data[k], ld, yk, wdt)
			w.y[k] = yk
			for _, q := range pl.ySendTo[k] {
				w.comm.Send(mpsim.Message{Kind: msgYSeg, Src: w.p, Dst: q, Tag: k, Data: yk})
			}
		}
		// Owned off-diagonal blocks contribute L_b·y_k to their facing cells.
		for bi, blk := range cb.Blocks {
			if pl.blockOwn[k][bi] != w.p {
				continue
			}
			for w.y[k] == nil {
				m, err := w.comm.Recv(w.p)
				if err != nil {
					return err
				}
				if err := w.handleFwd(m); err != nil {
					return err
				}
			}
			f := blk.Facing
			fcb := &sym.CB[f]
			fw := fcb.Width()
			acc := w.fwdAcc[f]
			if acc == nil {
				acc = make([]float64, fw*w.nrhs)
				w.fwdAcc[f] = acc
			}
			// acc[rows] += L_b · Y_k  (GemmNN computes C -= A·B, so negate by
			// accumulating into a positively-signed buffer via a temp panel).
			off := blk.FirstRow - fcb.Cols[0]
			br := blk.Rows()
			tmp := make([]float64, br*w.nrhs)
			blas.GemmNN(br, w.nrhs, wdt, w.f.Data[k][w.f.BlockOff[k][bi]:], ld, w.y[k], wdt, tmp, br)
			for r := 0; r < w.nrhs; r++ {
				seg := acc[off+r*fw : off+r*fw+br]
				ts := tmp[r*br : (r+1)*br]
				for i := range seg {
					seg[i] -= ts[i] // tmp = -L·Y, so acc += L·Y
				}
			}
			w.fwdRem[f]--
			if w.fwdRem[f] == 0 && pl.diagOwner[f] != w.p {
				buf := w.fwdAcc[f]
				delete(w.fwdAcc, f)
				delete(w.fwdRem, f)
				w.comm.Send(mpsim.Message{Kind: msgFwdC, Src: w.p, Dst: pl.diagOwner[f], Tag: f, Data: buf})
			}
		}
	}
	return nil
}

func (w *solveWorker) handleBwd(m mpsim.Message) error {
	switch m.Kind {
	case msgXSeg:
		w.xs[m.Tag] = m.Data
	case msgBwdC:
		w.bwdIn[m.Tag] = append(w.bwdIn[m.Tag], aubContrib{src: m.Src, data: m.Data})
		w.got[m.Tag]++
	default:
		return fmt.Errorf("solver: unexpected message kind %d in backward solve", m.Kind)
	}
	return nil
}

func (w *solveWorker) backward(x []float64) error {
	for _, m := range w.pending {
		if err := w.handleBwd(m); err != nil {
			return err
		}
	}
	w.pending = nil
	pl := w.pl
	sym := pl.sch.Sym()
	ncb := sym.NumCB()
	for ; w.bwdK >= 0; w.bwdK-- {
		k := w.bwdK
		if err := w.boundary(2*ncb - 1 - k); err != nil {
			return err
		}
		cb := &sym.CB[k]
		wdt := cb.Width()
		ld := w.f.LD[k]
		// Owned blocks of cell k compute L_bᵀ·x_f into k's accumulator.
		for bi, blk := range cb.Blocks {
			if pl.blockOwn[k][bi] != w.p {
				continue
			}
			f := blk.Facing
			for w.xs[f] == nil {
				m, err := w.comm.Recv(w.p)
				if err != nil {
					return err
				}
				if err := w.handleBwd(m); err != nil {
					return err
				}
			}
			acc := w.bwdAcc[k]
			if acc == nil {
				acc = make([]float64, wdt*w.nrhs)
				w.bwdAcc[k] = acc
			}
			off := blk.FirstRow - sym.CB[f].Cols[0]
			blas.GemmTN(wdt, w.nrhs, blk.Rows(), w.f.Data[k][w.f.BlockOff[k][bi]:], ld,
				w.xs[f][off:], sym.CB[f].Width(), acc, wdt)
			// GemmTN computes acc -= L_bᵀ·X, which is exactly the sign needed.
			w.bwdRem[k]--
			if w.bwdRem[k] == 0 && pl.diagOwner[k] != w.p {
				buf := w.bwdAcc[k]
				delete(w.bwdAcc, k)
				delete(w.bwdRem, k)
				w.comm.Send(mpsim.Message{Kind: msgBwdC, Src: w.p, Dst: pl.diagOwner[k], Tag: k, Data: buf})
			}
		}
		if pl.diagOwner[k] != w.p {
			continue
		}
		for w.got[k] < pl.bwdMsgs[k] {
			m, err := w.comm.Recv(w.p)
			if err != nil {
				return err
			}
			if err := w.handleBwd(m); err != nil {
				return err
			}
		}
		// X_k = L_kkᵀ \ (D⁻¹ Y_k + Σ accumulated −L_bᵀ X).
		xk := make([]float64, wdt*w.nrhs)
		yk := w.y[k]
		for r := 0; r < w.nrhs; r++ {
			for j := 0; j < wdt; j++ {
				xk[r*wdt+j] = yk[r*wdt+j] / w.f.Data[k][j+j*ld]
			}
		}
		if acc := w.bwdAcc[k]; acc != nil {
			for i := range xk {
				xk[i] += acc[i]
			}
			delete(w.bwdAcc, k)
		}
		applyIn(w.bwdIn, k, func(data []float64) {
			for i := range xk {
				xk[i] += data[i]
			}
		})
		blas.TrsmLeftLTransUnit(wdt, w.nrhs, w.f.Data[k], ld, xk, wdt)
		w.xs[k] = xk
		for r := 0; r < w.nrhs; r++ {
			copy(x[cb.Cols[0]+r*w.n:cb.Cols[1]+r*w.n], xk[r*wdt:(r+1)*wdt])
		}
		for _, q := range pl.xSendTo[k] {
			w.comm.Send(mpsim.Message{Kind: msgXSeg, Src: w.p, Dst: q, Tag: k, Data: xk})
		}
	}
	return nil
}
