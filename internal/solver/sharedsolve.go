package solver

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/pastix-go/pastix/internal/blas"
	"github.com/pastix-go/pastix/internal/sched"
	"github.com/pastix-go/pastix/internal/trace"
)

// SolveShared is the shared-memory counterpart of SolvePar: the block
// triangular solves over the schedule's data distribution, with the solution
// and the per-cell accumulators living in shared arrays instead of message
// payloads. Cell-level dependency counters replace the fan-in messages: a
// diagonal solve fires once every contribution of the blocks facing the cell
// has been accumulated in place, and solution segments are read directly
// from the shared vector once the owner signals them solved. The result
// matches the sequential Solve to rounding.
func SolveShared(sch *sched.Schedule, f *Factors, b []float64) ([]float64, error) {
	return SolveSharedCtx(context.Background(), sch, f, b, nil)
}

// SolveSharedCtx is SolveShared under a context and an optional trace
// recorder. Cancelling ctx wakes processors blocked on cell gates and
// ctx.Err() is returned once every worker has unwound. With a recorder
// attached, each processor records its forward and backward sweeps as phase
// events.
func SolveSharedCtx(ctx context.Context, sch *sched.Schedule, f *Factors, b []float64, rec *trace.Recorder) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sym := sch.Sym()
	if len(b) != sym.N {
		return nil, fmt.Errorf("solver: rhs length %d, matrix order %d: %w", len(b), sym.N, ErrShape)
	}
	if f.Compressed() {
		return nil, ErrCompressed
	}
	pl := newSolvePlan(sch)
	ncb := sym.NumCB()
	ss := &sharedSolve{
		pl:      pl,
		f:       f,
		rec:     rec,
		ctx:     ctx,
		ctxDone: ctx.Done(),
		y:       make([]float64, sym.N),
		x:       make([]float64, sym.N),
		acc:     make([][]float64, ncb),
		lock:    make([]sync.Mutex, ncb),
		contrib: make([]taskGate, ncb),
		solved:  make([]chan struct{}, ncb),
	}
	prepare := func(total func(k int) int32) {
		for k := 0; k < ncb; k++ {
			ss.acc[k] = nil
			ss.solved[k] = make(chan struct{})
			ss.contrib[k].ready = make(chan struct{})
			ss.contrib[k].remaining.Store(total(k))
			if total(k) == 0 {
				close(ss.contrib[k].ready)
			}
		}
	}

	// Forward sweep: contributions into cell k come from every block facing
	// k, wherever it is owned.
	fwdTotal := make([]int32, ncb)
	bwdTotal := make([]int32, ncb)
	for k := 0; k < ncb; k++ {
		bwdTotal[k] = int32(len(sym.CB[k].Blocks))
		for _, blk := range sym.CB[k].Blocks {
			fwdTotal[blk.Facing]++
		}
	}
	prepare(func(k int) int32 { return fwdTotal[k] })
	if err := ss.runSweep(sch.P, trace.PhaseForward, func(p int) error { return ss.forward(p, b) }); err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, err
	}
	// Backward sweep: the dot-products for cell k come from k's own blocks.
	prepare(func(k int) int32 { return bwdTotal[k] })
	if err := ss.runSweep(sch.P, trace.PhaseBackward, ss.backward); err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, err
	}
	return ss.x, nil
}

type sharedSolve struct {
	pl  *solvePlan
	f   *Factors
	rec *trace.Recorder // nil disables tracing

	ctx     context.Context
	ctxDone <-chan struct{} // ctx.Done(); nil when uncancellable

	y, x    []float64
	acc     [][]float64  // per-cell contribution accumulator (lazily allocated)
	lock    []sync.Mutex // per cell: serializes accumulation
	contrib []taskGate   // per cell: all contributions accumulated
	solved  []chan struct{}

	abort     chan struct{}
	abortOnce sync.Once
}

func (ss *sharedSolve) runSweep(P int, phase int8, fn func(p int) error) error {
	ss.abort = make(chan struct{})
	ss.abortOnce = sync.Once{}
	errs := make([]error, P)
	var wg sync.WaitGroup
	for p := 0; p < P; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			var start time.Duration
			if ss.rec != nil {
				start = ss.rec.Now()
			}
			if err := fn(p); err != nil {
				errs[p] = err
				ss.abortOnce.Do(func() { close(ss.abort) })
				return
			}
			if ss.rec != nil {
				ss.rec.Phase(p, phase, start, ss.rec.Now())
			}
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// waitGate blocks until the gate opens, the sweep aborts, or the context is
// cancelled (a nil ctxDone channel never fires).
func (ss *sharedSolve) waitGate(g *taskGate) error {
	select {
	case <-g.ready:
		return nil
	case <-ss.abort:
		return errSharedAborted
	case <-ss.ctxDone:
		return ss.ctx.Err()
	}
}

func (ss *sharedSolve) waitSolved(k int) error {
	select {
	case <-ss.solved[k]:
		return nil
	case <-ss.abort:
		return errSharedAborted
	case <-ss.ctxDone:
		return ss.ctx.Err()
	}
}

// addInto accumulates fn's output into cell k's accumulator (length = cell
// width) under the cell lock, then decrements the contribution gate.
func (ss *sharedSolve) addInto(k, w int, fn func(acc []float64)) {
	ss.lock[k].Lock()
	if ss.acc[k] == nil {
		ss.acc[k] = make([]float64, w)
	}
	fn(ss.acc[k])
	ss.lock[k].Unlock()
	if ss.contrib[k].remaining.Add(-1) == 0 {
		close(ss.contrib[k].ready)
	}
}

func (ss *sharedSolve) forward(p int, b []float64) error {
	pl := ss.pl
	sym := pl.sch.Sym()
	for k := 0; k < sym.NumCB(); k++ {
		cb := &sym.CB[k]
		w := cb.Width()
		ld := ss.f.LD[k]
		if pl.diagOwner[k] == p {
			if err := ss.waitGate(&ss.contrib[k]); err != nil {
				return err
			}
			yk := ss.y[cb.Cols[0]:cb.Cols[1]]
			copy(yk, b[cb.Cols[0]:cb.Cols[1]])
			if acc := ss.acc[k]; acc != nil {
				for i := range yk {
					yk[i] += acc[i] // acc holds −Σ L_b·y already
				}
			}
			blas.TrsvLowerUnit(w, ss.f.Data[k], ld, yk)
			close(ss.solved[k])
		}
		for bi, blk := range cb.Blocks {
			if pl.blockOwn[k][bi] != p {
				continue
			}
			if err := ss.waitSolved(k); err != nil {
				return err
			}
			fcb := &sym.CB[blk.Facing]
			off := blk.FirstRow - fcb.Cols[0]
			rows := blk.Rows()
			yk := ss.y[cb.Cols[0]:cb.Cols[1]]
			dataB := ss.f.Data[k][ss.f.BlockOff[k][bi]:]
			ss.addInto(blk.Facing, fcb.Width(), func(acc []float64) {
				// GemvN accumulates acc −= L_b·y_k, the sign forward needs.
				blas.GemvN(rows, w, dataB, ld, yk, acc[off:off+rows])
			})
		}
	}
	return nil
}

func (ss *sharedSolve) backward(p int) error {
	pl := ss.pl
	sym := pl.sch.Sym()
	for k := sym.NumCB() - 1; k >= 0; k-- {
		cb := &sym.CB[k]
		w := cb.Width()
		ld := ss.f.LD[k]
		for bi, blk := range cb.Blocks {
			if pl.blockOwn[k][bi] != p {
				continue
			}
			if err := ss.waitSolved(blk.Facing); err != nil {
				return err
			}
			fcb := &sym.CB[blk.Facing]
			off := blk.FirstRow - fcb.Cols[0]
			xf := ss.x[fcb.Cols[0]+off : fcb.Cols[0]+off+blk.Rows()]
			dataB := ss.f.Data[k][ss.f.BlockOff[k][bi]:]
			rows := blk.Rows()
			ss.addInto(k, w, func(acc []float64) {
				// GemvT accumulates acc −= L_bᵀ·x_f, the sign backward needs.
				blas.GemvT(rows, w, dataB, ld, xf, acc)
			})
		}
		if pl.diagOwner[k] != p {
			continue
		}
		if err := ss.waitGate(&ss.contrib[k]); err != nil {
			return err
		}
		xk := ss.x[cb.Cols[0]:cb.Cols[1]]
		for j := 0; j < w; j++ {
			xk[j] = ss.y[cb.Cols[0]+j] / ss.f.Data[k][j+j*ld]
		}
		if acc := ss.acc[k]; acc != nil {
			for i := range xk {
				xk[i] += acc[i]
			}
		}
		blas.TrsvLowerTransUnit(w, ss.f.Data[k], ld, xk)
		close(ss.solved[k])
	}
	return nil
}
