package solver

import (
	"testing"

	"github.com/pastix-go/pastix/internal/gen"
)

// The executed fan-in protocol must send exactly the messages the static
// schedule implies: one AUB per (source processor, destination task) pair,
// one diagonal-block transfer per remote BDIV consumer group, one panel
// transfer per remote BMOD consumer group.
func TestExecutedMessagesMatchPrediction(t *testing.T) {
	for _, name := range []string{"QUER", "THREAD"} {
		p, err := gen.Generate(name, 0.03)
		if err != nil {
			t.Fatal(err)
		}
		for _, P := range []int{2, 4, 8} {
			an := analyzeFor(t, p.A, P)
			_, st, err := FactorizeParStats(an.A, an.Sched, ParOptions{})
			if err != nil {
				t.Fatalf("%s P=%d: %v", name, P, err)
			}
			if st.Messages != st.PredictedMessages {
				t.Fatalf("%s P=%d: sent %d messages, schedule predicts %d",
					name, P, st.Messages, st.PredictedMessages)
			}
			if st.Messages > 0 && st.Bytes == 0 {
				t.Fatalf("%s P=%d: messages without payload", name, P)
			}
		}
	}
}

// Fan-both spilling may only add messages, never lose any.
func TestFanBothSendsMoreMessages(t *testing.T) {
	p, err := gen.Generate("QUER", 0.03)
	if err != nil {
		t.Fatal(err)
	}
	an := analyzeFor(t, p.A, 4)
	_, pure, err := FactorizeParStats(an.A, an.Sched, ParOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, both, err := FactorizeParStats(an.A, an.Sched, ParOptions{MaxAUBBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if both.Messages < pure.Messages {
		t.Fatalf("fan-both sent fewer messages (%d) than fan-in (%d)", both.Messages, pure.Messages)
	}
	if pure.Messages != pure.PredictedMessages {
		t.Fatalf("fan-in count %d != prediction %d", pure.Messages, pure.PredictedMessages)
	}
}

func TestSingleProcNoMessages(t *testing.T) {
	a := laplacian2D(10, 10)
	an := analyzeFor(t, a, 1)
	_, st, err := FactorizeParStats(an.A, an.Sched, ParOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Messages != 0 || st.Bytes != 0 {
		t.Fatalf("sequential run sent %d messages", st.Messages)
	}
	_ = gen.Names // keep the import used if the test shrinks
}
