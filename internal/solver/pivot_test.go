package solver

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"github.com/pastix-go/pastix/internal/gen"
	"github.com/pastix-go/pastix/internal/sparse"
)

// analyzeDefault analyzes with default partitioning (BlockSize 64), so the
// graded-pivot generator's cliques (bs ≤ 64) are never split and stay one
// supernode each.
func analyzeDefault(t *testing.T, a *sparse.SymMatrix, P int) *Analysis {
	t.Helper()
	an, err := Analyze(a, Options{P: P})
	if err != nil {
		t.Fatal(err)
	}
	return an
}

// factorizeAllRuntimes runs the same pivoted factorization on the three
// runtimes: the sequential reference, the mpsim message-passing fan-in and
// the zero-copy shared-memory scheduler.
func factorizeAllRuntimes(t *testing.T, a *sparse.SymMatrix, P int, sp StaticPivot) map[string]*Factors {
	t.Helper()
	an1 := analyzeDefault(t, a, 1)
	anP := analyzeDefault(t, a, P)
	out := make(map[string]*Factors)

	fseq, err := FactorizeSeqPivot(an1.A, an1.Sym, sp)
	if err != nil {
		t.Fatalf("seq: %v", err)
	}
	out["seq"] = fseq

	fpar, _, err := FactorizeParStatsCtx(context.Background(), anP.A, anP.Sched, ParOptions{Pivot: sp})
	if err != nil {
		t.Fatalf("mpsim: %v", err)
	}
	out["mpsim"] = fpar

	fsh, err := FactorizeSharedCtx(context.Background(), anP.A, anP.Sched, nil, sp)
	if err != nil {
		t.Fatalf("shared: %v", err)
	}
	out["shared"] = fsh
	return out
}

// The graded singular matrix must fail today's unpivoted kernels with
// ErrNotSPD on every runtime — that is the breakdown static pivoting exists
// to absorb.
func TestGradedPivotFailsUnpivoted(t *testing.T) {
	a := gen.GradedPivot(4, 8, 1e-2, 0.05, true)
	an1 := analyzeDefault(t, a, 1)
	an4 := analyzeDefault(t, a, 4)
	if _, err := FactorizeSeq(an1.A, an1.Sym); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("seq: want ErrNotSPD, got %v", err)
	}
	if _, _, err := FactorizeParStatsCtx(context.Background(), an4.A, an4.Sched, ParOptions{}); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("mpsim: want ErrNotSPD, got %v", err)
	}
	if _, err := FactorizeSharedCtx(context.Background(), an4.A, an4.Sched, nil, StaticPivot{}); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("shared: want ErrNotSPD, got %v", err)
	}
}

// refinedBackwardError solves the permuted system for a manufactured
// solution and refines adaptively, returning the final stats.
func refinedBackwardError(t *testing.T, an *Analysis, f *Factors, tol float64) RefineStats {
	t.Helper()
	n := an.A.N
	xref := make([]float64, n)
	for i := range xref {
		xref[i] = 1 + float64(i%7)/7
	}
	b := make([]float64, n)
	an.A.MatVec(xref, b)
	x := f.Solve(b)
	_, rs := f.RefineAdaptive(an.A, b, x, tol, 0)
	for i := 1; i < len(rs.Trajectory); i++ {
		if rs.Trajectory[i] > rs.Trajectory[i-1] {
			t.Fatalf("backward-error trajectory not monotone: %v", rs.Trajectory)
		}
	}
	return rs
}

// All three runtimes must publish bitwise-identical PerturbationReports and
// factor data on graded matrices, and adaptive refinement must recover a
// backward error ≤ 1e-10 from the perturbed factorization.
func TestPerturbationReportAcrossRuntimes(t *testing.T) {
	cases := []struct {
		name     string
		nb, bs   int
		decay    float64
		couple   float64
		singular bool
	}{
		{"graded-singular", 4, 8, 1e-2, 0.05, true},
		{"graded-deep", 3, 10, 1e-2, 0.02, false},
		{"graded-coupled", 6, 6, 1e-3, 0.1, true},
	}
	sp := StaticPivot{Epsilon: 1e-12}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := gen.GradedPivot(tc.nb, tc.bs, tc.decay, tc.couple, tc.singular)
			fs := factorizeAllRuntimes(t, a, 4, sp)
			ref := fs["seq"].Pivots
			if ref == nil {
				t.Fatal("seq factor carries no report")
			}
			if tc.singular && len(ref.Perturbed) == 0 {
				t.Fatal("singular block not perturbed")
			}
			for name, f := range fs {
				if f.Pivots == nil {
					t.Fatalf("%s: no report", name)
				}
				if !reflect.DeepEqual(ref, f.Pivots) {
					t.Fatalf("%s report differs from seq:\nseq:  %+v\n%s: %+v", name, ref, name, f.Pivots)
				}
			}
			// The disconnected-clique construction has zero cross-supernode
			// contributions, so even the factor data must be bitwise equal.
			for name, f := range fs {
				if name == "seq" {
					continue
				}
				if !reflect.DeepEqual(fs["seq"].Data, f.Data) {
					t.Fatalf("%s factor data differs bitwise from seq", name)
				}
			}
			an1 := analyzeDefault(t, a, 1)
			rs := refinedBackwardError(t, an1, fs["seq"], 1e-10)
			if !rs.Converged || rs.BackwardError > 1e-10 {
				t.Fatalf("refinement did not recover: %+v", rs)
			}
		})
	}
}

// FactorizeRobust must escalate ε_piv on breakdown and hand back an accurate
// factorization, and report exhaustion with the typed error when no ε can
// help.
func TestFactorizeRobust(t *testing.T) {
	a := gen.GradedPivot(4, 8, 1e-2, 0.05, true)
	an := analyzeDefault(t, a, 2)
	// First attempt unpivoted → ErrNotSPD → escalation kicks in.
	f, rs, err := an.FactorizeRobust(context.Background(), an.A, ParOptions{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Attempts < 2 {
		t.Fatalf("expected escalation past the unpivoted attempt, got %+v", rs)
	}
	if f.Pivots == nil || len(f.Pivots.Perturbed) == 0 {
		t.Fatal("robust factor carries no perturbations")
	}
	if rs.BackwardError > 1e-10 {
		t.Fatalf("probe backward error %g above target", rs.BackwardError)
	}

	// A zero matrix is unfactorizable at any ε (‖A‖_max = 0 ⇒ τ = 0).
	zb := sparse.NewBuilder(4)
	for i := 0; i < 4; i++ {
		zb.Add(i, i, 0)
	}
	z := zb.Build()
	zan := analyzeDefault(t, z, 1)
	_, zrs, err := zan.FactorizeRobust(context.Background(), zan.A, ParOptions{}, 0)
	if !errors.Is(err, ErrPivotExhausted) {
		t.Fatalf("want ErrPivotExhausted, got %v", err)
	}
	var pe *PivotExhaustedError
	if !errors.As(err, &pe) {
		t.Fatalf("no PivotExhaustedError in chain: %v", err)
	}
	if pe.Attempts != zrs.Attempts || pe.Attempts < 2 {
		t.Fatalf("inconsistent attempts: err %d, stats %+v", pe.Attempts, zrs)
	}
}

// TestNumStressGradedPivot is the `make numstress` soak: a grid of graded
// shapes × processor counts, each checked for cross-runtime report equality
// and refinement recovery.
func TestNumStressGradedPivot(t *testing.T) {
	if testing.Short() {
		t.Skip("numerical stress soak skipped in -short mode")
	}
	sp := StaticPivot{Epsilon: 1e-12}
	for _, nb := range []int{2, 5} {
		for _, bs := range []int{6, 12} {
			for _, decay := range []float64{1e-2, 1e-3} {
				for _, P := range []int{2, 4} {
					a := gen.GradedPivot(nb, bs, decay, 0.05, true)
					fs := factorizeAllRuntimes(t, a, P, sp)
					ref := fs["seq"].Pivots
					for name, f := range fs {
						if !reflect.DeepEqual(ref, f.Pivots) {
							t.Fatalf("nb=%d bs=%d decay=%g P=%d: %s report diverges", nb, bs, decay, P, name)
						}
					}
					an1 := analyzeDefault(t, a, 1)
					rs := refinedBackwardError(t, an1, fs["seq"], 1e-10)
					if !rs.Converged {
						t.Fatalf("nb=%d bs=%d decay=%g: refinement stalled at %g", nb, bs, decay, rs.BackwardError)
					}
				}
			}
		}
	}
}
