package solver

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/pastix-go/pastix/internal/blas"
	"github.com/pastix-go/pastix/internal/faults"
	"github.com/pastix-go/pastix/internal/mpsim"
	"github.com/pastix-go/pastix/internal/sched"
	"github.com/pastix-go/pastix/internal/sparse"
	"github.com/pastix-go/pastix/internal/trace"
)

// Message kinds of the factorization protocol (Fig. 1 of the paper).
const (
	msgAUB        int8 = iota // final aggregated update block: Tag = destination task
	msgF                      // solved panel W_T: Tag = source BDIV task
	msgDiag                   // factored diagonal block (L,D): Tag = cell
	msgAUBPartial             // partially aggregated update block (fan-both mode)
)

// ParOptions tunes the parallel factorization runtime.
type ParOptions struct {
	// Runtime selects the execution engine (see the Runtime constants).
	// RuntimeAuto (the zero value) keeps the historical dispatch: shared
	// memory when SharedMemory is set, sequential at P == 1 without tracing
	// or faults, message-passing otherwise.
	Runtime Runtime
	// MaxAUBBytes bounds the memory a processor may hold in aggregation
	// buffers. When the bound is exceeded, the largest AUB is sent with
	// partial aggregation to free space — the paper's fan-both relaxation
	// ("if memory is a critical issue, an aggregated update block can be
	// sent with partial aggregation to free memory space; this is close to
	// the Fan-Both scheme"). Zero means unbounded (pure fan-in).
	MaxAUBBytes int64
	// SharedMemory selects the zero-copy shared-memory runtime
	// (FactorizeShared): the same static schedule executed with direct
	// in-place aggregation instead of message copies. No messages are sent,
	// so MaxAUBBytes is ignored and CommStats comes back empty.
	SharedMemory bool
	// Trace attaches an execution recorder: per-task execution intervals,
	// message sends/receives and AUB spills are recorded into it. Nil (the
	// default) disables tracing; every record site is behind a nil check so
	// the disabled path costs one pointer comparison per task.
	Trace *trace.Recorder
	// Faults injects deterministic message and worker faults (internal/faults)
	// and arms the mpsim reliability layer that recovers from them. Nil or an
	// inactive plan leaves the fault-free fast path untouched. Incompatible
	// with SharedMemory (there are no messages to corrupt and no isolated
	// workers to crash there).
	Faults *faults.Plan
	// Pivot enables static pivoting: pivots below τ = Epsilon·‖A‖_max are
	// substituted instead of aborting, and the factor carries a
	// PerturbationReport. The report is deterministic and identical across
	// the sequential, shared-memory and message-passing runtimes.
	Pivot StaticPivot
}

// CommStats reports the communication volume of an executed parallel
// factorization.
type CommStats struct {
	Messages    int64 // messages actually sent
	Bytes       int64 // payload bytes actually sent
	MaxInFlight int64 // peak simultaneously in-flight messages
	// PredictedMessages is what the static schedule implies for pure fan-in:
	// one AUB message per (source processor, destination task) pair plus the
	// diagonal-block and panel transfers. With MaxAUBBytes unset the executed
	// count equals this exactly.
	PredictedMessages int64
	// PeakAUBBytes is the largest memory any processor held in aggregation
	// buffers at once. Lowering ParOptions.MaxAUBBytes can only lower it
	// (the fan-both trade: more messages for less memory).
	PeakAUBBytes int64
	// Resends, Deduped and Restarts report the reliability layer's recovery
	// activity under fault injection: retransmissions of unacknowledged
	// messages, duplicate deliveries suppressed at admission, and crashed or
	// stalled workers restarted from their completion logs. All zero on the
	// fault-free path.
	Resends  int64
	Deduped  int64
	Restarts int64
}

// FactorizePar runs the supernodal fan-in LDLᵀ factorization on sch.P
// goroutine processors, entirely driven by the static schedule: each
// processor executes its K_p task vector in order, receives exactly the
// messages the schedule predicts, aggregates non-local contributions into
// AUBs and sends each AUB as soon as its last local contribution has been
// added. The gathered factor equals the sequential one to rounding.
func FactorizePar(a *sparse.SymMatrix, sch *sched.Schedule) (*Factors, error) {
	f, _, err := FactorizeParStats(a, sch, ParOptions{})
	return f, err
}

// FactorizeParOpts is FactorizePar with runtime options.
func FactorizeParOpts(a *sparse.SymMatrix, sch *sched.Schedule, popts ParOptions) (*Factors, error) {
	f, _, err := FactorizeParStats(a, sch, popts)
	return f, err
}

// protoKey identifies an aggregation group: remote AUB contributions from
// one source processor to one destination task.
type protoKey struct{ sp, dt int }

// protocol holds the value-independent message plan derived from a schedule;
// the float64 and complex128 runtimes share it.
type protocol struct {
	contributors map[protoKey]int // remote AUB edges per (source proc, dst task)
	nAUBmsgs     []int            // distinct remote source procs per dst task
	sendTo       [][]int          // FACTOR: diag consumers; BDIV: F consumers (distinct remote procs)
	needF        []bool           // BMOD: W_T arrives by message
	needDiag     []bool           // BDIV: (L,D) arrives by message
	predicted    int64            // total messages in pure fan-in mode
}

func buildProtocol(sch *sched.Schedule) *protocol {
	nTasks := len(sch.Tasks)
	pr := &protocol{
		contributors: make(map[protoKey]int),
		nAUBmsgs:     make([]int, nTasks),
		sendTo:       make([][]int, nTasks),
		needF:        make([]bool, nTasks),
		needDiag:     make([]bool, nTasks),
	}
	for i := range sch.Tasks {
		sp := sch.Tasks[i].Proc
		seen := make(map[int]bool)
		for _, e := range sch.Tasks[i].Outs {
			dp := sch.Tasks[e.Dst].Proc
			switch e.Kind {
			case sched.EdgeAUB:
				if dp == sp {
					continue
				}
				k := protoKey{sp, e.Dst}
				if pr.contributors[k] == 0 {
					pr.nAUBmsgs[e.Dst]++
				}
				pr.contributors[k]++
			case sched.EdgeF:
				if dp != sp {
					pr.needF[e.Dst] = true
					if !seen[dp] {
						seen[dp] = true
						pr.sendTo[i] = append(pr.sendTo[i], dp)
					}
				}
			case sched.EdgeDiag:
				if dp != sp {
					pr.needDiag[e.Dst] = true
					if !seen[dp] {
						seen[dp] = true
						pr.sendTo[i] = append(pr.sendTo[i], dp)
					}
				}
			}
		}
	}
	pr.predicted = int64(len(pr.contributors))
	for i := range sch.Tasks {
		pr.predicted += int64(len(pr.sendTo[i]))
	}
	return pr
}

// FactorizeParStats is FactorizeParOpts returning communication statistics.
func FactorizeParStats(a *sparse.SymMatrix, sch *sched.Schedule, popts ParOptions) (*Factors, CommStats, error) {
	return FactorizeParStatsCtx(context.Background(), a, sch, popts)
}

// FactorizeParStatsCtx is FactorizeParStats under a context: cancelling ctx
// aborts the run — processors blocked on messages are woken by closing the
// communicator, compute-bound processors observe the cancellation between
// tasks — and ctx.Err() is returned once every worker has unwound.
func FactorizeParStatsCtx(ctx context.Context, a *sparse.SymMatrix, sch *sched.Schedule, popts ParOptions) (*Factors, CommStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, CommStats{}, err
	}
	if popts.SharedMemory {
		if popts.Faults.Active() {
			return nil, CommStats{}, fmt.Errorf("solver: fault injection requires the message-passing runtime, not SharedMemory")
		}
		f, err := FactorizeSharedCtx(ctx, a, sch, popts.Trace, popts.Pivot)
		return f, CommStats{}, err
	}
	sym := sch.Sym()
	P := sch.P
	tau, normMax := pivotThreshold(popts.Pivot, a)
	pr := buildProtocol(sch)
	nAUBmsgs, sendTo, needF, needDiag := pr.nAUBmsgs, pr.sendTo, pr.needF, pr.needDiag

	stores := make([]*Factors, P)
	states := make([]*procState, P)
	peaks := make([]int64, P)
	comm := mpsim.NewComm(P)
	if popts.Trace != nil {
		comm.SetTrace(popts.Trace)
	}
	var inj *faults.Injector
	if popts.Faults.Active() {
		var err error
		inj, err = faults.New(*popts.Faults)
		if err != nil {
			return nil, CommStats{}, err
		}
		if popts.Trace != nil {
			inj.SetTrace(popts.Trace)
		}
		comm.EnableFaults(inj, popts.Faults.Reliability)
	}
	if done := ctx.Done(); done != nil {
		// The watcher closes the communicator on cancellation so processors
		// blocked in Recv unwind; it exits when the run finishes first.
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-done:
				comm.Close()
			case <-stop:
			}
		}()
	}
	predicted := pr.predicted
	runErr := comm.Run(func(p int) error {
		// After an injected crash Run re-invokes this closure for the same p;
		// the surviving procState is the worker's completion log and replay
		// state, so a restarted worker resumes where it crashed instead of
		// re-executing (and re-sending) finished work.
		st := states[p]
		if st == nil {
			st = &procState{
				p:        p,
				opts:     popts,
				sch:      sch,
				f:        NewFactorsLazy(sym),
				comm:     comm,
				ctx:      ctx,
				done:     ctx.Done(),
				rec:      popts.Trace,
				inj:      inj,
				tau:      tau,
				aubBuf:   make(map[int]map[int][]float64),
				aubIn:    make(map[int][]aubContrib),
				aubRem:   make(map[int]int),
				aubGot:   make(map[int]int),
				fstore:   make(map[int][]float64),
				diags:    make(map[int][]float64),
				invd:     make(map[int][]float64),
				nAUBmsgs: nAUBmsgs,
				sendTo:   sendTo,
				needF:    needF,
				needDiag: needDiag,
			}
			states[p] = st
			stores[p] = st.f
			for k, c := range pr.contributors {
				if k.sp == p {
					st.aubRem[k.dt] = c
				}
			}
		}
		err := st.run(a)
		peaks[p] = st.peakAUB
		return err
	})
	msgs, bytes, inflight := comm.Stats()
	fs := comm.FaultStats()
	stats := CommStats{
		Messages: msgs, Bytes: bytes, MaxInFlight: inflight, PredictedMessages: predicted,
		Resends: fs.Resends, Deduped: fs.Deduped, Restarts: fs.Restarts,
	}
	for p := 0; p < P; p++ {
		if peaks[p] > stats.PeakAUBBytes {
			stats.PeakAUBBytes = peaks[p]
		}
	}
	if runErr != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, stats, cerr
		}
		if errors.Is(runErr, mpsim.ErrFaultBudget) {
			prog := make([]TaskProgress, P)
			for p := 0; p < P; p++ {
				prog[p] = TaskProgress{Total: len(sch.ByProc[p])}
				if states[p] != nil {
					prog[p].Done = states[p].next
				}
			}
			return nil, stats, &FaultBudgetError{Progress: prog, Err: runErr}
		}
		return nil, stats, runErr
	}

	// --- Gather the distributed factor into one full Factors. ---
	g := NewFactors(sym)
	copyCols := func(dst, src []float64, ld, rowLo, rowHi, w int) {
		for j := 0; j < w; j++ {
			copy(dst[rowLo+j*ld:rowHi+j*ld], src[rowLo+j*ld:rowHi+j*ld])
		}
	}
	for k := range sym.CB {
		w := sym.CB[k].Width()
		ld := g.LD[k]
		if id := sch.Comp1DOf[k]; id >= 0 {
			copy(g.Data[k], stores[sch.Tasks[id].Proc].Data[k])
			continue
		}
		fp := sch.Tasks[sch.FactorOf[k]].Proc
		copyCols(g.Data[k], stores[fp].Data[k], ld, 0, w, w)
		for b := range sym.CB[k].Blocks {
			bp := sch.Tasks[sch.BDivOf[k][b]].Proc
			off := g.BlockOff[k][b]
			copyCols(g.Data[k], stores[bp].Data[k], ld, off, off+sym.CB[k].Blocks[b].Rows(), w)
		}
	}
	if popts.Pivot.Enabled() {
		// Each diagonal task ran on exactly one processor (replay after a
		// crash resumes past completed tasks), so concatenating the per-proc
		// perturbation logs loses nothing and duplicates nothing; buildReport
		// sorts by column, erasing the processor interleaving.
		var perts []Perturbation
		for p := 0; p < P; p++ {
			if states[p] != nil {
				perts = append(perts, states[p].perts...)
			}
		}
		g.Pivots = buildReport(popts.Pivot, normMax, perts, g)
	}
	return g, stats, nil
}

// procState is one virtual processor of the factorization.
type procState struct {
	p    int
	opts ParOptions
	sch  *sched.Schedule
	f    *Factors
	comm *mpsim.Comm
	ctx  context.Context
	done <-chan struct{}  // ctx.Done(); nil when uncancellable
	rec  *trace.Recorder  // nil disables tracing
	inj  *faults.Injector // nil disables fault injection
	tau  float64          // static-pivot threshold; 0 disables pivoting

	// perts logs this processor's static-pivot substitutions. It lives in the
	// crash-surviving procState next to the completion log: replay skips
	// completed diagonal tasks, so no substitution is ever recorded twice.
	perts []Perturbation

	// Completion log for crash recovery: assembly ran, and the index into
	// ByProc[p] of the next task to execute. A restarted worker replays from
	// here; everything before is already done and its sends already sit in
	// the communicator (which survives the restart).
	assembled bool
	next      int

	aubBytes int64 // bytes currently held in aggregation buffers
	peakAUB  int64 // high-water mark of aubBytes (after any spill)

	// aubBuf holds negated contribution accumulators per destination task,
	// keyed inside by target region (0 = the diagonal block of the target
	// cell, b+1 = its off-diagonal block b) — the paper's per-block AUB_jk.
	aubBuf map[int]map[int][]float64
	// aubIn buffers received remote AUB payloads per destination task instead
	// of applying them on arrival: once every expected message is in, they are
	// applied in canonical order (sorted by source processor, arrival order
	// within one source). Floating-point addition is order-sensitive, so this
	// makes the factor bit-for-bit reproducible — in particular a chaos run
	// with delays, duplicates and restarts produces exactly the fault-free
	// factor.
	aubIn  map[int][]aubContrib
	aubRem map[int]int       // dst task -> local contributions still to add
	aubGot map[int]int       // dst task -> final AUB messages received
	fstore map[int][]float64 // BDIV task -> received W panel
	diags  map[int][]float64 // cell -> received (L,D) diagonal block (ld = w)
	invd   map[int][]float64 // cell -> 1/D cache

	nAUBmsgs []int
	sendTo   [][]int
	needF    []bool
	needDiag []bool
}

// cancelled is the between-tasks cancellation check: compute-bound
// processors (never blocked in Recv) observe ctx here.
func (st *procState) cancelled() error {
	if st.done == nil {
		return nil
	}
	select {
	case <-st.done:
		return st.ctx.Err()
	default:
		return nil
	}
}

func (st *procState) run(a *sparse.SymMatrix) error {
	sym := st.sch.Sym()
	if !st.assembled {
		var asmStart time.Duration
		if st.rec != nil {
			asmStart = st.rec.Now()
		}
		// Assemble the regions this processor owns.
		for _, id := range st.sch.ByProc[st.p] {
			t := &st.sch.Tasks[id]
			var err error
			switch t.Type {
			case sched.Comp1D:
				err = st.f.AssembleCell(a, t.Cell)
			case sched.Factor:
				err = st.f.AssembleDiagRegion(a, t.Cell)
			case sched.BDiv:
				err = st.f.AssembleBlockRegion(a, t.Cell, t.S)
			}
			if err != nil {
				return err
			}
		}
		if st.rec != nil {
			st.rec.Phase(st.p, trace.PhaseAssemble, asmStart, st.rec.Now())
		}
		st.assembled = true
	}

	tasks := st.sch.ByProc[st.p]
	for ; st.next < len(tasks); st.next++ {
		id := tasks[st.next]
		t := &st.sch.Tasks[id]
		if err := st.cancelled(); err != nil {
			return err
		}
		// Task boundary: stamp the heartbeat (so the supervisor can tell a
		// stall from progress) and let the injector fire any scheduled crash
		// or stall for this step before the task executes.
		if st.inj != nil {
			st.comm.Heartbeat(st.p)
			if err := st.inj.Boundary(st.p, st.next); err != nil {
				return err
			}
		}
		if err := st.waitInputs(id); err != nil {
			return err
		}
		// The trace interval starts after waitInputs so it measures execution
		// time only — idle (wait) time is what the divergence report derives
		// from the gaps, matching the schedule model's Start/End semantics.
		var start time.Duration
		if st.rec != nil {
			start = st.rec.Now()
		}
		var err error
		switch t.Type {
		case sched.Comp1D:
			err = st.execComp1D(t)
		case sched.Factor:
			err = st.execFactor(t)
		case sched.BDiv:
			err = st.execBDiv(t)
		case sched.BMod:
			err = st.execBMod(t)
		}
		if err != nil {
			return err
		}
		if st.rec != nil {
			st.rec.Task(st.p, id, t.Type, t.Cell, t.S, t.T, start, st.rec.Now())
		}
	}

	// Deferred panel scaling: owned 2D blocks still hold W = L·D.
	var scaleStart time.Duration
	if st.rec != nil {
		scaleStart = st.rec.Now()
	}
	for _, id := range st.sch.ByProc[st.p] {
		t := &st.sch.Tasks[id]
		if t.Type != sched.BDiv {
			continue
		}
		cb := &sym.CB[t.Cell]
		w := cb.Width()
		d := st.cellDiagVec(t.Cell)
		blk := cb.Blocks[t.S]
		off := st.f.BlockOff[t.Cell][t.S]
		blas.ScaleColumns(blk.Rows(), w, st.f.Data[t.Cell][off:], st.f.LD[t.Cell], d)
	}
	if st.rec != nil {
		st.rec.Phase(st.p, trace.PhaseScale, scaleStart, st.rec.Now())
	}
	return nil
}

// waitInputs blocks until every message task id requires has arrived,
// handling (and applying) messages as they come.
func (st *procState) waitInputs(id int) error {
	t := &st.sch.Tasks[id]
	satisfied := func() bool {
		if st.aubGot[id] < st.nAUBmsgs[id] {
			return false
		}
		switch t.Type {
		case sched.BDiv:
			if st.needDiag[id] {
				if _, ok := st.diags[t.Cell]; !ok {
					return false
				}
			}
		case sched.BMod:
			if st.needF[id] {
				if _, ok := st.fstore[st.sch.BDivOf[t.Cell][t.T]]; !ok {
					return false
				}
			}
		}
		return true
	}
	for !satisfied() {
		m, err := st.comm.Recv(st.p)
		if err != nil {
			return err
		}
		if err := st.handle(m); err != nil {
			return err
		}
	}
	return st.applyPending(id)
}

// aubContrib is one buffered remote AUB payload awaiting canonical-order
// application.
type aubContrib struct {
	src  int
	data []float64
}

// applyPending applies the buffered remote contributions of task id in
// canonical order: sorted by source processor, arrival order within one
// source (the stable sort keeps a fan-both partial before the final message
// from the same sender). Called once per task, after all expected final
// messages have arrived.
func (st *procState) applyPending(id int) error {
	contribs := st.aubIn[id]
	if len(contribs) == 0 {
		return nil
	}
	delete(st.aubIn, id)
	sort.SliceStable(contribs, func(i, j int) bool { return contribs[i].src < contribs[j].src })
	for _, c := range contribs {
		if err := st.applyAUB(id, c.data); err != nil {
			return err
		}
	}
	return nil
}

func (st *procState) handle(m mpsim.Message) error {
	switch m.Kind {
	case msgF:
		st.fstore[m.Tag] = m.Data
	case msgDiag:
		st.diags[m.Tag] = m.Data
	case msgAUB:
		st.aubIn[m.Tag] = append(st.aubIn[m.Tag], aubContrib{src: m.Src, data: m.Data})
		st.aubGot[m.Tag]++
	case msgAUBPartial:
		// Early (fan-both) flush: buffer but do not count; the final message
		// for the same destination is still to come.
		st.aubIn[m.Tag] = append(st.aubIn[m.Tag], aubContrib{src: m.Src, data: m.Data})
	default:
		return fmt.Errorf("solver: proc %d: unknown message kind %d", st.p, m.Kind)
	}
	return nil
}

// packAUB serializes the per-region accumulators of one destination into a
// single message payload: [nRegions, (regionId, elems)... , payloads...].
// Regions are sorted for determinism.
func packAUB(regions map[int][]float64) []float64 {
	ids := make([]int, 0, len(regions))
	total := 0
	for id, buf := range regions {
		ids = append(ids, id)
		total += len(buf)
	}
	sort.Ints(ids)
	out := make([]float64, 0, 1+2*len(ids)+total)
	out = append(out, float64(len(ids)))
	for _, id := range ids {
		out = append(out, float64(id), float64(len(regions[id])))
	}
	for _, id := range ids {
		out = append(out, regions[id]...)
	}
	return out
}

// applyAUB adds a received (negated-sum, region-packed) aggregated update
// block into the local regions of destination task dt.
func (st *procState) applyAUB(dt int, buf []float64) error {
	if len(buf) == 0 {
		return nil // final message after a fan-both spill drained the buffer
	}
	t := &st.sch.Tasks[dt]
	sym := st.sch.Sym()
	cb := &sym.CB[t.Cell]
	w := cb.Width()
	st.f.EnsureCell(t.Cell)
	data := st.f.Data[t.Cell]
	ld := st.f.LD[t.Cell]
	nr := int(buf[0])
	if len(buf) < 1+2*nr {
		return fmt.Errorf("solver: malformed AUB header for task %d", dt)
	}
	pos := 1 + 2*nr
	for r := 0; r < nr; r++ {
		id := int(buf[1+2*r])
		elems := int(buf[2+2*r])
		if pos+elems > len(buf) {
			return fmt.Errorf("solver: truncated AUB payload for task %d", dt)
		}
		seg := buf[pos : pos+elems]
		pos += elems
		var off, rows int
		if id == 0 {
			off, rows = 0, w
		} else {
			b := id - 1
			if b < 0 || b >= len(cb.Blocks) {
				return fmt.Errorf("solver: AUB region %d out of range for cb %d", id, t.Cell)
			}
			off, rows = st.f.BlockOff[t.Cell][b], cb.Blocks[b].Rows()
		}
		if elems != rows*w {
			return fmt.Errorf("solver: AUB region %d size %d != %d×%d", id, elems, rows, w)
		}
		for j := 0; j < w; j++ {
			col := data[off+j*ld : off+j*ld+rows]
			srcCol := seg[j*rows : (j+1)*rows]
			for i := range col {
				col[i] += srcCol[i]
			}
		}
	}
	return nil
}

// cellDiagVec returns D of cell k from the local diagonal region or the
// received diagonal copy.
func (st *procState) cellDiagVec(k int) []float64 {
	w := st.sch.Sym().CB[k].Width()
	if fid := st.sch.FactorOf[k]; fid >= 0 && st.sch.Tasks[fid].Proc != st.p {
		buf := st.diags[k]
		d := make([]float64, w)
		for j := 0; j < w; j++ {
			d[j] = buf[j+j*w]
		}
		return d
	}
	return st.f.Diag(k)
}

func (st *procState) cellInvD(k int) []float64 {
	if v, ok := st.invd[k]; ok {
		return v
	}
	d := st.cellDiagVec(k)
	inv := make([]float64, len(d))
	for i, x := range d {
		inv[i] = 1 / x
	}
	st.invd[k] = inv
	return inv
}

// diagRef returns the diagonal block (for TRSM) of cell k: local storage or
// the received copy, with its leading dimension.
func (st *procState) diagRef(k int) ([]float64, int) {
	if fid := st.sch.FactorOf[k]; fid >= 0 && st.sch.Tasks[fid].Proc != st.p {
		return st.diags[k], st.sch.Sym().CB[k].Width()
	}
	return st.f.Data[k], st.f.LD[k]
}

func (st *procState) execComp1D(t *sched.Task) error {
	k := t.Cell
	if err := st.factorDiag(k); err != nil {
		return err
	}
	st.f.SolvePanel(k)
	d := st.f.Diag(k)
	invd := make([]float64, len(d))
	for i, v := range d {
		invd[i] = 1 / v
	}
	sym := st.sch.Sym()
	cb := &sym.CB[k]
	ld := st.f.LD[k]
	touched := map[int]bool{}
	for ti := range cb.Blocks {
		for si := ti; si < len(cb.Blocks); si++ {
			dt, err := st.routePair(k, si, ti,
				st.f.Data[k][st.f.BlockOff[k][si]:], ld,
				st.f.Data[k][st.f.BlockOff[k][ti]:], ld, invd)
			if err != nil {
				return err
			}
			if dt >= 0 {
				touched[dt] = true
			}
		}
	}
	st.flushAUBs(touched)
	st.f.ScalePanel(k, d)
	return nil
}

// factorDiag runs the (possibly pivoted) diagonal factorization of cell k,
// logging any substitutions into the processor's perturbation log and the
// trace.
func (st *procState) factorDiag(k int) error {
	ps, err := st.f.FactorDiagStatic(k, st.tau)
	if err != nil {
		return err
	}
	st.perts = append(st.perts, ps...)
	if st.rec != nil {
		for _, p := range ps {
			st.rec.Pivot(st.p, p.Column)
		}
	}
	return nil
}

func (st *procState) execFactor(t *sched.Task) error {
	k := t.Cell
	if err := st.factorDiag(k); err != nil {
		return err
	}
	if dsts := st.sendTo[t.ID]; len(dsts) > 0 {
		w := st.sch.Sym().CB[k].Width()
		ld := st.f.LD[k]
		buf := make([]float64, w*w)
		for j := 0; j < w; j++ {
			copy(buf[j*w+j:j*w+w], st.f.Data[k][j*ld+j:j*ld+w])
		}
		for _, q := range dsts {
			st.comm.Send(mpsim.Message{Kind: msgDiag, Src: st.p, Dst: q, Tag: k, Data: buf})
		}
	}
	return nil
}

func (st *procState) execBDiv(t *sched.Task) error {
	k := t.Cell
	sym := st.sch.Sym()
	cb := &sym.CB[k]
	w := cb.Width()
	rb := cb.Blocks[t.S].Rows()
	l, ldl := st.diagRef(k)
	off := st.f.BlockOff[k][t.S]
	blas.TrsmRightLTransUnit(rb, w, l, ldl, st.f.Data[k][off:], st.f.LD[k])
	if dsts := st.sendTo[t.ID]; len(dsts) > 0 {
		buf := make([]float64, rb*w)
		for j := 0; j < w; j++ {
			copy(buf[j*rb:(j+1)*rb], st.f.Data[k][off+j*st.f.LD[k]:off+j*st.f.LD[k]+rb])
		}
		for _, q := range dsts {
			st.comm.Send(mpsim.Message{Kind: msgF, Src: st.p, Dst: q, Tag: t.ID, Data: buf})
		}
	}
	return nil
}

func (st *procState) execBMod(t *sched.Task) error {
	k := t.Cell
	sym := st.sch.Sym()
	cb := &sym.CB[k]
	ldk := st.f.LD[k]
	ws := st.f.Data[k][st.f.BlockOff[k][t.S]:]
	var wt []float64
	var ldt int
	bdivT := st.sch.BDivOf[k][t.T]
	if st.sch.Tasks[bdivT].Proc == st.p {
		wt = st.f.Data[k][st.f.BlockOff[k][t.T]:]
		ldt = ldk
	} else {
		wt = st.fstore[bdivT]
		ldt = cb.Blocks[t.T].Rows()
	}
	dt, err := st.routePair(k, t.S, t.T, ws, ldk, wt, ldt, st.cellInvD(k))
	if err != nil {
		return err
	}
	if dt >= 0 {
		st.flushAUBs(map[int]bool{dt: true})
	}
	return nil
}

// routePair computes the (s,t) contribution of cell k from W_s (lda) and
// W_t (ldb) and either subtracts it directly from the locally owned target
// region or accumulates it (negated) into the AUB for the destination task.
// It returns the destination task id when the contribution was remote (so
// the caller can decrement the AUB countdown), -1 otherwise.
func (st *procState) routePair(k, s, t int, ws []float64, lda int, wt []float64, ldb int, invd []float64) (int, error) {
	sym := st.sch.Sym()
	cb := &sym.CB[k]
	w := cb.Width()
	bs := &cb.Blocks[s]
	bt := &cb.Blocks[t]
	rs := bs.Rows()
	rt := bt.Rows()
	fcell := bt.Facing
	fcb := &sym.CB[fcell]

	// Destination task.
	var dt int
	switch {
	case st.sch.Comp1DOf[fcell] >= 0:
		dt = st.sch.Comp1DOf[fcell]
	case bs.Facing == fcell:
		dt = st.sch.FactorOf[fcell]
	default:
		b := st.f.BlockContaining(fcell, bs.FirstRow, bs.LastRow)
		if b < 0 {
			return -1, fmt.Errorf("solver: rows [%d,%d) of cb %d not in cb %d", bs.FirstRow, bs.LastRow, k, fcell)
		}
		dt = st.sch.BDivOf[fcell][b]
	}
	dtask := &st.sch.Tasks[dt]
	lc := bt.FirstRow - fcb.Cols[0]

	var dst []float64
	var ldc int
	if dtask.Proc == st.p {
		// Direct local subtraction into the owned region, cell coordinates.
		st.f.EnsureCell(fcell)
		lr := st.f.LocateRow(fcell, bs.FirstRow)
		ldc = st.f.LD[fcell]
		dst = st.f.Data[fcell][lr+lc*ldc:]
	} else {
		// Accumulate into the per-region AUB of the destination task: the
		// region is the target cell's diagonal block (id 0) when the rows lie
		// in its columns, otherwise the off-diagonal block covering them
		// (id b+1) — the paper's AUB_jk granularity.
		region, lr, rows := 0, bs.FirstRow-fcb.Cols[0], fcb.Width()
		if bs.Facing != fcell {
			shape := &Factors{Sym: sym, LD: st.f.LD, BlockOff: st.f.BlockOff}
			b := shape.BlockContaining(fcell, bs.FirstRow, bs.LastRow)
			if b < 0 {
				return -1, fmt.Errorf("solver: AUB rows [%d,%d) not in one block of cb %d", bs.FirstRow, bs.LastRow, fcell)
			}
			fb := &fcb.Blocks[b]
			region, lr, rows = b+1, bs.FirstRow-fb.FirstRow, fb.Rows()
		}
		regions := st.aubBuf[dt]
		if regions == nil {
			regions = make(map[int][]float64)
			st.aubBuf[dt] = regions
		}
		buf := regions[region]
		if buf == nil {
			buf = make([]float64, rows*fcb.Width())
			regions[region] = buf
			st.aubBytes += int64(len(buf)) * 8
			st.spill(dt)
			if st.aubBytes > st.peakAUB {
				st.peakAUB = st.aubBytes
			}
		}
		ldc = rows
		dst = buf[lr+lc*ldc:]
	}
	if s == t {
		blas.SyrkLowerNDT(rs, w, ws, lda, invd, dst, ldc)
	} else {
		blas.GemmNDTAuto(rs, rt, w, ws, lda, invd, wt, ldb, dst, ldc)
	}
	if dtask.Proc == st.p {
		return -1, nil
	}
	return dt, nil
}

// regionsSize returns the accumulated elements of one destination's regions.
func regionsSize(regions map[int][]float64) int {
	t := 0
	for _, b := range regions {
		t += len(b)
	}
	return t
}

// flushAUBs decrements the countdown of each touched remote destination and
// sends the AUB as soon as it is complete ("if ready, send" in Fig. 1). The
// final message is sent even when the buffer was already spilled (fan-both):
// the receiver counts only final messages.
func (st *procState) flushAUBs(touched map[int]bool) {
	for dt := range touched {
		st.aubRem[dt]--
		if st.aubRem[dt] == 0 {
			regions := st.aubBuf[dt]
			delete(st.aubBuf, dt)
			delete(st.aubRem, dt)
			var data []float64
			if len(regions) > 0 {
				st.aubBytes -= int64(regionsSize(regions)) * 8
				data = packAUB(regions)
			}
			st.comm.Send(mpsim.Message{
				Kind: msgAUB, Src: st.p, Dst: st.sch.Tasks[dt].Proc, Tag: dt, Data: data,
			})
		}
	}
}

// spill enforces the fan-both memory bound: while aggregation buffers exceed
// MaxAUBBytes, the largest buffer other than keep is sent with partial
// aggregation and freed.
func (st *procState) spill(keep int) {
	if st.opts.MaxAUBBytes <= 0 {
		return
	}
	for st.aubBytes > st.opts.MaxAUBBytes {
		victim, size := -1, 0
		for dt, regions := range st.aubBuf {
			// Largest buffer first; ties broken by task id so the spill
			// sequence (and hence the peak-memory stat) is deterministic
			// despite map iteration order.
			if s := regionsSize(regions); dt != keep && (s > size || (s == size && victim >= 0 && dt < victim)) {
				victim, size = dt, s
			}
		}
		if victim < 0 {
			return // nothing else to spill; the bound is best-effort
		}
		regions := st.aubBuf[victim]
		delete(st.aubBuf, victim)
		st.aubBytes -= int64(regionsSize(regions)) * 8
		if st.rec != nil {
			st.rec.Spill(st.p, victim, int64(regionsSize(regions))*8)
		}
		st.comm.Send(mpsim.Message{
			Kind: msgAUBPartial, Src: st.p, Dst: st.sch.Tasks[victim].Proc, Tag: victim, Data: packAUB(regions),
		})
	}
}
