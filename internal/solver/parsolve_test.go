package solver

import (
	"math"
	"testing"

	"github.com/pastix-go/pastix/internal/gen"
)

func TestSolveParMatchesSequential(t *testing.T) {
	a := laplacian2D(22, 22)
	for _, P := range []int{2, 3, 4, 8} {
		an := analyzeFor(t, a, P)
		f, err := FactorizePar(an.A, an.Sched)
		if err != nil {
			t.Fatalf("P=%d: %v", P, err)
		}
		_, b := gen.RHSForSolution(a)
		pb := make([]float64, len(b))
		for newI, old := range an.Perm {
			pb[newI] = b[old]
		}
		want := f.Solve(pb)
		got, err := SolvePar(an.Sched, f, pb)
		if err != nil {
			t.Fatalf("P=%d: %v", P, err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-11*(1+math.Abs(want[i])) {
				t.Fatalf("P=%d: x[%d]=%g want %g", P, i, got[i], want[i])
			}
		}
	}
}

func TestSolveParOnGeneratedProblems(t *testing.T) {
	for _, name := range []string{"THREAD", "QUER"} {
		p, err := gen.Generate(name, 0.03)
		if err != nil {
			t.Fatal(err)
		}
		an := analyzeFor(t, p.A, 4)
		f, err := an.Factorize()
		if err != nil {
			t.Fatal(err)
		}
		x, b := gen.RHSForSolution(p.A)
		pb := make([]float64, len(b))
		for newI, old := range an.Perm {
			pb[newI] = b[old]
		}
		px, err := SolvePar(an.Sched, f, pb)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for newI, old := range an.Perm {
			if math.Abs(px[newI]-x[old]) > 1e-8 {
				t.Fatalf("%s: x mismatch at %d", name, old)
			}
		}
	}
}

func TestSolveParSingleProc(t *testing.T) {
	a := laplacian2D(9, 9)
	an := analyzeFor(t, a, 1)
	f, err := an.Factorize()
	if err != nil {
		t.Fatal(err)
	}
	_, b := gen.RHSForSolution(a)
	pb := make([]float64, len(b))
	for newI, old := range an.Perm {
		pb[newI] = b[old]
	}
	want := f.Solve(pb)
	got, err := SolvePar(an.Sched, f, pb)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("x[%d] differs", i)
		}
	}
}

func TestSolveParBadRHS(t *testing.T) {
	a := laplacian2D(6, 6)
	an := analyzeFor(t, a, 2)
	f, err := an.Factorize()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolvePar(an.Sched, f, make([]float64, 5)); err == nil {
		t.Fatal("expected rhs-length error")
	}
}
