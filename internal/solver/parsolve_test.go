package solver

import (
	"context"
	"math"
	"testing"

	"github.com/pastix-go/pastix/internal/gen"
	"github.com/pastix-go/pastix/internal/sparse"
)

func TestSolveParMatchesSequential(t *testing.T) {
	a := laplacian2D(22, 22)
	for _, P := range []int{2, 3, 4, 8} {
		an := analyzeFor(t, a, P)
		f, err := FactorizePar(an.A, an.Sched)
		if err != nil {
			t.Fatalf("P=%d: %v", P, err)
		}
		_, b := gen.RHSForSolution(a)
		pb := make([]float64, len(b))
		for newI, old := range an.Perm {
			pb[newI] = b[old]
		}
		want := f.Solve(pb)
		got, err := SolvePar(an.Sched, f, pb)
		if err != nil {
			t.Fatalf("P=%d: %v", P, err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-11*(1+math.Abs(want[i])) {
				t.Fatalf("P=%d: x[%d]=%g want %g", P, i, got[i], want[i])
			}
		}
	}
}

func TestSolveParOnGeneratedProblems(t *testing.T) {
	for _, name := range []string{"THREAD", "QUER"} {
		p, err := gen.Generate(name, 0.03)
		if err != nil {
			t.Fatal(err)
		}
		an := analyzeFor(t, p.A, 4)
		f, err := an.Factorize()
		if err != nil {
			t.Fatal(err)
		}
		x, b := gen.RHSForSolution(p.A)
		pb := make([]float64, len(b))
		for newI, old := range an.Perm {
			pb[newI] = b[old]
		}
		px, err := SolvePar(an.Sched, f, pb)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for newI, old := range an.Perm {
			if math.Abs(px[newI]-x[old]) > 1e-8 {
				t.Fatalf("%s: x mismatch at %d", name, old)
			}
		}
	}
}

func TestSolveParSingleProc(t *testing.T) {
	a := laplacian2D(9, 9)
	an := analyzeFor(t, a, 1)
	f, err := an.Factorize()
	if err != nil {
		t.Fatal(err)
	}
	_, b := gen.RHSForSolution(a)
	pb := make([]float64, len(b))
	for newI, old := range an.Perm {
		pb[newI] = b[old]
	}
	want := f.Solve(pb)
	got, err := SolvePar(an.Sched, f, pb)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("x[%d] differs", i)
		}
	}
}

func TestSolveParBadRHS(t *testing.T) {
	a := laplacian2D(6, 6)
	an := analyzeFor(t, a, 2)
	f, err := an.Factorize()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolvePar(an.Sched, f, make([]float64, 5)); err == nil {
		t.Fatal("expected rhs-length error")
	}
}

// The panel solve must be bit-identical, column by column, to independent
// single-RHS parallel solves: the service batcher relies on this to coalesce
// concurrent requests without changing any client's answer.
func TestSolveParManyBitIdenticalToSingle(t *testing.T) {
	a := laplacian2D(19, 23)
	for _, P := range []int{1, 2, 4, 7} {
		an := analyzeFor(t, a, P)
		f, err := an.Factorize()
		if err != nil {
			t.Fatalf("P=%d: %v", P, err)
		}
		const nrhs = 5
		n := a.N
		panel := make([]float64, n*nrhs)
		for r := 0; r < nrhs; r++ {
			for i := 0; i < n; i++ {
				panel[r*n+i] = math.Sin(float64(1+i*(r+2))) + float64(r)
			}
		}
		got, err := SolveParManyOpts(context.Background(), an.Sched, f, panel, nrhs, SolveOptions{})
		if err != nil {
			t.Fatalf("P=%d: panel solve: %v", P, err)
		}
		for r := 0; r < nrhs; r++ {
			want, err := SolvePar(an.Sched, f, panel[r*n:(r+1)*n])
			if err != nil {
				t.Fatalf("P=%d rhs %d: %v", P, r, err)
			}
			for i := range want {
				if got[r*n+i] != want[i] {
					t.Fatalf("P=%d rhs %d: x[%d] = %v differs from single-RHS %v (not bit-identical)",
						P, r, i, got[r*n+i], want[i])
				}
			}
		}
	}
}

// FactorizeMatrixOptsCtx must let one analysis factorize a second matrix
// sharing the pattern but with different values.
func TestFactorizeMatrixReusesAnalysis(t *testing.T) {
	a := laplacian2D(15, 17)
	an := analyzeFor(t, a, 3)
	// Same pattern, scaled values (still SPD).
	a2 := &sparse.SymMatrix{N: a.N, ColPtr: a.ColPtr, RowIdx: a.RowIdx, Val: make([]float64, len(a.Val))}
	for i, v := range a.Val {
		a2.Val[i] = 2.5 * v
	}
	pa2 := a2.Permute(an.Perm)
	f2, err := an.FactorizeMatrixOptsCtx(context.Background(), pa2, ParOptions{})
	if err != nil {
		t.Fatal(err)
	}
	x, b := gen.RHSForSolution(a2)
	pb := make([]float64, len(b))
	for newI, old := range an.Perm {
		pb[newI] = b[old]
	}
	px := f2.Solve(pb)
	for newI, old := range an.Perm {
		if math.Abs(px[newI]-x[old]) > 1e-8 {
			t.Fatalf("x mismatch at %d: %g vs %g", old, px[newI], x[old])
		}
	}
}
