package solver

import (
	"errors"
	"fmt"

	"github.com/pastix-go/pastix/internal/blas"
	"github.com/pastix-go/pastix/internal/mpsim"
)

// Sentinel errors of the numerical phases. They are re-exported by the
// public pastix package; match with errors.Is, extract detail with
// errors.As.
var (
	// ErrNotSPD reports a factorization breakdown: the unpivoted LDLᵀ hit a
	// zero (or NaN) pivot, so the matrix is not symmetric positive definite
	// nor strongly diagonally dominant. The concrete error is a
	// *ZeroPivotError carrying the offending column.
	ErrNotSPD = errors.New("solver: matrix is not positive definite (zero pivot)")
	// ErrShape reports a dimension mismatch between arguments (rhs length vs
	// matrix order, panel shape, pattern mismatch).
	ErrShape = errors.New("solver: dimension mismatch")
	// ErrPivotExhausted reports that FactorizeRobust ran out of escalation
	// attempts: even the largest ε_piv tried either failed to factorize or
	// left a backward error that refinement could not pull under the target.
	// The concrete error is a *PivotExhaustedError.
	ErrPivotExhausted = errors.New("solver: static pivoting exhausted retries without an accurate factorization")
	// ErrCompressed reports that an operation which reads the dense factor
	// arrays (the message-passing solve runtime, the schedule-driven shared
	// solve) was handed a BLR-compressed factor. Compressed factors solve
	// through Factors.Solve/SolveMany and the level-set engine.
	ErrCompressed = errors.New("solver: operation requires dense factors (factor is BLR-compressed)")
)

// ErrFaultBudget reports that a fault-injected run degraded past recovery:
// the reliability layer exhausted a message's resend budget or a worker's
// restart budget. Match with errors.Is; the concrete error is a
// *FaultBudgetError carrying per-processor progress.
var ErrFaultBudget = mpsim.ErrFaultBudget

// TaskProgress is one processor's position in its task vector K_p when a
// fault-injected run gave up.
type TaskProgress struct {
	Done  int // tasks completed (and logged) before the run aborted
	Total int // tasks in the processor's vector
}

// FaultBudgetError wraps the runtime's budget exhaustion (an
// mpsim.ErrFaultBudget, reachable via errors.Is/As through Err) with the
// per-processor progress at the time of the abort — the graceful-degradation
// observable: how far each K_p got before recovery was abandoned.
type FaultBudgetError struct {
	Progress []TaskProgress // indexed by processor
	Err      error
}

func (e *FaultBudgetError) Error() string {
	done, total := 0, 0
	for _, p := range e.Progress {
		done += p.Done
		total += p.Total
	}
	return fmt.Sprintf("solver: aborted after %d/%d tasks: %v", done, total, e.Err)
}

func (e *FaultBudgetError) Unwrap() error { return e.Err }

// ZeroPivotError is the concrete error behind ErrNotSPD: the factorization
// of column block Cell broke down at global column Column (in the permuted
// ordering the analysis produced).
type ZeroPivotError struct {
	Cell   int     // column block whose diagonal factorization failed
	Column int     // global column index, permuted ordering
	Value  float64 // the offending pivot value (0 or NaN)
}

func (e *ZeroPivotError) Error() string {
	return fmt.Sprintf("solver: zero pivot at column %d (cb %d): matrix is not positive definite", e.Column, e.Cell)
}

// Is makes errors.Is(err, ErrNotSPD) succeed for ZeroPivotError values.
func (e *ZeroPivotError) Is(target error) bool { return target == ErrNotSPD }

// PivotExhaustedError is the concrete error behind ErrPivotExhausted: the
// escalation state when FactorizeRobust gave up.
type PivotExhaustedError struct {
	Attempts      int     // factorization attempts made (first try + retries)
	Epsilon       float64 // the last ε_piv tried
	BackwardError float64 // probe backward error of the last completed factorization; 0 if none completed
	Columns       []int   // perturbed columns of the last completed factorization
	Err           error   // last factorization error when no attempt completed
}

func (e *PivotExhaustedError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("solver: static pivoting exhausted after %d attempts (last ε=%.3g): %v", e.Attempts, e.Epsilon, e.Err)
	}
	return fmt.Sprintf("solver: static pivoting exhausted after %d attempts (last ε=%.3g): backward error %.3g above target, %d column(s) perturbed",
		e.Attempts, e.Epsilon, e.BackwardError, len(e.Columns))
}

// Is makes errors.Is(err, ErrPivotExhausted) succeed.
func (e *PivotExhaustedError) Is(target error) bool { return target == ErrPivotExhausted }

func (e *PivotExhaustedError) Unwrap() error { return e.Err }

// wrapPivot converts a blas factorization failure of cell k (whose first
// global column is colStart) into the typed solver error, translating the
// block-local pivot index into a global column.
func wrapPivot(colStart, k int, err error) error {
	var pe *blas.PivotError
	if errors.As(err, &pe) {
		return &ZeroPivotError{Cell: k, Column: colStart + pe.Index, Value: pe.Value}
	}
	return fmt.Errorf("solver: cb %d: %w", k, err)
}

// pivotError is wrapPivot with the column start looked up from the symbol.
func (f *Factors) pivotError(k int, err error) error {
	return wrapPivot(f.Sym.CB[k].Cols[0], k, err)
}
