package solver

import (
	"errors"
	"fmt"

	"github.com/pastix-go/pastix/internal/blas"
)

// Sentinel errors of the numerical phases. They are re-exported by the
// public pastix package; match with errors.Is, extract detail with
// errors.As.
var (
	// ErrNotSPD reports a factorization breakdown: the unpivoted LDLᵀ hit a
	// zero (or NaN) pivot, so the matrix is not symmetric positive definite
	// nor strongly diagonally dominant. The concrete error is a
	// *ZeroPivotError carrying the offending column.
	ErrNotSPD = errors.New("solver: matrix is not positive definite (zero pivot)")
	// ErrShape reports a dimension mismatch between arguments (rhs length vs
	// matrix order, panel shape, pattern mismatch).
	ErrShape = errors.New("solver: dimension mismatch")
)

// ZeroPivotError is the concrete error behind ErrNotSPD: the factorization
// of column block Cell broke down at global column Column (in the permuted
// ordering the analysis produced).
type ZeroPivotError struct {
	Cell   int     // column block whose diagonal factorization failed
	Column int     // global column index, permuted ordering
	Value  float64 // the offending pivot value (0 or NaN)
}

func (e *ZeroPivotError) Error() string {
	return fmt.Sprintf("solver: zero pivot at column %d (cb %d): matrix is not positive definite", e.Column, e.Cell)
}

// Is makes errors.Is(err, ErrNotSPD) succeed for ZeroPivotError values.
func (e *ZeroPivotError) Is(target error) bool { return target == ErrNotSPD }

// wrapPivot converts a blas factorization failure of cell k (whose first
// global column is colStart) into the typed solver error, translating the
// block-local pivot index into a global column.
func wrapPivot(colStart, k int, err error) error {
	var pe *blas.PivotError
	if errors.As(err, &pe) {
		return &ZeroPivotError{Cell: k, Column: colStart + pe.Index, Value: pe.Value}
	}
	return fmt.Errorf("solver: cb %d: %w", k, err)
}

// pivotError is wrapPivot with the column start looked up from the symbol.
func (f *Factors) pivotError(k int, err error) error {
	return wrapPivot(f.Sym.CB[k].Cols[0], k, err)
}
