// Package trace records what the parallel runtimes actually did — per-task
// execution intervals, message traffic, aggregation-buffer spills, solve
// phases — so an executed factorization can be compared against the static
// schedule that drove it. The paper's contribution is a schedule computed
// from a calibrated cost model; this package is the instrument that shows
// where the model and the machine disagree.
//
// Recording is designed to be cheap enough to leave compiled into the hot
// paths: each virtual processor appends to its own pre-grown buffer (no
// locks, no allocation in the common case), events are plain structs of
// integers, and every call site is behind a nil-recorder check so the
// disabled path costs a single pointer comparison.
//
// Two consumers are provided: WriteChromeTrace emits the Chrome trace-event
// JSON format (load chrome://tracing or https://ui.perfetto.dev), and
// Compare joins the events against a sched.Schedule into a
// predicted-vs-actual divergence Report.
package trace

import (
	"sort"
	"sync"
	"time"

	"github.com/pastix-go/pastix/internal/sched"
)

// Kind classifies events.
type Kind uint8

const (
	// KindTask is the execution interval of one schedule task (kernel time,
	// excluding the wait for its inputs).
	KindTask Kind = iota
	// KindSend is a message leaving a processor (instant; Bytes = payload).
	KindSend
	// KindRecv is a message arriving at a processor (instant; Bytes = payload).
	KindRecv
	// KindSpill is a fan-both AUB spill: an aggregation buffer sent early to
	// free memory (instant; Bytes = buffer size freed).
	KindSpill
	// KindPhase is a named runtime phase interval (assembly, panel scaling,
	// forward/backward solve sweep).
	KindPhase
	// KindFault is a fault-injection or reliability-layer event (instant):
	// an injected drop/duplicate/delay, a worker crash or stall, a resend by
	// the retry machinery, or a supervisor restart. Aux holds the Fault* id.
	KindFault
	// KindPivot is a static-pivot perturbation (instant): the numerical
	// factorization substituted a below-threshold diagonal pivot. Task holds
	// the global column (permuted ordering), Cell the column block.
	KindPivot
)

// Fault identifiers for KindFault events (stored in the Aux field).
const (
	// FaultDrop: a wire transmission was lost by the injector.
	FaultDrop int8 = iota
	// FaultDup: an extra copy of a message was delivered.
	FaultDup
	// FaultDelay: a delivery was held back.
	FaultDelay
	// FaultResend: the reliability layer retransmitted an unacknowledged
	// message (Task = sequence number, Bytes = payload).
	FaultResend
	// FaultCrash: a worker crashed at a task boundary (Task = step).
	FaultCrash
	// FaultStall: a worker entered an injected stall window (Task = step,
	// Bytes = planned stall nanoseconds).
	FaultStall
	// FaultStallBroken: the heartbeat supervisor declared a stalled worker
	// dead and broke its stall.
	FaultStallBroken
	// FaultRestart: the supervisor restarted a crashed/stalled worker, which
	// replays its task vector from its completion log (Task = restart count).
	FaultRestart
)

// faultNames maps Fault* ids to display names.
var faultNames = [...]string{"drop", "dup", "delay", "resend", "crash", "stall", "stall-broken", "restart"}

// Phase identifiers for KindPhase events (stored in the Aux field).
const (
	PhaseAssemble int8 = iota
	PhaseScale
	PhaseForward
	PhaseBackward
)

// phaseNames maps Phase* ids to display names.
var phaseNames = [...]string{"assemble", "scale", "solve-forward", "solve-backward"}

// Event is one recorded observation. All times are monotonic durations since
// the recorder's epoch.
type Event struct {
	Proc int32 // virtual processor
	Kind Kind
	// Aux is Kind-dependent: the sched.TaskType for KindTask, the runtime
	// message kind for KindSend/KindRecv, the Phase* id for KindPhase.
	Aux        int8
	Task       int32 // schedule task id (or message tag); -1 when not task-bound
	Cell, S, T int32 // symbol coordinates for KindTask; -1 otherwise
	Start, End time.Duration
	Bytes      int64 // payload/buffer bytes for comm and spill events
}

// procBuf is one processor's private event buffer. Buffers are allocated
// separately (behind pointers) so concurrent appends on different processors
// do not false-share.
type procBuf struct {
	ev []Event
}

// Recorder collects events from P virtual processors. Each processor must
// append only to its own index; with that contract all methods except the
// read-side (Events, WriteChromeTrace, Compare) are safe for concurrent use.
// A nil *Recorder is a valid "tracing off" value: callers guard every record
// with a nil check.
type Recorder struct {
	epoch time.Time
	procs []*procBuf

	// aux collects events recorded from goroutines that are not a virtual
	// processor (the fault supervisor, resend timers, delayed-delivery
	// timers). It is mutex-protected — fault events are rare, so the lock is
	// never on a hot path.
	auxMu sync.Mutex
	aux   []Event
}

// New returns a Recorder for p processors with per-processor buffers grown
// to cap events (default 1024 when cap <= 0). The epoch is set at creation;
// all event times are relative to it.
func New(p, cap int) *Recorder {
	if cap <= 0 {
		cap = 1024
	}
	r := &Recorder{epoch: time.Now(), procs: make([]*procBuf, p)}
	for i := range r.procs {
		r.procs[i] = &procBuf{ev: make([]Event, 0, cap)}
	}
	return r
}

// P returns the processor count the recorder was created for.
func (r *Recorder) P() int { return len(r.procs) }

// Now returns the current monotonic offset from the recorder's epoch.
func (r *Recorder) Now() time.Duration { return time.Since(r.epoch) }

// Task records the execution interval of schedule task id on processor p.
func (r *Recorder) Task(p, id int, tt sched.TaskType, cell, s, t int, start, end time.Duration) {
	b := r.procs[p]
	b.ev = append(b.ev, Event{
		Proc: int32(p), Kind: KindTask, Aux: int8(tt),
		Task: int32(id), Cell: int32(cell), S: int32(s), T: int32(t),
		Start: start, End: end,
	})
}

// Comm records a send or receive on processor p. kind is the runtime's
// message taxonomy value, tag its routing key.
func (r *Recorder) Comm(p int, k Kind, msgKind int8, tag int, bytes int64) {
	at := r.Now()
	b := r.procs[p]
	b.ev = append(b.ev, Event{
		Proc: int32(p), Kind: k, Aux: msgKind, Task: int32(tag),
		Cell: -1, S: -1, T: -1, Start: at, End: at, Bytes: bytes,
	})
}

// Spill records a fan-both aggregation-buffer spill on processor p for the
// destination task dt.
func (r *Recorder) Spill(p, dt int, bytes int64) {
	at := r.Now()
	b := r.procs[p]
	b.ev = append(b.ev, Event{
		Proc: int32(p), Kind: KindSpill, Task: int32(dt),
		Cell: -1, S: -1, T: -1, Start: at, End: at, Bytes: bytes,
	})
}

// Pivot records a static-pivot perturbation on processor p: the diagonal
// pivot of global column col (permuted ordering) fell below the threshold
// and was substituted (instant).
func (r *Recorder) Pivot(p, col int) {
	at := r.Now()
	b := r.procs[p]
	b.ev = append(b.ev, Event{
		Proc: int32(p), Kind: KindPivot, Task: int32(col),
		Cell: -1, S: -1, T: -1, Start: at, End: at,
	})
}

// KindCount counts recorded events of kind k across every processor buffer
// and the auxiliary buffer. Call only after the traced run finished.
func (r *Recorder) KindCount(k Kind) int64 {
	var n int64
	for _, b := range r.procs {
		for i := range b.ev {
			if b.ev[i].Kind == k {
				n++
			}
		}
	}
	r.auxMu.Lock()
	for i := range r.aux {
		if r.aux[i].Kind == k {
			n++
		}
	}
	r.auxMu.Unlock()
	return n
}

// Phase records a named runtime phase interval on processor p.
func (r *Recorder) Phase(p int, phase int8, start, end time.Duration) {
	b := r.procs[p]
	b.ev = append(b.ev, Event{
		Proc: int32(p), Kind: KindPhase, Aux: phase, Task: -1,
		Cell: -1, S: -1, T: -1, Start: start, End: end,
	})
}

// Fault records a fault-injection or reliability event attributed to
// processor p. Unlike the other record methods it may be called from any
// goroutine (supervisor, resend and delivery timers), so it goes through the
// locked auxiliary buffer rather than p's single-writer buffer.
func (r *Recorder) Fault(p int, fault int8, tag int, bytes int64) {
	at := r.Now()
	r.auxMu.Lock()
	r.aux = append(r.aux, Event{
		Proc: int32(p), Kind: KindFault, Aux: fault, Task: int32(tag),
		Cell: -1, S: -1, T: -1, Start: at, End: at, Bytes: bytes,
	})
	r.auxMu.Unlock()
}

// FaultCounts tallies the recorded KindFault events by Fault* id.
func (r *Recorder) FaultCounts() map[int8]int64 {
	out := make(map[int8]int64)
	r.auxMu.Lock()
	for i := range r.aux {
		if r.aux[i].Kind == KindFault {
			out[r.aux[i].Aux]++
		}
	}
	r.auxMu.Unlock()
	return out
}

// Events returns every recorded event merged across processors, ordered by
// start time (ties by processor). Call only after the traced run finished.
func (r *Recorder) Events() []Event {
	n := 0
	for _, b := range r.procs {
		n += len(b.ev)
	}
	r.auxMu.Lock()
	out := make([]Event, 0, n+len(r.aux))
	out = append(out, r.aux...)
	r.auxMu.Unlock()
	for _, b := range r.procs {
		out = append(out, b.ev...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Proc < out[j].Proc
	})
	return out
}

// TaskEvents returns only the KindTask events, unsorted.
func (r *Recorder) TaskEvents() []Event {
	var out []Event
	for _, b := range r.procs {
		for _, e := range b.ev {
			if e.Kind == KindTask {
				out = append(out, e)
			}
		}
	}
	return out
}
