package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"

	"github.com/pastix-go/pastix/internal/sched"
)

// TaskDivergence joins one schedule task's modelled execution against its
// traced one. Modelled times are in the scheduling cost model's seconds
// (e.g. the SP2 profile); measured times are host wall-clock seconds from
// the trace epoch. NormError is the unit-free comparison: the measured
// duration divided by the modelled duration after rescaling modelled time so
// the total modelled busy work equals the total measured busy work — 1.0
// means the cost model priced this task exactly right relative to the rest
// of the run, 2.0 means the task ran twice as long as its relative price.
type TaskDivergence struct {
	Task       int
	Type       sched.TaskType
	Cell, S, T int
	Proc       int
	ModelStart float64 // modelled seconds
	ModelDur   float64
	MeasStart  float64 // wall seconds since trace epoch
	MeasDur    float64
	NormError  float64
}

// ProcDivergence compares one processor's modelled load against its measured
// busy/idle split.
type ProcDivergence struct {
	Proc      int
	ModelBusy float64 // modelled seconds of kernel work assigned by the schedule
	MeasBusy  float64 // wall seconds spent inside task execution
	MeasIdle  float64 // wall seconds of the measured makespan not spent in tasks
}

// Report is the predicted-vs-actual analysis of one traced execution.
type Report struct {
	P     int
	Tasks []TaskDivergence // ordered by schedule rank
	Procs []ProcDivergence

	// Makespans: the schedule's modelled parallel time (with fan-in message
	// aggregation replayed exactly) vs the measured span from the first task
	// start to the last task end.
	PredictedMakespan float64
	MeasuredMakespan  float64

	// TimeScale is measured-total-busy / modelled-total-busy: the factor that
	// converts modelled seconds into this host's wall seconds. NormError
	// fields are computed after applying it.
	TimeScale float64

	// MeanAbsNormError and MaxAbsNormError summarise |NormError − 1| over
	// tasks, duration-weighted and worst-case: how much the cost model lies
	// about relative task costs.
	MeanAbsNormError float64
	MaxAbsNormError  float64
	WorstTask        int // task id attaining MaxAbsNormError (-1 when empty)

	// Load balance: max/mean busy time across processors, modelled and
	// measured.
	ModelImbalance float64
	MeasImbalance  float64

	// Critical path: the modelled critical-path tasks re-priced at their
	// measured durations, vs the prediction. CritPathMeas close to
	// MeasuredMakespan means the same chain limited the real run.
	CritPathModel float64
	CritPathMeas  float64

	// Traffic observed by the runtime (zero under the shared-memory runtime,
	// which moves no messages).
	MsgsSent   int64
	BytesSent  int64
	SpillCount int64
	SpillBytes int64
}

// CompareOptions tunes Compare.
type CompareOptions struct {
	// FreeMapping accepts traces from runtimes that do not honor the
	// schedule's task→processor mapping — the dynamic work-stealing runtime,
	// whose tasks run on whichever worker won them. Each ProcDivergence then
	// attributes ModelBusy to the SCHEDULED processor but MeasBusy/MeasIdle
	// to the worker that actually executed the task, so the busy/idle table
	// contrasts the planned distribution with the stolen one. Without it, a
	// task traced on a processor other than its scheduled one is an error.
	FreeMapping bool
}

// Compare joins the recorder's task events against the static schedule that
// drove the run and returns the divergence report. Every KindTask event must
// reference a task of sch; tasks never traced (schedule not fully executed)
// are an error.
func Compare(sch *sched.Schedule, rec *Recorder) (*Report, error) {
	return CompareOpts(sch, rec, CompareOptions{})
}

// CompareOpts is Compare with options (see CompareOptions).
func CompareOpts(sch *sched.Schedule, rec *Recorder, opts CompareOptions) (*Report, error) {
	n := len(sch.Tasks)
	type meas struct {
		start, dur float64
		proc       int
		seen       bool
	}
	got := make([]meas, n)
	var firstStart, lastEnd float64
	first := true
	rp := &Report{P: sch.P, WorstTask: -1}
	for _, b := range rec.procs {
		for _, e := range b.ev {
			switch e.Kind {
			case KindTask:
				id := int(e.Task)
				if id < 0 || id >= n {
					return nil, fmt.Errorf("trace: task event id %d outside schedule (%d tasks)", id, n)
				}
				if got[id].seen {
					return nil, fmt.Errorf("trace: task %d traced twice", id)
				}
				s, en := e.Start.Seconds(), e.End.Seconds()
				got[id] = meas{start: s, dur: en - s, proc: int(e.Proc), seen: true}
				if first || s < firstStart {
					firstStart = s
				}
				if first || en > lastEnd {
					lastEnd = en
				}
				first = false
			case KindSend:
				rp.MsgsSent++
				rp.BytesSent += e.Bytes
			case KindSpill:
				rp.SpillCount++
				rp.SpillBytes += e.Bytes
			}
		}
	}
	for id := 0; id < n; id++ {
		if !got[id].seen {
			return nil, fmt.Errorf("trace: task %d of %d never traced (incomplete execution?)", id, n)
		}
	}

	// Scale: align total busy work so modelled and measured durations become
	// comparable per task.
	var modelBusy, measBusy float64
	for id := 0; id < n; id++ {
		modelBusy += sch.Tasks[id].End - sch.Tasks[id].Start
		measBusy += got[id].dur
	}
	if modelBusy > 0 {
		rp.TimeScale = measBusy / modelBusy
	}

	rp.Tasks = make([]TaskDivergence, n)
	order := make([]int, n)
	for i := range sch.Tasks {
		order[sch.Tasks[i].Rank] = i
	}
	var errSum float64
	for rank, id := range order {
		t := &sch.Tasks[id]
		md := t.End - t.Start
		d := TaskDivergence{
			Task: id, Type: t.Type, Cell: t.Cell, S: t.S, T: t.T, Proc: t.Proc,
			ModelStart: t.Start, ModelDur: md,
			MeasStart: got[id].start - firstStart, MeasDur: got[id].dur,
		}
		if md > 0 && rp.TimeScale > 0 {
			d.NormError = got[id].dur / (md * rp.TimeScale)
			ae := math.Abs(d.NormError - 1)
			errSum += ae * got[id].dur
			if ae > rp.MaxAbsNormError {
				rp.MaxAbsNormError = ae
				rp.WorstTask = id
			}
		}
		rp.Tasks[rank] = d
	}
	if measBusy > 0 {
		rp.MeanAbsNormError = errSum / measBusy
	}

	// Per-processor busy/idle.
	rp.MeasuredMakespan = lastEnd - firstStart
	rp.PredictedMakespan = sch.Replay()
	rp.Procs = make([]ProcDivergence, sch.P)
	for p := range rp.Procs {
		rp.Procs[p].Proc = p
	}
	for id := 0; id < n; id++ {
		t := &sch.Tasks[id]
		rp.Procs[t.Proc].ModelBusy += t.End - t.Start
		mp := got[id].proc
		if !opts.FreeMapping {
			if mp != t.Proc {
				return nil, fmt.Errorf("trace: task %d traced on proc %d but scheduled on %d (dynamic runtime? use FreeMapping)",
					id, mp, t.Proc)
			}
		} else if mp < 0 || mp >= len(rp.Procs) {
			return nil, fmt.Errorf("trace: task %d traced on proc %d outside [0,%d)", id, mp, len(rp.Procs))
		}
		rp.Procs[mp].MeasBusy += got[id].dur
	}
	var modelMax, modelSum, measMax, measSum float64
	for p := range rp.Procs {
		rp.Procs[p].MeasIdle = rp.MeasuredMakespan - rp.Procs[p].MeasBusy
		modelSum += rp.Procs[p].ModelBusy
		measSum += rp.Procs[p].MeasBusy
		if rp.Procs[p].ModelBusy > modelMax {
			modelMax = rp.Procs[p].ModelBusy
		}
		if rp.Procs[p].MeasBusy > measMax {
			measMax = rp.Procs[p].MeasBusy
		}
	}
	if modelSum > 0 {
		rp.ModelImbalance = modelMax / (modelSum / float64(sch.P))
	}
	if measSum > 0 {
		rp.MeasImbalance = measMax / (measSum / float64(sch.P))
	}

	// Critical path, model vs re-priced with measured durations.
	for _, id := range sch.CriticalPath() {
		rp.CritPathModel += sch.Tasks[id].End - sch.Tasks[id].Start
		rp.CritPathMeas += got[id].dur
	}
	return rp, nil
}

// Write renders the report for humans: headline makespans and model quality,
// the per-processor busy/idle table, and the worst-priced tasks.
func (rp *Report) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "predicted-vs-actual schedule divergence (%d processors, %d tasks)\n",
		rp.P, len(rp.Tasks))
	fmt.Fprintf(bw, "  makespan : predicted %.6fs (model units), measured %.6fs wall\n",
		rp.PredictedMakespan, rp.MeasuredMakespan)
	fmt.Fprintf(bw, "  scale    : 1 modelled second ≈ %.4g wall seconds on this host\n", rp.TimeScale)
	fmt.Fprintf(bw, "  model err: mean |err| %.1f%%, worst %.1f%% (task %d); err = measured/modelled task time after rescaling\n",
		100*rp.MeanAbsNormError, 100*rp.MaxAbsNormError, rp.WorstTask)
	fmt.Fprintf(bw, "  balance  : load imbalance modelled %.3f, measured %.3f (max/mean busy)\n",
		rp.ModelImbalance, rp.MeasImbalance)
	fmt.Fprintf(bw, "  crit path: modelled %.6fs; same chain measured %.6fs (measured makespan %.6fs)\n",
		rp.CritPathModel, rp.CritPathMeas, rp.MeasuredMakespan)
	if rp.MsgsSent > 0 || rp.SpillCount > 0 {
		fmt.Fprintf(bw, "  traffic  : %d messages, %d bytes sent; %d AUB spills (%d bytes)\n",
			rp.MsgsSent, rp.BytesSent, rp.SpillCount, rp.SpillBytes)
	}
	fmt.Fprintf(bw, "  %-5s %10s %10s %10s %10s\n", "proc", "model busy", "meas busy", "meas idle", "busy frac")
	for _, p := range rp.Procs {
		frac := 0.0
		if rp.MeasuredMakespan > 0 {
			frac = p.MeasBusy / rp.MeasuredMakespan
		}
		fmt.Fprintf(bw, "  P%-4d %10.6f %10.6f %10.6f %9.1f%%\n",
			p.Proc, p.ModelBusy, p.MeasBusy, p.MeasIdle, 100*frac)
	}
	// The tasks the cost model priced worst, weighted by measured time so
	// noise on microsecond tasks does not dominate.
	idx := make([]int, len(rp.Tasks))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool {
		wi := math.Abs(rp.Tasks[idx[i]].NormError-1) * rp.Tasks[idx[i]].MeasDur
		wj := math.Abs(rp.Tasks[idx[j]].NormError-1) * rp.Tasks[idx[j]].MeasDur
		return wi > wj
	})
	top := 8
	if len(idx) < top {
		top = len(idx)
	}
	if top > 0 {
		fmt.Fprintf(bw, "  worst-priced tasks (measured-time weighted):\n")
		fmt.Fprintf(bw, "  %-7s %-7s %5s %5s %12s %12s %8s\n",
			"task", "type", "cell", "proc", "model dur", "meas dur", "err")
		for _, i := range idx[:top] {
			d := &rp.Tasks[i]
			fmt.Fprintf(bw, "  %-7d %-7s %5d %5d %12.3e %12.3e %7.2fx\n",
				d.Task, d.Type, d.Cell, d.Proc, d.ModelDur, d.MeasDur, d.NormError)
		}
	}
	return bw.Flush()
}
