package trace

import (
	"bufio"
	"fmt"
	"io"
	"time"

	"github.com/pastix-go/pastix/internal/sched"
)

// msgName labels the runtime message taxonomy (the int8 kinds of
// mpsim.Message as assigned by internal/solver: the factorization protocol
// kinds 0–3 and the triangular-solve kinds 10–13; see docs/PROTOCOL.md).
func msgName(k int8) string {
	switch k {
	case 0:
		return "AUB"
	case 1:
		return "F-panel"
	case 2:
		return "diag"
	case 3:
		return "AUB-partial"
	case 10:
		return "y-seg"
	case 11:
		return "fwd-contrib"
	case 12:
		return "x-seg"
	case 13:
		return "bwd-contrib"
	}
	return fmt.Sprintf("msg%d", k)
}

func (e *Event) name() string {
	switch e.Kind {
	case KindTask:
		switch sched.TaskType(e.Aux) {
		case sched.Comp1D:
			return fmt.Sprintf("COMP1D c%d", e.Cell)
		case sched.Factor:
			return fmt.Sprintf("FACTOR c%d", e.Cell)
		case sched.BDiv:
			return fmt.Sprintf("BDIV c%d b%d", e.Cell, e.S)
		case sched.BMod:
			return fmt.Sprintf("BMOD c%d (%d,%d)", e.Cell, e.S, e.T)
		}
		return fmt.Sprintf("task %d", e.Task)
	case KindSend:
		return "send " + msgName(e.Aux)
	case KindRecv:
		return "recv " + msgName(e.Aux)
	case KindSpill:
		return "AUB spill"
	case KindPivot:
		return fmt.Sprintf("pivot:perturb col %d", e.Task)
	case KindFault:
		if int(e.Aux) < len(faultNames) {
			return "fault:" + faultNames[e.Aux]
		}
		return fmt.Sprintf("fault %d", e.Aux)
	case KindPhase:
		if int(e.Aux) < len(phaseNames) {
			return phaseNames[e.Aux]
		}
		return fmt.Sprintf("phase %d", e.Aux)
	}
	return fmt.Sprintf("event kind %d", e.Kind)
}

func (e *Event) category() string {
	switch e.Kind {
	case KindTask:
		return "task"
	case KindSend, KindRecv:
		return "comm"
	case KindSpill:
		return "memory"
	case KindPivot:
		return "pivot"
	case KindFault:
		return "fault"
	case KindPhase:
		return "phase"
	}
	return "other"
}

// WriteChromeTrace emits every recorded event in the Chrome trace-event JSON
// format (the object form: {"traceEvents": [...]}). Task and phase events
// become complete ("X") events with microsecond timestamps; sends, receives
// and spills become thread-scoped instant ("i") events carrying their byte
// counts in args. Load the file in chrome://tracing or ui.perfetto.dev; one
// track ("thread") per virtual processor.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	first := true
	for _, e := range r.Events() {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		switch e.Kind {
		case KindTask:
			fmt.Fprintf(bw,
				`{"name":%q,"cat":%q,"ph":"X","ts":%.3f,"dur":%.3f,"pid":0,"tid":%d,"args":{"task":%d,"cell":%d,"s":%d,"t":%d}}`,
				e.name(), e.category(), us(e.Start), us(e.End-e.Start), e.Proc, e.Task, e.Cell, e.S, e.T)
		case KindPhase:
			fmt.Fprintf(bw,
				`{"name":%q,"cat":%q,"ph":"X","ts":%.3f,"dur":%.3f,"pid":0,"tid":%d,"args":{}}`,
				e.name(), e.category(), us(e.Start), us(e.End-e.Start), e.Proc)
		default:
			fmt.Fprintf(bw,
				`{"name":%q,"cat":%q,"ph":"i","s":"t","ts":%.3f,"pid":0,"tid":%d,"args":{"bytes":%d,"tag":%d}}`,
				e.name(), e.category(), us(e.Start), e.Proc, e.Bytes, e.Task)
		}
	}
	if _, err := bw.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
