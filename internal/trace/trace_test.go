package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"github.com/pastix-go/pastix/internal/sched"
)

func TestRecorderEventsMergedSorted(t *testing.T) {
	r := New(2, 4)
	r.Task(1, 3, sched.Comp1D, 3, -1, -1, 5*time.Microsecond, 9*time.Microsecond)
	r.Task(0, 0, sched.Factor, 0, -1, -1, 1*time.Microsecond, 4*time.Microsecond)
	r.Comm(0, KindSend, 2, 7, 128)
	r.Spill(1, 9, 4096)
	r.Phase(0, PhaseAssemble, 0, 1*time.Microsecond)

	ev := r.Events()
	if len(ev) != 5 {
		t.Fatalf("got %d events, want 5", len(ev))
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].Start < ev[i-1].Start {
			t.Fatalf("events not sorted by start: %v after %v", ev[i].Start, ev[i-1].Start)
		}
	}
	if n := len(r.TaskEvents()); n != 2 {
		t.Fatalf("TaskEvents: got %d, want 2", n)
	}
	if r.P() != 2 {
		t.Fatalf("P: got %d, want 2", r.P())
	}
}

// chromeDoc mirrors the object-form trace-event JSON for schema validation.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Ts   *float64       `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  *int           `json:"pid"`
		Tid  *int           `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestWriteChromeTraceWellFormed(t *testing.T) {
	r := New(2, 0)
	r.Task(0, 0, sched.Comp1D, 0, -1, -1, 0, 3*time.Microsecond)
	r.Task(1, 1, sched.BMod, 2, 0, 1, 1*time.Microsecond, 2*time.Microsecond)
	r.Comm(1, KindRecv, 0, 0, 800)
	r.Phase(0, PhaseScale, 3*time.Microsecond, 4*time.Microsecond)

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d trace events, want 4", len(doc.TraceEvents))
	}
	var complete, instant int
	for _, e := range doc.TraceEvents {
		if e.Name == "" || e.Cat == "" || e.Ts == nil || e.Pid == nil || e.Tid == nil {
			t.Fatalf("event missing required field: %+v", e)
		}
		switch e.Ph {
		case "X":
			complete++
		case "i":
			instant++
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	if complete != 3 || instant != 1 {
		t.Fatalf("got %d complete / %d instant events, want 3 / 1", complete, instant)
	}
}
