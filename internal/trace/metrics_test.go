package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestHistBucketsCumulative(t *testing.T) {
	h := NewHist(1, 10, 100)
	for _, v := range []float64{0.5, 1, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	var sb strings.Builder
	if err := h.WriteProm(&sb, "m", `phase="x"`); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`m_bucket{phase="x",le="1"} 2`,
		`m_bucket{phase="x",le="10"} 3`,
		`m_bucket{phase="x",le="100"} 4`,
		`m_bucket{phase="x",le="+Inf"} 6`,
		`m_count{phase="x"} 6`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if h.Sum() != 0.5+1+5+50+500+5000 {
		t.Fatalf("sum %g", h.Sum())
	}
}

func TestHistConcurrentObserve(t *testing.T) {
	h := NewHist(LatencyBuckets()...)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count %d", h.Count())
	}
	if diff := h.Sum() - 8; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("sum %g", h.Sum())
	}
}
