package trace

// Lock-free observability primitives and the divergence-report → metrics
// adapter. The serving layer (internal/service) exposes these in the
// Prometheus text exposition format on GET /metrics; they are kept here, next
// to the tracing machinery, because the interesting runtime metrics — phase
// latencies, message traffic, model error — are exactly what the trace
// recorder and divergence report already measure.

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be ≥ 0 for Prometheus counter semantics).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Hist is a fixed-bucket histogram safe for concurrent observation: bounds
// are the inclusive upper limits ("le") of each bucket, ascending, with an
// implicit +Inf bucket at the end.
type Hist struct {
	bounds  []float64
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// NewHist returns a histogram over the given ascending upper bounds.
func NewHist(bounds ...float64) *Hist {
	h := &Hist{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
	return h
}

// LatencyBuckets is the default per-phase latency bucket ladder: 100 µs to
// ~100 s, ×4 per step (seconds).
func LatencyBuckets() []float64 {
	return []float64{1e-4, 4e-4, 1.6e-3, 6.4e-3, 2.56e-2, 0.1024, 0.4096, 1.6384, 6.5536, 26.2144, 104.8576}
}

// BatchBuckets is the bucket ladder for batched-request sizes.
func BatchBuckets() []float64 { return []float64{1, 2, 4, 8, 16, 32, 64, 128} }

// Observe records one value.
func (h *Hist) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Hist) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Hist) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// WriteProm emits the histogram in the Prometheus text exposition format
// under the given metric name; labels, when non-empty, is a comma-separated
// label list without braces (e.g. `phase="analyze"`).
func (h *Hist) WriteProm(w io.Writer, name, labels string) error {
	sep := ""
	if labels != "" {
		sep = ","
	}
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"%g\"} %d\n", name, labels, sep, b, cum); err != nil {
			return err
		}
	}
	cum += h.buckets[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum); err != nil {
		return err
	}
	lb := ""
	if labels != "" {
		lb = "{" + labels + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", name, lb, h.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, lb, h.Count())
	return err
}

// PromHeader writes the # HELP / # TYPE preamble for a metric.
func PromHeader(w io.Writer, name, typ, help string) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	return err
}

// PromValue writes one sample line.
func PromValue(w io.Writer, name string, v int64) error {
	_, err := fmt.Fprintf(w, "%s %d\n", name, v)
	return err
}

// PromFloat writes one sample line for a float-valued gauge.
func PromFloat(w io.Writer, name string, v float64) error {
	_, err := fmt.Fprintf(w, "%s %g\n", name, v)
	return err
}

// RunMetrics accumulates observations of traced executions: the adapter from
// the divergence Report (or, one layer up, a pastix.TraceSummary) to the
// metrics a serving layer exports.
type RunMetrics struct {
	Makespan   *Hist // measured makespan, wall seconds
	ModelError *Hist // duration-weighted mean |model error| per run
	Messages   Counter
	Bytes      Counter
}

// NewRunMetrics returns a RunMetrics with the default bucket ladders.
func NewRunMetrics() *RunMetrics {
	return &RunMetrics{
		Makespan:   NewHist(LatencyBuckets()...),
		ModelError: NewHist(0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5),
	}
}

// ObserveReport feeds one divergence report into the metrics.
func (m *RunMetrics) ObserveReport(rp *Report) {
	m.Makespan.Observe(rp.MeasuredMakespan)
	m.ModelError.Observe(rp.MeanAbsNormError)
	m.Messages.Add(rp.MsgsSent)
	m.Bytes.Add(rp.BytesSent)
}
