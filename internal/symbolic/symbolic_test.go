package symbolic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/pastix-go/pastix/internal/etree"
	"github.com/pastix-go/pastix/internal/graph"
	"github.com/pastix-go/pastix/internal/order"
	"github.com/pastix-go/pastix/internal/sparse"
)

// analyze runs the standard pipeline used by the solver: order, permute,
// postorder, supernodes, block symbolic.
func analyze(t *testing.T, a *sparse.SymMatrix, m order.Method) (*sparse.SymMatrix, *etree.Supernodes, *Symbol) {
	t.Helper()
	ptr, adj := a.AdjacencyCSR()
	g := graph.FromCSR(a.N, ptr, adj)
	o := order.Compute(g, order.Options{Method: m, LeafSize: 20})
	if err := o.Validate(a.N); err != nil {
		t.Fatal(err)
	}
	pa := a.Permute(o.Perm)
	parent := etree.Build(pa)
	post := etree.Postorder(parent)
	pa = pa.Permute(post)
	parent = etree.Build(pa)
	cc := etree.ColCounts(pa, parent)
	sn := etree.Fundamental(parent, cc)
	sn = etree.Amalgamate(sn, parent, cc, etree.AmalgamateOptions{})
	if err := sn.Validate(a.N); err != nil {
		t.Fatal(err)
	}
	sym := Factor(pa, sn)
	return pa, sn, sym
}

func laplacian2D(nx, ny int) *sparse.SymMatrix {
	b := sparse.NewBuilder(nx * ny)
	idx := func(i, j int) int { return i + j*nx }
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			v := idx(i, j)
			b.Add(v, v, 4)
			if i+1 < nx {
				b.Add(v, idx(i+1, j), -1)
			}
			if j+1 < ny {
				b.Add(v, idx(i, j+1), -1)
			}
		}
	}
	return b.Build()
}

// scalarFillRows computes the exact scalar fill structure of the amalgamated
// matrix (each column of a block given the union pattern of its block) by
// dense symbolic elimination — the oracle for Factor.
func scalarFillRows(a *sparse.SymMatrix, sn *etree.Supernodes) [][]bool {
	n := a.N
	pat := make([][]bool, n)
	for i := range pat {
		pat[i] = make([]bool, n)
	}
	col2sn := sn.ColToSnode(n)
	// Amalgamated initial pattern: entry (i,j) spreads over all columns of
	// j's block, and the diagonal blocks are dense.
	for j := 0; j < n; j++ {
		r := sn.Ranges[col2sn[j]]
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			i := a.RowIdx[p]
			for c := r[0]; c < r[1]; c++ {
				if i >= c {
					pat[i][c] = true
				} else {
					pat[c][i] = true
				}
			}
		}
		for c := r[0]; c <= j; c++ {
			pat[j][c] = true
		}
	}
	// Dense symbolic elimination. Fill spreads block-wise: after each step
	// re-amalgamate new fill across the target block's columns.
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			if !pat[i][k] {
				continue
			}
			for j := k + 1; j <= i; j++ {
				if pat[j][k] && !pat[i][j] {
					// spread over j's whole block (columns ≤ i)
					r := sn.Ranges[col2sn[j]]
					for c := r[0]; c < r[1] && c <= i; c++ {
						pat[i][c] = true
					}
				}
			}
		}
	}
	return pat
}

func TestFactorAgainstAmalgamatedOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 15; trial++ {
		n := 6 + rng.Intn(20)
		b := sparse.NewBuilder(n)
		for i := 0; i < n; i++ {
			b.Add(i, i, 10)
			for j := 0; j < i; j++ {
				if rng.Float64() < 0.2 {
					b.Add(i, j, -1)
				}
			}
		}
		a := b.Build()
		// Natural order, random-ish contiguous partition.
		var ranges [][2]int
		pos := 0
		for pos < n {
			w := 1 + rng.Intn(4)
			if pos+w > n {
				w = n - pos
			}
			ranges = append(ranges, [2]int{pos, pos + w})
			pos += w
		}
		sn := &etree.Supernodes{Ranges: ranges, Parent: make([]int, len(ranges))}
		sym := Factor(a, sn)
		if err := sym.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		oracle := scalarFillRows(a, sn)
		// Symbol block (i-row, k-block) present ⇔ oracle fill at (i, cols of k).
		got := make([][]bool, n)
		for i := range got {
			got[i] = make([]bool, n)
		}
		for k := range sym.CB {
			cb := &sym.CB[k]
			for c := cb.Cols[0]; c < cb.Cols[1]; c++ {
				for r := c; r < cb.Cols[1]; r++ {
					got[r][c] = true // dense diagonal block
				}
			}
			for _, blk := range cb.Blocks {
				for r := blk.FirstRow; r < blk.LastRow; r++ {
					for c := cb.Cols[0]; c < cb.Cols[1]; c++ {
						got[r][c] = true
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				if got[i][j] != oracle[i][j] {
					t.Fatalf("trial %d: fill mismatch at (%d,%d): got %v oracle %v",
						trial, i, j, got[i][j], oracle[i][j])
				}
			}
		}
	}
}

func TestFactorLaplacianPipeline(t *testing.T) {
	a := laplacian2D(12, 12)
	for _, m := range []order.Method{order.ScotchLike, order.MetisLike, order.PureAMD} {
		_, sn, sym := analyze(t, a, m)
		if err := sym.Validate(); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if sym.NumCB() != sn.Count() {
			t.Fatalf("%v: cb count mismatch", m)
		}
		// Block NNZ must cover at least the scalar NNZ of the unamalgamated
		// factor of the same permuted matrix.
		if sym.NNZL() < int64(a.N) {
			t.Fatalf("%v: NNZL too small: %d", m, sym.NNZL())
		}
	}
}

func TestFacingsAndUpdatersAreInverse(t *testing.T) {
	a := laplacian2D(10, 10)
	_, _, sym := analyze(t, a, order.ScotchLike)
	for k := 0; k < sym.NumCB(); k++ {
		for _, f := range sym.Facings(k) {
			found := false
			for _, u := range sym.Updaters[f] {
				if u == k {
					found = true
				}
			}
			if !found {
				t.Fatalf("cb %d faces %d but is not among its updaters", k, f)
			}
		}
	}
	for f := 0; f < sym.NumCB(); f++ {
		for _, u := range sym.Updaters[f] {
			ok := false
			for _, ff := range sym.Facings(u) {
				if ff == f {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("cb %d listed as updater of %d but does not face it", u, f)
			}
		}
	}
}

func TestSpanHelpers(t *testing.T) {
	got := spansFromSorted([]int{1, 2, 2, 3, 7, 9, 10})
	want := []Span{{1, 4}, {7, 8}, {9, 11}}
	if len(got) != len(want) {
		t.Fatalf("%v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%v want %v", got, want)
		}
	}
	u := unionSpans([]Span{{0, 3}, {8, 10}}, []Span{{2, 5}, {5, 6}, {10, 12}})
	want = []Span{{0, 6}, {8, 12}}
	if len(u) != len(want) {
		t.Fatalf("union %v", u)
	}
	for i := range want {
		if u[i] != want[i] {
			t.Fatalf("union %v want %v", u, want)
		}
	}
	c := clipSpans([]Span{{0, 4}, {6, 9}}, 3)
	want = []Span{{3, 4}, {6, 9}}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("clip %v want %v", c, want)
		}
	}
}

func TestOPCAndNNZLPositiveAndOrdered(t *testing.T) {
	small := laplacian2D(6, 6)
	big := laplacian2D(14, 14)
	_, _, symS := analyze(t, small, order.ScotchLike)
	_, _, symB := analyze(t, big, order.ScotchLike)
	if symS.OPC() <= 0 || symB.OPC() <= 0 {
		t.Fatal("OPC must be positive")
	}
	if symB.OPC() <= symS.OPC() || symB.NNZL() <= symS.NNZL() {
		t.Fatal("bigger problem should have bigger OPC/NNZL")
	}
}

func TestParentIsFirstFacing(t *testing.T) {
	a := laplacian2D(9, 9)
	_, _, sym := analyze(t, a, order.MetisLike)
	for k := 0; k < sym.NumCB(); k++ {
		if len(sym.CB[k].Blocks) == 0 {
			if sym.Parent[k] != -1 {
				t.Fatalf("cb %d: no blocks but parent %d", k, sym.Parent[k])
			}
			continue
		}
		if sym.Parent[k] != sym.CB[k].Blocks[0].Facing {
			t.Fatalf("cb %d parent mismatch", k)
		}
	}
}

// Property (testing/quick): on random matrices with random contiguous
// partitions, the block symbolic structure is internally valid and its
// NNZL/OPC are monotone under partition refinement (a finer partition never
// stores more entries than a coarser one of the same matrix... the converse:
// amalgamating ranges can only add explicit zeros).
func TestQuickFactorValidAndMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(24)
		b := sparse.NewBuilder(n)
		for i := 0; i < n; i++ {
			b.Add(i, i, 10)
			for j := 0; j < i; j++ {
				if rng.Float64() < 0.15 {
					b.Add(i, j, -1)
				}
			}
		}
		a := b.Build()
		// Coarse partition, then its refinement into singletons.
		var ranges [][2]int
		pos := 0
		for pos < n {
			w := 1 + rng.Intn(5)
			if pos+w > n {
				w = n - pos
			}
			ranges = append(ranges, [2]int{pos, pos + w})
			pos += w
		}
		coarse := &etree.Supernodes{Ranges: ranges, Parent: make([]int, len(ranges))}
		var singles [][2]int
		for i := 0; i < n; i++ {
			singles = append(singles, [2]int{i, i + 1})
		}
		fine := &etree.Supernodes{Ranges: singles, Parent: make([]int, n)}
		symC := Factor(a, coarse)
		symF := Factor(a, fine)
		if symC.Validate() != nil || symF.Validate() != nil {
			return false
		}
		// The singleton partition stores the exact scalar fill; the coarse
		// partition adds amalgamation zeros.
		return symC.NNZL() >= symF.NNZL()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the singleton-partition block NNZL equals the scalar fill count
// from the elimination-tree column counts.
func TestQuickSingletonMatchesScalarFill(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		b := sparse.NewBuilder(n)
		for i := 0; i < n; i++ {
			b.Add(i, i, 5)
			for j := 0; j < i; j++ {
				if rng.Float64() < 0.2 {
					b.Add(i, j, -1)
				}
			}
		}
		a := b.Build()
		var singles [][2]int
		for i := 0; i < n; i++ {
			singles = append(singles, [2]int{i, i + 1})
		}
		sym := Factor(a, &etree.Supernodes{Ranges: singles, Parent: make([]int, n)})
		parent := etree.Build(a)
		cc := etree.ColCounts(a, parent)
		return sym.NNZL() == etree.NNZL(cc)+int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
