// Package symbolic implements the block symbolic factorization of the paper
// (Charrier & Roman): given a supernode partition of a permuted symmetric
// matrix, it computes the block data structure of the factor L — for each
// column block, one dense diagonal block plus a set of dense off-diagonal
// blocks — in quasi-linear time by propagating row-interval sets up the
// supernodal elimination tree.
//
// Column blocks are treated as amalgamated: every column of a block is given
// the union of the scalar structures of the block's columns (this is what
// makes the dense BLAS3 kernels applicable, at the price of some explicit
// zeros — the paper notes the operations actually performed exceed the
// scalar OPC for this reason).
package symbolic

import (
	"fmt"
	"sort"

	"github.com/pastix-go/pastix/internal/etree"
	"github.com/pastix-go/pastix/internal/sparse"
)

// Span is a half-open row interval [Lo, Hi).
type Span struct{ Lo, Hi int }

// Block is a dense off-diagonal block of a column block: rows
// [FirstRow, LastRow) — all belonging to column block Facing — by the
// owning column block's columns.
type Block struct {
	FirstRow, LastRow int
	Facing            int
}

// Rows returns the number of rows of the block.
func (b Block) Rows() int { return b.LastRow - b.FirstRow }

// ColBlock is one column block of the factor: a dense symmetric diagonal
// block on columns [Cols[0], Cols[1]) and the off-diagonal blocks below it,
// sorted by FirstRow.
type ColBlock struct {
	Cols   [2]int
	Blocks []Block
}

// Width returns the number of columns of the block column.
func (cb *ColBlock) Width() int { return cb.Cols[1] - cb.Cols[0] }

// RowsBelow returns the total number of off-diagonal rows.
func (cb *ColBlock) RowsBelow() int {
	r := 0
	for _, b := range cb.Blocks {
		r += b.Rows()
	}
	return r
}

// Symbol is the block structure of L.
type Symbol struct {
	N      int        // matrix order
	CB     []ColBlock // column blocks, ascending column ranges
	Col2CB []int      // column -> column block index
	// Parent is the supernodal elimination tree: the column block faced by
	// the first off-diagonal block (-1 for roots).
	Parent []int
	// Updaters[k] lists the column blocks i<k having a block facing k, i.e.
	// the set BStruct(L_{k·}) of the paper (the column blocks that update k).
	Updaters [][]int
}

// NumCB returns the number of column blocks.
func (s *Symbol) NumCB() int { return len(s.CB) }

// Facings returns the distinct column blocks faced by the blocks of column
// block k, ascending — the set BStruct(L_{·k}) of the paper (the column
// blocks updated by k).
func (s *Symbol) Facings(k int) []int {
	var out []int
	for _, b := range s.CB[k].Blocks {
		if len(out) == 0 || out[len(out)-1] != b.Facing {
			out = append(out, b.Facing)
		}
	}
	return out
}

// Factor computes the block symbolic factorization of a for the given
// supernode partition.
func Factor(a *sparse.SymMatrix, sn *etree.Supernodes) *Symbol {
	n := a.N
	ncb := sn.Count()
	s := &Symbol{
		N:      n,
		CB:     make([]ColBlock, ncb),
		Col2CB: sn.ColToSnode(n),
		Parent: make([]int, ncb),
	}
	cbEnd := make([]int, ncb)
	for k, r := range sn.Ranges {
		s.CB[k].Cols = r
		cbEnd[k] = r[1]
	}

	// Initial row sets from the pattern of A: for each column block, the
	// rows of its columns at or beyond the end of the diagonal block.
	rows := make([][]Span, ncb)
	var scratch []int
	for k := 0; k < ncb; k++ {
		lo, hi := sn.Ranges[k][0], sn.Ranges[k][1]
		scratch = scratch[:0]
		for j := lo; j < hi; j++ {
			for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
				if i := a.RowIdx[p]; i >= hi {
					scratch = append(scratch, i)
				}
			}
		}
		sort.Ints(scratch)
		rows[k] = spansFromSorted(scratch)
	}

	// Bottom-up propagation: the whole below-diagonal structure of block k
	// flows to its parent (the block owning k's first off-diagonal row),
	// clipped to rows beyond the parent's diagonal block.
	for k := 0; k < ncb; k++ {
		if len(rows[k]) == 0 {
			s.Parent[k] = -1
			continue
		}
		p := s.Col2CB[rows[k][0].Lo]
		s.Parent[k] = p
		contrib := clipSpans(rows[k], cbEnd[p])
		if len(contrib) > 0 {
			rows[p] = unionSpans(rows[p], contrib)
		}
	}

	// Split final row sets at column-block boundaries into blocks.
	for k := 0; k < ncb; k++ {
		for _, sp := range rows[k] {
			lo := sp.Lo
			for lo < sp.Hi {
				f := s.Col2CB[lo]
				hi := cbEnd[f]
				if hi > sp.Hi {
					hi = sp.Hi
				}
				s.CB[k].Blocks = append(s.CB[k].Blocks, Block{FirstRow: lo, LastRow: hi, Facing: f})
				lo = hi
			}
		}
	}

	// Reverse adjacency: who updates whom.
	s.Updaters = make([][]int, ncb)
	for k := 0; k < ncb; k++ {
		for _, f := range s.Facings(k) {
			s.Updaters[f] = append(s.Updaters[f], k)
		}
	}
	return s
}

// spansFromSorted coalesces a sorted (possibly duplicated) row list into
// maximal spans.
func spansFromSorted(rows []int) []Span {
	var out []Span
	for _, r := range rows {
		if n := len(out); n > 0 && r < out[n-1].Hi {
			continue // duplicate
		} else if n > 0 && r == out[n-1].Hi {
			out[n-1].Hi++
			continue
		}
		out = append(out, Span{r, r + 1})
	}
	return out
}

// clipSpans returns the parts of spans with rows >= minRow.
func clipSpans(spans []Span, minRow int) []Span {
	var out []Span
	for _, sp := range spans {
		if sp.Hi <= minRow {
			continue
		}
		lo := sp.Lo
		if lo < minRow {
			lo = minRow
		}
		out = append(out, Span{lo, sp.Hi})
	}
	return out
}

// unionSpans merges two sorted span lists, coalescing overlaps and
// adjacencies.
func unionSpans(a, b []Span) []Span {
	out := make([]Span, 0, len(a)+len(b))
	i, j := 0, 0
	push := func(sp Span) {
		if n := len(out); n > 0 && sp.Lo <= out[n-1].Hi {
			if sp.Hi > out[n-1].Hi {
				out[n-1].Hi = sp.Hi
			}
			return
		}
		out = append(out, sp)
	}
	for i < len(a) || j < len(b) {
		if j >= len(b) || (i < len(a) && a[i].Lo <= b[j].Lo) {
			push(a[i])
			i++
		} else {
			push(b[j])
			j++
		}
	}
	return out
}

// NNZL returns the number of stored factor entries under the block model:
// the dense lower triangles of the diagonal blocks (diagonal included) plus
// the full off-diagonal blocks. This is ≥ the scalar count because of
// amalgamation.
func (s *Symbol) NNZL() int64 {
	var t int64
	for k := range s.CB {
		w := int64(s.CB[k].Width())
		t += w * (w + 1) / 2
		t += w * int64(s.CB[k].RowsBelow())
	}
	return t
}

// OPC returns the floating-point operations of the block LDLᵀ factorization:
// per column block of width w with r off-diagonal rows, the dense diagonal
// factorization (w³/3), the triangular solves (r·w²), and the outer-product
// updates (w·r·(r+1)).
func (s *Symbol) OPC() float64 {
	var t float64
	for k := range s.CB {
		w := float64(s.CB[k].Width())
		r := float64(s.CB[k].RowsBelow())
		t += w * w * w / 3
		t += r * w * w
		t += w * r * (r + 1)
	}
	return t
}

// Validate checks structural invariants of the symbol: ordered blocks within
// each column block, rows beyond the diagonal block, facing consistency, the
// parent relation, and closure of the fill (every block's rows must appear
// in the structure of the first-facing ancestor — checked via Updaters
// symmetry).
func (s *Symbol) Validate() error {
	pos := 0
	for k := range s.CB {
		cb := &s.CB[k]
		if cb.Cols[0] != pos || cb.Cols[1] <= cb.Cols[0] {
			return fmt.Errorf("symbolic: column block %d range %v not contiguous", k, cb.Cols)
		}
		pos = cb.Cols[1]
		prev := cb.Cols[1]
		for _, b := range cb.Blocks {
			if b.FirstRow < prev {
				return fmt.Errorf("symbolic: block %v of cb %d overlaps or is unsorted", b, k)
			}
			if b.LastRow <= b.FirstRow {
				return fmt.Errorf("symbolic: empty block %v of cb %d", b, k)
			}
			f := b.Facing
			if f <= k || f >= len(s.CB) {
				return fmt.Errorf("symbolic: cb %d block faces %d", k, f)
			}
			if b.FirstRow < s.CB[f].Cols[0] || b.LastRow > s.CB[f].Cols[1] {
				return fmt.Errorf("symbolic: cb %d block %v exceeds facing cb %d range %v", k, b, f, s.CB[f].Cols)
			}
			prev = b.LastRow
		}
		if len(cb.Blocks) > 0 {
			if s.Parent[k] != cb.Blocks[0].Facing {
				return fmt.Errorf("symbolic: cb %d parent %d != first facing %d", k, s.Parent[k], cb.Blocks[0].Facing)
			}
		} else if s.Parent[k] != -1 {
			return fmt.Errorf("symbolic: cb %d has no blocks but parent %d", k, s.Parent[k])
		}
	}
	if pos != s.N {
		return fmt.Errorf("symbolic: column blocks cover %d of %d", pos, s.N)
	}
	// Fan-in closure: for every cb i and every pair of blocks (bs, bt) with
	// s ≥ t, the rows of bs must be contained in the structure of the column
	// block faced by bt (this is what lets BMOD target real blocks).
	for i := range s.CB {
		blocks := s.CB[i].Blocks
		for t := 0; t < len(blocks); t++ {
			ft := blocks[t].Facing
			for u := t; u < len(blocks); u++ {
				if !s.contains(ft, blocks[u].FirstRow, blocks[u].LastRow) {
					return fmt.Errorf("symbolic: cb %d update rows [%d,%d) not in structure of cb %d",
						i, blocks[u].FirstRow, blocks[u].LastRow, ft)
				}
			}
		}
	}
	return nil
}

// contains reports whether rows [lo,hi) are inside column block f's
// structure (rows inside f's own columns count as the dense diagonal block).
func (s *Symbol) contains(f, lo, hi int) bool {
	cb := &s.CB[f]
	// Portion inside the diagonal block.
	if lo < cb.Cols[1] {
		if hi <= cb.Cols[1] {
			return true
		}
		lo = cb.Cols[1]
	}
	for _, b := range cb.Blocks {
		if lo >= b.FirstRow && lo < b.LastRow {
			if hi <= b.LastRow {
				return true
			}
			lo = b.LastRow
		}
	}
	return lo >= hi
}
