// Package cost provides the execution-time models that drive the static
// scheduler: a BLAS kernel time model built by multi-variable polynomial
// regression (exactly the paper's approach: "a multi-variable polynomial
// regression has been used to build an analytical model of these routines"),
// a communication model (startup latency + bandwidth), and an aggregation
// model for the fan-in AUB additions.
//
// Two machine profiles matter: a profile calibrated on the host running the
// benchmarks (CalibrateLocal), and an analytic profile of the paper's IBM
// SP2 with 120 MHz Power2SC nodes (SP2) used to regenerate Table 2's scaling
// shape on up to 64 simulated processors.
package cost

import (
	"fmt"
	"math"
	"time"

	"github.com/pastix-go/pastix/internal/blas"
)

// KernelModel predicts a kernel's execution time (seconds) for problem
// dimensions (m,n,k) as a degree-≤3 polynomial with the cross terms that
// matter for dense kernels:
//
//	t = c0 + c1·m + c2·n + c3·k + c4·m·n + c5·m·k + c6·n·k + c7·m·n·k
type KernelModel struct {
	Coef [8]float64
}

// Time evaluates the model; negative predictions are clamped to zero.
func (km *KernelModel) Time(m, n, k float64) float64 {
	c := &km.Coef
	t := c[0] + c[1]*m + c[2]*n + c[3]*k + c[4]*m*n + c[5]*m*k + c[6]*n*k + c[7]*m*n*k
	if t < 0 {
		return 0
	}
	return t
}

func basisRow(m, n, k float64) []float64 {
	return []float64{1, m, n, k, m * n, m * k, n * k, m * n * k}
}

// Machine bundles the kernel and network models of one target architecture.
type Machine struct {
	Name string
	// Gemm models GemmNDT(m rows, n cols, k inner); Trsm models the
	// triangular solve of an r×w panel against a w×w diagonal block
	// (m=r, n=w, k unused); Factor models the dense LDLᵀ of a w×w block
	// (m=w); Add models the element-wise AUB aggregation of m elements.
	Gemm, Trsm, Factor, Add KernelModel
	// Latency is the per-message startup time in seconds; Bandwidth the
	// sustained transfer rate in bytes/second.
	Latency   float64
	Bandwidth float64
	// PeakFlops is the nominal per-node peak, used only for reporting.
	PeakFlops float64
	// CholSpeedup is how much faster the LLᵀ kernels run than the LDLᵀ ones
	// (≥1; the paper measures 1.27s/1.07s ≈ 1.19 on ESSL for a dense 1024²
	// factor). The multifrontal baseline divides its kernel times by it.
	CholSpeedup float64
	// SMP topology: processors come in nodes of NodeSize (0 or 1 = flat
	// network); messages within a node use the intra-node model.
	NodeSize       int
	IntraLatency   float64
	IntraBandwidth float64
	// factorCube / trsmSquare: the Factor and Trsm kernels are cubic in a
	// single dimension, which the 8-term cross-polynomial cannot express
	// exactly; analytic profiles use these extra exact terms, while
	// calibrated profiles capture cubic behaviour through the regression
	// over the sampled size range (where k=n or k=m make c7 effective).
	factorCube float64 // t += factorCube · w³
	trsmSquare float64 // t += trsmSquare · r · w²
}

// GemmTime returns the modelled time of an (m×k)·(k×n) block update.
func (mc *Machine) GemmTime(m, n, k int) float64 {
	return mc.Gemm.Time(float64(m), float64(n), float64(k))
}

// TrsmTime returns the modelled time of solving an r×w panel against a w×w
// triangular diagonal block.
func (mc *Machine) TrsmTime(r, w int) float64 {
	fr, fw := float64(r), float64(w)
	return mc.Trsm.Time(fr, fw, fw) + mc.trsmSquare*fr*fw*fw
}

// FactorTime returns the modelled time of a dense w×w LDLᵀ factorization.
func (mc *Machine) FactorTime(w int) float64 {
	fw := float64(w)
	return mc.Factor.Time(fw, fw, fw) + mc.factorCube*fw*fw*fw
}

// AddTime returns the modelled time of aggregating elems float64s into a
// local AUB (the fan-in extra workload).
func (mc *Machine) AddTime(elems int) float64 {
	return mc.Add.Time(float64(elems), 0, 0)
}

// SendTime returns the modelled time to transfer bytes between two nodes.
func (mc *Machine) SendTime(bytes int) float64 {
	return mc.Latency + float64(bytes)/mc.Bandwidth
}

// NodeOf returns the SMP node hosting processor p (identity for NodeSize<=1).
func (mc *Machine) NodeOf(p int) int {
	if mc.NodeSize <= 1 {
		return p
	}
	return p / mc.NodeSize
}

// SendTimeBetween returns the modelled transfer time from processor p to
// processor q: the intra-node model when both live on the same SMP node,
// the network model otherwise.
func (mc *Machine) SendTimeBetween(p, q, bytes int) float64 {
	if mc.NodeSize > 1 && mc.NodeOf(p) == mc.NodeOf(q) {
		return mc.IntraLatency + float64(bytes)/mc.IntraBandwidth
	}
	return mc.SendTime(bytes)
}

// WithSMPNodes returns a copy of the machine grouped into SMP nodes of the
// given size, with shared-memory-like intra-node communication — the
// architecture the paper's conclusion targets ("a modified version of our
// strategy to take into account architectures based on SMP nodes").
func (mc *Machine) WithSMPNodes(nodeSize int) *Machine {
	m := *mc
	m.Name = fmt.Sprintf("%s-smp%d", mc.Name, nodeSize)
	m.NodeSize = nodeSize
	m.IntraLatency = 2e-6
	m.IntraBandwidth = 300e6
	return &m
}

// CholRatio returns the LLᵀ-over-LDLᵀ kernel speed ratio (1 when unset).
func (mc *Machine) CholRatio() float64 {
	if mc.CholSpeedup > 1 {
		return mc.CholSpeedup
	}
	return 1
}

// SP2 returns an analytic profile of the paper's target: IBM SP2 thin nodes
// with 120 MHz Power2SC processors (480 MFlops peak), ESSL-like sustained
// rates (~300 MFlops on large DGEMM, cf. the paper's 1024² LLᵀ in 1.07 s),
// and the SP2 high-performance switch (~40 µs MPI latency, ~35 MB/s
// sustained).
func SP2() *Machine {
	const (
		gemmRate   = 300e6 // flops/s sustained on BLAS3
		factorRate = 260e6 // dense LDLᵀ is less cache-friendly (paper §3)
		trsmRate   = 280e6
		addRate    = 60e6 // element-wise adds are memory bound
		overhead   = 3e-6 // per-kernel-call overhead
	)
	m := &Machine{
		Name:        "ibm-sp2-power2sc",
		Latency:     40e-6,
		Bandwidth:   35e6,
		PeakFlops:   480e6,
		CholSpeedup: 1.27 / 1.07, // paper §3: ESSL LLᵀ vs LDLᵀ on 1024²
	}
	m.Gemm.Coef = [8]float64{overhead, 0, 0, 0, 1e-9, 0, 0, 2 / gemmRate}
	m.Trsm.Coef = [8]float64{overhead, 0, 0, 0, 0, 0, 0, 0}
	m.trsmSquare = 2.0 / trsmRate // Trsm(r,w): 2·r·w² flop-time
	m.Factor.Coef = [8]float64{overhead, 0, 0, 0, 0, 0, 0, 0}
	m.factorCube = 2.0 / 3.0 / factorRate // Factor(w): 2·w³/3 flop-time
	m.Add.Coef = [8]float64{1e-6, 1 / addRate, 0, 0, 0, 0, 0, 0}
	return m
}

// Flops helpers (multiply+add counted as 2 ops).

// GemmFlops returns the operation count of an m×n×k block update.
func GemmFlops(m, n, k int) float64 { return 2 * float64(m) * float64(n) * float64(k) }

// TrsmFlops returns the operation count of an r-row panel solve.
func TrsmFlops(r, w int) float64 { return float64(r) * float64(w) * float64(w) }

// FactorFlops returns the operation count of a w×w dense LDLᵀ.
func FactorFlops(w int) float64 { f := float64(w); return f * f * f / 3 }

// FitLS solves the least-squares problem min ‖X·c − y‖₂ by normal equations
// with a Cholesky solve (adding a tiny ridge for rank safety). rows of x are
// basis evaluations.
func FitLS(x [][]float64, y []float64) ([]float64, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("cost: bad least-squares input")
	}
	p := len(x[0])
	// Column equilibration: the basis spans ~7 orders of magnitude between
	// the constant term and m·n·k, which would square into a hopeless
	// condition number for the normal matrix.
	colScale := make([]float64, p)
	for _, row := range x {
		if len(row) != p {
			return nil, fmt.Errorf("cost: ragged design matrix")
		}
		for i, v := range row {
			colScale[i] += v * v
		}
	}
	for i := range colScale {
		if colScale[i] > 0 {
			colScale[i] = 1 / math.Sqrt(colScale[i])
		} else {
			colScale[i] = 1
		}
	}
	// Normal matrix (column-major p×p) and rhs, in scaled coordinates.
	ata := make([]float64, p*p)
	aty := make([]float64, p)
	for r, row := range x {
		for i := 0; i < p; i++ {
			si := row[i] * colScale[i]
			aty[i] += si * y[r]
			for j := 0; j <= i; j++ {
				ata[i+j*p] += si * row[j] * colScale[j]
			}
		}
	}
	// Ridge: keeps the normal matrix SPD when a basis column is degenerate
	// over the sampled sizes.
	scale := 0.0
	for i := 0; i < p; i++ {
		if ata[i+i*p] > scale {
			scale = ata[i+i*p]
		}
	}
	ridge := math.Max(scale*1e-12, 1e-30)
	for i := 0; i < p; i++ {
		ata[i+i*p] += ridge
	}
	if err := blas.Cholesky(p, ata, p); err != nil {
		return nil, fmt.Errorf("cost: normal equations not SPD: %w", err)
	}
	blas.TrsvLower(p, ata, p, aty)
	blas.TrsvLowerTrans(p, ata, p, aty)
	for i := range aty {
		aty[i] *= colScale[i]
	}
	return aty, nil
}

// CalibrateLocal measures this host's pure-Go kernels over a grid of sizes
// and fits the polynomial models, returning a Machine profile for running
// real (goroutine-backed) parallel factorizations. quick shrinks the grid
// for use in tests.
func CalibrateLocal(quick bool) (*Machine, error) {
	sizes := []int{8, 16, 32, 64, 96, 128}
	reps := 3
	if quick {
		sizes = []int{8, 16, 32, 48}
		reps = 1
	}
	m := &Machine{
		Name: "local-go",
		// In-process channel "network": high bandwidth, low latency. These
		// constants shape the scheduler's view of goroutine message passing.
		Latency:   2e-6,
		Bandwidth: 4e9,
		PeakFlops: 0,
	}

	var gx [][]float64
	var gy []float64
	for _, mm := range sizes {
		for _, kk := range sizes {
			nn := kk
			a := make([]float64, mm*kk)
			b := make([]float64, nn*kk)
			c := make([]float64, mm*nn)
			d := make([]float64, kk)
			fill(a)
			fill(b)
			fill(c)
			fill(d)
			t := timeIt(reps, func() { blas.GemmNDT(mm, nn, kk, a, mm, d, b, nn, c, mm) })
			gx = append(gx, basisRow(float64(mm), float64(nn), float64(kk)))
			gy = append(gy, t)
		}
	}
	coef, err := FitLS(gx, gy)
	if err != nil {
		return nil, err
	}
	copy(m.Gemm.Coef[:], coef)

	var tx [][]float64
	var ty []float64
	for _, r := range sizes {
		for _, w := range sizes {
			l := make([]float64, w*w)
			b := make([]float64, r*w)
			fill(l)
			fill(b)
			for j := 0; j < w; j++ {
				l[j+j*w] = 1
			}
			t := timeIt(reps, func() { blas.TrsmRightLTransUnit(r, w, l, w, b, r) })
			tx = append(tx, basisRow(float64(r), float64(w), float64(w)))
			ty = append(ty, t)
		}
	}
	if coef, err = FitLS(tx, ty); err != nil {
		return nil, err
	}
	copy(m.Trsm.Coef[:], coef)

	var fx [][]float64
	var fy []float64
	for _, w := range sizes {
		src := make([]float64, w*w)
		for j := 0; j < w; j++ {
			src[j+j*w] = float64(w) + 1
			for i := j + 1; i < w; i++ {
				src[i+j*w] = -0.5 / float64(w)
			}
		}
		a := make([]float64, w*w)
		t := timeIt(reps, func() {
			copy(a, src)
			_ = blas.LDLT(w, a, w)
		})
		fx = append(fx, basisRow(float64(w), float64(w), float64(w)))
		fy = append(fy, t)
	}
	if coef, err = FitLS(fx, fy); err != nil {
		return nil, err
	}
	copy(m.Factor.Coef[:], coef)

	var ax [][]float64
	var ay []float64
	for _, sz := range []int{64, 512, 4096, 16384} {
		src := make([]float64, sz)
		dst := make([]float64, sz)
		fill(src)
		t := timeIt(reps, func() {
			for i, v := range src {
				dst[i] += v
			}
		})
		ax = append(ax, basisRow(float64(sz), 0, 0))
		ay = append(ay, t)
	}
	if coef, err = FitLS(ax, ay); err != nil {
		return nil, err
	}
	copy(m.Add.Coef[:], coef)
	return m, nil
}

func fill(x []float64) {
	for i := range x {
		x[i] = 1 + float64(i%7)*0.125
	}
}

func timeIt(reps int, f func()) float64 {
	f() // warm up
	best := math.Inf(1)
	for r := 0; r < reps; r++ {
		start := time.Now()
		f()
		if t := time.Since(start).Seconds(); t < best {
			best = t
		}
	}
	return best
}
