package cost

import (
	"math"
	"math/rand"
	"testing"
)

func TestKernelModelEvaluation(t *testing.T) {
	km := KernelModel{Coef: [8]float64{1, 2, 3, 4, 5, 6, 7, 8}}
	// t = 1 + 2m + 3n + 4k + 5mn + 6mk + 7nk + 8mnk at (1,1,1) = 36.
	if got := km.Time(1, 1, 1); got != 36 {
		t.Fatalf("got %g", got)
	}
	km = KernelModel{Coef: [8]float64{-5}}
	if got := km.Time(1, 1, 1); got != 0 {
		t.Fatalf("negative prediction not clamped: %g", got)
	}
}

func TestFitLSRecoversExactModel(t *testing.T) {
	true1 := []float64{1e-6, 0, 0, 0, 2e-9, 0, 0, 7e-10}
	var x [][]float64
	var y []float64
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		m := float64(1 + rng.Intn(128))
		n := float64(1 + rng.Intn(128))
		k := float64(1 + rng.Intn(128))
		row := basisRow(m, n, k)
		v := 0.0
		for i := range row {
			v += row[i] * true1[i]
		}
		x = append(x, row)
		y = append(y, v)
	}
	coef, err := FitLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range true1 {
		if math.Abs(coef[i]-true1[i]) > 1e-9*(1+math.Abs(true1[i])) {
			t.Fatalf("coef[%d]=%g want %g", i, coef[i], true1[i])
		}
	}
}

func TestFitLSDegenerateColumn(t *testing.T) {
	// All samples share n=k=0: the ridge must keep the solve alive.
	var x [][]float64
	var y []float64
	for m := 1.0; m <= 32; m++ {
		x = append(x, basisRow(m, 0, 0))
		y = append(y, 3e-6+1e-8*m)
	}
	coef, err := FitLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	km := KernelModel{}
	copy(km.Coef[:], coef)
	for m := 1.0; m <= 32; m++ {
		want := 3e-6 + 1e-8*m
		if got := km.Time(m, 0, 0); math.Abs(got-want) > 1e-9 {
			t.Fatalf("m=%g: %g want %g", m, got, want)
		}
	}
}

func TestFitLSErrors(t *testing.T) {
	if _, err := FitLS(nil, nil); err == nil {
		t.Fatal("expected error on empty input")
	}
	if _, err := FitLS([][]float64{{1, 2}}, []float64{1, 2}); err == nil {
		t.Fatal("expected error on length mismatch")
	}
	if _, err := FitLS([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Fatal("expected error on ragged rows")
	}
}

func TestSP2ProfileShape(t *testing.T) {
	m := SP2()
	// The paper: dense 1024² LLᵀ on one node takes ~1.07 s and LDLᵀ ~1.27 s.
	// Our Factor model targets LDLᵀ: 2/3·1024³/260e6 ≈ 2.75 s — note the
	// paper's number is for LLᵀ ops (n³/3 mult-adds); our model counts
	// 2·w³/3 flops at 260 MFlops → w=1024 gives ≈2.75 s, i.e. the same
	// ~280 MFlops effective rate. Sanity-check the rate, not the constant.
	sec := m.FactorTime(1024)
	rate := 2.0 / 3.0 * 1024 * 1024 * 1024 / sec
	if rate < 200e6 || rate > 400e6 {
		t.Fatalf("SP2 factor rate %.0f flops/s out of Power2SC range", rate)
	}
	// Monotonicity.
	if m.GemmTime(64, 64, 64) >= m.GemmTime(128, 128, 128) {
		t.Fatal("gemm time not increasing")
	}
	if m.TrsmTime(64, 32) >= m.TrsmTime(128, 64) {
		t.Fatal("trsm time not increasing")
	}
	// Communication: latency dominates tiny messages, bandwidth large ones.
	if m.SendTime(8) < m.Latency {
		t.Fatal("send cannot be faster than latency")
	}
	if m.SendTime(1<<20) < float64(1<<20)/m.Bandwidth {
		t.Fatal("send cannot beat bandwidth")
	}
	if m.AddTime(1000) <= 0 {
		t.Fatal("aggregation must cost time")
	}
}

func TestFlopsHelpers(t *testing.T) {
	if GemmFlops(2, 3, 4) != 48 {
		t.Fatal("GemmFlops")
	}
	if TrsmFlops(3, 2) != 12 {
		t.Fatal("TrsmFlops")
	}
	if FactorFlops(3) != 9 {
		t.Fatal("FactorFlops")
	}
}

func TestCalibrateLocalQuick(t *testing.T) {
	m, err := CalibrateLocal(true)
	if err != nil {
		t.Fatal(err)
	}
	// Predictions over the calibrated range must be non-negative and roughly
	// monotone in total work.
	small := m.GemmTime(8, 8, 8)
	big := m.GemmTime(48, 48, 48)
	if small < 0 || big < 0 {
		t.Fatal("negative predictions")
	}
	if big <= small {
		t.Fatalf("gemm model not increasing: %g vs %g", small, big)
	}
	if m.FactorTime(48) <= 0 {
		t.Fatal("factor model degenerate")
	}
	if m.TrsmTime(48, 32) <= 0 {
		t.Fatal("trsm model degenerate")
	}
}

func TestSMPTopology(t *testing.T) {
	flat := SP2()
	if flat.NodeOf(5) != 5 {
		t.Fatal("flat machine must map processors to themselves")
	}
	smp := flat.WithSMPNodes(4)
	if smp.NodeOf(0) != 0 || smp.NodeOf(3) != 0 || smp.NodeOf(4) != 1 {
		t.Fatal("node grouping wrong")
	}
	intra := smp.SendTimeBetween(0, 3, 1<<20)
	inter := smp.SendTimeBetween(0, 4, 1<<20)
	if intra >= inter {
		t.Fatalf("intra-node send (%g) not cheaper than inter-node (%g)", intra, inter)
	}
	if flat.SendTimeBetween(0, 3, 1024) != flat.SendTime(1024) {
		t.Fatal("flat machine must use the network model everywhere")
	}
	if smp.Name == flat.Name {
		t.Fatal("SMP profile should be renamed")
	}
}

func TestCholRatio(t *testing.T) {
	m := SP2()
	if r := m.CholRatio(); r < 1.15 || r > 1.25 {
		t.Fatalf("SP2 CholRatio %g", r)
	}
	var zero Machine
	if zero.CholRatio() != 1 {
		t.Fatal("unset ratio must default to 1")
	}
}
