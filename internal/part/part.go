// Package part implements the block repartitioning and candidate-mapping
// phase of the paper: splitting of large supernodes by the BLAS blocking
// size, top-down proportional mapping of candidate processor sets over the
// block elimination tree (Pothen & Sun), and the choice between 1D and 2D
// distribution per supernode — 2D for the uppermost, costly supernodes, 1D
// below.
package part

import (
	"fmt"

	"github.com/pastix-go/pastix/internal/cost"
	"github.com/pastix-go/pastix/internal/etree"
	"github.com/pastix-go/pastix/internal/symbolic"
)

// Options configures the repartitioning and mapping phase.
type Options struct {
	// BlockSize is the BLAS blocking size: supernodes wider than it are
	// split into chunks of at most this width (paper: 64).
	BlockSize int
	// Ratio2D is the minimum number of candidate processors for a supernode
	// to get a 2D distribution (paper: switch criterion; default 4).
	Ratio2D int
	// MinWidth2D is the minimum column-block width for 2D distribution
	// (defaults to BlockSize/4: splitting caps widths at BlockSize, so the
	// threshold must sit below it or the 2D switch would never trigger).
	MinWidth2D int
}

func (o Options) withDefaults() Options {
	if o.BlockSize <= 0 {
		o.BlockSize = 64
	}
	if o.Ratio2D <= 0 {
		o.Ratio2D = 4
	}
	if o.MinWidth2D <= 0 {
		o.MinWidth2D = o.BlockSize / 4
	}
	return o
}

// SplitRanges refines a supernode partition so no supernode is wider than
// opts.BlockSize, splitting wide supernodes into near-equal chunks. The
// resulting Supernodes carries chained parents (chunk → next chunk; the last
// chunk inherits the original parent).
func SplitRanges(sn *etree.Supernodes, opts Options) *etree.Supernodes {
	opts = opts.withDefaults()
	bs := opts.BlockSize
	out := &etree.Supernodes{}
	firstNew := make([]int, sn.Count()) // original supernode -> first chunk
	lastNew := make([]int, sn.Count())
	for k, r := range sn.Ranges {
		w := r[1] - r[0]
		chunks := (w + bs - 1) / bs
		if chunks < 1 {
			chunks = 1
		}
		firstNew[k] = len(out.Ranges)
		lo := r[0]
		for c := 0; c < chunks; c++ {
			// Spread the remainder so chunk widths differ by at most one.
			width := w / chunks
			if c < w%chunks {
				width++
			}
			out.Ranges = append(out.Ranges, [2]int{lo, lo + width})
			lo += width
		}
		lastNew[k] = len(out.Ranges) - 1
		if lo != r[1] {
			panic("part: split does not cover supernode")
		}
	}
	out.Parent = make([]int, len(out.Ranges))
	for k := range sn.Ranges {
		for c := firstNew[k]; c < lastNew[k]; c++ {
			out.Parent[c] = c + 1
		}
		if p := sn.Parent[k]; p == -1 {
			out.Parent[lastNew[k]] = -1
		} else {
			out.Parent[lastNew[k]] = firstNew[p]
		}
	}
	return out
}

// Mapping records, per column block, the candidate processor interval and
// the distribution choice.
type Mapping struct {
	P      int
	CandLo []int // inclusive
	CandHi []int // exclusive; candidates of cb k are [CandLo[k], CandHi[k])
	Is2D   []bool
	// SubtreeCost is the modelled sequential time of each column block's
	// subtree (diagnostics and ablations).
	SubtreeCost []float64
	// NodeCost is the modelled sequential time of the block column itself.
	NodeCost []float64
}

// Candidates returns the candidate processors of column block k.
func (m *Mapping) Candidates(k int) []int {
	out := make([]int, 0, m.CandHi[k]-m.CandLo[k])
	for p := m.CandLo[k]; p < m.CandHi[k]; p++ {
		out = append(out, p)
	}
	return out
}

// Validate checks mapping invariants.
func (m *Mapping) Validate(ncb int) error {
	if len(m.CandLo) != ncb || len(m.CandHi) != ncb || len(m.Is2D) != ncb {
		return fmt.Errorf("part: mapping arrays sized wrong")
	}
	for k := 0; k < ncb; k++ {
		if m.CandLo[k] < 0 || m.CandHi[k] > m.P || m.CandLo[k] >= m.CandHi[k] {
			return fmt.Errorf("part: cb %d candidate interval [%d,%d) invalid for P=%d",
				k, m.CandLo[k], m.CandHi[k], m.P)
		}
	}
	return nil
}

// NodeCost models the sequential time of processing column block k: the
// dense diagonal factorization, the panel solve, and the outer-product
// updates.
func NodeCost(sym *symbolic.Symbol, mach *cost.Machine, k int) float64 {
	w := sym.CB[k].Width()
	r := sym.CB[k].RowsBelow()
	t := mach.FactorTime(w) + mach.TrsmTime(r, w)
	// The updates form (roughly) the lower half of an r×r matrix.
	if r > 0 {
		t += mach.GemmTime(r, r, w) / 2
	}
	return t
}

// Map computes the candidate processor sets by top-down proportional mapping
// over the supernodal elimination tree, and chooses a 1D or 2D distribution
// per supernode.
//
// Processors are treated as the continuum [0,P): each subtree receives a
// sub-interval proportional to its modelled cost, and its candidate set is
// the set of integer processors overlapping that sub-interval. Sibling
// subtrees may therefore share a boundary processor — the paper's device for
// avoiding integral rounding trouble ("we allow a candidate processor to be
// in two sets of candidate processors for two subtrees having the same
// father"); the scheduling phase picks the best split of such a processor's
// time.
func Map(sym *symbolic.Symbol, mach *cost.Machine, P int, opts Options) *Mapping {
	opts = opts.withDefaults()
	ncb := sym.NumCB()
	m := &Mapping{
		P:           P,
		CandLo:      make([]int, ncb),
		CandHi:      make([]int, ncb),
		Is2D:        make([]bool, ncb),
		SubtreeCost: make([]float64, ncb),
		NodeCost:    make([]float64, ncb),
	}
	// Children lists and bottom-up subtree costs (parents always have larger
	// indices, so a single ascending pass accumulates).
	children := make([][]int, ncb)
	for k := 0; k < ncb; k++ {
		m.NodeCost[k] = NodeCost(sym, mach, k)
		m.SubtreeCost[k] = m.NodeCost[k]
	}
	for k := 0; k < ncb; k++ {
		if p := sym.Parent[k]; p != -1 {
			children[p] = append(children[p], k)
		}
	}
	for k := 0; k < ncb; k++ {
		if p := sym.Parent[k]; p != -1 {
			m.SubtreeCost[p] += m.SubtreeCost[k]
		}
	}

	// Top-down interval assignment. Roots share [0,P) proportionally too.
	lo := make([]float64, ncb)
	hi := make([]float64, ncb)
	var rootCost float64
	for k := 0; k < ncb; k++ {
		if sym.Parent[k] == -1 {
			rootCost += m.SubtreeCost[k]
		}
	}
	cursor := 0.0
	for k := 0; k < ncb; k++ {
		if sym.Parent[k] != -1 {
			continue
		}
		width := float64(P)
		if rootCost > 0 {
			width = float64(P) * m.SubtreeCost[k] / rootCost
		}
		lo[k], hi[k] = cursor, cursor+width
		cursor += width
	}
	// Descend from the top (indices descend from roots to leaves since
	// parents are later).
	for k := ncb - 1; k >= 0; k-- {
		childCost := 0.0
		for _, c := range children[k] {
			childCost += m.SubtreeCost[c]
		}
		cur := lo[k]
		span := hi[k] - lo[k]
		for _, c := range children[k] {
			w := 0.0
			if childCost > 0 {
				w = span * m.SubtreeCost[c] / childCost
			}
			lo[c], hi[c] = cur, cur+w
			cur += w
		}
	}

	for k := 0; k < ncb; k++ {
		cl := int(lo[k] + 1e-9)
		ch := ceilInt(hi[k] - 1e-9)
		if cl < 0 {
			cl = 0
		}
		if ch > P {
			ch = P
		}
		if ch <= cl {
			// Degenerate (zero-cost subtree or rounding): give it the
			// nearest single processor.
			if cl >= P {
				cl = P - 1
			}
			ch = cl + 1
		}
		m.CandLo[k], m.CandHi[k] = cl, ch
		m.Is2D[k] = (ch-cl) >= opts.Ratio2D && sym.CB[k].Width() >= opts.MinWidth2D
	}
	return m
}

func ceilInt(x float64) int {
	i := int(x)
	if float64(i) < x {
		i++
	}
	return i
}
