package part

import (
	"testing"

	"github.com/pastix-go/pastix/internal/cost"
	"github.com/pastix-go/pastix/internal/etree"
	"github.com/pastix-go/pastix/internal/gen"
	"github.com/pastix-go/pastix/internal/graph"
	"github.com/pastix-go/pastix/internal/order"
	"github.com/pastix-go/pastix/internal/sparse"
	"github.com/pastix-go/pastix/internal/symbolic"
)

func analyzed(t *testing.T, a *sparse.SymMatrix, bs int) (*etree.Supernodes, *symbolic.Symbol) {
	t.Helper()
	ptr, adj := a.AdjacencyCSR()
	g := graph.FromCSR(a.N, ptr, adj)
	o := order.Compute(g, order.Options{Method: order.ScotchLike, LeafSize: 40})
	pa := a.Permute(o.Perm)
	parent := etree.Build(pa)
	post := etree.Postorder(parent)
	pa = pa.Permute(post)
	parent = etree.Build(pa)
	cc := etree.ColCounts(pa, parent)
	sn := etree.Fundamental(parent, cc)
	sn = etree.Amalgamate(sn, parent, cc, etree.AmalgamateOptions{})
	sn = SplitRanges(sn, Options{BlockSize: bs})
	if err := sn.Validate(a.N); err != nil {
		t.Fatal(err)
	}
	sym := symbolic.Factor(pa, sn)
	if err := sym.Validate(); err != nil {
		t.Fatal(err)
	}
	return sn, sym
}

func TestSplitRangesWidthBound(t *testing.T) {
	sn := &etree.Supernodes{
		Ranges: [][2]int{{0, 10}, {10, 150}, {150, 151}},
		Parent: []int{1, 2, -1},
	}
	out := SplitRanges(sn, Options{BlockSize: 32})
	if err := out.Validate(151); err != nil {
		t.Fatal(err)
	}
	for _, r := range out.Ranges {
		if r[1]-r[0] > 32 {
			t.Fatalf("chunk %v too wide", r)
		}
	}
	// 140 columns in 32-chunks → 5 chunks; widths near-equal (28).
	nchunks := 0
	for _, r := range out.Ranges {
		if r[0] >= 10 && r[1] <= 150 {
			nchunks++
			if w := r[1] - r[0]; w < 28 || w > 28 {
				t.Fatalf("uneven chunk width %d", w)
			}
		}
	}
	if nchunks != 5 {
		t.Fatalf("want 5 chunks, got %d", nchunks)
	}
}

func TestSplitRangesParentChaining(t *testing.T) {
	sn := &etree.Supernodes{
		Ranges: [][2]int{{0, 100}, {100, 110}},
		Parent: []int{1, -1},
	}
	out := SplitRanges(sn, Options{BlockSize: 40})
	// 100 wide → 3 chunks; chunks chain 0→1→2, last chunk's parent is the
	// first chunk of original supernode 1 (index 3).
	if out.Parent[0] != 1 || out.Parent[1] != 2 {
		t.Fatalf("chain parents wrong: %v", out.Parent)
	}
	if out.Parent[2] != 3 {
		t.Fatalf("last chunk parent %d want 3", out.Parent[2])
	}
	if out.Parent[3] != -1 {
		t.Fatalf("root parent %d", out.Parent[3])
	}
}

func TestMapCandidatesCoverAndNest(t *testing.T) {
	p, err := gen.Generate("QUER", 0.03)
	if err != nil {
		t.Fatal(err)
	}
	_, sym := analyzed(t, p.A, 24)
	mach := cost.SP2()
	const P = 8
	m := Map(sym, mach, P, Options{BlockSize: 24, Ratio2D: 4})
	if err := m.Validate(sym.NumCB()); err != nil {
		t.Fatal(err)
	}
	// Nesting: a child's candidate interval must lie within its parent's.
	for k := 0; k < sym.NumCB(); k++ {
		if pa := sym.Parent[k]; pa != -1 {
			if m.CandLo[k] < m.CandLo[pa] || m.CandHi[k] > m.CandHi[pa] {
				t.Fatalf("cb %d cands [%d,%d) outside parent %d [%d,%d)",
					k, m.CandLo[k], m.CandHi[k], pa, m.CandLo[pa], m.CandHi[pa])
			}
		}
	}
	// Roots must span all processors collectively; the top root gets many.
	root := sym.NumCB() - 1
	if m.CandHi[root]-m.CandLo[root] < P/2 {
		t.Fatalf("root candidate set too small: [%d,%d)", m.CandLo[root], m.CandHi[root])
	}
}

func TestMap2DOnTopOnly(t *testing.T) {
	p, err := gen.Generate("SHIP001", 0.06)
	if err != nil {
		t.Fatal(err)
	}
	_, sym := analyzed(t, p.A, 24)
	m := Map(sym, cost.SP2(), 16, Options{BlockSize: 24, Ratio2D: 4, MinWidth2D: 16})
	// 2D cells must exist for a problem of this size at P=16, and every 2D
	// cell must have ≥ Ratio2D candidates.
	n2d := 0
	for k := 0; k < sym.NumCB(); k++ {
		if m.Is2D[k] {
			n2d++
			if m.CandHi[k]-m.CandLo[k] < 4 {
				t.Fatalf("2D cb %d with %d candidates", k, m.CandHi[k]-m.CandLo[k])
			}
		}
	}
	if n2d == 0 {
		t.Fatal("no 2D supernodes chosen at P=16")
	}
	// Leaves (small early cells) must be 1D with few candidates.
	if m.Is2D[0] {
		t.Fatal("first leaf cell should not be 2D")
	}
}

func TestMapSingleProcessor(t *testing.T) {
	p, err := gen.Generate("THREAD", 0.03)
	if err != nil {
		t.Fatal(err)
	}
	_, sym := analyzed(t, p.A, 32)
	m := Map(sym, cost.SP2(), 1, Options{})
	for k := 0; k < sym.NumCB(); k++ {
		if m.CandLo[k] != 0 || m.CandHi[k] != 1 {
			t.Fatalf("cb %d candidates [%d,%d) with P=1", k, m.CandLo[k], m.CandHi[k])
		}
		if m.Is2D[k] {
			t.Fatal("2D distribution with a single processor")
		}
	}
}

func TestSubtreeCostsMonotone(t *testing.T) {
	p, err := gen.Generate("OILPAN", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	_, sym := analyzed(t, p.A, 24)
	m := Map(sym, cost.SP2(), 4, Options{})
	for k := 0; k < sym.NumCB(); k++ {
		if m.SubtreeCost[k] < m.NodeCost[k] {
			t.Fatalf("cb %d subtree cost below node cost", k)
		}
		if pa := sym.Parent[k]; pa != -1 && m.SubtreeCost[pa] < m.SubtreeCost[k] {
			t.Fatalf("cb %d subtree cost exceeds parent's", k)
		}
	}
}

func TestCandidateSharingBetweenSiblings(t *testing.T) {
	// With proportional mapping over a continuum, sibling subtrees may share
	// a boundary processor; verify the mechanism triggers somewhere on a
	// real tree with an odd processor count.
	p, err := gen.Generate("QUER", 0.03)
	if err != nil {
		t.Fatal(err)
	}
	_, sym := analyzed(t, p.A, 24)
	m := Map(sym, cost.SP2(), 7, Options{})
	children := make([][]int, sym.NumCB())
	for k := 0; k < sym.NumCB(); k++ {
		if pa := sym.Parent[k]; pa != -1 {
			children[pa] = append(children[pa], k)
		}
	}
	shared := false
	for _, ch := range children {
		for i := 0; i < len(ch); i++ {
			for j := i + 1; j < len(ch); j++ {
				a, b := ch[i], ch[j]
				if m.CandLo[a] < m.CandHi[b] && m.CandLo[b] < m.CandHi[a] {
					shared = true
				}
			}
		}
	}
	if !shared {
		t.Skip("no shared boundary processor on this instance (allowed but unusual)")
	}
}

func TestCandidatesExpansion(t *testing.T) {
	m := &Mapping{P: 8, CandLo: []int{2}, CandHi: []int{5}, Is2D: []bool{false}}
	c := m.Candidates(0)
	if len(c) != 3 || c[0] != 2 || c[2] != 4 {
		t.Fatalf("candidates %v", c)
	}
}

func TestMappingValidateErrors(t *testing.T) {
	m := &Mapping{P: 4, CandLo: []int{0}, CandHi: []int{0}, Is2D: []bool{false}}
	if err := m.Validate(1); err == nil {
		t.Fatal("empty candidate interval accepted")
	}
	m2 := &Mapping{P: 4, CandLo: []int{0}, CandHi: []int{9}, Is2D: []bool{false}}
	if err := m2.Validate(1); err == nil {
		t.Fatal("out-of-range interval accepted")
	}
	m3 := &Mapping{P: 4, CandLo: []int{0}, CandHi: []int{1}}
	if err := m3.Validate(1); err == nil {
		t.Fatal("short arrays accepted")
	}
}
