package mpsim

import (
	"fmt"
	"sync"
	"testing"
)

func TestPingPong(t *testing.T) {
	c := NewComm(2)
	err := c.Run(func(p int) error {
		if p == 0 {
			c.Send(Message{Kind: 1, Src: 0, Dst: 1, Tag: 7, Data: []float64{1, 2, 3}})
			m, err := c.Recv(0)
			if err != nil {
				return err
			}
			if m.Tag != 8 || m.Data[0] != 6 {
				return fmt.Errorf("bad reply %v", m)
			}
			return nil
		}
		m, err := c.Recv(1)
		if err != nil {
			return err
		}
		s := 0.0
		for _, v := range m.Data {
			s += v
		}
		c.Send(Message{Kind: 2, Src: 1, Dst: 0, Tag: 8, Data: []float64{s}})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	msgs, bytes, _ := c.Stats()
	if msgs != 2 || bytes != 4*8 {
		t.Fatalf("stats msgs=%d bytes=%d", msgs, bytes)
	}
}

func TestManyToOneOrderAndCount(t *testing.T) {
	const P = 8
	const perSender = 50
	c := NewComm(P)
	err := c.Run(func(p int) error {
		if p == 0 {
			seen := make(map[int]int)
			for i := 0; i < (P-1)*perSender; i++ {
				m, err := c.Recv(0)
				if err != nil {
					return err
				}
				// FIFO per sender: tags from one src must ascend.
				if m.Tag < seen[m.Src] {
					return fmt.Errorf("out of order from %d: %d after %d", m.Src, m.Tag, seen[m.Src])
				}
				seen[m.Src] = m.Tag
			}
			return nil
		}
		for i := 0; i < perSender; i++ {
			c.Send(Message{Src: p, Dst: 0, Tag: i})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTryRecv(t *testing.T) {
	c := NewComm(2)
	if _, ok := c.TryRecv(0); ok {
		t.Fatal("empty mailbox returned a message")
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Send(Message{Src: 1, Dst: 0, Tag: 5})
	}()
	wg.Wait()
	m, ok := c.TryRecv(0)
	if !ok || m.Tag != 5 {
		t.Fatalf("TryRecv got %v %v", m, ok)
	}
}

func TestSelfSendPanics(t *testing.T) {
	c := NewComm(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Send(Message{Src: 1, Dst: 1})
}

func TestRunPropagatesError(t *testing.T) {
	c := NewComm(3)
	err := c.Run(func(p int) error {
		if p == 2 {
			return fmt.Errorf("boom")
		}
		// Others block in Recv and must be released by Close.
		_, err := c.Recv(p)
		return err
	})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestCloseUnblocksReceivers(t *testing.T) {
	c := NewComm(1)
	done := make(chan error, 1)
	go func() {
		_, err := c.Recv(0)
		done <- err
	}()
	c.Close()
	if err := <-done; err == nil {
		t.Fatal("expected closed-mailbox error")
	}
}

func TestPAccessor(t *testing.T) {
	if NewComm(3).P() != 3 {
		t.Fatal("P accessor")
	}
}

func TestSendAfterCloseIsDropped(t *testing.T) {
	c := NewComm(2)
	c.Close()
	c.Send(Message{Src: 0, Dst: 1, Tag: 1}) // must not panic
	if _, ok := c.TryRecv(1); ok {
		t.Fatal("dropped message delivered")
	}
}
