// Package mpsim provides the message-passing runtime substituting for MPI on
// the paper's IBM SP2: P virtual processors run as goroutines and exchange
// typed messages through unbounded per-processor mailboxes. Message and byte
// counters give the experiments their communication-volume observables.
//
// Mailboxes are unbounded so the fan-in protocol can never deadlock on
// buffer space (MPI eager-mode semantics); ordering is FIFO per sender and
// receiver like MPI point-to-point.
//
// # Fault injection and the reliability layer
//
// By default the "wire" is perfect. EnableFaults attaches an Injector (see
// internal/faults) that may drop, duplicate or delay any transmission and
// crash or stall workers, and switches the communicator to a reliable
// protocol that restores exactly-once, per-sender-FIFO delivery on top of
// the lossy wire:
//
//   - every (src,dst) channel numbers its messages; the receiver admits them
//     in sequence order, holding early arrivals and discarding duplicates;
//   - each admission is acknowledged (acks ride the same lossy wire);
//   - a supervisor goroutine retransmits unacknowledged messages with
//     exponential backoff until a retry budget is exhausted (ErrFaultBudget),
//     monitors worker heartbeats to break injected stalls, and Run restarts
//     workers that crash (they replay from their completion logs).
//
// The fault-free path pays exactly one nil-injector check in Send and
// nothing in Recv.
package mpsim

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pastix-go/pastix/internal/trace"
)

// ErrClosed is returned by Recv when the communicator was shut down while
// waiting — typically because a peer failed. Run reports the peer's original
// error in preference to these secondary ones.
var ErrClosed = errors.New("mpsim: mailbox closed")

// ErrCrashed marks the error a worker returns to simulate a crash (or a
// stall that the heartbeat supervisor declared dead). Run restarts such
// workers instead of tearing the communicator down, up to the restart
// budget. Match with errors.Is.
var ErrCrashed = errors.New("mpsim: virtual processor crashed (injected fault)")

// ErrFaultBudget reports that the reliability layer gave up: a message
// exhausted its resend budget, or a worker its restart budget. The concrete
// error is a *BudgetError. Match with errors.Is.
var ErrFaultBudget = errors.New("mpsim: fault-recovery budget exhausted")

// BudgetError is the concrete error behind ErrFaultBudget.
type BudgetError struct {
	Op       string // "resend" or "restart"
	Proc     int    // sender (resend) or the crashing processor (restart)
	Dst      int    // receiver (resend only)
	Seq      int64  // channel sequence number (resend only)
	Attempts int
}

func (e *BudgetError) Error() string {
	if e.Op == "restart" {
		return fmt.Sprintf("mpsim: processor %d kept crashing: restart budget exhausted after %d restarts", e.Proc, e.Attempts)
	}
	return fmt.Sprintf("mpsim: message %d→%d seq %d still unacknowledged after %d attempts: retry budget exhausted", e.Proc, e.Dst, e.Seq, e.Attempts)
}

// Is makes errors.Is(err, ErrFaultBudget) succeed for BudgetError values.
func (e *BudgetError) Is(target error) bool { return target == ErrFaultBudget }

// Fate is an injector's verdict for one wire transmission.
type Fate struct {
	Drop     bool          // lose this transmission entirely
	Dup      bool          // deliver one extra copy (data messages only)
	Delay    time.Duration // hold the primary copy back before delivery
	DupDelay time.Duration // hold the duplicate copy back
}

// Injector decides the fate of wire transmissions and cooperates with the
// stall supervisor. Implementations must be safe for concurrent use and
// deterministic in FateOf's arguments (so a chaos run is reproducible from
// its seed). The canonical implementation is internal/faults.Injector.
type Injector interface {
	// FateOf judges transmission `attempt` (0 = first send) of the message
	// with channel sequence number seq from src to dst; ack selects the
	// acknowledgment leg (dst→src) of the protocol.
	FateOf(src, dst int, seq int64, attempt int, ack bool) Fate
	// BreakStall forces an injected stall on processor p to end by crashing
	// the stalled worker; it reports whether p was actually stalled (the
	// supervisor calls it on every heartbeat timeout, most of which are
	// workers legitimately blocked in Recv).
	BreakStall(p int) bool
}

// Reliability tunes the retry/timeout/recovery machinery. The zero value
// selects the documented defaults.
type Reliability struct {
	RTO           time.Duration // initial resend timeout (default 300µs)
	MaxRTO        time.Duration // backoff cap (default 5ms)
	RetryLimit    int           // resend attempts per message before ErrFaultBudget (default 30)
	RestartBudget int           // per-processor restarts before ErrFaultBudget (default 8)
	StallTimeout  time.Duration // heartbeat age at which a stalled worker is declared dead (default 10ms)
	Tick          time.Duration // supervisor scan interval (default 200µs)
}

func (r Reliability) withDefaults() Reliability {
	if r.RTO <= 0 {
		r.RTO = 300 * time.Microsecond
	}
	if r.MaxRTO <= 0 {
		r.MaxRTO = 5 * time.Millisecond
	}
	if r.RetryLimit <= 0 {
		r.RetryLimit = 30
	}
	if r.RestartBudget <= 0 {
		r.RestartBudget = 8
	}
	if r.StallTimeout <= 0 {
		r.StallTimeout = 10 * time.Millisecond
	}
	if r.Tick <= 0 {
		r.Tick = 200 * time.Microsecond
	}
	return r
}

// FaultStats reports the reliability layer's recovery activity (all zero on
// the fault-free path).
type FaultStats struct {
	Resends  int64 // retransmissions of unacknowledged messages
	Deduped  int64 // duplicate deliveries suppressed at admission
	Restarts int64 // crashed/stalled workers restarted by Run
}

// Message is the unit of communication.
type Message struct {
	Kind int8 // application-defined taxonomy
	Src  int  // sending processor
	Dst  int  // receiving processor
	Tag  int  // application-defined routing key (e.g. destination task id)
	Data []float64

	// seq is the reliability-layer sequence number on the (Src,Dst) channel;
	// meaningful only under fault injection.
	seq int64
}

// Comm connects P virtual processors.
type Comm struct {
	p        int
	boxes    []mailbox
	nMsgs    atomic.Int64
	nBytes   atomic.Int64
	maxInFly atomic.Int64
	inFlight atomic.Int64
	rec      *trace.Recorder

	// Reliability state; all nil/zero unless EnableFaults was called.
	inj      Injector
	cfg      Reliability
	seqs     []atomic.Int64 // next sequence number per (src,dst), src*p+dst
	outs     []outbox       // unacknowledged messages per (src,dst)
	beats    []atomic.Int64 // per-processor heartbeat (unix nanos)
	resends  atomic.Int64
	deduped  atomic.Int64
	restarts atomic.Int64
	budgetMu sync.Mutex
	budget   error // first budget exhaustion, reported by Run
}

// relSrc is a mailbox's admission state for one sender: next expected
// sequence number and early (out-of-order) arrivals held back.
type relSrc struct {
	next int64
	held map[int64]Message
}

type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	closed bool
	rel    []relSrc // per-sender admission state; non-nil only under faults
}

// pendMsg is one unacknowledged message awaiting ack or resend.
type pendMsg struct {
	m        Message
	attempts int
	deadline time.Time
	backoff  time.Duration
}

type outbox struct {
	mu   sync.Mutex
	pend map[int64]*pendMsg
}

// NewComm creates a communicator for p processors.
func NewComm(p int) *Comm {
	if p <= 0 {
		panic("mpsim: non-positive processor count")
	}
	c := &Comm{p: p, boxes: make([]mailbox, p)}
	for i := range c.boxes {
		c.boxes[i].cond = sync.NewCond(&c.boxes[i].mu)
	}
	return c
}

// P returns the number of processors.
func (c *Comm) P() int { return c.p }

// SetTrace attaches an execution-trace recorder: every Send and Recv is
// recorded as an instant event (message kind, tag, payload bytes) on the
// acting processor. Call before Run; a nil recorder disables recording.
func (c *Comm) SetTrace(rec *trace.Recorder) { c.rec = rec }

// EnableFaults attaches a fault injector and switches the communicator to
// the reliable protocol (sequence numbers, dedup, ack+resend, heartbeat
// supervision, worker restart). Call before Run; a nil injector is a no-op.
func (c *Comm) EnableFaults(inj Injector, cfg Reliability) {
	if inj == nil {
		return
	}
	c.inj = inj
	c.cfg = cfg.withDefaults()
	c.seqs = make([]atomic.Int64, c.p*c.p)
	c.outs = make([]outbox, c.p*c.p)
	c.beats = make([]atomic.Int64, c.p)
	for i := range c.boxes {
		c.boxes[i].rel = make([]relSrc, c.p)
	}
}

// Heartbeat stamps processor p alive. Workers call it at task boundaries so
// the supervisor can tell an injected stall from normal progress. No-op
// without fault injection.
func (c *Comm) Heartbeat(p int) {
	if c.beats != nil {
		c.beats[p].Store(time.Now().UnixNano())
	}
}

// Send enqueues m into the destination mailbox. Data is NOT copied: the
// sender must not mutate it afterwards (same contract as MPI_Isend buffers).
func (c *Comm) Send(m Message) {
	if m.Dst < 0 || m.Dst >= c.p {
		panic(fmt.Sprintf("mpsim: send to processor %d of %d", m.Dst, c.p))
	}
	if m.Src == m.Dst {
		panic("mpsim: self-send; local work must not use the network")
	}
	c.nMsgs.Add(1)
	c.nBytes.Add(int64(len(m.Data)) * 8)
	if c.rec != nil {
		c.rec.Comm(m.Src, trace.KindSend, m.Kind, m.Tag, int64(len(m.Data))*8)
	}
	// Peak tracking must CAS: a bare Load+Store pair lets two senders both
	// observe a stale maximum and the larger in-flight count be overwritten,
	// under-reporting the peak.
	f := c.inFlight.Add(1)
	for {
		cur := c.maxInFly.Load()
		if f <= cur || c.maxInFly.CompareAndSwap(cur, f) {
			break
		}
	}
	if c.inj != nil {
		c.sendReliable(m)
		return
	}
	b := &c.boxes[m.Dst]
	b.mu.Lock()
	if b.closed {
		// The communicator is shutting down after a failure elsewhere; drop
		// the message so the sender can unwind and report its own state.
		b.mu.Unlock()
		c.inFlight.Add(-1)
		return
	}
	b.queue = append(b.queue, m)
	b.mu.Unlock()
	b.cond.Signal()
}

// sendReliable registers m in the sender's outbox (for ack tracking and
// resends) and attempts the first wire transmission.
func (c *Comm) sendReliable(m Message) {
	m.seq = c.seqs[m.Src*c.p+m.Dst].Add(1) - 1
	ob := &c.outs[m.Src*c.p+m.Dst]
	ob.mu.Lock()
	if ob.pend == nil {
		ob.pend = make(map[int64]*pendMsg)
	}
	ob.pend[m.seq] = &pendMsg{m: m, deadline: time.Now().Add(c.cfg.RTO), backoff: c.cfg.RTO}
	ob.mu.Unlock()
	c.wire(m, 0)
}

// wire performs one transmission attempt of m over the faulty medium.
func (c *Comm) wire(m Message, attempt int) {
	f := c.inj.FateOf(m.Src, m.Dst, m.seq, attempt, false)
	if f.Dup && !f.Drop {
		dup := m
		if f.DupDelay > 0 {
			time.AfterFunc(f.DupDelay, func() { c.deliver(dup) })
		} else {
			c.deliver(dup)
		}
	}
	if f.Drop {
		return
	}
	if f.Delay > 0 {
		time.AfterFunc(f.Delay, func() { c.deliver(m) })
		return
	}
	c.deliver(m)
}

// deliver runs the receiver-side admission protocol: duplicates (by channel
// sequence number) are suppressed, early arrivals are held until the gap
// fills, in-sequence messages enter the application queue — restoring
// exactly-once, per-sender-FIFO semantics on the lossy wire. Every receipt
// is (re-)acknowledged so lost acks cannot stall the sender forever.
func (c *Comm) deliver(m Message) {
	b := &c.boxes[m.Dst]
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	rs := &b.rel[m.Src]
	admitted := false
	switch {
	case m.seq < rs.next:
		c.deduped.Add(1) // already admitted; the ack below re-covers a lost ack
	case m.seq == rs.next:
		b.queue = append(b.queue, m)
		rs.next++
		for {
			h, ok := rs.held[rs.next]
			if !ok {
				break
			}
			delete(rs.held, rs.next)
			b.queue = append(b.queue, h)
			rs.next++
		}
		admitted = true
	default:
		if rs.held == nil {
			rs.held = make(map[int64]Message)
		}
		if _, dup := rs.held[m.seq]; dup {
			c.deduped.Add(1)
		} else {
			rs.held[m.seq] = m
		}
	}
	b.mu.Unlock()
	if admitted {
		b.cond.Signal()
	}
	c.ackWire(m.Dst, m.Src, m.seq)
}

// ackWire acknowledges seq back to the sender; the ack rides the same faulty
// wire (it may be dropped or delayed, never duplicated — acks are idempotent
// anyway).
func (c *Comm) ackWire(from, to int, seq int64) {
	f := c.inj.FateOf(from, to, seq, 0, true)
	if f.Drop {
		return
	}
	fire := func() {
		ob := &c.outs[to*c.p+from]
		ob.mu.Lock()
		delete(ob.pend, seq)
		ob.mu.Unlock()
	}
	if f.Delay > 0 {
		time.AfterFunc(f.Delay, fire)
		return
	}
	fire()
}

// Recv blocks until a message for processor p arrives and returns it.
func (c *Comm) Recv(p int) (Message, error) {
	b := &c.boxes[p]
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.queue) == 0 {
		if b.closed {
			return Message{}, fmt.Errorf("mpsim: receive on %d: %w", p, ErrClosed)
		}
		b.cond.Wait()
	}
	m := b.queue[0]
	b.queue = b.queue[1:]
	c.inFlight.Add(-1)
	if c.rec != nil {
		c.rec.Comm(p, trace.KindRecv, m.Kind, m.Tag, int64(len(m.Data))*8)
	}
	return m, nil
}

// TryRecv returns a pending message without blocking; ok is false when the
// mailbox is empty.
func (c *Comm) TryRecv(p int) (Message, bool) {
	b := &c.boxes[p]
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.queue) == 0 {
		return Message{}, false
	}
	m := b.queue[0]
	b.queue = b.queue[1:]
	c.inFlight.Add(-1)
	if c.rec != nil {
		c.rec.Comm(p, trace.KindRecv, m.Kind, m.Tag, int64(len(m.Data))*8)
	}
	return m, true
}

// Close closes every mailbox, waking blocked receivers with an error.
// Call it after all processors have finished to catch protocol leaks.
func (c *Comm) Close() {
	for i := range c.boxes {
		b := &c.boxes[i]
		b.mu.Lock()
		b.closed = true
		b.mu.Unlock()
		b.cond.Broadcast()
	}
}

// Stats reports the total messages and bytes sent, and the peak number of
// in-flight messages. Under fault injection these count application-level
// sends exactly once — retransmissions and duplicates are in FaultStats.
func (c *Comm) Stats() (msgs, bytes, maxInFlight int64) {
	return c.nMsgs.Load(), c.nBytes.Load(), c.maxInFly.Load()
}

// FaultStats reports the reliability layer's recovery activity.
func (c *Comm) FaultStats() FaultStats {
	return FaultStats{Resends: c.resends.Load(), Deduped: c.deduped.Load(), Restarts: c.restarts.Load()}
}

// failBudget records the first budget exhaustion and tears the communicator
// down so every worker unwinds.
func (c *Comm) failBudget(err *BudgetError) {
	c.budgetMu.Lock()
	if c.budget == nil {
		c.budget = err
	}
	c.budgetMu.Unlock()
	c.Close()
}

// supervise is the reliability supervisor: it retransmits unacknowledged
// messages with exponential backoff (enforcing the retry budget) and breaks
// injected stalls whose worker heartbeat has gone stale.
func (c *Comm) supervise(stop <-chan struct{}) {
	t := time.NewTicker(c.cfg.Tick)
	defer t.Stop()
	type resend struct {
		m       Message
		attempt int
	}
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		now := time.Now()
		var due []resend
		for i := range c.outs {
			ob := &c.outs[i]
			ob.mu.Lock()
			for _, pm := range ob.pend {
				if now.Before(pm.deadline) {
					continue
				}
				pm.attempts++
				if pm.attempts > c.cfg.RetryLimit {
					m, n := pm.m, pm.attempts
					ob.mu.Unlock()
					c.failBudget(&BudgetError{Op: "resend", Proc: m.Src, Dst: m.Dst, Seq: m.seq, Attempts: n})
					return
				}
				pm.backoff *= 2
				if pm.backoff > c.cfg.MaxRTO {
					pm.backoff = c.cfg.MaxRTO
				}
				pm.deadline = now.Add(pm.backoff)
				due = append(due, resend{m: pm.m, attempt: pm.attempts})
			}
			ob.mu.Unlock()
		}
		for _, r := range due {
			c.resends.Add(1)
			if c.rec != nil {
				c.rec.Fault(r.m.Src, trace.FaultResend, int(r.m.seq), int64(len(r.m.Data))*8)
			}
			c.wire(r.m, r.attempt)
		}
		// Stall detection: a stale heartbeat alone is not proof of a stall (a
		// worker may be blocked in Recv waiting for a resend), so BreakStall
		// only acts on workers inside an injected stall window.
		cut := now.Add(-c.cfg.StallTimeout).UnixNano()
		for p := 0; p < c.p; p++ {
			if c.beats[p].Load() < cut && c.inj.BreakStall(p) {
				if c.rec != nil {
					c.rec.Fault(p, trace.FaultStallBroken, 0, 0)
				}
			}
		}
	}
}

// Run launches fn on each of the P processors and waits for completion. The
// first error (or panic, re-raised) is returned.
//
// Under fault injection Run is also the recovery supervisor: a worker
// returning an error matching ErrCrashed is restarted (fn is invoked again
// for the same p, on the same goroutine, so fn must be resumable from its
// own completion log) until its restart budget is exhausted; the resend
// supervisor runs for the duration of the call.
func (c *Comm) Run(fn func(p int) error) error {
	errs := make([]error, c.p)
	panics := make([]any, c.p)
	var stop chan struct{}
	if c.inj != nil {
		now := time.Now().UnixNano()
		for p := range c.beats {
			c.beats[p].Store(now)
		}
		stop = make(chan struct{})
		go c.supervise(stop)
	}
	var wg sync.WaitGroup
	for p := 0; p < c.p; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[p] = r
					c.Close() // unblock peers stuck in Recv
				}
			}()
			restarts := 0
			for {
				err := fn(p)
				if err != nil && c.inj != nil && errors.Is(err, ErrCrashed) {
					if restarts < c.cfg.RestartBudget {
						restarts++
						c.restarts.Add(1)
						c.Heartbeat(p)
						if c.rec != nil {
							c.rec.Fault(p, trace.FaultRestart, restarts, 0)
						}
						continue
					}
					err = &BudgetError{Op: "restart", Proc: p, Attempts: restarts}
				}
				errs[p] = err
				if err != nil {
					c.Close()
				}
				return
			}
		}(p)
	}
	wg.Wait()
	if stop != nil {
		close(stop)
	}
	for p, r := range panics {
		if r != nil {
			panic(fmt.Sprintf("mpsim: processor %d panicked: %v", p, r))
		}
	}
	// Prefer a root-cause error: a worker's own failure first, then a
	// reliability budget exhaustion, then the secondary closed-mailbox
	// errors the shutdown broadcast induces on the other processors.
	c.budgetMu.Lock()
	budgetErr := c.budget
	c.budgetMu.Unlock()
	var closedErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		switch {
		case errors.Is(err, ErrClosed):
			if closedErr == nil {
				closedErr = err
			}
		case errors.Is(err, ErrFaultBudget):
			if budgetErr == nil {
				budgetErr = err
			}
		default:
			return err
		}
	}
	if budgetErr != nil {
		return budgetErr
	}
	return closedErr
}
